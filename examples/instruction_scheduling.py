#!/usr/bin/env python
"""Inspect the dual-pipeline instruction reordering of Section VI.

Prints the original and reordered GEMM inner loops side by side with their
cycle-by-cycle issue timelines, demonstrates that both compute identical
results, and sweeps the execution-efficiency formula.

Run:  python examples/instruction_scheduling.py
"""

import numpy as np

from repro.isa.kernels import (
    GemmKernelSpec,
    gemm_kernel_original,
    gemm_kernel_reordered,
    paper_execution_efficiency,
)
from repro.isa.pipeline import DualPipelineSimulator
from repro.isa.program import Interpreter, MachineState


def make_state(spec: GemmKernelSpec, seed: int) -> MachineState:
    rng = np.random.default_rng(seed)
    state = MachineState()
    for it in range(spec.iterations):
        for i in range(spec.num_a):
            state.store("A", (it, i), rng.standard_normal(4))
        for j in range(spec.num_b):
            state.store("B", (it, j), rng.standard_normal(1))
    for i in range(spec.num_a):
        for j in range(spec.num_b):
            state.write_reg(f"C{i}{j}", np.zeros(4))
    state.write_reg("cnt", np.asarray(0.0))
    return state


def main() -> None:
    spec = GemmKernelSpec(iterations=2)
    original = gemm_kernel_original(spec)
    reordered = gemm_kernel_reordered(spec)
    sim = DualPipelineSimulator()

    print("=== original (compiler order), 2 iterations ===")
    report = sim.simulate(original)
    print(report.timeline())
    print(f"total {report.total_cycles} cycles, EE={report.fma_efficiency:.3f} "
          f"(paper: 26/iter, 61.5%)")
    print()

    print("=== reordered (software pipelined) ===")
    report = sim.simulate(reordered)
    print(report.timeline())
    print(f"total {report.total_cycles} cycles, EE={report.fma_efficiency:.3f} "
          f"(paper: 5 + 17*(K-1) + 16)")
    print()

    # Semantics: both orders compute the same accumulators.
    acc_names = [f"C{i}{j}" for i in range(4) for j in range(4)]
    st_a = Interpreter(make_state(spec, seed=11)).run(original)
    st_b = Interpreter(make_state(spec, seed=11)).run(reordered)
    same = all(
        np.allclose(st_a.read_reg(n), st_b.read_reg(n)) for n in acc_names
    )
    print(f"reordering preserves semantics: {same}")
    print()

    print("execution efficiency vs reduction depth (paper formula == simulated):")
    for ni in (32, 64, 128, 256, 384):
        k = GemmKernelSpec.for_input_channels(ni)
        measured = sim.simulate(gemm_kernel_reordered(k)).fma_efficiency
        print(f"  Ni={ni:4d}: simulated {measured:.4f}, "
              f"formula {paper_execution_efficiency(ni):.4f}")


if __name__ == "__main__":
    main()
