#!/usr/bin/env python
"""Quickstart: plan, run and time one convolution on the simulated SW26010.

Shows the three-step workflow the library is built around:

1. describe the layer (Table I parameters);
2. let the performance model pick the loop schedule + blocking;
3. run it — functionally (checked against the NumPy reference) and timed
   (per-core-group and whole-chip throughput).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ConvParams, plan_convolution
from repro.core.conv import ConvolutionEngine, evaluate_chip
from repro.core.reference import conv2d_reference
from repro.common.units import GB


def main() -> None:
    # 1. A small training-layer configuration (kept small so the functional
    #    run through the simulated tile schedule finishes in seconds).
    params = ConvParams(ni=32, no=32, ri=18, ci=18, kr=3, kc=3, b=16)
    print(f"layer: {params.describe()}")
    print(f"work:  {params.flops() / 1e6:.1f} Mflops, "
          f"{params.total_bytes() / 1e6:.2f} MB unique data")

    # 2. Model-guided planning: both loop-schedule families are scored with
    #    the REG-LDM-MEM model and the winner is kept.
    choice = plan_convolution(params)
    print()
    print(choice.describe())
    est = choice.estimate
    print(f"model: RBW={est.rbw_mem / GB:.1f} GB/s, MBW={est.mbw_mem / GB:.1f} GB/s, "
          f"EE={est.execution_efficiency:.3f}, bound={est.bound}")

    # 3a. Functional execution through the simulated tile schedule.
    rng = np.random.default_rng(0)
    x = rng.standard_normal(params.input_shape)
    w = rng.standard_normal(params.filter_shape)
    engine = ConvolutionEngine(choice.plan)
    out, report = engine.run(x, w)
    reference = conv2d_reference(x, w)
    print()
    print(f"functional check vs NumPy reference: "
          f"max |error| = {np.max(np.abs(out - reference)):.2e}")
    print(f"one core group: {report.gflops:.0f} Gflops "
          f"({report.efficiency * 100:.0f}% of peak), "
          f"{report.tiles} tiles, overlap {report.overlap_fraction * 100:.0f}%")

    # 3b. Timed evaluation of a paper-scale layer on all four core groups.
    big = ConvParams.from_output(ni=256, no=256, ro=64, co=64, kr=3, kc=3, b=128)
    chip_gflops, per_cg = evaluate_chip(big)
    print()
    print(f"paper-scale layer {big.describe()}:")
    print(f"whole chip (4 CGs): {chip_gflops / 1e3:.2f} Tflops "
          f"(paper headline: over 1.6 Tflops)")


if __name__ == "__main__":
    main()
