#!/usr/bin/env python
"""Build your own Fig. 7: sweep a custom layer grid.

Uses :mod:`repro.core.sweeps` to evaluate a user-defined parameter grid the
same way the paper's evaluation scripts (Fig. 8) drive theirs — per
configuration: model-guided plan choice, analytic estimate, timed
measurement, whole-chip projection — and exports CSV for plotting.

Run:  python examples/custom_sweep.py
"""

from repro.core.sweeps import SweepGrid, render_sweep, run_sweep, sweep_to_csv


def main() -> None:
    # The layers of a hypothetical detector backbone: mixed channel widths,
    # two image scales, two filter sizes.
    grid = SweepGrid(
        ni=(96, 192),
        no=(96, 256),
        out=(32, 64),
        k=(3, 5),
        b=(64,),
    )
    print(f"sweeping {len(grid)} configurations "
          f"(plan -> model -> timed measurement each)...")
    rows = run_sweep(grid)

    print()
    print(render_sweep(rows))

    winners = {}
    for row in rows:
        winners[row.plan] = winners.get(row.plan, 0) + 1
    print()
    print(f"plan selection: {winners}")
    best = max(rows, key=lambda r: r.chip_tflops)
    worst = min(rows, key=lambda r: r.chip_tflops)
    print(f"best:  {best.params.describe()} -> {best.chip_tflops:.2f} Tflops")
    print(f"worst: {worst.params.describe()} -> {worst.chip_tflops:.2f} Tflops")

    csv_text = sweep_to_csv(rows)
    print()
    print(f"CSV export ({len(csv_text.splitlines()) - 1} data rows); first lines:")
    for line in csv_text.splitlines()[:4]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
