#!/usr/bin/env python
"""Train a small CNN with the swDNN layer stack on synthetic data.

The paper positions swDNN as a library for *training* DNNs on Sunway
TaihuLight.  This example builds a LeNet-style classifier from the
library's layers — its first convolution runs through the full simulated
SW26010 tile schedule — and trains it with minibatch SGD until the
synthetic task is learned.

Run:  python examples/train_cnn.py
"""

import numpy as np

from repro.core.layers import AvgPool2D, Conv2D, Dense, Flatten, ReLU
from repro.core.network import Sequential, synthetic_image_dataset, train_classifier


def build_network(rng: np.random.Generator) -> Sequential:
    """A LeNet-style stack: conv-pool-conv-pool-dense."""
    return Sequential(
        [
            Conv2D(ni=4, no=8, kr=3, kc=3, rng=rng, engine="simulated"),
            ReLU(),
            AvgPool2D(2),
            Conv2D(ni=8, no=16, kr=3, kc=3, rng=rng),
            ReLU(),
            Flatten(),
            Dense(16 * 3 * 3, 10, rng=rng),
        ]
    )


def main() -> None:
    rng = np.random.default_rng(7)
    # 12x12 inputs -> conv 3x3 -> 10x10 -> pool -> 5x5 -> conv 3x3 -> 3x3.
    x, labels = synthetic_image_dataset(
        num_samples=128, channels=4, height=12, width=12, num_classes=10, rng=rng
    )
    network = build_network(rng)

    print("training a 2-conv CNN on synthetic 10-class data")
    print("(the first convolution runs through the simulated SW26010 plan)")
    result = train_classifier(
        network, x, labels, epochs=8, batch_size=16, lr=0.02, momentum=0.9, rng=rng
    )
    for epoch, (loss, acc) in enumerate(zip(result.losses, result.accuracies), 1):
        print(f"epoch {epoch}: loss={loss:.3f} accuracy={acc * 100:.0f}%")
    print()
    if result.final_accuracy > 0.9:
        print("learned the task (>90% train accuracy) — the simulated "
              "convolution pipeline trains correctly.")
    else:
        print("warning: training did not converge; inspect hyperparameters.")


if __name__ == "__main__":
    main()
