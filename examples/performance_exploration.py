#!/usr/bin/env python
"""Explore the performance model: why plans win, where the bounds move.

Walks the three analyses the paper uses to design swDNN:

1. the gload-vs-hierarchy decision (Fig. 2): why direct memory access is
   hopeless on SW26010;
2. plan selection across a channel sweep: where the batch-size-aware
   schedule overtakes the image-size-aware one;
3. register blocking (Eq. 4/5): the feasible (rbB, rbNo) frontier and why
   (16, 4) is the sweet spot.

Run:  python examples/performance_exploration.py
"""

from repro.common.tables import TextTable
from repro.common.units import GB
from repro.core.params import ConvParams
from repro.core.planner import plan_convolution
from repro.core.register_blocking import (
    choose_register_blocking,
    enumerate_gemm_blockings,
)
from repro.hw.spec import DEFAULT_SPEC
from repro.perf.model import PerformanceModel


def gload_analysis() -> None:
    model = PerformanceModel()
    direct = model.direct_memory()
    print("1. direct memory access (gload):")
    print(f"   RBW {direct.rbw_mem / GB:.1f} GB/s vs physical "
          f"{direct.mbw_mem / GB:.0f} GB/s "
          f"-> {direct.efficiency * 100:.2f}% of peak "
          f"({direct.gflops:.1f} Gflops per CG)")
    print("   conclusion: every plan must stage through LDM.")
    print()


def plan_sweep() -> None:
    print("2. plan selection across output-channel counts (Ni=128, B=128):")
    table = TextTable(
        ["No", "chosen plan", "model Gflops/CG", "bound"], float_fmt="{:.0f}"
    )
    for no in (32, 64, 128, 256, 384):
        params = ConvParams.from_output(
            ni=128, no=no, ro=64, co=64, kr=3, kc=3, b=128
        )
        choice = plan_convolution(params)
        table.add_row(
            [no, choice.kind, choice.estimate.gflops, choice.estimate.bound]
        )
    print(table.render())
    print()


def register_blocking_frontier() -> None:
    print("3. register blocking frontier (Eq. 5 RBW vs 46.4 GB/s LDM->REG):")
    table = TextTable(
        ["rbB", "rbNo", "registers", "RBW (GB/s)", "fits LDM->REG?"],
        float_fmt="{:.1f}",
    )
    shown = set()
    for blocking in enumerate_gemm_blockings():
        key = (blocking.rb_b, blocking.rb_no)
        if blocking.rb_b not in (4, 8, 16, 32) or blocking.rb_no not in (1, 2, 4, 8):
            continue
        if key in shown:
            continue
        shown.add(key)
        rbw = blocking.rbw_simd()
        table.add_row(
            [
                blocking.rb_b,
                blocking.rb_no,
                blocking.registers_needed,
                rbw / GB,
                "yes" if rbw <= DEFAULT_SPEC.ldm_bandwidth else "no",
            ]
        )
    print(table.render())
    best = choose_register_blocking()
    print(f"   chosen: (rbB={best.rb_b}, rbNo={best.rb_no}) "
          f"using {best.registers_needed}/32 registers, "
          f"RBW {best.rbw_simd() / GB:.1f} GB/s — the paper's setting.")


def main() -> None:
    gload_analysis()
    plan_sweep()
    register_blocking_frontier()


if __name__ == "__main__":
    main()
