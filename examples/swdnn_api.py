#!/usr/bin/env python
"""Use swDNN through its cuDNN-style handle/descriptor API.

Mirrors the workflow a framework integration (Caffe/TensorFlow, as the
paper's Section II describes for cuDNN) would follow: create a handle,
describe tensors, query the ranked algorithm list and workspace size, then
run forward and both backward passes.

Run:  python examples/swdnn_api.py
"""

import numpy as np

from repro.api import (
    ConvolutionFwdAlgo,
    FilterDescriptor,
    SwDNNHandle,
    TensorDescriptor,
)
from repro.api.descriptors import ConvolutionDescriptor, output_descriptor


def main() -> None:
    handle = SwDNNHandle()
    rng = np.random.default_rng(0)

    # Describe one training layer.
    x_desc = TensorDescriptor(n=16, c=32, h=18, w=18)
    w_desc = FilterDescriptor(k=32, c=32, kh=3, kw=3)
    conv_desc = ConvolutionDescriptor()
    y_desc = output_descriptor(x_desc, w_desc, conv_desc)
    print(f"layer: input {x_desc.shape} * filter {w_desc.shape} "
          f"-> output {y_desc.shape}")

    # Algorithm search (the cudnnFindConvolutionForwardAlgorithm analogue).
    print("\nranked algorithms:")
    for perf in handle.find_algorithms(x_desc, w_desc, conv_desc):
        print(f"  {perf}")
    workspace = handle.get_workspace_bytes(x_desc, w_desc, conv_desc)
    print(f"workspace (LDM per CPE): {workspace} bytes of 65536")

    # Forward.
    x = rng.standard_normal(x_desc.shape)
    w = rng.standard_normal(w_desc.shape)
    y, fwd = handle.convolution_forward(x, w, x_desc=x_desc, w_desc=w_desc)
    print(f"\nforward:         {fwd.gflops:7.1f} Gflops "
          f"({fwd.tiles} tiles, overlap {fwd.overlap_fraction * 100:.0f}%)")

    # Backward (training): gradients w.r.t. data and filters.
    grad_y = rng.standard_normal(y.shape)
    grad_x, bwd_d = handle.convolution_backward_data(w, grad_y, x_desc)
    grad_w, bwd_f = handle.convolution_backward_filter(x, grad_y, w_desc)
    print(f"backward data:   {bwd_d.gflops:7.1f} Gflops -> grad_x {grad_x.shape}")
    print(f"backward filter: {bwd_f.gflops:7.1f} Gflops -> grad_w {grad_w.shape}")

    # Fully-connected layers go through swGEMM on the same handle.
    a = rng.standard_normal((256, 512))
    b = rng.standard_normal((512, 128))
    c, gemm = handle.gemm(a, b)
    print(f"FC gemm 256x512x128: {gemm.gflops:7.1f} Gflops "
          f"(max error vs numpy: {np.max(np.abs(c - a @ b)):.2e})")

    # Plans are cached across invocations (the training-loop fast path).
    handle.convolution_forward(x, w)
    print(f"\ncached plans after repeat invocation: {handle.cached_plans}")


if __name__ == "__main__":
    main()
