#!/usr/bin/env python
"""Scale data-parallel training of a small CNN across TaihuLight nodes.

The paper's introduction motivates swDNN as the node-level engine for
cluster-scale training; this example uses the extension package
``repro.scale`` to project weak- and strong-scaling curves, with each
node's compute timed by the same plan machinery as the single-chip
experiments, and gradient allreduce timed by the interconnect model.

Run:  python examples/cluster_scaling.py
"""

from repro.common.tables import TextTable
from repro.scale.data_parallel import DataParallelModel, vgg_like_stack
from repro.scale.network import InterconnectModel


def main() -> None:
    stack = vgg_like_stack(batch=64, channels=64)
    model = DataParallelModel(stack)
    print(f"model: {len(stack)} layers, "
          f"{model.total_gradient_bytes() / 1e6:.1f} MB of gradients/iteration")

    print("\nweak scaling (fixed 64 samples per node):")
    table = TextTable(["nodes", "iter (ms)", "comm (ms)", "samples/s", "eff"],
                      float_fmt="{:.2f}")
    for p in model.weak_scaling([1, 16, 256, 4096], per_node_batch=64):
        table.add_row([p.nodes, p.iteration_seconds * 1e3, p.comm_seconds * 1e3,
                       p.samples_per_second, p.efficiency])
    print(table.render())

    print("\nstrong scaling (fixed global batch 2048):")
    table = TextTable(["nodes", "batch/node", "iter (ms)", "samples/s", "eff"],
                      float_fmt="{:.2f}")
    for p in model.strong_scaling([1, 16, 256, 2048], global_batch=2048):
        table.add_row([p.nodes, max(1, 2048 // p.nodes),
                       p.iteration_seconds * 1e3, p.samples_per_second,
                       p.efficiency])
    print(table.render())

    print("\nsensitivity: halving the interconnect bandwidth")
    slow = DataParallelModel(stack, network=InterconnectModel(bandwidth=4e9))
    for nodes in (256, 4096):
        base = model.iteration(nodes, 64)
        degraded = slow.iteration(nodes, 64)
        print(f"  {nodes:5d} nodes: efficiency {base.efficiency:.2f} -> "
              f"{degraded.efficiency:.2f}")

    print("\nconclusion: gradient allreduce stays hidden behind backward "
          "compute into the thousands of nodes for this layer stack — the "
          "regime the paper's introduction targets.")


if __name__ == "__main__":
    main()
