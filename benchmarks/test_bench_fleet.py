"""Multi-chip fleet bench: scaling at matched p99, affinity, parity audit.

Records, into ``benchmarks/BENCH_fleet.json``, the fleet's three headline
claims:

* **throughput scaling at matched tail latency** — million-request bursty
  traces drained through the virtual-time fleet simulator at 1/2/4 chips,
  each offered the same 50% utilization (so the 4-chip row carries 4x the
  load), with the per-batch service times *measured* on a real warm
  engine pool and a measured cold-start charge on every (chip, shape)
  first touch.  The bar: >= 3x throughput at 4 chips with p99 within
  1.25x of the single chip's;
* **cache-affinity routing** — a Zipf-skewed 32-shape mix must route
  >= 90% of requests to their home chip (warm pool, no rebuild);
* **zero wrong answers** — a real 2-chip fleet run answers bit-identically
  to the per-request sequential engine and to the single-chip fleet, with
  the front-door counters balancing.

A diurnal section drives the autoscaler through load peaks and troughs
and records how many chips it actually used versus the static fleet.

The written record passes ``python -m repro.serve.validate`` — the same
gate ``scripts/verify.sh`` runs against the committed JSON.
"""

import json
import os
import time

import numpy as np

from repro.common.rng import derive_rng
from repro.serve import (
    FleetConfig,
    FleetServer,
    ServedModel,
    WarmEnginePool,
    bursty_arrivals,
    diurnal_arrivals,
    fleet_workload,
    run_fleet_load,
    run_sequential,
    synthetic_images,
)
from repro.serve.fleet import AutoscalerPolicy
from repro.serve.fleet_sim import measure_service_table, simulate_fleet
from repro.serve.validate import (
    FLEET_SCHEMA,
    MIN_AFFINITY_HIT_RATE,
    MIN_SCALING_4CHIP,
    MAX_P99_RATIO,
    validate_fleet_report,
)
from repro.telemetry import Telemetry, use_telemetry

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_fleet.json")

SEED = 0xF1EE7
CHIP_COUNTS = (1, 2, 4)
TRACE_N = 1_000_000
DIURNAL_N = 200_000
MAX_BATCH = 8
N_SHAPES = 32
SKEW = 0.8
UTILIZATION = 0.45
LATENCY_FRACTION = 0.25


def _calibrate():
    """Measured per-batch service times + cold-start cost, on a real pool."""
    rng = derive_rng(SEED, "fleet.bench.weights")
    w = rng.standard_normal((8, 8, 3, 3)) * 0.2
    model = ServedModel.conv(w, (12, 12), name="fleet-bench")
    telemetry = Telemetry()
    with use_telemetry(telemetry):
        pool = WarmEnginePool(
            model, max_batch=MAX_BATCH, guarded=True, autotune=False,
            telemetry=telemetry,
        )
        t0 = time.perf_counter()
        pool.warm()
        warm_s = time.perf_counter() - t0
        table = measure_service_table(pool, MAX_BATCH, model.input_shape)
    # warm() builds + packs all MAX_BATCH engines; one (chip, shape) first
    # touch in the fleet pays roughly one engine's share of that.
    return table, warm_s / MAX_BATCH


def _scaling_rows(table, cold_s):
    """1/2/4-chip drains of million-request bursty traces, 50% utilization."""
    rng = derive_rng(SEED, "fleet.bench.mix")
    weights = 1.0 / np.arange(1, N_SHAPES + 1) ** SKEW
    weights /= weights.sum()
    shapes = rng.choice(N_SHAPES, size=TRACE_N, p=weights)
    latency_flags = rng.random(TRACE_N) < LATENCY_FRACTION
    single_chip_rps = MAX_BATCH / float(table[MAX_BATCH])
    rows = []
    for chips in CHIP_COUNTS:
        offered_rps = UTILIZATION * chips * single_chip_rps
        arrivals = bursty_arrivals(TRACE_N, offered_rps, seed=SEED + chips)
        result = simulate_fleet(
            arrivals, shapes, latency_flags, chips, table,
            cold_s=cold_s, seed=SEED,
        )
        rows.append(
            {
                "chips": chips,
                "offered_rps": offered_rps,
                "throughput_rps": result.throughput_rps,
                "p50_ms": result.latency.p50_ms,
                "p99_ms": result.latency.p99_ms,
                "p99_ms_latency_class": result.latency_by_slo["latency"].p99_ms,
                "p99_ms_throughput_class": (
                    result.latency_by_slo["throughput"].p99_ms
                ),
                "affinity_hit_rate": result.affinity["hit_rate"],
                "mean_batch": result.mean_batch,
                "batches": result.batches,
            }
        )
    return rows


def _diurnal_section(table, cold_s):
    """The autoscaler vs a static fleet through two load peaks."""
    rng = derive_rng(SEED, "fleet.bench.diurnal")
    weights = 1.0 / np.arange(1, N_SHAPES + 1) ** SKEW
    weights /= weights.sum()
    shapes = rng.choice(N_SHAPES, size=DIURNAL_N, p=weights)
    latency_flags = rng.random(DIURNAL_N) < LATENCY_FRACTION
    single_chip_rps = MAX_BATCH / float(table[MAX_BATCH])
    # Mean offered ~60% of one chip, peaks ~110% (depth 0.8): the
    # autoscaler must grow through the peaks and park through the troughs.
    mean_rps = 0.6 * single_chip_rps
    arrivals = diurnal_arrivals(
        DIURNAL_N, mean_rps, seed=SEED + 7, period_s=20.0, depth=0.8
    )
    policy = AutoscalerPolicy(
        min_chips=1, backlog_per_chip=4.0, scale_up_after=2,
        park_after=25, park_backlog_per_chip=0.75,
    )
    auto = simulate_fleet(
        arrivals, shapes, latency_flags, 4, table, cold_s=cold_s,
        seed=SEED, autoscale=policy, autoscale_tick_s=0.02,
    )
    static = simulate_fleet(
        arrivals, shapes, latency_flags, 4, table, cold_s=cold_s, seed=SEED
    )
    return {
        "requests": DIURNAL_N,
        "chips": 4,
        "min_chips": policy.min_chips,
        "scale_ups": auto.scale_ups,
        "scale_parks": auto.scale_parks,
        "mean_active_chips": auto.mean_active_chips,
        "p99_ms": auto.latency.p99_ms,
        "static_p99_ms": static.latency.p99_ms,
        "static_mean_active_chips": static.mean_active_chips,
    }


def _real_fleet_section():
    """A real 2-chip fleet run audited bit-for-bit, answer by answer."""
    rng = derive_rng(SEED, "fleet.bench.real")
    models = {}
    images = {}
    for i in range(3):
        w = rng.standard_normal((4 + 2 * i, 4, 3, 3)) * 0.2
        model = ServedModel.conv(w, (8, 8), name=f"shape{i}")
        models[model.name] = model
        images[model.name] = synthetic_images(
            4, model.input_shape, seed=SEED + i
        )
    names = sorted(models)
    workload = fleet_workload(
        names, 60, 3000.0, pattern="bursty", seed=SEED, images_per_model=4
    )

    def run(chips):
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            fleet = FleetServer(
                models,
                FleetConfig(chips=chips, max_batch=4, seed=0),
                telemetry=telemetry,
            )
            with fleet:
                fleet.prewarm()
                report, outputs = run_fleet_load(fleet, workload, images)
                balanced = fleet.counters_balanced()
        return report, outputs, balanced

    report, outputs, balanced = run(2)
    _, single_outputs, _ = run(1)
    refs = {}
    for name in names:
        pool = WarmEnginePool(
            models[name], max_batch=4, guarded=True, autotune=False,
            telemetry=Telemetry(),
        )
        _, seq = run_sequential(pool, images[name])
        refs[name] = seq
    wrong = 0
    bit_identical = True
    for spec, out, single in zip(workload, outputs, single_outputs):
        assert out is not None and single is not None
        if not np.array_equal(out, refs[spec.model][spec.image_index]):
            wrong += 1
        if not np.array_equal(out, single):
            bit_identical = False
    return {
        "chips": 2,
        "requests": report.offered,
        "completed": report.completed,
        "wrong_answers": wrong,
        "bit_identical": bit_identical,
        "counters_balanced": balanced,
        "affinity_hit_rate": report.affinity["hit_rate"],
        "p99_ms": report.latency.p99_ms,
    }


def _fleet(record):
    table, cold_s = _calibrate()
    rows = _scaling_rows(table, cold_s)
    by_chips = {row["chips"]: row for row in rows}
    scaling = by_chips[4]["throughput_rps"] / by_chips[1]["throughput_rps"]
    p99_ratio = by_chips[4]["p99_ms"] / by_chips[1]["p99_ms"]
    record.update(
        {
            "schema": FLEET_SCHEMA,
            "seed": SEED,
            "arrival_pattern": "bursty",
            "requests_per_row": TRACE_N,
            "n_shapes": N_SHAPES,
            "skew": SKEW,
            "utilization": UTILIZATION,
            "latency_fraction": LATENCY_FRACTION,
            "service_table_ms": [float(s * 1e3) for s in table[1:]],
            "cold_start_ms": cold_s * 1e3,
            "rows": rows,
            "scaling_4chip": scaling,
            "p99_ratio_4v1": p99_ratio,
            "affinity_hit_rate": by_chips[4]["affinity_hit_rate"],
            "diurnal": _diurnal_section(table, cold_s),
            "real_fleet": _real_fleet_section(),
            "acceptance": {
                "scaling_bar": f">= {MIN_SCALING_4CHIP}x throughput at 4 "
                               f"chips, same utilization",
                "p99_bar": f"4-chip p99 <= {MAX_P99_RATIO}x single-chip p99",
                "affinity_bar": f">= {MIN_AFFINITY_HIT_RATE * 100:.0f}% home-"
                                f"chip hits on the skewed mix",
                "parity_bar": "real fleet bit-identical to sequential and "
                              "single-chip runs, counters balanced",
            },
        }
    )
    assert scaling >= MIN_SCALING_4CHIP, (
        f"4-chip fleet only {scaling:.2f}x single-chip throughput "
        f"(need >= {MIN_SCALING_4CHIP}x)"
    )
    assert p99_ratio <= MAX_P99_RATIO, (
        f"4-chip p99 is {p99_ratio:.2f}x the single chip's "
        f"(need <= {MAX_P99_RATIO}x)"
    )
    assert record["affinity_hit_rate"] >= MIN_AFFINITY_HIT_RATE
    assert record["real_fleet"]["wrong_answers"] == 0
    assert record["real_fleet"]["bit_identical"] is True
    assert record["real_fleet"]["counters_balanced"] is True
    violations = validate_fleet_report(record)
    assert violations == [], f"schema violations: {violations}"
    return scaling


def test_bench_fleet(benchmark):
    record = {}
    scaling = benchmark.pedantic(_fleet, args=(record,), rounds=1, iterations=1)
    with open(RESULTS_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print()
    print(json.dumps(record["rows"], indent=2))
    print(
        f"scaling {scaling:.2f}x | p99 ratio {record['p99_ratio_4v1']:.2f} | "
        f"affinity {record['affinity_hit_rate'] * 100:.1f}% | "
        f"autoscaler {record['diurnal']['scale_ups']} ups / "
        f"{record['diurnal']['scale_parks']} parks"
    )
