"""Chaos-serve bench: availability and parity under seeded fault injection.

Records, into ``benchmarks/BENCH_chaos_serve.json``, one chaos-serve run
under the default seeded dma+cpe fault plan (~45% of staged batch DMAs
hang, two CPEs fenced):

* availability — every offered request answered with a served result or a
  typed rejection (shed / queue-full / deadline);
* the zero-wrong-answer parity audit — every served output bit-identical
  to the fault-free sequential reference;
* the breaker's open -> half-open -> closed transition trail, the
  retry/hedge/demotion taxonomy, and p99 latency with vs without faults.

Acceptance bars asserted here: availability >= 99%, zero wrong answers,
the breaker actually cycled (>= 1 open), and the written record passes
the chaos-serve schema the CI smoke stage validates.
"""

import json
import os

from repro.faults import (
    default_chaos_serve_faults,
    run_chaos_serve,
    validate_chaos_serve_report,
)

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "BENCH_chaos_serve.json"
)

N_REQUESTS = 96
RATE_RPS = 2000.0


def _chaos(record):
    report = run_chaos_serve(
        fault_spec=default_chaos_serve_faults(),
        n_requests=N_REQUESTS,
        rate_rps=RATE_RPS,
    )
    payload = report.as_dict()

    assert report.availability >= 0.99, (
        f"availability {report.availability * 100:.2f}% under faults "
        f"(need >= 99%)"
    )
    assert report.wrong_answers == 0, (
        f"{report.wrong_answers} served answers differed from the "
        f"fault-free reference — the zero-wrong-answer contract is broken"
    )
    assert report.counters_balanced, "serve counters did not balance"
    assert report.breaker_opened >= 1, (
        "the breaker never tripped under a ~45% per-attempt failure rate"
    )
    violations = validate_chaos_serve_report(payload)
    assert violations == [], f"schema violations: {violations}"

    record.update(payload)
    record["acceptance"] = {
        "availability_bar": ">= 0.99 under seeded dma+cpe faults",
        "wrong_answers_bar": "== 0 (bit-identical or typed rejection)",
        "breaker_bar": ">= 1 open transition recorded",
    }
    return report.availability


def test_bench_chaos_serve(benchmark):
    record = {}
    availability = benchmark.pedantic(
        _chaos, args=(record,), rounds=1, iterations=1
    )
    with open(RESULTS_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print()
    print(json.dumps(record, indent=2))
    benchmark.extra_info.update(record)
    assert availability >= 0.99
