"""Ablation benches for the design choices of Sections IV-VI.

Not figures of the paper, but the knobs its design discussion turns:
LDM blocking sizes, DMA promotion, double buffering, register blocking,
and instruction reordering.  Each bench demonstrates the direction the
paper argues for.
"""

from repro.common.tables import TextTable
from repro.common.units import GB
from repro.core.conv import ConvolutionEngine
from repro.core.ldm_blocking import BatchBlocking, ImageBlocking
from repro.core.params import ConvParams
from repro.core.plans import BatchSizeAwarePlan, ImageSizeAwarePlan
from repro.core.register_blocking import RegisterBlocking
from repro.isa.kernels import (
    GemmKernelSpec,
    gemm_kernel_original,
    gemm_kernel_reordered,
)
from repro.isa.pipeline import DualPipelineSimulator

PARAMS = ConvParams.from_output(ni=128, no=128, ro=64, co=64, kr=3, kc=3, b=128)


def test_bench_ablation_ldm_blocking_size(benchmark):
    """Bigger bCo*bB -> lower Eq. 1 RBW -> higher measured throughput."""

    def sweep():
        rows = []
        for b_b, b_co in [(8, 4), (16, 8), (32, 16), (32, 32)]:
            plan = ImageSizeAwarePlan(PARAMS, blocking=ImageBlocking(b_b=b_b, b_co=b_co))
            report = ConvolutionEngine(plan).evaluate()
            rows.append((b_b, b_co, plan.rbw_mem() / GB, report.gflops))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = TextTable(["bB", "bCo", "RBW (GB/s)", "measured Gflops"])
    for row in rows:
        table.add_row(row)
    print()
    print("Ablation — LDM blocking size (image-size-aware plan)")
    print(table.render())
    gflops = [r[3] for r in rows]
    assert gflops[-1] > gflops[0], "larger LDM blocks must win"


def test_bench_ablation_dma_promotion(benchmark):
    """Section IV-A: promoting DMA to outer loops cuts traffic and time."""

    def compare():
        plain = BatchSizeAwarePlan(
            PARAMS, blocking=BatchBlocking(b_co=4, promote_filter=False)
        )
        promoted = BatchSizeAwarePlan(
            PARAMS, blocking=BatchBlocking(b_co=4, promote_filter=True)
        )
        return (
            ConvolutionEngine(plain).evaluate(),
            ConvolutionEngine(promoted).evaluate(),
        )

    plain, promoted = benchmark.pedantic(compare, rounds=1, iterations=1)
    print()
    print("Ablation — filter-DMA promotion (batch-size-aware plan)")
    print(f"  unpromoted: {plain.gflops:.0f} Gflops, "
          f"{(plain.bytes_get + plain.bytes_put) / 1e9:.2f} GB moved")
    print(f"  promoted:   {promoted.gflops:.0f} Gflops, "
          f"{(promoted.bytes_get + promoted.bytes_put) / 1e9:.2f} GB moved")
    assert promoted.gflops > plain.gflops
    assert promoted.bytes_get < plain.bytes_get


def test_bench_ablation_double_buffering(benchmark):
    """Section IV-A: double buffering hides DMA under compute.

    contention=1.0 models no overlap at all (single-buffered), 0.0 perfect
    overlap; the default 0.5 sits between.
    """

    def sweep():
        plan = BatchSizeAwarePlan(PARAMS)
        return [
            (c, ConvolutionEngine(plan, overlap_contention=c).evaluate().gflops)
            for c in (1.0, 0.5, 0.0)
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Ablation — DMA/compute overlap (1.0 = no double buffering)")
    for contention, gflops in rows:
        print(f"  contention {contention:.1f}: {gflops:.0f} Gflops")
    assert rows[-1][1] > rows[0][1]


def test_bench_ablation_register_blocking(benchmark):
    """Section V-B: the (16, 4) register block vs starved alternatives."""

    def sweep():
        rows = []
        for rb_b, rb_no in [(4, 1), (8, 2), (16, 4), (24, 4)]:
            blocking = RegisterBlocking(rb_b=rb_b, rb_no=rb_no)
            if not blocking.is_feasible():
                continue
            plan = BatchSizeAwarePlan(PARAMS, register_blocking=blocking)
            est = plan.estimate()
            rows.append((rb_b, rb_no, blocking.rbw_simd() / GB, est.gflops))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = TextTable(["rbB", "rbNo", "Eq.5 RBW (GB/s)", "modeled Gflops"])
    for row in rows:
        table.add_row(row)
    print()
    print("Ablation — register blocking (LDM->REG level)")
    print(table.render())
    by_key = {(r[0], r[1]): r[3] for r in rows}
    assert by_key[(16, 4)] > by_key[(4, 1)]


def test_bench_ablation_instruction_reordering(benchmark):
    """Section VI: reordered vs compiler-order inner kernel."""

    def compare():
        sim = DualPipelineSimulator()
        spec = GemmKernelSpec.for_input_channels(128)
        return (
            sim.simulate(gemm_kernel_original(spec)),
            sim.simulate(gemm_kernel_reordered(spec)),
        )

    original, reordered = benchmark.pedantic(compare, rounds=1, iterations=1)
    print()
    print("Ablation — dual-pipeline instruction reordering (Ni=128)")
    print(f"  original:  {original.total_cycles} cycles, "
          f"EE {original.fma_efficiency * 100:.1f}%")
    print(f"  reordered: {reordered.total_cycles} cycles, "
          f"EE {reordered.fma_efficiency * 100:.1f}%")
    assert reordered.total_cycles < original.total_cycles
