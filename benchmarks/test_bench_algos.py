"""Conv algorithm zoo bench: cross-family tuning over the Table III rows.

Records, into ``benchmarks/BENCH_algos.json``, for each Table III row:

* the direct-tuned baseline (the pre-zoo tuner's best) and the
  cross-family winner with its algorithm and measured speedup;
* the communication-lower-bound oracle's attainment ratio (measured DMA
  bytes vs the Demmel--Dinh bound) for every legal family.

Acceptance bars: the cross-family search never regresses the direct-tuned
result on any row, and at least one 3x3 stride-1 row selects a non-direct
family with a measured speedup.
"""

import json
import os

from repro.core.params import ConvParams
from repro.telemetry import oracle_report, validate_oracle_report
from repro.tune import autotune

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_algos.json")

#: Table III rows at the paper's 64x64 output, 3x3 filter, batch 128.
TABLE3_CHANNELS = [(128, 128), (128, 256), (256, 256), (256, 384)]


def _row_params(ni, no):
    return ConvParams.from_output(ni=ni, no=no, ro=64, co=64, kr=3, kc=3, b=128)


def test_bench_algos(benchmark):
    record = {"rows": []}
    non_direct_wins = 0

    shapes = [_row_params(ni, no) for ni, no in TABLE3_CHANNELS]

    def _tune_all():
        return [
            (
                autotune(p, cache=False, top_k=6, jobs=4),
                autotune(p, cache=False, top_k=6, jobs=4, algorithms="all"),
            )
            for p in shapes
        ]

    results = benchmark.pedantic(_tune_all, rounds=1, iterations=1)

    oracle = oracle_report(shapes)
    assert validate_oracle_report(oracle.as_dict()) == []
    attainment = {}
    for row in oracle.rows:
        attainment.setdefault(row.params, {})[row.algorithm] = round(
            row.attainment, 4
        )

    for params, (direct, zoo) in zip(shapes, results):
        assert zoo.gflops >= direct.gflops, (
            f"{params.describe()}: cross-family search regressed "
            f"({zoo.gflops:.1f} < {direct.gflops:.1f} Gflop/s)"
        )
        if zoo.candidate.algorithm != "direct" and zoo.gflops > direct.gflops:
            non_direct_wins += 1
        record["rows"].append(
            {
                "params": str(params),
                "direct_tuned_gflops": round(direct.gflops, 1),
                "direct_plan": direct.candidate.describe(),
                "winner_gflops": round(zoo.gflops, 1),
                "winner_algorithm": zoo.candidate.algorithm,
                "winner_plan": zoo.candidate.describe(),
                "speedup_vs_direct": round(zoo.gflops / direct.gflops, 3),
                "oracle_attainment": attainment[params],
            }
        )

    assert non_direct_wins >= 1, (
        "no Table III row selected a lowered family with a measured speedup"
    )
    record["non_direct_winners"] = non_direct_wins
    record["oracle"] = {
        "threshold": oracle.threshold,
        "flagged": len(oracle.flagged),
    }

    with open(RESULTS_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print()
    print(json.dumps(record, indent=2))
    benchmark.extra_info.update(record)
