"""Serving bench: dynamic batching vs per-request, warm cache, packing.

Records, into ``benchmarks/BENCH_serve.json``:

* requests/sec through the dynamic batcher at a saturating Poisson
  arrival rate vs the per-request sequential baseline on the same warm
  machinery, with the speedup ratio and latency percentiles;
* proof that the batched outputs are **bit-identical** to the
  per-request outputs (the image-size-aware family preserves per-element
  accumulation order across batch extents);
* warm-cache evidence: tuner measurements at server start vs in steady
  state (the steady-state delta must be zero);
* the memoized weight-layout packing microbenchmark: repeated forward
  passes with and without the packed filter operands.

Acceptance bars asserted here: batched throughput >= 3x sequential at
the saturating rate, zero steady-state tuner measurements, and packed
repeat-inference not slower than the unpacked path.
"""

import json
import os
import time

import numpy as np

from repro.core.conv import ConvolutionEngine
from repro.core.params import ConvParams
from repro.core.planner import plan_convolution
from repro.serve import (
    InferenceServer,
    ServedModel,
    ServerConfig,
    WarmEnginePool,
    run_load,
    run_sequential,
    synthetic_images,
)
from repro.telemetry import Telemetry

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_serve.json")

#: The served layer: 16->16 channels, 16x16 images, 3x3 filters.
NI, NO, HW, K = 16, 16, 16, 3

#: Saturating load: arrivals far faster than the engine drains them, so
#: the batcher always finds a full queue and coalescing is the only
#: variable under test.
N_REQUESTS = 128
RATE_RPS = 200_000.0
MAX_BATCH = 16


def _model():
    rng = np.random.default_rng(0x5EED)
    w = rng.standard_normal((NO, NI, K, K)) * np.sqrt(2.0 / (NI * K * K))
    bias = rng.standard_normal(NO) * 0.1
    return ServedModel.conv(w, (HW, HW), bias=bias, activation="relu")


def _throughput(record):
    model = _model()
    images = synthetic_images(N_REQUESTS, model.input_shape, seed=1)

    baseline_pool = WarmEnginePool(
        model, max_batch=MAX_BATCH, autotune=False, guarded=True
    )
    seq_report, seq_outputs = run_sequential(baseline_pool, images)

    config = ServerConfig(
        max_batch=MAX_BATCH,
        max_wait_s=0.001,
        queue_depth=max(256, N_REQUESTS),
        workers=1,
        autotune=False,
        guarded=True,
    )
    telem = Telemetry()
    with InferenceServer(model, config, telemetry=telem) as server:
        bat_report, bat_outputs = run_load(
            server, images, rate_rps=RATE_RPS, seed=2
        )
    assert bat_report.completed == N_REQUESTS, bat_report.as_dict()
    assert server.counters_balanced()

    # Bit-identity: every batched output equals its per-request twin.
    for batched, alone in zip(bat_outputs, seq_outputs):
        np.testing.assert_array_equal(batched, alone)

    speedup = bat_report.rps / seq_report.rps
    assert speedup >= 3.0, (
        f"dynamic batching gives only {speedup:.2f}x over sequential "
        f"({bat_report.rps:.0f} vs {seq_report.rps:.0f} rps)"
    )
    record["throughput"] = {
        "layer": f"ni={NI} no={NO} image={HW}x{HW} k={K}",
        "sequential": seq_report.as_dict(),
        "batched": bat_report.as_dict(),
        "speedup": round(speedup, 2),
        "bit_identical_outputs": True,
        "mean_batch": round(
            telem.counters.get("serve.batched_images")
            / max(telem.counters.get("serve.batches"), 1),
            2,
        ),
    }
    return speedup


def _warm_cache(record, tmp_path):
    model = _model()
    config = ServerConfig(
        max_batch=4,
        max_wait_s=0.001,
        queue_depth=64,
        workers=1,
        autotune=True,
        plan_cache=str(tmp_path / "plans"),
        guarded=True,
    )
    telem = Telemetry()
    with InferenceServer(model, config, telemetry=telem) as server:
        warm_measurements = telem.counters.get("tune.measurements")
        warm_packs = telem.counters.get("engine.filter_pack.packs")
        images = synthetic_images(12, model.input_shape, seed=3)
        reqs = [server.submit(x) for x in images]
        for req in reqs:
            req.result(timeout=60.0)
        steady_measurements = (
            telem.counters.get("tune.measurements") - warm_measurements
        )
        steady_packs = telem.counters.get("engine.filter_pack.packs") - warm_packs
    assert warm_measurements > 0, "warm-up should have tuned"
    assert steady_measurements == 0, "steady state re-tuned"
    assert steady_packs == 0, "steady state re-packed filters"

    # A restarted server over the same cache directory warms hit-only.
    second = Telemetry()
    with InferenceServer(model, config, telemetry=second):
        pass
    assert second.counters.get("tune.measurements") == 0
    record["warm_cache"] = {
        "warm_tuner_measurements": warm_measurements,
        "steady_state_tuner_measurements": steady_measurements,
        "warm_filter_packs": warm_packs,
        "steady_state_filter_packs": steady_packs,
        "restart_tuner_measurements": second.counters.get("tune.measurements"),
        "restart_cache_hits": second.counters.get("plan_cache.hits"),
    }


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _filter_pack(record):
    params = ConvParams(ni=NI, no=NO, ri=HW + K - 1, ci=HW + K - 1,
                        kr=K, kc=K, b=8)
    plan = plan_convolution(params).plan
    rng = np.random.default_rng(4)
    x = rng.standard_normal(params.input_shape)
    w = rng.standard_normal(params.filter_shape)

    unpacked_engine = ConvolutionEngine(plan, backend="numpy")
    packed_engine = ConvolutionEngine(plan, backend="numpy")
    unpacked_engine.run(x, w)  # warm caches / lazy imports
    packed_engine.prepack_filters(w, version=0)

    unpacked = _best_of(lambda: unpacked_engine.run(x, w))
    packed = _best_of(lambda: packed_engine.run(x, w, filter_version=0))
    np.testing.assert_array_equal(
        packed_engine.run(x, w, filter_version=0)[0],
        unpacked_engine.run(x, w)[0],
    )
    assert packed <= unpacked * 1.10, (
        f"packed repeat-inference ({packed:.5f}s) slower than unpacked "
        f"({unpacked:.5f}s)"
    )
    record["filter_pack"] = {
        "params": str(params),
        "unpacked_seconds": round(unpacked, 6),
        "packed_seconds": round(packed, 6),
        "speedup": round(unpacked / packed, 2),
    }


def test_bench_serve(benchmark, tmp_path):
    record = {}
    speedup = benchmark.pedantic(
        _throughput, args=(record,), rounds=1, iterations=1
    )
    _warm_cache(record, tmp_path)
    _filter_pack(record)
    record["summary"] = {
        "batched_vs_sequential_speedup": round(speedup, 2),
        "acceptance_bar": ">= 3.0x at saturating arrival rate",
    }
    with open(RESULTS_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print()
    print(json.dumps(record, indent=2))
    benchmark.extra_info.update(record)
