"""Ablation bench: architecture sensitivity (the conclusion's message).

Which SW26010 resource, doubled, buys the most convolution throughput?
The answer depends on where the layer sits against the roofline, so the
sweep runs two reference layers:

* a *bandwidth-starved* one (few output channels — the high-RBW regime of
  Eq. 2), where the DDR interface is the binding resource; and
* a *balanced* one (256 channels with the promoted batch plan), where the
  clock starts to matter.

The paper's architectural message is the first row: for the layers its
model calls memory-bound, bandwidth beats everything.
"""

from repro.common.tables import TextTable
from repro.core.params import ConvParams
from repro.perf.sensitivity import sweep_all

STARVED = ConvParams.from_output(ni=64, no=64, ro=16, co=16, kr=3, kc=3, b=64)
BALANCED = ConvParams.from_output(ni=256, no=256, ro=64, co=64, kr=3, kc=3, b=128)


def _render(results) -> str:
    table = TextTable(["knob", "0.5x", "1x", "2x", "4x"], float_fmt="{:.2f}")
    for knob, points in results.items():
        table.add_row([knob] + [p.speedup_vs_default for p in points])
    return table.render()


def test_bench_ablation_architecture_sensitivity(benchmark):
    scales = [0.5, 1.0, 2.0, 4.0]

    def sweep_both():
        return (
            sweep_all(scales=scales, params=STARVED),
            sweep_all(scales=scales, params=BALANCED),
        )

    starved, balanced = benchmark.pedantic(sweep_both, rounds=1, iterations=1)
    print()
    print("Ablation — architecture sensitivity (speedup vs default SW26010)")
    print(f"\nbandwidth-starved layer ({STARVED.describe()}):")
    print(_render(starved))
    print(f"\nbalanced layer ({BALANCED.describe()}):")
    print(_render(balanced))

    s_ddr = {p.scale: p.speedup_vs_default for p in starved["ddr_bandwidth"]}
    s_clock = {p.scale: p.speedup_vs_default for p in starved["clock"]}
    b_clock = {p.scale: p.speedup_vs_default for p in balanced["clock"]}
    # Memory-bound regime: bandwidth is the binding resource.
    assert s_ddr[2.0] > s_clock[2.0]
    assert s_ddr[0.5] < 0.85
    # Balanced regime: compute-side scaling finally pays.
    assert b_clock[2.0] > 1.2
