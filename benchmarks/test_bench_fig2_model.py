"""Fig. 2 bench: the three-level performance-model design points."""

from repro.experiments import fig2_model


def test_bench_fig2_performance_model(benchmark):
    result = benchmark(fig2_model.run)
    print()
    print(fig2_model.render(result))
    assert abs(result.peak_gflops_cg - 742.4) < 0.1
    assert abs(result.rbw_direct_gbps - 139.2) < 0.1
    assert abs(result.eq5_rbw_gbps - 23.2) < 0.1
    assert result.direct_gflops < 3.0
    benchmark.extra_info["direct_gflops"] = round(result.direct_gflops, 2)
    benchmark.extra_info["hierarchical_gflops"] = round(result.hierarchical_gflops, 1)
