"""Table III bench: performance-model evaluation on one core group."""

from repro.experiments import table3


def test_bench_table3_model_evaluation(benchmark):
    rows = benchmark.pedantic(table3.run, rounds=1, iterations=1)
    print()
    print(table3.render(rows))
    for row in rows:
        assert abs(row.rbw_gbps - row.paper_rbw) < 0.1
        assert abs(row.measured_gflops - row.paper_measured) / row.paper_measured < 0.15
    benchmark.extra_info["rows"] = [
        (r.plan, r.ni, r.no, round(r.model_gflops), round(r.measured_gflops))
        for r in rows
    ]
