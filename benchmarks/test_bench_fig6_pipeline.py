"""Fig. 6 bench: dual-pipeline instruction reordering cycle counts."""

import pytest

from repro.experiments import fig6_pipeline
from repro.isa.kernels import GemmKernelSpec, gemm_kernel_reordered
from repro.isa.pipeline import DualPipelineSimulator


def test_bench_fig6_reordering(benchmark):
    rows = benchmark.pedantic(fig6_pipeline.run, rounds=1, iterations=1)
    print()
    print(fig6_pipeline.render(rows))
    for row in rows:
        assert row.original_cycles_per_iter == pytest.approx(26.0)
        assert row.reordered_ee == pytest.approx(row.paper_ee, abs=1e-9)
    benchmark.extra_info["ee_at_384"] = round(rows[-1].reordered_ee, 4)


def test_bench_pipeline_simulation_throughput(benchmark):
    """Raw simulator speed on the largest kernel (Ni=384, 48 iterations)."""
    spec = GemmKernelSpec.for_input_channels(384)
    program = gemm_kernel_reordered(spec)
    sim = DualPipelineSimulator()
    report = benchmark(sim.simulate, program)
    assert report.total_cycles == 5 + 17 * 47 + 16
