"""Executed data-parallel training bench: parity, scaling, overlap.

Records, into ``benchmarks/BENCH_dataparallel.json``, one executed
multi-node training run plus the modeled scaling story:

* an executed 4-node run of the small CNN — real replicas, sharded
  batches, exactly-rounded gradient allreduce — with its losses and
  ``comm.*`` traffic counters;
* the parity proof: N=1, 2 and 4 nodes trained on the same global
  batches produce bitwise-identical weights, and the one-node cluster is
  bitwise equal to plain single-node SGD;
* weak- and strong-scaling curves (1..64 nodes) of the VGG-ish stack and
  the overlap-vs-serialized ablation, both scheduled through the same
  bucketed allreduce timeline the executed run uses.

Acceptance bars asserted here: the parity proof holds, the overlapped
bucketed allreduce beats the serialized schedule by >= 1.2x at 16+
nodes, and the written record passes the schema the CI scale stage
validates (``python -m repro.scale.validate``).
"""

import json
import os

from repro.scale.report import build_dataparallel_report
from repro.scale.validate import (
    MIN_OVERLAP_SPEEDUP,
    validate_dataparallel_report,
)

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "BENCH_dataparallel.json"
)

NODES = 4
STEPS = 4
GLOBAL_BATCH = 32


def _dataparallel(record):
    report = build_dataparallel_report(
        nodes=NODES, steps=STEPS, global_batch=GLOBAL_BATCH
    )

    parity = report["parity"]
    assert parity["bitwise_identical"] is True, (
        f"N-node training does not reproduce single-node weights: {parity}"
    )
    assert report["replicas_in_lockstep"] is True
    worst = min(
        row["speedup"]
        for row in report["overlap_ablation"]
        if row["nodes"] >= 16
    )
    assert worst >= MIN_OVERLAP_SPEEDUP, (
        f"overlapped bucketed allreduce only {worst:.3f}x vs serialized at "
        f"16+ nodes (need >= {MIN_OVERLAP_SPEEDUP}x)"
    )
    violations = validate_dataparallel_report(report)
    assert violations == [], f"schema violations: {violations}"

    record.update(report)
    record["acceptance"] = {
        "parity_bar": "bitwise-identical weights at N=1/2/4 and vs plain SGD",
        "overlap_bar": f">= {MIN_OVERLAP_SPEEDUP}x vs serialized at 16+ nodes",
        "schema_bar": "passes repro.scale.validate (the CI scale gate)",
    }
    return worst


def test_bench_dataparallel(benchmark):
    record = {}
    worst_speedup = benchmark.pedantic(
        _dataparallel, args=(record,), rounds=1, iterations=1
    )
    with open(RESULTS_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print()
    print(json.dumps(record["overlap_ablation"], indent=2))
    benchmark.extra_info.update(record)
    assert worst_speedup >= MIN_OVERLAP_SPEEDUP
