"""The scorecard as a bench: the whole reproduction, audited in one run."""

from repro.experiments import scorecard


def test_bench_reproduction_scorecard(benchmark):
    checks = benchmark.pedantic(
        lambda: scorecard.run(fast=True), rounds=1, iterations=1
    )
    print()
    print(scorecard.render(checks))
    failures = [c.claim for c in checks if not c.passed]
    assert failures == [], f"claims failed: {failures}"
    benchmark.extra_info["claims"] = f"{len(checks) - len(failures)}/{len(checks)}"
