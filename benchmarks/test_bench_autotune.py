"""Autotuned-plan bench: tuned vs heuristic, fused vs unfused, sharded chip.

Records, into ``benchmarks/BENCH_autotune.json``:

* heuristic-planner vs autotuned per-CG Gflop/s on the Table III row-1
  configuration (Ni=No=128, 64x64 output, 3x3, B=128);
* fused conv->ReLU->pool step time of the *fusion-aware* tuned plan vs the
  heuristic plan followed by unfused ReLU and pooling memory passes;
* 1-CG vs 4-CG batch-sharded chip throughput;
* cold-tune vs warm-cache wall time, with the hit/measured counters that
  prove the warm run re-measured nothing.

The asserted floor — tuned+fused at least 1.3x the heuristic unfused
pipeline — is this PR's acceptance bar.
"""

import json
import os
import time

import numpy as np

from repro.core.conv import ConvolutionEngine
from repro.core.fusion import unfused_pipeline_seconds
from repro.core.params import ConvParams
from repro.core.planner import plan_convolution
from repro.core.reference import conv2d_reference
from repro.core.sharding import evaluate_chip_sharded
from repro.tune import PlanCache, autotune

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_autotune.json")

#: Table III row 1: the image-size-aware plan's flagship configuration.
ACCEPT_PARAMS = ConvParams.from_output(
    ni=128, no=128, ro=64, co=64, kr=3, kc=3, b=128
)
#: A mesh-divisible shape small enough for the functional parity check.
PARITY_PARAMS = ConvParams(ni=16, no=16, ri=10, ci=10, kr=3, kc=3, b=8)


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def test_bench_autotune(benchmark, tmp_path):
    record = {}

    # -- 1. heuristic vs tuned (unfused) -----------------------------------
    heuristic_plan = plan_convolution(ACCEPT_PARAMS).plan
    heuristic = ConvolutionEngine(heuristic_plan).evaluate()
    tuned = autotune(ACCEPT_PARAMS, cache=False, top_k=12, jobs=4)
    assert tuned.gflops >= heuristic.gflops, "tuner must never lose to heuristic"
    record["heuristic_vs_tuned"] = {
        "params": str(ACCEPT_PARAMS),
        "heuristic_gflops": round(heuristic.gflops, 1),
        "tuned_gflops": round(tuned.gflops, 1),
        "tuned_plan": tuned.candidate.describe(),
        "candidates": tuned.candidates,
        "measured": tuned.measured,
        "speedup": round(tuned.gflops / heuristic.gflops, 3),
    }

    # -- 2. fused pipeline vs unfused pipeline ------------------------------
    fused_tuned = autotune(ACCEPT_PARAMS, cache=False, top_k=12, jobs=4, fused_pool=2)
    fused_report = ConvolutionEngine(fused_tuned.plan, fused_pool=2).evaluate()
    unfused_seconds = unfused_pipeline_seconds(heuristic, ACCEPT_PARAMS, pool=2)
    pipeline_speedup = unfused_seconds / fused_report.seconds
    assert pipeline_speedup >= 1.3, (
        f"tuned+fused pipeline only {pipeline_speedup:.2f}x the heuristic "
        f"unfused path (acceptance bar is 1.3x)"
    )
    record["fused_vs_unfused"] = {
        "stack": "conv -> ReLU -> 2x2 avg pool",
        "unfused_heuristic_ms": round(unfused_seconds * 1e3, 3),
        "fused_tuned_ms": round(fused_report.seconds * 1e3, 3),
        "fused_plan": fused_tuned.candidate.describe(),
        "speedup": round(pipeline_speedup, 3),
    }

    # -- 3. multi-CG batch sharding -----------------------------------------
    one = evaluate_chip_sharded(ACCEPT_PARAMS, num_groups=1)
    four = evaluate_chip_sharded(ACCEPT_PARAMS, num_groups=4)
    assert four.gflops > 2.5 * one.gflops
    record["batch_sharding"] = {
        "one_cg_gflops": round(one.gflops, 1),
        "four_cg_gflops": round(four.gflops, 1),
        "scaling": round(four.gflops / one.gflops, 2),
        "four_cg_efficiency": round(four.efficiency, 3),
    }

    # -- 4. plan cache: cold tune, then warm hit ----------------------------
    cache = PlanCache(tmp_path)
    cold, cold_seconds = benchmark.pedantic(
        _timed,
        args=(autotune, ACCEPT_PARAMS),
        kwargs={"cache": cache, "top_k": 12, "jobs": 4},
        rounds=1,
        iterations=1,
    )
    warm, warm_seconds = _timed(
        autotune, ACCEPT_PARAMS, cache=cache, top_k=12, jobs=4
    )
    assert cold.source == "tuned" and warm.source == "cache"
    assert warm.measured == 0, "warm run must not re-measure"
    assert cache.stats.hits == 1
    assert warm.plan.signature() == cold.plan.signature()
    record["plan_cache"] = {
        "cold_tune_seconds": round(cold_seconds, 4),
        "warm_hit_seconds": round(warm_seconds, 4),
        "cold_measured": cold.measured,
        "warm_measured": warm.measured,
        "hits": cache.stats.hits,
        "misses": cache.stats.misses,
        "stores": cache.stats.stores,
    }

    # -- 5. parity: the tuned plan computes the reference convolution -------
    parity_tuned = autotune(PARITY_PARAMS, cache=False, top_k=4)
    rng = np.random.default_rng(0xC0FFEE)
    x = rng.standard_normal(PARITY_PARAMS.input_shape)
    w = rng.standard_normal(PARITY_PARAMS.filter_shape)
    out, _ = ConvolutionEngine(parity_tuned.plan).run(x, w)
    assert np.allclose(out, conv2d_reference(x, w))
    record["parity"] = {
        "params": str(PARITY_PARAMS),
        "tuned_plan": parity_tuned.candidate.describe(),
        "matches_reference": True,
    }

    with open(RESULTS_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print()
    print(json.dumps(record, indent=2))
    benchmark.extra_info.update(record)
