"""Table II bench: DMA micro-benchmark over all measured block sizes."""

from repro.experiments import table2


def test_bench_table2_dma_bandwidth(benchmark):
    rows = benchmark.pedantic(table2.run, rounds=1, iterations=1)
    print()
    print(table2.render(rows))
    for row in rows:
        assert abs(row.get_gbps - row.paper_get) < 0.01
        assert abs(row.put_gbps - row.paper_put) < 0.01
    benchmark.extra_info["rows"] = [
        (r.size_bytes, round(r.get_gbps, 2), round(r.put_gbps, 2)) for r in rows
    ]
