"""Extension bench: a full VGG-16 training step on one simulated chip.

The end-to-end number the paper's per-kernel evaluation points toward:
what one SW26010 delivers training an ImageNet-class network, layer by
layer, through the same plans the Fig. 7 sweep uses.
"""

from repro.common.tables import TextTable
from repro.core.zoo import time_network


def test_bench_extension_vgg16_training_step(benchmark):
    timing = benchmark.pedantic(
        lambda: time_network("vgg16", batch=32), rounds=1, iterations=1
    )
    table = TextTable(
        ["layer", "kind", "Gflops", "fwd (ms)", "bwd (ms)"], float_fmt="{:.1f}"
    )
    for layer in timing.layers:
        table.add_row(
            [
                layer.name,
                layer.kind,
                layer.flops / 1e9,
                layer.forward_seconds * 1e3,
                layer.backward_seconds * 1e3,
            ]
        )
    print()
    print("Extension — VGG-16 training step on one SW26010 (batch 32)")
    print(table.render())
    print(
        f"step: {timing.step_seconds * 1e3:.0f} ms, "
        f"{timing.images_per_second:.1f} images/s, "
        f"{timing.sustained_gflops / 1e3:.2f} Tflops sustained"
    )
    assert len(timing.layers) == 16
    # The sustained rate should sit in the same band as the Fig. 7 layers.
    assert 0.8e3 < timing.sustained_gflops < 2.97e3
    # Convolutions dominate an ImageNet-class network (Section III-A).
    conv_time = sum(l.total_seconds for l in timing.layers if l.kind == "conv")
    assert conv_time / timing.step_seconds > 0.9
    benchmark.extra_info["images_per_second"] = round(timing.images_per_second, 1)
