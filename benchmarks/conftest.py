"""Benchmark harness configuration.

Each ``test_bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md's experiment index).  The regenerated rows are printed to
stdout (run ``pytest benchmarks/ --benchmark-only -s`` to see them inline)
and attached to the benchmark records as ``extra_info``.
"""

import pytest


def pytest_collection_modifyitems(items):
    # Benchmarks are ordered to mirror the paper's presentation.
    order = ["table2", "fig2", "fig6", "fig7", "fig9", "table3", "algos",
             "scaling", "ablation", "telemetry", "serve", "chaos",
             "dataparallel"]

    def key(item):
        for i, name in enumerate(order):
            if name in item.nodeid:
                return i
        return len(order)

    items.sort(key=key)
