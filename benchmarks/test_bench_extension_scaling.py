"""Extension bench: data-parallel training scaling across TaihuLight nodes.

Not a figure of the paper — it quantifies the direction the paper's
introduction motivates (scaling one network's training across the
machine), using the same timed substrate as the single-chip results.
"""

from repro.common.tables import TextTable
from repro.scale.data_parallel import DataParallelModel, vgg_like_stack


def test_bench_extension_weak_scaling(benchmark):
    model = DataParallelModel(vgg_like_stack(batch=64, channels=64))

    def sweep():
        return model.weak_scaling([1, 4, 16, 64, 256, 1024, 4096], per_node_batch=64)

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = TextTable(
        ["nodes", "iter (ms)", "comm (ms)", "samples/s", "efficiency"],
        float_fmt="{:.2f}",
    )
    for p in points:
        table.add_row(
            [
                p.nodes,
                p.iteration_seconds * 1e3,
                p.comm_seconds * 1e3,
                p.samples_per_second,
                p.efficiency,
            ]
        )
    print()
    print("Extension — weak scaling of data-parallel training (per-node batch 64)")
    print(table.render())
    assert points[0].efficiency == 1.0
    assert points[3].efficiency > 0.7  # 64 nodes still healthy
    effs = [p.efficiency for p in points]
    assert all(a >= b - 1e-9 for a, b in zip(effs, effs[1:]))


def test_bench_extension_strong_scaling(benchmark):
    model = DataParallelModel(vgg_like_stack(batch=64, channels=64))

    def sweep():
        return model.strong_scaling([1, 4, 16, 64, 256], global_batch=1024)

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("Extension — strong scaling (global batch 1024)")
    for p in points:
        print(f"  {p.nodes:5d} nodes: {p.iteration_seconds * 1e3:8.2f} ms/iter, "
              f"{p.samples_per_second:10.0f} samples/s, eff {p.efficiency:.2f}")
    assert points[1].samples_per_second > points[0].samples_per_second
