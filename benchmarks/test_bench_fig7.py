"""Fig. 7 bench: all 101 channel configurations vs the K40m comparator."""

from repro.experiments import fig7


def test_bench_fig7_channel_sweep(benchmark):
    summary = benchmark.pedantic(fig7.run, rounds=1, iterations=1)
    print()
    print(fig7.render(summary))
    assert len(summary.rows) == 101
    # Shape claims of Section VII.
    assert summary.min_speedup > 1.5, "swDNN must beat cuDNN on every config"
    assert summary.max_speedup < 15.0, "speedup band should resemble 1.91-9.75x"
    assert summary.fraction_above_1p6 > 0.5, "'most cases above 1.6 Tflops'"
    assert summary.variation("swdnn") < summary.variation("k40m"), (
        "swDNN stable where cuDNN is jagged"
    )
    benchmark.extra_info["speedup_range"] = (
        round(summary.min_speedup, 2),
        round(summary.max_speedup, 2),
    )
    benchmark.extra_info["fraction_above_1.6T"] = round(
        summary.fraction_above_1p6, 2
    )
