"""Section III-D bench: multi-core-group scaling."""

from repro.experiments import scaling


def test_bench_multi_cg_scaling(benchmark):
    rows = benchmark.pedantic(scaling.run, rounds=1, iterations=1)
    print()
    print(scaling.render(rows))
    assert all(r.parallel_efficiency > 0.9 for r in rows)
    benchmark.extra_info["efficiency_at_4cg"] = round(
        rows[-1].parallel_efficiency, 3
    )
