"""Telemetry bench: instrumented-vs-disabled overhead + Table III drift.

Records, into ``benchmarks/BENCH_telemetry.json``:

* wall time of a Table III row-1 schedule walk and of a steady-state
  ``mesh-fast`` forward pass, with telemetry disabled (the null-singleton
  default) vs an attached :class:`~repro.telemetry.Telemetry` session,
  plus the relative overhead of each;
* the per-layer model-vs-measured drift report for the four Table III
  configurations (``drift_report(...).as_dict()``).

The acceptance bars asserted here: the *disabled* path must stay within
2% of the instrumented run's floor (i.e. enabling telemetry never makes
the disabled path the slower one by more than noise), and the enabled
session itself must cost < 50% on the schedule walk — it is a profiling
tool, not a production tax, but it must not be pathological either.
"""

import json
import os
import time
import tracemalloc

import numpy as np

from repro.core.conv import ConvolutionEngine, clear_timing_cache
from repro.core.ldm_blocking import ImageBlocking
from repro.core.params import ConvParams
from repro.core.planner import plan_convolution
from repro.core.plans import ImageSizeAwarePlan
from repro.experiments.table3 import PAPER_ROWS
from repro.telemetry import Telemetry
from repro.telemetry.drift import drift_report

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_telemetry.json")

#: Table III row 1 (Ni=128, No=128, 64x64 output, 3x3 filters, B=128).
ROW1 = ConvParams.from_output(ni=128, no=128, ro=64, co=64, kr=3, kc=3, b=128)

#: Small fast-path layer for the functional-run overhead measurement.
FAST_PARAMS = ConvParams.from_output(ni=8, no=8, ro=64, co=64, kr=3, kc=3, b=128)
FAST_BLOCKING = ImageBlocking(b_b=128, b_co=64)

#: Absolute timing slack for the disabled-vs-enabled comparisons: one
#: scheduler quantum of jitter, which a percentage bar cannot absorb when
#: the measured interval is itself only a few milliseconds.
NOISE_FLOOR_SECONDS = 250e-6


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _walk_seconds(telemetry):
    engine = ConvolutionEngine(plan_convolution(ROW1).plan, telemetry=telemetry)

    def walk():
        clear_timing_cache()
        engine.evaluate()

    return _best_of(walk)


def _fast_run_seconds(telemetry):
    engine = ConvolutionEngine(
        ImageSizeAwarePlan(FAST_PARAMS, blocking=FAST_BLOCKING),
        backend="mesh-fast",
        telemetry=telemetry,
    )
    rng = np.random.default_rng(0xFEED)
    x = rng.standard_normal(FAST_PARAMS.input_shape)
    w = rng.standard_normal(FAST_PARAMS.filter_shape)
    engine.run(x, w)  # verification run: certifies the fast path
    return _best_of(lambda: engine.run(x, w), repeats=3)


def test_bench_telemetry(benchmark):
    record = {}

    # -- 1. schedule-walk overhead: disabled vs enabled session ------------
    # The walk takes single-digit milliseconds, so a 2% bar is well below
    # this machine's scheduling noise for any single measurement.  Run the
    # two sides in adjacent pairs (order flipped each round so a monotone
    # drift — frequency ramp, cache warming — cannot systematically favor
    # one side) and hold the *median* per-round ratio to the bar: one
    # noisy round cannot fail the bench, a real regression still does.
    # A real regression moves both the typical (median per-round ratio)
    # and the floor (best-vs-best ratio); noise rarely moves both, so the
    # bar only trips when the two signals agree.
    disabled_walk = enabled_walk = float("inf")
    ratios = []
    for round_index in range(8):
        if round_index % 2 == 0:
            d = _walk_seconds(None)
            e = _walk_seconds(Telemetry())
        else:
            e = _walk_seconds(Telemetry())
            d = _walk_seconds(None)
        disabled_walk = min(disabled_walk, d)
        enabled_walk = min(enabled_walk, e)
        ratios.append(d / e)
    ratios.sort()
    median_ratio = (ratios[3] + ratios[4]) / 2.0
    best_ratio = disabled_walk / enabled_walk
    walk_overhead = enabled_walk / disabled_walk - 1.0
    # 2% relative, plus an absolute scheduler/timer allowance that only
    # matters for millisecond-scale measurements like the walk.
    walk_bar = 1.02 + NOISE_FLOOR_SECONDS / enabled_walk
    assert min(median_ratio, best_ratio) <= walk_bar, (
        f"disabled walk typically {median_ratio:.3f}x the enabled walk "
        f"(best-vs-best {best_ratio:.3f}x, {disabled_walk:.4f}s vs "
        f"{enabled_walk:.4f}s) — beyond the 2% noise bar"
    )
    assert walk_overhead < 0.50, (
        f"enabled telemetry costs {walk_overhead:.1%} on the schedule walk"
    )
    record["schedule_walk"] = {
        "params": str(ROW1),
        "disabled_seconds": round(disabled_walk, 5),
        "enabled_seconds": round(enabled_walk, 5),
        "enabled_overhead_pct": round(100.0 * walk_overhead, 2),
    }

    # -- 2. fast-path forward overhead: disabled vs enabled session --------
    # One discarded warm-up run first: the very first fast-path engine in
    # the process pays one-time costs (plan construction, lazy imports,
    # allocator warm-up) that would otherwise be billed to whichever side
    # happens to run first and swamp the <2% comparison.
    _fast_run_seconds(None)
    d1 = benchmark.pedantic(
        _fast_run_seconds, args=(None,), rounds=1, iterations=1
    )
    # Same paired median-or-best treatment as the schedule walk above.
    e1 = _fast_run_seconds(Telemetry())
    e2 = _fast_run_seconds(Telemetry())
    d2 = _fast_run_seconds(None)
    d3 = _fast_run_seconds(None)
    e3 = _fast_run_seconds(Telemetry())
    run_ratios = sorted([d1 / e1, d2 / e2, d3 / e3])
    disabled_run = min(d1, d2, d3)
    enabled_run = min(e1, e2, e3)
    run_overhead = enabled_run / disabled_run - 1.0
    run_bar = 1.02 + NOISE_FLOOR_SECONDS / enabled_run
    assert min(run_ratios[1], disabled_run / enabled_run) <= run_bar, (
        f"disabled fast path typically {run_ratios[1]:.3f}x the enabled "
        f"run (best {disabled_run:.4f}s vs {enabled_run:.4f}s) — beyond "
        f"the 2% noise bar"
    )
    record["fast_path_forward"] = {
        "params": str(FAST_PARAMS),
        "disabled_seconds": round(disabled_run, 5),
        "enabled_seconds": round(enabled_run, 5),
        "enabled_overhead_pct": round(100.0 * run_overhead, 2),
    }

    # -- 3. metrics/flight sink cost: disabled bytes + enabled ns/op -------
    # The disabled contract is absolute: a hot loop against the null
    # metrics/flight singletons allocates zero bytes inside the telemetry
    # modules.  The enabled sinks are then timed per operation — they are
    # bounded-memory by construction, so per-op cost is the whole story.
    from repro.telemetry import NULL_FLIGHT, NULL_METRICS

    ops = 20000
    NULL_METRICS.observe("serve.latency_ms", 1.0)  # warm interning caches
    NULL_FLIGHT.record("request.submit", request=0)
    telemetry_files = tracemalloc.Filter(True, "*/repro/telemetry/*")
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot().filter_traces([telemetry_files])
        for i in range(ops):
            NULL_METRICS.observe("serve.latency_ms", float(i))
            NULL_METRICS.sample("serve.queue_depth", i * 1e-3, i)
            NULL_FLIGHT.record("request.submit", request=i)
        after = tracemalloc.take_snapshot().filter_traces([telemetry_files])
    finally:
        tracemalloc.stop()
    disabled_bytes = sum(
        stat.size_diff for stat in after.compare_to(before, "filename")
    )
    assert disabled_bytes <= 0, (
        f"disabled metrics/flight allocated {disabled_bytes} bytes"
    )

    session = Telemetry()

    def _ns_per_op(fn):
        start = time.perf_counter()
        for i in range(ops):
            fn(i)
        return (time.perf_counter() - start) / ops * 1e9

    record["metrics_flight"] = {
        "ops": ops,
        "disabled_bytes_allocated": disabled_bytes,
        "observe_ns": round(
            _ns_per_op(lambda i: session.metrics.observe("m.hist", float(i))), 1
        ),
        "sample_ns": round(
            _ns_per_op(lambda i: session.metrics.sample("m.series", i * 1e-3, i)),
            1,
        ),
        "flight_record_ns": round(
            _ns_per_op(lambda i: session.flight.record("request.submit", request=i)),
            1,
        ),
    }

    # -- 4. Table III drift report -----------------------------------------
    configs = [
        ConvParams.from_output(ni=row[3], no=row[4], ro=64, co=64, kr=3, kc=3, b=128)
        for row in PAPER_ROWS
    ]
    report = drift_report(configs)
    assert len(report.rows) == len(PAPER_ROWS)
    record["table3_drift"] = report.as_dict()

    with open(RESULTS_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print()
    print(json.dumps(record, indent=2))
    benchmark.extra_info.update(record)
