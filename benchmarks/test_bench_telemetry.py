"""Telemetry bench: instrumented-vs-disabled overhead + Table III drift.

Records, into ``benchmarks/BENCH_telemetry.json``:

* wall time of a Table III row-1 schedule walk and of a steady-state
  ``mesh-fast`` forward pass, with telemetry disabled (the null-singleton
  default) vs an attached :class:`~repro.telemetry.Telemetry` session,
  plus the relative overhead of each;
* the per-layer model-vs-measured drift report for the four Table III
  configurations (``drift_report(...).as_dict()``).

The acceptance bars asserted here: the *disabled* path must stay within
2% of the instrumented run's floor (i.e. enabling telemetry never makes
the disabled path the slower one by more than noise), and the enabled
session itself must cost < 50% on the schedule walk — it is a profiling
tool, not a production tax, but it must not be pathological either.
"""

import json
import os
import time

import numpy as np

from repro.core.conv import ConvolutionEngine, clear_timing_cache
from repro.core.ldm_blocking import ImageBlocking
from repro.core.params import ConvParams
from repro.core.planner import plan_convolution
from repro.core.plans import ImageSizeAwarePlan
from repro.experiments.table3 import PAPER_ROWS
from repro.telemetry import Telemetry
from repro.telemetry.drift import drift_report

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_telemetry.json")

#: Table III row 1 (Ni=128, No=128, 64x64 output, 3x3 filters, B=128).
ROW1 = ConvParams.from_output(ni=128, no=128, ro=64, co=64, kr=3, kc=3, b=128)

#: Small fast-path layer for the functional-run overhead measurement.
FAST_PARAMS = ConvParams.from_output(ni=8, no=8, ro=64, co=64, kr=3, kc=3, b=128)
FAST_BLOCKING = ImageBlocking(b_b=128, b_co=64)


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _walk_seconds(telemetry):
    engine = ConvolutionEngine(plan_convolution(ROW1).plan, telemetry=telemetry)

    def walk():
        clear_timing_cache()
        engine.evaluate()

    return _best_of(walk)


def _fast_run_seconds(telemetry):
    engine = ConvolutionEngine(
        ImageSizeAwarePlan(FAST_PARAMS, blocking=FAST_BLOCKING),
        backend="mesh-fast",
        telemetry=telemetry,
    )
    rng = np.random.default_rng(0xFEED)
    x = rng.standard_normal(FAST_PARAMS.input_shape)
    w = rng.standard_normal(FAST_PARAMS.filter_shape)
    engine.run(x, w)  # verification run: certifies the fast path
    return _best_of(lambda: engine.run(x, w), repeats=3)


def test_bench_telemetry(benchmark):
    record = {}

    # -- 1. schedule-walk overhead: disabled vs enabled session ------------
    disabled_walk = _walk_seconds(None)
    enabled_walk = _walk_seconds(Telemetry())
    walk_overhead = enabled_walk / disabled_walk - 1.0
    assert disabled_walk <= enabled_walk * 1.02, (
        f"disabled walk ({disabled_walk:.4f}s) slower than enabled "
        f"({enabled_walk:.4f}s) beyond the 2% noise bar"
    )
    assert walk_overhead < 0.50, (
        f"enabled telemetry costs {walk_overhead:.1%} on the schedule walk"
    )
    record["schedule_walk"] = {
        "params": str(ROW1),
        "disabled_seconds": round(disabled_walk, 5),
        "enabled_seconds": round(enabled_walk, 5),
        "enabled_overhead_pct": round(100.0 * walk_overhead, 2),
    }

    # -- 2. fast-path forward overhead: disabled vs enabled session --------
    disabled_run = benchmark.pedantic(
        _fast_run_seconds, args=(None,), rounds=1, iterations=1
    )
    enabled_run = _fast_run_seconds(Telemetry())
    run_overhead = enabled_run / disabled_run - 1.0
    assert disabled_run <= enabled_run * 1.02, (
        f"disabled fast path ({disabled_run:.4f}s) slower than enabled "
        f"({enabled_run:.4f}s) beyond the 2% noise bar"
    )
    record["fast_path_forward"] = {
        "params": str(FAST_PARAMS),
        "disabled_seconds": round(disabled_run, 5),
        "enabled_seconds": round(enabled_run, 5),
        "enabled_overhead_pct": round(100.0 * run_overhead, 2),
    }

    # -- 3. Table III drift report -----------------------------------------
    configs = [
        ConvParams.from_output(ni=row[3], no=row[4], ro=64, co=64, kr=3, kc=3, b=128)
        for row in PAPER_ROWS
    ]
    report = drift_report(configs)
    assert len(report.rows) == len(PAPER_ROWS)
    record["table3_drift"] = report.as_dict()

    with open(RESULTS_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print()
    print(json.dumps(record, indent=2))
    benchmark.extra_info.update(record)
