"""Fig. 9 bench: the filter-size sweep (3x3 .. 21x21)."""

from repro.experiments import fig9


def test_bench_fig9_filter_sweep(benchmark):
    summary = benchmark.pedantic(fig9.run, rounds=1, iterations=1)
    print()
    print(fig9.render(summary))
    assert len(summary.rows) == 30
    assert summary.min_speedup > 1.5
    by_filter = summary.speedup_by_filter()
    sizes = sorted(by_filter)
    # cuDNN v5 falls off at large filters; swDNN does not.
    assert by_filter[sizes[-1]] > by_filter[sizes[0]]
    benchmark.extra_info["speedup_by_filter"] = {
        k: round(v, 2) for k, v in by_filter.items()
    }
