"""Extension bench: the precision what-if of Section VII's aside.

The paper evaluates in double precision because SW26010's vector units
cannot run faster in narrower types; this bench quantifies what single and
half precision would still buy purely from bandwidth relief — and where
the compute roof caps the win.
"""

from repro.common.tables import TextTable
from repro.core.params import ConvParams
from repro.core.plans import BatchSizeAwarePlan
from repro.perf.precision import precision_sweep


def test_bench_extension_precision(benchmark):
    params = ConvParams.from_output(ni=256, no=256, ro=64, co=64, kr=3, kc=3, b=128)
    estimate = BatchSizeAwarePlan(params).estimate()

    points = benchmark.pedantic(
        lambda: precision_sweep(estimate), rounds=1, iterations=1
    )
    table = TextTable(
        ["precision", "RBW (GB/s)", "MBW (GB/s)", "Gflops", "bound", "speedup"],
        float_fmt="{:.2f}",
    )
    for p in points:
        table.add_row(
            [p.precision, p.rbw_gbps, p.mbw_gbps, p.modeled_gflops, p.bound,
             p.speedup_vs_double]
        )
    print()
    print("Extension — storage precision what-if (arithmetic fixed at DP peak)")
    print(table.render())
    assert points[0].speedup_vs_double == 1.0
    assert 1.0 < points[2].speedup_vs_double < 4.0
