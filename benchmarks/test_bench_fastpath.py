"""Fast-path engine bench: before/after throughput of the ``mesh-fast`` tier.

Records, into ``benchmarks/BENCH_fastpath.json``:

* per-convolution wall time of the full bus-protocol simulation (``mesh``)
  vs the verified fast path (``mesh-fast``, steady state) on a Fig. 7-style
  layer, with the bit-identity check and the speedup;
* configurations/second for a Fig. 7 subset, serial vs ``jobs=4``;
* end-to-end train-step time of the ``examples/train_cnn.py`` network
  (first step pays planning, steady step reuses every memoized layer).

The speedup floor asserted here (>= 5x) is the PR's acceptance bar; the
measured ratio is typically far higher.
"""

import json
import os
import time

import numpy as np

from repro.core.conv import ConvolutionEngine, clear_timing_cache
from repro.core.layers import SoftmaxCrossEntropy
from repro.core.ldm_blocking import ImageBlocking
from repro.core.network import SGD, synthetic_image_dataset
from repro.core.params import ConvParams
from repro.core.plans import ImageSizeAwarePlan
from repro.experiments import fig7

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_fastpath.json")

#: The acceptance configuration: 64x64 output, 3x3 filters, B=128.
ACCEPT_PARAMS = ConvParams.from_output(ni=8, no=8, ro=64, co=64, kr=3, kc=3, b=128)
#: Fixed blocking so both backends execute the identical tile schedule.
ACCEPT_BLOCKING = ImageBlocking(b_b=128, b_co=64)


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def test_bench_fastpath(benchmark):
    record = {}

    # -- 1. conv forward: mesh vs mesh-fast, same plan, same inputs --------
    rng = np.random.default_rng(0xC0FFEE)
    x = rng.standard_normal(ACCEPT_PARAMS.input_shape)
    w = rng.standard_normal(ACCEPT_PARAMS.filter_shape)

    def plan():
        return ImageSizeAwarePlan(ACCEPT_PARAMS, blocking=ACCEPT_BLOCKING)

    mesh_engine = ConvolutionEngine(plan(), backend="mesh")
    (y_mesh, _), mesh_seconds = _timed(mesh_engine.run, x, w)

    fast_engine = ConvolutionEngine(plan(), backend="mesh-fast")
    (y_first, _), verify_seconds = _timed(fast_engine.run, x, w)
    (y_fast, _), fast_seconds = benchmark.pedantic(
        _timed, args=(fast_engine.run, x, w), rounds=1, iterations=1
    )

    assert np.array_equal(y_mesh, y_first), "verification run must match mesh"
    assert np.array_equal(y_mesh, y_fast), "fast path must stay bit-identical"
    speedup = mesh_seconds / fast_seconds
    assert speedup >= 5.0, (
        f"fast path only {speedup:.1f}x faster than mesh "
        f"({mesh_seconds:.3f}s vs {fast_seconds:.3f}s)"
    )
    record["conv_forward"] = {
        "params": str(ACCEPT_PARAMS),
        "blocking": {"b_b": ACCEPT_BLOCKING.b_b, "b_co": ACCEPT_BLOCKING.b_co},
        "mesh_seconds": round(mesh_seconds, 4),
        "mesh_fast_verify_seconds": round(verify_seconds, 4),
        "mesh_fast_seconds": round(fast_seconds, 4),
        "speedup": round(speedup, 1),
        "bit_identical": True,
    }

    # -- 2. Fig. 7 subset: configurations/second, serial vs --jobs 4 ------
    configs = fig7.fig7_configs()[:12]
    clear_timing_cache()
    serial, serial_seconds = _timed(fig7.run, configs=configs, jobs=1)
    parallel, parallel_seconds = _timed(fig7.run, configs=configs, jobs=4)
    assert parallel == serial, "--jobs must not change results"
    record["fig7_subset"] = {
        "configs": len(configs),
        "serial_seconds": round(serial_seconds, 4),
        "jobs4_seconds": round(parallel_seconds, 4),
        "serial_configs_per_second": round(len(configs) / serial_seconds, 2),
        "jobs4_configs_per_second": round(len(configs) / parallel_seconds, 2),
    }

    # -- 3. examples/train_cnn.py: end-to-end train step -------------------
    import importlib.util

    example = os.path.join(
        os.path.dirname(__file__), os.pardir, "examples", "train_cnn.py"
    )
    spec = importlib.util.spec_from_file_location("train_cnn_bench", example)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    net_rng = np.random.default_rng(7)
    data, labels = synthetic_image_dataset(
        num_samples=16, channels=4, height=12, width=12, num_classes=10, rng=net_rng
    )
    network = module.build_network(net_rng)
    optimizer = SGD(network, lr=0.02, momentum=0.9)
    loss_head = SoftmaxCrossEntropy()

    def train_step():
        loss = loss_head.forward(network.forward(data), labels)
        network.backward(loss_head.backward())
        optimizer.step()
        return loss

    _, first_step_seconds = _timed(train_step)  # pays planning
    _, steady_step_seconds = _timed(train_step)  # memoized plans + engines
    record["train_step"] = {
        "batch": int(data.shape[0]),
        "first_step_seconds": round(first_step_seconds, 4),
        "steady_step_seconds": round(steady_step_seconds, 4),
    }

    with open(RESULTS_PATH, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print()
    print(json.dumps(record, indent=2))
    benchmark.extra_info.update(record)
