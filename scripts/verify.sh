#!/usr/bin/env sh
# Repo verification: tier-1 suite + seeded fault-sweep smoke test.
#
# Both stages run under a hard coreutils timeout(1) so a wedged sweep (a
# hung worker, a deadlocked pool) fails loudly instead of hanging CI.
# Exit code is non-zero if either stage fails or times out.
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH="${PYTHONPATH:-src}"

TIER1_TIMEOUT="${TIER1_TIMEOUT:-1200}"
FAULTS_TIMEOUT="${FAULTS_TIMEOUT:-300}"
TUNE_TIMEOUT="${TUNE_TIMEOUT:-120}"
ZOO_TIMEOUT="${ZOO_TIMEOUT:-300}"
PROFILE_TIMEOUT="${PROFILE_TIMEOUT:-120}"
SERVE_TIMEOUT="${SERVE_TIMEOUT:-180}"
FLEET_TIMEOUT="${FLEET_TIMEOUT:-180}"
CHAOS_TIMEOUT="${CHAOS_TIMEOUT:-180}"
SCALE_TIMEOUT="${SCALE_TIMEOUT:-180}"
METRICS_TIMEOUT="${METRICS_TIMEOUT:-180}"
REGRESS_TIMEOUT="${REGRESS_TIMEOUT:-60}"

echo "== tier-1 suite (timeout ${TIER1_TIMEOUT}s) =="
timeout "${TIER1_TIMEOUT}" python -m pytest -x -q

echo "== seeded fault-sweep smoke test (timeout ${FAULTS_TIMEOUT}s) =="
timeout "${FAULTS_TIMEOUT}" python -m pytest -x -q -m faults tests/faults

echo "== autotuner smoke test (timeout ${TUNE_TIMEOUT}s) =="
timeout "${TUNE_TIMEOUT}" python -m pytest -x -q -m tune tests/tune

echo "== conv algorithm zoo smoke test (timeout ${ZOO_TIMEOUT}s) =="
timeout "${ZOO_TIMEOUT}" python -m pytest -x -q -m zoo tests/tune

echo "== telemetry profile smoke test (timeout ${PROFILE_TIMEOUT}s) =="
PROFILE_TRACE="$(mktemp /tmp/repro-profile-XXXXXX.json)"
CHAOS_REPORT=""
SCALE_REPORT=""
trap 'rm -f "${PROFILE_TRACE}" ${CHAOS_REPORT:+"${CHAOS_REPORT}"} ${SCALE_REPORT:+"${SCALE_REPORT}"}' EXIT
timeout "${PROFILE_TIMEOUT}" python -m repro profile \
    --ni 32 --no 32 --out 16 --batch 16 --tiles 8 --guarded \
    --trace-out "${PROFILE_TRACE}"
timeout "${PROFILE_TIMEOUT}" python -m repro.telemetry.validate "${PROFILE_TRACE}"

echo "== serve suite + smoke (timeout ${SERVE_TIMEOUT}s) =="
timeout "${SERVE_TIMEOUT}" python -m pytest -x -q -m serve tests/serve
timeout "${SERVE_TIMEOUT}" python -m repro serve --smoke

echo "== multi-chip fleet smoke + schema gate (timeout ${FLEET_TIMEOUT}s) =="
# The fleet smoke routes a skewed multi-shape trace across 4 simulated
# chips and asserts balanced per-chip counters and a zero-wrong-answer
# parity audit; the chaos variant kills a home chip mid-run and asserts
# route-around.  The validator then gates the committed benchmark record
# (scaling at matched p99, affinity hit rate, bit-identity).
timeout "${FLEET_TIMEOUT}" python -m repro serve --chips 4 --smoke
timeout "${FLEET_TIMEOUT}" python -m repro serve --chips 3 --chaos \
    --requests 48 --smoke
if [ -f benchmarks/BENCH_fleet.json ]; then
    timeout "${FLEET_TIMEOUT}" python -m repro.serve.validate \
        benchmarks/BENCH_fleet.json
fi

echo "== chaos-serve smoke + schema gate (timeout ${CHAOS_TIMEOUT}s) =="
# The smoke asserts availability under seeded dma+cpe faults and the
# zero-wrong-answer parity audit; the validator then checks the emitted
# report and the committed benchmark record against the same schema.
CHAOS_REPORT="$(mktemp /tmp/repro-chaos-XXXXXX.json)"
timeout "${CHAOS_TIMEOUT}" python -m repro serve --chaos --smoke \
    --json-out "${CHAOS_REPORT}"
timeout "${CHAOS_TIMEOUT}" python -m repro.faults.validate "${CHAOS_REPORT}"
if [ -f benchmarks/BENCH_chaos_serve.json ]; then
    timeout "${CHAOS_TIMEOUT}" python -m repro.faults.validate \
        benchmarks/BENCH_chaos_serve.json
fi

echo "== data-parallel scale smoke + schema gate (timeout ${SCALE_TIMEOUT}s) =="
# The smoke trains the same global batches on 1/2/4 executed nodes and
# asserts bitwise-identical weights; the validator then checks the
# emitted report and the committed benchmark record against the same
# schema (parity proof, sorted scaling curves, >=1.2x overlap at scale).
timeout "${SCALE_TIMEOUT}" python -m pytest -x -q -m scale tests/scale
SCALE_REPORT="$(mktemp /tmp/repro-scale-XXXXXX.json)"
timeout "${SCALE_TIMEOUT}" python -m repro train --nodes 3 --smoke \
    --json-out "${SCALE_REPORT}"
timeout "${SCALE_TIMEOUT}" python -m repro.scale.validate "${SCALE_REPORT}"
if [ -f benchmarks/BENCH_dataparallel.json ]; then
    timeout "${SCALE_TIMEOUT}" python -m repro.scale.validate \
        benchmarks/BENCH_dataparallel.json
fi

echo "== metrics smoke: dashboard + exposition round-trip (timeout ${METRICS_TIMEOUT}s) =="
# A seeded serve run with the metrics registry enabled: the smoke asserts
# non-trivial latency histograms, a queue-depth time series, and that the
# OpenMetrics exposition parses and agrees with the JSON snapshot.
timeout "${METRICS_TIMEOUT}" python -m repro metrics --smoke \
    --requests 48 > /dev/null

echo "== bench regression gate (timeout ${REGRESS_TIMEOUT}s) =="
# Re-derives every headline scalar from the committed BENCH_*.json ledger
# and fails with a delta table on any per-metric tolerance violation
# (self-comparison here: the extractors and invariant metrics must hold).
timeout "${REGRESS_TIMEOUT}" python -m repro.telemetry.regress benchmarks

echo "verify: OK"
