PYTHONPATH := src
export PYTHONPATH

.PHONY: test faults tune verify

test:
	python -m pytest -x -q

faults:
	python -m pytest -x -q -m faults tests/faults

tune:
	python -m pytest -x -q -m tune tests/tune

verify:
	sh scripts/verify.sh
