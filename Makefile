PYTHONPATH := src
export PYTHONPATH

.PHONY: test faults tune zoo profile serve fleet chaos scale metrics regress verify

test:
	python -m pytest -x -q

faults:
	python -m pytest -x -q -m faults tests/faults

tune:
	python -m pytest -x -q -m tune tests/tune

zoo:
	python -m pytest -x -q -m zoo tests/tune

profile:
	python -m repro profile --ni 32 --no 32 --out 16 --batch 16 \
	    --tiles 8 --guarded --trace-out /tmp/repro-profile.json
	python -m repro.telemetry.validate /tmp/repro-profile.json

serve:
	python -m pytest -x -q -m serve tests/serve
	python -m repro serve --smoke

fleet:
	python -m repro serve --chips 4 --smoke
	python -m repro serve --chips 3 --chaos --requests 48 --smoke
	python -m repro.serve.validate benchmarks/BENCH_fleet.json

chaos:
	python -m repro serve --chaos --smoke --json-out /tmp/repro-chaos.json
	python -m repro.faults.validate /tmp/repro-chaos.json

scale:
	python -m pytest -x -q -m scale tests/scale
	python -m repro train --nodes 3 --smoke --json-out /tmp/repro-scale.json
	python -m repro.scale.validate /tmp/repro-scale.json

metrics:
	python -m repro metrics --smoke --requests 48

regress:
	python -m repro.telemetry.regress benchmarks

verify:
	sh scripts/verify.sh
