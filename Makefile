PYTHONPATH := src
export PYTHONPATH

.PHONY: test faults verify

test:
	python -m pytest -x -q

faults:
	python -m pytest -x -q -m faults tests/faults

verify:
	sh scripts/verify.sh
