"""Span recording and Chrome ``trace_event`` export."""

import json

import pytest

from repro.telemetry import NULL_TRACER, PID_SIM, PID_WALL, SpanTracer
from repro.telemetry.spans import TID_HOST
from repro.telemetry.validate import validate_chrome_trace, validate_chrome_trace_file


class TestSpanRecording:
    def test_span_records_on_exit(self):
        tracer = SpanTracer()
        with tracer.span("handle.call", cat="handle", backend="mesh"):
            pass
        assert len(tracer) == 1
        span = tracer.spans[0]
        assert span.name == "handle.call"
        assert span.cat == "handle"
        assert span.pid == PID_WALL
        assert span.tid == TID_HOST
        assert span.args == {"backend": "mesh"}
        assert span.dur_us >= 0

    def test_nested_spans_contained(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        # inner exits first, so it is recorded first
        inner, outer = tracer.spans
        assert inner.name == "inner"
        assert outer.ts_us <= inner.ts_us
        assert outer.ts_us + outer.dur_us >= inner.ts_us + inner.dur_us

    def test_exception_tags_error_and_propagates(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("nope")
        assert tracer.spans[0].args["error"] == "ValueError"

    def test_record_sim_converts_seconds_to_us(self):
        tracer = SpanTracer()
        tracer.record_sim("tile[0].get", 0.5, 1.5, track="dma-get", cat="tile")
        span = tracer.spans[0]
        assert span.pid == PID_SIM
        assert span.tid == "dma-get"
        assert span.ts_us == pytest.approx(0.5e6)
        assert span.dur_us == pytest.approx(1.0e6)

    def test_record_sim_rejects_negative_interval(self):
        with pytest.raises(ValueError, match="ends before it starts"):
            SpanTracer().record_sim("bad", 2.0, 1.0)


class TestChromeExport:
    def _trace(self):
        tracer = SpanTracer()
        with tracer.span("run", cat="engine"):
            pass
        tracer.record_sim("tile[0].get", 0.0, 1.0, track="dma-get")
        tracer.record_sim("tile[0].compute", 1.0, 2.0, track="compute")
        tracer.record_sim("tile[1].get", 1.0, 2.0, track="dma-get")
        return tracer, tracer.to_chrome_trace()

    def test_object_format(self):
        _, data = self._trace()
        assert set(data) == {"traceEvents", "displayTimeUnit"}
        assert data["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in data["traceEvents"]}
        assert phases == {"M", "X"}

    def test_process_metadata_names_both_timebases(self):
        _, data = self._trace()
        names = {
            (e["pid"], e["args"]["name"])
            for e in data["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert (PID_WALL, "host (wall clock)") in names
        assert (PID_SIM, "simulated timeline") in names

    def test_sim_tracks_get_stable_integer_tids(self):
        _, data = self._trace()
        thread_names = {
            e["args"]["name"]: e["tid"]
            for e in data["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == PID_SIM
        }
        assert thread_names == {"dma-get": 1, "compute": 2}  # first-seen order
        sim_events = [
            e for e in data["traceEvents"] if e["ph"] == "X" and e["pid"] == PID_SIM
        ]
        assert [e["tid"] for e in sim_events] == [1, 2, 1]
        assert all(isinstance(e["tid"], int) for e in sim_events)

    def test_validates_and_round_trips(self, tmp_path):
        tracer, data = self._trace()
        assert validate_chrome_trace(data) == []
        path = tracer.write(str(tmp_path / "trace.json"))
        assert validate_chrome_trace_file(path) == []
        with open(path) as fh:
            assert json.load(fh) == data

    def test_validator_flags_garbage(self):
        assert validate_chrome_trace({"nope": 1})
        bad_event = {"traceEvents": [{"ph": "X", "name": "x"}]}
        assert validate_chrome_trace(bad_event)


class TestNullTracer:
    def test_span_is_reusable_noop(self):
        with NULL_TRACER.span("anything", cat="x", arg=1):
            pass
        NULL_TRACER.record_sim("x", 0.0, 1.0)
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.to_chrome_trace()["traceEvents"] == []

    def test_write_refuses(self, tmp_path):
        with pytest.raises(RuntimeError, match="disabled"):
            NULL_TRACER.write(str(tmp_path / "never.json"))
