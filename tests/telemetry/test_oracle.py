"""The Demmel--Dinh communication-lower-bound oracle."""

import math

import pytest

from repro.core.params import ConvParams
from repro.hw.spec import DEFAULT_SPEC
from repro.telemetry import (
    demmel_dinh_bound_bytes,
    oracle_report,
    validate_oracle_report,
)
from repro.telemetry.oracle import OracleRow

SMALL = ConvParams.from_output(ni=32, no=32, ro=16, co=16, kr=3, kc=3, b=16)
FIVE = ConvParams.from_output(ni=16, no=16, ro=12, co=12, kr=5, kc=5, b=8)


class TestBound:
    def test_bound_dominates_compulsory_traffic(self):
        """The bound is at least one touch of every operand byte."""
        assert demmel_dinh_bound_bytes(SMALL) >= SMALL.total_bytes()

    def test_rearrangement_term(self):
        """For compute-heavy layers the sqrt(M) re-use term dominates."""
        spec = DEFAULT_SPEC
        m_words = spec.ldm_bytes * spec.cpes_per_group // spec.double_bytes
        expected = 2.0 * (SMALL.flops() // 2) / math.sqrt(m_words) * spec.double_bytes
        assert demmel_dinh_bound_bytes(SMALL) == max(
            SMALL.total_bytes(), int(math.ceil(expected))
        )

    def test_bound_scales_with_work(self):
        big = ConvParams.from_output(ni=32, no=32, ro=16, co=16, kr=3, kc=3, b=64)
        assert demmel_dinh_bound_bytes(big) > demmel_dinh_bound_bytes(SMALL)

    def test_smaller_fast_memory_raises_the_bound(self):
        shrunk = DEFAULT_SPEC.shrunk(4)  # 16 CPEs -> much less aggregate LDM
        assert demmel_dinh_bound_bytes(SMALL, shrunk) >= demmel_dinh_bound_bytes(
            SMALL, DEFAULT_SPEC
        )


class TestOracleRow:
    def test_attainment_is_bound_over_measured(self):
        row = OracleRow(
            params=SMALL, algorithm="direct", plan="image-size-aware",
            measured_bytes=200, bound_bytes=100, gflops=1.0,
        )
        assert row.attainment == pytest.approx(0.5)
        assert not row.undercuts_bound
        assert not row.flagged(0.02)

    def test_undercutting_the_bound_is_flagged(self):
        """Moving fewer bytes than the lower bound is an accounting bug,
        not a fast kernel — always flagged."""
        row = OracleRow(
            params=SMALL, algorithm="direct", plan="image-size-aware",
            measured_bytes=50, bound_bytes=100, gflops=1.0,
        )
        assert row.undercuts_bound
        assert row.flagged(0.02)

    def test_wasteful_row_is_flagged(self):
        row = OracleRow(
            params=SMALL, algorithm="im2col", plan="im2col",
            measured_bytes=100_000, bound_bytes=100, gflops=1.0,
        )
        assert row.flagged(0.02)


class TestOracleReport:
    @pytest.fixture(scope="class")
    def report(self):
        return oracle_report([SMALL, FIVE])

    def test_one_row_per_legal_pair(self, report):
        by_shape = {}
        for row in report.rows:
            by_shape.setdefault(row.params, set()).add(row.algorithm)
        assert by_shape[SMALL] == {"direct", "im2col", "winograd"}
        # 5x5: Winograd is illegal, so no row
        assert by_shape[FIVE] == {"direct", "im2col"}

    def test_no_schedule_undercuts_the_bound(self, report):
        for row in report.rows:
            assert not row.undercuts_bound, row

    def test_attainment_in_unit_interval(self, report):
        for row in report.rows:
            assert 0.0 < row.attainment <= 1.0

    def test_render_mentions_every_algorithm(self, report):
        text = report.render()
        for algo in ("direct", "im2col", "winograd"):
            assert algo in text

    def test_as_dict_validates(self, report):
        assert validate_oracle_report(report.as_dict()) == []

    def test_restricted_algorithms(self):
        report = oracle_report([SMALL], algorithms=("direct", "winograd"))
        assert {row.algorithm for row in report.rows} == {"direct", "winograd"}

    def test_bad_threshold_raises(self):
        with pytest.raises(ValueError):
            oracle_report([SMALL], threshold=0.0)


class TestValidation:
    def _valid(self):
        return oracle_report([SMALL]).as_dict()

    def test_not_a_dict(self):
        assert validate_oracle_report([]) != []

    def test_empty_rows(self):
        data = self._valid()
        data["rows"] = []
        assert any("rows" in e for e in validate_oracle_report(data))

    def test_unknown_algorithm(self):
        data = self._valid()
        data["rows"][0]["algorithm"] = "fft"
        assert any("fft" in e for e in validate_oracle_report(data))

    def test_attainment_consistency(self):
        data = self._valid()
        data["rows"][0]["attainment"] = 0.123456
        assert any("attainment" in e for e in validate_oracle_report(data))

    def test_missing_direct_baseline(self):
        data = self._valid()
        data["rows"] = [r for r in data["rows"] if r["algorithm"] != "direct"]
        data["flagged"] = sum(1 for r in data["rows"] if r["flagged"])
        assert any("direct baseline" in e for e in validate_oracle_report(data))

    def test_flagged_count_consistency(self):
        data = self._valid()
        data["flagged"] = 99
        assert any("flagged count" in e for e in validate_oracle_report(data))
