"""Metrics registry: histograms, gauges, series, exposition, snapshots."""

import json
import math
import random

import pytest

from repro.telemetry import (
    NULL_METRICS,
    Gauge,
    LogHistogram,
    Metrics,
    NullMetrics,
    metrics_snapshot,
    parse_openmetrics,
    to_openmetrics,
    validate_metrics_snapshot,
)
from repro.telemetry.counters import Counters
from repro.telemetry.metrics import (
    BUCKET_GROWTH,
    TimeSeries,
    bucket_bounds,
    bucket_index,
    exposition_matches_snapshot,
    metric_name,
    render_strip,
)


class TestBuckets:
    def test_bucket_covers_its_bounds(self):
        for i in (-20, -1, 0, 1, 7, 40):
            lo, hi = bucket_bounds(i)
            assert bucket_index(lo) == i
            # Just below the upper bound still lands in bucket i (staying
            # clear of the boundary guard epsilon).
            assert bucket_index(hi * (1 - 1e-6)) == i

    def test_resolution_is_one_growth_step(self):
        lo, hi = bucket_bounds(12)
        assert hi / lo == pytest.approx(BUCKET_GROWTH)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            bucket_index(0.0)
        with pytest.raises(ValueError):
            bucket_index(-3.0)


class TestLogHistogram:
    def test_quantiles_within_one_bucket_of_exact(self):
        rng = random.Random(7)
        samples = [rng.lognormvariate(1.0, 0.8) for _ in range(5000)]
        h = LogHistogram()
        for s in samples:
            h.observe(s)
        ordered = sorted(samples)
        for q in (0.5, 0.9, 0.99):
            exact = ordered[max(0, math.ceil(q * len(ordered)) - 1)]
            got = h.quantile(q)
            # One geometric bucket (~9%) of slack either way.
            assert exact / BUCKET_GROWTH <= got <= exact * BUCKET_GROWTH

    def test_order_independent(self):
        values = [0.3, 11.0, 2.5, 2.5, 97.0, 0.3, 5.0]
        a, b = LogHistogram(), LogHistogram()
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        assert a.as_dict() == b.as_dict()

    def test_quantiles_monotone_and_clamped(self):
        h = LogHistogram()
        for v in (1.0, 2.0, 4.0, 8.0):
            h.observe(v)
        assert h.p50 <= h.p90 <= h.p99 <= h.max
        assert h.quantile(0.0) >= 0.0
        assert h.quantile(1.0) == h.max

    def test_zero_and_negative_land_in_zero_bucket(self):
        h = LogHistogram()
        h.observe(0.0)
        h.observe(-1.5)
        h.observe(10.0)
        assert h.count == 3
        assert h.zero_count == 2
        assert h.quantile(0.5) <= 0.0  # median is a non-positive sample
        assert h.as_dict()["buckets"]  # the positive one is bucketed

    def test_empty_histogram_reads_zero(self):
        h = LogHistogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.p99 == 0.0

    def test_mean_and_sum(self):
        h = LogHistogram()
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.total == pytest.approx(6.0)
        assert h.mean == pytest.approx(2.0)

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            LogHistogram().quantile(1.5)


class TestGauge:
    def test_tracks_last_min_max_updates(self):
        g = Gauge()
        for v in (4.0, -1.0, 9.0):
            g.set(v)
        assert g.value == 9.0
        assert g.min == -1.0
        assert g.max == 9.0
        assert g.updates == 3

    def test_unset_gauge_reads_zero(self):
        assert Gauge().as_dict() == {
            "value": 0.0, "min": 0.0, "max": 0.0, "updates": 0,
        }


class TestTimeSeries:
    def test_ring_bound_drops_oldest(self):
        s = TimeSeries(capacity=4)
        for t in range(10):
            s.record(t, t * 10.0)
        assert len(s) == 4
        assert s.recorded == 10
        assert s.dropped == 6
        assert s.points() == [(6.0, 60.0), (7.0, 70.0), (8.0, 80.0), (9.0, 90.0)]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            TimeSeries(capacity=0)

    def test_strip_chart_renders(self):
        points = [[t / 10.0, float(t % 5)] for t in range(30)]
        art = render_strip(points, width=20)
        assert "#" in art
        assert "t in [" in art
        assert render_strip([]) == "  (empty)"


class TestMetricsRegistry:
    def test_writes_create_and_accumulate(self):
        m = Metrics()
        m.observe("a.hist", 3.0)
        m.observe("a.hist", 5.0)
        m.set_gauge("a.gauge", 7.0)
        m.sample("a.series", 0.0, 1.0)
        m.sample("a.series", 1.0, 2.0)
        assert m.histogram("a.hist").count == 2
        assert m.gauge("a.gauge").value == 7.0
        assert len(m.series("a.series")) == 2
        assert len(m) == 3
        assert m.histogram_names() == ["a.hist"]

    def test_series_capacity_flows_from_registry(self):
        m = Metrics(series_capacity=3)
        for t in range(8):
            m.sample("s", t, t)
        assert m.series("s").dropped == 5

    def test_reset_clears_everything(self):
        m = Metrics()
        m.observe("h", 1.0)
        m.reset()
        assert len(m) == 0

    def test_dashboard_names_every_metric(self):
        m = Metrics()
        m.observe("serve.latency_ms", 4.2)
        m.set_gauge("serve.queue_depth", 3)
        m.sample("serve.queue_depth", 0.1, 3)
        text = m.render_dashboard()
        assert "serve.latency_ms" in text
        assert "serve.queue_depth" in text
        assert "p99" in text
        assert Metrics().render_dashboard() == "metrics: (none recorded)"


class TestNullMetrics:
    def test_null_is_inert(self):
        n = NullMetrics()
        n.observe("x", 1.0)
        n.set_gauge("x", 1.0)
        n.sample("x", 0.0, 1.0)
        assert not n.enabled
        assert not n
        assert len(n) == 0
        assert n.histogram("x") is None
        assert n.as_dict() == {"histograms": {}, "gauges": {}, "series": {}}
        assert n.render_dashboard() == "metrics: disabled"

    def test_shared_singleton(self):
        assert isinstance(NULL_METRICS, NullMetrics)
        assert Metrics.enabled and not NullMetrics.enabled


def _populated():
    m = Metrics()
    rng = random.Random(3)
    for _ in range(200):
        m.observe("serve.latency_ms", rng.lognormvariate(1.0, 0.5))
    m.observe("serve.batch_size", 8)
    m.set_gauge("serve.queue_depth", 5)
    for t in range(20):
        m.sample("serve.queue_depth", t * 0.01, t % 7)
    c = Counters()
    c.add("serve.requests.completed", 200)
    c.record_max("serve.queue_depth", 9)  # collides with the gauge family
    return m, c


class TestOpenMetrics:
    def test_metric_name_sanitizes(self):
        assert metric_name("serve.latency_ms") == "repro_serve_latency_ms"
        assert metric_name("9lives") == "repro__9lives"
        assert metric_name("a-b c") == "repro_a_b_c"

    def test_round_trip_with_counter_collision(self):
        m, c = _populated()
        text = to_openmetrics(m, c)
        families = parse_openmetrics(text)
        # The record_max counter shares the gauge's dotted name: the
        # counter family must carry the _counter suffix, the gauge not.
        assert families["repro_serve_queue_depth"]["type"] == "gauge"
        assert families["repro_serve_queue_depth_counter"]["type"] == "counter"
        assert (
            families["repro_serve_queue_depth_counter"]["samples"][
                "repro_serve_queue_depth_counter_total"
            ]
            == 9
        )
        summary = families["repro_serve_latency_ms"]
        assert summary["type"] == "summary"
        assert summary["samples"]["repro_serve_latency_ms_count"] == 200

    def test_exposition_terminates_with_eof(self):
        m, c = _populated()
        text = to_openmetrics(m, c)
        assert text.endswith("# EOF\n")
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics(text.replace("# EOF\n", ""))
        with pytest.raises(ValueError, match="after # EOF"):
            parse_openmetrics(text + "repro_stray 1\n")

    def test_sample_without_type_rejected(self):
        with pytest.raises(ValueError, match="no TYPE"):
            parse_openmetrics("repro_orphan 3\n# EOF\n")

    def test_malformed_type_line_rejected(self):
        with pytest.raises(ValueError, match="unknown type"):
            parse_openmetrics("# TYPE repro_x histogram\n# EOF\n")


class TestSnapshot:
    def test_snapshot_validates_and_matches_exposition(self):
        m, c = _populated()
        snap = metrics_snapshot(m, c)
        assert validate_metrics_snapshot(snap) == []
        # JSON round-trip must survive the validator too (tuples -> lists).
        snap = json.loads(json.dumps(snap))
        assert validate_metrics_snapshot(snap) == []
        assert exposition_matches_snapshot(to_openmetrics(m, c), snap) == []

    def test_schema_tag_required(self):
        m, _ = _populated()
        snap = metrics_snapshot(m)
        snap["schema"] = "bogus"
        assert any("schema" in e for e in validate_metrics_snapshot(snap))

    def test_bucket_sum_mismatch_flagged(self):
        m, _ = _populated()
        snap = json.loads(json.dumps(metrics_snapshot(m)))
        hist = snap["histograms"]["serve.latency_ms"]
        first = next(iter(hist["buckets"]))
        hist["buckets"][first] += 1
        assert any("bucket" in e for e in validate_metrics_snapshot(snap))

    def test_time_travel_flagged(self):
        m, _ = _populated()
        snap = json.loads(json.dumps(metrics_snapshot(m)))
        points = snap["series"]["serve.queue_depth"]["points"]
        points[1][0] = points[0][0] - 1.0
        assert any("back in time" in e for e in validate_metrics_snapshot(snap))

    def test_exposition_mismatch_named(self):
        m, c = _populated()
        text = to_openmetrics(m, c)
        snap = metrics_snapshot(m, c)
        snap["gauges"]["serve.queue_depth"]["value"] += 1.0
        errors = exposition_matches_snapshot(text, snap)
        assert any("serve.queue_depth" in e for e in errors)

    def test_extra_exposition_family_flagged(self):
        m, c = _populated()
        text = to_openmetrics(m, c).replace(
            "# EOF", "# TYPE repro_phantom gauge\nrepro_phantom 1\n# EOF"
        )
        errors = exposition_matches_snapshot(text, metrics_snapshot(m, c))
        assert any("repro_phantom" in e for e in errors)
