"""The counter registry and its zero-cost disabled twin."""

import pytest

from repro.telemetry import (
    Counters,
    NULL_COUNTERS,
    NULL_TELEMETRY,
    NullCounters,
    Telemetry,
    current_telemetry,
    use_telemetry,
)


class TestCounters:
    def test_add_accumulates(self):
        c = Counters()
        c.add("dma.transfers")
        c.add("dma.transfers")
        c.add("dma.bytes_get", 4096)
        assert c.get("dma.transfers") == 2
        assert c.get("dma.bytes_get") == 4096

    def test_get_default(self):
        assert Counters().get("never.recorded") == 0
        assert Counters().get("never.recorded", -1) == -1

    def test_record_max_keeps_high_water(self):
        c = Counters()
        c.record_max("ldm.high_water_bytes", 1024)
        c.record_max("ldm.high_water_bytes", 512)
        c.record_max("ldm.high_water_bytes", 2048)
        assert c.get("ldm.high_water_bytes") == 2048

    def test_total_sums_prefix(self):
        c = Counters()
        c.add("mesh.bus_bytes", 100)
        c.add("mesh.bus_packets", 7)
        c.add("dma.bytes_get", 999)
        assert c.total("mesh.bus_") == 107
        assert c.total("nothing.") == 0

    def test_as_dict_sorted_snapshot(self):
        c = Counters()
        c.add("b.two", 2)
        c.add("a.one", 1)
        snapshot = c.as_dict()
        assert list(snapshot) == ["a.one", "b.two"]
        snapshot["a.one"] = 99  # copy, not a view
        assert c.get("a.one") == 1

    def test_reset_and_len(self):
        c = Counters()
        c.add("x", 1)
        c.add("y", 2)
        assert len(c) == 2
        c.reset()
        assert len(c) == 0
        assert bool(c)  # enabled registry stays truthy even when empty

    def test_render_lists_values(self):
        c = Counters()
        c.add("cpe.flops", 1234567)
        c.add("engine.simulated_seconds", 0.25)
        out = c.render()
        assert "2 distinct" in out
        assert "1,234,567" in out
        assert "0.250" in out

    def test_render_empty(self):
        assert "none recorded" in Counters().render()


class TestNullCounters:
    def test_singleton_is_shared_and_falsy(self):
        assert isinstance(NULL_COUNTERS, NullCounters)
        assert not NULL_COUNTERS
        assert not NULL_COUNTERS.enabled
        assert NULL_TELEMETRY.counters is NULL_COUNTERS

    def test_mutations_store_nothing(self):
        NULL_COUNTERS.add("x", 5)
        NULL_COUNTERS.record_max("y", 5)
        assert len(NULL_COUNTERS) == 0
        assert NULL_COUNTERS.get("x") == 0
        assert NULL_COUNTERS.get("x", 3) == 3
        assert NULL_COUNTERS.total("") == 0
        assert NULL_COUNTERS.as_dict() == {}
        assert NULL_COUNTERS.render() == "counters: disabled"

    def test_no_instance_storage(self):
        with pytest.raises(AttributeError):
            NULL_COUNTERS.surprise = 1  # __slots__ = ()


class TestAmbientSession:
    def test_default_is_null(self):
        assert current_telemetry() is NULL_TELEMETRY

    def test_use_telemetry_installs_and_restores(self):
        session = Telemetry()
        with use_telemetry(session) as active:
            assert active is session
            assert current_telemetry() is session
        assert current_telemetry() is NULL_TELEMETRY

    def test_none_leaves_active_in_place(self):
        outer = Telemetry()
        with use_telemetry(outer):
            with use_telemetry(None) as active:
                assert active is outer
        assert current_telemetry() is NULL_TELEMETRY

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_telemetry(Telemetry()):
                raise RuntimeError("boom")
        assert current_telemetry() is NULL_TELEMETRY

    def test_session_reset_clears_counters_keeps_spans(self):
        session = Telemetry()
        session.counters.add("x")
        with session.tracer.span("kept"):
            pass
        session.reset()
        assert len(session.counters) == 0
        assert len(session.tracer) == 1


class TestCountersThreadSafety:
    def test_concurrent_adds_lose_nothing(self):
        # Regression: Counters.add used an unguarded read-modify-write, so
        # concurrent serve workers could drop increments and break the
        # request-accounting balance invariant.
        import threading

        c = Counters()
        n_threads, n_adds = 8, 2000

        def hammer():
            for _ in range(n_adds):
                c.add("serve.requests")
                c.record_max("serve.queue_depth", 3)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.get("serve.requests") == n_threads * n_adds
        assert c.get("serve.queue_depth") == 3

    def test_concurrent_snapshot_while_adding(self):
        import threading

        c = Counters()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                c.add("x")

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                snap = c.as_dict()  # must not raise mid-mutation
                assert snap.get("x", 0) >= 0
                c.total("x")
        finally:
            stop.set()
            thread.join()
