"""Bench-regression sentinel: ledger extraction, comparison, CLI gate."""

import json
import shutil
from pathlib import Path

import pytest

from repro.telemetry.regress import (
    HIGHER,
    LOWER,
    BenchMetric,
    compare_directories,
    compare_ledgers,
    compare_metric,
    load_ledger,
    main,
)

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.fixture()
def bench_copy(tmp_path):
    """A mutable copy of the committed benchmark records."""
    current = tmp_path / "current"
    current.mkdir()
    for src in BENCH_DIR.glob("BENCH_*.json"):
        shutil.copy(src, current / src.name)
    return current


def _edit(directory, filename, mutate):
    path = Path(directory) / filename
    payload = json.loads(path.read_text())
    mutate(payload)
    path.write_text(json.dumps(payload))


class TestBenchMetric:
    def test_slack_is_max_of_rel_and_abs(self):
        m = BenchMetric("x", 10.0, HIGHER, rel_tol=0.10, abs_tol=0.5)
        assert m.slack() == pytest.approx(1.0)
        assert BenchMetric("y", 1.0, LOWER, abs_tol=0.5).slack() == 0.5

    def test_tolerance_described(self):
        assert BenchMetric("x", 1.0, rel_tol=0.25).describe_tolerance() == "25%"
        assert "abs 2" in BenchMetric("x", 1.0, abs_tol=2.0).describe_tolerance()
        assert BenchMetric("x", 1.0).describe_tolerance() == "exact"

    def test_rejects_bad_direction_and_tolerance(self):
        with pytest.raises(ValueError):
            BenchMetric("x", 1.0, "sideways")
        with pytest.raises(ValueError):
            BenchMetric("x", 1.0, HIGHER, rel_tol=-0.1)


class TestCompareMetric:
    def test_higher_is_better(self):
        base = BenchMetric("s", 2.0, HIGHER, rel_tol=0.10)
        assert compare_metric(base, BenchMetric("s", 1.5, HIGHER)) == "REGRESSED"
        assert compare_metric(base, BenchMetric("s", 1.9, HIGHER)) == "ok"
        assert compare_metric(base, BenchMetric("s", 3.0, HIGHER)) == "improved"

    def test_lower_is_better(self):
        base = BenchMetric("p99", 10.0, LOWER, rel_tol=0.10)
        assert compare_metric(base, BenchMetric("p99", 12.0, LOWER)) == "REGRESSED"
        assert compare_metric(base, BenchMetric("p99", 10.5, LOWER)) == "ok"
        assert compare_metric(base, BenchMetric("p99", 5.0, LOWER)) == "improved"

    def test_zero_tolerance_contract(self):
        base = BenchMetric("bit_identical", 1.0, HIGHER)
        assert compare_metric(base, BenchMetric("b", 0.0, HIGHER)) == "REGRESSED"
        assert compare_metric(base, BenchMetric("b", 1.0, HIGHER)) == "ok"


class TestLedger:
    def test_committed_benchmarks_yield_nonempty_ledger(self):
        ledger = load_ledger(str(BENCH_DIR))
        # Every committed BENCH_*.json with an extractor must contribute.
        assert len(ledger) >= 10
        assert "chaos_serve.availability" in ledger
        assert "telemetry.fastpath_overhead_pct" in ledger

    def test_missing_directory_is_an_empty_ledger(self, tmp_path):
        assert load_ledger(str(tmp_path / "nope")) == {}

    def test_malformed_record_fails_loudly(self, bench_copy):
        _edit(bench_copy, "BENCH_chaos_serve.json", lambda p: p.pop("availability"))
        with pytest.raises(ValueError, match="BENCH_chaos_serve.json"):
            load_ledger(str(bench_copy))


class TestSelfComparison:
    def test_committed_baselines_pass_their_own_gate(self):
        report = compare_directories(str(BENCH_DIR))
        assert report.ok
        assert report.rows
        assert all(row.status == "ok" for row in report.rows)

    def test_render_is_a_full_delta_table(self):
        text = compare_directories(str(BENCH_DIR)).render()
        assert "no regressions" in text
        for column in ("metric", "baseline", "current", "delta", "tol", "status"):
            assert column in text


class TestInjectedRegression:
    def test_degraded_value_fails_with_named_delta_row(self, bench_copy):
        # Halve the availability the chaos bench published (abs_tol 0.01).
        def degrade(payload):
            payload["availability"] = payload["availability"] / 2.0

        _edit(bench_copy, "BENCH_chaos_serve.json", degrade)
        report = compare_directories(str(BENCH_DIR), str(bench_copy))
        assert not report.ok
        bad = {row.name: row for row in report.regressions}
        assert set(bad) == {"chaos_serve.availability"}
        row = bad["chaos_serve.availability"]
        assert row.baseline is not None and row.current is not None
        assert row.current == pytest.approx(row.baseline / 2.0)
        assert row.delta < 0
        text = report.render()
        assert "1 regression(s)" in text
        assert "chaos_serve.availability" in text
        assert "REGRESSED" in text
        assert "abs 0.01" in text  # the tolerance the metric is held to

    def test_improvement_is_not_a_failure(self, bench_copy):
        def improve(payload):
            payload["conv_forward"]["speedup"] *= 2.0

        _edit(bench_copy, "BENCH_fastpath.json", improve)
        report = compare_directories(str(BENCH_DIR), str(bench_copy))
        assert report.ok
        statuses = {row.name: row.status for row in report.rows}
        assert statuses["fastpath.conv_speedup"] == "improved"

    def test_dropped_benchmark_is_missing(self, bench_copy):
        (bench_copy / "BENCH_telemetry.json").unlink()
        report = compare_directories(str(BENCH_DIR), str(bench_copy))
        assert not report.ok
        missing = {row.name for row in report.missing}
        assert "telemetry.fastpath_overhead_pct" in missing

    def test_new_benchmark_is_never_a_regression(self):
        baseline = {"a": BenchMetric("a", 1.0, HIGHER)}
        current = {
            "a": BenchMetric("a", 1.0, HIGHER),
            "b": BenchMetric("b", 5.0, HIGHER),
        }
        report = compare_ledgers(baseline, current)
        assert report.ok
        assert {row.status for row in report.rows} == {"ok"}


class TestCli:
    def test_self_comparison_exits_zero(self, capsys):
        assert main([str(BENCH_DIR)]) == 0
        out = capsys.readouterr().out
        assert "no regressions" in out

    def test_regression_exits_nonzero_with_table(self, bench_copy, capsys):
        _edit(
            bench_copy,
            "BENCH_serve.json",
            lambda p: p["summary"].__setitem__(
                "batched_vs_sequential_speedup", 0.01
            ),
        )
        assert main([str(BENCH_DIR), str(bench_copy)]) == 1
        out = capsys.readouterr().out
        assert "serve.batched_speedup" in out
        assert "REGRESSED" in out

    def test_empty_directory_exits_nonzero(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 1
        assert "nothing to gate" in capsys.readouterr().out

    def test_usage_on_bad_arity(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out
