"""Model-vs-measured drift reports."""

import pytest

from repro.core.params import ConvParams
from repro.telemetry import Telemetry, drift_report
from repro.telemetry.drift import DriftRow


SMALL = ConvParams.from_output(ni=64, no=64, ro=32, co=32, kr=3, kc=3, b=32)


def _row(model_gflops=100.0, measured_gflops=100.0, model_mbw=20e9, measured_bw=20e9):
    return DriftRow(
        params=SMALL,
        plan="image",
        model_gflops=model_gflops,
        measured_gflops=measured_gflops,
        model_mbw=model_mbw,
        measured_bw=measured_bw,
    )


class TestDriftRow:
    def test_drift_is_relative_deviation(self):
        row = _row(measured_gflops=150.0, measured_bw=10e9)
        assert row.flops_drift == pytest.approx(0.5)
        assert row.bandwidth_drift == pytest.approx(-0.5)

    def test_zero_model_means_zero_drift(self):
        row = _row(model_gflops=0.0, model_mbw=0.0)
        assert row.flops_drift == 0.0
        assert row.bandwidth_drift == 0.0

    def test_flagged_on_either_axis(self):
        assert not _row().flagged(0.25)
        assert _row(measured_gflops=130.0).flagged(0.25)
        assert _row(measured_bw=14e9).flagged(0.25)
        # threshold is exclusive
        assert not _row(measured_gflops=125.0).flagged(0.25)


class TestDriftReport:
    @pytest.fixture(scope="class")
    def report(self):
        return drift_report([SMALL], threshold=0.25)

    def test_one_row_per_config(self, report):
        assert len(report.rows) == 1
        row = report.rows[0]
        assert row.params is SMALL
        assert row.measured_gflops > 0
        assert row.measured_bw > 0

    def test_render_has_header_and_flag_column(self, report):
        out = report.render()
        assert "model-vs-measured drift" in out
        assert "+-25%" in out
        assert ("ok" in out) or ("DRIFT" in out)

    def test_as_dict_is_json_ready(self, report):
        import json

        data = report.as_dict()
        assert data["threshold"] == 0.25
        assert len(data["rows"]) == 1
        assert data["rows"][0]["params"] == [64, 64, 32, 3, 32]
        json.dumps(data)  # must not raise

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            drift_report([SMALL], threshold=0.0)

    def test_populates_telemetry_counters(self):
        telemetry = Telemetry()
        drift_report([SMALL], telemetry=telemetry)
        assert telemetry.counters.get("engine.evaluations") == 1
        assert telemetry.counters.get("engine.flops") > 0

    def test_flagged_respects_threshold(self):
        rows = [_row(), _row(measured_gflops=200.0)]
        from repro.telemetry.drift import DriftReport

        report = DriftReport(rows=rows, threshold=0.25)
        assert report.flagged == [rows[1]]
        loose = DriftReport(rows=rows, threshold=2.0)
        assert loose.flagged == []
