"""Trace/profile validator edge cases: the corners viewers choke on."""

import json

import pytest

from repro.telemetry import SpanTracer, validate_chrome_trace
from repro.telemetry.validate import (
    PROFILE_SCHEMA,
    main,
    validate_profile_document,
)


def _event(**overrides):
    base = {"name": "conv", "ph": "X", "ts": 0.0, "dur": 1.0, "pid": 1, "tid": 1}
    base.update(overrides)
    return base


def _metadata(pid, tid, label, name="thread_name"):
    return {"name": name, "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": label}}


class TestCompleteEventEdges:
    def test_empty_trace_is_valid(self):
        assert validate_chrome_trace({"traceEvents": []}) == []

    def test_zero_duration_is_valid(self):
        # Instantaneous spans happen (a cache-hit lookup rounds to 0us).
        trace = {"traceEvents": [_event(dur=0.0), _event(ts=0.0)]}
        assert validate_chrome_trace(trace) == []

    def test_negative_duration_flagged(self):
        errors = validate_chrome_trace({"traceEvents": [_event(dur=-2.0)]})
        assert any("'dur' must be >= 0" in e for e in errors)

    def test_negative_timestamp_flagged(self):
        errors = validate_chrome_trace({"traceEvents": [_event(ts=-1.0)]})
        assert any("'ts' must be >= 0" in e for e in errors)

    def test_boolean_duration_is_not_a_number(self):
        errors = validate_chrome_trace({"traceEvents": [_event(dur=True)]})
        assert any("'dur' must be a number" in e for e in errors)

    def test_non_integer_pid_flagged(self):
        errors = validate_chrome_trace({"traceEvents": [_event(pid="host")]})
        assert any("'pid' must be an integer" in e for e in errors)

    def test_non_object_event_flagged(self):
        errors = validate_chrome_trace({"traceEvents": ["not-an-event"]})
        assert any("must be an object" in e for e in errors)


class TestDuplicateMetadata:
    def test_identical_redeclaration_is_valid(self):
        # Merging two traces repeats the shared track declarations.
        trace = {"traceEvents": [_metadata(1, 0, "host"), _metadata(1, 0, "host")]}
        assert validate_chrome_trace(trace) == []

    def test_conflicting_labels_flagged(self):
        trace = {
            "traceEvents": [_metadata(1, 0, "host"), _metadata(1, 0, "worker")]
        }
        errors = validate_chrome_trace(trace)
        assert len(errors) == 1
        assert "conflicts" in errors[0]
        assert "'host'" in errors[0] and "'worker'" in errors[0]

    def test_same_label_different_track_is_valid(self):
        trace = {
            "traceEvents": [_metadata(1, 0, "host"), _metadata(1, 1, "host")]
        }
        assert validate_chrome_trace(trace) == []


class TestMergedTraceRoundTrip:
    def test_merged_serve_plus_cluster_trace_validates(self, tmp_path, capsys):
        # A serve-side wall trace and a cluster-side sim trace, merged the
        # way an offline viewer session does: concatenate traceEvents.
        # The shared process/thread metadata is redeclared identically —
        # the validator must accept that, and the CLI must exit 0.
        serve = SpanTracer()
        serve.record_wall("request", 0.0, 120.0, track="serve", request=1)
        serve.record_wall("execute", 40.0, 110.0, track="serve", batch=0)
        cluster = SpanTracer()
        cluster.record_sim("allreduce", 0.0, 0.002, track="bucket0", step=0)
        cluster.record_sim("compute", 0.0, 0.004, track="node0", step=0)
        merged = serve.to_chrome_trace()
        merged["traceEvents"] = (
            merged["traceEvents"] + cluster.to_chrome_trace()["traceEvents"]
        )
        assert validate_chrome_trace(merged) == []
        path = tmp_path / "merged.json"
        path.write_text(json.dumps(merged))
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "valid Chrome trace_event JSON" in out

    def test_conflicting_merge_fails_through_cli(self, tmp_path, capsys):
        trace = {
            "traceEvents": [_metadata(1, 0, "host"), _metadata(1, 0, "serve")]
        }
        path = tmp_path / "conflict.json"
        path.write_text(json.dumps(trace))
        assert main([str(path)]) == 1
        assert "conflicts" in capsys.readouterr().out


def _profile_doc():
    return {
        "schema": PROFILE_SCHEMA,
        "params": "Ni=32 No=32 16x16 K=3 B=16",
        "chip_gflops": 12.5,
        "counters": {"conv.forward.calls": 1, "dma.bytes": 4096.0},
        "drift": {
            "threshold": 0.25,
            "flagged": 1,
            "rows": [{"flagged": True}, {"flagged": False}],
        },
        "oracle": {"threshold": 0.5, "flagged": 0, "rows": []},
    }


class TestProfileDocument:
    def test_valid_document_passes(self):
        assert validate_profile_document(_profile_doc()) == []

    def test_schema_tag_checked(self):
        doc = _profile_doc()
        doc["schema"] = "repro.profile/v0"
        assert any("'schema'" in e for e in validate_profile_document(doc))

    def test_flagged_count_cross_checked(self):
        doc = _profile_doc()
        doc["drift"]["flagged"] = 2
        errors = validate_profile_document(doc)
        assert any("drift.flagged" in e and "1 row(s)" in e for e in errors)

    def test_counter_values_must_be_numbers(self):
        doc = _profile_doc()
        doc["counters"]["dma.bytes"] = "lots"
        assert any("dma.bytes" in e for e in validate_profile_document(doc))

    def test_boolean_chip_gflops_rejected(self):
        doc = _profile_doc()
        doc["chip_gflops"] = True
        assert any("chip_gflops" in e for e in validate_profile_document(doc))

    def test_cli_profile_mode(self, tmp_path, capsys):
        good = tmp_path / "profile.json"
        good.write_text(json.dumps(_profile_doc()))
        assert main(["--profile", str(good)]) == 0
        assert PROFILE_SCHEMA in capsys.readouterr().out
        bad_doc = _profile_doc()
        del bad_doc["oracle"]
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(bad_doc))
        assert main(["--profile", str(bad)]) == 1
        assert "invalid profile document" in capsys.readouterr().out

    def test_cli_usage(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out
