"""Flight recorder: ring bounds, causal chains, dump round-trip."""

import pytest

from repro.telemetry import (
    NULL_FLIGHT,
    FlightEvent,
    FlightRecorder,
    NullFlightRecorder,
    load_flight_dump,
)
from repro.telemetry.flight import DUMP_SCHEMA, EVENT_KINDS, GLOBAL_KINDS


class TestRecording:
    def test_typed_vocabulary_enforced(self):
        fr = FlightRecorder()
        with pytest.raises(ValueError, match="unknown flight event kind"):
            fr.record("request.submitted")  # typo'd kind
        fr.record("request.submit", request=1)
        assert fr.recorded == 1

    def test_global_kinds_are_a_subset(self):
        assert set(GLOBAL_KINDS) <= EVENT_KINDS

    def test_ring_overwrites_oldest(self):
        fr = FlightRecorder(capacity=3)
        for i in range(7):
            fr.record("cluster.step", step=i)
        assert len(fr) == 3
        assert fr.recorded == 7
        assert fr.dropped == 4
        steps = [e.args["step"] for e in fr.events()]
        assert steps == [4, 5, 6]
        # Sequence numbers keep counting across the wrap.
        assert [e.seq for e in fr.events()] == [4, 5, 6]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_timestamps_monotone(self):
        fr = FlightRecorder()
        for i in range(5):
            fr.record("batch.attempt", batch=0, attempt=i)
        ts = [e.t_us for e in fr.events()]
        assert ts == sorted(ts)
        assert all(t >= 0.0 for t in ts)


def _scripted_ring():
    """A hand-scripted request-17 lifecycle with bystander traffic."""
    fr = FlightRecorder()
    fr.record("request.submit", request=17, priority=0)
    fr.record("request.submit", request=99, priority=0)  # bystander
    fr.record("batch.form", batch=4, requests=[17, 18], size=2)
    fr.record("batch.attempt", batch=4, attempt=0)
    fr.record("breaker.transition", transition="closed->open")  # in-window
    fr.record("batch.retry", batch=4, attempt=1, error="DMATimeoutError")
    fr.record("batch.ok", batch=4, attempt=1)
    fr.record("request.complete", request=17, batch=4)
    fr.record("engine.rebuilt", engine=0)  # after the window: excluded
    fr.record("batch.form", batch=5, requests=[99], size=1)  # bystander
    return fr


class TestCausalChain:
    def test_chain_stitches_direct_batch_and_global(self):
        fr = _scripted_ring()
        kinds = [e.kind for e in fr.chain(17)]
        assert kinds == [
            "request.submit",
            "batch.form",
            "batch.attempt",
            "breaker.transition",
            "batch.retry",
            "batch.ok",
            "request.complete",
        ]

    def test_bystander_request_excluded(self):
        fr = _scripted_ring()
        for event in fr.chain(17):
            assert not event.involves_request(99)

    def test_global_event_outside_window_excluded(self):
        fr = _scripted_ring()
        assert "engine.rebuilt" not in [e.kind for e in fr.chain(17)]

    def test_membership_via_requests_list(self):
        fr = _scripted_ring()
        # 18 never appears as request=, only inside batch 4's membership —
        # its chain is the batch-level story.
        kinds = [e.kind for e in fr.chain(18)]
        assert kinds[0] == "batch.form"
        assert "batch.retry" in kinds

    def test_unknown_request_has_empty_chain(self):
        fr = _scripted_ring()
        assert fr.chain(12345) == []
        assert "no flight events" in fr.explain(12345)

    def test_explain_renders_one_line_per_event(self):
        fr = _scripted_ring()
        text = fr.explain(17)
        assert text.startswith("request 17: 7 event(s)")
        assert len(text.splitlines()) == 8
        assert "batch.retry" in text
        assert "error=DMATimeoutError" in text


class TestDumpRoundTrip:
    def test_dump_and_load(self, tmp_path):
        fr = _scripted_ring()
        path = str(tmp_path / "flight.json")
        assert fr.dump(path) == path
        events = load_flight_dump(path)
        assert [e.as_dict() for e in events] == [
            e.as_dict() for e in fr.events()
        ]
        assert all(isinstance(e, FlightEvent) for e in events)

    def test_dump_carries_schema_and_drop_accounting(self, tmp_path):
        fr = FlightRecorder(capacity=2)
        for i in range(5):
            fr.record("cluster.step", step=i)
        payload = fr.as_dict()
        assert payload["schema"] == DUMP_SCHEMA
        assert payload["recorded"] == 5
        assert payload["dropped"] == 3
        assert len(payload["events"]) == 2

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/v9", "events": []}')
        with pytest.raises(ValueError, match="schema"):
            load_flight_dump(str(path))


class TestNullRecorder:
    def test_null_is_inert(self):
        n = NullFlightRecorder()
        n.record("request.submit", request=1)  # no vocabulary check, no store
        assert not n.enabled
        assert not n
        assert len(n) == 0
        assert n.events() == []
        assert n.chain(1) == []
        assert n.explain(1) == "flight recorder: disabled"
        assert n.as_dict()["events"] == []

    def test_null_refuses_to_dump(self, tmp_path):
        with pytest.raises(RuntimeError, match="disabled"):
            NULL_FLIGHT.dump(str(tmp_path / "x.json"))
