"""Disabled telemetry must cost (almost) nothing.

The acceptance bar for the observability layer: with no session installed,
a Table III row-1 pass records zero counters, allocates nothing inside the
telemetry modules, and times within noise of the uninstrumented baseline
(the precise <2% figure is tracked by ``benchmarks/test_bench_telemetry.py``;
here we assert the loose, flake-proof direction: disabled is not slower).
"""

import time
import tracemalloc

import numpy as np

from repro.core.conv import ConvolutionEngine, clear_timing_cache
from repro.core.params import ConvParams
from repro.core.planner import plan_convolution
from repro.telemetry import NULL_COUNTERS, NULL_TELEMETRY, Telemetry, current_telemetry

#: Table III row 1: Ni=128, No=128, 64x64 output, 3x3 filters, B=128.
ROW1 = ConvParams.from_output(ni=128, no=128, ro=64, co=64, kr=3, kc=3, b=128)


def _evaluate_seconds(telemetry, repeats=3):
    plan = plan_convolution(ROW1).plan
    engine = ConvolutionEngine(plan, telemetry=telemetry)
    best = float("inf")
    for _ in range(repeats):
        clear_timing_cache()
        start = time.perf_counter()
        engine.evaluate()
        best = min(best, time.perf_counter() - start)
    return best


class TestZeroCostDisabled:
    def test_engine_defaults_to_null_session(self):
        engine = ConvolutionEngine(plan_convolution(ROW1).plan)
        assert engine.telemetry is NULL_TELEMETRY
        assert current_telemetry() is NULL_TELEMETRY

    def test_row1_pass_records_no_counters(self):
        engine = ConvolutionEngine(plan_convolution(ROW1).plan)
        clear_timing_cache()
        engine.evaluate()
        assert len(NULL_COUNTERS) == 0
        assert NULL_COUNTERS.as_dict() == {}
        assert len(NULL_TELEMETRY.tracer) == 0

    def test_forward_pass_allocates_nothing_in_telemetry(self):
        """A functional forward pass must not allocate in telemetry code."""
        small = ConvParams.from_output(ni=16, no=16, ro=8, co=8, kr=3, kc=3, b=8)
        plan = plan_convolution(small).plan
        engine = ConvolutionEngine(plan, backend="numpy")
        rng = np.random.default_rng(0)
        x = rng.standard_normal(small.input_shape)
        w = rng.standard_normal(small.filter_shape)
        engine.run(x, w)  # warm up caches / lazy imports

        telemetry_files = tracemalloc.Filter(
            True, "*/repro/telemetry/*"
        )
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot().filter_traces([telemetry_files])
            engine.run(x, w)
            after = tracemalloc.take_snapshot().filter_traces([telemetry_files])
        finally:
            tracemalloc.stop()
        growth = sum(stat.size_diff for stat in after.compare_to(before, "filename"))
        assert growth <= 0, f"telemetry modules allocated {growth} bytes while disabled"

    def test_disabled_not_slower_than_enabled(self):
        """The loose direction of the <2% overhead bar: disabled does
        strictly less work than enabled, so (modulo timer noise) a disabled
        schedule walk must not come out slower."""
        enabled = _evaluate_seconds(Telemetry())
        disabled = _evaluate_seconds(None)
        assert disabled <= enabled * 1.25, (
            f"disabled telemetry walk took {disabled:.4f}s vs "
            f"{enabled:.4f}s enabled"
        )

    def test_enabled_session_does_count(self):
        telemetry = Telemetry()
        _evaluate_seconds(telemetry, repeats=1)
        assert telemetry.counters.get("engine.evaluations") == 1
        assert telemetry.counters.get("engine.flops") == ROW1.flops()
