"""Disabled telemetry must cost (almost) nothing.

The acceptance bar for the observability layer: with no session installed,
a Table III row-1 pass records zero counters, allocates nothing inside the
telemetry modules, and times within noise of the uninstrumented baseline
(the precise <2% figure is tracked by ``benchmarks/test_bench_telemetry.py``;
here we assert the loose, flake-proof direction: disabled is not slower).
"""

import time
import tracemalloc

import numpy as np

from repro.core.conv import ConvolutionEngine, clear_timing_cache
from repro.core.params import ConvParams
from repro.core.planner import plan_convolution
from repro.telemetry import (
    NULL_COUNTERS,
    NULL_FLIGHT,
    NULL_METRICS,
    NULL_TELEMETRY,
    Telemetry,
    current_telemetry,
)

#: Table III row 1: Ni=128, No=128, 64x64 output, 3x3 filters, B=128.
ROW1 = ConvParams.from_output(ni=128, no=128, ro=64, co=64, kr=3, kc=3, b=128)


def _evaluate_seconds(telemetry, repeats=3):
    plan = plan_convolution(ROW1).plan
    engine = ConvolutionEngine(plan, telemetry=telemetry)
    best = float("inf")
    for _ in range(repeats):
        clear_timing_cache()
        start = time.perf_counter()
        engine.evaluate()
        best = min(best, time.perf_counter() - start)
    return best


class TestZeroCostDisabled:
    def test_engine_defaults_to_null_session(self):
        engine = ConvolutionEngine(plan_convolution(ROW1).plan)
        assert engine.telemetry is NULL_TELEMETRY
        assert current_telemetry() is NULL_TELEMETRY

    def test_row1_pass_records_no_counters(self):
        engine = ConvolutionEngine(plan_convolution(ROW1).plan)
        clear_timing_cache()
        engine.evaluate()
        assert len(NULL_COUNTERS) == 0
        assert NULL_COUNTERS.as_dict() == {}
        assert len(NULL_TELEMETRY.tracer) == 0

    def test_forward_pass_allocates_nothing_in_telemetry(self):
        """A functional forward pass must not allocate in telemetry code."""
        small = ConvParams.from_output(ni=16, no=16, ro=8, co=8, kr=3, kc=3, b=8)
        plan = plan_convolution(small).plan
        engine = ConvolutionEngine(plan, backend="numpy")
        rng = np.random.default_rng(0)
        x = rng.standard_normal(small.input_shape)
        w = rng.standard_normal(small.filter_shape)
        engine.run(x, w)  # warm up caches / lazy imports

        telemetry_files = tracemalloc.Filter(
            True, "*/repro/telemetry/*"
        )
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot().filter_traces([telemetry_files])
            engine.run(x, w)
            after = tracemalloc.take_snapshot().filter_traces([telemetry_files])
        finally:
            tracemalloc.stop()
        growth = sum(stat.size_diff for stat in after.compare_to(before, "filename"))
        assert growth <= 0, f"telemetry modules allocated {growth} bytes while disabled"

    def test_disabled_not_slower_than_enabled(self):
        """The loose direction of the <2% overhead bar: disabled does
        strictly less work than enabled, so (modulo timer noise) a disabled
        schedule walk must not come out slower."""
        enabled = _evaluate_seconds(Telemetry())
        disabled = _evaluate_seconds(None)
        assert disabled <= enabled * 1.25, (
            f"disabled telemetry walk took {disabled:.4f}s vs "
            f"{enabled:.4f}s enabled"
        )

    def test_enabled_session_does_count(self):
        telemetry = Telemetry()
        _evaluate_seconds(telemetry, repeats=1)
        assert telemetry.counters.get("engine.evaluations") == 1
        assert telemetry.counters.get("engine.flops") == ROW1.flops()


class TestZeroCostMetricsAndFlight:
    """The new sinks inherit the counters' zero-cost-disabled contract."""

    def test_null_session_exposes_the_shared_singletons(self):
        assert NULL_TELEMETRY.metrics is NULL_METRICS
        assert NULL_TELEMETRY.flight is NULL_FLIGHT
        assert not NULL_METRICS.enabled
        assert not NULL_FLIGHT.enabled

    def test_enabled_session_gets_live_sinks(self):
        telemetry = Telemetry()
        assert telemetry.metrics.enabled
        assert telemetry.flight.enabled
        assert telemetry.metrics is not NULL_METRICS

    def test_null_sinks_retain_no_state(self):
        NULL_METRICS.observe("x.hist", 1.0)
        NULL_METRICS.set_gauge("x.gauge", 2.0)
        NULL_METRICS.sample("x.series", 0.0, 3.0)
        NULL_FLIGHT.record("request.submit", request=0)
        assert len(NULL_METRICS) == 0
        assert len(NULL_FLIGHT) == 0
        assert NULL_METRICS.histogram("x.hist") is None
        assert NULL_FLIGHT.events() == []

    def test_disabled_metrics_and_flight_allocate_zero_bytes(self):
        """A hot loop against the null sinks must not allocate in the
        telemetry modules — the disabled serve/cluster paths hit these
        exact call sites on every request and step."""
        # Warm up: first calls may intern strings / build method caches.
        NULL_METRICS.observe("serve.latency_ms", 1.0)
        NULL_FLIGHT.record("request.submit", request=0)

        telemetry_files = tracemalloc.Filter(True, "*/repro/telemetry/*")
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot().filter_traces([telemetry_files])
            for i in range(1000):
                NULL_METRICS.observe("serve.latency_ms", float(i))
                NULL_METRICS.set_gauge("serve.queue_depth", i)
                NULL_METRICS.sample("serve.queue_depth", i * 1e-3, i)
                NULL_FLIGHT.record("request.submit", request=i)
                NULL_FLIGHT.record("batch.form", batch=i, requests=[i])
            after = tracemalloc.take_snapshot().filter_traces([telemetry_files])
        finally:
            tracemalloc.stop()
        growth = sum(stat.size_diff for stat in after.compare_to(before, "filename"))
        assert growth <= 0, (
            f"disabled metrics/flight allocated {growth} bytes"
        )
