"""Stateful (rule-based) fuzzing of the register-communication protocol.

Hypothesis drives random sequences of puts, broadcasts and gets against
the mesh while an independent reference model tracks what every transfer
buffer should contain; any divergence (ordering, payload, occupancy) or
missed protocol error fails the test.
"""

from collections import deque

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.common.errors import BusProtocolError
from repro.hw.mesh import CPEMesh
from repro.hw.spec import DEFAULT_SPEC

MESH_N = 3
SPEC = DEFAULT_SPEC.shrunk(MESH_N)

coords = st.tuples(
    st.integers(min_value=0, max_value=MESH_N - 1),
    st.integers(min_value=0, max_value=MESH_N - 1),
)


class MeshProtocolMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.mesh = CPEMesh(SPEC)
        self.model = {
            (r, c): deque() for r in range(MESH_N) for c in range(MESH_N)
        }
        self.counter = 0

    def _payload(self):
        self.counter += 1
        return np.array([float(self.counter)])

    @rule(src=coords, dst=coords)
    def put(self, src, dst):
        payload = self._payload()
        legal = src != dst and (src[0] == dst[0] or src[1] == dst[1])
        room = len(self.model[dst]) < SPEC.transfer_buffer_depth
        if legal and room:
            self.mesh.put(src, dst, payload)
            self.model[dst].append(float(payload[0]))
        else:
            try:
                self.mesh.put(src, dst, payload)
            except BusProtocolError:
                pass
            else:
                raise AssertionError(
                    f"put {src}->{dst} should have been rejected "
                    f"(legal={legal}, room={room})"
                )

    @rule(src=coords)
    def row_broadcast(self, src):
        receivers = [
            (src[0], c) for c in range(MESH_N) if c != src[1]
        ]
        payload = self._payload()
        if all(
            len(self.model[r]) < SPEC.transfer_buffer_depth for r in receivers
        ):
            self.mesh.row_broadcast(src, payload)
            for r in receivers:
                self.model[r].append(float(payload[0]))
        else:
            try:
                self.mesh.row_broadcast(src, payload)
            except BusProtocolError:
                # A full receiver rejected the broadcast mid-way; resync the
                # model with the mesh's actual buffer contents.
                for r in receivers:
                    self.model[r] = deque(
                        float(np.asarray(p)[0])
                        for p in self.mesh._buffers[r]._fifo
                    )

    @rule(who=coords)
    def get(self, who):
        if self.model[who]:
            expected = self.model[who].popleft()
            got = self.mesh.get(who)
            assert float(np.asarray(got)[0]) == expected
        else:
            try:
                self.mesh.get(who)
            except BusProtocolError:
                pass
            else:
                raise AssertionError(f"get on empty buffer {who} should raise")

    @invariant()
    def occupancy_matches(self):
        for who, expected in self.model.items():
            assert self.mesh.pending(who) == len(expected)


MeshProtocolMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
TestMeshProtocol = MeshProtocolMachine.TestCase
