"""Architectural constants of the SW26010 model (paper Section III-B)."""

import pytest

from repro.common.units import GB
from repro.hw.spec import DEFAULT_SPEC, SW26010Spec, TABLE_II_DMA_BANDWIDTH


class TestPaperNumbers:
    """Pin the constants the paper states explicitly."""

    def test_peak_per_cg_is_742_4_gflops(self):
        assert DEFAULT_SPEC.peak_flops_per_cg == pytest.approx(742.4e9)

    def test_chip_peak_near_3_tflops(self):
        assert DEFAULT_SPEC.peak_flops_chip == pytest.approx(2969.6e9)

    def test_chip_bandwidth_144_gbps(self):
        assert DEFAULT_SPEC.chip_bandwidth == pytest.approx(144 * GB)

    def test_ldm_is_64_kib(self):
        assert DEFAULT_SPEC.ldm_bytes == 64 * 1024

    def test_ldm_register_bandwidth(self):
        assert DEFAULT_SPEC.ldm_bandwidth == pytest.approx(46.4 * GB)

    def test_gload_bandwidth(self):
        assert DEFAULT_SPEC.gload_bandwidth == pytest.approx(8 * GB)

    def test_mesh_is_8x8(self):
        assert DEFAULT_SPEC.mesh_size == 8
        assert DEFAULT_SPEC.cpes_per_group == 64

    def test_latencies(self):
        assert DEFAULT_SPEC.load_latency == 4
        assert DEFAULT_SPEC.fma_latency == 7


class TestTableII:
    def test_twelve_block_sizes(self):
        assert len(TABLE_II_DMA_BANDWIDTH) == 12

    def test_known_entries(self):
        assert TABLE_II_DMA_BANDWIDTH[32] == (4.31, 2.56)
        assert TABLE_II_DMA_BANDWIDTH[4096] == (32.05, 36.01)

    def test_get_bandwidth_monotone_on_aligned_sizes(self):
        aligned = [s for s in sorted(TABLE_II_DMA_BANDWIDTH) if s % 128 == 0]
        gets = [TABLE_II_DMA_BANDWIDTH[s][0] for s in aligned]
        assert gets == sorted(gets)


class TestSpecBehaviour:
    def test_cycle_conversion_roundtrip(self):
        seconds = DEFAULT_SPEC.cycles_to_seconds(1.45e9)
        assert seconds == pytest.approx(1.0)
        assert DEFAULT_SPEC.seconds_to_cycles(seconds) == pytest.approx(1.45e9)

    def test_shrunk_mesh(self):
        small = DEFAULT_SPEC.shrunk(4)
        assert small.mesh_size == 4
        assert small.cpes_per_group == 16
        assert small.clock_hz == DEFAULT_SPEC.clock_hz

    def test_shrunk_rejects_zero(self):
        with pytest.raises(ValueError):
            DEFAULT_SPEC.shrunk(0)

    def test_immutability(self):
        with pytest.raises(Exception):
            DEFAULT_SPEC.mesh_size = 4
