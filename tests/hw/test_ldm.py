"""The 64 KB LDM allocator."""

import numpy as np
import pytest

from repro.common.errors import LDMOverflowError, SimulationError
from repro.hw.ldm import LDM, LDMAllocator


class TestAllocation:
    def test_alloc_zeroed(self):
        ldm = LDM()
        buf = ldm.alloc("a", (16,))
        assert np.all(buf.data == 0)
        assert buf.nbytes == 128

    def test_capacity_is_64_kib(self):
        assert LDM().capacity == 64 * 1024

    def test_overflow_rejected(self):
        ldm = LDM()
        with pytest.raises(LDMOverflowError):
            ldm.alloc("big", (64 * 1024 // 8 + 1,))

    def test_exact_fit_accepted(self):
        ldm = LDM()
        ldm.alloc("exact", (64 * 1024 // 8,))
        assert ldm.bytes_free == 0

    def test_cumulative_overflow(self):
        ldm = LDM()
        ldm.alloc("a", (4096,))  # 32 KiB
        ldm.alloc("b", (4000,))  # ~31 KiB
        with pytest.raises(LDMOverflowError):
            ldm.alloc("c", (1024,))

    def test_duplicate_name_rejected(self):
        ldm = LDM()
        ldm.alloc("a", (4,))
        with pytest.raises(SimulationError):
            ldm.alloc("a", (4,))

    def test_alignment_to_32_bytes(self):
        ldm = LDM()
        ldm.alloc("odd", (1,))  # 8 bytes -> padded to 32
        assert ldm.bytes_used == 32

    def test_double_buffer_pair(self):
        ldm = LDM()
        ping, pong = ldm.alloc_double_buffer("tile", (64,))
        assert ping.name == "tile.ping"
        assert pong.name == "tile.pong"
        assert ldm.bytes_used == 2 * 64 * 8

    def test_reset(self):
        ldm = LDM()
        ldm.alloc("a", (64,))
        ldm.reset()
        assert ldm.bytes_used == 0
        assert "a" not in ldm

    def test_would_fit(self):
        ldm = LDM()
        assert ldm.would_fit(32 * 1024, 32 * 1024)
        assert not ldm.would_fit(32 * 1024, 32 * 1024, 64)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            LDMAllocator(capacity=0)


class TestBuffer:
    def test_write_and_read(self):
        ldm = LDM()
        buf = ldm.alloc("a", (4, 4))
        buf.write((0, slice(None)), np.arange(4.0))
        assert np.array_equal(buf.read((0, slice(None))), np.arange(4.0))

    def test_shape_mismatch_rejected(self):
        ldm = LDM()
        buf = ldm.alloc("a", (4,))
        with pytest.raises(SimulationError):
            buf.write(slice(None), np.zeros(5))

    def test_fill(self):
        ldm = LDM()
        buf = ldm.alloc("a", (8,))
        buf.fill(3.0)
        assert np.all(buf.data == 3.0)

    def test_get_unknown_raises(self):
        with pytest.raises(SimulationError):
            LDM().get("ghost")
