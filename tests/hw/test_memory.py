"""Main memory and the gload port."""

import numpy as np
import pytest

from repro.common.errors import SimulationError
from repro.hw.memory import GloadPort, MainMemory
from repro.hw.spec import DEFAULT_SPEC


class TestMainMemory:
    def test_register_and_get(self):
        mem = MainMemory()
        arr = mem.register("x", np.ones((4, 4)))
        assert mem.get("x") is arr
        assert "x" in mem

    def test_allocate_zeroed(self):
        mem = MainMemory()
        arr = mem.allocate("z", (8,))
        assert np.all(arr == 0)

    def test_duplicate_name_rejected(self):
        mem = MainMemory()
        mem.allocate("x", (4,))
        with pytest.raises(SimulationError):
            mem.allocate("x", (4,))

    def test_capacity_enforced(self):
        mem = MainMemory()
        too_big = DEFAULT_SPEC.memory_bytes // 8 + 1
        with pytest.raises(SimulationError):
            mem.register("huge", np.empty(too_big))

    def test_free_releases_bytes(self):
        mem = MainMemory()
        mem.allocate("x", (1024,))
        used = mem.bytes_used
        assert used == 1024 * 8
        mem.free("x")
        assert mem.bytes_used == 0
        assert "x" not in mem

    def test_free_unknown_raises(self):
        with pytest.raises(SimulationError):
            MainMemory().free("ghost")

    def test_get_unknown_raises(self):
        with pytest.raises(SimulationError):
            MainMemory().get("ghost")


class TestGloadPort:
    def test_gload_reads_value(self):
        mem = MainMemory()
        mem.register("x", np.arange(10, dtype=np.float64))
        port = GloadPort(mem)
        assert port.gload("x", 3) == 3.0

    def test_gstore_writes_value(self):
        mem = MainMemory()
        mem.register("x", np.zeros(4))
        port = GloadPort(mem)
        port.gstore("x", 1, 7.5)
        assert mem.get("x")[1] == 7.5

    def test_time_accounting_uses_8_gbps(self):
        mem = MainMemory()
        mem.register("x", np.zeros(1000))
        port = GloadPort(mem)
        port.gload("x", slice(None))  # 8000 bytes
        assert port.stats.busy_seconds == pytest.approx(8000 / 8e9)
        assert port.stats.bytes_read == 8000

    def test_transfer_count(self):
        mem = MainMemory()
        mem.register("x", np.zeros(4))
        port = GloadPort(mem)
        for i in range(4):
            port.gload("x", i)
        assert port.stats.transfers == 4
