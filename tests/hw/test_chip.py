"""Core groups, the chip, and the Section III-D row partitioning."""

import pytest

from repro.hw.chip import CoreGroup, SW26010Chip
from repro.hw.spec import DEFAULT_SPEC


class TestCoreGroup:
    def test_components_share_spec(self):
        cg = CoreGroup(0)
        assert cg.mesh.spec is cg.spec
        assert cg.dma.spec is cg.spec

    def test_peak(self):
        assert CoreGroup(0).peak_flops == pytest.approx(742.4e9)

    def test_flop_accounting(self):
        cg = CoreGroup(0)
        cg.mesh.cpe(0, 0).count_fma(10)
        assert cg.total_cpe_flops() == 20
        cg.reset_stats()
        assert cg.total_cpe_flops() == 0


class TestChip:
    def test_four_core_groups(self):
        assert len(SW26010Chip().core_groups) == 4

    def test_partition_even(self):
        strips = SW26010Chip().partition_rows(64)
        assert strips == [(0, 16), (16, 32), (32, 48), (48, 64)]

    def test_partition_uneven(self):
        strips = SW26010Chip().partition_rows(10)
        sizes = [b - a for a, b in strips]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_partition_fewer_rows_than_groups(self):
        strips = SW26010Chip().partition_rows(2)
        sizes = [b - a for a, b in strips]
        assert sizes == [1, 1, 0, 0]

    def test_partition_subset_of_groups(self):
        strips = SW26010Chip().partition_rows(64, num_groups=2)
        assert strips == [(0, 32), (32, 64)]

    def test_partition_contiguous(self):
        strips = SW26010Chip().partition_rows(37)
        for (a1, b1), (a2, b2) in zip(strips, strips[1:]):
            assert b1 == a2

    def test_partition_validation(self):
        chip = SW26010Chip()
        with pytest.raises(ValueError):
            chip.partition_rows(-1)
        with pytest.raises(ValueError):
            chip.partition_rows(8, num_groups=0)

    def test_scaled_time_is_max(self):
        assert SW26010Chip.scaled_time([1.0, 2.0, 1.5]) == 2.0

    def test_scaled_time_empty_rejected(self):
        with pytest.raises(ValueError):
            SW26010Chip.scaled_time([])

    def test_memory_partition(self):
        chip = SW26010Chip()
        part = chip.set_partition(0.25)
        total = DEFAULT_SPEC.memory_bytes * 4
        assert part.shared_bytes == total // 4
        assert part.private_bytes + part.shared_bytes == total

    def test_partition_fraction_validated(self):
        with pytest.raises(ValueError):
            SW26010Chip().set_partition(1.5)
