"""DMA engine and the Table II bandwidth model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.units import GB
from repro.hw.dma import DMABandwidthModel, DMAEngine
from repro.hw.ldm import LDM
from repro.hw.memory import MainMemory
from repro.hw.spec import TABLE_II_DMA_BANDWIDTH


@pytest.fixture
def model():
    return DMABandwidthModel()


class TestBandwidthModel:
    def test_exact_table_entries(self, model):
        for size, (get, put) in TABLE_II_DMA_BANDWIDTH.items():
            assert model.get_bandwidth(size) == pytest.approx(get * GB)
            assert model.put_bandwidth(size) == pytest.approx(put * GB)

    def test_exact_entries_ignore_alignment_flag(self, model):
        # Measured points already include alignment effects.
        assert model.get_bandwidth(32, aligned=False) == pytest.approx(4.31 * GB)

    def test_interpolation_between_points(self, model):
        bw = model.get_bandwidth(768)  # between 640 and 1024
        assert 29.05 * GB < bw < 29.79 * GB

    def test_clamped_below(self, model):
        assert model.get_bandwidth(8) == pytest.approx(4.31 * GB)

    def test_clamped_above(self, model):
        assert model.get_bandwidth(1 << 20) == pytest.approx(32.05 * GB)

    def test_misaligned_interpolated_derated(self, model):
        aligned = model.get_bandwidth(768, aligned=True)
        misaligned = model.get_bandwidth(775, aligned=False)
        assert misaligned < aligned

    def test_direction_dispatch(self, model):
        assert model.bandwidth(256, "get") == pytest.approx(22.44 * GB)
        assert model.bandwidth(256, "put") == pytest.approx(25.80 * GB)
        with pytest.raises(ValueError):
            model.bandwidth(256, "sideways")

    def test_effective_bandwidth_between_get_and_put(self, model):
        eff = model.effective_bandwidth(256, get_fraction=0.5)
        assert min(22.44, 25.80) * GB < eff < max(22.44, 25.80) * GB

    def test_effective_bandwidth_pure_get(self, model):
        eff = model.effective_bandwidth(256, get_fraction=1.0)
        assert eff == pytest.approx(22.44 * GB)

    def test_effective_fraction_validated(self, model):
        with pytest.raises(ValueError):
            model.effective_bandwidth(256, get_fraction=1.5)

    def test_zero_block_rejected(self, model):
        with pytest.raises(ValueError):
            model.get_bandwidth(0)

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            DMABandwidthModel(table={})

    @given(st.integers(min_value=1, max_value=1 << 16))
    @settings(max_examples=60, deadline=None)
    def test_bandwidth_positive_and_bounded(self, block):
        model = DMABandwidthModel()
        bw = model.get_bandwidth(block, aligned=model.is_aligned(block))
        assert 0 < bw <= 36.01 * GB

    @given(st.integers(min_value=7, max_value=13))
    @settings(max_examples=20, deadline=None)
    def test_monotone_on_aligned_powers(self, log_size):
        model = DMABandwidthModel()
        small = model.get_bandwidth(2**log_size)
        big = model.get_bandwidth(2 ** (log_size + 1) if log_size < 13 else 2**13)
        assert big >= small


class TestDMAEngine:
    def _setup(self):
        mem = MainMemory()
        engine = DMAEngine(mem)
        ldm = LDM()
        return mem, engine, ldm

    def test_get_moves_data(self):
        mem, engine, ldm = self._setup()
        src = mem.register("src", np.arange(32, dtype=np.float64))
        buf = ldm.alloc("buf", (32,))
        engine.dma_get("src", slice(None), buf)
        assert np.array_equal(buf.data, src)

    def test_put_moves_data_back(self):
        mem, engine, ldm = self._setup()
        mem.allocate("dst", (32,))
        buf = ldm.alloc("buf", (32,))
        buf.fill(2.0)
        engine.dma_put(buf, slice(None), "dst", slice(None))
        assert np.all(mem.get("dst") == 2.0)

    def test_put_accumulate(self):
        mem, engine, ldm = self._setup()
        dst = mem.allocate("dst", (8,))
        dst += 1.0
        buf = ldm.alloc("buf", (8,))
        buf.fill(2.0)
        engine.dma_put(buf, slice(None), "dst", slice(None), accumulate=True)
        assert np.all(mem.get("dst") == 3.0)

    def test_transfer_duration_matches_model(self):
        mem, engine, ldm = self._setup()
        mem.register("src", np.zeros(512))  # 4096 bytes
        buf = ldm.alloc("buf", (512,))
        t = engine.dma_get("src", slice(None), buf, block_bytes=4096)
        assert t.duration == pytest.approx(4096 / (32.05 * GB))

    def test_channel_serialization(self):
        mem, engine, ldm = self._setup()
        mem.register("src", np.zeros((2, 512)))
        buf = ldm.alloc("buf", (512,))
        t1 = engine.dma_get("src", (0, slice(None)), buf, channel=0)
        t2 = engine.dma_get("src", (1, slice(None)), buf, channel=0)
        assert t2.start >= t1.finish

    def test_independent_channels_overlap(self):
        mem, engine, ldm = self._setup()
        mem.register("src", np.zeros((2, 512)))
        buf = ldm.alloc("buf", (512,))
        t1 = engine.dma_get("src", (0, slice(None)), buf, channel=0)
        t2 = engine.dma_get("src", (1, slice(None)), buf, channel=1)
        assert t2.start == 0.0
        assert t1.start == 0.0

    def test_stats_accumulate(self):
        mem, engine, ldm = self._setup()
        mem.register("src", np.zeros(512))
        buf = ldm.alloc("buf", (512,))
        engine.dma_get("src", slice(None), buf)
        engine.dma_put(buf, slice(None), "src", slice(None))
        assert engine.stats.bytes_read == 4096
        assert engine.stats.bytes_written == 4096
        assert engine.stats.transfers == 2

    def test_reset_clears_log(self):
        mem, engine, ldm = self._setup()
        mem.register("src", np.zeros(16))
        buf = ldm.alloc("buf", (16,))
        engine.dma_get("src", slice(None), buf)
        engine.reset()
        assert engine.total_bytes() == 0
        assert engine.channel_free_at() == 0.0
