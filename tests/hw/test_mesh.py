"""The 8x8 CPE mesh and register-communication buses."""

import numpy as np
import pytest

from repro.common.errors import BusProtocolError
from repro.hw.mesh import CPEMesh, TransferBuffer
from repro.hw.spec import DEFAULT_SPEC


@pytest.fixture
def mesh():
    return CPEMesh(DEFAULT_SPEC.shrunk(4))


class TestTopology:
    def test_mesh_size(self, mesh):
        assert mesh.size == 4
        assert len(list(mesh)) == 16

    def test_cpe_lookup(self, mesh):
        cpe = mesh.cpe(1, 2)
        assert cpe.coords == (1, 2)

    def test_out_of_range(self, mesh):
        with pytest.raises(BusProtocolError):
            mesh.cpe(4, 0)


class TestPut:
    def test_same_row_put(self, mesh):
        mesh.put((1, 0), (1, 3), np.arange(4.0))
        assert np.array_equal(mesh.get((1, 3)), np.arange(4.0))

    def test_same_column_put(self, mesh):
        mesh.put((0, 2), (3, 2), np.ones(4))
        assert np.array_equal(mesh.get((3, 2)), np.ones(4))

    def test_diagonal_put_rejected(self, mesh):
        with pytest.raises(BusProtocolError):
            mesh.put((0, 0), (1, 1), np.zeros(4))

    def test_self_put_rejected(self, mesh):
        with pytest.raises(BusProtocolError):
            mesh.put((0, 0), (0, 0), np.zeros(4))

    def test_payload_copied(self, mesh):
        data = np.zeros(4)
        mesh.put((0, 0), (0, 1), data)
        data[:] = 9.0
        assert np.all(mesh.get((0, 1)) == 0.0)


class TestBroadcast:
    def test_row_broadcast_reaches_whole_row(self, mesh):
        mesh.row_broadcast((2, 1), np.full(4, 5.0))
        for col in range(4):
            if col == 1:
                assert mesh.pending((2, col)) == 0
            else:
                assert np.all(mesh.get((2, col)) == 5.0)

    def test_col_broadcast_reaches_whole_column(self, mesh):
        mesh.col_broadcast((0, 3), np.full(2, 7.0))
        for row in range(1, 4):
            assert np.all(mesh.get((row, 3)) == 7.0)

    def test_broadcast_charges_bus_once(self, mesh):
        mesh.row_broadcast((0, 0), np.zeros(4))  # 32 bytes = 1 packet
        assert mesh.row_buses[0].stats.packets == 1
        assert mesh.row_buses[0].stats.operations == 1


class TestProtocol:
    def test_fifo_order(self, mesh):
        mesh.put((0, 0), (0, 1), np.array([1.0]))
        mesh.put((0, 2), (0, 1), np.array([2.0]))
        assert mesh.get((0, 1))[0] == 1.0
        assert mesh.get((0, 1))[0] == 2.0

    def test_empty_get_rejected(self, mesh):
        with pytest.raises(BusProtocolError):
            mesh.get((0, 0))

    def test_buffer_overflow_rejected(self, mesh):
        depth = mesh.spec.transfer_buffer_depth
        for i in range(depth):
            mesh.put((0, 0), (0, 1), np.array([float(i)]))
        with pytest.raises(BusProtocolError):
            mesh.put((0, 0), (0, 1), np.array([99.0]))

    def test_assert_drained_detects_leftovers(self, mesh):
        mesh.put((0, 0), (0, 1), np.zeros(1))
        with pytest.raises(BusProtocolError):
            mesh.assert_drained()

    def test_assert_drained_passes_when_clean(self, mesh):
        mesh.put((0, 0), (0, 1), np.zeros(1))
        mesh.get((0, 1))
        mesh.assert_drained()

    def test_high_water_mark(self):
        buf = TransferBuffer((0, 0), depth=4)
        buf.push(np.zeros(1))
        buf.push(np.zeros(1))
        buf.pop()
        assert buf.high_water == 2


class TestAccounting:
    def test_bytes_accounting(self, mesh):
        mesh.put((0, 0), (0, 1), np.zeros(8))  # 64 bytes
        assert mesh.total_bus_bytes() == 64

    def test_packet_rounding(self, mesh):
        mesh.put((0, 0), (0, 1), np.zeros(5))  # 40 bytes -> 2 packets
        assert mesh.row_buses[0].stats.packets == 2

    def test_reset_stats(self, mesh):
        mesh.put((0, 0), (0, 1), np.zeros(4))
        mesh.get((0, 1))
        mesh.reset_stats()
        assert mesh.total_bus_bytes() == 0
