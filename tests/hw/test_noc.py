"""The cross-CG NoC model."""

import pytest

from repro.common.errors import SimulationError
from repro.hw.noc import NoC


@pytest.fixture
def noc():
    return NoC()


class TestTopology:
    def test_ring_distance(self, noc):
        assert noc.hops(0, 0) == 0
        assert noc.hops(0, 1) == 1
        assert noc.hops(0, 3) == 1  # ring wraps
        assert noc.hops(0, 2) == 2

    def test_out_of_range(self, noc):
        with pytest.raises(SimulationError):
            noc.hops(0, 4)


class TestTiming:
    def test_local_uses_ddr_bandwidth(self, noc):
        seconds = noc.transfer_seconds(36 * 10**9, 1, 1)
        assert seconds == pytest.approx(1.0)

    def test_remote_slower_than_local(self, noc):
        local = noc.transfer_seconds(10**8, 0, 0)
        remote = noc.transfer_seconds(10**8, 0, 1)
        assert remote > local

    def test_latency_scales_with_hops(self, noc):
        near = noc.transfer_seconds(0, 0, 1)
        far = noc.transfer_seconds(0, 0, 2)
        assert far == pytest.approx(2 * near)

    def test_stats(self, noc):
        noc.transfer_seconds(100, 0, 0)
        noc.transfer_seconds(100, 0, 1)
        assert noc.stats.bytes_local == 100
        assert noc.stats.bytes_remote == 100
        assert noc.stats.transfers == 2

    def test_remote_penalty_about_2x(self, noc):
        """Why Section III-D partitions by rows: crossing the NoC roughly
        halves the deliverable bandwidth."""
        penalty = noc.remote_penalty(10**8)
        assert 1.5 < penalty < 3.0

    def test_validation(self, noc):
        with pytest.raises(SimulationError):
            noc.transfer_seconds(-1, 0, 0)
        with pytest.raises(SimulationError):
            noc.remote_penalty(0)
        with pytest.raises(ValueError):
            NoC(remote_bandwidth=0)
        with pytest.raises(ValueError):
            NoC(hop_latency=-1)
