"""The 32-entry vector register file."""

import numpy as np
import pytest

from repro.common.errors import RegisterPressureError, SimulationError
from repro.hw.regfile import VectorRegisterFile


class TestAllocation:
    def test_thirty_two_registers(self):
        rf = VectorRegisterFile()
        assert rf.num_registers == 32
        rf.allocate_block("r", 32)
        assert rf.registers_free == 0

    def test_overflow_raises(self):
        rf = VectorRegisterFile()
        rf.allocate_block("r", 32)
        with pytest.raises(RegisterPressureError):
            rf.allocate("one_more")

    def test_duplicate_name_rejected(self):
        rf = VectorRegisterFile()
        rf.allocate("a")
        with pytest.raises(SimulationError):
            rf.allocate("a")

    def test_free_all(self):
        rf = VectorRegisterFile()
        rf.allocate("a")
        rf.free_all()
        assert rf.registers_used == 0


class TestOperations:
    def test_write_read_roundtrip(self):
        rf = VectorRegisterFile()
        rf.allocate("a")
        rf.write("a", [1.0, 2.0, 3.0, 4.0])
        assert np.array_equal(rf.read("a"), [1.0, 2.0, 3.0, 4.0])

    def test_wrong_lane_count_rejected(self):
        rf = VectorRegisterFile()
        rf.allocate("a")
        with pytest.raises(SimulationError):
            rf.write("a", [1.0, 2.0])

    def test_splat_replicates_scalar(self):
        rf = VectorRegisterFile()
        rf.allocate("b")
        rf.splat("b", 2.5)
        assert np.all(rf.read("b") == 2.5)

    def test_fma_accumulates(self):
        rf = VectorRegisterFile()
        for name in ("acc", "a", "b"):
            rf.allocate(name)
        rf.write("a", [1, 2, 3, 4])
        rf.splat("b", 2.0)
        rf.fma("acc", "a", "b")
        rf.fma("acc", "a", "b")
        assert np.array_equal(rf.read("acc"), [4, 8, 12, 16])

    def test_read_returns_copy(self):
        rf = VectorRegisterFile()
        rf.allocate("a")
        value = rf.read("a")
        value[:] = 9.0
        assert np.all(rf.read("a") == 0.0)

    def test_index_out_of_range(self):
        rf = VectorRegisterFile()
        with pytest.raises(SimulationError):
            rf.read(32)

    def test_unknown_name(self):
        rf = VectorRegisterFile()
        with pytest.raises(SimulationError):
            rf.read("ghost")
