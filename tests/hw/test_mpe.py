"""MPE launch-overhead model."""

import pytest

from repro.common.errors import SimulationError
from repro.core.conv import ConvolutionEngine, TimingReport
from repro.core.params import ConvParams
from repro.core.plans import BatchSizeAwarePlan
from repro.hw.mpe import LaunchModel


def _report(seconds: float) -> TimingReport:
    return TimingReport(
        seconds=seconds,
        flops=1,
        dma_seconds=0,
        compute_seconds=seconds,
        bytes_get=0,
        bytes_put=0,
        tiles=1,
        peak_flops=742.4e9,
    )


class TestLaunchModel:
    def test_per_launch(self):
        model = LaunchModel(spawn_seconds=10e-6, join_seconds=5e-6)
        assert model.per_launch == pytest.approx(15e-6)

    def test_layer_seconds(self):
        model = LaunchModel()
        assert model.layer_seconds(_report(1e-3), launches=2) == pytest.approx(
            1e-3 + 2 * model.per_launch
        )

    def test_big_layer_overhead_negligible(self):
        """A paper-scale layer is far from launch-bound."""
        params = ConvParams.from_output(ni=128, no=128, ro=64, co=64, kr=3, kc=3, b=128)
        report = ConvolutionEngine(BatchSizeAwarePlan(params)).evaluate()
        assert LaunchModel().overhead_fraction(report) < 0.001

    def test_tiny_kernel_launch_bound(self):
        model = LaunchModel()
        assert model.overhead_fraction(_report(5e-6)) > 0.5

    def test_threshold(self):
        model = LaunchModel(spawn_seconds=15e-6, join_seconds=5e-6)
        t = model.launch_bound_threshold(target_overhead=0.1)
        assert t == pytest.approx(20e-6 * 9)
        # At exactly the threshold, overhead is the target.
        assert model.overhead_fraction(_report(t)) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            LaunchModel(spawn_seconds=-1)
        model = LaunchModel()
        with pytest.raises(SimulationError):
            model.layer_seconds(_report(1.0), launches=0)
        with pytest.raises(SimulationError):
            model.launch_bound_threshold(target_overhead=1.5)
