"""Candidate enumeration: feasibility, coverage, and serialization."""

import dataclasses

import pytest

from repro.core.ldm_blocking import BatchBlocking, ImageBlocking
from repro.core.register_blocking import PAPER_REGISTER_BLOCKING, RegisterBlocking
from repro.hw.spec import DEFAULT_SPEC
from repro.tune import Candidate, enumerate_candidates
from repro.tune.space import DEFAULT_REGISTER_BLOCKINGS


class TestEnumeration:
    def test_nonempty_and_unique(self, small_params):
        candidates = enumerate_candidates(small_params)
        assert candidates
        assert len(candidates) == len(set(candidates))

    def test_both_families_present(self, small_params):
        families = {c.family for c in enumerate_candidates(small_params)}
        assert families == {"image-size-aware", "batch-size-aware"}

    def test_every_candidate_builds(self, small_params):
        """Feasibility filtering is real: every point materializes as a plan."""
        for cand in enumerate_candidates(small_params):
            plan = cand.build(small_params)
            assert plan.params == small_params

    def test_large_shape_is_pruned_but_rich(self, paper_params):
        candidates = enumerate_candidates(paper_params)
        # The search must expose promote_input — the lever the heuristic
        # planner never pulls.
        assert any(
            isinstance(c.blocking, ImageBlocking) and c.blocking.promote_input
            for c in candidates
        )
        # ... and a sampled subset must still be LDM-buildable.
        for cand in candidates[::97]:
            cand.build(paper_params)

    def test_batch_family_keeps_batch_whole(self, small_params):
        for cand in enumerate_candidates(small_params):
            if cand.family == "batch-size-aware":
                assert isinstance(cand.blocking, BatchBlocking)

    def test_register_blockings_all_feasible(self):
        for rb in DEFAULT_REGISTER_BLOCKINGS:
            assert rb.is_feasible(DEFAULT_SPEC)

    def test_custom_register_set(self, small_params):
        only = (RegisterBlocking(rb_b=8, rb_no=4),)
        candidates = enumerate_candidates(small_params, register_blockings=only)
        assert {c.register_blocking for c in candidates} == set(only)

    def test_no_feasible_register_shape_raises(self, small_params):
        huge = (RegisterBlocking(rb_b=32, rb_no=32),)
        with pytest.raises(ValueError):
            enumerate_candidates(small_params, register_blockings=huge)

    def test_infeasible_blockings_excluded(self, paper_params):
        """LDM capacity actually prunes: a roomier machine admits more."""
        roomy = dataclasses.replace(DEFAULT_SPEC, ldm_bytes=16 * 64 * 1024)
        assert len(enumerate_candidates(paper_params, DEFAULT_SPEC)) < len(
            enumerate_candidates(paper_params, roomy)
        )


class TestCandidate:
    def test_round_trip(self, small_params):
        for cand in enumerate_candidates(small_params)[::7]:
            assert Candidate.from_dict(cand.to_dict()) == cand

    def test_describe_mentions_family_and_registers(self):
        cand = Candidate(
            family="image-size-aware",
            blocking=ImageBlocking(b_b=8, b_co=4),
            register_blocking=PAPER_REGISTER_BLOCKING,
        )
        text = cand.describe()
        assert "image-size-aware" in text
        assert "rb=(16,4)" in text
