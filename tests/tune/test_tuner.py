"""Autotuner behavior: never-worse winners, cache flow, degraded tuning."""

import numpy as np
import pytest

from repro.core.conv import ConvolutionEngine
from repro.core.planner import plan_convolution
from repro.core.reference import conv2d_reference
from repro.faults import FaultPlan, FaultSpec
from repro.hw.spec import DEFAULT_SPEC
from repro.tune import PlanCache, autotune, score_candidate, warm_cache
from repro.tune.space import enumerate_candidates


TOP_K = 4  # small measured set keeps the suite fast


class TestTuning:
    def test_winner_never_worse_than_heuristic(self, small_params):
        heuristic = plan_convolution(small_params).plan
        baseline = ConvolutionEngine(heuristic).evaluate()
        result = autotune(small_params, cache=False, top_k=TOP_K)
        assert result.source == "tuned"
        assert result.measured >= 1
        assert result.seconds <= baseline.seconds * (1 + 1e-12)

    def test_tuned_plan_is_bit_identical(self, small_params, rng):
        """Whatever wins the search, the math is the reference math."""
        result = autotune(small_params, cache=False, top_k=TOP_K)
        x = rng.standard_normal(small_params.input_shape)
        w = rng.standard_normal(small_params.filter_shape)
        out, _ = ConvolutionEngine(result.plan).run(x, w)
        assert np.allclose(out, conv2d_reference(x, w))

    def test_counts_are_consistent(self, small_params):
        result = autotune(small_params, cache=False, top_k=TOP_K)
        assert result.candidates == len(enumerate_candidates(small_params))
        # the heuristic rides along, possibly deduplicated
        assert TOP_K <= result.measured <= TOP_K + 1

    def test_score_candidate_is_finite_and_positive(self, small_params):
        for cand in enumerate_candidates(small_params)[::11]:
            est = score_candidate(cand, small_params)
            assert np.isfinite(est.flops)
            assert est.flops > 0


class TestCacheFlow:
    def test_cold_then_warm(self, tmp_path, small_params):
        cache = PlanCache(tmp_path)
        cold = autotune(small_params, cache=cache, top_k=TOP_K)
        warm = autotune(small_params, cache=cache, top_k=TOP_K)
        assert cold.source == "tuned" and warm.source == "cache"
        assert warm.measured == 0
        assert warm.plan.signature() == cold.plan.signature()
        assert warm.gflops == pytest.approx(cold.gflops)
        assert cache.stats.hits == 1

    def test_force_retunes_but_still_stores(self, tmp_path, small_params):
        cache = PlanCache(tmp_path)
        autotune(small_params, cache=cache, top_k=TOP_K)
        forced = autotune(small_params, cache=cache, top_k=TOP_K, force=True)
        assert forced.source == "tuned"
        assert forced.measured >= 1
        assert cache.stats.stores == 2

    def test_cache_false_persists_nothing(self, tmp_path, small_params, monkeypatch):
        monkeypatch.setenv("SWDNN_PLAN_CACHE", str(tmp_path / "plans"))
        result = autotune(small_params, cache=False, top_k=TOP_K)
        assert result.cache_path is None
        assert not (tmp_path / "plans").exists()

    def test_path_argument_is_accepted(self, tmp_path, small_params):
        result = autotune(small_params, cache=str(tmp_path), top_k=TOP_K)
        assert result.cache_path is not None
        assert result.cache_path.parent == tmp_path

    def test_warm_cache_covers_chip_strips(self, tmp_path, small_params):
        cache = PlanCache(tmp_path)
        warmed = warm_cache([small_params], cache=cache, top_k=TOP_K)
        assert all(r.source == "tuned" for r in warmed)
        # A warmed cache answers both the full shape and every CG strip.
        again = warm_cache([small_params], cache=cache, top_k=TOP_K)
        assert all(r.source == "cache" for r in again)


class TestDegradedTuning:
    def test_fenced_mesh_tunes_separately(self, tmp_path, small_params):
        """Healthy and degraded machines never alias in the cache."""
        cache = PlanCache(tmp_path)
        healthy = autotune(small_params, cache=cache, top_k=TOP_K)
        fault = FaultPlan(FaultSpec(fenced_cpes=((0, 0),)))
        degraded = autotune(
            small_params, cache=cache, top_k=TOP_K, fault_plan=fault
        )
        assert degraded.source == "tuned"  # not a hit on the healthy entry
        assert degraded.cache_path != healthy.cache_path
        assert cache.entries() == 2

    def test_derated_dma_slows_the_winner(self, small_params):
        healthy = autotune(small_params, cache=False, top_k=TOP_K)
        fault = FaultPlan(FaultSpec(dma_bandwidth_factor=0.5))
        degraded = autotune(
            small_params, cache=False, top_k=TOP_K, fault_plan=fault
        )
        assert degraded.seconds > healthy.seconds
