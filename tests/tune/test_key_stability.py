"""Plan-cache keys are byte-identical across processes.

A warm serving fleet only works if every process computes the same cache
key for the same question: a key that depends on hash randomization, dict
ordering, or interpreter state would turn a shared cache directory into a
per-process one.  The regression here computes keys in a fresh subprocess
(its own ``PYTHONHASHSEED``) and pins them against the parent's.
"""

import json
import pathlib
import subprocess
import sys

import pytest

from repro.core.params import ConvParams
from repro.hw.spec import DEFAULT_SPEC
from repro.tune.cache import PlanCache

pytestmark = pytest.mark.tune

PARAMS = dict(ni=16, no=16, ri=18, ci=18, kr=3, kc=3, b=4)

_CHILD = r"""
import json, sys
sys.path.insert(0, sys.argv[2])
from repro.core.params import ConvParams
from repro.hw.spec import DEFAULT_SPEC
from repro.tune.cache import PlanCache

params = ConvParams(**json.loads(sys.argv[1]))
cache = PlanCache(root="ignored")
print(json.dumps({
    "plain": cache.key(params, DEFAULT_SPEC, "numpy", 64, 1),
    "fused": cache.key(params, DEFAULT_SPEC, "mesh", 60, 2),
    "family": cache.key(
        params, DEFAULT_SPEC, "numpy", 64, 1,
        families=("image-size-aware",),
    ),
    "zoo": cache.key(
        params, DEFAULT_SPEC, "numpy", 64, 1,
        algorithms="all",
    ),
}))
"""


def _child_keys():
    import repro

    pkg_root = str(pathlib.Path(repro.__file__).parents[1])
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, json.dumps(PARAMS), pkg_root],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout)


class TestCrossProcessKeyStability:
    def test_keys_match_across_processes(self):
        params = ConvParams(**PARAMS)
        cache = PlanCache(root="ignored")
        child = _child_keys()
        assert child["plain"] == cache.key(params, DEFAULT_SPEC, "numpy", 64, 1)
        assert child["fused"] == cache.key(params, DEFAULT_SPEC, "mesh", 60, 2)
        assert child["family"] == cache.key(
            params, DEFAULT_SPEC, "numpy", 64, 1,
            families=("image-size-aware",),
        )
        assert child["zoo"] == cache.key(
            params, DEFAULT_SPEC, "numpy", 64, 1, algorithms="all"
        )

    def test_keys_are_sha256_prefixes(self):
        params = ConvParams(**PARAMS)
        cache = PlanCache(root="ignored")
        key = cache.key(params, DEFAULT_SPEC, "numpy", 64, 1)
        assert len(key) == 40
        int(key, 16)  # hex or raise

    def test_family_restriction_changes_the_key(self):
        params = ConvParams(**PARAMS)
        cache = PlanCache(root="ignored")
        unrestricted = cache.key(params, DEFAULT_SPEC, "numpy", 64, 1)
        restricted = cache.key(
            params, DEFAULT_SPEC, "numpy", 64, 1,
            families=("image-size-aware",),
        )
        assert unrestricted != restricted

    def test_unrestricted_payload_omits_families_field(self):
        """families=None must not appear in the payload at all, so every
        pre-restriction cache entry keeps its original key."""
        params = ConvParams(**PARAMS)
        cache = PlanCache(root="ignored")
        payload = cache.key_payload(params, DEFAULT_SPEC, "numpy", 64, 1)
        assert "families" not in payload
        restricted = cache.key_payload(
            params, DEFAULT_SPEC, "numpy", 64, 1,
            families=("batch-size-aware", "image-size-aware"),
        )
        assert restricted["families"] == [
            "batch-size-aware", "image-size-aware",
        ]

    def test_unrestricted_payload_omits_algorithms_field(self):
        """algorithms=None must not appear in the payload at all, so every
        pre-zoo cache entry keeps its original key."""
        params = ConvParams(**PARAMS)
        cache = PlanCache(root="ignored")
        payload = cache.key_payload(params, DEFAULT_SPEC, "numpy", 64, 1)
        assert "algorithms" not in payload
        zoo = cache.key_payload(
            params, DEFAULT_SPEC, "numpy", 64, 1, algorithms="all"
        )
        assert zoo["algorithms"] == ["direct", "im2col", "winograd"]

    def test_algorithms_restriction_changes_the_key(self):
        params = ConvParams(**PARAMS)
        cache = PlanCache(root="ignored")
        unrestricted = cache.key(params, DEFAULT_SPEC, "numpy", 64, 1)
        zoo = cache.key(
            params, DEFAULT_SPEC, "numpy", 64, 1, algorithms="all"
        )
        assert unrestricted != zoo

    def test_algorithms_order_is_canonicalized(self):
        """'all' and any explicit ordering of the full set share one key."""
        params = ConvParams(**PARAMS)
        cache = PlanCache(root="ignored")
        a = cache.key(params, DEFAULT_SPEC, "numpy", 64, 1, algorithms="all")
        b = cache.key(
            params, DEFAULT_SPEC, "numpy", 64, 1,
            algorithms=("winograd", "direct", "im2col"),
        )
        assert a == b

    def test_family_order_is_canonicalized(self):
        params = ConvParams(**PARAMS)
        cache = PlanCache(root="ignored")
        a = cache.key(
            params, DEFAULT_SPEC, "numpy", 64, 1,
            families=("image-size-aware", "batch-size-aware"),
        )
        b = cache.key(
            params, DEFAULT_SPEC, "numpy", 64, 1,
            families=("batch-size-aware", "image-size-aware"),
        )
        assert a == b
