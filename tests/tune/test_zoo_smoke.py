"""Conv-algorithm-zoo smoke — the `zoo` stage of scripts/verify.sh.

One tuned cross-family search on a Table III row: the zoo search must
never regress the direct-tuned result, its winner must round-trip through
the plan cache, and the communication-lower-bound oracle must emit a
schema-valid attainment row for every legal family of the shape.
"""

import numpy as np
import pytest

from repro.core.algorithms import engine_for_plan
from repro.core.params import ConvParams
from repro.core.reference import conv2d_reference
from repro.telemetry import oracle_report, validate_oracle_report
from repro.tune import PlanCache, autotune

pytestmark = pytest.mark.zoo

#: Table III row (Ni=128, No=256) at the paper's 64x64 output, batch 128 —
#: the shape where the fused Winograd family beats the direct mapping.
ROW = ConvParams.from_output(ni=128, no=256, ro=64, co=64, kr=3, kc=3, b=128)


def test_cross_family_tuning_on_table3_row(tmp_path):
    cache = PlanCache(tmp_path)

    direct = autotune(ROW, cache=cache, top_k=4, jobs=2)
    zoo = autotune(ROW, cache=cache, top_k=4, jobs=2, algorithms="all")

    # The zoo search measures the direct winner too, so it can never lose.
    assert zoo.gflops >= direct.gflops
    # On this row the lowered Winograd family wins with a measured speedup.
    assert zoo.candidate.algorithm == "winograd"
    assert zoo.gflops > direct.gflops

    # The winner round-trips through the versioned cache...
    warm = autotune(ROW, cache=cache, top_k=4, algorithms="all")
    assert warm.source == "cache"
    assert warm.candidate.algorithm == "winograd"
    assert warm.plan.signature() == zoo.plan.signature()
    # ...under a different key than the direct-only entry.
    assert warm.cache_path != direct.cache_path

    # And the tuned lowered plan computes the right function.
    small = ConvParams.from_output(ni=8, no=8, ro=8, co=8, kr=3, kc=3, b=2)
    tuned_small = autotune(small, cache=cache, top_k=2, algorithms=("winograd",))
    rng = np.random.default_rng(3)
    x = rng.standard_normal(small.input_shape)
    w = rng.standard_normal(small.filter_shape)
    out, _ = engine_for_plan(tuned_small.plan).run(x, w)
    assert np.allclose(out, conv2d_reference(x, w))


def test_oracle_schema_on_table3_row():
    # A CG row strip of the Table III shape keeps the walk fast while
    # exercising the same planner decisions.
    strip = ROW.with_rows(16)
    report = oracle_report([strip])
    assert {row.algorithm for row in report.rows} == {
        "direct", "im2col", "winograd",
    }
    errors = validate_oracle_report(report.as_dict())
    assert errors == []
    for row in report.rows:
        assert not row.undercuts_bound
