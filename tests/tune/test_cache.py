"""Plan-cache keying, round trips, and — critically — invalidation."""

import dataclasses
import json

from repro.core.planner import plan_convolution
from repro.core.serialize import plan_to_dict
from repro.hw.spec import DEFAULT_SPEC
from repro.tune import (
    CACHE_SCHEMA_VERSION,
    PlanCache,
    default_cache_dir,
    global_cache_stats,
    reset_global_cache_stats,
)


def _store_heuristic(cache, params, spec=DEFAULT_SPEC, mesh=None):
    plan = plan_convolution(params, spec=spec).plan
    mesh = mesh if mesh is not None else spec.mesh_size
    return cache.store(
        params, spec, "numpy", mesh, plan_to_dict(plan), {"gflops": 1.0}
    )


class TestRoundTrip:
    def test_store_then_load(self, tmp_path, small_params):
        cache = PlanCache(tmp_path)
        path = _store_heuristic(cache, small_params)
        assert path.is_file()
        entry = cache.load(small_params, DEFAULT_SPEC, "numpy", 8)
        assert entry is not None
        assert entry["tuning"]["gflops"] == 1.0
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1
        assert cache.entries() == 1

    def test_cold_load_is_miss(self, tmp_path, small_params):
        cache = PlanCache(tmp_path)
        assert cache.load(small_params, DEFAULT_SPEC, "numpy", 8) is None
        assert cache.stats.misses == 1

    def test_global_stats_aggregate(self, tmp_path, small_params):
        reset_global_cache_stats()
        a, b = PlanCache(tmp_path / "a"), PlanCache(tmp_path / "b")
        a.load(small_params, DEFAULT_SPEC, "numpy", 8)
        _store_heuristic(b, small_params)
        b.load(small_params, DEFAULT_SPEC, "numpy", 8)
        stats = global_cache_stats()
        assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)
        assert stats.as_dict() == {"hits": 1, "misses": 1, "stores": 1}


class TestInvalidation:
    def test_changed_spec_misses(self, tmp_path, small_params):
        """A different machine (smaller LDM) must never see these plans."""
        cache = PlanCache(tmp_path)
        _store_heuristic(cache, small_params)
        other = dataclasses.replace(DEFAULT_SPEC, ldm_bytes=32 * 1024)
        assert cache.load(small_params, other, "numpy", 8) is None

    def test_changed_bandwidth_misses(self, tmp_path, small_params):
        cache = PlanCache(tmp_path)
        _store_heuristic(cache, small_params)
        other = dataclasses.replace(
            DEFAULT_SPEC, ddr_peak_bandwidth=DEFAULT_SPEC.ddr_peak_bandwidth / 2
        )
        assert cache.load(small_params, other, "numpy", 8) is None

    def test_backend_and_mesh_size_separate_keys(self, tmp_path, small_params):
        cache = PlanCache(tmp_path)
        base = cache.key(small_params, DEFAULT_SPEC, "numpy", 8)
        assert cache.key(small_params, DEFAULT_SPEC, "mesh-fast", 8) != base
        assert cache.key(small_params, DEFAULT_SPEC, "numpy", 4) != base

    def test_schema_bump_invalidates_everything(
        self, tmp_path, small_params, monkeypatch
    ):
        cache = PlanCache(tmp_path)
        _store_heuristic(cache, small_params)
        assert cache.load(small_params, DEFAULT_SPEC, "numpy", 8) is not None
        import repro.tune.cache as cache_mod

        monkeypatch.setattr(
            cache_mod, "CACHE_SCHEMA_VERSION", CACHE_SCHEMA_VERSION + 1
        )
        assert cache.load(small_params, DEFAULT_SPEC, "numpy", 8) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path, small_params):
        cache = PlanCache(tmp_path)
        path = _store_heuristic(cache, small_params)
        path.write_text("not json {")
        assert cache.load(small_params, DEFAULT_SPEC, "numpy", 8) is None

    def test_tampered_key_is_a_miss(self, tmp_path, small_params):
        """A file whose embedded payload disagrees with its name is rejected."""
        cache = PlanCache(tmp_path)
        path = _store_heuristic(cache, small_params)
        entry = json.loads(path.read_text())
        entry["key"]["mesh_size"] = 4
        path.write_text(json.dumps(entry))
        assert cache.load(small_params, DEFAULT_SPEC, "numpy", 8) is None


class TestLocation:
    def test_env_var_overrides_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SWDNN_PLAN_CACHE", str(tmp_path / "plans"))
        assert default_cache_dir() == tmp_path / "plans"
        assert PlanCache().root == tmp_path / "plans"

    def test_default_under_home_cache(self, monkeypatch):
        monkeypatch.delenv("SWDNN_PLAN_CACHE", raising=False)
        assert default_cache_dir().parts[-3:] == (".cache", "swdnn-repro", "plans")

    def test_empty_cache_has_no_entries(self, tmp_path):
        assert PlanCache(tmp_path / "nonexistent").entries() == 0
