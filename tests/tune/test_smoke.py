"""Fast autotune smoke — the `tune` stage of scripts/verify.sh.

One tiny shape, cold tune into a throwaway cache, warm hit, and bit-exact
output from the tuned plan.  Everything here must stay in the
single-second range; the exhaustive behavior tests live in
``test_tuner.py``.
"""

import numpy as np
import pytest

from repro.core.conv import ConvolutionEngine
from repro.core.params import ConvParams
from repro.core.reference import conv2d_reference
from repro.tune import PlanCache, autotune

pytestmark = pytest.mark.tune


def test_tune_smoke(tmp_path):
    params = ConvParams(ni=16, no=16, ri=6, ci=6, kr=3, kc=3, b=8)
    cache = PlanCache(tmp_path)

    cold = autotune(params, cache=cache, top_k=2)
    assert cold.source == "tuned"
    assert cold.measured >= 1
    assert cold.gflops > 0

    warm = autotune(params, cache=cache, top_k=2)
    assert warm.source == "cache"
    assert warm.measured == 0
    assert warm.plan.signature() == cold.plan.signature()

    rng = np.random.default_rng(7)
    x = rng.standard_normal(params.input_shape)
    w = rng.standard_normal(params.filter_shape)
    out, _ = ConvolutionEngine(warm.plan).run(x, w)
    assert np.allclose(out, conv2d_reference(x, w))
