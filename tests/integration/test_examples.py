"""Every example script must run clean (they are a deliverable)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must print their findings"


def test_examples_present():
    """The deliverable: a quickstart plus domain scenarios."""
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3
