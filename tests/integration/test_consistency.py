"""Cross-cutting consistency: the pieces must tell one coherent story."""

import numpy as np
import pytest

from repro.core.conv import ConvolutionEngine
from repro.core.params import ConvParams
from repro.core.planner import plan_convolution
from repro.core.plans import BatchSizeAwarePlan, ImageSizeAwarePlan


@pytest.fixture(scope="module")
def layer():
    return ConvParams.from_output(ni=128, no=128, ro=32, co=32, kr=3, kc=3, b=64)


class TestEngineModelConsistency:
    def test_engine_bytes_equal_stream_totals(self, layer):
        """The timed engine and the model's traffic aggregation must count
        the same bytes — they walk the same schedule."""
        for family in (ImageSizeAwarePlan, BatchSizeAwarePlan):
            plan = family(layer)
            report = ConvolutionEngine(plan).evaluate()
            stream_total = plan.total_dma_bytes()
            assert report.bytes_get + report.bytes_put == stream_total

    def test_effective_bandwidth_within_table_range(self, layer):
        """Achieved DMA bandwidth must sit inside the physical envelope:
        below the best Table II point, above the worst derated one."""
        plan = BatchSizeAwarePlan(layer)
        report = ConvolutionEngine(plan).evaluate()
        bw = report.effective_dma_bandwidth
        assert 0.7 * 2.56e9 <= bw <= 36.01e9

    def test_planner_winner_is_measurably_best(self, layer):
        """The model-chosen plan should not lose badly to the alternative
        when actually timed (the planner's reason to exist)."""
        choice = plan_convolution(layer)
        chosen = ConvolutionEngine(choice.plan).evaluate()
        for family in (ImageSizeAwarePlan, BatchSizeAwarePlan):
            other = family(layer)
            if other.name == choice.kind:
                continue
            other_report = ConvolutionEngine(other).evaluate()
            assert chosen.gflops >= 0.7 * other_report.gflops

    def test_report_identities(self, layer):
        report = ConvolutionEngine(BatchSizeAwarePlan(layer)).evaluate()
        assert report.gflops == pytest.approx(
            report.flops / report.seconds / 1e9
        )
        assert report.efficiency == pytest.approx(
            report.gflops * 1e9 / report.peak_flops
        )
        assert 0.0 <= report.overlap_fraction < 1.0

    def test_seconds_bounded_by_components(self, layer):
        """Total time is at least each busy component and at most their sum."""
        report = ConvolutionEngine(BatchSizeAwarePlan(layer)).evaluate()
        assert report.seconds >= report.dma_seconds - 1e-12
        assert report.seconds >= report.compute_seconds - 1e-12
        assert report.seconds <= report.dma_seconds + report.compute_seconds + 1e-12


class TestScorecardAgreesWithExperiments:
    def test_table3_rows_feed_scorecard(self):
        from repro.experiments import table3
        from repro.experiments.scorecard import run as scorecard_run

        rows = table3.run()
        max_dev = max(
            abs(r.measured_gflops - r.paper_measured) / r.paper_measured
            for r in rows
        )
        checks = {c.claim: c for c in scorecard_run(fast=True)}
        reported = float(checks["Table III measured (max dev %)"].ours)
        assert reported == pytest.approx(max_dev * 100, abs=0.06)
