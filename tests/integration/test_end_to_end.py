"""Cross-module integration: the full pipeline, end to end."""

import numpy as np
import pytest

from repro.core.conv import ConvolutionEngine, evaluate_chip
from repro.core.layers import AvgPool2D, Conv2D, Dense, Flatten, ReLU
from repro.core.network import Sequential, synthetic_image_dataset, train_classifier
from repro.core.params import ConvParams
from repro.core.planner import plan_convolution
from repro.core.reference import conv2d_reference


class TestPlannedConvolutionEndToEnd:
    """plan -> engine -> mesh -> output == reference, with sane timing."""

    @pytest.mark.parametrize("backend", ["numpy", "mesh"])
    def test_planned_execution_matches_reference(self, rng, backend):
        params = ConvParams(ni=8, no=8, ri=9, ci=9, kr=3, kc=3, b=8)
        choice = plan_convolution(params)
        x = rng.standard_normal(params.input_shape)
        w = rng.standard_normal(params.filter_shape)
        out, report = ConvolutionEngine(choice.plan, backend=backend).run(x, w)
        assert np.allclose(out, conv2d_reference(x, w))
        assert report.flops == params.flops()
        assert report.seconds > 0

    def test_model_and_measurement_agree_in_order_of_magnitude(self, paper_params):
        choice = plan_convolution(paper_params)
        measured = ConvolutionEngine(choice.plan).evaluate()
        ratio = choice.estimate.gflops / measured.gflops
        assert 0.4 < ratio < 2.5

    def test_plans_agree_functionally(self, rng, small_params):
        """Both loop-schedule families compute the same convolution."""
        from repro.core.plans import BatchSizeAwarePlan, ImageSizeAwarePlan

        x = rng.standard_normal(small_params.input_shape)
        w = rng.standard_normal(small_params.filter_shape)
        out_img, _ = ConvolutionEngine(ImageSizeAwarePlan(small_params)).run(x, w)
        out_bat, _ = ConvolutionEngine(BatchSizeAwarePlan(small_params)).run(x, w)
        assert np.allclose(out_img, out_bat)


class TestChipLevel:
    def test_strip_results_assemble_to_full_layer(self, rng):
        """Functional equivalent of the Section III-D partitioning: strips
        computed independently equal the full-layer reference."""
        params = ConvParams(ni=8, no=8, ri=10, ci=8, kr=3, kc=3, b=8)
        x = rng.standard_normal(params.input_shape)
        w = rng.standard_normal(params.filter_shape)
        from repro.hw.chip import SW26010Chip

        chip = SW26010Chip()
        strips = chip.partition_rows(params.ro)
        pieces = []
        for start, stop in strips:
            if stop == start:
                continue
            strip_params = params.with_rows(stop - start)
            strip_x = x[:, :, start : stop + params.kr - 1, :]
            choice = plan_convolution(strip_params)
            out, _ = ConvolutionEngine(choice.plan).run(strip_x, w)
            pieces.append(out)
        assembled = np.concatenate(pieces, axis=2)
        assert np.allclose(assembled, conv2d_reference(x, w))

    def test_headline_claim(self):
        """Most Fig. 7-scale layers run above 1.6 Tflops on the 4-CG chip."""
        hits = 0
        for no in (192, 256, 320):
            params = ConvParams.from_output(
                ni=no, no=no, ro=64, co=64, kr=3, kc=3, b=128
            )
            gflops, _ = evaluate_chip(params)
            hits += gflops > 1600
        assert hits >= 2


class TestTrainingEndToEnd:
    def test_cnn_learns_through_simulated_convolution(self):
        rng = np.random.default_rng(17)
        x, labels = synthetic_image_dataset(48, 4, 8, 8, 3, rng=rng)
        net = Sequential(
            [
                Conv2D(ni=4, no=8, kr=3, kc=3, rng=rng, engine="simulated"),
                ReLU(),
                AvgPool2D(2),
                Flatten(),
                Dense(8 * 3 * 3, 3, rng=rng),
            ]
        )
        result = train_classifier(
            net, x, labels, epochs=4, batch_size=16, lr=0.02, momentum=0.9, rng=rng
        )
        assert result.losses[-1] < result.losses[0]
