"""Static schedule verifier."""

import pytest

from repro.isa.kernels import GemmKernelSpec, gemm_kernel_reordered
from repro.isa.program import Program
from repro.isa.verifier import Diagnostic, assert_clean, verify_program


def _kernel_live_in():
    """The reordered kernel's preloaded state: accumulators + counter."""
    return [f"C{i}{j}" for i in range(4) for j in range(4)] + ["cnt"]


class TestCleanPrograms:
    def test_generated_kernel_is_clean_of_hazard_bugs(self):
        prog = gemm_kernel_reordered(GemmKernelSpec(iterations=4))
        diags = verify_program(
            prog, live_in=_kernel_live_in(), warn_raw_distance=False
        )
        assert diags == []

    def test_assert_clean_passes(self):
        prog = Program()
        prog.emit("vload", dst="a", addr=("M", (0,)))
        for _ in range(4):
            prog.emit("nop")
        prog.emit("vstore", srcs=("a",), addr=("O", (0,)))
        assert_clean(prog)


class TestUseBeforeDef:
    def test_flagged(self):
        prog = Program()
        prog.emit("vfmad", dst="c", srcs=("a", "b"))
        diags = verify_program(prog, live_in=["c"])
        kinds = [d.kind for d in diags]
        assert kinds.count("use-before-def") == 2

    def test_live_in_suppresses(self):
        prog = Program()
        prog.emit("vfmad", dst="c", srcs=("a", "b"))
        diags = verify_program(prog, live_in=["a", "b", "c"], warn_raw_distance=False)
        assert diags == []

    def test_missing_live_out(self):
        diags = verify_program(Program(), live_out=["result"])
        assert diags[0].kind == "use-before-def"


class TestRawDistance:
    def test_tight_consumer_flagged(self):
        prog = Program()
        prog.emit("vload", dst="a", addr=("M", (0,)))
        prog.emit("vstore", srcs=("a",), addr=("O", (0,)))  # 1 slot after a 4-cycle load
        diags = verify_program(prog)
        assert any(d.kind == "raw-too-close" for d in diags)

    def test_spaced_consumer_clean(self):
        prog = Program()
        prog.emit("vload", dst="a", addr=("M", (0,)))
        for i in range(4):
            prog.emit("vload", dst=f"pad{i}", addr=("M", (1 + i,)))
        prog.emit("vstore", srcs=("a",), addr=("O", (0,)))
        diags = [d for d in verify_program(prog) if d.kind == "raw-too-close"]
        assert diags == []

    def test_opt_out(self):
        prog = Program()
        prog.emit("vload", dst="a", addr=("M", (0,)))
        prog.emit("vstore", srcs=("a",), addr=("O", (0,)))
        assert verify_program(prog, warn_raw_distance=False) == []


class TestDeadWrite:
    def test_flagged(self):
        prog = Program()
        prog.emit("ldi", dst="x", imm=1.0)
        prog.emit("ldi", dst="x", imm=2.0)  # first write never read
        diags = verify_program(prog)
        assert any(d.kind == "dead-write" for d in diags)

    def test_read_between_writes_clean(self):
        prog = Program()
        prog.emit("ldi", dst="x", imm=1.0)
        prog.emit("addl", dst="y", srcs=("x",), imm=0.0)
        prog.emit("ldi", dst="x", imm=2.0)
        diags = [d for d in verify_program(prog) if d.kind == "dead-write"]
        assert diags == []

    def test_double_buffered_loads_exempt(self):
        # Back-to-back loads into the same register are the software-
        # pipelined rotation pattern, not a bug.
        prog = Program()
        prog.emit("vload", dst="a", addr=("M", (0,)))
        prog.emit("vload", dst="a", addr=("M", (1,)))
        diags = [d for d in verify_program(prog) if d.kind == "dead-write"]
        assert diags == []


class TestBusBalance:
    def test_unbalanced_flagged(self):
        prog = Program()
        prog.emit("putr", srcs=("a",), addr=("BUS", (0,)))
        diags = verify_program(prog, live_in=["a"])
        assert any(d.kind == "bus-unbalanced" for d in diags)

    def test_balanced_clean(self):
        prog = Program()
        prog.emit("putr", srcs=("a",), addr=("BUS", (0,)))
        prog.emit("getr", dst="b", addr=("BUS", (0,)))
        diags = [
            d
            for d in verify_program(prog, live_in=["a"], warn_raw_distance=False)
            if d.kind == "bus-unbalanced"
        ]
        assert diags == []


class TestAssertClean:
    def test_raises_with_listing(self):
        prog = Program()
        prog.emit("vfmad", dst="c", srcs=("a", "b"))
        with pytest.raises(AssertionError, match="use-before-def"):
            assert_clean(prog)
