"""Property-based invariants of the dual-issue pipeline simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.instructions import Instruction, OPCODES, PipelineClass
from repro.isa.pipeline import DualPipelineSimulator
from repro.isa.program import Program


@st.composite
def random_programs(draw):
    regs = [f"r{i}" for i in range(5)]
    n = draw(st.integers(min_value=0, max_value=25))
    prog = Program()
    for idx in range(n):
        kind = draw(st.sampled_from(["load", "fma", "store", "int", "branch"]))
        if kind == "load":
            prog.emit("vload", dst=draw(st.sampled_from(regs)), addr=("M", (idx,)))
        elif kind == "fma":
            prog.emit(
                "vfmad",
                dst=draw(st.sampled_from(regs)),
                srcs=(draw(st.sampled_from(regs)), draw(st.sampled_from(regs))),
            )
        elif kind == "store":
            prog.emit("vstore", srcs=(draw(st.sampled_from(regs)),), addr=("O", (idx,)))
        elif kind == "int":
            prog.emit("addl", dst=draw(st.sampled_from(regs)),
                      srcs=(draw(st.sampled_from(regs)),), imm=1.0)
        else:
            prog.emit("bnw", srcs=(draw(st.sampled_from(regs)),))
    return prog


class TestPipelineInvariants:
    @given(random_programs())
    @settings(max_examples=60, deadline=None)
    def test_every_instruction_issues_exactly_once(self, prog):
        report = DualPipelineSimulator().simulate(prog)
        assert len(report.records) == len(prog)
        assert [r.index for r in report.records] == list(range(len(prog)))

    @given(random_programs())
    @settings(max_examples=60, deadline=None)
    def test_issue_cycles_monotone(self, prog):
        report = DualPipelineSimulator().simulate(prog)
        cycles = [r.cycle for r in report.records]
        assert cycles == sorted(cycles)

    @given(random_programs())
    @settings(max_examples=60, deadline=None)
    def test_structural_lower_bounds(self, prog):
        """Total cycles >= the per-pipeline instruction counts and >= n/2."""
        report = DualPipelineSimulator().simulate(prog)
        p0_only = sum(
            1 for i in prog if i.spec.pipeline is PipelineClass.P0
        )
        p1_only = sum(
            1 for i in prog if i.spec.pipeline is PipelineClass.P1
        )
        assert report.total_cycles >= p0_only
        assert report.total_cycles >= p1_only
        assert report.total_cycles >= -(-len(prog) // 2)

    @given(random_programs())
    @settings(max_examples=60, deadline=None)
    def test_at_most_two_per_cycle_different_pipes(self, prog):
        report = DualPipelineSimulator().simulate(prog)
        by_cycle = {}
        for record in report.records:
            by_cycle.setdefault(record.cycle, []).append(record)
        for records in by_cycle.values():
            assert len(records) <= 2
            if len(records) == 2:
                assert {records[0].pipeline, records[1].pipeline} == {"P0", "P1"}

    @given(random_programs())
    @settings(max_examples=60, deadline=None)
    def test_raw_latency_respected(self, prog):
        report = DualPipelineSimulator().simulate(prog)
        issue = {r.index: r.cycle for r in report.records}
        last_writer = {}
        for idx, instr in enumerate(prog):
            for reg in instr.reads:
                if reg in last_writer:
                    w_idx = last_writer[reg]
                    latency = prog[w_idx].spec.latency
                    assert issue[idx] >= issue[w_idx] + latency
            for reg in instr.writes:
                last_writer[reg] = idx

    @given(random_programs())
    @settings(max_examples=60, deadline=None)
    def test_branches_issue_alone(self, prog):
        report = DualPipelineSimulator().simulate(prog)
        by_cycle = {}
        for record in report.records:
            by_cycle.setdefault(record.cycle, []).append(record)
        for records in by_cycle.values():
            if any(r.instruction.spec.is_branch for r in records):
                assert len(records) == 1
