"""Assembler/disassembler round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.assembler import (
    AssemblyError,
    assemble,
    assemble_line,
    disassemble,
    disassemble_instruction,
)
from repro.isa.instructions import Instruction
from repro.isa.kernels import GemmKernelSpec, gemm_kernel_original, gemm_kernel_reordered
from repro.isa.pipeline import DualPipelineSimulator


class TestAssembleLine:
    def test_load(self):
        instr = assemble_line("vload A0, A[0, 1]")
        assert instr.op == "vload"
        assert instr.dst == "A0"
        assert instr.addr == ("A", (0, 1))

    def test_fma(self):
        instr = assemble_line("vfmad C00, A0, B0")
        assert instr.dst == "C00"
        assert instr.srcs == ("A0", "B0")

    def test_store(self):
        instr = assemble_line("vstore C00, OUT[3]")
        assert instr.srcs == ("C00",)
        assert instr.addr == ("OUT", (3,))

    def test_immediate(self):
        instr = assemble_line("cmp flag, cnt, #8")
        assert instr.imm == 8.0

    def test_branch_sources_only(self):
        instr = assemble_line("bnw flag")
        assert instr.dst is None
        assert instr.srcs == ("flag",)

    def test_comment_only_line(self):
        assert assemble_line("; nothing here") is None

    def test_unknown_opcode(self):
        with pytest.raises(AssemblyError):
            assemble_line("frobnicate x")

    def test_bad_load_operands(self):
        with pytest.raises(AssemblyError):
            assemble_line("vload A0, B0")

    def test_bad_index(self):
        with pytest.raises(AssemblyError):
            assemble_line("vload A0, A[x]")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble_line("vfmad 1C, A0, B0")


class TestAssembleProgram:
    def test_labels_become_tags(self):
        prog = assemble(
            """
            loop0:
                vload A0, A[0, 0]
                vfmad C00, A0, A0
            """
        )
        assert prog[0].tag == "loop0"
        assert prog[1].tag == ""

    def test_line_numbers_in_errors(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble("nop\nnop\nbadop x\n")


class TestRoundTrip:
    def test_generated_kernels_roundtrip(self):
        for builder in (gemm_kernel_original, gemm_kernel_reordered):
            prog = builder(GemmKernelSpec(iterations=3))
            text = disassemble(prog)
            rebuilt = assemble(text, name=prog.name)
            assert len(rebuilt) == len(prog)
            for a, b in zip(prog, rebuilt):
                assert a.op == b.op
                assert a.dst == b.dst
                assert a.srcs == b.srcs
                assert a.addr == b.addr
                assert a.imm == b.imm

    def test_roundtrip_preserves_timing(self):
        prog = gemm_kernel_reordered(GemmKernelSpec(iterations=4))
        rebuilt = assemble(disassemble(prog))
        sim = DualPipelineSimulator()
        assert sim.simulate(rebuilt).total_cycles == sim.simulate(prog).total_cycles

    @given(
        st.lists(
            st.sampled_from(
                [
                    Instruction("vload", dst="r1", addr=("M", (0, 2))),
                    Instruction("vldde", dst="r2", addr=("W", (1,))),
                    Instruction("vfmad", dst="acc", srcs=("r1", "r2")),
                    Instruction("vstore", srcs=("acc",), addr=("O", (0,))),
                    Instruction("cmp", dst="f", srcs=("cnt",), imm=4.0),
                    Instruction("bnw", srcs=("f",)),
                    Instruction("addl", dst="cnt", srcs=("cnt",), imm=1.0),
                    Instruction("nop"),
                    Instruction("putr", srcs=("r1",), addr=("BUS", (3,))),
                    Instruction("getc", dst="r3", addr=("BUS", (1,))),
                ]
            ),
            min_size=0,
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, instructions):
        from repro.isa.program import Program

        prog = Program(instructions)
        rebuilt = assemble(disassemble(prog))
        assert [disassemble_instruction(i) for i in rebuilt] == [
            disassemble_instruction(i) for i in prog
        ]
