"""Binary kernel encoding round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.encoder import EncodingError, decode, encode
from repro.isa.instructions import Instruction
from repro.isa.kernels import GemmKernelSpec, gemm_kernel_original, gemm_kernel_reordered
from repro.isa.pipeline import DualPipelineSimulator
from repro.isa.program import Program


def _equal(a: Program, b: Program) -> bool:
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if (x.op, x.dst, x.srcs, x.addr, x.imm) != (y.op, y.dst, y.srcs, y.addr, y.imm):
            return False
    return True


class TestRoundTrip:
    def test_generated_kernels(self):
        for builder in (gemm_kernel_original, gemm_kernel_reordered):
            prog = builder(GemmKernelSpec(iterations=4))
            assert _equal(prog, decode(encode(prog)))

    def test_timing_preserved(self):
        prog = gemm_kernel_reordered(GemmKernelSpec(iterations=8))
        rebuilt = decode(encode(prog))
        sim = DualPipelineSimulator()
        assert sim.simulate(rebuilt).total_cycles == sim.simulate(prog).total_cycles

    def test_immediates_preserved(self):
        prog = Program()
        prog.emit("ldi", dst="x", imm=3.14159)
        prog.emit("cmp", dst="f", srcs=("x",), imm=-2.5)
        rebuilt = decode(encode(prog))
        assert rebuilt[0].imm == pytest.approx(3.14159)
        assert rebuilt[1].imm == pytest.approx(-2.5)

    def test_empty_program(self):
        assert len(decode(encode(Program()))) == 0

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["vload", "vldde", "vfmad", "vstore", "nop", "addl"]),
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=7),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, items):
        prog = Program()
        for op, reg, idx in items:
            if op == "vload" or op == "vldde":
                prog.emit(op, dst=f"r{reg}", addr=("M", (idx,)))
            elif op == "vstore":
                prog.emit(op, srcs=(f"r{reg}",), addr=("O", (idx,)))
            elif op == "vfmad":
                prog.emit(op, dst=f"c{reg}", srcs=(f"r{reg}", f"r{(reg + 1) % 6}"))
            elif op == "addl":
                prog.emit(op, dst=f"r{reg}", srcs=(f"r{reg}",), imm=float(idx))
            else:
                prog.emit("nop")
        assert _equal(prog, decode(encode(prog)))


class TestValidation:
    def test_bad_magic(self):
        with pytest.raises(EncodingError):
            decode(b"NOPE" + b"\x00" * 16)

    def test_bad_version(self):
        blob = bytearray(encode(Program()))
        blob[4] = 99
        with pytest.raises(EncodingError):
            decode(bytes(blob))

    def test_inconsistent_index_arity(self):
        prog = Program()
        prog.emit("vload", dst="a", addr=("M", (0,)))
        prog.emit("vload", dst="b", addr=("M", (0, 1)))
        with pytest.raises(EncodingError):
            encode(prog)

    def test_index_overflow(self):
        prog = Program()
        prog.emit("vload", dst="a", addr=("M", (70000,)))
        with pytest.raises(EncodingError):
            encode(prog)

    def test_container_is_compact(self):
        prog = gemm_kernel_reordered(GemmKernelSpec(iterations=16))
        blob = encode(prog)
        # 8 bytes/instruction + immediates + small tables.
        assert len(blob) < len(prog) * 16 + 1024
