"""The GEMM inner kernels: the paper's Section VI-B cycle accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.kernels import (
    GemmKernelSpec,
    gemm_kernel_original,
    gemm_kernel_reordered,
    kernel_execution_efficiency,
    paper_execution_efficiency,
    predicted_cycles_original,
    predicted_cycles_reordered,
)
from repro.isa.pipeline import DualPipelineSimulator
from repro.isa.program import Interpreter, MachineState


def _run_functional(program, spec, seed=0):
    """Interpret a kernel and return its accumulator values."""
    rng = np.random.default_rng(seed)
    st_ = MachineState()
    for it in range(spec.iterations):
        for i in range(spec.num_a):
            st_.store("A", (it, i), rng.standard_normal(4))
        for j in range(spec.num_b):
            st_.store("B", (it, j), rng.standard_normal(1))
    for i in range(spec.num_a):
        for j in range(spec.num_b):
            st_.write_reg(f"C{i}{j}", np.zeros(4))
    st_.write_reg("cnt", np.asarray(0.0))
    Interpreter(st_).run(program)
    return {
        f"C{i}{j}": st_.read_reg(f"C{i}{j}")
        for i in range(spec.num_a)
        for j in range(spec.num_b)
    }


class TestPaperCycleCounts:
    """The exact numbers of Section VI-B."""

    def test_original_is_26_cycles_per_iteration(self):
        sim = DualPipelineSimulator()
        for k in (1, 2, 8, 16):
            spec = GemmKernelSpec(iterations=k)
            report = sim.simulate(gemm_kernel_original(spec))
            assert report.total_cycles == 26 * k

    def test_original_ee_is_61_5_percent(self):
        spec = GemmKernelSpec(iterations=16)
        report = DualPipelineSimulator().simulate(gemm_kernel_original(spec))
        assert report.fma_efficiency == pytest.approx(16 / 26, abs=1e-9)

    def test_reordered_is_5_plus_17k_minus_1_plus_16(self):
        sim = DualPipelineSimulator()
        for k in (1, 2, 3, 8, 16, 48):
            spec = GemmKernelSpec(iterations=k)
            report = sim.simulate(gemm_kernel_reordered(spec))
            assert report.total_cycles == 5 + 17 * (k - 1) + 16

    def test_predictors_match_simulation(self):
        sim = DualPipelineSimulator()
        for k in (1, 4, 32):
            spec = GemmKernelSpec(iterations=k)
            assert (
                sim.simulate(gemm_kernel_original(spec)).total_cycles
                == predicted_cycles_original(spec)
            )
            assert (
                sim.simulate(gemm_kernel_reordered(spec)).total_cycles
                == predicted_cycles_reordered(spec)
            )

    def test_measured_ee_equals_paper_formula(self):
        for ni in (32, 64, 128, 256, 384):
            spec = GemmKernelSpec.for_input_channels(ni)
            assert kernel_execution_efficiency(spec) == pytest.approx(
                paper_execution_efficiency(ni), abs=1e-9
            )

    def test_ee_increases_with_ni(self):
        values = [paper_execution_efficiency(ni) for ni in (32, 64, 128, 384)]
        assert values == sorted(values)

    def test_paper_ee_at_128(self):
        # (16*16)/(5+15*17+16) = 256/276
        assert paper_execution_efficiency(128) == pytest.approx(256 / 276)


class TestKernelStructure:
    def test_original_instruction_mix(self):
        spec = GemmKernelSpec(iterations=3)
        prog = gemm_kernel_original(spec)
        assert prog.count_op("vload") == 4 * 3
        assert prog.count_op("vldde") == 4 * 3
        assert prog.count_op("vfmad") == 16 * 3
        assert prog.count_op("cmp") == 3
        assert prog.count_op("bnw") == 3

    def test_reordered_same_fma_count(self):
        spec = GemmKernelSpec(iterations=5)
        assert gemm_kernel_reordered(spec).count_op("vfmad") == 80

    def test_reordered_branch_only_between_iterations(self):
        spec = GemmKernelSpec(iterations=4)
        assert gemm_kernel_reordered(spec).count_op("bnw") == 3

    def test_flop_counts_match(self):
        spec = GemmKernelSpec(iterations=6)
        assert (
            gemm_kernel_original(spec).flop_count()
            == gemm_kernel_reordered(spec).flop_count()
        )

    def test_invalid_iterations_rejected(self):
        with pytest.raises(ValueError):
            GemmKernelSpec(iterations=0)

    def test_ni_must_divide_by_8(self):
        with pytest.raises(ValueError):
            GemmKernelSpec.for_input_channels(100)
        with pytest.raises(ValueError):
            paper_execution_efficiency(100)


class TestSemanticEquivalence:
    """Reordering must not change what the kernel computes."""

    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=999))
    @settings(max_examples=25, deadline=None)
    def test_original_equals_reordered(self, iterations, seed):
        spec = GemmKernelSpec(iterations=iterations)
        acc_orig = _run_functional(gemm_kernel_original(spec), spec, seed)
        acc_reord = _run_functional(gemm_kernel_reordered(spec), spec, seed)
        for name in acc_orig:
            assert np.allclose(acc_orig[name], acc_reord[name])

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_equivalence_for_other_block_shapes(self, iterations, num_a, num_b):
        spec = GemmKernelSpec(iterations=iterations, num_a=num_a, num_b=num_b)
        acc_orig = _run_functional(gemm_kernel_original(spec), spec, 7)
        acc_reord = _run_functional(gemm_kernel_reordered(spec), spec, 7)
        for name in acc_orig:
            assert np.allclose(acc_orig[name], acc_reord[name])

    @given(st.integers(min_value=1, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_reordered_never_slower(self, iterations):
        sim = DualPipelineSimulator()
        spec = GemmKernelSpec(iterations=iterations)
        orig = sim.simulate(gemm_kernel_original(spec)).total_cycles
        reord = sim.simulate(gemm_kernel_reordered(spec)).total_cycles
        assert reord < orig
