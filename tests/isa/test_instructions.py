"""Opcode table and instruction value type."""

import pytest

from repro.isa.instructions import Instruction, OPCODES, PipelineClass


class TestOpcodeTable:
    def test_vfmad_is_p0_with_7_cycle_latency(self):
        spec = OPCODES["vfmad"]
        assert spec.pipeline is PipelineClass.P0
        assert spec.latency == 7
        assert spec.flops == 8

    def test_loads_are_p1_with_4_cycle_latency(self):
        for op in ("vload", "vldde", "ldw", "getr", "getc"):
            assert OPCODES[op].pipeline is PipelineClass.P1
            assert OPCODES[op].latency == 4
            assert OPCODES[op].is_load

    def test_branches_are_p1(self):
        for op in ("bnw", "beq", "jmp"):
            assert OPCODES[op].pipeline is PipelineClass.P1
            assert OPCODES[op].is_branch

    def test_integer_ops_either_pipeline(self):
        for op in ("cmp", "addl", "ldi"):
            assert OPCODES[op].pipeline is PipelineClass.EITHER

    def test_register_comm_ops(self):
        assert OPCODES["putr"].is_comm
        assert OPCODES["getc"].is_comm


class TestInstruction:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            Instruction(op="frobnicate")

    def test_fma_reads_accumulator(self):
        fma = Instruction(op="vfmad", dst="C00", srcs=("A0", "B0"))
        assert set(fma.reads) == {"A0", "B0", "C00"}
        assert fma.writes == ("C00",)

    def test_load_reads_nothing(self):
        load = Instruction(op="vload", dst="A0", addr=("A", (0, 0)))
        assert load.reads == ()
        assert load.writes == ("A0",)

    def test_render(self):
        load = Instruction(op="vload", dst="A0", addr=("A", (0, 1)), tag="iter0")
        text = load.render()
        assert "vload" in text
        assert "A0" in text
        assert "iter0" in text

    def test_frozen(self):
        instr = Instruction(op="nop")
        with pytest.raises(Exception):
            instr.op = "vload"
