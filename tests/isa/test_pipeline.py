"""Dual-issue pipeline simulator: the Section VI-A issue rules."""

import pytest

from repro.isa.pipeline import DualPipelineSimulator
from repro.isa.program import Program


@pytest.fixture
def sim():
    return DualPipelineSimulator()


def _load(prog, dst, idx=0):
    return prog.emit("vload", dst=dst, addr=("A", (idx,)))


class TestStructuralRules:
    def test_two_loads_serialize_on_p1(self, sim):
        prog = Program()
        _load(prog, "a", 0)
        _load(prog, "b", 1)
        report = sim.simulate(prog)
        assert report.total_cycles == 2
        assert report.dual_issue_cycles == 0

    def test_independent_p0_p1_pair_dual_issues(self, sim):
        prog = Program()
        prog.emit("vfmad", dst="c", srcs=("x", "y"))
        _load(prog, "a")
        report = sim.simulate(prog)
        assert report.total_cycles == 1
        assert report.dual_issue_cycles == 1

    def test_two_fmas_serialize_on_p0(self, sim):
        prog = Program()
        prog.emit("vfmad", dst="c", srcs=("x", "y"))
        prog.emit("vfmad", dst="d", srcs=("x", "y"))
        assert sim.simulate(prog).total_cycles == 2

    def test_either_op_prefers_p1_but_takes_p0(self, sim):
        # cmp pairs with a load by moving to P0.
        prog = Program()
        _load(prog, "a")
        prog.emit("cmp", dst="f", srcs=("cnt",), imm=1)
        report = sim.simulate(prog)
        assert report.total_cycles == 1
        pipes = {r.instruction.op: r.pipeline for r in report.records}
        assert pipes["vload"] == "P1"
        assert pipes["cmp"] == "P0"


class TestDataHazards:
    def test_raw_from_load_waits_4_cycles(self, sim):
        prog = Program()
        _load(prog, "a")  # issues at 0, ready at 4
        prog.emit("vfmad", dst="c", srcs=("a", "a"))
        report = sim.simulate(prog)
        assert report.issue_cycle(1) == 4

    def test_fma_chain_waits_7_cycles(self, sim):
        prog = Program()
        prog.emit("vfmad", dst="c", srcs=("x", "y"))
        prog.emit("vfmad", dst="c", srcs=("x", "y"))  # RAW on accumulator c
        report = sim.simulate(prog)
        assert report.issue_cycle(1) == 7

    def test_independent_fmas_fully_pipelined(self, sim):
        prog = Program()
        for i in range(4):
            prog.emit("vfmad", dst=f"c{i}", srcs=("x", "y"))
        report = sim.simulate(prog)
        assert report.total_cycles == 4

    def test_raw_within_pair_blocks_dual_issue(self, sim):
        prog = Program()
        _load(prog, "a")
        prog.emit("vstore", srcs=("a",), addr=("O", (0,)))  # needs a (RAW)
        report = sim.simulate(prog)
        assert report.issue_cycle(1) >= 4

    def test_waw_ordering_enforced(self, sim):
        prog = Program()
        _load(prog, "a", 0)  # completes at 4
        prog.emit("ldi", dst="a", imm=1.0)  # 1-cycle write to same reg
        report = sim.simulate(prog)
        # The second write may not complete before the first.
        first, second = report.records
        assert second.complete >= first.complete

    def test_war_pair_allowed_same_cycle(self, sim):
        prog = Program()
        prog.emit("vfmad", dst="c", srcs=("a", "b"))  # reads a
        _load(prog, "a")  # writes a — WAR, fine in the same cycle
        report = sim.simulate(prog)
        assert report.total_cycles == 1


class TestControlRules:
    def test_branch_issues_alone(self, sim):
        prog = Program()
        prog.emit("bnw", srcs=())
        prog.emit("vfmad", dst="c", srcs=("x", "y"))
        report = sim.simulate(prog)
        assert report.issue_cycle(0) == 0
        assert report.issue_cycle(1) == 1

    def test_nothing_pairs_with_branch_before_it(self, sim):
        prog = Program()
        prog.emit("vfmad", dst="c", srcs=("x", "y"))
        prog.emit("bnw", srcs=())
        report = sim.simulate(prog)
        assert report.issue_cycle(1) == 1

    def test_cmp_latency_2_delays_branch(self, sim):
        prog = Program()
        prog.emit("cmp", dst="flag", srcs=("cnt",), imm=8)
        prog.emit("bnw", srcs=("flag",))
        report = sim.simulate(prog)
        assert report.issue_cycle(1) == 2


class TestReport:
    def test_fma_efficiency(self, sim):
        prog = Program()
        prog.emit("vfmad", dst="c", srcs=("x", "y"))
        _load(prog, "a")
        report = sim.simulate(prog)
        assert report.fma_efficiency == 1.0

    def test_ipc(self, sim):
        prog = Program()
        prog.emit("vfmad", dst="c", srcs=("x", "y"))
        _load(prog, "a")
        assert sim.simulate(prog).ipc == 2.0

    def test_timeline_renders(self, sim):
        prog = Program()
        _load(prog, "a")
        text = sim.simulate(prog).timeline()
        assert "P0" in text and "P1" in text and "vload" in text

    def test_empty_program(self, sim):
        report = sim.simulate(Program())
        assert report.total_cycles == 0
        assert report.fma_efficiency == 0.0
