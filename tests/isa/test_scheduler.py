"""Dependence analysis and the generic reordering passes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import SimulationError
from repro.isa.instructions import Instruction
from repro.isa.pipeline import DualPipelineSimulator
from repro.isa.program import Interpreter, MachineState, Program
from repro.isa.scheduler import (
    analyze_dependences,
    list_schedule,
    software_pipeline_gemm,
)


def _gemm_body():
    """One branch-free iteration body in the original (slow) order."""
    prog = Program(name="body")
    for i in range(4):
        prog.emit("vload", dst=f"A{i}", addr=("A", (0, i)))
    for j in range(4):
        prog.emit("vldde", dst=f"B{j}", addr=("B", (0, j)))
    for i in range(4):
        for j in range(4):
            prog.emit("vfmad", dst=f"C{i}{j}", srcs=(f"A{i}", f"B{j}"))
    return prog


class TestDependenceAnalysis:
    def test_raw_edge_with_latency(self):
        prog = Program()
        prog.emit("vload", dst="a", addr=("A", (0,)))
        prog.emit("vfmad", dst="c", srcs=("a", "a"))
        graph = analyze_dependences(prog)
        raw = [e for e in graph.edges if e.kind == "RAW"]
        assert len(raw) == 1
        assert raw[0].min_gap == 4

    def test_waw_edge(self):
        prog = Program()
        prog.emit("vload", dst="a", addr=("A", (0,)))
        prog.emit("vload", dst="a", addr=("A", (1,)))
        graph = analyze_dependences(prog)
        assert any(e.kind == "WAW" for e in graph.edges)

    def test_war_edge_zero_gap(self):
        prog = Program()
        prog.emit("vfmad", dst="c", srcs=("a", "b"))
        prog.emit("vload", dst="a", addr=("A", (0,)))
        graph = analyze_dependences(prog)
        war = [e for e in graph.edges if e.kind == "WAR"]
        assert war and war[0].min_gap == 0

    def test_fma_chain_is_raw(self):
        prog = Program()
        prog.emit("vfmad", dst="c", srcs=("a", "b"))
        prog.emit("vfmad", dst="c", srcs=("a", "b"))
        graph = analyze_dependences(prog)
        raw = [e for e in graph.edges if e.kind == "RAW" and e.register == "c"]
        assert raw and raw[0].min_gap == 7

    def test_respects_identity_order(self):
        prog = _gemm_body()
        graph = analyze_dependences(prog)
        assert graph.respects(list(range(len(prog))))

    def test_critical_path_positive(self):
        graph = analyze_dependences(_gemm_body())
        assert graph.critical_path_length(0) > 0


class TestListSchedule:
    def test_rejects_branches(self):
        prog = Program()
        prog.emit("bnw", srcs=())
        with pytest.raises(SimulationError):
            list_schedule(prog)

    def test_preserves_instruction_multiset(self):
        prog = _gemm_body()
        scheduled = list_schedule(prog)
        assert sorted(i.render() for i in prog) == sorted(
            i.render() for i in scheduled
        )

    def test_not_slower_than_original(self):
        sim = DualPipelineSimulator()
        prog = _gemm_body()
        assert (
            sim.simulate(list_schedule(prog)).total_cycles
            <= sim.simulate(prog).total_cycles
        )

    def test_respects_dependences(self):
        prog = _gemm_body()
        scheduled = list_schedule(prog)
        graph = analyze_dependences(prog)
        order = [prog.instructions.index(i) for i in scheduled]
        assert graph.respects(order)

    def test_semantics_preserved_on_gemm_body(self):
        prog = _gemm_body()
        scheduled = list_schedule(prog)

        def run(p):
            rng = np.random.default_rng(3)
            state = MachineState()
            for i in range(4):
                state.store("A", (0, i), rng.standard_normal(4))
            for j in range(4):
                state.store("B", (0, j), rng.standard_normal(1))
            for i in range(4):
                for j in range(4):
                    state.write_reg(f"C{i}{j}", np.zeros(4))
            Interpreter(state).run(p)
            return {n: state.read_reg(n) for n in (f"C{i}{j}" for i in range(4) for j in range(4))}

        a, b = run(prog), run(scheduled)
        for name in a:
            assert np.allclose(a[name], b[name])


@st.composite
def random_programs(draw):
    """Random branch-free programs over a small register set."""
    regs = [f"r{i}" for i in range(6)]
    n = draw(st.integers(min_value=1, max_value=20))
    prog = Program()
    for idx in range(n):
        kind = draw(st.sampled_from(["load", "fma", "store"]))
        if kind == "load":
            prog.emit("vload", dst=draw(st.sampled_from(regs)), addr=("M", (idx,)))
        elif kind == "fma":
            prog.emit(
                "vfmad",
                dst=draw(st.sampled_from(regs)),
                srcs=(draw(st.sampled_from(regs)), draw(st.sampled_from(regs))),
            )
        else:
            prog.emit("vstore", srcs=(draw(st.sampled_from(regs)),), addr=("O", (idx,)))
    return prog


class TestListScheduleProperties:
    @given(random_programs())
    @settings(max_examples=40, deadline=None)
    def test_random_programs_schedule_equivalently(self, prog):
        scheduled = list_schedule(prog)

        def run(p):
            state = MachineState()
            rng = np.random.default_rng(11)
            for idx in range(len(p)):
                state.store("M", (idx,), rng.standard_normal(4))
            for i in range(6):
                state.write_reg(f"r{i}", rng.standard_normal(4))
            Interpreter(state).run(p)
            final_regs = {f"r{i}": state.read_reg(f"r{i}") for i in range(6)}
            return final_regs, state.memory.get("O", {})

        regs_a, mem_a = run(prog)
        regs_b, mem_b = run(scheduled)
        for name in regs_a:
            assert np.allclose(regs_a[name], regs_b[name])
        assert set(mem_a) == set(mem_b)
        for key in mem_a:
            assert np.allclose(mem_a[key], mem_b[key])

    @given(random_programs())
    @settings(max_examples=30, deadline=None)
    def test_schedule_respects_dependences(self, prog):
        scheduled = list_schedule(prog)
        graph = analyze_dependences(prog)
        used = [False] * len(prog)
        order = []
        for instr in scheduled:
            for idx, orig in enumerate(prog):
                if not used[idx] and orig is instr:
                    used[idx] = True
                    order.append(idx)
                    break
        assert graph.respects(order)


class TestSoftwarePipeline:
    def test_matches_kernel_generator(self):
        sim = DualPipelineSimulator()
        report = sim.simulate(software_pipeline_gemm(iterations=8))
        assert report.total_cycles == 5 + 17 * 7 + 16
