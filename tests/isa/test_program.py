"""Programs and the sequential functional interpreter."""

import numpy as np
import pytest

from repro.common.errors import SimulationError
from repro.isa.program import Interpreter, MachineState, Program


class TestProgram:
    def test_emit_and_len(self):
        prog = Program()
        prog.emit("vload", dst="A0", addr=("A", (0,)))
        prog.emit("vfmad", dst="C", srcs=("A0", "A0"))
        assert len(prog) == 2

    def test_flop_count(self):
        prog = Program()
        prog.emit("vfmad", dst="C", srcs=("A", "B"))
        prog.emit("vload", dst="A", addr=("A", (0,)))
        assert prog.flop_count() == 8

    def test_count_op(self):
        prog = Program()
        for _ in range(3):
            prog.emit("nop")
        assert prog.count_op("nop") == 3

    def test_registers_in_first_use_order(self):
        prog = Program()
        prog.emit("vfmad", dst="C", srcs=("A", "B"))
        regs = prog.registers()
        assert regs == ["A", "B", "C"]

    def test_render_includes_name(self):
        prog = Program(name="kernel")
        prog.emit("nop")
        assert "kernel" in prog.render()


class TestInterpreter:
    def test_vload(self):
        st = MachineState()
        st.store("A", (0,), np.arange(4.0))
        prog = Program()
        prog.emit("vload", dst="r", addr=("A", (0,)))
        Interpreter(st).run(prog)
        assert np.array_equal(st.read_reg("r"), np.arange(4.0))

    def test_vldde_splats(self):
        st = MachineState()
        st.store("B", (0,), np.array([3.0]))
        prog = Program()
        prog.emit("vldde", dst="r", addr=("B", (0,)))
        Interpreter(st).run(prog)
        assert np.array_equal(st.read_reg("r"), np.full(4, 3.0))

    def test_vfmad_accumulates(self):
        st = MachineState()
        st.write_reg("a", np.full(4, 2.0))
        st.write_reg("b", np.full(4, 3.0))
        st.write_reg("c", np.ones(4))
        prog = Program()
        prog.emit("vfmad", dst="c", srcs=("a", "b"))
        Interpreter(st).run(prog)
        assert np.array_equal(st.read_reg("c"), np.full(4, 7.0))

    def test_vstore(self):
        st = MachineState()
        st.write_reg("r", np.arange(4.0))
        prog = Program()
        prog.emit("vstore", srcs=("r",), addr=("OUT", (1,)))
        Interpreter(st).run(prog)
        assert np.array_equal(st.load("OUT", (1,)), np.arange(4.0))

    def test_branch_is_noop(self):
        st = MachineState()
        st.write_reg("flag", np.asarray(1.0))
        prog = Program()
        prog.emit("bnw", srcs=("flag",))
        Interpreter(st).run(prog)  # must not raise

    def test_undefined_register_read_raises(self):
        prog = Program()
        prog.emit("vfmad", dst="c", srcs=("a", "b"))
        with pytest.raises(SimulationError):
            Interpreter().run(prog)

    def test_undefined_memory_load_raises(self):
        prog = Program()
        prog.emit("vload", dst="r", addr=("A", (9,)))
        with pytest.raises(SimulationError):
            Interpreter().run(prog)

    def test_load_without_address_raises(self):
        prog = Program()
        prog.emit("vload", dst="r")
        with pytest.raises(SimulationError):
            Interpreter().run(prog)

    def test_ldi_and_addl(self):
        st = MachineState()
        prog = Program()
        prog.emit("ldi", dst="x", imm=5.0)
        prog.emit("addl", dst="x", srcs=("x",), imm=3.0)
        Interpreter(st).run(prog)
        assert float(st.read_reg("x")) == 8.0
