"""Register-level kernel execution on a real CPE."""

import numpy as np
import pytest

from repro.common.errors import LDMOverflowError, RegisterPressureError
from repro.isa.executor import KernelExecutor
from repro.isa.kernels import GemmKernelSpec, gemm_kernel_reordered
from repro.isa.program import Interpreter, MachineState, Program


def _stage_kernel_inputs(executor, spec, rng):
    for it in range(spec.iterations):
        for i in range(spec.num_a):
            executor.stage("A", (it, i), rng.standard_normal(4))
        for j in range(spec.num_b):
            executor.stage("B", (it, j), rng.standard_normal(1))


class TestBasicExecution:
    def test_load_fma_store(self, rng):
        ex = KernelExecutor()
        ex.stage("M", (0,), [1.0, 2.0, 3.0, 4.0])
        ex.stage("W", (0,), [2.0])
        prog = Program()
        prog.emit("vload", dst="a", addr=("M", (0,)))
        prog.emit("vldde", dst="w", addr=("W", (0,)))
        prog.emit("ldi", dst="acc", imm=0.0)
        prog.emit("vfmad", dst="acc", srcs=("a", "w"))
        prog.emit("vstore", srcs=("acc",), addr=("OUT", (0,)))
        ex.run(prog)
        assert np.array_equal(ex.read_back("OUT", (0,)), [2.0, 4.0, 6.0, 8.0])

    def test_flop_accounting(self):
        ex = KernelExecutor()
        ex.stage("M", (0,), np.ones(4))
        prog = Program()
        prog.emit("vload", dst="a", addr=("M", (0,)))
        prog.emit("ldi", dst="c", imm=0.0)
        prog.emit("vfmad", dst="c", srcs=("a", "a"))
        ex.run(prog)
        assert ex.flops_executed == 8  # 4 lanes x 2


class TestResourceEnforcement:
    def test_register_pressure_enforced(self):
        ex = KernelExecutor()
        prog = Program()
        for i in range(33):
            prog.emit("ldi", dst=f"r{i}", imm=float(i))
        with pytest.raises(RegisterPressureError):
            ex.run(prog)

    def test_paper_kernel_fits_register_file(self, rng):
        """The 16+4+4 register plan of Section V must execute within 32."""
        spec = GemmKernelSpec(iterations=2)
        ex = KernelExecutor()
        _stage_kernel_inputs(ex, spec, rng)
        prog = Program()
        for i in range(4):
            for j in range(4):
                prog.emit("ldi", dst=f"C{i}{j}", imm=0.0)
        prog.emit("ldi", dst="cnt", imm=0.0)
        prog.extend(gemm_kernel_reordered(spec))
        ex.run(prog)
        assert ex.registers_used <= 32

    def test_ldm_capacity_enforced(self):
        ex = KernelExecutor()
        with pytest.raises(LDMOverflowError):
            for i in range(3000):  # 3000 x 32B > 64 KiB
                ex.stage("M", (i,), np.ones(4))


class TestAgreementWithInterpreter:
    def test_kernel_matches_interpreter(self, rng):
        spec = GemmKernelSpec(iterations=3)
        kernel = gemm_kernel_reordered(spec)

        # Interpreter run.
        state = MachineState()
        values = {}
        gen = np.random.default_rng(5)
        for it in range(spec.iterations):
            for i in range(4):
                values[("A", (it, i))] = gen.standard_normal(4)
                state.store("A", (it, i), values[("A", (it, i))])
            for j in range(4):
                values[("B", (it, j))] = gen.standard_normal(1)
                state.store("B", (it, j), values[("B", (it, j))])
        for i in range(4):
            for j in range(4):
                state.write_reg(f"C{i}{j}", np.zeros(4))
        state.write_reg("cnt", np.asarray(0.0))
        Interpreter(state).run(kernel)

        # Executor run on the CPE.
        ex = KernelExecutor()
        for (array, index), value in values.items():
            ex.stage(array, index, value)
        prologue = Program()
        for i in range(4):
            for j in range(4):
                prologue.emit("ldi", dst=f"C{i}{j}", imm=0.0)
        prologue.emit("ldi", dst="cnt", imm=0.0)
        ex.run(prologue)
        ex.run(kernel)

        for i in range(4):
            for j in range(4):
                name = f"C{i}{j}"
                assert np.allclose(
                    ex.cpe.registers.read(name), state.read_reg(name)
                ), name
