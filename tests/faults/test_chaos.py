"""Seeded chaos sweeps and checkpoint/resume determinism."""

import json
import os

import pytest

from repro.core.sweeps import (
    SweepGrid,
    render_sweep,
    run_sweep,
    sweep_to_csv,
)
from repro.experiments.runner import run_all
from repro.faults import ChaosReport, FaultSpec, run_chaos_sweep

pytestmark = pytest.mark.faults

#: The acceptance scenario: degraded DMA, hung transfers, two fenced CPEs,
#: occasional bus/ECC noise — everything the guarded paths must survive.
CHAOS_SPEC = FaultSpec(
    seed=0x5157,
    dma_bandwidth_factor=0.5,
    dma_timeout_rate=0.2,
    fenced_cpes=((1, 2), (6, 6)),
    bus_stall_rate=0.001,
    ecc_corrected_rate=0.01,
)


class TestChaosSweep:
    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory) -> ChaosReport:
        marker_dir = str(tmp_path_factory.mktemp("crash-markers"))
        return run_chaos_sweep(
            CHAOS_SPEC,
            jobs=2,
            retries=1,
            crash_indices=(1,),
            crash_marker_dir=marker_dir,
        )

    def test_all_configs_survive_with_correct_numerics(self, report):
        assert report.all_ok
        assert report.surviving == len(report.rows)
        for row in report.rows:
            assert row.numerics_ok
            assert row.max_abs_err < 1e-8

    def test_ledger_lists_every_injected_condition(self, report):
        counts = report.ledger.counts()
        # Standing degradations recorded once per configuration's machine.
        assert counts["dma/degraded-bandwidth"] == len(report.rows)
        assert counts["cpe/fenced"] == 2 * len(report.rows)
        # The two fenced CPEs forced a submesh replan on every config.
        assert counts["engine/replan"] == len(report.rows)
        # The injected worker crash was recovered and recorded.
        assert counts["pool/worker-crash"] == 1

    def test_crash_recovered_by_retry(self, report):
        # The crashed config's row is indistinguishable from the others.
        crashed = report.rows[1]
        assert crashed.ok
        assert crashed.backend_used

    def test_bit_identical_across_same_seed_runs(self, report, tmp_path):
        rerun = run_chaos_sweep(
            CHAOS_SPEC,
            jobs=2,
            retries=1,
            crash_indices=(1,),
            crash_marker_dir=str(tmp_path),
        )
        assert rerun.render() == report.render()

    def test_serial_matches_parallel(self):
        serial = run_chaos_sweep(CHAOS_SPEC, jobs=1)
        parallel = run_chaos_sweep(CHAOS_SPEC, jobs=2)
        assert serial.render() == parallel.render()

    def test_crash_indices_require_marker_dir(self):
        with pytest.raises(ValueError):
            run_chaos_sweep(CHAOS_SPEC, crash_indices=(0,))


class TestSweepResume:
    GRID = SweepGrid(ni=(32, 64), no=(32,), out=(8,), k=(3,), b=(16,))

    def test_checkpointed_matches_plain(self, tmp_path):
        plain = run_sweep(self.GRID, chip=False)
        ckpt = run_sweep(
            self.GRID, chip=False, checkpoint=str(tmp_path / "sweep.jsonl")
        )
        assert sweep_to_csv(ckpt) == sweep_to_csv(plain)
        assert render_sweep(ckpt) == render_sweep(plain)

    def test_kill_and_resume_byte_identical(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        full_rows = run_sweep(self.GRID, chip=False, checkpoint=path)
        full_csv = sweep_to_csv(full_rows)
        # Simulate a mid-run kill: keep only the first completed row.
        with open(path) as fh:
            lines = fh.readlines()
        assert len(lines) == len(full_rows)
        with open(path, "w") as fh:
            fh.write(lines[0])
        resumed = run_sweep(self.GRID, chip=False, checkpoint=path)
        assert sweep_to_csv(resumed) == full_csv
        # The resumed run recomputed only the missing row.
        with open(path) as fh:
            records = [json.loads(line) for line in fh]
        assert sorted(r["index"] for r in records) == list(range(len(full_rows)))

    def test_resume_skips_completed_rows(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        run_sweep(self.GRID, chip=False, checkpoint=path)
        before = os.path.getmtime(path)
        size = os.path.getsize(path)
        run_sweep(self.GRID, chip=False, checkpoint=path)
        # Nothing to recompute: the checkpoint file is untouched.
        assert os.path.getsize(path) == size
        assert os.path.getmtime(path) == before


class TestRunAllResume:
    def test_sections_cached_byte_identical(self, tmp_path):
        first = run_all(["table2"], checkpoint_dir=str(tmp_path))
        assert os.path.exists(tmp_path / "table2.section.txt")
        # The resumed run reads the section from disk — same bytes out.
        assert run_all(["table2"], checkpoint_dir=str(tmp_path)) == first
        assert first == run_all(["table2"])
