"""The seeded fault injector (`repro.faults.plan`) and its hardware hooks."""

import numpy as np
import pytest

from repro.common.errors import (
    BusStallError,
    CPEFaultError,
    DMATimeoutError,
    ECCError,
    HardwareFaultError,
    ReproError,
)
from repro.faults import FaultEvent, FaultLedger, FaultPlan, FaultSpec
from repro.hw.chip import CoreGroup
from repro.hw.ldm import LDM
from repro.hw.mesh import CPEMesh
from repro.hw.spec import DEFAULT_SPEC

pytestmark = pytest.mark.faults


class TestFaultSpec:
    def test_default_is_healthy(self):
        assert FaultSpec().healthy

    def test_any_rate_breaks_healthy(self):
        assert not FaultSpec(dma_bandwidth_factor=0.5).healthy
        assert not FaultSpec(fenced_cpes=((0, 0),)).healthy
        assert not FaultSpec(ecc_corrected_rate=0.1).healthy

    @pytest.mark.parametrize("factor", [0.0, -0.5, 1.5])
    def test_bandwidth_factor_validated(self, factor):
        with pytest.raises(ValueError):
            FaultSpec(dma_bandwidth_factor=factor)

    @pytest.mark.parametrize("rate", [-0.1, 1.1])
    def test_rates_validated(self, rate):
        with pytest.raises(ValueError):
            FaultSpec(dma_timeout_rate=rate)
        with pytest.raises(ValueError):
            FaultSpec(bus_stall_rate=rate)

    def test_negative_random_fenced_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(num_random_fenced=-1)

    def test_derive_is_deterministic(self):
        spec = FaultSpec(seed=7, dma_timeout_rate=0.3)
        assert spec.derive(4).seed == spec.derive(4).seed
        assert spec.derive(4).seed != spec.derive(5).seed
        # Rates carry over; only the seed changes.
        assert spec.derive(4).dma_timeout_rate == 0.3


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error", [DMATimeoutError, CPEFaultError, BusStallError, ECCError]
    )
    def test_fault_errors_catchable_as_repro_error(self, error):
        assert issubclass(error, HardwareFaultError)
        assert issubclass(error, ReproError)
        with pytest.raises(ReproError):
            raise error("injected")


class TestFaultLedger:
    def test_sequence_numbers(self):
        ledger = FaultLedger()
        ledger.record("dma", "timeout", "first")
        ledger.record("bus", "stall", "second")
        assert [e.seq for e in ledger.events] == [0, 1]
        assert len(ledger) == 2

    def test_counts(self):
        ledger = FaultLedger()
        ledger.record("dma", "timeout", "a")
        ledger.record("dma", "timeout", "b")
        ledger.record("cpe", "fenced", "c")
        assert ledger.counts() == {"dma/timeout": 2, "cpe/fenced": 1}

    def test_extend_renumbers(self):
        ledger = FaultLedger()
        ledger.record("dma", "timeout", "local")
        foreign = [FaultEvent(seq=17, subsystem="bus", kind="stall", detail="remote")]
        ledger.extend(foreign)
        assert [e.seq for e in ledger.events] == [0, 1]
        assert ledger.events[1].detail == "remote"

    def test_render_and_jsonable(self):
        ledger = FaultLedger()
        assert "no events" in ledger.render()
        ledger.record("ldm", "ecc-corrected", "bit flip")
        assert "ldm/ecc-corrected" in ledger.render()
        assert ledger.to_jsonable() == [
            {"seq": 0, "subsystem": "ldm", "kind": "ecc-corrected", "detail": "bit flip"}
        ]


class TestFaultPlanStreams:
    def test_same_seed_same_fault_sequence(self):
        spec = FaultSpec(seed=123, dma_timeout_rate=0.5)

        def observe():
            plan = FaultPlan(spec)
            fired = []
            for i in range(30):
                try:
                    plan.maybe_dma_timeout(64, "get", f"t{i}")
                    fired.append(False)
                except DMATimeoutError:
                    fired.append(True)
            return fired, plan.ledger.render()

        assert observe() == observe()

    def test_healthy_plan_injects_nothing(self):
        plan = FaultPlan(FaultSpec())
        for _ in range(50):
            plan.maybe_dma_timeout(1024, "get")
            plan.maybe_bus_fault((0, 0), "CPE(0, 1)", 32)
            plan.maybe_ecc("buf", 64)
        assert len(plan.ledger) == 0

    def test_degraded_bandwidth_recorded_once(self):
        plan = FaultPlan(FaultSpec(dma_bandwidth_factor=0.25))
        assert plan.ledger.counts() == {"dma/degraded-bandwidth": 1}
        assert plan.dma_bandwidth_factor == 0.25

    def test_fenced_memoized_and_filtered(self):
        spec = FaultSpec(fenced_cpes=((1, 1), (63, 63)), num_random_fenced=2)
        plan = FaultPlan(spec)
        fenced = plan.fenced(8)
        # (63, 63) belongs to a larger machine and is filtered out.
        assert (1, 1) in fenced and (63, 63) not in fenced
        assert len(fenced) == 3  # explicit (1,1) + 2 random
        # Memoized: asking again neither redraws nor re-ledgers.
        assert plan.fenced(8) is fenced
        assert plan.ledger.counts() == {"cpe/fenced": 3}

    def test_check_cpe(self):
        plan = FaultPlan(FaultSpec(fenced_cpes=((2, 3),)))
        plan.check_cpe((0, 0), 8, "compute")
        with pytest.raises(CPEFaultError):
            plan.check_cpe((2, 3), 8, "compute")

    def test_bus_stall_and_drop_distinguished(self):
        stall = FaultPlan(FaultSpec(bus_stall_rate=1.0))
        with pytest.raises(BusStallError):
            stall.maybe_bus_fault((0, 0), "CPE(0, 1)", 32)
        assert stall.ledger.counts() == {"bus/stall": 1}
        drop = FaultPlan(FaultSpec(bus_drop_rate=1.0))
        with pytest.raises(BusStallError):
            drop.maybe_bus_fault((0, 0), "CPE(0, 1)", 32)
        assert drop.ledger.counts() == {"bus/drop": 1}

    def test_ecc_corrected_logs_uncorrectable_raises(self):
        corrected = FaultPlan(FaultSpec(ecc_corrected_rate=1.0))
        corrected.maybe_ecc("acc", 256)
        assert corrected.ledger.counts() == {"ldm/ecc-corrected": 1}
        fatal = FaultPlan(FaultSpec(ecc_uncorrectable_rate=1.0))
        with pytest.raises(ECCError):
            fatal.maybe_ecc("acc", 256)


class TestHardwareHooks:
    def test_dma_derating_scales_duration(self):
        healthy = CoreGroup(0, DEFAULT_SPEC)
        degraded = CoreGroup(
            0, DEFAULT_SPEC, fault_plan=FaultPlan(FaultSpec(dma_bandwidth_factor=0.5))
        )
        x = np.ones((4, 1024))
        for cg in (healthy, degraded):
            cg.memory.register("x", x)
            buf = cg.mesh.cpes[0][0].ldm.alloc("tile", (1024,))
            cg.dma.dma_get("x", 0, buf)
        assert degraded.dma.log[0].duration == pytest.approx(
            2.0 * healthy.dma.log[0].duration
        )

    def test_dma_timeout_raises_and_ledgers(self):
        plan = FaultPlan(FaultSpec(dma_timeout_rate=1.0))
        cg = CoreGroup(0, DEFAULT_SPEC, fault_plan=plan)
        cg.memory.register("x", np.ones((8,)))
        buf = cg.mesh.cpes[0][0].ldm.alloc("tile", (8,))
        with pytest.raises(DMATimeoutError):
            cg.dma.dma_get("x", slice(None), buf)
        assert plan.ledger.counts() == {"dma/timeout": 1}

    def test_fenced_cpe_unusable_in_mesh(self):
        plan = FaultPlan(FaultSpec(fenced_cpes=((1, 2),)))
        mesh = CPEMesh(DEFAULT_SPEC, fault_plan=plan)
        assert mesh.cpes[1][2].fenced
        with pytest.raises(CPEFaultError):
            mesh.cpe(1, 2)
        with pytest.raises(CPEFaultError):
            mesh.put((1, 0), (1, 2), np.zeros(4))
        assert CoreGroup(0, DEFAULT_SPEC, fault_plan=plan).healthy_cpes() == 63

    def test_bus_fault_on_put(self):
        plan = FaultPlan(FaultSpec(bus_stall_rate=1.0))
        mesh = CPEMesh(DEFAULT_SPEC, fault_plan=plan)
        with pytest.raises(BusStallError):
            mesh.put((0, 0), (0, 1), np.zeros(4))

    def test_ldm_ecc_on_read(self):
        plan = FaultPlan(FaultSpec(ecc_uncorrectable_rate=1.0))
        ldm = LDM(DEFAULT_SPEC, fault_plan=plan)
        buf = ldm.alloc("tile", (16,))
        with pytest.raises(ECCError):
            buf.read(slice(None))


class TestLedgerThreadSafety:
    def test_concurrent_records_get_unique_dense_seqs(self):
        # Regression: FaultLedger.record assigned seq from len(events)
        # without a lock, so concurrent serve workers could duplicate
        # sequence numbers or lose events.
        import threading

        ledger = FaultLedger()
        n_threads, n_records = 8, 500

        def hammer(tid):
            for i in range(n_records):
                ledger.record("test", "concurrent", f"{tid}:{i}")

        threads = [
            threading.Thread(target=hammer, args=(tid,))
            for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * n_records
        assert len(ledger) == total
        seqs = [event.seq for event in ledger.events]
        assert sorted(seqs) == list(range(total))
        assert ledger.counts() == {"test/concurrent": total}
