"""Regression: degraded engines never share timing-memo entries with healthy.

The process-wide ``_TIMING_CACHE`` memoizes timed schedule walks on
``ConvolutionEngine._timing_key()``.  Before the key carried the fault
plan's standing degradations, a healthy chip's timing could be replayed for
a derated or fenced one (and vice versa) whenever both ran in one process —
exactly the sweep-runner scenario.  These tests pin the fix: the DMA
bandwidth derate and the post-fencing effective mesh size are part of the
key, and the memoized timings differ accordingly.
"""

from repro.core.conv import ConvolutionEngine
from repro.core.planner import plan_convolution
from repro.faults import FaultPlan, FaultSpec


def _engine(params, fault_plan=None):
    return ConvolutionEngine(plan_convolution(params).plan, fault_plan=fault_plan)


class TestTimingKeyDegradations:
    def test_derated_dma_changes_key_and_time(self, small_params):
        healthy = _engine(small_params)
        derated = _engine(
            small_params, FaultPlan(FaultSpec(dma_bandwidth_factor=0.5))
        )
        assert healthy._timing_key() != derated._timing_key()
        # Order matters for the regression: the healthy walk populates the
        # memo first; the derated engine must not replay it.
        t_healthy = healthy.evaluate()
        t_derated = derated.evaluate()
        assert t_derated.seconds > t_healthy.seconds

    def test_fenced_mesh_changes_key_and_time(self, small_params):
        healthy = _engine(small_params)
        fenced = _engine(small_params, FaultPlan(FaultSpec(fenced_cpes=((0, 0),))))
        assert fenced.mesh_size < healthy.mesh_size
        assert healthy._timing_key() != fenced._timing_key()
        t_healthy = healthy.evaluate()
        t_fenced = fenced.evaluate()
        # Fewer surviving CPEs carry the same flops: compute takes longer.
        assert t_fenced.seconds > t_healthy.seconds

    def test_healthy_fault_plan_shares_the_key(self, small_params):
        """An attached-but-healthy plan must not split the memo needlessly."""
        healthy = _engine(small_params)
        attached = _engine(small_params, FaultPlan(FaultSpec()))
        assert healthy._timing_key() == attached._timing_key()

    def test_fused_pool_in_key(self, small_params):
        plain = _engine(small_params)
        fused = ConvolutionEngine(
            plan_convolution(small_params).plan, fused_pool=2
        )
        assert plain._timing_key() != fused._timing_key()
        assert fused.evaluate().bytes_put < plain.evaluate().bytes_put
