"""Fig. 2 model design points and Fig. 6 pipeline reordering."""

import pytest

from repro.experiments import fig2_model, fig6_pipeline


class TestFig2:
    def test_paper_pins(self):
        r = fig2_model.run()
        assert r.peak_gflops_cg == pytest.approx(742.4)
        assert r.rbw_direct_gbps == pytest.approx(139.20)
        assert r.gload_gbps == pytest.approx(8.0)
        assert r.direct_fraction == pytest.approx(0.0033, abs=2e-4)
        assert r.ldm_reg_bandwidth_gbps == pytest.approx(46.4)
        assert r.eq5_rbw_gbps == pytest.approx(23.2)

    def test_hierarchy_orders_of_magnitude_better(self):
        r = fig2_model.run()
        assert r.hierarchical_gflops > 100 * r.direct_gflops

    def test_render(self):
        text = fig2_model.render()
        assert "742.4" in text
        assert "0.32%" in text  # paper reference value is quoted


class TestFig6:
    def test_rows(self):
        rows = fig6_pipeline.run([64, 128])
        assert len(rows) == 2

    def test_original_always_26_per_iteration(self):
        for row in fig6_pipeline.run([64, 256]):
            assert row.original_cycles_per_iter == pytest.approx(26.0)
            assert row.original_ee == pytest.approx(16 / 26)

    def test_reordered_matches_paper_formula(self):
        for row in fig6_pipeline.run([32, 128, 384]):
            assert row.reordered_ee == pytest.approx(row.paper_ee, abs=1e-9)
            k = row.iterations
            assert row.reordered_cycles == 5 + 17 * (k - 1) + 16

    def test_speedup_approaches_26_over_17(self):
        row = fig6_pipeline.run([384])[0]
        assert row.speedup == pytest.approx(26 / 17, rel=0.02)

    def test_render(self):
        text = fig6_pipeline.render(fig6_pipeline.run([64]))
        assert "61.5%" in text or "0.615" in text
