"""Fig. 8: the reconstructed test scripts."""

from repro.experiments import fig8


class TestFig8:
    def test_three_scripts(self):
        scripts = fig8.run()
        assert len(scripts) == 3

    def test_counts_match_paper(self):
        for script in fig8.run():
            assert script.configs == script.paper_configs

    def test_render_marks_ok(self):
        text = fig8.render()
        assert text.count("[OK]") == 3
        assert "MISMATCH" not in text
        assert "conv_test" in text

    def test_scripts_cover_fig7_and_fig9(self):
        names = " ".join(s.name for s in fig8.run())
        assert "Fig. 7" in names
        assert "Fig. 9" in names
