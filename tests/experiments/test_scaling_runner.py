"""Multi-CG scaling experiment and the consolidated runner."""

import pytest

from repro.core.params import ConvParams
from repro.experiments import scaling
from repro.experiments.runner import ALL_EXPERIMENTS, run_all


class TestScaling:
    def test_four_rows(self):
        rows = scaling.run()
        assert [r.core_groups for r in rows] == [1, 2, 3, 4]

    def test_near_linear(self):
        """Paper: 'near linear scaling among the four CGs'."""
        rows = scaling.run()
        for row in rows:
            assert row.parallel_efficiency > 0.9

    def test_monotone_throughput(self):
        rows = scaling.run()
        tflops = [r.tflops for r in rows]
        assert tflops == sorted(tflops)

    def test_custom_params(self):
        params = ConvParams.from_output(ni=64, no=64, ro=32, co=32, kr=3, kc=3, b=64)
        rows = scaling.run(params)
        assert rows[0].speedup == pytest.approx(1.0)

    def test_render(self):
        assert "near linear" in scaling.render(scaling.run())


class TestRunner:
    def test_experiment_registry_complete(self):
        names = [n for n, _ in ALL_EXPERIMENTS]
        assert names == [
            "table2",
            "fig2",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "table3",
            "scaling",
            "scorecard",
        ]

    def test_selected_subset(self):
        report = run_all(["table2", "fig2"])
        assert "Table II" in report
        assert "Fig. 2" in report
        assert "Fig. 7" not in report

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            run_all(["fig13"])
