"""Artifact saving: text + JSON records per experiment."""

import json
import os

import pytest

from repro.experiments.artifacts import save_experiments, to_jsonable


class TestToJsonable:
    def test_dataclass_with_properties(self):
        from repro.experiments.fig6_pipeline import run

        rows = run([64])
        record = to_jsonable(rows)[0]
        assert record["ni"] == 64
        assert record["original_cycles"] == 208

    def test_nested_structures(self):
        assert to_jsonable({"a": [1, 2.5, None, "x"]}) == {"a": [1, 2.5, None, "x"]}

    def test_numpy_scalar(self):
        import numpy as np

        assert to_jsonable(np.float64(1.5)) == 1.5


class TestSaveExperiments:
    def test_writes_text_and_json(self, tmp_path):
        written = save_experiments(str(tmp_path), ["fig2"])
        assert sorted(os.path.basename(p) for p in written) == [
            "fig2.json",
            "fig2.txt",
        ]
        text = (tmp_path / "fig2.txt").read_text()
        assert "742.4" in text
        payload = json.loads((tmp_path / "fig2.json").read_text())
        assert payload["experiment"] == "fig2"
        assert payload["result"]["peak_gflops_cg"] == pytest.approx(742.4)
        assert "repro_version" in payload

    def test_table_experiment_rows(self, tmp_path):
        save_experiments(str(tmp_path), ["table2"])
        payload = json.loads((tmp_path / "table2.json").read_text())
        rows = payload["result"]
        assert len(rows) == 12
        assert rows[0]["size_bytes"] == 32
        assert rows[0]["get_gbps"] == pytest.approx(4.31, abs=0.01)

    def test_unknown_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_experiments(str(tmp_path), ["fig99"])

    def test_cli_save(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["--save", str(tmp_path), "fig6"]) == 0
        out = capsys.readouterr().out
        assert "fig6.json" in out
        assert (tmp_path / "fig6.txt").exists()
