"""Fig. 7 and Fig. 9 sweeps (reduced configuration sets for test speed;
the benchmarks run the full 101/30)."""

import pytest

from repro.experiments import fig7, fig9
from repro.experiments.configs import fig8_left, fig8_right


@pytest.fixture(scope="module")
def fig7_sample():
    return fig7.run(configs=fig8_left()[::4])


@pytest.fixture(scope="module")
def fig9_sample():
    return fig9.run(configs=fig8_right()[::4])


class TestFig7:
    def test_rows_have_both_series(self, fig7_sample):
        for row in fig7_sample.rows:
            assert row.swdnn_tflops > 0
            assert row.k40m_tflops > 0

    def test_swdnn_always_wins(self, fig7_sample):
        assert fig7_sample.min_speedup > 1.0

    def test_speedup_band_near_paper(self, fig7_sample):
        """Paper: 1.91x-9.75x.  Accept a modestly wider envelope."""
        assert 1.5 < fig7_sample.min_speedup
        assert fig7_sample.max_speedup < 15.0

    def test_most_configs_above_1_6_tflops(self, fig7_sample):
        assert fig7_sample.fraction_above_1p6 >= 0.5

    def test_swdnn_more_stable_than_cudnn(self, fig7_sample):
        assert fig7_sample.variation("swdnn") < fig7_sample.variation("k40m")

    def test_render(self, fig7_sample):
        text = fig7.render(fig7_sample)
        assert "speedup range" in text
        assert "1.91" in text  # the paper band is quoted for comparison


class TestFig9:
    def test_swdnn_holds_up_at_large_filters(self, fig9_sample):
        by_filter = {}
        for row in fig9_sample.rows:
            by_filter.setdefault(row.filter_size, []).append(row.swdnn_tflops)
        small = sum(by_filter[min(by_filter)]) / len(by_filter[min(by_filter)])
        large = sum(by_filter[max(by_filter)]) / len(by_filter[max(by_filter)])
        assert large > 0.7 * small

    def test_speedup_grows_with_filter_size(self, fig9_sample):
        by_filter = fig9_sample.speedup_by_filter()
        sizes = sorted(by_filter)
        assert by_filter[sizes[-1]] > by_filter[sizes[0]]

    def test_render(self, fig9_sample):
        assert "filter size" in fig9.render(fig9_sample)
