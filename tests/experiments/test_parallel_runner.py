"""Parallel experiment fan-out: determinism and runner name validation."""

import pytest

from repro.core.sweeps import SweepGrid, run_sweep
from repro.experiments import fig7, fig9, table3
from repro.experiments.runner import ALL_EXPERIMENTS, run_all, select_experiments


class TestRunAllNames:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown experiments"):
            run_all(["fig7", "fig99"])

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="table3"):
            select_experiments(["nope"])

    def test_none_selects_all(self):
        assert select_experiments(None) == list(ALL_EXPERIMENTS)
        assert select_experiments([]) == list(ALL_EXPERIMENTS)

    def test_subset_preserves_order(self):
        selected = select_experiments(["table3", "fig7"])
        assert [n for n, _ in selected] == ["fig7", "table3"]


class TestParallelDeterminism:
    def test_table3_parallel_identical_to_serial(self):
        assert table3.render(jobs=2) == table3.render(jobs=1)

    def test_fig7_parallel_identical_to_serial(self):
        configs = fig7.fig7_configs()[:6]
        serial = fig7.run(configs=configs, jobs=1)
        parallel = fig7.run(configs=configs, jobs=3)
        assert parallel == serial

    def test_fig9_parallel_identical_to_serial(self):
        configs = fig9.fig8_right()[:4]
        assert fig9.run(configs=configs, jobs=2) == fig9.run(configs=configs, jobs=1)

    def test_sweep_parallel_identical_to_serial(self):
        grid = SweepGrid(ni=(32, 64), no=(32, 64), out=(8,), b=(16,))
        serial = run_sweep(grid, chip=False, jobs=1)
        parallel = run_sweep(grid, chip=False, jobs=2)
        assert parallel == serial

    def test_sweep_parallel_keeps_error_rows(self):
        # An infeasible grid point must come back as an error row from a
        # worker process, same as it does serially.
        grid = SweepGrid(ni=(64,), no=(200_000,), out=(8,), k=(3,), b=(32,))
        rows = run_sweep(grid, chip=False, jobs=2)
        assert len(rows) == 1
        assert not rows[0].ok
        assert "blocking" in rows[0].error or "LDM" in rows[0].error

    def test_run_all_accepts_jobs(self):
        report = run_all(["table3"], jobs=2)
        assert "Table III" in report
        assert report == run_all(["table3"], jobs=1)
