"""The reproduction scorecard."""

import pytest

from repro.experiments import scorecard


@pytest.fixture(scope="module")
def checks():
    return scorecard.run(fast=True)


class TestScorecard:
    def test_all_claims_hold(self, checks):
        failures = [c.claim for c in checks if not c.passed]
        assert failures == [], f"claims failed: {failures}"

    def test_covers_every_artifact(self, checks):
        text = " ".join(c.claim for c in checks)
        for anchor in ("Table II", "Table III", "Fig.7", "EE", "scaling",
                       "gload", "Eq.5", "calibration"):
            assert anchor in text, f"scorecard misses {anchor}"

    def test_exact_pins_are_exact(self, checks):
        by_claim = {c.claim: c for c in checks}
        assert by_claim["per-CG peak (Gflops)"].ours == "742.4"
        assert by_claim["original EE (%)"].ours == "61.5"

    def test_render(self, checks):
        text = scorecard.render(checks)
        assert "PASS" in text
        assert f"{len(checks)}/{len(checks)} claims hold" in text
