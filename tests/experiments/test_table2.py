"""Table II regeneration on the simulated DMA engine."""

import pytest

from repro.experiments import table2
from repro.hw.spec import TABLE_II_DMA_BANDWIDTH


class TestTable2:
    def test_all_rows_present(self):
        rows = table2.run()
        assert [r.size_bytes for r in rows] == sorted(TABLE_II_DMA_BANDWIDTH)

    def test_measured_matches_paper_exactly(self):
        """The engine is calibrated to the paper's measurements; the
        micro-benchmark must read them back verbatim."""
        for row in table2.run():
            assert row.get_gbps == pytest.approx(row.paper_get, rel=1e-6)
            assert row.put_gbps == pytest.approx(row.paper_put, rel=1e-6)

    def test_single_measurement(self):
        get_bw, put_bw = table2.measure_dma_bandwidth(256)
        assert get_bw == pytest.approx(22.44e9, rel=1e-6)
        assert put_bw == pytest.approx(25.80e9, rel=1e-6)

    def test_render_contains_table(self):
        text = table2.render()
        assert "Size(Byte)" in text
        assert "4096" in text
