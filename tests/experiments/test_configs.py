"""The Fig. 8 configuration scripts."""

from repro.experiments.configs import (
    BATCH,
    OUTPUT_SIZE,
    fig7_configs,
    fig8_center,
    fig8_left,
    fig8_right,
)


class TestCounts:
    """The paper: configs 1-21 from the left script, 22-101 from the
    center script, 30 for Fig. 9."""

    def test_left_has_21(self):
        assert len(fig8_left()) == 21

    def test_center_has_80(self):
        assert len(fig8_center()) == 80

    def test_fig7_has_101(self):
        assert len(fig7_configs()) == 101

    def test_right_has_30(self):
        assert len(fig8_right()) == 30


class TestRanges:
    def test_left_square_channels(self):
        for p in fig8_left():
            assert p.ni == p.no
            assert 64 <= p.ni <= 384

    def test_left_endpoints(self):
        configs = fig8_left()
        assert (configs[0].ni, configs[0].no) == (64, 64)
        assert (configs[-1].ni, configs[-1].no) == (384, 384)

    def test_center_channel_coverage(self):
        nis = {p.ni for p in fig8_center()}
        assert nis == {64, 128, 192, 256, 384}
        nos = {p.no for p in fig8_center()}
        assert min(nos) == 64 and max(nos) == 384

    def test_right_filter_sizes(self):
        ks = sorted({p.kr for p in fig8_right()})
        assert ks == list(range(3, 22, 2))
        for p in fig8_right():
            assert p.kr == p.kc

    def test_fixed_evaluation_setting(self):
        """Caption of Figs. 7/9: B=128, output image 64x64."""
        for p in fig7_configs() + fig8_right():
            assert p.b == BATCH == 128
            assert p.ro == p.co == OUTPUT_SIZE == 64
