"""Table III: model-vs-measured evaluation."""

import pytest

from repro.experiments import table3


@pytest.fixture(scope="module")
def rows():
    return table3.run()


class TestTable3:
    def test_four_rows(self, rows):
        assert len(rows) == 4
        assert [r.plan for r in rows] == ["img", "img", "batch", "batch"]

    def test_rbw_matches_paper_exactly(self, rows):
        for row in rows:
            assert row.rbw_gbps == pytest.approx(row.paper_rbw, abs=0.1)

    def test_mbw_within_15_percent_of_paper(self, rows):
        for row in rows:
            assert row.mbw_gbps == pytest.approx(row.paper_mbw, rel=0.15)

    def test_measured_within_15_percent_of_paper(self, rows):
        for row in rows:
            assert row.measured_gflops == pytest.approx(row.paper_measured, rel=0.15)

    def test_model_within_30_percent_of_paper(self, rows):
        for row in rows:
            assert row.model_gflops == pytest.approx(row.paper_model, rel=0.30)

    def test_model_tracks_measurement(self, rows):
        """The paper's claim: 'a reasonable match' between mdl and meas."""
        for row in rows:
            ratio = row.model_gflops / row.measured_gflops
            assert 0.7 < ratio < 1.45

    def test_all_rows_memory_bound(self, rows):
        for row in rows:
            assert row.mbw_gbps < row.rbw_gbps

    def test_render(self, rows):
        text = table3.render(rows)
        assert "RBW" in text and "meas" in text
