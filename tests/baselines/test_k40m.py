"""The K40m/cuDNNv5 comparator model."""

import pytest

from repro.baselines.k40m import K40mCuDNNModel, K40mSpec
from repro.core.params import ConvParams


def _config(ni=128, no=128, k=3):
    return ConvParams.from_output(ni=ni, no=no, ro=64, co=64, kr=k, kc=k, b=128)


@pytest.fixture
def model():
    return K40mCuDNNModel()


class TestEfficiencySurface:
    def test_capped_at_40_percent(self, model):
        for ni in (64, 128, 256, 384):
            for no in (64, 128, 256, 384):
                assert model.efficiency(_config(ni, no)) <= 0.40 + 1e-9

    def test_aligned_beats_odd_channels(self, model):
        assert model.efficiency(_config(no=256)) > model.efficiency(_config(no=257))

    def test_large_filters_degrade(self, model):
        assert model.efficiency(_config(k=3)) > model.efficiency(_config(k=21))

    def test_small_depth_degrades(self, model):
        assert model.efficiency(_config(ni=32)) < model.efficiency(_config(ni=256))

    def test_deterministic(self, model):
        p = _config()
        assert model.efficiency(p) == model.efficiency(p)

    def test_jitter_varies_between_configs(self, model):
        # Two alignments-identical configs still differ via the seeded wobble.
        a = model.efficiency(_config(ni=128, no=128))
        b = model.efficiency(_config(ni=256, no=256))
        assert a != b


class TestThroughput:
    def test_best_case_around_0_57_tflops(self, model):
        best = max(
            model.gflops(_config(ni, no))
            for ni in (128, 256, 384)
            for no in (128, 256, 384)
        )
        assert 450 < best < 580  # 40% of 1.43 Tflops = 572 Gflops

    def test_seconds_consistent_with_rate(self, model):
        p = _config()
        assert model.seconds(p) * model.flops_rate(p) == pytest.approx(p.flops())

    def test_memory_roofline_can_bind(self):
        # Starve the bandwidth: rate must drop below the efficiency surface.
        starved = K40mCuDNNModel(K40mSpec(memory_bandwidth=10e9))
        normal = K40mCuDNNModel()
        p = _config()
        assert starved.flops_rate(p) < normal.flops_rate(p)

    def test_speedup_band_on_paper_sweep(self, model):
        """The swDNN/K40m band must bracket the paper's 1.91-9.75x range
        (we accept a modestly wider envelope; see EXPERIMENTS.md)."""
        from repro.core.conv import evaluate_chip
        from repro.experiments.configs import fig8_left

        speedups = []
        for params in fig8_left()[::5]:
            chip, _ = evaluate_chip(params)
            speedups.append(chip / model.gflops(params))
        assert min(speedups) > 1.5
        assert max(speedups) < 15.0
