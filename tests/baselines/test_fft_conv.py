"""Frequency-domain baseline: correctness and the rejection argument."""

import numpy as np
import pytest

from repro.baselines.fft_conv import FFTConvolution
from repro.core.params import ConvParams
from repro.core.reference import conv2d_reference


class TestFunctional:
    def test_matches_reference(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        w = rng.standard_normal((4, 3, 3, 3))
        out, _ = FFTConvolution().run(x, w)
        assert np.allclose(out, conv2d_reference(x, w))

    def test_matches_reference_non_square(self, rng):
        x = rng.standard_normal((1, 2, 7, 9))
        w = rng.standard_normal((2, 2, 3, 4))
        out, _ = FFTConvolution().run(x, w)
        assert np.allclose(out, conv2d_reference(x, w))

    def test_large_filter_still_exact(self, rng):
        x = rng.standard_normal((1, 1, 12, 12))
        w = rng.standard_normal((1, 1, 7, 7))
        out, _ = FFTConvolution().run(x, w)
        assert np.allclose(out, conv2d_reference(x, w))


class TestRejectionArgument:
    def test_bandwidth_amplification_large_for_small_filters(self):
        """For 3x3 filters the spectra dwarf the unique data — the paper's
        reason to stay in the spatial domain."""
        params = ConvParams.from_output(ni=128, no=128, ro=64, co=64, kr=3, kc=3, b=128)
        amp = FFTConvolution().bandwidth_amplification(params)
        assert amp > 3.0

    def test_compute_advantage_appears_only_at_huge_filters(self):
        """FFT's classic advantage is arithmetic: its pointwise stage does
        not grow with the filter area, so its compute time relative to the
        direct method shrinks with k — but on SW26010 it is bandwidth-bound
        long before that matters."""
        conv = FFTConvolution()

        def compute_ratio(k):
            p = ConvParams.from_output(ni=64, no=64, ro=32, co=32, kr=k, kc=k, b=32)
            report = conv.evaluate(p)
            direct_compute = p.flops() / 742.4e9
            return report.compute_seconds / direct_compute

        assert compute_ratio(21) < compute_ratio(3)

    def test_loses_to_spatial_plans(self):
        params = ConvParams.from_output(ni=128, no=128, ro=64, co=64, kr=3, kc=3, b=128)
        fft_report = FFTConvolution().evaluate(params)
        from repro.core.conv import ConvolutionEngine
        from repro.core.plans import BatchSizeAwarePlan

        spatial = ConvolutionEngine(BatchSizeAwarePlan(params)).evaluate()
        assert fft_report.gflops < spatial.gflops

    def test_traffic_components_positive(self):
        params = ConvParams.from_output(ni=64, no=64, ro=16, co=16, kr=3, kc=3, b=16)
        traffic = FFTConvolution().traffic(params)
        assert traffic.input_spectra > 0
        assert traffic.mesh_exchange > traffic.input_spectra  # all-to-all cost
        assert traffic.total == (
            traffic.input_spectra
            + traffic.filter_spectra
            + traffic.output_spectra
            + traffic.mesh_exchange
        )
