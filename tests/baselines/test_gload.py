"""The direct-memory-access (gload) baseline."""

import numpy as np
import pytest

from repro.baselines.gload import GloadConvolution, gload_estimate
from repro.core.reference import conv2d_reference


class TestEstimate:
    def test_matches_fig2(self):
        est = gload_estimate()
        assert est.efficiency == pytest.approx((8 / 139.2) ** 2, rel=1e-3)
        assert est.gflops < 3.0


class TestFunctional:
    def test_correct_result(self, rng):
        x = rng.standard_normal((1, 2, 4, 4))
        w = rng.standard_normal((2, 2, 2, 2))
        out, _ = GloadConvolution().run(x, w)
        assert np.allclose(out, conv2d_reference(x, w))

    def test_catastrophically_slow(self, rng):
        """The whole point of Fig. 2: measured gload throughput is ~1000x
        below the hierarchical plans."""
        x = rng.standard_normal((1, 4, 4, 4))
        w = rng.standard_normal((4, 4, 3, 3))
        _, report = GloadConvolution().run(x, w)
        assert report.gflops < 10.0
        assert report.efficiency < 0.01

    def test_bytes_accounting_no_reuse(self, rng):
        x = rng.standard_normal((1, 2, 3, 3))
        w = rng.standard_normal((2, 2, 2, 2))
        conv = GloadConvolution()
        _, report = conv.run(x, w)
        # Two 8-byte reads per multiply-add: flops/2 MACs.
        assert report.bytes_get == report.flops // 2 * 16

    def test_rerun_resets_state(self, rng):
        conv = GloadConvolution()
        x = rng.standard_normal((1, 1, 2, 2))
        w = rng.standard_normal((1, 1, 1, 1))
        out1, _ = conv.run(x, w)
        out2, _ = conv.run(x, w)
        assert np.allclose(out1, out2)
