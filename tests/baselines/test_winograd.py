"""Winograd F(2x2, 3x3) baseline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.winograd import (
    ARITHMETIC_REDUCTION,
    A_T,
    B_T,
    G,
    WinogradConvolution,
    transform_filter,
)
from repro.common.errors import PlanError
from repro.core.params import ConvParams
from repro.core.reference import conv2d_reference


class TestTransforms:
    def test_transform_shapes(self):
        assert B_T.shape == (4, 4)
        assert G.shape == (4, 3)
        assert A_T.shape == (2, 4)

    def test_filter_transform_shape(self, rng):
        u = transform_filter(rng.standard_normal((5, 3, 3, 3)))
        assert u.shape == (5, 3, 4, 4)

    def test_scalar_identity(self):
        """A^T [(G g G^T) .* (B^T d B)] A == conv2d(d, g) for one tile."""
        rng = np.random.default_rng(0)
        d = rng.standard_normal((4, 4))
        g = rng.standard_normal((3, 3))
        u = G @ g @ G.T
        v = B_T @ d @ B_T.T
        out = A_T @ (u * v) @ A_T.T
        ref = conv2d_reference(d[None, None], g[None, None])[0, 0]
        assert np.allclose(out, ref)

    def test_arithmetic_reduction(self):
        assert ARITHMETIC_REDUCTION == pytest.approx(2.25)

    def test_wrong_filter_size_rejected(self, rng):
        with pytest.raises(PlanError):
            transform_filter(rng.standard_normal((1, 1, 5, 5)))


class TestFunctional:
    def test_matches_reference_even_output(self, rng):
        x = rng.standard_normal((2, 3, 10, 10))  # out 8x8
        w = rng.standard_normal((4, 3, 3, 3))
        out, _ = WinogradConvolution().run(x, w)
        assert np.allclose(out, conv2d_reference(x, w))

    def test_matches_reference_odd_output(self, rng):
        x = rng.standard_normal((1, 2, 9, 11))  # out 7x9 (needs padding)
        w = rng.standard_normal((2, 2, 3, 3))
        out, _ = WinogradConvolution().run(x, w)
        assert np.allclose(out, conv2d_reference(x, w))

    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=4, max_value=9),
        st.integers(min_value=4, max_value=9),
        st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=20, deadline=None)
    def test_matches_reference_property(self, ni, no, ri, ci, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((2, ni, ri, ci))
        w = rng.standard_normal((no, ni, 3, 3))
        out, _ = WinogradConvolution().run(x, w)
        assert np.allclose(out, conv2d_reference(x, w))

    def test_non_3x3_rejected(self, rng):
        with pytest.raises(PlanError):
            WinogradConvolution().run(
                rng.standard_normal((1, 1, 8, 8)), rng.standard_normal((1, 1, 5, 5))
            )

    def test_channel_mismatch_rejected(self, rng):
        with pytest.raises(PlanError):
            WinogradConvolution().run(
                rng.standard_normal((1, 2, 8, 8)), rng.standard_normal((1, 3, 3, 3))
            )


class TestAnalysis:
    def test_multiplies_reduced(self):
        params = ConvParams.from_output(ni=64, no=64, ro=32, co=32, kr=3, kc=3, b=32)
        direct_multiplies = params.flops() // 2
        wino = WinogradConvolution().multiplies(params)
        assert wino < direct_multiplies
        assert direct_multiplies / wino == pytest.approx(2.25, rel=0.01)

    def test_fusion_decides_the_win(self):
        """The design takeaway: keeping the pointwise products in LDM is
        what preserves (most of) the 2.25x arithmetic reduction; spilling
        them erodes it on the bandwidth-bound chip."""
        params = ConvParams.from_output(ni=256, no=256, ro=64, co=64, kr=3, kc=3, b=128)
        conv = WinogradConvolution()
        fused = conv.advantage(params, fused=True)
        unfused = conv.advantage(params, fused=False)
        assert unfused < fused
        assert 0.5 < unfused
        assert fused < 2 * ARITHMETIC_REDUCTION  # bounded by the arithmetic win

    def test_traffic_exceeds_direct_unique_bytes(self):
        params = ConvParams.from_output(ni=64, no=64, ro=32, co=32, kr=3, kc=3, b=32)
        conv = WinogradConvolution()
        assert conv.traffic_bytes(params, fused=False) > params.total_bytes()
        assert conv.traffic_bytes(params, fused=True) < conv.traffic_bytes(
            params, fused=False
        )

    def test_evaluate_reports_layer_flops(self):
        params = ConvParams.from_output(ni=64, no=64, ro=16, co=16, kr=3, kc=3, b=16)
        report = WinogradConvolution().evaluate(params)
        assert report.flops == params.flops()
        assert report.seconds > 0
