"""The GEMM-lowered (im2col) baseline."""

import numpy as np
import pytest

from repro.baselines.im2col import Im2colConvolution
from repro.core.params import ConvParams
from repro.core.reference import conv2d_reference


class TestFunctional:
    def test_correct_result(self, rng):
        x = rng.standard_normal((2, 3, 6, 6))
        w = rng.standard_normal((4, 3, 3, 3))
        out, _ = Im2colConvolution().run(x, w)
        assert np.allclose(out, conv2d_reference(x, w))


class TestTrafficModel:
    def test_blowup_scales_with_filter_area(self):
        conv = Im2colConvolution()
        small = conv.blowup(
            ConvParams.from_output(ni=64, no=64, ro=32, co=32, kr=3, kc=3, b=32)
        )
        large = conv.blowup(
            ConvParams.from_output(ni=64, no=64, ro=32, co=32, kr=7, kc=7, b=32)
        )
        assert large > small > 1.0

    def test_blowup_explains_rejection(self):
        """Section III-C: lowering multiplies traffic on a bandwidth-bound
        chip — the im2col baseline must lose to the direct plans."""
        params = ConvParams.from_output(ni=128, no=128, ro=64, co=64, kr=3, kc=3, b=128)
        conv = Im2colConvolution()
        report = conv.evaluate(params)
        from repro.core.conv import ConvolutionEngine
        from repro.core.plans import BatchSizeAwarePlan

        direct = ConvolutionEngine(BatchSizeAwarePlan(params)).evaluate()
        assert report.gflops < direct.gflops

    def test_evaluate_flops(self):
        params = ConvParams.from_output(ni=64, no=64, ro=16, co=16, kr=3, kc=3, b=32)
        report = Im2colConvolution().evaluate(params)
        assert report.flops == params.flops()
        assert report.seconds > 0
