"""Server start pre-warms the plan cache; steady state never tunes.

The acceptance criterion: after :meth:`InferenceServer.start`, requests
record **zero** tuner measurements — all planning/tuning happened at
warm-up — and a second server over the same persistent cache warms by pure
plan-cache hits (no measurements at all).
"""

import numpy as np
import pytest

from repro.serve import InferenceServer, ServedModel, ServerConfig
from repro.telemetry import Telemetry

pytestmark = pytest.mark.serve

MAX_BATCH = 3


def _model():
    rng = np.random.default_rng(0)
    w = rng.standard_normal((8, 8, 3, 3)) * 0.2
    return ServedModel.conv(w, (6, 6), activation="relu")


def _server(tmp_path, telemetry):
    config = ServerConfig(
        max_batch=MAX_BATCH,
        max_wait_s=0.001,
        queue_depth=16,
        workers=1,
        autotune=True,
        plan_cache=str(tmp_path / "plans"),
        guarded=True,
    )
    return InferenceServer(_model(), config, telemetry=telemetry)


def _push_requests(server, n=6, seed=1):
    rng = np.random.default_rng(seed)
    reqs = [
        server.submit(x)
        for x in rng.standard_normal((n, *server.model.input_shape))
    ]
    return [r.result(timeout=30.0) for r in reqs]


class TestWarmPlanCache:
    def test_steady_state_records_zero_tuner_measurements(self, tmp_path):
        telem = Telemetry()
        with _server(tmp_path, telem) as server:
            warm_measurements = telem.counters.get("tune.measurements")
            assert warm_measurements > 0, "warm-up should have tuned"
            warm_packs = telem.counters.get("engine.filter_pack.packs")
            assert warm_packs > 0, "warm-up should have packed filters"
            _push_requests(server)
            assert telem.counters.get("tune.measurements") == warm_measurements, (
                "steady-state requests tuned inline"
            )
            assert telem.counters.get("engine.filter_pack.packs") == warm_packs, (
                "steady-state requests packed filters inline"
            )
        assert server.counters_balanced()

    def test_restarted_server_warms_by_cache_hits_only(self, tmp_path):
        first = Telemetry()
        with _server(tmp_path, first) as server:
            _push_requests(server)
        assert first.counters.get("tune.measurements") > 0

        second = Telemetry()
        with _server(tmp_path, second) as server:
            outs = _push_requests(server)
        assert second.counters.get("tune.measurements") == 0, (
            "second server re-tuned despite the warm cache"
        )
        assert second.counters.get("plan_cache.hits") >= MAX_BATCH
        assert all(out is not None for out in outs)

    def test_both_servers_produce_identical_outputs(self, tmp_path):
        a = _push_requests_through(tmp_path)
        b = _push_requests_through(tmp_path)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


def _push_requests_through(tmp_path):
    telem = Telemetry()
    with _server(tmp_path, telem) as server:
        return _push_requests(server)
