"""Serve-layer observability: metrics registry + flight-recorder chains."""

import numpy as np
import pytest

from repro.faults import default_chaos_serve_faults, run_chaos_serve
from repro.serve import (
    InferenceServer,
    ServedModel,
    ServerConfig,
    run_load,
    synthetic_images,
)
from repro.telemetry import Telemetry

pytestmark = pytest.mark.serve


def _conv_model(ni=8, no=8, k=3, hw=8, seed=0):
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((no, ni, k, k)) * np.sqrt(2.0 / (ni * k * k))
    return ServedModel.conv(w, (hw, hw))


def _config(**overrides):
    base = dict(
        max_batch=4, max_wait_s=0.001, queue_depth=64, workers=1, autotune=False
    )
    base.update(overrides)
    return ServerConfig(**base)


@pytest.fixture(scope="module")
def served():
    """One shared clean serve run with a full telemetry session."""
    model = _conv_model()
    telem = Telemetry()
    images = synthetic_images(24, model.input_shape, seed=1)
    with InferenceServer(model, _config(), telemetry=telem) as server:
        report, outputs = run_load(server, images, rate_rps=50000.0, seed=2)
    return telem, report


class TestServeMetrics:
    def test_latency_distributions_recorded(self, served):
        telem, report = served
        assert report.completed == 24
        for name in ("serve.latency_ms", "serve.queue_ms", "serve.execute_ms"):
            hist = telem.metrics.histogram(name)
            assert hist is not None, name
            assert hist.count == 24 or name == "serve.execute_ms"
            assert hist.count >= 1
        latency = telem.metrics.histogram("serve.latency_ms")
        assert 0.0 < latency.p50 <= latency.p90 <= latency.p99 <= latency.max
        # End-to-end latency includes the queue wait it decomposes into.
        queue = telem.metrics.histogram("serve.queue_ms")
        assert latency.mean >= queue.mean

    def test_batch_size_histogram_bounded_by_config(self, served):
        telem, _ = served
        sizes = telem.metrics.histogram("serve.batch_size")
        assert sizes is not None
        assert sizes.count >= 6  # 24 requests / max_batch 4
        assert sizes.max <= 4.0

    def test_queue_depth_sampled_over_time(self, served):
        telem, _ = served
        gauge = telem.metrics.gauge("serve.queue_depth")
        assert gauge is not None and gauge.updates > 0
        series = telem.metrics.series("serve.queue_depth")
        assert series is not None and len(series) > 0
        ts = [t for t, _ in series.points()]
        assert ts == sorted(ts)  # wall timebase is monotone
        assert all(0.0 <= v <= 64.0 for _, v in series.points())

    def test_flight_records_full_lifecycle(self, served):
        telem, _ = served
        kinds = {e.kind for e in telem.flight.events()}
        assert {
            "request.submit", "batch.form", "batch.attempt",
            "batch.ok", "request.complete",
        } <= kinds

    def test_every_completed_request_has_a_chain(self, served):
        telem, report = served
        for rid in range(report.completed):
            chain = [e.kind for e in telem.flight.chain(rid)]
            assert chain[0] == "request.submit"
            assert "batch.form" in chain
            assert "request.complete" in chain

    def test_disabled_session_records_nothing(self):
        model = _conv_model()
        images = synthetic_images(6, model.input_shape, seed=1)
        with InferenceServer(model, _config()) as server:
            run_load(server, images, rate_rps=50000.0, seed=2)
        # No ambient session: the null metrics/flight sinks stay empty.
        from repro.telemetry import NULL_FLIGHT, NULL_METRICS

        assert len(NULL_METRICS) == 0
        assert len(NULL_FLIGHT) == 0


@pytest.fixture(scope="module")
def chaos_report():
    """One shared chaos run — seeded faults force shed/retry traffic."""
    return run_chaos_serve(
        fault_spec=default_chaos_serve_faults(),
        n_requests=64,
        rate_rps=4000.0,
    )


class TestChaosFlightChains:
    def test_recorder_attached_and_populated(self, chaos_report):
        flight = chaos_report.flight
        assert flight.enabled
        assert flight.recorded > 0

    def test_every_shed_request_chain_explains_the_shed(self, chaos_report):
        flight = chaos_report.flight
        shed_ids = [
            e.args["request"]
            for e in flight.events()
            if e.kind == "request.shed"
        ]
        assert chaos_report.shed == len(shed_ids)
        for rid in shed_ids:
            kinds = [e.kind for e in flight.chain(rid)]
            assert kinds[0] == "request.submit"
            assert "request.shed" in kinds

    def test_at_least_one_full_retry_chain(self, chaos_report):
        # The acceptance bar: under seeded faults at least one request's
        # chain reads submit -> batch formed -> attempt failed -> retry ->
        # terminal outcome, stitched purely from the ring.
        flight = chaos_report.flight
        assert chaos_report.retries >= 1
        retried_batches = {
            e.args["batch"] for e in flight.events() if e.kind == "batch.retry"
        }
        assert retried_batches
        members = [
            e.args["requests"]
            for e in flight.events()
            if e.kind == "batch.form" and e.args["batch"] in retried_batches
        ]
        assert members
        full_chains = 0
        for rid in members[0]:
            kinds = [e.kind for e in flight.chain(rid)]
            if (
                kinds[0] == "request.submit"
                and "batch.form" in kinds
                and "batch.retry" in kinds
                and any(
                    k in kinds
                    for k in ("request.complete", "request.error",
                              "request.deadline")
                )
            ):
                full_chains += 1
        assert full_chains >= 1
        rid = members[0][0]
        text = flight.explain(rid)
        assert f"request {rid}:" in text

    def test_breaker_transitions_recorded_as_global_events(self, chaos_report):
        flight = chaos_report.flight
        transitions = [
            e.args["transition"]
            for e in flight.events()
            if e.kind == "breaker.transition"
        ]
        assert "closed->open" in transitions

    def test_counters_metrics_flight_agree_on_retries(self, chaos_report):
        counters = chaos_report.telemetry.counters.as_dict()
        flight_retries = sum(
            1 for e in chaos_report.flight.events() if e.kind == "batch.retry"
        )
        # The ring did not wrap in a 64-request run, so the tallies match.
        assert chaos_report.flight.dropped == 0
        assert counters.get("serve.retries", 0) == flight_retries

    def test_clean_run_does_not_auto_dump(self, tmp_path):
        report = run_chaos_serve(
            fault_spec=None,
            n_requests=8,
            rate_rps=50000.0,
            flight_dump_path=str(tmp_path / "flight.json"),
        )
        assert not report.anomalous
        assert report.flight_dump is None
        assert not (tmp_path / "flight.json").exists()
