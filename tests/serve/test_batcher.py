"""Batcher semantics: coalescing, backpressure, shutdown tokens."""

import threading
import time

import numpy as np
import pytest

from repro.common.errors import QueueFullError, ServeError, ServerClosedError
from repro.serve import BatchPolicy, DynamicBatcher, InferenceRequest

pytestmark = pytest.mark.serve


def _req(i: int) -> InferenceRequest:
    return InferenceRequest(i, np.zeros((1, 2, 2)))


class TestBatchPolicy:
    def test_defaults(self):
        policy = BatchPolicy()
        assert policy.max_batch == 8
        assert policy.max_wait_s == 0.002

    def test_rejects_bad_values(self):
        with pytest.raises(ServeError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ServeError):
            BatchPolicy(max_wait_s=-0.001)


class TestAdmission:
    def test_backpressure_at_depth(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=4), queue_depth=2)
        batcher.offer(_req(0))
        batcher.offer(_req(1))
        with pytest.raises(QueueFullError):
            batcher.offer(_req(2))
        assert batcher.depth() == 2

    def test_closed_batcher_rejects(self):
        batcher = DynamicBatcher(queue_depth=4)
        batcher.close(n_workers=1)
        with pytest.raises(ServerClosedError):
            batcher.offer(_req(0))

    def test_queue_depth_validated(self):
        with pytest.raises(ServeError):
            DynamicBatcher(queue_depth=0)


class TestBatchFormation:
    def test_coalesces_queued_requests_up_to_max_batch(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=3, max_wait_s=0.0),
                                 queue_depth=16)
        for i in range(5):
            batcher.offer(_req(i))
        first = batcher.next_batch()
        second = batcher.next_batch()
        assert [r.request_id for r in first] == [0, 1, 2]
        assert [r.request_id for r in second] == [3, 4]

    def test_window_waits_for_late_arrivals(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=4, max_wait_s=0.25),
                                 queue_depth=16)
        batcher.offer(_req(0))

        def late():
            time.sleep(0.02)
            batcher.offer(_req(1))

        thread = threading.Thread(target=late)
        thread.start()
        batch = batcher.next_batch()
        thread.join()
        assert [r.request_id for r in batch] == [0, 1]

    def test_full_batch_ships_without_waiting_out_the_window(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=2, max_wait_s=30.0),
                                 queue_depth=16)
        batcher.offer(_req(0))
        batcher.offer(_req(1))
        start = time.perf_counter()
        batch = batcher.next_batch()
        assert time.perf_counter() - start < 5.0
        assert len(batch) == 2

    def test_close_then_drain_returns_leftovers(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=2, max_wait_s=0.0),
                                 queue_depth=8)
        for i in range(3):
            batcher.offer(_req(i))
        batcher.close(n_workers=1)
        leftovers = batcher.drain()
        assert [r.request_id for r in leftovers] == [0, 1, 2]
        assert batcher.depth() == 0

    def test_sentinel_mid_window_is_requeued_and_batch_still_ships(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=4, max_wait_s=0.0),
                                 queue_depth=8)
        batcher.offer(_req(0))
        batcher.close(n_workers=1)  # sentinel lands behind request 0
        batch = batcher.next_batch()
        assert [r.request_id for r in batch] == [0]
        # The requeued sentinel now releases the worker.
        assert batcher.next_batch() is None
