"""Batcher semantics: coalescing, backpressure, brownout, shutdown."""

import threading
import time

import numpy as np
import pytest

from repro.common.errors import (
    QueueFullError,
    ServeError,
    ServerClosedError,
    ShedError,
)
from repro.serve import BatchPolicy, DynamicBatcher, InferenceRequest

pytestmark = pytest.mark.serve


def _req(i: int, priority: int = 0) -> InferenceRequest:
    return InferenceRequest(i, np.zeros((1, 2, 2)), priority=priority)


class TestBatchPolicy:
    def test_defaults(self):
        policy = BatchPolicy()
        assert policy.max_batch == 8
        assert policy.max_wait_s == 0.002

    def test_rejects_bad_values(self):
        with pytest.raises(ServeError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ServeError):
            BatchPolicy(max_wait_s=-0.001)


class TestAdmission:
    def test_backpressure_at_depth(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=4), queue_depth=2)
        batcher.offer(_req(0))
        batcher.offer(_req(1))
        with pytest.raises(QueueFullError):
            batcher.offer(_req(2))
        assert batcher.depth() == 2

    def test_closed_batcher_rejects(self):
        batcher = DynamicBatcher(queue_depth=4)
        batcher.close(n_workers=1)
        with pytest.raises(ServerClosedError):
            batcher.offer(_req(0))

    def test_queue_depth_validated(self):
        with pytest.raises(ServeError):
            DynamicBatcher(queue_depth=0)


class TestBatchFormation:
    def test_coalesces_queued_requests_up_to_max_batch(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=3, max_wait_s=0.0),
                                 queue_depth=16)
        for i in range(5):
            batcher.offer(_req(i))
        first = batcher.next_batch()
        second = batcher.next_batch()
        assert [r.request_id for r in first] == [0, 1, 2]
        assert [r.request_id for r in second] == [3, 4]

    def test_window_waits_for_late_arrivals(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=4, max_wait_s=0.25),
                                 queue_depth=16)
        batcher.offer(_req(0))

        def late():
            time.sleep(0.02)
            batcher.offer(_req(1))

        thread = threading.Thread(target=late)
        thread.start()
        batch = batcher.next_batch()
        thread.join()
        assert [r.request_id for r in batch] == [0, 1]

    def test_full_batch_ships_without_waiting_out_the_window(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=2, max_wait_s=30.0),
                                 queue_depth=16)
        batcher.offer(_req(0))
        batcher.offer(_req(1))
        start = time.perf_counter()
        batch = batcher.next_batch()
        assert time.perf_counter() - start < 5.0
        assert len(batch) == 2

    def test_close_then_drain_returns_leftovers(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=2, max_wait_s=0.0),
                                 queue_depth=8)
        for i in range(3):
            batcher.offer(_req(i))
        batcher.close(n_workers=1)
        leftovers = batcher.drain()
        assert [r.request_id for r in leftovers] == [0, 1, 2]
        assert batcher.depth() == 0

    def test_sentinel_mid_window_is_requeued_and_batch_still_ships(self):
        batcher = DynamicBatcher(BatchPolicy(max_batch=4, max_wait_s=0.0),
                                 queue_depth=8)
        batcher.offer(_req(0))
        batcher.close(n_workers=1)  # sentinel lands behind request 0
        batch = batcher.next_batch()
        assert [r.request_id for r in batch] == [0]
        # The requeued sentinel now releases the worker.
        assert batcher.next_batch() is None


class TestShutdownLosesNothing:
    def test_close_mid_window_ships_partial_batch(self):
        # A worker parked in a long batching window must ship what it has
        # when the batcher closes, not strand it.
        batcher = DynamicBatcher(BatchPolicy(max_batch=8, max_wait_s=30.0),
                                 queue_depth=8)
        batcher.offer(_req(0))
        result = {}

        def worker():
            result["batch"] = batcher.next_batch()

        thread = threading.Thread(target=worker)
        thread.start()
        time.sleep(0.05)  # let the worker enter the window
        batcher.close(n_workers=1)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert [r.request_id for r in result["batch"]] == [0]
        assert batcher.next_batch() is None

    def test_queued_requests_all_ship_after_close(self):
        # Close with a backlog: workers keep receiving real batches until
        # the queue is empty, then None — drain finds nothing to cancel.
        batcher = DynamicBatcher(BatchPolicy(max_batch=2, max_wait_s=30.0),
                                 queue_depth=8)
        for i in range(5):
            batcher.offer(_req(i))
        batcher.close(n_workers=2)
        shipped = []
        while True:
            batch = batcher.next_batch()
            if batch is None:
                break
            shipped.append([r.request_id for r in batch])
        assert shipped == [[0, 1], [2, 3], [4]]
        assert batcher.drain() == []

    def test_every_worker_wakes_on_close(self):
        batcher = DynamicBatcher(queue_depth=4)
        results = []

        def worker():
            results.append(batcher.next_batch())

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        batcher.close(n_workers=3)
        for thread in threads:
            thread.join(timeout=5.0)
            assert not thread.is_alive()
        assert results == [None, None, None]


class TestBrownout:
    def test_high_water_validated(self):
        with pytest.raises(ServeError):
            DynamicBatcher(queue_depth=4, high_water=0)
        with pytest.raises(ServeError):
            DynamicBatcher(queue_depth=4, high_water=5)

    def test_below_high_water_nothing_shed(self):
        batcher = DynamicBatcher(queue_depth=8, high_water=3)
        assert batcher.offer(_req(0)) is None
        assert batcher.offer(_req(1)) is None
        assert batcher.depth() == 2

    def test_eviction_picks_lowest_priority_newest_among_ties(self):
        batcher = DynamicBatcher(queue_depth=8, high_water=3)
        batcher.offer(_req(0, priority=1))
        batcher.offer(_req(1, priority=0))
        batcher.offer(_req(2, priority=0))
        # At high water: the incoming priority-2 request displaces the
        # newest of the lowest-priority class (request 2, not 1).
        victim = batcher.offer(_req(3, priority=2))
        assert victim.request_id == 2
        batch = batcher.next_batch()
        assert [r.request_id for r in batch] == [0, 1, 3]

    def test_incoming_shed_when_not_strictly_higher(self):
        batcher = DynamicBatcher(queue_depth=8, high_water=2)
        batcher.offer(_req(0, priority=1))
        batcher.offer(_req(1, priority=1))
        # Equal priority: fail-fast admission, no queue churn.
        with pytest.raises(ShedError):
            batcher.offer(_req(2, priority=1))
        assert batcher.depth() == 2

    def test_no_high_water_keeps_queue_full_backpressure(self):
        batcher = DynamicBatcher(queue_depth=2)
        batcher.offer(_req(0, priority=0))
        batcher.offer(_req(1, priority=0))
        # Without a high-water mark, priority never evicts: legacy
        # QueueFullError backpressure is preserved bit-for-bit.
        with pytest.raises(QueueFullError):
            batcher.offer(_req(2, priority=99))
