"""Serving resilience: retry, deadline budgeting, hedging, quarantine, shed.

Every test here is deterministic — faults are injected through a wrapper
pool that fails on command (or by striking the health tracker directly),
never through timing races.
"""

import threading

import numpy as np
import pytest

from repro.common.errors import (
    BreakerOpenError,
    DMATimeoutError,
    DeadlineExceededError,
    ShedError,
    SimulationError,
)
from repro.serve import (
    BreakerPolicy,
    InferenceServer,
    ServedModel,
    ServerConfig,
    WarmEnginePool,
    synthetic_images,
)
from repro.serve.health import DEGRADED, HEALTHY, QUARANTINED
from repro.telemetry import Telemetry

pytestmark = pytest.mark.serve


def _conv_model(ni=8, no=8, k=3, hw=8, seed=0):
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((no, ni, k, k)) * np.sqrt(2.0 / (ni * k * k))
    bias = rng.standard_normal(no) * 0.1
    return ServedModel.conv(w, (hw, hw), bias=bias, activation="relu")


def _config(**overrides):
    base = dict(
        max_batch=4,
        max_wait_s=0.001,
        queue_depth=64,
        workers=1,
        autotune=False,
        guarded=True,
        retry_backoff_s=0.0,
    )
    base.update(overrides)
    return ServerConfig(**base)


class FlakyPool:
    """Delegating pool whose primary path fails the first ``fail_first`` runs.

    ``fail_first=None`` means fail every primary run; the safe (hedge) path
    always delegates unless ``fail_safe`` is set.
    """

    def __init__(self, inner, fail_first=0, fail_safe=False):
        self.inner = inner
        self.fail_first = fail_first
        self.fail_safe = fail_safe
        self.primary_calls = 0
        self.safe_calls = 0

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def run_batch(self, xb, safe=False):
        if safe:
            self.safe_calls += 1
            if self.fail_safe:
                raise DMATimeoutError("injected safe-path failure")
            return self.inner.run_batch(xb, safe=True)
        self.primary_calls += 1
        if self.fail_first is None or self.primary_calls <= self.fail_first:
            raise DMATimeoutError("injected primary failure")
        return self.inner.run_batch(xb)


def _flaky_server(telem, fail_first=0, fail_safe=False, **overrides):
    model = _conv_model()
    inner = WarmEnginePool(
        model, max_batch=4, autotune=False, guarded=True, telemetry=telem
    )
    pool = FlakyPool(inner, fail_first=fail_first, fail_safe=fail_safe)
    server = InferenceServer(
        model, _config(**overrides), telemetry=telem, pool=pool
    )
    return server, pool, model


class TestRetry:
    def test_retry_masks_transient_fault(self):
        telem = Telemetry()
        server, pool, model = _flaky_server(telem, fail_first=1, max_retries=2)
        images = synthetic_images(1, model.input_shape, seed=1)
        with server:
            out = server.submit(images[0]).result(timeout=30.0)
        np.testing.assert_allclose(
            out, model.reference_forward(images)[0], rtol=1e-10, atol=1e-10
        )
        assert pool.primary_calls == 2  # one failure, one retry success
        assert telem.counters.get("serve.retries") == 1
        assert telem.counters.get("serve.completed") == 1
        assert telem.counters.get("serve.errors") == 0
        assert server.counters_balanced()
        # One failed attempt is far below the default trip threshold.
        assert server.breaker.state == "closed"

    def test_retries_exhausted_without_hedge_fails_typed(self):
        telem = Telemetry()
        server, pool, model = _flaky_server(
            telem, fail_first=None, max_retries=1, hedge=False
        )
        images = synthetic_images(1, model.input_shape, seed=2)
        with server:
            req = server.submit(images[0])
            with pytest.raises(DMATimeoutError):
                req.result(timeout=30.0)
        assert pool.primary_calls == 2
        assert telem.counters.get("serve.retries") == 1
        assert telem.counters.get("serve.errors") == 1
        assert server.counters_balanced()


class TestHedge:
    def test_hedge_rescues_with_bit_identical_output(self):
        telem = Telemetry()
        server, pool, model = _flaky_server(
            telem, fail_first=None, max_retries=1, hedge=True
        )
        images = synthetic_images(1, model.input_shape, seed=3)
        with server:
            out = server.submit(images[0]).result(timeout=30.0)
        assert pool.safe_calls == 1
        assert telem.counters.get("serve.hedges") == 1
        assert telem.counters.get("serve.completed") == 1
        assert telem.counters.get("serve.errors") == 0
        assert server.counters_balanced()
        # The safe spare reuses the primary's plan, so the hedged output is
        # bit-identical to a healthy plain-pool run — never a wrong answer.
        plain = WarmEnginePool(model, max_batch=4, autotune=False, guarded=False)
        plain.warm(batch_sizes=[1])
        np.testing.assert_array_equal(out, plain.run_batch(images[:1])[0])

    def test_hedge_failure_surfaces_original_style_error(self):
        telem = Telemetry()
        server, pool, model = _flaky_server(
            telem, fail_first=None, fail_safe=True, max_retries=0, hedge=True
        )
        images = synthetic_images(1, model.input_shape, seed=4)
        with server:
            req = server.submit(images[0])
            with pytest.raises(DMATimeoutError):
                req.result(timeout=30.0)
        assert pool.safe_calls == 1
        assert telem.counters.get("serve.hedges") == 0
        assert telem.counters.get("serve.errors") == 1
        assert server.counters_balanced()


class TestDeadlineUnderRetry:
    def test_backoff_that_busts_deadline_fails_exactly_once(self):
        # First attempt fails; the next backoff (1.0 s) cannot fit in the
        # 0.5 s deadline, so the request must fail *now*, exactly once, as
        # a deadline miss — and the worker must not sleep out the backoff
        # for an empty batch.
        telem = Telemetry()
        server, pool, model = _flaky_server(
            telem,
            fail_first=None,
            max_retries=3,
            retry_backoff_s=1.0,
            hedge=False,
        )
        images = synthetic_images(1, model.input_shape, seed=5)
        with server:
            req = server.submit(images[0], deadline_s=0.5)
            with pytest.raises(DeadlineExceededError):
                req.result(timeout=30.0)
        assert pool.primary_calls == 1
        assert telem.counters.get("serve.retries") == 1
        # Exactly one terminal outcome: a deadline miss, not also an error.
        assert telem.counters.get("serve.deadline_misses") == 1
        assert telem.counters.get("serve.errors") == 0
        assert telem.counters.get("serve.completed") == 0
        assert telem.counters.get("serve.requests") == 1
        assert server.counters_balanced()

    def test_deadline_free_neighbours_survive_the_purge(self):
        # Two requests share the failing batch; only the deadlined one can
        # be purged at backoff time — the other retries to completion.
        telem = Telemetry()
        server, pool, model = _flaky_server(
            telem,
            fail_first=1,
            max_retries=3,
            retry_backoff_s=1.0,
            hedge=False,
            max_wait_s=0.05,
        )
        images = synthetic_images(2, model.input_shape, seed=6)
        server.start()
        try:
            doomed = server.submit(images[0], deadline_s=0.5)
            survivor = server.submit(images[1])
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=30.0)
            out = survivor.result(timeout=30.0)
        finally:
            server.close()
        np.testing.assert_allclose(
            out, model.reference_forward(images)[1], rtol=1e-10, atol=1e-10
        )
        assert telem.counters.get("serve.deadline_misses") == 1
        assert telem.counters.get("serve.completed") == 1
        assert server.counters_balanced()


class TestQuarantine:
    def _pool(self, telem, quarantine_after=2):
        model = _conv_model()
        pool = WarmEnginePool(
            model,
            max_batch=2,
            autotune=False,
            guarded=True,
            quarantine_after=quarantine_after,
            telemetry=telem,
        )
        pool.warm(batch_sizes=[1])
        return pool, model

    def test_strikes_quarantine_and_route_to_safe_spare(self):
        telem = Telemetry()
        pool, model = self._pool(telem)
        # Hold the background rebuild so the quarantined window is
        # observable instead of a race against a fast replan.
        release = threading.Event()
        orig_build = pool._build_engine

        def slow_build(b, plan=None):
            release.wait(10.0)
            return orig_build(b, plan)

        pool._build_engine = slow_build
        try:
            pool._note_failure(1)
            assert pool.health.state(1) == DEGRADED
            pool._note_failure(1)
            assert pool.health.state(1) == QUARANTINED
            x = synthetic_images(1, model.input_shape, seed=7)
            out = pool.run_batch(x)
            # Routed to the safe spare (same plan): still bit-identical.
            assert telem.counters.get("serve.demotions.safe_runs") == 1
            plain = WarmEnginePool(
                model, max_batch=2, autotune=False, guarded=False
            )
            plain.warm(batch_sizes=[1])
            np.testing.assert_array_equal(out, plain.run_batch(x))
        finally:
            release.set()
        pool.await_rebuilds()
        assert pool.health.state(1) == HEALTHY
        assert telem.counters.get("serve.demotions.rebuilt") == 1
        assert telem.counters.get("serve.demotions.degraded") == 1
        assert telem.counters.get("serve.demotions.quarantined") == 1
        # Healthy again: the primary serves and the spare stays idle.
        pool.run_batch(synthetic_images(1, model.input_shape, seed=8))
        assert telem.counters.get("serve.demotions.safe_runs") == 1

    def test_failed_rebuild_stays_quarantined(self):
        telem = Telemetry()
        pool, model = self._pool(telem)
        orig_build = pool._build_engine

        def broken_build(b, plan=None):
            raise SimulationError("machine too degraded to replan")

        pool._build_engine = broken_build
        pool._note_failure(1)
        pool._note_failure(1)
        pool.await_rebuilds()
        assert pool.health.state(1) == QUARANTINED
        assert telem.counters.get("serve.demotions.rebuild_failed") == 1
        # The safe spare keeps answering while quarantined.
        x = synthetic_images(1, model.input_shape, seed=9)
        np.testing.assert_allclose(
            pool.run_batch(x), model.reference_forward(x), rtol=1e-10, atol=1e-10
        )
        # A later strike retries the rebuild once the machine recovers.
        pool._build_engine = orig_build
        pool._note_failure(1)
        pool.await_rebuilds()
        assert pool.health.state(1) == HEALTHY
        assert telem.counters.get("serve.demotions.rebuilt") == 1

    def test_success_forgives_degraded_strikes(self):
        telem = Telemetry()
        pool, model = self._pool(telem, quarantine_after=3)
        pool._note_failure(1)
        assert pool.health.state(1) == DEGRADED
        pool.run_batch(synthetic_images(1, model.input_shape, seed=10))
        assert pool.health.state(1) == HEALTHY
        # Clean runs wiped the slate: two fresh strikes only re-degrade.
        pool._note_failure(1)
        pool._note_failure(1)
        assert pool.health.state(1) == DEGRADED


class TestBrownoutShedding:
    def test_high_water_evicts_lowest_priority(self):
        telem = Telemetry()
        model = _conv_model()
        # Not started: submissions queue, so the eviction is deterministic.
        server = InferenceServer(
            model,
            _config(high_water=2, queue_depth=8, breaker=False),
            telemetry=telem,
        )
        images = synthetic_images(4, model.input_shape, seed=11)
        low = server.submit(images[0], priority=0)
        mid = server.submit(images[1], priority=1)
        # Crossing high water: the priority-0 request is the victim.
        high = server.submit(images[2], priority=2)
        with pytest.raises(ShedError):
            low.result(timeout=1.0)
        assert telem.counters.get("serve.shed") == 1
        # An incoming request that outranks nothing queued sheds itself.
        with pytest.raises(ShedError):
            server.submit(images[3], priority=0)
        assert telem.counters.get("serve.shed") == 2
        server.close()
        for req in (mid, high):
            with pytest.raises(Exception):
                req.result(timeout=1.0)
        # 4 admitted = 2 shed + 2 cancelled at close.
        assert telem.counters.get("serve.requests") == 4
        assert telem.counters.get("serve.cancelled") == 2
        assert server.counters_balanced()


class TestBreakerAtSubmit:
    def test_open_breaker_sheds_submission(self):
        telem = Telemetry()
        model = _conv_model()
        policy = BreakerPolicy(
            window=4, failure_threshold=0.5, min_samples=2,
            cooldown_s=60.0, probe_fraction=1.0, close_after=1,
        )
        server = InferenceServer(
            model, _config(breaker=policy), telemetry=telem
        )
        server.breaker.record_failure()
        server.breaker.record_failure()
        assert server.breaker.state == "open"
        x = synthetic_images(1, model.input_shape, seed=12)[0]
        with pytest.raises(BreakerOpenError) as excinfo:
            server.submit(x)
        # BreakerOpenError is a ShedError: one typed family for "the
        # server refused on purpose", distinct from queue-full rejection.
        assert isinstance(excinfo.value, ShedError)
        assert telem.counters.get("serve.shed") == 1
        assert telem.counters.get("serve.requests") == 1
        server.close()
        assert server.counters_balanced()

    def test_breaker_disabled_never_sheds(self):
        model = _conv_model()
        server = InferenceServer(model, _config(breaker=False))
        assert server.breaker is None
        images = synthetic_images(2, model.input_shape, seed=13)
        with server:
            outs = [server.submit(x).result(timeout=30.0) for x in images]
        for i, out in enumerate(outs):
            np.testing.assert_allclose(
                out, model.reference_forward(images)[i], rtol=1e-10, atol=1e-10
            )
