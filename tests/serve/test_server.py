"""End-to-end server behavior: parity, coalescing, accounting, lifecycle."""

import numpy as np
import pytest

from repro.common.errors import ServeError, ServerClosedError
from repro.core.layers import AvgPool2D, Conv2D, ReLU
from repro.core.network import Sequential
from repro.serve import (
    InferenceServer,
    ServedModel,
    ServerConfig,
    WarmEnginePool,
    run_load,
    run_sequential,
    synthetic_images,
)
from repro.telemetry import Telemetry

pytestmark = pytest.mark.serve


def _conv_model(ni=8, no=8, k=3, hw=8, seed=0, activation="relu"):
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((no, ni, k, k)) * np.sqrt(2.0 / (ni * k * k))
    bias = rng.standard_normal(no) * 0.1
    return ServedModel.conv(w, (hw, hw), bias=bias, activation=activation)


def _config(**overrides):
    base = dict(
        max_batch=4,
        max_wait_s=0.001,
        queue_depth=64,
        workers=1,
        autotune=False,
        guarded=True,
    )
    base.update(overrides)
    return ServerConfig(**base)


class TestEndToEnd:
    def test_batched_outputs_match_reference_and_sequential(self):
        model = _conv_model()
        telem = Telemetry()
        images = synthetic_images(12, model.input_shape, seed=1)
        with InferenceServer(model, _config(), telemetry=telem) as server:
            report, outputs = run_load(
                server, images, rate_rps=100000.0, seed=2
            )
        assert report.completed == 12
        reference = model.reference_forward(images)
        pool = WarmEnginePool(model, max_batch=4, autotune=False, guarded=True)
        _, sequential = run_sequential(pool, images)
        for i, out in enumerate(outputs):
            assert out is not None
            # Coalesced execution is bit-identical to running alone: the
            # image-family schedule preserves per-element accumulation
            # order regardless of the batch extent.
            np.testing.assert_array_equal(out, sequential[i])
            np.testing.assert_allclose(out, reference[i], rtol=1e-10, atol=1e-10)

    def test_requests_actually_coalesce(self):
        model = _conv_model()
        telem = Telemetry()
        images = synthetic_images(16, model.input_shape, seed=3)
        with InferenceServer(model, _config(), telemetry=telem) as server:
            report, _ = run_load(server, images, rate_rps=100000.0, seed=4)
        batches = telem.counters.get("serve.batches")
        assert report.completed == 16
        assert telem.counters.get("serve.batched_images") == 16
        assert batches < 16, "no coalescing happened"
        assert telem.counters.get("serve.batch_size") > 1

    def test_counters_balance_after_quiesce(self):
        model = _conv_model()
        telem = Telemetry()
        server = InferenceServer(model, _config(), telemetry=telem)
        server.start()
        reqs = [server.submit(x) for x in synthetic_images(6, model.input_shape)]
        for req in reqs:
            req.result(timeout=30.0)
        server.close()
        assert server.counters_balanced()
        acct = server.accounting()
        assert acct["serve.requests"] == 6
        assert acct["serve.completed"] == 6
        assert acct["balanced"] is True

    def test_network_model_serves(self):
        net = Sequential(
            [Conv2D(4, 4, 3, 3, engine="simulated"), ReLU(), AvgPool2D(2)]
        )
        model = ServedModel.network(net, (4, 8, 8))
        images = synthetic_images(6, model.input_shape, seed=5)
        with InferenceServer(model, _config(max_batch=3)) as server:
            reqs = [server.submit(x) for x in images]
            outs = [r.result(timeout=30.0) for r in reqs]
        expected = net.forward(images)
        for i, out in enumerate(outs):
            np.testing.assert_allclose(out, expected[i], rtol=1e-10, atol=1e-10)

    def test_pooling_model_serves(self):
        # 9x9 input, 3x3 filter -> 7x7 conv output, pooled 7x7 -> 1x1.
        rng = np.random.default_rng(7)
        w = rng.standard_normal((4, 4, 3, 3))
        model = ServedModel.conv(w, (9, 9), pool=7, activation=None)
        images = synthetic_images(4, model.input_shape, seed=8)
        with InferenceServer(model, _config(max_batch=2)) as server:
            outs = [server.submit(x).result(timeout=30.0) for x in images]
        reference = model.reference_forward(images)
        for i, out in enumerate(outs):
            np.testing.assert_allclose(out, reference[i], rtol=1e-10, atol=1e-10)


class TestLifecycle:
    def test_double_start_rejected(self):
        server = InferenceServer(_conv_model(), _config())
        server.start()
        try:
            with pytest.raises(ServeError):
                server.start()
        finally:
            server.close()

    def test_submit_after_close_raises(self):
        model = _conv_model()
        server = InferenceServer(model, _config())
        server.start()
        server.close()
        with pytest.raises(ServerClosedError):
            server.submit(np.zeros(model.input_shape))

    def test_close_fails_queued_requests(self):
        model = _conv_model()
        telem = Telemetry()
        server = InferenceServer(model, _config(), telemetry=telem)
        # Never started: submissions queue, close must fail them.
        req = server.submit(np.zeros(model.input_shape))
        server.close()
        with pytest.raises(ServerClosedError):
            req.result(timeout=1.0)
        assert telem.counters.get("serve.cancelled") == 1
        assert server.counters_balanced()

    def test_wrong_shape_rejected_at_submit(self):
        model = _conv_model()
        server = InferenceServer(model, _config())
        with pytest.raises(ServeError):
            server.submit(np.zeros((3, 5, 5)))
        server.close()

    def test_close_is_idempotent(self):
        server = InferenceServer(_conv_model(), _config())
        server.start()
        server.close()
        server.close()


class TestPoolValidation:
    def test_unknown_plan_family_rejected(self):
        with pytest.raises(ServeError):
            WarmEnginePool(_conv_model(), plan_family="zigzag")

    def test_guarded_sharding_rejected(self):
        with pytest.raises(ServeError):
            WarmEnginePool(_conv_model(), guarded=True, batch_shards=2)

    def test_oversized_batch_rejected(self):
        model = _conv_model()
        pool = WarmEnginePool(model, max_batch=2, autotune=False)
        with pytest.raises(ServeError):
            pool.run_batch(np.zeros((3, *model.input_shape)))

    def test_sharded_pool_matches_reference(self):
        model = _conv_model()
        pool = WarmEnginePool(
            model, max_batch=4, autotune=False, guarded=False, batch_shards=2
        )
        pool.warm()
        xb = synthetic_images(4, model.input_shape, seed=9)
        np.testing.assert_allclose(
            pool.run_batch(xb), model.reference_forward(xb),
            rtol=1e-10, atol=1e-10,
        )


class TestRequestSpans:
    def test_enabled_tracer_records_per_request_spans(self):
        model = _conv_model()
        telem = Telemetry()
        images = synthetic_images(5, model.input_shape, seed=10)
        with InferenceServer(model, _config(), telemetry=telem) as server:
            for x in images:
                server.submit(x).result(timeout=30.0)
        names = [s.name for s in telem.tracer.spans]
        assert "serve.warm" in names
        assert names.count("serve.request") == 5
        assert names.count("serve.execute") == 5
        assert "serve.queued" in names
        # The retroactive spans form a valid Chrome trace.
        from repro.telemetry import validate_chrome_trace

        assert validate_chrome_trace(telem.tracer.to_chrome_trace()) == []
