"""Disabled telemetry adds nothing to the per-request serve hot loop.

Same bar as ``tests/telemetry/test_overhead.py``, extended to serving: a
server built with no session (ambient :data:`NULL_TELEMETRY`) must not
allocate inside the telemetry modules while requests flow through
submit -> batch -> execute -> resolve.  Serve's own allocations (arrays,
futures, queue nodes) are fine — the filter scopes the snapshot to
``repro/telemetry`` files only.
"""

import tracemalloc

import numpy as np
import pytest

from repro.serve import InferenceServer, ServedModel, ServerConfig
from repro.telemetry import NULL_TELEMETRY, current_telemetry

pytestmark = pytest.mark.serve


def _model():
    rng = np.random.default_rng(0)
    w = rng.standard_normal((8, 8, 3, 3)) * 0.2
    return ServedModel.conv(w, (8, 8), activation="relu")


class TestServeZeroCostDisabled:
    def test_server_defaults_to_null_session(self):
        server = InferenceServer(_model(), ServerConfig(autotune=False))
        assert server.telemetry is NULL_TELEMETRY
        assert server.pool.telemetry is NULL_TELEMETRY
        assert current_telemetry() is NULL_TELEMETRY
        server.close()

    def test_request_path_allocates_nothing_in_telemetry(self):
        model = _model()
        config = ServerConfig(
            max_batch=4,
            max_wait_s=0.001,
            queue_depth=32,
            workers=1,
            autotune=False,
            guarded=True,
        )
        rng = np.random.default_rng(1)
        images = rng.standard_normal((8, *model.input_shape))
        with InferenceServer(model, config) as server:
            # Warm every code path first: engines, packs, lazy imports.
            server.submit(images[0]).result(timeout=30.0)

            telemetry_files = tracemalloc.Filter(True, "*/repro/telemetry/*")
            tracemalloc.start()
            try:
                before = tracemalloc.take_snapshot().filter_traces(
                    [telemetry_files]
                )
                reqs = [server.submit(x) for x in images]
                for req in reqs:
                    req.result(timeout=30.0)
                after = tracemalloc.take_snapshot().filter_traces(
                    [telemetry_files]
                )
            finally:
                tracemalloc.stop()
        growth = sum(
            stat.size_diff for stat in after.compare_to(before, "filename")
        )
        assert growth <= 0, (
            f"telemetry modules allocated {growth} bytes while disabled"
        )
