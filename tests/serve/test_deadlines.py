"""Deadline and backpressure paths, exercised deterministically.

The trick for determinism: :meth:`InferenceServer.submit` works before
:meth:`start`, so a test can stage an admission queue in any state it
likes — already-expired deadlines, exactly-full queues — and only then
let the workers loose.
"""

import time

import numpy as np
import pytest

from repro.common.errors import DeadlineExceededError, QueueFullError
from repro.serve import (
    InferenceServer,
    ServedModel,
    ServerConfig,
    poisson_arrivals,
)
from repro.telemetry import Telemetry

pytestmark = pytest.mark.serve


def _model(seed=0):
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((8, 8, 3, 3)) * 0.2
    return ServedModel.conv(w, (8, 8), activation="relu")


def _config(**overrides):
    base = dict(
        max_batch=4,
        max_wait_s=0.001,
        queue_depth=8,
        workers=1,
        autotune=False,
        guarded=True,
    )
    base.update(overrides)
    return ServerConfig(**base)


class TestDeadlines:
    def test_expired_request_fails_with_typed_error(self):
        model = _model()
        telem = Telemetry()
        server = InferenceServer(model, _config(), telemetry=telem)
        # Queue with an already-impossible deadline, then start the workers.
        req = server.submit(np.zeros(model.input_shape), deadline_s=0.0)
        time.sleep(0.01)
        server.start()
        with pytest.raises(DeadlineExceededError):
            req.result(timeout=10.0)
        server.close()
        assert telem.counters.get("serve.deadline_misses") == 1
        assert telem.counters.get("serve.completed") == 0
        assert server.counters_balanced()

    def test_expired_slot_is_reclaimed_for_live_neighbours(self):
        """A mixed batch sheds its expired members and still executes."""
        model = _model()
        telem = Telemetry()
        server = InferenceServer(model, _config(max_batch=4), telemetry=telem)
        doomed = server.submit(np.zeros(model.input_shape), deadline_s=0.0)
        live = [
            server.submit(x)
            for x in np.random.default_rng(1).standard_normal(
                (3, *model.input_shape)
            )
        ]
        time.sleep(0.01)
        server.start()
        with pytest.raises(DeadlineExceededError):
            doomed.result(timeout=10.0)
        outs = [r.result(timeout=10.0) for r in live]
        server.close()
        assert all(out is not None for out in outs)
        assert telem.counters.get("serve.deadline_misses") == 1
        assert telem.counters.get("serve.completed") == 3
        # The shed slot shrank the executed batch: 4 queued, 3 executed.
        assert telem.counters.get("serve.batch_size") == 3
        assert server.counters_balanced()

    def test_default_deadline_comes_from_config(self):
        model = _model()
        telem = Telemetry()
        server = InferenceServer(
            model, _config(default_deadline_s=0.0), telemetry=telem
        )
        req = server.submit(np.zeros(model.input_shape))
        assert req.deadline is not None
        time.sleep(0.01)
        server.start()
        with pytest.raises(DeadlineExceededError):
            req.result(timeout=10.0)
        server.close()

    def test_completed_request_reports_latency(self):
        model = _model()
        with InferenceServer(model, _config()) as server:
            req = server.submit(np.zeros(model.input_shape), deadline_s=30.0)
            req.result(timeout=10.0)
            assert req.latency_s is not None and req.latency_s >= 0
            assert req.batch_size is not None and req.batch_size >= 1


class TestBackpressure:
    def test_full_queue_rejects_with_typed_error(self):
        model = _model()
        telem = Telemetry()
        server = InferenceServer(
            model, _config(queue_depth=2), telemetry=telem
        )
        # Workers not started: the queue cannot drain under us.
        server.submit(np.zeros(model.input_shape))
        server.submit(np.zeros(model.input_shape))
        with pytest.raises(QueueFullError):
            server.submit(np.zeros(model.input_shape))
        assert telem.counters.get("serve.rejected") == 1
        assert telem.counters.get("serve.requests") == 3
        # The rejected request's future is failed too.
        server.start()
        server.close()
        assert server.counters_balanced()

    def test_rejected_slot_is_usable_after_drain(self):
        model = _model()
        server = InferenceServer(model, _config(queue_depth=1))
        first = server.submit(np.zeros(model.input_shape))
        with pytest.raises(QueueFullError):
            server.submit(np.zeros(model.input_shape))
        server.start()  # workers drain the queue, freeing the slot
        first.result(timeout=10.0)
        second = server.submit(np.zeros(model.input_shape))
        assert second.result(timeout=10.0) is not None
        server.close()


class TestSeededArrivals:
    def test_same_seed_replays_identical_offsets(self):
        a = poisson_arrivals(64, rate_rps=1000.0, seed=7)
        b = poisson_arrivals(64, rate_rps=1000.0, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = poisson_arrivals(64, rate_rps=1000.0, seed=7)
        b = poisson_arrivals(64, rate_rps=1000.0, seed=8)
        assert not np.array_equal(a, b)

    def test_offsets_are_sorted_and_mean_matches_rate(self):
        offsets = poisson_arrivals(4096, rate_rps=1000.0, seed=0)
        assert np.all(np.diff(offsets) >= 0)
        mean_gap = offsets[-1] / len(offsets)
        assert 0.0008 < mean_gap < 0.0012
