"""The chaos-serve harness: availability, parity audit, report schema."""

import pytest

from repro.faults import (
    default_chaos_serve_faults,
    run_chaos_serve,
    validate_chaos_serve_report,
)

pytestmark = [pytest.mark.serve, pytest.mark.faults]


@pytest.fixture(scope="module")
def report():
    """One shared small chaos run — the assertions all read, never mutate."""
    return run_chaos_serve(
        fault_spec=default_chaos_serve_faults(),
        n_requests=64,
        rate_rps=4000.0,
    )


class TestChaosServeRun:
    def test_availability_with_zero_wrong_answers(self, report):
        # The resilience contract: under a fault plan that hangs ~45% of
        # staged DMAs and fences two CPEs, every request still gets a
        # bit-identical answer or a typed rejection.
        assert report.offered == 64
        assert report.availability >= 0.99
        assert report.wrong_answers == 0
        assert report.zero_wrong_answers
        assert report.counters_balanced

    def test_breaker_cycled_under_faults(self, report):
        assert report.breaker_opened >= 1
        assert any("closed->open" in t for t in report.breaker_transitions)

    def test_recovery_machinery_engaged(self, report):
        # At a ~45% per-attempt failure rate, retries must have fired; the
        # taxonomy tallies must cover everything offered.
        assert report.retries >= 1
        answered = (
            report.completed
            + report.shed
            + report.rejected
            + report.deadline_misses
        )
        assert answered + report.errors <= report.offered
        assert report.completed >= 1

    def test_latency_recorded_for_both_phases(self, report):
        assert report.p99_ms_fault > 0.0
        assert report.p99_ms_clean > 0.0
        assert report.p50_ms_fault <= report.p99_ms_fault
        assert report.p50_ms_clean <= report.p99_ms_clean

    def test_as_dict_passes_schema(self, report):
        assert validate_chaos_serve_report(report.as_dict()) == []

    def test_render_summarizes(self, report):
        text = report.render()
        assert "availability" in text
        assert "wrong answers: 0" in text
        assert "breaker" in text


class TestSchemaValidation:
    def _valid(self, report):
        return report.as_dict()

    def test_missing_key_reported(self, report):
        payload = self._valid(report)
        del payload["availability"]
        errors = validate_chaos_serve_report(payload)
        assert any("availability" in e for e in errors)

    def test_wrong_type_reported(self, report):
        payload = self._valid(report)
        payload["completed"] = "many"
        errors = validate_chaos_serve_report(payload)
        assert any("completed" in e for e in errors)

    def test_wrong_answers_must_be_zero(self, report):
        payload = self._valid(report)
        payload["wrong_answers"] = 1
        errors = validate_chaos_serve_report(payload)
        assert any("wrong answer" in e for e in errors)

    def test_availability_bounds_checked(self, report):
        payload = self._valid(report)
        payload["availability"] = 1.5
        errors = validate_chaos_serve_report(payload)
        assert any("availability" in e for e in errors)

    def test_unbalanced_counters_reported(self, report):
        payload = self._valid(report)
        payload["counters_balanced"] = False
        errors = validate_chaos_serve_report(payload)
        assert any("balance" in e for e in errors)

    def test_malformed_transition_labels_reported(self, report):
        payload = self._valid(report)
        payload["breaker_transitions"] = ["opened!"]
        errors = validate_chaos_serve_report(payload)
        assert any("transition" in e for e in errors)
