"""Circuit breaker state machine: trip, cooldown, probing, recovery."""

import pytest

from repro.common.errors import ServeError
from repro.serve import BreakerPolicy, CircuitBreaker
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN
from repro.telemetry import Telemetry

pytestmark = pytest.mark.serve


class FakeClock:
    """Injectable clock: the cooldown tests advance time by hand."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _breaker(telemetry=None, **overrides):
    base = dict(
        window=8,
        failure_threshold=0.5,
        min_samples=4,
        cooldown_s=1.0,
        probe_fraction=1.0,
        close_after=2,
        seed=0,
    )
    base.update(overrides)
    clock = FakeClock()
    breaker = CircuitBreaker(
        BreakerPolicy(**base),
        telemetry=telemetry or Telemetry(),
        clock=clock,
    )
    return breaker, clock


class TestPolicyValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ServeError):
            BreakerPolicy(window=0)
        with pytest.raises(ServeError):
            BreakerPolicy(failure_threshold=0.0)
        with pytest.raises(ServeError):
            BreakerPolicy(failure_threshold=1.5)
        with pytest.raises(ServeError):
            BreakerPolicy(window=4, min_samples=5)
        with pytest.raises(ServeError):
            BreakerPolicy(min_samples=0)
        with pytest.raises(ServeError):
            BreakerPolicy(cooldown_s=-1.0)
        with pytest.raises(ServeError):
            BreakerPolicy(probe_fraction=0.0)
        with pytest.raises(ServeError):
            BreakerPolicy(close_after=0)


class TestTripping:
    def test_closed_admits_everything(self):
        breaker, _ = _breaker()
        assert breaker.state == CLOSED
        assert all(breaker.admit() == "admit" for _ in range(10))

    def test_no_trip_below_min_samples(self):
        breaker, _ = _breaker(min_samples=4)
        for _ in range(3):
            breaker.record_failure()
        # 100% failure rate, but only 3 samples: not enough evidence.
        assert breaker.state == CLOSED

    def test_trips_at_threshold_over_min_samples(self):
        breaker, _ = _breaker(failure_threshold=0.5, min_samples=4)
        breaker.record_success()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()  # 2/4 = 0.5 >= threshold
        assert breaker.state == OPEN
        assert breaker.admit() == "shed"
        assert breaker.transitions[0][1] == "closed->open"

    def test_successes_dilute_below_threshold(self):
        breaker, _ = _breaker(failure_threshold=0.5, min_samples=4, window=8)
        for _ in range(6):
            breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        # 2/8 = 0.25 < 0.5: the window keeps it closed.
        assert breaker.state == CLOSED

    def test_sliding_window_forgets_old_failures(self):
        breaker, _ = _breaker(window=4, min_samples=4, failure_threshold=1.0)
        for _ in range(3):
            breaker.record_failure()
        for _ in range(4):
            breaker.record_success()
        # The failures slid out of the 4-wide window entirely.
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CLOSED


class TestRecovery:
    def _tripped(self, **overrides):
        breaker, clock = _breaker(**overrides)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        return breaker, clock

    def test_open_until_cooldown_then_half_open(self):
        breaker, clock = self._tripped(cooldown_s=1.0)
        assert breaker.admit() == "shed"
        clock.advance(0.5)
        assert breaker.state == OPEN  # cooldown not yet elapsed
        clock.advance(0.5)
        assert breaker.state == HALF_OPEN  # checked lazily, no timer thread
        assert (1, "open->half-open") in breaker.transitions

    def test_half_open_admits_probes(self):
        breaker, clock = self._tripped(probe_fraction=1.0)
        clock.advance(1.0)
        assert breaker.admit() == "probe"

    def test_probe_successes_close(self):
        telem = Telemetry()
        breaker, clock = self._tripped(telemetry=telem, close_after=2)
        clock.advance(1.0)
        assert breaker.admit() == "probe"
        breaker.record_success(probe=True)
        assert breaker.state == HALF_OPEN  # one success is not enough
        breaker.record_success(probe=True)
        assert breaker.state == CLOSED
        assert [t[1] for t in breaker.transitions] == [
            "closed->open", "open->half-open", "half-open->closed",
        ]
        assert telem.counters.get("serve.breaker.opened") == 1
        assert telem.counters.get("serve.breaker.half_opened") == 1
        assert telem.counters.get("serve.breaker.closed") == 1

    def test_one_probe_failure_reopens(self):
        breaker, clock = self._tripped()
        clock.advance(1.0)
        assert breaker.admit() == "probe"
        breaker.record_success(probe=True)
        breaker.record_failure(probe=True)
        assert breaker.state == OPEN
        # The fresh OPEN restarts the cooldown on the advanced clock.
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN

    def test_non_probe_outcomes_do_not_close_half_open(self):
        breaker, clock = self._tripped(close_after=1)
        clock.advance(1.0)
        for _ in range(5):
            breaker.record_success(probe=False)
        # Only probe outcomes drive recovery.
        assert breaker.state == HALF_OPEN


class TestSeededProbing:
    def test_probe_admission_replays_bit_identically(self):
        verdicts = []
        for _ in range(2):
            breaker, clock = _breaker(probe_fraction=0.5, min_samples=4, seed=7)
            for _ in range(4):
                breaker.record_failure()
            clock.advance(1.0)
            verdicts.append([breaker.admit() for _ in range(32)])
        assert verdicts[0] == verdicts[1]
        assert "probe" in verdicts[0] and "shed" in verdicts[0]

    def test_shed_and_probe_counters(self):
        telem = Telemetry()
        breaker, clock = _breaker(
            telemetry=telem, probe_fraction=0.5, min_samples=4, seed=7
        )
        for _ in range(4):
            breaker.record_failure()
        breaker.admit()  # shed while OPEN
        clock.advance(1.0)
        verdicts = [breaker.admit() for _ in range(32)]
        assert telem.counters.get("serve.breaker.probes") == verdicts.count("probe")
        assert (
            telem.counters.get("serve.breaker.shed")
            == verdicts.count("shed") + 1
        )


class TestIntrospection:
    def test_transition_seqs_strictly_increase(self):
        breaker, clock = _breaker(close_after=1)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(1.0)
        breaker.admit()
        breaker.record_success(probe=True)
        seqs = [seq for seq, _ in breaker.transitions]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_as_dict_snapshot(self):
        breaker, _ = _breaker()
        breaker.record_failure()
        snap = breaker.as_dict()
        assert snap["state"] == CLOSED
        assert snap["window"] == [True]
        assert snap["transitions"] == []
