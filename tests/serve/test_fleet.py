"""Multi-chip fleet: routing, SLO formation, autoscaling, bit-identity.

The fleet's contracts, each pinned by a test class below:

* the router is deterministic (seeded tie-breaks, affinity homes, load-
  aware spill) and sheds with a *typed* error when no chip is routable;
* SLO-class batch formation puts latency-class requests at the head of
  the batch, FIFO within a class, without disturbing the default FIFO
  path bit-for-bit;
* the autoscaler is a pure streak machine over (queued, active, busy);
* a fleet answer is bit-identical to the single-chip server's answer for
  the same image — in-process and across process restarts;
* every front-door submission is accounted: routed to exactly one chip's
  balanced counters, or counted shed/rejected.
"""

import json
import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro.common.errors import ServeError, ShedError
from repro.serve import (
    Autoscaler,
    AutoscalerPolicy,
    BatchPolicy,
    CacheAffinityRouter,
    DynamicBatcher,
    FleetConfig,
    FleetServer,
    InferenceRequest,
    ServedModel,
    bursty_arrivals,
    diurnal_arrivals,
    fleet_workload,
    make_arrivals,
    run_fleet_load,
    synthetic_images,
)
from repro.serve.fleet import ROUTE_AFFINITY, ROUTE_COLD, ROUTE_FAILOVER, ROUTE_SPILL
from repro.serve.validate import validate_fleet_report
from repro.telemetry import Telemetry, use_telemetry

pytestmark = pytest.mark.serve


def _models(n=2, seed=7, image=8, ni=4):
    rng = np.random.default_rng(seed)
    models = {}
    for i in range(n):
        w = rng.standard_normal((4 + 2 * i, ni, 3, 3)) * 0.2
        model = ServedModel.conv(w, (image, image), name=f"m{i}")
        models[model.name] = model
    return models


class TestCacheAffinityRouter:
    def test_brownout_is_a_typed_shed(self):
        router = CacheAffinityRouter()
        with pytest.raises(ShedError):
            router.route("m0", {})

    def test_affinity_hit_returns_home(self):
        router = CacheAffinityRouter()
        router.assign("m0", 2)
        chip, reason = router.route("m0", {0: 5, 1: 0, 2: 9})
        assert (chip, reason) == (2, ROUTE_AFFINITY)

    def test_cold_routes_least_loaded(self):
        router = CacheAffinityRouter()
        chip, reason = router.route("m0", {0: 3, 1: 1, 2: 4})
        assert (chip, reason) == (1, ROUTE_COLD)
        # The cold decision set the home: the next route is an affinity hit.
        assert router.route("m0", {0: 0, 1: 2, 2: 0})[1] == ROUTE_AFFINITY

    def test_failover_when_home_vanishes(self):
        router = CacheAffinityRouter()
        router.assign("m0", 1)
        chip, reason = router.route("m0", {0: 0, 2: 3})
        assert reason == ROUTE_FAILOVER
        assert chip == 0
        # Failover re-homes: the dead chip is forgotten.
        assert router.homes["m0"] == 0

    def test_spill_rehomes_when_home_is_drowning(self):
        router = CacheAffinityRouter(spill_depth=4, spill_margin=2)
        router.assign("m0", 0)
        # Deep home but everyone is equally deep: stay (no margin).
        assert router.route("m0", {0: 6, 1: 5})[1] == ROUTE_AFFINITY
        # Deep home, idle neighbour: spill and re-home.
        chip, reason = router.route("m0", {0: 6, 1: 0})
        assert (chip, reason) == (1, ROUTE_SPILL)
        assert router.homes["m0"] == 1

    def test_cold_tiebreak_is_seed_deterministic(self):
        loads = {0: 0, 1: 0, 2: 0, 3: 0}
        names = [f"m{i}" for i in range(12)]
        a = CacheAffinityRouter(seed=3)
        b = CacheAffinityRouter(seed=3)
        placed_a = [a.route(name, loads)[0] for name in names]
        placed_b = [b.route(name, loads)[0] for name in names]
        assert placed_a == placed_b


class TestAutoscaler:
    def test_sustained_backlog_scales_up(self):
        scaler = Autoscaler(AutoscalerPolicy(backlog_per_chip=4, scale_up_after=3))
        assert scaler.observe(40, 2) == "hold"
        assert scaler.observe(40, 2) == "hold"
        assert scaler.observe(40, 2) == "up"
        # The streak resets after the decision fires.
        assert scaler.observe(40, 3) == "hold"

    def test_blip_does_not_scale(self):
        scaler = Autoscaler(AutoscalerPolicy(backlog_per_chip=4, scale_up_after=3))
        scaler.observe(40, 2)
        scaler.observe(40, 2)
        assert scaler.observe(0, 2) == "hold"
        assert scaler.observe(40, 2) == "hold"  # streak restarted

    def test_sustained_idle_parks(self):
        scaler = Autoscaler(
            AutoscalerPolicy(min_chips=1, park_after=3, park_backlog_per_chip=0.5)
        )
        decisions = [scaler.observe(0, 2) for _ in range(3)]
        assert decisions == ["hold", "hold", "park"]

    def test_busy_chips_do_not_park(self):
        # Queue depth near zero but every chip mid-batch: utilization, not
        # idleness — the busy signal must veto the park.
        scaler = Autoscaler(
            AutoscalerPolicy(min_chips=1, park_after=2, park_backlog_per_chip=0.5)
        )
        assert scaler.observe(0, 2, busy=2) == "hold"
        assert scaler.observe(0, 2, busy=2) == "hold"
        assert scaler.observe(0, 2, busy=2) == "hold"


class TestArrivalPatterns:
    @pytest.mark.parametrize("pattern", ["poisson", "bursty", "diurnal"])
    def test_deterministic_sorted_nonnegative(self, pattern):
        a = make_arrivals(pattern, 500, 1000.0, seed=5)
        b = make_arrivals(pattern, 500, 1000.0, seed=5)
        assert np.array_equal(a, b)
        assert len(a) == 500
        assert (np.diff(a) >= 0).all()
        assert (a >= 0).all()

    def test_unknown_pattern_is_typed(self):
        with pytest.raises(ServeError):
            make_arrivals("lunar", 10, 100.0)

    def test_bursty_is_burstier_than_poisson(self):
        # The MMPP's coefficient of variation of inter-arrival gaps must
        # exceed the exponential's ~1 — that's what "bursty" means.
        bursty = np.diff(bursty_arrivals(20000, 1000.0, seed=1))
        poisson = np.diff(make_arrivals("poisson", 20000, 1000.0, seed=1))
        cv_bursty = bursty.std() / bursty.mean()
        cv_poisson = poisson.std() / poisson.mean()
        assert cv_bursty > cv_poisson * 1.08
        assert cv_bursty > 1.1

    def test_diurnal_rate_oscillates(self):
        arr = diurnal_arrivals(20000, 1000.0, seed=2, period_s=4.0, depth=0.8)
        # Per-second arrival counts through two periods must swing well
        # above and below the mean rate.
        counts = np.histogram(arr, bins=np.arange(0.0, 8.0, 0.5))[0] * 2
        assert counts.max() > 1400
        assert counts.min() < 600


class TestSLOFormation:
    @staticmethod
    def _batcher(latency_wait):
        policy = BatchPolicy(
            max_batch=8, max_wait_s=0.05,
            latency_max_wait_s=latency_wait, latency_priority=1,
        )
        return DynamicBatcher(policy=policy, queue_depth=16, telemetry=Telemetry())

    def test_latency_class_heads_the_batch(self):
        batcher = self._batcher(0.0)
        for rid, priority in ((0, 0), (1, 0), (2, 1), (3, 1)):
            batcher.offer(InferenceRequest(rid, np.zeros(1), priority=priority))
        batch = batcher.next_batch()
        # Priority-first, FIFO within class.
        assert [r.request_id for r in batch] == [2, 3, 0, 1]

    def test_default_policy_keeps_pure_fifo(self):
        policy = BatchPolicy(max_batch=8, max_wait_s=0.0)
        batcher = DynamicBatcher(policy=policy, queue_depth=16, telemetry=Telemetry())
        for rid, priority in ((0, 0), (1, 1), (2, 0)):
            batcher.offer(InferenceRequest(rid, np.zeros(1), priority=priority))
        assert [r.request_id for r in batcher.next_batch()] == [0, 1, 2]


class TestFleetEndToEnd:
    @pytest.fixture(scope="class")
    def rig(self):
        telemetry = Telemetry()
        models = _models(3)
        images = {
            name: synthetic_images(4, model.input_shape, seed=11)
            for name, model in models.items()
        }
        workload = fleet_workload(
            sorted(models), 36, 4000.0, pattern="bursty", seed=9,
            images_per_model=4,
        )
        with use_telemetry(telemetry):
            fleet = FleetServer(
                models,
                FleetConfig(chips=2, max_batch=4, seed=0),
                telemetry=telemetry,
            )
            with fleet:
                fleet.prewarm()
                report, outputs = run_fleet_load(fleet, workload, images)
                accounting = fleet.accounting()
        return telemetry, fleet, workload, report, outputs, accounting, images

    def test_everything_completed_and_balanced(self, rig):
        _, fleet, _, report, outputs, accounting, _ = rig
        assert report.completed == report.offered == 36
        assert report.errors == 0
        assert accounting["balanced"]
        assert fleet.counters_balanced()
        assert all(out is not None for out in outputs)

    def test_prewarm_makes_the_trace_all_affinity_hits(self, rig):
        _, _, _, report, _, _, _ = rig
        assert report.affinity["hit_rate"] >= 0.9
        assert report.affinity["cold"] == 0

    def test_per_chip_counters_cover_the_trace(self, rig):
        telemetry, _, _, _, _, accounting, _ = rig
        counters = telemetry.counters
        total = sum(
            counters.get(f"serve.chip.{i}.requests") for i in (0, 1)
        )
        assert total == 36
        for i in (0, 1):
            assert counters.get(f"serve.chip.{i}.requests") > 0
            assert accounting["chips"][i]["requests"] == counters.get(
                f"serve.chip.{i}.requests"
            )

    def test_route_decide_in_the_causal_chain(self, rig):
        telemetry, _, _, _, _, _, _ = rig
        flight = telemetry.flight
        decides = [e for e in flight.events() if e.kind == "route.decide"]
        assert len(decides) == 36
        sample = decides[0]
        assert sample.args["reason"] in ("affinity", "cold", "failover", "spill")
        chain = flight.chain(sample.args["request"])
        assert any(e.kind == "route.decide" for e in chain)
        assert any(e.kind == "batch.form" for e in chain)
        text = flight.explain(sample.args["request"])
        assert "route.decide" in text

    def test_fleet_matches_single_chip_bit_for_bit(self, rig):
        _, _, workload, _, outputs, _, images = rig
        telemetry = Telemetry()
        models = _models(3)
        with use_telemetry(telemetry):
            single = FleetServer(
                models,
                FleetConfig(chips=1, max_batch=4, seed=0),
                telemetry=telemetry,
            )
            with single:
                single.prewarm()
                _, single_outputs = run_fleet_load(single, workload, images)
        for fleet_out, single_out in zip(outputs, single_outputs):
            assert fleet_out is not None and single_out is not None
            assert np.array_equal(fleet_out, single_out)


class TestFleetDegradedRouting:
    def test_all_chips_quarantined_is_a_typed_brownout(self):
        telemetry = Telemetry()
        models = _models(1)
        x = synthetic_images(1, models["m0"].input_shape, seed=1)[0]
        with use_telemetry(telemetry):
            fleet = FleetServer(
                models, FleetConfig(chips=2, max_batch=2), telemetry=telemetry
            )
            with fleet:
                fleet.quarantine_chip(0)
                fleet.quarantine_chip(1)
                with pytest.raises(ShedError):
                    fleet.submit(x, model="m0")
                assert fleet.counters_balanced()
        counters = telemetry.counters
        assert counters.get("serve.fleet.shed") == 1
        assert counters.get("serve.fleet.requests") == 1

    def test_kill_chip_fails_over_and_stays_correct(self):
        telemetry = Telemetry()
        models = _models(2)
        images = {
            name: synthetic_images(2, model.input_shape, seed=3)
            for name, model in models.items()
        }
        with use_telemetry(telemetry):
            fleet = FleetServer(
                models, FleetConfig(chips=2, max_batch=2), telemetry=telemetry
            )
            with fleet:
                fleet.prewarm()
                homes = dict(fleet.router.homes)
                victim = homes["m0"]
                fleet.kill_chip(victim)
                req = fleet.submit(images["m0"][0], model="m0")
                out = req.result(timeout=30.0)
                assert fleet.counters_balanced()
        reference = models["m0"].reference_forward(images["m0"][:1])[0]
        assert np.array_equal(out, reference)
        assert telemetry.counters.get("serve.fleet.routed.failover") == 1
        assert telemetry.counters.get("serve.fleet.chip_deaths") == 1
        deaths = [
            e for e in telemetry.flight.events()
            if e.kind == "fleet.scale" and e.args.get("action") == "dead"
        ]
        assert len(deaths) == 1 and deaths[0].args["chip"] == victim


class TestFleetAutoscale:
    def test_manual_ticks_scale_up_then_park(self):
        telemetry = Telemetry()
        models = _models(2)
        images = {
            name: synthetic_images(2, model.input_shape, seed=5)
            for name, model in models.items()
        }
        policy = AutoscalerPolicy(
            min_chips=1, backlog_per_chip=1.0, scale_up_after=2,
            park_after=2, park_backlog_per_chip=0.5,
        )
        with use_telemetry(telemetry):
            fleet = FleetServer(
                models,
                FleetConfig(
                    chips=2, max_batch=2, autoscale=True, autoscaler=policy,
                    autoscale_tick_s=None,
                ),
                telemetry=telemetry,
            )
            with fleet:
                assert fleet.active_chips() == [0]
                reqs = [
                    fleet.submit(images[name][i], model=name)
                    for name in sorted(models) for i in (0, 1)
                ]
                # Sustained backlog on the tick stream scales up...
                decisions = {fleet.autoscale_tick() for _ in range(3)}
                for req in reqs:
                    req.result(timeout=30.0)
                drained = [fleet.autoscale_tick() for _ in range(4)]
        assert "up" in decisions or "up" in drained
        # ...and a drained fleet parks back down to min_chips.
        assert "park" in drained
        assert telemetry.counters.get("serve.fleet.scale.up") >= 1
        assert telemetry.counters.get("serve.fleet.scale.park") >= 1
        scale_events = [
            e for e in telemetry.flight.events() if e.kind == "fleet.scale"
        ]
        assert {e.args["action"] for e in scale_events} >= {"up", "park"}


_CHILD = r"""
import hashlib
import sys

sys.path.insert(0, sys.argv[1])
import numpy as np

from repro.serve import (
    FleetConfig, FleetServer, ServedModel, fleet_workload, run_fleet_load,
    synthetic_images,
)
from repro.telemetry import Telemetry, use_telemetry

chips = int(sys.argv[2])
rng = np.random.default_rng(7)
models = {}
for i in range(2):
    w = rng.standard_normal((4 + 2 * i, 4, 3, 3)) * 0.2
    model = ServedModel.conv(w, (8, 8), name=f"m{i}")
    models[model.name] = model
images = {
    name: synthetic_images(4, model.input_shape, seed=11)
    for name, model in models.items()
}
workload = fleet_workload(
    sorted(models), 24, 4000.0, pattern="bursty", seed=9, images_per_model=4
)
telemetry = Telemetry()
with use_telemetry(telemetry):
    fleet = FleetServer(
        models, FleetConfig(chips=chips, max_batch=4, seed=0),
        telemetry=telemetry,
    )
    with fleet:
        fleet.prewarm()
        _, outputs = run_fleet_load(fleet, workload, images)
digest = hashlib.sha256()
for out in outputs:
    assert out is not None
    digest.update(np.ascontiguousarray(out).tobytes())
print(digest.hexdigest())
"""


class TestCrossProcessBitIdentity:
    def test_fleet_outputs_survive_process_restarts(self):
        import repro

        pkg_root = str(pathlib.Path(repro.__file__).parents[1])

        def run(chips):
            out = subprocess.run(
                [sys.executable, "-c", _CHILD, pkg_root, str(chips)],
                capture_output=True, text=True, check=True,
            )
            return out.stdout.strip()

        first = run(2)
        second = run(2)
        single = run(1)
        # Same trace, fresh process: bit-identical outputs — and the
        # 2-chip fleet matches the single-chip server byte for byte.
        assert first == second == single


@pytest.mark.faults
class TestChaosFleet:
    def test_chip_loss_routes_around_with_zero_wrong_answers(self):
        from repro.faults import run_chaos_fleet

        report = run_chaos_fleet(chips=3, n_requests=40, rate_rps=1500.0)
        assert report.zero_wrong_answers
        assert report.counters_balanced
        assert report.errors == 0
        assert report.failovers >= 1
        assert report.chip_deaths == 1
        assert report.chip_states[report.killed_chip] == "dead"
        payload = report.as_dict()
        assert payload == json.loads(json.dumps(payload))


class TestFleetReportSchema:
    @staticmethod
    def _payload():
        row = {
            "chips": 1, "offered_rps": 100.0, "throughput_rps": 90.0,
            "p50_ms": 1.0, "p99_ms": 2.0, "affinity_hit_rate": 0.95,
            "mean_batch": 4.0,
        }
        return {
            "schema": "repro.fleet/v1",
            "rows": [
                dict(row),
                {**row, "chips": 2, "throughput_rps": 180.0},
                {**row, "chips": 4, "throughput_rps": 360.0},
            ],
            "scaling_4chip": 4.0,
            "p99_ratio_4v1": 1.0,
            "affinity_hit_rate": 0.95,
            "real_fleet": {
                "chips": 2, "requests": 36, "completed": 36,
                "wrong_answers": 0, "bit_identical": True,
                "counters_balanced": True, "affinity_hit_rate": 0.95,
            },
            "diurnal": {
                "requests": 1000, "chips": 4, "min_chips": 1,
                "scale_ups": 3, "scale_parks": 2, "mean_active_chips": 2.5,
                "p99_ms": 5.0, "static_p99_ms": 4.0,
            },
        }

    def test_valid_payload_passes(self):
        assert validate_fleet_report(self._payload()) == []

    @pytest.mark.parametrize(
        "mutate, needle",
        [
            (lambda p: p.update(scaling_4chip=2.0), "scaling_4chip"),
            (lambda p: p.update(p99_ratio_4v1=2.0), "p99_ratio"),
            (lambda p: p.update(affinity_hit_rate=0.5), "affinity_hit_rate"),
            (lambda p: p["real_fleet"].update(wrong_answers=1), "wrong answer"),
            (lambda p: p["real_fleet"].update(bit_identical=False), "bit-identical"),
            (lambda p: p["diurnal"].update(scale_parks=0), "parked"),
            (lambda p: p.pop("real_fleet"), "real_fleet"),
        ],
    )
    def test_each_bar_is_enforced(self, mutate, needle):
        payload = self._payload()
        mutate(payload)
        violations = validate_fleet_report(payload)
        assert violations
        assert any(needle in v for v in violations)

    def test_payload_is_json_round_trippable(self):
        payload = self._payload()
        assert json.loads(json.dumps(payload)) == payload
