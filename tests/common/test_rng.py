"""Deterministic RNG derivation."""

import numpy as np

from repro.common.rng import derive_rng, make_rng


class TestMakeRng:
    def test_deterministic(self):
        assert make_rng(7).integers(1 << 30) == make_rng(7).integers(1 << 30)

    def test_different_seeds_differ(self):
        draws_a = make_rng(1).integers(1 << 30, size=8)
        draws_b = make_rng(2).integers(1 << 30, size=8)
        assert not np.array_equal(draws_a, draws_b)


class TestDeriveRng:
    def test_same_keys_same_stream(self):
        a = derive_rng(42, "fig7", 128, 256).standard_normal(4)
        b = derive_rng(42, "fig7", 128, 256).standard_normal(4)
        assert np.array_equal(a, b)

    def test_different_keys_different_stream(self):
        a = derive_rng(42, "fig7", 128, 256).standard_normal(4)
        b = derive_rng(42, "fig7", 128, 257).standard_normal(4)
        assert not np.array_equal(a, b)

    def test_order_sensitive(self):
        a = derive_rng(42, 1, 2).standard_normal(4)
        b = derive_rng(42, 2, 1).standard_normal(4)
        assert not np.array_equal(a, b)
