"""ASCII chart renderers."""

import pytest

from repro.common.charts import bar_chart, series_chart


class TestBarChart:
    def test_rows(self):
        text = bar_chart(["a", "bb"], [1.0, 2.0])
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") > lines[0].count("#")

    def test_scaling_to_max(self):
        text = bar_chart(["x"], [5.0], width=10)
        assert text.count("#") == 10

    def test_explicit_max(self):
        text = bar_chart(["x"], [5.0], width=10, max_value=10.0)
        assert text.count("#") == 5

    def test_unit_suffix(self):
        assert "2.00x" in bar_chart(["a"], [2.0], unit="x")

    def test_empty(self):
        assert bar_chart([], []) == "(no data)"

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])


class TestSeriesChart:
    def test_two_series_two_glyphs(self):
        text = series_chart(
            [("up", [1, 2, 3, 4]), ("flat", [2, 2, 2, 2])], height=6
        )
        assert "*" in text and "o" in text
        assert "up" in text and "flat" in text

    def test_axis_labels_descend(self):
        text = series_chart([("s", [0.0, 10.0])], height=5)
        values = [
            float(line.split("|")[0]) for line in text.splitlines() if "|" in line
        ]
        assert values == sorted(values, reverse=True)

    def test_empty(self):
        assert series_chart([]) == "(no data)"

    def test_validation(self):
        with pytest.raises(ValueError):
            series_chart([("s", [1.0])], height=1)

    def test_fig7_style_render(self):
        """The real integration: Fig. 7's render embeds a series chart."""
        from repro.experiments import fig7
        from repro.experiments.configs import fig8_left

        summary = fig7.run(configs=fig8_left()[::10])
        text = fig7.render(summary)
        assert "Tflops vs configuration" in text
        assert "swDNN" in text
