"""Top-level package surface: lazy exports, error hierarchy, CPE counters."""

import numpy as np
import pytest

import repro
from repro.common.errors import (
    BusProtocolError,
    LDMOverflowError,
    PlanError,
    RegisterPressureError,
    ReproError,
    SimulationError,
)
from repro.hw.cpe import CPE


class TestLazyExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_lazy_attributes_resolve(self):
        assert repro.ConvParams(ni=1, no=1, ri=1, ci=1, kr=1, kc=1, b=1)
        assert callable(repro.conv_forward)
        assert callable(repro.plan_convolution)
        assert repro.PerformanceModel is not None
        assert repro.ConvolutionEngine is not None

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_all_list_matches_lazy_table(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            LDMOverflowError,
            RegisterPressureError,
            PlanError,
            SimulationError,
            BusProtocolError,
        ):
            assert issubclass(exc, ReproError)

    def test_bus_error_is_simulation_error(self):
        assert issubclass(BusProtocolError, SimulationError)

    def test_catchable_as_library_failure(self):
        from repro.core.params import ConvParams

        with pytest.raises(ReproError):
            ConvParams(ni=1, no=1, ri=1, ci=1, kr=1, kc=1, b=1).with_rows(5)


class TestCPECounters:
    def test_fma_tile_accounts_flops(self, rng):
        cpe = CPE(0, 0)
        acc = np.zeros((2, 3))
        a = rng.standard_normal((2, 4))
        b = rng.standard_normal((4, 3))
        cpe.fma_tile(acc, a, b)
        assert np.allclose(acc, a @ b)
        assert cpe.stats.flops == 2 * 2 * 3 * 4

    def test_ldm_counters(self):
        cpe = CPE(1, 2)
        cpe.count_ldm_load(64)
        cpe.count_ldm_store(32)
        assert cpe.stats.ldm_bytes_loaded == 64
        assert cpe.stats.ldm_bytes_stored == 32
        cpe.stats.reset()
        assert cpe.stats.flops == 0

    def test_coords(self):
        assert CPE(3, 5).coords == (3, 5)
