"""Deterministic multiprocessing fan-out (`repro.common.parallel`)."""

import os
import time

import pytest

from repro.common.errors import JobTimeoutError, ReproError, WorkerError
from repro.common.parallel import (
    JOBS_ENV_VAR,
    default_jobs,
    parallel_map,
    resolve_jobs,
)


def _square(x: int) -> int:
    return x * x


def _explode_on_three(x: int) -> int:
    if x == 3:
        raise ValueError(f"cannot process {x}")
    return x * x


def _flaky(job) -> int:
    """Fails until its marker file exists; succeeds on retry."""
    x, marker_dir = job
    marker = os.path.join(marker_dir, f"seen-{x}")
    if x == 2 and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("attempted\n")
        raise RuntimeError("transient failure")
    return x * x


def _crash_once(job) -> int:
    """Kills its worker process outright on the first attempt for x == 1."""
    x, marker_dir = job
    marker = os.path.join(marker_dir, f"crashed-{x}")
    if x == 1 and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("crashing\n")
        os._exit(1)
    return x * x


def _hang_on_seven(x: int) -> int:
    if x == 7:
        time.sleep(60)
    return x


def _flaky_order(x: float) -> float:
    # Unequal work per item: later items finish first under parallelism,
    # which is exactly what order preservation must survive.
    total = 0.0
    for _ in range(int(1000 * (10 - x))):
        total += x
    return x


class TestResolveJobs:
    def test_clamped_to_task_count(self):
        assert resolve_jobs(8, 3) == 3

    def test_serial_passthrough(self):
        assert resolve_jobs(1, 100) == 1

    def test_zero_tasks(self):
        assert resolve_jobs(4, 0) == 1

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_non_positive_rejected(self, bad):
        with pytest.raises(ValueError):
            resolve_jobs(bad, 10)


class TestJobsEnvVar:
    def test_unset_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert default_jobs() == 1
        assert resolve_jobs(None, 100) == 1

    def test_empty_defaults_to_serial(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "  ")
        assert default_jobs() == 1

    def test_env_sets_the_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "4")
        assert default_jobs() == 4
        assert resolve_jobs(None, 100) == 4
        # An explicit request always wins over the environment.
        assert resolve_jobs(2, 100) == 2

    def test_parallel_map_defers_to_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "2")
        items = list(range(8))
        assert parallel_map(_square, items) == [x * x for x in items]

    @pytest.mark.parametrize("bad", ["zero", "1.5", "0", "-3"])
    def test_invalid_env_fails_loudly(self, monkeypatch, bad):
        monkeypatch.setenv(JOBS_ENV_VAR, bad)
        with pytest.raises(ValueError):
            default_jobs()


class TestParallelMap:
    def test_serial_matches_list_comprehension(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=1) == [x * x for x in items]

    def test_parallel_matches_serial(self):
        items = list(range(20))
        serial = parallel_map(_square, items, jobs=1)
        parallel = parallel_map(_square, items, jobs=4)
        assert parallel == serial

    def test_order_preserved_with_skewed_work(self):
        items = [float(x) for x in range(10)]
        assert parallel_map(_flaky_order, items, jobs=4) == items

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_iterable_input(self):
        assert parallel_map(_square, iter(range(5)), jobs=2) == [0, 1, 4, 9, 16]

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1, 2, 3], jobs=0)

    @pytest.mark.parametrize(
        "kwargs", [{"retries": -1}, {"backoff": -0.5}, {"timeout": 0}]
    )
    def test_bad_robustness_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            parallel_map(_square, [1, 2, 3], jobs=1, **kwargs)


class TestWorkerErrors:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failure_carries_item_and_traceback(self, jobs):
        with pytest.raises(WorkerError) as excinfo:
            parallel_map(_explode_on_three, [1, 2, 3, 4], jobs=jobs)
        err = excinfo.value
        assert err.item_repr == "3"
        assert "ValueError" in str(err)
        assert "cannot process 3" in str(err)
        assert "_explode_on_three" in err.original_traceback

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_worker_error_catchable_as_repro_error(self, jobs):
        with pytest.raises(ReproError):
            parallel_map(_explode_on_three, [3], jobs=jobs)

    def test_failure_with_retries_still_carries_context(self):
        with pytest.raises(WorkerError) as excinfo:
            parallel_map(_explode_on_three, [3], jobs=2, retries=1)
        assert excinfo.value.item_repr == "3"


class TestRetries:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_transient_failure_recovered(self, jobs, tmp_path):
        items = [(x, str(tmp_path)) for x in range(4)]
        result = parallel_map(_flaky, items, jobs=jobs, retries=1)
        assert result == [0, 1, 4, 9]
        assert os.path.exists(tmp_path / "seen-2")

    def test_no_retries_means_failure(self, tmp_path):
        items = [(x, str(tmp_path)) for x in range(4)]
        with pytest.raises(WorkerError):
            parallel_map(_flaky, items, jobs=1, retries=0)


class TestTimeoutsAndCrashes:
    def test_hung_job_times_out(self):
        with pytest.raises(JobTimeoutError) as excinfo:
            parallel_map(_hang_on_seven, [7, 1], jobs=2, timeout=1.0)
        assert excinfo.value.item_repr == "7"

    def test_job_timeout_is_worker_error(self):
        assert issubclass(JobTimeoutError, WorkerError)
        assert issubclass(JobTimeoutError, ReproError)

    def test_dead_worker_loses_only_its_job(self, tmp_path):
        # x == 1 kills its worker process outright on the first attempt;
        # the pool replaces the worker, the lost job times out and its
        # retry succeeds, and every other job is unaffected.
        items = [(x, str(tmp_path)) for x in range(4)]
        result = parallel_map(_crash_once, items, jobs=2, retries=1, timeout=5.0)
        assert result == [0, 1, 4, 9]
        assert os.path.exists(tmp_path / "crashed-1")
