"""Deterministic multiprocessing fan-out (`repro.common.parallel`)."""

import pytest

from repro.common.parallel import parallel_map, resolve_jobs


def _square(x: int) -> int:
    return x * x


def _flaky_order(x: float) -> float:
    # Unequal work per item: later items finish first under parallelism,
    # which is exactly what order preservation must survive.
    total = 0.0
    for _ in range(int(1000 * (10 - x))):
        total += x
    return x


class TestResolveJobs:
    def test_clamped_to_task_count(self):
        assert resolve_jobs(8, 3) == 3

    def test_serial_passthrough(self):
        assert resolve_jobs(1, 100) == 1

    def test_zero_tasks(self):
        assert resolve_jobs(4, 0) == 1

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_non_positive_rejected(self, bad):
        with pytest.raises(ValueError):
            resolve_jobs(bad, 10)


class TestParallelMap:
    def test_serial_matches_list_comprehension(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=1) == [x * x for x in items]

    def test_parallel_matches_serial(self):
        items = list(range(20))
        serial = parallel_map(_square, items, jobs=1)
        parallel = parallel_map(_square, items, jobs=4)
        assert parallel == serial

    def test_order_preserved_with_skewed_work(self):
        items = [float(x) for x in range(10)]
        assert parallel_map(_flaky_order, items, jobs=4) == items

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_iterable_input(self):
        assert parallel_map(_square, iter(range(5)), jobs=2) == [0, 1, 4, 9, 16]

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1, 2, 3], jobs=0)
