"""Units and conversion helpers."""

import pytest

from repro.common.units import GB, GHZ, KIB, MIB, bytes_to_human, gbps, gflops


class TestConstants:
    def test_binary_units(self):
        assert KIB == 1024
        assert MIB == 1024 * 1024

    def test_decimal_units(self):
        assert GB == 10**9
        assert GHZ == 10**9


class TestBytesToHuman:
    def test_bytes(self):
        assert bytes_to_human(512) == "512B"

    def test_kib(self):
        assert bytes_to_human(64 * KIB) == "64.0KiB"

    def test_mib(self):
        assert bytes_to_human(3 * MIB) == "3.0MiB"

    def test_zero(self):
        assert bytes_to_human(0) == "0B"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bytes_to_human(-1)

    def test_non_round_value(self):
        assert bytes_to_human(1536) == "1.5KiB"


class TestRates:
    def test_gflops(self):
        assert gflops(742.4e9) == pytest.approx(742.4)

    def test_gbps(self):
        assert gbps(36e9) == pytest.approx(36.0)
