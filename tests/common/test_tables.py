"""Text-table rendering."""

import pytest

from repro.common.tables import TextTable


class TestTextTable:
    def test_renders_header_and_rows(self):
        t = TextTable(["a", "bb"])
        t.add_row([1, 2.5])
        out = t.render()
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "bb" in lines[0]
        assert "2.50" in lines[2]

    def test_column_alignment(self):
        t = TextTable(["name", "v"])
        t.add_row(["x", 1])
        t.add_row(["longer", 2])
        lines = t.render().splitlines()
        # Separator and data lines align on the same column boundary.
        assert lines[1].index("+") == lines[0].index("|")

    def test_wrong_cell_count_rejected(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_float_format_override(self):
        t = TextTable(["x"], float_fmt="{:.3f}")
        t.add_row([1.23456])
        assert "1.235" in t.render()

    def test_int_not_float_formatted(self):
        t = TextTable(["x"])
        t.add_row([42])
        assert "42" in t.render()
        assert "42.00" not in t.render()

    def test_empty_table_renders(self):
        t = TextTable(["only"])
        out = t.render()
        assert "only" in out
