"""Typed errors at the documented simulator boundaries.

Each simulated resource limit raises its own error class, and every one of
them is catchable as :class:`~repro.common.errors.ReproError` — the contract
client code (and the guarded executor) relies on.
"""

import numpy as np
import pytest

from repro.common.errors import (
    BusProtocolError,
    LDMOverflowError,
    RegisterPressureError,
    ReproError,
    SimulationError,
)
from repro.hw.ldm import LDM
from repro.hw.mesh import CPEMesh
from repro.hw.regfile import VectorRegisterFile
from repro.hw.spec import DEFAULT_SPEC


class TestLDMOverflow:
    def test_oversized_alloc_raises(self):
        ldm = LDM(DEFAULT_SPEC)
        with pytest.raises(LDMOverflowError):
            # 64 KB LDM cannot hold a megabyte of doubles.
            ldm.alloc("huge", (1 << 17,))

    def test_cumulative_overflow(self):
        ldm = LDM(DEFAULT_SPEC)
        ldm.alloc("half", (DEFAULT_SPEC.ldm_bytes // 16,))
        with pytest.raises(LDMOverflowError):
            ldm.alloc("other-half-plus", (DEFAULT_SPEC.ldm_bytes // 16 + 1,))

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            LDM(DEFAULT_SPEC).alloc("huge", (1 << 17,))

    def test_message_names_buffer_and_sizes(self):
        with pytest.raises(LDMOverflowError, match="huge"):
            LDM(DEFAULT_SPEC).alloc("huge", (1 << 17,))


class TestRegisterPressure:
    def test_33rd_register_raises(self):
        regs = VectorRegisterFile(DEFAULT_SPEC)
        regs.allocate_block("acc", DEFAULT_SPEC.vector_registers)
        with pytest.raises(RegisterPressureError):
            regs.allocate("one-too-many")

    def test_catchable_as_repro_error(self):
        regs = VectorRegisterFile(DEFAULT_SPEC)
        regs.allocate_block("acc", DEFAULT_SPEC.vector_registers)
        with pytest.raises(ReproError):
            regs.allocate("spill")

    def test_free_all_recovers(self):
        regs = VectorRegisterFile(DEFAULT_SPEC)
        regs.allocate_block("acc", DEFAULT_SPEC.vector_registers)
        regs.free_all()
        regs.allocate("fresh")

    def test_duplicate_name_is_simulation_error(self):
        regs = VectorRegisterFile(DEFAULT_SPEC)
        regs.allocate("a")
        with pytest.raises(SimulationError):
            regs.allocate("a")


class TestBusProtocol:
    def test_diagonal_put_rejected(self):
        mesh = CPEMesh(DEFAULT_SPEC)
        with pytest.raises(BusProtocolError):
            mesh.put((0, 0), (1, 1), np.zeros(4))

    def test_self_put_rejected(self):
        mesh = CPEMesh(DEFAULT_SPEC)
        with pytest.raises(BusProtocolError):
            mesh.put((2, 2), (2, 2), np.zeros(4))

    def test_get_on_empty_buffer(self):
        mesh = CPEMesh(DEFAULT_SPEC)
        with pytest.raises(BusProtocolError):
            mesh.get((0, 0))

    def test_transfer_buffer_overflow(self):
        mesh = CPEMesh(DEFAULT_SPEC)
        payload = np.zeros(4)
        with pytest.raises(BusProtocolError):
            for _ in range(DEFAULT_SPEC.transfer_buffer_depth + 1):
                mesh.put((0, 0), (0, 1), payload)

    def test_out_of_mesh_coordinates(self):
        mesh = CPEMesh(DEFAULT_SPEC)
        with pytest.raises(BusProtocolError):
            mesh.cpe(8, 0)

    def test_catchable_as_repro_error(self):
        mesh = CPEMesh(DEFAULT_SPEC)
        with pytest.raises(ReproError):
            mesh.put((0, 0), (1, 1), np.zeros(4))
