"""Blocking invariance: every legal blocking computes the same layer.

The strongest correctness property the plan machinery has: the functional
output must be *identical* (not just close) across plan families, blocking
sizes, promotion flags and Ni blocking, because they all walk the same
multiply-add set in different orders of tiles (each output element's
reduction order only changes across ni-blocks, where addition is
reassociated — hence allclose, not array_equal, for those).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import LDMOverflowError, PlanError
from repro.core.conv import ConvolutionEngine
from repro.core.ldm_blocking import BatchBlocking, ImageBlocking
from repro.core.params import ConvParams
from repro.core.plans import BatchSizeAwarePlan, ImageSizeAwarePlan
from repro.core.reference import conv2d_reference


PARAMS = ConvParams(ni=16, no=8, ri=9, ci=9, kr=3, kc=3, b=8)


@st.composite
def image_blockings(draw):
    return ImageBlocking(
        b_b=draw(st.sampled_from([4, 8])),
        b_co=draw(st.sampled_from([2, 4, 7])),
        promote_input=draw(st.booleans()),
        promote_filter=draw(st.booleans()),
        b_ni=draw(st.sampled_from([None, 4, 8, 16])),
    )


@st.composite
def batch_blockings(draw):
    return BatchBlocking(
        b_co=draw(st.sampled_from([1, 2, 3, 7])),
        promote_filter=draw(st.booleans()),
        b_ni=draw(st.sampled_from([None, 4, 8])),
    )


class TestBlockingInvariance:
    @given(image_blockings(), st.integers(min_value=0, max_value=99))
    @settings(max_examples=25, deadline=None)
    def test_image_plan_invariant_under_blocking(self, blocking, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(PARAMS.input_shape)
        w = rng.standard_normal(PARAMS.filter_shape)
        try:
            plan = ImageSizeAwarePlan(PARAMS, blocking=blocking)
        except (PlanError, LDMOverflowError):
            return  # infeasible blocking: rejected, not wrong
        out, report = ConvolutionEngine(plan).run(x, w)
        assert np.allclose(out, conv2d_reference(x, w))
        assert report.flops == PARAMS.flops()

    @given(batch_blockings(), st.integers(min_value=0, max_value=99))
    @settings(max_examples=25, deadline=None)
    def test_batch_plan_invariant_under_blocking(self, blocking, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(PARAMS.input_shape)
        w = rng.standard_normal(PARAMS.filter_shape)
        try:
            plan = BatchSizeAwarePlan(PARAMS, blocking=blocking)
        except (PlanError, LDMOverflowError):
            return
        out, _ = ConvolutionEngine(plan).run(x, w)
        assert np.allclose(out, conv2d_reference(x, w))

    @given(
        st.sampled_from([2, 4, 7]),
        st.sampled_from([2, 4, 7]),
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=15, deadline=None)
    def test_families_agree_exactly_without_ni_blocking(self, bco_a, bco_b, seed):
        """Without reassociation (full Ni), different column blockings of
        the same family produce bit-identical outputs."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(PARAMS.input_shape)
        w = rng.standard_normal(PARAMS.filter_shape)
        plan_a = BatchSizeAwarePlan(PARAMS, blocking=BatchBlocking(b_co=bco_a))
        plan_b = BatchSizeAwarePlan(PARAMS, blocking=BatchBlocking(b_co=bco_b))
        out_a, _ = ConvolutionEngine(plan_a).run(x, w)
        out_b, _ = ConvolutionEngine(plan_b).run(x, w)
        assert np.array_equal(out_a, out_b)
