"""The execution engine: functional correctness and timing behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import PlanError
from repro.core.conv import (
    ConvolutionEngine,
    TimingReport,
    conv_forward,
    evaluate_chip,
    _StepCost,
    _pipeline_timeline,
)
from repro.core.ldm_blocking import BatchBlocking, ImageBlocking
from repro.core.params import ConvParams
from repro.core.plans import BatchSizeAwarePlan, ImageSizeAwarePlan
from repro.core.reference import conv2d_reference


class TestFunctionalCorrectness:
    def test_image_plan_matches_reference(self, rng, small_params):
        x = rng.standard_normal(small_params.input_shape)
        w = rng.standard_normal(small_params.filter_shape)
        out, _ = ConvolutionEngine(ImageSizeAwarePlan(small_params)).run(x, w)
        assert np.allclose(out, conv2d_reference(x, w))

    def test_batch_plan_matches_reference(self, rng, small_params):
        x = rng.standard_normal(small_params.input_shape)
        w = rng.standard_normal(small_params.filter_shape)
        out, _ = ConvolutionEngine(BatchSizeAwarePlan(small_params)).run(x, w)
        assert np.allclose(out, conv2d_reference(x, w))

    def test_mesh_backend_matches_reference(self, rng):
        params = ConvParams(ni=8, no=8, ri=8, ci=8, kr=3, kc=3, b=8)
        x = rng.standard_normal(params.input_shape)
        w = rng.standard_normal(params.filter_shape)
        out, _ = ConvolutionEngine(
            ImageSizeAwarePlan(params), backend="mesh"
        ).run(x, w)
        assert np.allclose(out, conv2d_reference(x, w))

    def test_conv_forward_api(self, rng, small_params):
        x = rng.standard_normal(small_params.input_shape)
        w = rng.standard_normal(small_params.filter_shape)
        assert np.allclose(conv_forward(x, w), conv2d_reference(x, w))

    def test_shape_validation(self, rng, small_params):
        engine = ConvolutionEngine(ImageSizeAwarePlan(small_params))
        with pytest.raises(PlanError):
            engine.run(rng.standard_normal((1, 2, 3, 4)), rng.standard_normal((1, 2, 3, 3)))

    def test_unknown_backend_rejected(self, small_params):
        with pytest.raises(PlanError):
            ConvolutionEngine(ImageSizeAwarePlan(small_params), backend="fpga")

    @given(st.integers(min_value=0, max_value=999), st.sampled_from(["image", "batch"]))
    @settings(max_examples=15, deadline=None)
    def test_matches_reference_property(self, seed, kind):
        rng = np.random.default_rng(seed)
        params = ConvParams(
            ni=8,
            no=8,
            ri=int(rng.integers(4, 9)),
            ci=int(rng.integers(4, 9)),
            kr=int(rng.integers(1, 4)),
            kc=int(rng.integers(1, 4)),
            b=8,
        )
        plan = (
            ImageSizeAwarePlan(params) if kind == "image" else BatchSizeAwarePlan(params)
        )
        x = rng.standard_normal(params.input_shape)
        w = rng.standard_normal(params.filter_shape)
        out, _ = ConvolutionEngine(plan).run(x, w)
        assert np.allclose(out, conv2d_reference(x, w))


class TestTiming:
    def test_evaluate_covers_layer_flops(self, paper_params):
        report = ConvolutionEngine(BatchSizeAwarePlan(paper_params)).evaluate()
        assert report.flops == paper_params.flops()

    def test_run_and_evaluate_agree_on_time(self, rng, small_params):
        plan = ImageSizeAwarePlan(small_params)
        x = rng.standard_normal(small_params.input_shape)
        w = rng.standard_normal(small_params.filter_shape)
        _, run_report = ConvolutionEngine(plan).run(x, w)
        eval_report = ConvolutionEngine(plan).evaluate()
        # The functional walk uses the full schedule, timed walk the
        # coalesced one; totals agree because byte/flop sums are identical
        # and the coalescing merges only same-cycle-cost transfers.
        assert run_report.flops == eval_report.flops
        assert run_report.bytes_get == eval_report.bytes_get
        assert run_report.seconds == pytest.approx(eval_report.seconds, rel=0.1)

    def test_efficiency_below_ee_ceiling(self, paper_params):
        report = ConvolutionEngine(BatchSizeAwarePlan(paper_params)).evaluate()
        assert 0 < report.efficiency < 0.94  # EE(128) = 0.9275 is the ceiling

    def test_paper_scale_performance_band(self, paper_params):
        """Fig. 7 headline: per-CG sustained rate in the hundreds of Gflops."""
        report = ConvolutionEngine(BatchSizeAwarePlan(paper_params)).evaluate()
        assert 200 < report.gflops < 742

    def test_zero_contention_is_faster(self, paper_params):
        plan = BatchSizeAwarePlan(paper_params)
        ideal = ConvolutionEngine(plan, overlap_contention=0.0).evaluate()
        real = ConvolutionEngine(plan, overlap_contention=0.5).evaluate()
        assert ideal.seconds < real.seconds

    def test_report_properties(self):
        report = TimingReport(
            seconds=2.0,
            flops=4e9,
            dma_seconds=1.0,
            compute_seconds=1.5,
            bytes_get=100,
            bytes_put=50,
            tiles=3,
            peak_flops=10e9,
        )
        assert report.gflops == pytest.approx(2.0)
        assert report.efficiency == pytest.approx(0.2)
        assert report.overlap_fraction == pytest.approx(0.2)
        assert report.effective_dma_bandwidth == pytest.approx(150.0)


class TestPipelineTimeline:
    def test_single_step(self):
        total, dma, comp = _pipeline_timeline(
            [_StepCost(1.0, 2.0, 0.5, 0, 0, 0)], contention=0.0
        )
        assert total == pytest.approx(3.5)
        assert dma == pytest.approx(1.5)
        assert comp == pytest.approx(2.0)

    def test_double_buffering_overlaps(self):
        costs = [_StepCost(1.0, 1.0, 0.0, 0, 0, 0) for _ in range(10)]
        total, dma, comp = _pipeline_timeline(costs, contention=0.0)
        # Perfect overlap: ~11 units instead of 20.
        assert total < 12.0

    def test_interface_serial_bound(self):
        # DMA-dominated: total can never beat the serial transfer time.
        costs = [_StepCost(2.0, 0.1, 1.0, 0, 0, 0) for _ in range(5)]
        total, dma, _ = _pipeline_timeline(costs, contention=0.0)
        assert total >= dma

    def test_contention_penalizes_overlap(self):
        costs = [_StepCost(1.0, 1.0, 0.0, 0, 0, 0) for _ in range(10)]
        ideal, _, _ = _pipeline_timeline(costs, contention=0.0)
        half, _, _ = _pipeline_timeline(costs, contention=0.5)
        full, _, _ = _pipeline_timeline(costs, contention=1.0)
        assert ideal < half < full
        assert full == pytest.approx(20.0)

    def test_contention_validated(self):
        with pytest.raises(ValueError):
            _pipeline_timeline([_StepCost(1, 1, 1, 0, 0, 0)], contention=2.0)

    def test_empty(self):
        total, dma, comp = _pipeline_timeline([])
        assert (total, dma, comp) == (0.0, 0.0, 0.0)


class TestChipEvaluation:
    def test_four_groups_reported(self, paper_params):
        gflops, reports = evaluate_chip(paper_params)
        assert len(reports) == 4
        assert gflops > 0

    def test_near_linear_scaling(self, paper_params):
        one, _ = evaluate_chip(paper_params, num_groups=1)
        four, _ = evaluate_chip(paper_params, num_groups=4)
        assert four / one == pytest.approx(4.0, rel=0.08)

    def test_plan_kind_override(self, paper_params):
        gflops, _ = evaluate_chip(paper_params, plan_kind="image")
        assert gflops > 0

    def test_headline_above_1_5_tflops(self):
        params = ConvParams.from_output(ni=256, no=256, ro=64, co=64, kr=3, kc=3, b=128)
        gflops, _ = evaluate_chip(params)
        assert gflops > 1500.0
