"""Sequential network and SGD training."""

import numpy as np
import pytest

from repro.core.layers import Conv2D, Dense, Flatten, ReLU
from repro.core.network import (
    SGD,
    Sequential,
    synthetic_image_dataset,
    train_classifier,
)


def _tiny_net(rng):
    return Sequential(
        [
            Conv2D(ni=2, no=4, kr=3, kc=3, rng=rng),
            ReLU(),
            Flatten(),
            Dense(4 * 4 * 4, 3, rng=rng),
        ]
    )


class TestSequential:
    def test_forward_shape(self, rng):
        net = _tiny_net(rng)
        out = net.forward(rng.standard_normal((5, 2, 6, 6)))
        assert out.shape == (5, 3)

    def test_backward_propagates(self, rng):
        net = _tiny_net(rng)
        net.forward(rng.standard_normal((5, 2, 6, 6)))
        grad = net.backward(rng.standard_normal((5, 3)))
        assert grad.shape == (5, 2, 6, 6)

    def test_parameter_layers(self, rng):
        net = _tiny_net(rng)
        assert len(net.parameter_layers()) == 2


class TestSGD:
    def test_step_moves_parameters(self, rng):
        net = _tiny_net(rng)
        x = rng.standard_normal((4, 2, 6, 6))
        net.forward(x)
        net.backward(np.ones((4, 3)))
        conv = net.layers[0]
        before = conv.w.copy()
        SGD(net, lr=0.1).step()
        assert not np.allclose(conv.w, before)

    def test_momentum_accumulates(self, rng):
        net = _tiny_net(rng)
        x = rng.standard_normal((4, 2, 6, 6))
        opt = SGD(net, lr=0.1, momentum=0.9)
        net.forward(x)
        net.backward(np.ones((4, 3)))
        opt.step()
        first = net.layers[0].w.copy()
        net.forward(x)
        net.backward(np.zeros((4, 3)))  # zero gradient, momentum carries on
        opt.step()
        assert not np.allclose(net.layers[0].w, first)

    def test_hyperparameters_validated(self, rng):
        net = _tiny_net(rng)
        with pytest.raises(ValueError):
            SGD(net, lr=0.0)
        with pytest.raises(ValueError):
            SGD(net, momentum=1.0)


class TestTraining:
    def test_loss_decreases_on_synthetic_task(self):
        rng = np.random.default_rng(3)
        x, labels = synthetic_image_dataset(64, 2, 6, 6, 3, rng=rng)
        net = _tiny_net(rng)
        result = train_classifier(
            net, x, labels, epochs=6, batch_size=16, lr=0.02, momentum=0.9, rng=rng
        )
        assert result.losses[-1] < result.losses[0]
        assert result.final_accuracy > 0.5

    def test_label_length_validated(self, rng):
        net = _tiny_net(rng)
        with pytest.raises(ValueError):
            train_classifier(net, np.zeros((4, 2, 6, 6)), np.zeros(3, dtype=int))

    def test_dataset_shapes(self, rng):
        x, labels = synthetic_image_dataset(10, 2, 5, 5, 4, rng=rng)
        assert x.shape == (10, 2, 5, 5)
        assert labels.shape == (10,)
        assert labels.max() < 4

    def test_dataset_deterministic(self):
        a = synthetic_image_dataset(5, 1, 3, 3, 2, rng=np.random.default_rng(1))
        b = synthetic_image_dataset(5, 1, 3, 3, 2, rng=np.random.default_rng(1))
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])
