"""Sequential network and SGD training."""

import numpy as np
import pytest

from repro.core.layers import Conv2D, Dense, Flatten, ReLU, SoftmaxCrossEntropy
from repro.core.network import (
    SGD,
    GradientExchange,
    LocalExchange,
    Sequential,
    synthetic_image_dataset,
    train_classifier,
)


def _tiny_net(rng):
    return Sequential(
        [
            Conv2D(ni=2, no=4, kr=3, kc=3, rng=rng),
            ReLU(),
            Flatten(),
            Dense(4 * 4 * 4, 3, rng=rng),
        ]
    )


class TestSequential:
    def test_forward_shape(self, rng):
        net = _tiny_net(rng)
        out = net.forward(rng.standard_normal((5, 2, 6, 6)))
        assert out.shape == (5, 3)

    def test_backward_propagates(self, rng):
        net = _tiny_net(rng)
        net.forward(rng.standard_normal((5, 2, 6, 6)))
        grad = net.backward(rng.standard_normal((5, 3)))
        assert grad.shape == (5, 2, 6, 6)

    def test_parameter_layers(self, rng):
        net = _tiny_net(rng)
        assert len(net.parameter_layers()) == 2


class TestSGD:
    def test_step_moves_parameters(self, rng):
        net = _tiny_net(rng)
        x = rng.standard_normal((4, 2, 6, 6))
        net.forward(x)
        net.backward(np.ones((4, 3)))
        conv = net.layers[0]
        before = conv.w.copy()
        SGD(net, lr=0.1).step()
        assert not np.allclose(conv.w, before)

    def test_momentum_accumulates(self, rng):
        net = _tiny_net(rng)
        x = rng.standard_normal((4, 2, 6, 6))
        opt = SGD(net, lr=0.1, momentum=0.9)
        net.forward(x)
        net.backward(np.ones((4, 3)))
        opt.step()
        first = net.layers[0].w.copy()
        net.forward(x)
        net.backward(np.zeros((4, 3)))  # zero gradient, momentum carries on
        opt.step()
        assert not np.allclose(net.layers[0].w, first)

    def test_hyperparameters_validated(self, rng):
        net = _tiny_net(rng)
        with pytest.raises(ValueError):
            SGD(net, lr=0.0)
        with pytest.raises(ValueError):
            SGD(net, momentum=1.0)


class TestGradientExchange:
    """The optimizer routes gradients through its exchange."""

    def _one_backward(self, rng):
        net = _tiny_net(rng)
        net.forward(rng.standard_normal((4, 2, 6, 6)))
        net.backward(np.ones((4, 3)))
        return net

    def test_default_is_local_identity(self, rng):
        opt = SGD(self._one_backward(rng))
        assert isinstance(opt.exchange, LocalExchange)
        grads = [{"w": np.ones(3)}]
        assert opt.exchange.reduce(grads) is grads

    def test_local_exchange_matches_no_exchange(self, rng):
        seed = rng.integers(1 << 30)
        a = self._one_backward(np.random.default_rng(seed))
        b = self._one_backward(np.random.default_rng(seed))
        SGD(a, lr=0.1, momentum=0.9).step()
        SGD(b, lr=0.1, momentum=0.9, exchange=LocalExchange()).step()
        for la, lb in zip(a.parameter_layers(), b.parameter_layers()):
            for name in la.parameters():
                assert np.array_equal(la.parameters()[name], lb.parameters()[name])

    def test_custom_exchange_sees_and_replaces_gradients(self, rng):
        seen = []

        class Doubler(GradientExchange):
            def reduce(self, grads):
                seen.append(len(grads))
                return [{n: 2.0 * g for n, g in layer.items()} for layer in grads]

        net_half = self._one_backward(np.random.default_rng(5))
        net_full = self._one_backward(np.random.default_rng(5))
        SGD(net_half, lr=0.05, exchange=Doubler()).step()
        SGD(net_full, lr=0.10).step()  # 2x gradient at lr == lr at 2x gradient
        assert seen == [len(net_half.parameter_layers())]
        for la, lb in zip(net_half.parameter_layers(), net_full.parameter_layers()):
            for name in la.parameters():
                np.testing.assert_allclose(
                    la.parameters()[name], lb.parameters()[name]
                )

    def test_base_reduce_is_abstract(self):
        with pytest.raises(NotImplementedError):
            GradientExchange().reduce([])


class TestGradNormalizer:
    """SoftmaxCrossEntropy can normalize by the global batch size."""

    def test_normalizer_scales_backward(self, rng):
        logits = rng.standard_normal((4, 3))
        labels = np.array([0, 1, 2, 0])
        plain = SoftmaxCrossEntropy()
        plain.forward(logits, labels)
        scaled = SoftmaxCrossEntropy(grad_normalizer=16)
        scaled.forward(logits, labels)
        np.testing.assert_allclose(
            scaled.backward() * 16, plain.backward() * 4
        )

    def test_normalizer_validated(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy(grad_normalizer=0)


class TestTraining:
    def test_loss_decreases_on_synthetic_task(self):
        rng = np.random.default_rng(3)
        x, labels = synthetic_image_dataset(64, 2, 6, 6, 3, rng=rng)
        net = _tiny_net(rng)
        result = train_classifier(
            net, x, labels, epochs=6, batch_size=16, lr=0.02, momentum=0.9, rng=rng
        )
        assert result.losses[-1] < result.losses[0]
        assert result.final_accuracy > 0.5

    def test_label_length_validated(self, rng):
        net = _tiny_net(rng)
        with pytest.raises(ValueError):
            train_classifier(net, np.zeros((4, 2, 6, 6)), np.zeros(3, dtype=int))

    def test_dataset_shapes(self, rng):
        x, labels = synthetic_image_dataset(10, 2, 5, 5, 4, rng=rng)
        assert x.shape == (10, 2, 5, 5)
        assert labels.shape == (10,)
        assert labels.max() < 4

    def test_dataset_deterministic(self):
        a = synthetic_image_dataset(5, 1, 3, 3, 2, rng=np.random.default_rng(1))
        b = synthetic_image_dataset(5, 1, 3, 3, 2, rng=np.random.default_rng(1))
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])
