"""Multi-CG batch sharding: balanced splits, parity, and chip scaling."""

import numpy as np
import pytest

from repro.common.errors import PlanError
from repro.core.params import ConvParams
from repro.core.reference import conv2d_reference
from repro.core.sharding import (
    evaluate_chip_sharded,
    run_sharded,
    shard_batch,
)


class TestShardBatch:
    def test_balanced_and_complete(self):
        assert shard_batch(128, 4) == [32, 32, 32, 32]
        assert shard_batch(10, 4) == [3, 3, 2, 2]
        assert shard_batch(7, 4) == [2, 2, 2, 1]

    def test_small_batch_uses_fewer_shards(self):
        assert shard_batch(2, 4) == [1, 1]
        assert shard_batch(1, 4) == [1]

    def test_sums_to_batch(self):
        for b in range(1, 40):
            for n in range(1, 5):
                shards = shard_batch(b, n)
                assert sum(shards) == b
                assert max(shards) - min(shards) <= 1
                assert all(s >= 1 for s in shards)

    def test_invalid_inputs(self):
        with pytest.raises(PlanError):
            shard_batch(0, 4)
        with pytest.raises(PlanError):
            shard_batch(8, 0)


class TestRunSharded:
    def test_output_matches_reference(self, small_params, rng):
        x = rng.standard_normal(small_params.input_shape)
        w = rng.standard_normal(small_params.filter_shape)
        bias = rng.standard_normal(small_params.no)
        out, report = run_sharded(x, w, num_groups=4, bias=bias, activation="relu")
        expected = np.maximum(
            conv2d_reference(x, w) + bias[None, :, None, None], 0.0
        )
        assert np.allclose(out, expected)
        assert len(report.shards) == 4
        assert report.flops == small_params.flops()

    def test_uneven_batch(self, rng):
        params = ConvParams(ni=16, no=16, ri=10, ci=10, kr=3, kc=3, b=7)
        x = rng.standard_normal(params.input_shape)
        w = rng.standard_normal(params.filter_shape)
        out, report = run_sharded(x, w, num_groups=4)
        assert np.allclose(out, conv2d_reference(x, w))
        assert sorted(r.flops for r in report.shards) == sorted(
            params.with_batch(s).flops() for s in shard_batch(7, 4)
        )

    def test_invalid_num_groups(self, small_params, rng):
        x = rng.standard_normal(small_params.input_shape)
        w = rng.standard_normal(small_params.filter_shape)
        with pytest.raises(PlanError):
            run_sharded(x, w, num_groups=5)
        with pytest.raises(PlanError):
            run_sharded(x, w, num_groups=0)


class TestChipSharded:
    def test_four_groups_beat_one(self, paper_params):
        one = evaluate_chip_sharded(paper_params, num_groups=1)
        four = evaluate_chip_sharded(paper_params, num_groups=4)
        assert four.gflops > 2.5 * one.gflops
        assert four.seconds < one.seconds

    def test_report_shape(self, paper_params):
        report = evaluate_chip_sharded(paper_params, num_groups=4)
        assert report.seconds == max(r.seconds for r in report.shards)
        assert report.flops == sum(r.flops for r in report.shards)
        assert 0 < report.efficiency <= 1

    def test_equal_shards_share_one_timing(self, paper_params):
        """Equal shard shapes memoize: all four reports are identical."""
        report = evaluate_chip_sharded(paper_params, num_groups=4)
        seconds = {r.seconds for r in report.shards}
        assert len(seconds) == 1

    def test_plan_cache_shards_hit_on_rerun(self, tmp_path, small_params):
        from repro.tune import PlanCache

        cache = PlanCache(tmp_path)
        evaluate_chip_sharded(small_params, num_groups=4, plan_cache=cache)
        stores = cache.stats.stores
        assert stores >= 1
        evaluate_chip_sharded(small_params, num_groups=4, plan_cache=cache)
        assert cache.stats.stores == stores  # warm: nothing re-tuned
