"""Input-channel (Ni) blocking — Section IV-A's fallback for deep layers."""

import numpy as np
import pytest

from repro.core.conv import ConvolutionEngine
from repro.core.ldm_blocking import (
    BatchBlocking,
    ImageBlocking,
    choose_batch_blocking,
    choose_image_blocking,
)
from repro.core.params import ConvParams
from repro.core.planner import plan_convolution
from repro.core.plans import BatchSizeAwarePlan, ImageSizeAwarePlan
from repro.core.reference import conv2d_reference


@pytest.fixture
def deep_params():
    """A reduction too deep for full-Ni LDM tiles (a backward-filter shape)."""
    return ConvParams(ni=1024, no=256, ri=10, ci=10, kr=8, kc=8, b=128)


class TestChoosersFallBack:
    def test_deep_layer_plans_with_ni_blocking(self, deep_params):
        choice = plan_convolution(deep_params)
        assert choice.plan.blocking.b_ni is not None
        assert choice.plan.blocking.b_ni < deep_params.ni

    def test_shallow_layer_keeps_full_ni(self, paper_params):
        img = choose_image_blocking(paper_params)
        bat = choose_batch_blocking(paper_params)
        assert img.b_ni is None
        assert bat.b_ni is None

    def test_ni_block_helper(self):
        blk = ImageBlocking(b_b=8, b_co=4, b_ni=32)
        assert blk.ni_block(128) == 32
        assert blk.ni_block(16) == 16
        assert ImageBlocking(b_b=8, b_co=4).ni_block(128) == 128

    def test_validation(self):
        with pytest.raises(ValueError):
            ImageBlocking(b_b=8, b_co=4, b_ni=0)
        with pytest.raises(ValueError):
            BatchBlocking(b_co=4, b_ni=-1)


class TestFunctionalWithNiBlocking:
    def test_image_plan_matches_reference(self, rng):
        params = ConvParams(ni=16, no=8, ri=8, ci=8, kr=3, kc=3, b=8)
        plan = ImageSizeAwarePlan(
            params, blocking=ImageBlocking(b_b=8, b_co=4, b_ni=4)
        )
        x = rng.standard_normal(params.input_shape)
        w = rng.standard_normal(params.filter_shape)
        out, _ = ConvolutionEngine(plan).run(x, w)
        assert np.allclose(out, conv2d_reference(x, w))

    def test_batch_plan_matches_reference(self, rng):
        params = ConvParams(ni=16, no=8, ri=8, ci=8, kr=3, kc=3, b=8)
        plan = BatchSizeAwarePlan(params, blocking=BatchBlocking(b_co=2, b_ni=4))
        x = rng.standard_normal(params.input_shape)
        w = rng.standard_normal(params.filter_shape)
        out, _ = ConvolutionEngine(plan).run(x, w)
        assert np.allclose(out, conv2d_reference(x, w))

    def test_uneven_ni_split_matches_reference(self, rng):
        # Ni = 12 with b_ni = 8 -> blocks of 8 and 4.
        params = ConvParams(ni=12, no=8, ri=6, ci=6, kr=3, kc=3, b=8)
        plan = ImageSizeAwarePlan(
            params, blocking=ImageBlocking(b_b=8, b_co=4, b_ni=8)
        )
        x = rng.standard_normal(params.input_shape)
        w = rng.standard_normal(params.filter_shape)
        out, _ = ConvolutionEngine(plan).run(x, w)
        assert np.allclose(out, conv2d_reference(x, w))


class TestAccounting:
    def test_flops_and_bytes_unchanged_by_ni_blocking(self):
        params = ConvParams(ni=16, no=8, ri=8, ci=8, kr=3, kc=3, b=8)
        whole = ImageSizeAwarePlan(params, blocking=ImageBlocking(b_b=8, b_co=4))
        split = ImageSizeAwarePlan(
            params, blocking=ImageBlocking(b_b=8, b_co=4, b_ni=4)
        )
        def totals(plan):
            flops = bytes_ = 0
            for step in plan.tile_schedule():
                flops += step.flops
                bytes_ += sum(t.nbytes for t in step.gets + step.puts)
            return flops, bytes_
        assert totals(whole) == totals(split)

    def test_coalesced_matches_full_with_ni_blocking(self):
        params = ConvParams(ni=16, no=8, ri=8, ci=8, kr=3, kc=3, b=8)
        for family, blocking in (
            (ImageSizeAwarePlan, ImageBlocking(b_b=8, b_co=4, b_ni=4)),
            (BatchSizeAwarePlan, BatchBlocking(b_co=2, b_ni=4)),
        ):
            plan = family(params, blocking=blocking)
            full = sum(
                t.nbytes for s in plan.tile_schedule() for t in s.gets + s.puts
            )
            coal = sum(
                t.nbytes
                for s in plan.tile_schedule(coalesced=True)
                for t in s.gets + s.puts
            )
            assert full == coal

    def test_deep_layer_evaluates(self, deep_params):
        choice = plan_convolution(deep_params)
        report = ConvolutionEngine(choice.plan).evaluate()
        assert report.flops == deep_params.flops()
        assert report.gflops > 0
