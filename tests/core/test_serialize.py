"""Plan/params serialization round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import PlanError
from repro.core.ldm_blocking import BatchBlocking, ImageBlocking
from repro.core.params import ConvParams
from repro.core.plans import BatchSizeAwarePlan, ImageSizeAwarePlan
from repro.core.serialize import (
    blocking_from_dict,
    blocking_to_dict,
    params_from_dict,
    params_to_dict,
    plan_from_json,
    plan_to_json,
)


class TestParams:
    def test_roundtrip(self, small_params):
        assert params_from_dict(params_to_dict(small_params)) == small_params

    def test_missing_field(self):
        with pytest.raises(PlanError):
            params_from_dict({"ni": 1})

    @given(
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, ni, no, k, extra, b):
        params = ConvParams(ni=ni, no=no, ri=k + extra, ci=k + extra, kr=k, kc=k, b=b)
        assert params_from_dict(params_to_dict(params)) == params


class TestBlocking:
    def test_image_roundtrip(self):
        blocking = ImageBlocking(b_b=32, b_co=16, promote_filter=True, b_ni=64)
        assert blocking_from_dict(blocking_to_dict(blocking)) == blocking

    def test_batch_roundtrip(self):
        blocking = BatchBlocking(b_co=8, promote_filter=False, b_ni=None)
        assert blocking_from_dict(blocking_to_dict(blocking)) == blocking

    def test_unknown_kind(self):
        with pytest.raises(PlanError):
            blocking_from_dict({"kind": "spiral"})


class TestPlan:
    def test_image_plan_roundtrip(self, small_params):
        plan = ImageSizeAwarePlan(
            small_params, blocking=ImageBlocking(b_b=8, b_co=4)
        )
        rebuilt = plan_from_json(plan_to_json(plan))
        assert isinstance(rebuilt, ImageSizeAwarePlan)
        assert rebuilt.params == plan.params
        assert rebuilt.blocking == plan.blocking

    def test_batch_plan_roundtrip(self, small_params):
        plan = BatchSizeAwarePlan(small_params)
        rebuilt = plan_from_json(plan_to_json(plan))
        assert isinstance(rebuilt, BatchSizeAwarePlan)
        assert rebuilt.blocking == plan.blocking

    def test_rebuilt_plan_executes_identically(self, rng, small_params):
        from repro.core.conv import ConvolutionEngine

        plan = BatchSizeAwarePlan(small_params)
        rebuilt = plan_from_json(plan_to_json(plan))
        x = rng.standard_normal(small_params.input_shape)
        w = rng.standard_normal(small_params.filter_shape)
        out_a, rep_a = ConvolutionEngine(plan).run(x, w)
        out_b, rep_b = ConvolutionEngine(rebuilt).run(x, w)
        assert np.array_equal(out_a, out_b)
        assert rep_a.seconds == pytest.approx(rep_b.seconds)

    def test_version_checked(self, small_params):
        plan = BatchSizeAwarePlan(small_params)
        import json

        data = json.loads(plan_to_json(plan))
        data["format_version"] = 99
        with pytest.raises(PlanError):
            plan_from_json(json.dumps(data))

    def test_family_blocking_mismatch(self, small_params):
        import json

        plan = BatchSizeAwarePlan(small_params)
        data = json.loads(plan_to_json(plan))
        data["family"] = "image-size-aware"  # but batch blocking
        with pytest.raises(PlanError):
            plan_from_json(json.dumps(data))

    def test_malformed_json(self):
        with pytest.raises(PlanError):
            plan_from_json("{not json")
