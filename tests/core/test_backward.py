"""Backward convolution passes vs the reference gradients."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import PlanError
from repro.core.backward import (
    BackwardConvolution,
    backward_data_params,
    backward_filter_params,
)
from repro.core.params import ConvParams
from repro.core.reference import conv2d_backward_reference, conv2d_reference


@pytest.fixture
def bw_params():
    return ConvParams(ni=8, no=8, ri=8, ci=8, kr=3, kc=3, b=8)


def _case(rng, p):
    x = rng.standard_normal(p.input_shape)
    w = rng.standard_normal(p.filter_shape)
    g = rng.standard_normal(p.output_shape)
    return x, w, g


class TestEquivalentParams:
    def test_backward_data_shapes(self, bw_params):
        eq = backward_data_params(bw_params)
        assert eq.ni == bw_params.no
        assert eq.no == bw_params.ni
        assert eq.ro == bw_params.ri
        assert eq.co == bw_params.ci

    def test_backward_filter_shapes(self, bw_params):
        eq = backward_filter_params(bw_params)
        assert eq.ro == bw_params.kr
        assert eq.co == bw_params.kc
        assert eq.b == bw_params.ni

    def test_backward_flop_parity(self, bw_params):
        """Both backward passes perform the same flops as the forward."""
        assert backward_data_params(bw_params).flops() >= bw_params.flops()
        assert backward_filter_params(bw_params).flops() == bw_params.flops()


class TestGradients:
    def test_grad_input_matches_reference(self, rng, bw_params):
        x, w, g = _case(rng, bw_params)
        ref_gx, _ = conv2d_backward_reference(x, w, g)
        gx, report = BackwardConvolution(bw_params).grad_input(w, g)
        assert np.allclose(gx, ref_gx)
        assert report.seconds > 0

    def test_grad_filter_matches_reference(self, rng, bw_params):
        x, w, g = _case(rng, bw_params)
        _, ref_gw = conv2d_backward_reference(x, w, g)
        gw, report = BackwardConvolution(bw_params).grad_filter(x, g)
        assert np.allclose(gw, ref_gw)
        assert report.seconds > 0

    @given(
        st.integers(min_value=1, max_value=2),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=12, deadline=None)
    def test_gradients_match_property(self, extra, k, seed):
        rng = np.random.default_rng(seed)
        p = ConvParams(ni=8, no=8, ri=k + extra + 3, ci=k + extra + 2, kr=k, kc=k, b=8)
        x, w, g = _case(rng, p)
        ref_gx, ref_gw = conv2d_backward_reference(x, w, g)
        bw = BackwardConvolution(p)
        gx, _ = bw.grad_input(w, g)
        gw, _ = bw.grad_filter(x, g)
        assert np.allclose(gx, ref_gx)
        assert np.allclose(gw, ref_gw)

    def test_shape_validation(self, rng, bw_params):
        bw = BackwardConvolution(bw_params)
        with pytest.raises(PlanError):
            bw.grad_input(rng.standard_normal((1, 1, 1, 1)), rng.standard_normal((1, 1, 1, 1)))
        with pytest.raises(PlanError):
            bw.grad_filter(rng.standard_normal((1, 1, 1, 1)), rng.standard_normal((1, 1, 1, 1)))


class TestTiming:
    def test_training_step_breakdown(self):
        p = ConvParams.from_output(ni=64, no=64, ro=32, co=32, kr=3, kc=3, b=32)
        total, breakdown = BackwardConvolution(p).training_step_time()
        assert set(breakdown) == {"forward", "backward_data", "backward_filter"}
        assert total == pytest.approx(
            sum(r.seconds for r in breakdown.values())
        )

    def test_backward_costs_comparable_to_forward(self):
        """Backward-filter does the same flops; its time must be within a
        small factor of forward (same bandwidth-bound machine)."""
        p = ConvParams.from_output(ni=64, no=64, ro=32, co=32, kr=3, kc=3, b=64)
        _, breakdown = BackwardConvolution(p).training_step_time()
        fwd = breakdown["forward"].seconds
        assert breakdown["backward_filter"].seconds < 10 * fwd

    def test_evaluate_only_paths(self, bw_params):
        bw = BackwardConvolution(bw_params)
        assert bw.evaluate_grad_input().seconds > 0
        assert bw.evaluate_grad_filter().seconds > 0
