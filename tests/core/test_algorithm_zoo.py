"""The conv algorithm zoo: legality, parity, engine contracts, serialization.

The engine-level im2col and Winograd families must compute exactly the
function the direct mapping computes — on awkward shapes (non-square
outputs, channel counts the 8x8 mesh does not divide, batch=1), on every
backend tier, and with the fused bias/activation epilogue.  Illegal
(algorithm, shape) pairs must be refused at plan time and never enumerated
by the tuner.
"""

import numpy as np
import pytest

from repro.common.errors import PlanError
from repro.core.algorithms import (
    ALGORITHMS,
    GemmBlocking,
    algorithm_legal,
    engine_for_plan,
    enumerate_gemm_blockings,
    legal_algorithms,
    make_lowered_plan,
    resolve_algorithms,
)
from repro.core.params import ConvParams
from repro.core.reference import conv2d_reference
from repro.core.serialize import plan_from_dict, plan_to_dict, plan_to_json, plan_from_json
from repro.tune.space import Candidate, enumerate_candidates

LOWERED = ("im2col", "winograd")

#: Deliberately awkward shapes: non-square output, No/Ni the mesh width
#: does not divide, batch 1, and a 5x5 filter (im2col only).
AWKWARD = [
    ConvParams.from_output(ni=8, no=8, ro=9, co=7, kr=3, kc=3, b=3),
    ConvParams.from_output(ni=4, no=10, ro=6, co=12, kr=3, kc=3, b=1),
    ConvParams.from_output(ni=4, no=6, ro=8, co=8, kr=5, kc=5, b=2),
]


def _run(algorithm, params, backend, bias=None, activation=None):
    rng = np.random.default_rng(7)
    x = rng.standard_normal(params.input_shape)
    w = rng.standard_normal(params.filter_shape)
    plan = make_lowered_plan(algorithm, params)
    engine = engine_for_plan(plan, backend=backend)
    out, report = engine.run(x, w, bias=bias, activation=activation)
    expected = conv2d_reference(x, w)
    if bias is not None:
        expected = expected + bias[None, :, None, None]
    if activation == "relu":
        expected = np.maximum(expected, 0.0)
    return out, expected, report


class TestLegality:
    def test_winograd_needs_3x3(self):
        p5 = ConvParams.from_output(ni=4, no=4, ro=8, co=8, kr=5, kc=5, b=2)
        assert not algorithm_legal("winograd", p5)
        assert legal_algorithms(p5) == ("direct", "im2col")

    def test_winograd_legal_on_3x3_stride_1(self):
        p3 = ConvParams.from_output(ni=4, no=4, ro=8, co=8, kr=3, kc=3, b=2)
        assert algorithm_legal("winograd", p3)
        assert legal_algorithms(p3) == ALGORITHMS

    def test_stride_2_is_illegal_for_every_algorithm(self):
        p3 = ConvParams.from_output(ni=4, no=4, ro=8, co=8, kr=3, kc=3, b=2)
        for algo in ALGORITHMS:
            assert not algorithm_legal(algo, p3, stride=2)
        assert legal_algorithms(p3, stride=2) == ()

    def test_unknown_algorithm_raises(self):
        p3 = ConvParams.from_output(ni=4, no=4, ro=8, co=8, kr=3, kc=3, b=2)
        with pytest.raises(ValueError, match="unknown algorithm"):
            algorithm_legal("fft", p3)

    def test_illegal_plan_refused(self):
        p5 = ConvParams.from_output(ni=4, no=4, ro=8, co=8, kr=5, kc=5, b=2)
        with pytest.raises(PlanError):
            make_lowered_plan("winograd", p5)

    def test_resolve_algorithms(self):
        assert resolve_algorithms(None) == ("direct",)
        assert resolve_algorithms("all") == ALGORITHMS
        assert resolve_algorithms("winograd") == ("winograd",)
        assert resolve_algorithms(("winograd", "direct")) == (
            "direct",
            "winograd",
        )
        with pytest.raises(ValueError):
            resolve_algorithms(("direct", "fft"))
        with pytest.raises(ValueError):
            resolve_algorithms(())


class TestParity:
    @pytest.mark.parametrize("params", AWKWARD, ids=lambda p: p.describe())
    @pytest.mark.parametrize("backend", ["numpy", "mesh-fast"])
    def test_lowered_matches_reference(self, params, backend):
        for algo in LOWERED:
            if not algorithm_legal(algo, params):
                continue
            out, expected, _ = _run(algo, params, backend)
            np.testing.assert_allclose(out, expected, rtol=1e-10, atol=1e-10)

    @pytest.mark.parametrize("algo", LOWERED)
    def test_full_mesh_simulation_parity(self, algo):
        params = ConvParams.from_output(ni=8, no=8, ro=9, co=7, kr=3, kc=3, b=3)
        out, expected, _ = _run(algo, params, "mesh")
        np.testing.assert_allclose(out, expected, rtol=1e-10, atol=1e-10)

    @pytest.mark.parametrize("algo", LOWERED)
    def test_bias_relu_epilogue(self, algo):
        params = ConvParams.from_output(ni=8, no=8, ro=8, co=8, kr=3, kc=3, b=2)
        bias = np.linspace(-1.0, 1.0, params.no)
        out, expected, _ = _run(
            algo, params, "numpy", bias=bias, activation="relu"
        )
        np.testing.assert_allclose(out, expected, rtol=1e-10, atol=1e-10)


class TestEngineContracts:
    def test_direct_equivalent_flops(self):
        """Lowered reports budget the layer's direct flops, so Gflop/s
        compares across families (Winograd's arithmetic saving shows up as
        rate, not as a smaller numerator)."""
        params = ConvParams.from_output(ni=8, no=8, ro=8, co=8, kr=3, kc=3, b=4)
        for algo in LOWERED:
            plan = make_lowered_plan(algo, params)
            report = engine_for_plan(plan).evaluate()
            assert report.flops == params.flops()
            assert report.seconds > 0
            assert report.bytes_get > 0 and report.bytes_put > 0

    def test_rejects_fault_plan(self):
        from repro.faults import FaultPlan, FaultSpec

        params = ConvParams.from_output(ni=8, no=8, ro=8, co=8, kr=3, kc=3, b=4)
        plan = make_lowered_plan("im2col", params)
        with pytest.raises(PlanError, match="degraded"):
            engine_for_plan(plan, fault_plan=FaultPlan(FaultSpec(seed=0)))

    def test_rejects_fused_pool(self):
        params = ConvParams.from_output(ni=8, no=8, ro=8, co=8, kr=3, kc=3, b=4)
        plan = make_lowered_plan("winograd", params)
        with pytest.raises(PlanError, match="fused pooling"):
            engine_for_plan(plan, fused_pool=2)

    def test_counters_and_spans(self):
        from repro.telemetry import Telemetry

        params = ConvParams.from_output(ni=8, no=8, ro=8, co=8, kr=3, kc=3, b=2)
        telemetry = Telemetry()
        rng = np.random.default_rng(0)
        plan = make_lowered_plan("winograd", params)
        engine = engine_for_plan(plan, telemetry=telemetry)
        engine.run(
            rng.standard_normal(params.input_shape),
            rng.standard_normal(params.filter_shape),
        )
        counters = telemetry.counters.as_dict()
        assert counters["engine.runs"] == 1
        assert counters["engine.bytes_get"] > 0
        assert counters["engine.flops"] == params.flops()

    def test_gemm_blocking_enumeration_fits_and_dedupes(self):
        params = ConvParams.from_output(ni=16, no=16, ro=16, co=16, kr=3, kc=3, b=8)
        for algo in LOWERED:
            blockings = enumerate_gemm_blockings(algo, params)
            assert blockings, algo
            assert len(set(blockings)) == len(blockings)
        p5 = ConvParams.from_output(ni=4, no=4, ro=8, co=8, kr=5, kc=5, b=2)
        assert enumerate_gemm_blockings("winograd", p5) == []


class TestSerialization:
    @pytest.mark.parametrize("algo", LOWERED)
    def test_plan_round_trip(self, algo):
        params = ConvParams.from_output(ni=8, no=8, ro=8, co=8, kr=3, kc=3, b=4)
        plan = make_lowered_plan(algo, params)
        data = plan_to_dict(plan)
        assert data["algorithm"] == algo
        assert data["blocking"]["kind"] == "gemm"
        rebuilt = plan_from_dict(data)
        assert rebuilt.algorithm == algo
        assert rebuilt.blocking == plan.blocking
        assert plan_from_json(plan_to_json(plan)).signature() == plan.signature()

    def test_direct_plan_dict_has_no_algorithm_field(self):
        """Pre-zoo direct plan dicts must stay byte-identical."""
        from repro.core.plans import ImageSizeAwarePlan

        params = ConvParams.from_output(ni=16, no=16, ro=16, co=16, kr=3, kc=3, b=8)
        data = plan_to_dict(ImageSizeAwarePlan(params))
        assert "algorithm" not in data

    def test_candidate_round_trip(self):
        cand = Candidate(
            family="winograd",
            blocking=GemmBlocking(b_m=8, b_n=64, b_k=8),
            algorithm="winograd",
        )
        data = cand.to_dict()
        assert data["algorithm"] == "winograd"
        assert Candidate.from_dict(data) == cand

    def test_pre_zoo_candidate_dict_defaults_to_direct(self):
        """A candidate dict serialized before the zoo existed (no
        ``algorithm`` field) must load as a direct candidate."""
        legacy = {
            "family": "image-size-aware",
            "blocking": {
                "kind": "image",
                "b_b": 8,
                "b_co": 16,
                "promote_input": False,
                "promote_filter": True,
                "b_ni": None,
            },
            "register_blocking": {"rb_b": 16, "rb_no": 4},
        }
        cand = Candidate.from_dict(legacy)
        assert cand.algorithm == "direct"
        # and it round-trips back without growing an algorithm field
        assert "algorithm" not in cand.to_dict()


class TestEnumeration:
    def test_default_enumeration_is_direct_only(self):
        params = ConvParams.from_output(ni=16, no=16, ro=16, co=16, kr=3, kc=3, b=8)
        cands = enumerate_candidates(params)
        assert all(c.algorithm == "direct" for c in cands)

    def test_zoo_enumeration_adds_lowered_families(self):
        params = ConvParams.from_output(ni=16, no=16, ro=16, co=16, kr=3, kc=3, b=8)
        cands = enumerate_candidates(params, algorithms="all")
        algos = {c.algorithm for c in cands}
        assert algos == {"direct", "im2col", "winograd"}

    def test_winograd_never_enumerated_for_5x5(self):
        p5 = ConvParams.from_output(ni=8, no=8, ro=12, co=12, kr=5, kc=5, b=4)
        cands = enumerate_candidates(p5, algorithms="all")
        algos = {c.algorithm for c in cands}
        assert "winograd" not in algos
        assert "im2col" in algos

    def test_lowered_only_search(self):
        params = ConvParams.from_output(ni=16, no=16, ro=16, co=16, kr=3, kc=3, b=8)
        cands = enumerate_candidates(params, algorithms=("winograd",))
        assert cands
        assert all(c.algorithm == "winograd" for c in cands)
        # every candidate builds into a working plan
        plan = cands[0].build(params)
        assert plan.algorithm == "winograd"
