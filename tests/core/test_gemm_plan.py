"""swGEMM: the dense-matmul plan for fully-connected layers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import PlanError
from repro.common.units import GB
from repro.core.gemm_plan import (
    GemmEngine,
    GemmParams,
    GemmPlan,
    choose_gemm_blocking,
    rbw_gemm,
    swgemm,
)


class TestParams:
    def test_flops(self):
        assert GemmParams(4, 5, 6).flops() == 2 * 4 * 5 * 6

    def test_validation(self):
        with pytest.raises(ValueError):
            GemmParams(0, 1, 1)


class TestRBW:
    def test_bigger_tiles_lower_rbw(self):
        assert rbw_gemm(64, 64, 256) < rbw_gemm(16, 16, 256)

    def test_deeper_k_lower_rbw(self):
        assert rbw_gemm(32, 32, 512) < rbw_gemm(32, 32, 64)

    def test_validation(self):
        with pytest.raises(ValueError):
            rbw_gemm(0, 1, 1)


class TestBlockingChooser:
    def test_small_problem_whole(self):
        params = GemmParams(16, 16, 32)
        assert choose_gemm_blocking(params) == (16, 16, 32)

    def test_large_problem_tiled(self):
        params = GemmParams(4096, 4096, 4096)
        b_m, b_n, b_k = choose_gemm_blocking(params)
        assert b_m < 4096 and b_n < 4096 and b_k < 4096
        assert min(b_m, b_n, b_k) >= 128  # K-chunking keeps tiles large

    def test_k_chunking_unlocks_deep_reductions(self):
        # A reduction too deep for full-K panels still plans fine.
        b_m, b_n, b_k = choose_gemm_blocking(GemmParams(8, 8, 10**7))
        assert b_k < 10**7


class TestFunctional:
    def test_matches_matmul(self, rng):
        a = rng.standard_normal((48, 40))
        b = rng.standard_normal((40, 56))
        assert np.allclose(swgemm(a, b), a @ b)

    def test_mesh_backend_matches(self, rng):
        a = rng.standard_normal((16, 24))
        b = rng.standard_normal((24, 32))
        plan = GemmPlan(GemmParams(16, 32, 24), blocking=(8, 8, 24))
        out, _ = GemmEngine(plan, backend="mesh").run(a, b)
        assert np.allclose(out, a @ b)

    def test_tiles_cover_output(self):
        plan = GemmPlan(GemmParams(20, 30, 8), blocking=(8, 16, 8))
        covered = np.zeros((20, 30), dtype=bool)
        for m0, m_len, n0, n_len in plan.tiles():
            assert not covered[m0 : m0 + m_len, n0 : n0 + n_len].any()
            covered[m0 : m0 + m_len, n0 : n0 + n_len] = True
        assert covered.all()

    def test_shape_validation(self, rng):
        plan = GemmPlan(GemmParams(4, 4, 4))
        with pytest.raises(PlanError):
            GemmEngine(plan).run(rng.standard_normal((4, 5)), rng.standard_normal((4, 4)))
        with pytest.raises(PlanError):
            swgemm(rng.standard_normal((4, 5)), rng.standard_normal((4, 4)))

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=20, deadline=None)
    def test_matches_matmul_property(self, m, n, k, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m * 4, k * 4))
        b = rng.standard_normal((k * 4, n * 4))
        assert np.allclose(swgemm(a, b), a @ b)


class TestTiming:
    def test_fc_layer_performance(self):
        """A big FC layer (4096x4096 weights, batch 128) should land in the
        same memory-bound band as the convolutions."""
        plan = GemmPlan(GemmParams(m=4096, n=128, k=4096))
        report = GemmEngine(plan).evaluate()
        assert report.flops == 2 * 4096 * 128 * 4096
        assert 50 < report.gflops < 742.4

    def test_estimate_positive(self):
        est = GemmPlan(GemmParams(512, 512, 512)).estimate()
        assert 0 < est.gflops <= 742.4
        assert est.rbw_mem / GB > 0

    def test_deep_k_better_efficiency(self):
        shallow = GemmEngine(GemmPlan(GemmParams(256, 256, 32))).evaluate()
        deep = GemmEngine(GemmPlan(GemmParams(256, 256, 2048))).evaluate()
        assert deep.efficiency > shallow.efficiency

    def test_unknown_backend_rejected(self):
        with pytest.raises(PlanError):
            GemmEngine(GemmPlan(GemmParams(4, 4, 4)), backend="tpu")
