"""Model-guided plan selection."""

import pytest

from repro.common.errors import PlanError
from repro.core.params import ConvParams
from repro.core.planner import PlanChoice, plan_convolution


class TestPlanSelection:
    def test_returns_best_of_both_families(self, paper_params):
        choice = plan_convolution(paper_params)
        assert choice.kind in ("image-size-aware", "batch-size-aware")
        assert choice.estimate.flops >= max(
            (alt.flops for alt in choice.alternatives), default=0.0
        )

    def test_alternatives_reported(self, paper_params):
        choice = plan_convolution(paper_params)
        assert len(choice.alternatives) == 1

    def test_small_batch_prefers_image_plan(self):
        # B=8 makes Eq. 2's 1/B term huge; column blocking must win.
        params = ConvParams.from_output(ni=128, no=128, ro=64, co=64, kr=3, kc=3, b=8)
        choice = plan_convolution(params)
        assert choice.kind == "image-size-aware"

    def test_plan_feasible_for_tiny_problem(self, small_params):
        choice = plan_convolution(small_params)
        choice.plan.validate()

    def test_describe_mentions_choice(self, paper_params):
        text = plan_convolution(paper_params).describe()
        assert "chosen" in text
        assert "rejected" in text

    def test_batch_family_dropped_when_infeasible(self):
        # A batch too large for any whole-batch LDM blocking: only the
        # image family remains a candidate.
        params = ConvParams.from_output(ni=64, no=64, ro=16, co=16, kr=3, kc=3, b=16384)
        choice = plan_convolution(params)
        assert choice.kind == "image-size-aware"
        assert choice.alternatives == []

    def test_choice_is_deterministic(self, paper_params):
        a = plan_convolution(paper_params)
        b = plan_convolution(paper_params)
        assert a.kind == b.kind
        assert a.estimate.flops == pytest.approx(b.estimate.flops)
