"""Memoized filter-layout packing: correctness, reuse, invalidation.

The engine packs each ``(kr, kc, ni-block)`` filter slice into a
contiguous operand once per ``(weights, version)`` pair and multiplies the
pack directly on the numpy backend.  These tests pin the three properties
serving depends on: packed output is bit-identical to the unpacked path,
repeated inference packs exactly once, and an in-place parameter update
(the training loop) invalidates the pack rather than serving stale
weights.
"""

import numpy as np
import pytest

from repro.core.conv import ConvolutionEngine
from repro.core.layers import Conv2D, ReLU
from repro.core.network import SGD, Sequential
from repro.core.params import ConvParams
from repro.core.planner import plan_convolution
from repro.core.reference import conv2d_reference
from repro.telemetry import Telemetry

PARAMS = ConvParams(ni=8, no=8, ri=10, ci=10, kr=3, kc=3, b=4)


def _engine(telemetry=None):
    return ConvolutionEngine(
        plan_convolution(PARAMS).plan, backend="numpy", telemetry=telemetry
    )


def _data(seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(PARAMS.input_shape)
    w = rng.standard_normal(PARAMS.filter_shape)
    return x, w


class TestPackedParity:
    def test_packed_run_is_bit_identical_to_unpacked(self):
        x, w = _data()
        unpacked, _ = _engine().run(x, w)
        packed, _ = _engine().run(x, w, filter_version=0)
        np.testing.assert_array_equal(packed, unpacked)

    def test_packed_run_matches_reference(self):
        x, w = _data(1)
        out, _ = _engine().run(x, w, filter_version=0)
        np.testing.assert_allclose(
            out, conv2d_reference(x, w), rtol=1e-10, atol=1e-10
        )

    def test_fused_epilogue_survives_packing(self):
        x, w = _data(2)
        bias = np.linspace(-0.5, 0.5, PARAMS.no)
        plain, _ = _engine().run(x, w, bias=bias, activation="relu")
        packed, _ = _engine().run(
            x, w, bias=bias, activation="relu", filter_version=0
        )
        np.testing.assert_array_equal(packed, plain)


class TestPackMemoization:
    def test_repeated_runs_pack_exactly_once(self):
        telem = Telemetry()
        engine = _engine(telem)
        x, w = _data(3)
        engine.run(x, w, filter_version=0)
        packs = telem.counters.get("engine.filter_pack.packs")
        assert packs > 0
        for _ in range(3):
            engine.run(x, w, filter_version=0)
        assert telem.counters.get("engine.filter_pack.packs") == packs
        assert telem.counters.get("engine.filter_pack.invalidations") == 0

    def test_prepack_makes_first_run_free(self):
        telem = Telemetry()
        engine = _engine(telem)
        x, w = _data(4)
        slices = engine.prepack_filters(w, version=0)
        assert slices > 0
        packs = telem.counters.get("engine.filter_pack.packs")
        assert packs == slices
        engine.run(x, w, filter_version=0)
        assert telem.counters.get("engine.filter_pack.packs") == packs

    def test_prepack_is_idempotent(self):
        telem = Telemetry()
        engine = _engine(telem)
        _, w = _data(5)
        first = engine.prepack_filters(w, version=0)
        second = engine.prepack_filters(w, version=0)
        assert first == second
        assert telem.counters.get("engine.filter_pack.packs") == first

    def test_none_version_skips_packing(self):
        telem = Telemetry()
        engine = _engine(telem)
        x, w = _data(6)
        engine.run(x, w)
        assert telem.counters.get("engine.filter_pack.packs") == 0


class TestPackInvalidation:
    def test_version_bump_drops_stale_pack(self):
        telem = Telemetry()
        engine = _engine(telem)
        x, w = _data(7)
        out_v0, _ = engine.run(x, w, filter_version=0)
        packs_v0 = telem.counters.get("engine.filter_pack.packs")
        # Mutate the weights in place — exactly what SGD does — and bump
        # the version.  A stale pack would reproduce out_v0.
        w *= 0.5
        out_v1, _ = engine.run(x, w, filter_version=1)
        assert telem.counters.get("engine.filter_pack.invalidations") == 1
        assert telem.counters.get("engine.filter_pack.packs") == 2 * packs_v0
        np.testing.assert_array_equal(out_v1, out_v0 * 0.5)

    def test_different_tensor_object_invalidates(self):
        telem = Telemetry()
        engine = _engine(telem)
        x, w = _data(8)
        engine.run(x, w, filter_version=0)
        out_copy, _ = engine.run(x, w.copy() * 2.0, filter_version=0)
        assert telem.counters.get("engine.filter_pack.invalidations") == 1
        np.testing.assert_allclose(
            out_copy, conv2d_reference(x, w * 2.0), rtol=1e-10, atol=1e-10
        )


class TestTrainingLoopRegression:
    def test_sgd_step_invalidates_layer_pack(self):
        """A simulated-engine training loop must not serve pre-update
        weights from a memoized pack after ``SGD.step``."""
        rng = np.random.default_rng(9)
        conv = Conv2D(4, 4, 3, 3, rng=rng, engine="simulated")
        net = Sequential([conv, ReLU()])
        opt = SGD(net, lr=0.05)
        x = rng.standard_normal((2, 4, 8, 8))
        before = conv._w_version
        out1 = net.forward(x)
        grad = np.ones_like(out1)
        net.backward(grad)
        opt.step()
        assert conv._w_version == before + 1
        out2 = net.forward(x)
        # The update changed the weights, so a correct (invalidated)
        # forward differs from the stale one...
        assert not np.array_equal(out2, out1)
        # ...and matches the reference computed from the *current* weights.
        expected = np.maximum(
            conv2d_reference(x, conv.w) + conv.bias[None, :, None, None], 0.0
        )
        np.testing.assert_allclose(out2, expected, rtol=1e-10, atol=1e-10)
