"""Fused conv -> ReLU (-> pool) pipelines: parity, gradients, and timing."""

import numpy as np
import pytest

from repro.common.errors import PlanError
from repro.core.conv import ConvolutionEngine
from repro.core.fusion import (
    FusedConvBlock,
    elementwise_pass_seconds,
    fuse_layers,
    unfused_pipeline_seconds,
)
from repro.core.layers import AvgPool2D, Conv2D, Flatten, ReLU
from repro.core.network import Sequential
from repro.core.planner import plan_convolution
from repro.core.reference import conv2d_reference


@pytest.fixture
def stack(rng):
    """An unfused conv -> ReLU -> pool stack plus matching input."""
    conv = Conv2D(ni=16, no=16, kr=3, kc=3, rng=rng)
    x = rng.standard_normal((8, 16, 10, 10))
    return conv, x


def _reference_pipeline(conv, x, pool=2):
    y = conv2d_reference(x, conv.w) + conv.bias[None, :, None, None]
    y = np.maximum(y, 0.0)
    b, c, h, w = y.shape
    s = pool
    return y.reshape(b, c, h // s, s, w // s, s).mean(axis=(3, 5))


class TestFusedForward:
    def test_conv_relu_pool_parity(self, stack):
        conv, x = stack
        block = FusedConvBlock(conv, relu=True, pool=2)
        out = block.forward(x)
        assert np.allclose(out, _reference_pipeline(conv, x))

    def test_conv_relu_only(self, stack):
        conv, x = stack
        block = FusedConvBlock(conv, relu=True, pool=1)
        expected = np.maximum(
            conv2d_reference(x, conv.w) + conv.bias[None, :, None, None], 0.0
        )
        assert np.allclose(block.forward(x), expected)

    def test_nondividing_pool_raises(self, stack):
        conv, x = stack
        block = FusedConvBlock(conv, relu=True, pool=3)  # 8x8 output, s=3
        with pytest.raises(PlanError):
            block.forward(x)

    def test_invalid_pool_size(self, stack):
        conv, _ = stack
        with pytest.raises(PlanError):
            FusedConvBlock(conv, pool=0)


class TestFusedBackward:
    def test_gradients_match_unfused_stack(self, stack, rng):
        conv, x = stack
        unfused = Sequential([conv, ReLU(), AvgPool2D(2)])
        out = unfused.forward(x)
        grad_out = rng.standard_normal(out.shape)
        grad_x_ref = unfused.backward(grad_out)
        grads_ref = {k: v.copy() for k, v in conv.gradients().items()}

        fused = FusedConvBlock(conv, relu=True, pool=2)
        assert np.allclose(fused.forward(x), out)
        grad_x = fused.backward(grad_out)
        assert np.allclose(grad_x, grad_x_ref)
        for name, ref in grads_ref.items():
            assert np.allclose(fused.gradients()[name], ref)

    def test_backward_before_forward_raises(self, stack):
        conv, _ = stack
        with pytest.raises(PlanError):
            FusedConvBlock(conv).backward(np.zeros((8, 16, 8, 8)))


class TestFuseLayers:
    def test_pattern_matching(self, rng):
        layers = [
            Conv2D(ni=16, no=16, kr=3, kc=3, rng=rng),
            ReLU(),
            AvgPool2D(2),
            Conv2D(ni=16, no=16, kr=3, kc=3, rng=rng),
            ReLU(),
            Flatten(),
        ]
        fused = fuse_layers(layers)
        assert [type(l).__name__ for l in fused] == [
            "FusedConvBlock",
            "FusedConvBlock",
            "Flatten",
        ]
        assert fused[0].pool == 2 and fused[1].pool == 1

    def test_bare_conv_passes_through(self, rng):
        conv = Conv2D(ni=16, no=16, kr=3, kc=3, rng=rng)
        fused = fuse_layers([conv, Flatten()])
        assert fused[0] is conv

    def test_sequential_fused_shares_parameters(self, stack):
        conv, x = stack
        net = Sequential([conv, ReLU(), AvgPool2D(2)])
        fused = net.fused()
        assert fused.layers[0].parameters()["w"] is conv.w
        assert np.allclose(fused.forward(x), net.forward(x))


class TestFusedTiming:
    def test_fused_pipeline_is_faster(self, small_params):
        """The whole point: fused saves the ReLU + pool MEM passes."""
        plan = plan_convolution(small_params).plan
        fused_report = ConvolutionEngine(plan, fused_pool=2).evaluate()
        unfused_conv = ConvolutionEngine(plan).evaluate()
        baseline = unfused_pipeline_seconds(unfused_conv, small_params, pool=2)
        assert fused_report.seconds < baseline

    def test_fused_put_traffic_shrinks(self, small_params):
        plan = plan_convolution(small_params).plan
        plain = ConvolutionEngine(plan).evaluate()
        fused = ConvolutionEngine(plan, fused_pool=2).evaluate()
        # 2x2 pooling stores ~1/4 of the output bytes (ceil per tile).
        assert fused.bytes_put <= -(-plain.bytes_put // 4) * 1.05
        assert fused.bytes_get == plain.bytes_get

    def test_elementwise_pass_is_positive_and_linear(self, spec):
        one = elementwise_pass_seconds(1 << 20, 1 << 20, spec)
        two = elementwise_pass_seconds(2 << 20, 2 << 20, spec)
        assert one > 0
        assert two == pytest.approx(2 * one)

    def test_unfused_baseline_exceeds_conv_alone(self, small_params):
        plan = plan_convolution(small_params).plan
        conv_report = ConvolutionEngine(plan).evaluate()
        assert (
            unfused_pipeline_seconds(conv_report, small_params, pool=2)
            > conv_report.seconds
        )
