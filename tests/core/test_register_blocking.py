"""Register blocking: feasibility against the 32-register file, Eq. 4/5."""

import pytest

from repro.common.errors import RegisterPressureError
from repro.common.units import GB
from repro.core.register_blocking import (
    PAPER_REGISTER_BLOCKING,
    DirectConvRegisterBlocking,
    RegisterBlocking,
    choose_register_blocking,
    enumerate_gemm_blockings,
)
from repro.hw.spec import DEFAULT_SPEC


class TestPaperBlocking:
    def test_is_16_by_4(self):
        assert PAPER_REGISTER_BLOCKING.rb_b == 16
        assert PAPER_REGISTER_BLOCKING.rb_no == 4

    def test_register_budget(self):
        # 4 input vectors + 4 filter vectors + 16 accumulators + reserve.
        blk = PAPER_REGISTER_BLOCKING
        assert blk.input_vectors == 4
        assert blk.accumulators == 16
        assert blk.registers_needed <= 32

    def test_eq5_value(self):
        assert PAPER_REGISTER_BLOCKING.rbw_simd() / GB == pytest.approx(23.2)

    def test_fits_ldm_bandwidth(self):
        assert PAPER_REGISTER_BLOCKING.rbw_simd() < DEFAULT_SPEC.ldm_bandwidth

    def test_fma_per_inner_step_is_16(self):
        assert PAPER_REGISTER_BLOCKING.fma_per_inner_step() == 16


class TestFeasibility:
    def test_oversized_block_infeasible(self):
        big = RegisterBlocking(rb_b=64, rb_no=8)  # 16+8+128 registers
        assert not big.is_feasible()
        with pytest.raises(RegisterPressureError):
            big.check_feasible()

    def test_rb_b_must_be_vector_multiple(self):
        with pytest.raises(ValueError):
            RegisterBlocking(rb_b=10, rb_no=4)

    def test_enumeration_only_feasible(self):
        for blocking in enumerate_gemm_blockings():
            assert blocking.registers_needed <= 32


class TestChooser:
    def test_chooses_paper_setting(self):
        best = choose_register_blocking()
        assert (best.rb_b, best.rb_no) == (16, 4)

    def test_non_simd_choice_differs_or_matches_but_is_feasible(self):
        best = choose_register_blocking(simd=False)
        assert best.is_feasible()

    def test_chosen_minimizes_rbw(self):
        best = choose_register_blocking()
        for other in enumerate_gemm_blockings():
            assert best.rbw_simd() <= other.rbw_simd() + 1e-6


class TestDirectConvBlocking:
    def test_eq3_depends_on_network_filter(self):
        a = DirectConvRegisterBlocking(rb_ri=6, rb_ci=6, rb_kr=3, rb_kc=3)
        b = DirectConvRegisterBlocking(rb_ri=6, rb_ci=6, rb_kr=5, rb_kc=5)
        assert a.rbw() != b.rbw()

    def test_output_block_derived(self):
        blk = DirectConvRegisterBlocking(rb_ri=6, rb_ci=6, rb_kr=3, rb_kc=3)
        assert blk.rb_ro == 4
        assert blk.rb_co == 4

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            DirectConvRegisterBlocking(rb_ri=2, rb_ci=2, rb_kr=3, rb_kc=3)

    def test_rbw_pinned_by_network_filter(self):
        """The paper's reason to reject the direct plan: Eq. 3's RBW cannot
        be tuned freely — it is pinned by the network's Kr/Kc, so a feasible
        small spatial block stays above the GEMM plan's Eq. 5 value."""
        direct = DirectConvRegisterBlocking(rb_ri=4, rb_ci=4, rb_kr=3, rb_kc=3)
        assert direct.is_feasible()
        assert PAPER_REGISTER_BLOCKING.rbw_simd() < direct.rbw()
