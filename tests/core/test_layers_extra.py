"""LRN and Dropout layers (the AlexNet-era additions)."""

import numpy as np
import pytest

from repro.common.errors import PlanError
from repro.core.layers import Dropout, LocalResponseNorm


def _numeric_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = f()
        x[idx] = orig - eps
        minus = f()
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestLRN:
    def test_shape_preserved(self, rng):
        layer = LocalResponseNorm()
        x = rng.standard_normal((2, 8, 3, 3))
        assert layer.forward(x).shape == x.shape

    def test_normalizes_toward_smaller_magnitudes(self, rng):
        layer = LocalResponseNorm(n=3, k=1.0, alpha=1.0, beta=0.75)
        x = np.full((1, 3, 1, 1), 2.0)
        out = layer.forward(x)
        assert np.all(np.abs(out) < np.abs(x))

    def test_single_channel_window(self):
        layer = LocalResponseNorm(n=1, k=2.0, alpha=1e-4, beta=0.75)
        x = np.ones((1, 1, 2, 2))
        out = layer.forward(x)
        expected = 1.0 / (2.0 + 1e-4) ** 0.75
        assert np.allclose(out, expected)

    def test_gradient_numeric(self, rng):
        layer = LocalResponseNorm(n=3, k=2.0, alpha=0.1, beta=0.75)
        x = rng.standard_normal((1, 4, 2, 2))
        g = rng.standard_normal((1, 4, 2, 2))
        layer.forward(x)
        grad = layer.backward(g)
        numeric = _numeric_grad(lambda: float(np.sum(layer.forward(x) * g)), x)
        assert np.allclose(grad, numeric, atol=1e-6)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            LocalResponseNorm(n=4)
        with pytest.raises(ValueError):
            LocalResponseNorm(k=0.0)
        with pytest.raises(PlanError):
            LocalResponseNorm().forward(rng.standard_normal((3, 3)))

    def test_backward_before_forward(self):
        with pytest.raises(PlanError):
            LocalResponseNorm().backward(np.zeros((1, 1, 1, 1)))


class TestDropout:
    def test_eval_mode_identity(self, rng):
        layer = Dropout(0.5)
        layer.training = False
        x = rng.standard_normal((4, 4))
        assert np.array_equal(layer.forward(x), x)

    def test_train_mode_zeroes_and_scales(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((1000,))
        out = layer.forward(x)
        kept = out[out != 0]
        assert np.allclose(kept, 2.0)  # inverted scaling 1/(1-rate)
        assert 0.3 < (out == 0).mean() < 0.7

    def test_expectation_preserved(self):
        layer = Dropout(0.3, rng=np.random.default_rng(1))
        x = np.ones((20000,))
        out = layer.forward(x)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, rng=np.random.default_rng(2))
        x = np.ones((100,))
        out = layer.forward(x)
        grad = layer.backward(np.ones((100,)))
        assert np.array_equal(grad == 0, out == 0)

    def test_zero_rate(self, rng):
        layer = Dropout(0.0)
        x = rng.standard_normal((8,))
        assert np.array_equal(layer.forward(x), x)

    def test_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(PlanError):
            Dropout(0.5).backward(np.zeros(3))
