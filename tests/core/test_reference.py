"""Reference convolutions: the three oracles must agree, gradients check."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.reference import (
    conv2d_backward_reference,
    conv2d_im2col,
    conv2d_naive,
    conv2d_reference,
)


def _random_case(rng, b=2, ni=3, no=4, ri=6, ci=7, kr=3, kc=2):
    x = rng.standard_normal((b, ni, ri, ci))
    w = rng.standard_normal((no, ni, kr, kc))
    return x, w


class TestForwardOracles:
    def test_reference_matches_naive(self, rng):
        x, w = _random_case(rng)
        assert np.allclose(conv2d_reference(x, w), conv2d_naive(x, w))

    def test_im2col_matches_reference(self, rng):
        x, w = _random_case(rng)
        assert np.allclose(conv2d_im2col(x, w), conv2d_reference(x, w))

    def test_identity_filter(self):
        x = np.arange(2 * 1 * 3 * 3, dtype=float).reshape(2, 1, 3, 3)
        w = np.ones((1, 1, 1, 1))
        assert np.array_equal(conv2d_reference(x, w), x)

    def test_output_shape(self, rng):
        x, w = _random_case(rng, ri=10, ci=8, kr=3, kc=5)
        assert conv2d_reference(x, w).shape == (2, 4, 8, 4)

    def test_channel_mismatch_rejected(self, rng):
        x = rng.standard_normal((1, 3, 5, 5))
        w = rng.standard_normal((2, 4, 3, 3))
        with pytest.raises(ValueError):
            conv2d_reference(x, w)

    def test_wrong_rank_rejected(self, rng):
        with pytest.raises(ValueError):
            conv2d_reference(rng.standard_normal((3, 5, 5)), rng.standard_normal((1, 3, 3, 3)))

    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=2),
    )
    @settings(max_examples=30, deadline=None)
    def test_oracles_agree_property(self, b, ni, no, kr, kc, extra_r, extra_c):
        rng = np.random.default_rng(b * 100 + ni * 10 + no)
        ri, ci = kr + extra_r, kc + extra_c
        x = rng.standard_normal((b, ni, ri, ci))
        w = rng.standard_normal((no, ni, kr, kc))
        ref = conv2d_reference(x, w)
        assert np.allclose(ref, conv2d_naive(x, w))
        assert np.allclose(ref, conv2d_im2col(x, w))

    def test_linearity(self, rng):
        x, w = _random_case(rng)
        assert np.allclose(
            conv2d_reference(2.0 * x, w), 2.0 * conv2d_reference(x, w)
        )

    def test_additivity_in_filters(self, rng):
        x, w1 = _random_case(rng)
        _, w2 = _random_case(np.random.default_rng(5))
        assert np.allclose(
            conv2d_reference(x, w1 + w2),
            conv2d_reference(x, w1) + conv2d_reference(x, w2),
        )


class TestBackward:
    def test_gradient_shapes(self, rng):
        x, w = _random_case(rng)
        out = conv2d_reference(x, w)
        gx, gw = conv2d_backward_reference(x, w, np.ones_like(out))
        assert gx.shape == x.shape
        assert gw.shape == w.shape

    def test_grad_w_numeric(self, rng):
        x, w = _random_case(rng, b=1, ni=2, no=2, ri=4, ci=4, kr=2, kc=2)
        g = rng.standard_normal(conv2d_reference(x, w).shape)
        _, gw = conv2d_backward_reference(x, w, g)
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (1, 1, 1, 1), (0, 1, 1, 0)]:
            w_plus = w.copy()
            w_plus[idx] += eps
            w_minus = w.copy()
            w_minus[idx] -= eps
            numeric = (
                np.sum(conv2d_reference(x, w_plus) * g)
                - np.sum(conv2d_reference(x, w_minus) * g)
            ) / (2 * eps)
            assert gw[idx] == pytest.approx(numeric, rel=1e-5, abs=1e-7)

    def test_grad_x_numeric(self, rng):
        x, w = _random_case(rng, b=1, ni=2, no=2, ri=4, ci=4, kr=2, kc=2)
        g = rng.standard_normal(conv2d_reference(x, w).shape)
        gx, _ = conv2d_backward_reference(x, w, g)
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (0, 1, 2, 3), (0, 0, 3, 1)]:
            x_plus = x.copy()
            x_plus[idx] += eps
            x_minus = x.copy()
            x_minus[idx] -= eps
            numeric = (
                np.sum(conv2d_reference(x_plus, w) * g)
                - np.sum(conv2d_reference(x_minus, w) * g)
            ) / (2 * eps)
            assert gx[idx] == pytest.approx(numeric, rel=1e-5, abs=1e-7)

    def test_grad_shape_mismatch_rejected(self, rng):
        x, w = _random_case(rng)
        with pytest.raises(ValueError):
            conv2d_backward_reference(x, w, np.zeros((1, 1, 1, 1)))
