"""Fused conv + bias + activation epilogues."""

import numpy as np
import pytest

from repro.api import SwDNNHandle
from repro.common.errors import PlanError
from repro.core.conv import ConvolutionEngine
from repro.core.params import ConvParams
from repro.core.plans import BatchSizeAwarePlan, ImageSizeAwarePlan
from repro.core.reference import conv2d_reference


@pytest.fixture
def case(rng, small_params):
    x = rng.standard_normal(small_params.input_shape)
    w = rng.standard_normal(small_params.filter_shape)
    bias = rng.standard_normal(small_params.no)
    return small_params, x, w, bias


class TestFusedEpilogue:
    def test_bias_fused(self, case):
        params, x, w, bias = case
        out, _ = ConvolutionEngine(ImageSizeAwarePlan(params)).run(x, w, bias=bias)
        expected = conv2d_reference(x, w) + bias[None, :, None, None]
        assert np.allclose(out, expected)

    def test_relu_fused(self, case):
        params, x, w, _ = case
        out, _ = ConvolutionEngine(BatchSizeAwarePlan(params)).run(
            x, w, activation="relu"
        )
        expected = np.maximum(conv2d_reference(x, w), 0.0)
        assert np.allclose(out, expected)

    def test_bias_then_relu(self, case):
        params, x, w, bias = case
        out, _ = ConvolutionEngine(ImageSizeAwarePlan(params)).run(
            x, w, bias=bias, activation="relu"
        )
        expected = np.maximum(
            conv2d_reference(x, w) + bias[None, :, None, None], 0.0
        )
        assert np.allclose(out, expected)

    def test_fusion_is_free_in_time(self, case):
        params, x, w, bias = case
        plan = ImageSizeAwarePlan(params)
        _, plain = ConvolutionEngine(plan).run(x, w)
        _, fused = ConvolutionEngine(plan).run(x, w, bias=bias, activation="relu")
        assert fused.seconds == pytest.approx(plain.seconds)
        assert fused.bytes_put == plain.bytes_put

    def test_bad_bias_shape(self, case):
        params, x, w, _ = case
        with pytest.raises(PlanError):
            ConvolutionEngine(ImageSizeAwarePlan(params)).run(
                x, w, bias=np.zeros(params.no + 1)
            )

    def test_unknown_activation(self, case):
        params, x, w, _ = case
        with pytest.raises(PlanError):
            ConvolutionEngine(ImageSizeAwarePlan(params)).run(
                x, w, activation="gelu"
            )


class TestHandleFusion:
    def test_through_api(self, case):
        params, x, w, bias = case
        handle = SwDNNHandle()
        out, _ = handle.convolution_forward(x, w, bias=bias, activation="relu")
        expected = np.maximum(
            conv2d_reference(x, w) + bias[None, :, None, None], 0.0
        )
        assert np.allclose(out, expected)
