"""LDM blocking: feasibility against the 64 KB scratchpad."""

import pytest

from repro.common.errors import LDMOverflowError, PlanError
from repro.core.ldm_blocking import (
    BatchBlocking,
    ImageBlocking,
    assert_fits_in_ldm,
    batch_plan_ldm_bytes,
    choose_batch_blocking,
    choose_image_blocking,
    fits_in_ldm,
    image_plan_ldm_bytes,
)
from repro.core.params import ConvParams
from repro.hw.spec import DEFAULT_SPEC


@pytest.fixture
def params():
    return ConvParams.from_output(ni=128, no=128, ro=64, co=64, kr=3, kc=3, b=128)


class TestRegionCalculation:
    def test_image_plan_regions_double_buffered(self, params):
        regions = image_plan_ldm_bytes(params, ImageBlocking(b_b=32, b_co=16))
        names = [name for name, _ in regions]
        assert "input.ping" in names and "input.pong" in names
        assert "filter.ping" in names
        assert "output" in names

    def test_image_plan_input_bytes(self, params):
        regions = dict(image_plan_ldm_bytes(params, ImageBlocking(b_b=32, b_co=16)))
        # Ni * bB * bCo / 64 CPEs * 8 bytes
        assert regions["input.ping"] == 128 * 32 * 16 // 64 * 8

    def test_promotion_grows_tiles(self, params):
        plain = dict(image_plan_ldm_bytes(params, ImageBlocking(b_b=32, b_co=16)))
        promoted = dict(
            image_plan_ldm_bytes(
                params, ImageBlocking(b_b=32, b_co=16, promote_input=True,
                                      promote_filter=True)
            )
        )
        assert promoted["input.ping"] > plain["input.ping"]
        assert promoted["filter.ping"] == plain["filter.ping"] * params.kc

    def test_batch_plan_output_grows_with_bco(self, params):
        small = dict(batch_plan_ldm_bytes(params, BatchBlocking(b_co=4)))
        big = dict(batch_plan_ldm_bytes(params, BatchBlocking(b_co=8)))
        assert big["output"] == 2 * small["output"]


class TestFeasibility:
    def test_small_blocking_fits(self, params):
        regions = image_plan_ldm_bytes(params, ImageBlocking(b_b=8, b_co=4))
        assert fits_in_ldm(regions)

    def test_huge_blocking_rejected(self, params):
        regions = image_plan_ldm_bytes(params, ImageBlocking(b_b=128, b_co=128))
        assert not fits_in_ldm(regions)
        with pytest.raises(LDMOverflowError):
            assert_fits_in_ldm(regions)

    def test_paper_table3_blockings_fit(self, params):
        for b_co in (8, 16):
            assert fits_in_ldm(
                image_plan_ldm_bytes(params, ImageBlocking(b_b=32, b_co=b_co))
            )


class TestChoosers:
    def test_image_choice_fits(self, params):
        blocking = choose_image_blocking(params)
        assert fits_in_ldm(image_plan_ldm_bytes(params, blocking))

    def test_image_choice_never_promotes_input(self, params):
        # Input promotion is opt-in (it beats Eq. 1's model); see plans.py.
        assert not choose_image_blocking(params).promote_input

    def test_batch_choice_fits(self, params):
        blocking = choose_batch_blocking(params)
        assert fits_in_ldm(batch_plan_ldm_bytes(params, blocking))

    def test_batch_choice_maximal(self, params):
        blocking = choose_batch_blocking(params)
        # Doubling bCo with the same promotion must not fit (maximality).
        bigger = BatchBlocking(
            b_co=blocking.b_co * 2, promote_filter=blocking.promote_filter
        )
        assert not fits_in_ldm(batch_plan_ldm_bytes(params, bigger))

    def test_batch_infeasible_for_giant_batch(self):
        huge = ConvParams.from_output(ni=256, no=256, ro=8, co=8, kr=3, kc=3, b=65536)
        with pytest.raises(PlanError):
            choose_batch_blocking(huge)

    def test_image_chooser_handles_small_problems(self):
        tiny = ConvParams(ni=8, no=8, ri=6, ci=6, kr=3, kc=3, b=8)
        blocking = choose_image_blocking(tiny)
        assert fits_in_ldm(image_plan_ldm_bytes(tiny, blocking))


class TestValidation:
    def test_blocking_positive(self):
        with pytest.raises(ValueError):
            ImageBlocking(b_b=0, b_co=4)
        with pytest.raises(ValueError):
            BatchBlocking(b_co=0)
