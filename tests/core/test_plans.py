"""Plan schedules: coverage, traffic consistency, model hookup."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import PlanError
from repro.core.ldm_blocking import BatchBlocking, ImageBlocking
from repro.core.params import ConvParams
from repro.core.plans import (
    BatchSizeAwarePlan,
    ImageSizeAwarePlan,
    make_plan,
)


@pytest.fixture
def params():
    return ConvParams(ni=16, no=16, ri=10, ci=10, kr=3, kc=3, b=16)


def _total_flops(plan, coalesced):
    return sum(step.flops for step in plan.tile_schedule(coalesced=coalesced))


def _total_bytes(plan, coalesced):
    return sum(
        t.nbytes
        for step in plan.tile_schedule(coalesced=coalesced)
        for t in list(step.gets) + list(step.puts)
    )


class TestFlopCoverage:
    def test_image_plan_covers_layer(self, params):
        plan = ImageSizeAwarePlan(params)
        assert _total_flops(plan, False) == params.flops()

    def test_batch_plan_covers_layer(self, params):
        plan = BatchSizeAwarePlan(params)
        assert _total_flops(plan, False) == params.flops()

    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=2),
        st.integers(min_value=4, max_value=8),
    )
    @settings(max_examples=20, deadline=None)
    def test_coverage_property(self, ni8, no8, k2, out):
        params = ConvParams.from_output(
            ni=ni8 * 8, no=no8 * 8, ro=out, co=out, kr=2 * k2 + 1, kc=2 * k2 + 1, b=8
        )
        for family in (ImageSizeAwarePlan, BatchSizeAwarePlan):
            plan = family(params)
            assert _total_flops(plan, False) == params.flops()
            assert _total_flops(plan, True) == params.flops()


class TestCoalescedConsistency:
    def test_bytes_identical(self, params):
        for family in (ImageSizeAwarePlan, BatchSizeAwarePlan):
            plan = family(params)
            assert _total_bytes(plan, True) == _total_bytes(plan, False)

    def test_coalesced_has_no_computespecs(self, params):
        plan = ImageSizeAwarePlan(params)
        for step in plan.tile_schedule(coalesced=True):
            assert step.computes == []

    def test_full_schedule_has_computespecs(self, params):
        plan = ImageSizeAwarePlan(params)
        specs = sum(len(s.computes) for s in plan.tile_schedule())
        assert specs > 0


class TestDMAStreams:
    def test_streams_cover_all_tensors(self, params):
        plan = BatchSizeAwarePlan(params)
        names = {s.name for s in plan.dma_streams()}
        assert names == {"input.get", "filter.get", "output.put"}

    def test_stream_totals_match_schedule(self, params):
        plan = ImageSizeAwarePlan(params)
        assert plan.total_dma_bytes() == _total_bytes(plan, False)

    def test_output_bytes_exact(self, params):
        plan = BatchSizeAwarePlan(params)
        out = next(s for s in plan.dma_streams() if s.name == "output.put")
        assert out.bytes_moved == params.output_bytes()

    def test_streams_cached(self, params):
        plan = ImageSizeAwarePlan(params)
        assert plan.dma_streams() is plan.dma_streams()

    def test_input_traffic_amplified_by_filter(self, params):
        # Unpromoted image plan re-reads the input per (kr, kc).
        plan = ImageSizeAwarePlan(
            params, blocking=ImageBlocking(b_b=8, b_co=4)
        )
        inp = next(s for s in plan.dma_streams() if s.name == "input.get")
        expected = params.b * params.ro * params.co * params.kr * params.kc * params.ni * 8
        assert inp.bytes_moved == expected
        assert inp.bytes_moved > params.input_bytes()


class TestEstimates:
    def test_estimate_produces_positive_gflops(self, params):
        for family in (ImageSizeAwarePlan, BatchSizeAwarePlan):
            est = family(params).estimate()
            assert 0 < est.gflops <= 742.4

    def test_estimate_plan_label(self, params):
        assert ImageSizeAwarePlan(params).estimate().plan == "image-size-aware"
        assert BatchSizeAwarePlan(params).estimate().plan == "batch-size-aware"

    def test_promoted_batch_plan_lower_rbw(self, params):
        plain = BatchSizeAwarePlan(
            params, blocking=BatchBlocking(b_co=4, promote_filter=False)
        )
        promoted = BatchSizeAwarePlan(
            params, blocking=BatchBlocking(b_co=4, promote_filter=True)
        )
        assert promoted.rbw_mem() < plain.rbw_mem()

    def test_promoted_batch_plan_less_traffic(self, params):
        plain = BatchSizeAwarePlan(
            params, blocking=BatchBlocking(b_co=4, promote_filter=False)
        )
        promoted = BatchSizeAwarePlan(
            params, blocking=BatchBlocking(b_co=4, promote_filter=True)
        )
        assert promoted.total_dma_bytes() < plain.total_dma_bytes()


class TestMakePlan:
    def test_by_name(self, params):
        assert isinstance(make_plan("image", params), ImageSizeAwarePlan)
        assert isinstance(make_plan("batch", params), BatchSizeAwarePlan)

    def test_unknown_rejected(self, params):
        with pytest.raises(PlanError):
            make_plan("frequency-domain", params)
