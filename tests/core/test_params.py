"""Convolution parameters (Table I)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import ConvParams


class TestDerivedSizes:
    def test_output_size(self):
        p = ConvParams(ni=3, no=5, ri=10, ci=12, kr=3, kc=4, b=2)
        assert p.ro == 8
        assert p.co == 9

    def test_shapes(self):
        p = ConvParams(ni=3, no=5, ri=10, ci=12, kr=3, kc=4, b=2)
        assert p.input_shape == (2, 3, 10, 12)
        assert p.filter_shape == (5, 3, 3, 4)
        assert p.output_shape == (2, 5, 8, 9)

    def test_flops(self):
        p = ConvParams(ni=2, no=3, ri=4, ci=4, kr=3, kc=3, b=5)
        # 2 * B*No*Ro*Co*Ni*Kr*Kc = 2*5*3*2*2*2*3*3
        assert p.flops() == 2 * 5 * 3 * 2 * 2 * 2 * 3 * 3

    def test_bytes(self):
        p = ConvParams(ni=2, no=3, ri=4, ci=4, kr=3, kc=3, b=5)
        assert p.input_bytes() == 5 * 2 * 4 * 4 * 8
        assert p.filter_bytes() == 3 * 2 * 3 * 3 * 8
        assert p.output_bytes() == 5 * 3 * 2 * 2 * 8
        assert p.total_bytes() == (
            p.input_bytes() + p.filter_bytes() + p.output_bytes()
        )

    def test_arithmetic_intensity_positive(self):
        p = ConvParams(ni=16, no=16, ri=8, ci=8, kr=3, kc=3, b=8)
        assert p.arithmetic_intensity() > 0


class TestValidation:
    def test_positive_required(self):
        with pytest.raises(ValueError):
            ConvParams(ni=0, no=1, ri=4, ci=4, kr=1, kc=1, b=1)

    def test_filter_larger_than_image_rejected(self):
        with pytest.raises(ValueError):
            ConvParams(ni=1, no=1, ri=2, ci=2, kr=3, kc=3, b=1)

    def test_non_integer_rejected(self):
        with pytest.raises(ValueError):
            ConvParams(ni=1.5, no=1, ri=4, ci=4, kr=1, kc=1, b=1)


class TestConstructors:
    def test_from_output(self):
        p = ConvParams.from_output(ni=64, no=64, ro=64, co=64, kr=3, kc=3, b=128)
        assert p.ri == 66
        assert p.ro == 64

    def test_with_rows(self):
        p = ConvParams.from_output(ni=8, no=8, ro=16, co=16, kr=3, kc=3, b=8)
        strip = p.with_rows(4)
        assert strip.ro == 4
        assert strip.co == p.co
        assert strip.ri == 4 + p.kr - 1

    def test_with_rows_validated(self):
        p = ConvParams.from_output(ni=8, no=8, ro=16, co=16, kr=3, kc=3, b=8)
        with pytest.raises(Exception):
            p.with_rows(17)

    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_strip_flops_sum_to_total(self, rows_a, rows_b, k):
        total_rows = rows_a + rows_b
        p = ConvParams.from_output(
            ni=8, no=8, ro=total_rows, co=8, kr=k, kc=k, b=4
        )
        assert (
            p.with_rows(rows_a).flops() + p.with_rows(rows_b).flops() == p.flops()
        )

    def test_describe_mentions_sizes(self):
        p = ConvParams(ni=3, no=5, ri=10, ci=12, kr=3, kc=4, b=2)
        text = p.describe()
        assert "Ni=3" in text and "No=5" in text
