"""The model zoo: network definitions and training-step timing."""

import pytest

from repro.common.errors import PlanError
from repro.core.zoo import (
    NETWORKS,
    ZooLayer,
    cifar_quick,
    time_network,
    vgg16,
)
from repro.core.gemm_plan import GemmParams


class TestDefinitions:
    def test_vgg16_shape(self):
        layers = vgg16(batch=16)
        convs = [l for l in layers if l.kind == "conv"]
        fcs = [l for l in layers if l.kind == "fc"]
        assert len(convs) == 13
        assert len(fcs) == 3

    def test_vgg16_channel_chain(self):
        convs = [l.conv for l in vgg16(batch=8) if l.kind == "conv"]
        # Each block's input channels equal the previous block's output.
        for prev, cur in zip(convs, convs[1:]):
            assert cur.ni == prev.no

    def test_vgg16_spatial_pyramid(self):
        convs = [l.conv for l in vgg16(batch=8) if l.kind == "conv"]
        sizes = [c.ro for c in convs]
        assert sizes[0] == 224
        assert sizes[-1] == 14
        assert sizes == sorted(sizes, reverse=True)

    def test_all_filters_3x3(self):
        for layer in vgg16(batch=8):
            if layer.kind == "conv":
                assert (layer.conv.kr, layer.conv.kc) == (3, 3)

    def test_cifar_quick(self):
        layers = cifar_quick(batch=64)
        assert layers[0].conv.b == 64
        assert layers[-1].fc.m == 10

    def test_registry(self):
        assert set(NETWORKS) == {"vgg16", "cifar_quick"}

    def test_layer_validation(self):
        with pytest.raises(PlanError):
            ZooLayer(name="x", kind="conv")
        with pytest.raises(PlanError):
            ZooLayer(name="x", kind="fc")

    def test_layer_flops(self):
        layer = ZooLayer(name="fc", kind="fc", fc=GemmParams(4, 5, 6))
        assert layer.flops() == 2 * 4 * 5 * 6


class TestTiming:
    @pytest.fixture(scope="class")
    def cifar_timing(self):
        return time_network("cifar_quick", batch=64)

    def test_every_layer_timed(self, cifar_timing):
        assert len(cifar_timing.layers) == 5
        for layer in cifar_timing.layers:
            assert layer.forward_seconds > 0
            assert layer.backward_seconds > 0

    def test_backward_costs_more_than_forward(self, cifar_timing):
        """Two backward convolutions vs one forward."""
        conv_layers = [l for l in cifar_timing.layers if l.kind == "conv"]
        assert sum(l.backward_seconds for l in conv_layers) > sum(
            l.forward_seconds for l in conv_layers
        )

    def test_aggregates(self, cifar_timing):
        assert cifar_timing.step_seconds == pytest.approx(
            sum(l.total_seconds for l in cifar_timing.layers)
        )
        assert cifar_timing.images_per_second > 0
        assert 0 < cifar_timing.sustained_gflops < 4 * 742.4

    def test_unknown_network(self):
        with pytest.raises(PlanError):
            time_network("resnet5000")

    def test_batch_override(self):
        t = time_network("cifar_quick", batch=32)
        assert t.batch == 32
