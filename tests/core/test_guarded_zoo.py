"""Guarded lowered plans: the ``lowered`` tier and its fault-plan demotion.

A lowered (im2col/Winograd) plan on a guarded handle used to be refused
outright when a fault plan was attached.  Now the ladder prepends a
``lowered`` tier: healthy machines run the zoo engine, degraded ones catch
its :class:`PlanError` refusal and demote to the direct engine — correct
answers either way.
"""

import numpy as np
import pytest

from repro.api import SwDNNHandle
from repro.core.algorithms import make_lowered_plan
from repro.core.guarded import GuardedConvolutionEngine
from repro.core.params import ConvParams
from repro.core.planner import plan_convolution
from repro.core.reference import conv2d_reference
from repro.faults import FaultPlan, FaultSpec

pytestmark = pytest.mark.zoo

PARAMS = ConvParams.from_output(ni=8, no=8, ro=8, co=8, kr=3, kc=3, b=2)


def _data(seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal(PARAMS.input_shape),
        rng.standard_normal(PARAMS.filter_shape),
    )


class TestHealthyLoweredTier:
    @pytest.mark.parametrize("algorithm", ["im2col", "winograd"])
    def test_lowered_tier_serves_on_healthy_machine(self, algorithm):
        engine = GuardedConvolutionEngine(
            make_lowered_plan(algorithm, PARAMS), backend="numpy"
        )
        assert engine.ladder[0] == "lowered"
        x, w = _data()
        out, timing = engine.run(x, w)
        assert engine.last_outcome.backend_used == "lowered"
        assert not engine.last_outcome.degraded
        assert timing.seconds > 0
        np.testing.assert_allclose(
            out, conv2d_reference(x, w), rtol=1e-10, atol=1e-10
        )

    def test_direct_plan_keeps_plain_ladder(self):
        engine = GuardedConvolutionEngine(
            plan_convolution(PARAMS).plan, backend="numpy"
        )
        assert engine.ladder == ("numpy", "reference")

    def test_prepack_on_lowered_tier_is_noop(self):
        engine = GuardedConvolutionEngine(
            make_lowered_plan("im2col", PARAMS), backend="numpy"
        )
        _, w = _data()
        # The zoo engines have no persistent packed layout to memoize.
        assert engine.prepack_filters(w, version=0) == 0


class TestFaultPlanDemotion:
    def test_fenced_submesh_demotes_to_direct_with_parity(self):
        # Satellite 1's scenario: lowered plan, fenced submesh.  The zoo
        # engine refuses the fault plan; the ladder demotes to the direct
        # engine, which replans onto the healthy 4x4 submesh and answers.
        plan = FaultPlan(FaultSpec(fenced_cpes=((1, 2), (6, 6))))
        engine = GuardedConvolutionEngine(
            make_lowered_plan("winograd", PARAMS),
            backend="mesh",
            fault_plan=plan,
        )
        x, w = _data(seed=1)
        out, _ = engine.run(x, w)
        assert engine.last_outcome.backend_used == "mesh"
        assert engine.last_outcome.degraded
        assert "PlanError" in engine.last_outcome.degradations[0]
        assert plan.ledger.counts()["guard/fallback"] >= 1
        np.testing.assert_allclose(
            out, conv2d_reference(x, w), rtol=1e-10, atol=1e-10
        )

    def test_supplied_direct_plan_backs_the_fallback_tiers(self):
        direct = plan_convolution(PARAMS).plan
        engine = GuardedConvolutionEngine(
            make_lowered_plan("im2col", PARAMS),
            backend="numpy",
            fault_plan=FaultPlan(FaultSpec(seed=0)),
            direct_plan=direct,
        )
        x, w = _data(seed=2)
        out, _ = engine.run(x, w)
        assert engine.last_outcome.backend_used == "numpy"
        # The caller's tuned direct plan — not a rederived one — ran.
        assert engine._engines["numpy"].plan is direct
        np.testing.assert_allclose(
            out, conv2d_reference(x, w), rtol=1e-10, atol=1e-10
        )

    def test_direct_plan_derived_when_not_supplied(self):
        engine = GuardedConvolutionEngine(
            make_lowered_plan("im2col", PARAMS),
            backend="numpy",
            fault_plan=FaultPlan(FaultSpec(seed=0)),
        )
        x, w = _data(seed=3)
        out, _ = engine.run(x, w)
        assert engine.last_outcome.backend_used == "numpy"
        np.testing.assert_allclose(
            out, conv2d_reference(x, w), rtol=1e-10, atol=1e-10
        )

    def test_prepack_skips_refusing_lowered_tier(self):
        engine = GuardedConvolutionEngine(
            make_lowered_plan("im2col", PARAMS),
            backend="numpy",
            fault_plan=FaultPlan(FaultSpec(seed=0)),
        )
        _, w = _data()
        # Must not raise: the refusing lowered tier is skipped and the
        # direct numpy tier packs instead.
        assert engine.prepack_filters(w, version=0) >= 0

    def test_evaluate_times_through_demotion(self):
        plan = FaultPlan(FaultSpec(fenced_cpes=((1, 2), (6, 6))))
        engine = GuardedConvolutionEngine(
            make_lowered_plan("winograd", PARAMS),
            backend="mesh",
            fault_plan=plan,
        )
        assert engine.evaluate().seconds > 0


class TestHandleLevel:
    def test_guarded_zoo_handle_accepts_fault_plan(self):
        # The old behavior — PlanError at construction for algorithms +
        # guarded + fault_plan — is gone; demotion happens at run time.
        plan = FaultPlan(FaultSpec(fenced_cpes=((1, 2), (6, 6))))
        handle = SwDNNHandle(
            backend="mesh", guarded=True, fault_plan=plan, algorithms="all"
        )
        x, w = _data(seed=4)
        out, _ = handle.convolution_forward(x, w)
        np.testing.assert_allclose(
            out, conv2d_reference(x, w), rtol=1e-10, atol=1e-10
        )

    def test_healthy_zoo_handle_unchanged(self):
        handle = SwDNNHandle(backend="numpy", guarded=True, algorithms="all")
        x, w = _data(seed=5)
        out, _ = handle.convolution_forward(x, w)
        np.testing.assert_allclose(
            out, conv2d_reference(x, w), rtol=1e-10, atol=1e-10
        )
