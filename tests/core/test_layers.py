"""Layer forward/backward, validated against numeric gradients."""

import numpy as np
import pytest

from repro.common.errors import PlanError
from repro.core.layers import (
    AvgPool2D,
    Conv2D,
    Dense,
    Flatten,
    ReLU,
    SoftmaxCrossEntropy,
)


def _numeric_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = f()
        x[idx] = orig - eps
        minus = f()
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestConv2D:
    def test_forward_shape(self, rng):
        layer = Conv2D(ni=3, no=5, kr=3, kc=3, rng=rng)
        out = layer.forward(rng.standard_normal((2, 3, 6, 6)))
        assert out.shape == (2, 5, 4, 4)

    def test_bias_added(self, rng):
        layer = Conv2D(ni=1, no=1, kr=1, kc=1, rng=rng)
        layer.w[...] = 0.0
        layer.bias[...] = 2.5
        out = layer.forward(np.zeros((1, 1, 2, 2)))
        assert np.all(out == 2.5)

    def test_simulated_engine_matches_reference(self, rng):
        x = rng.standard_normal((8, 8, 6, 6))
        ref_layer = Conv2D(ni=8, no=8, kr=3, kc=3, rng=np.random.default_rng(1))
        sim_layer = Conv2D(
            ni=8, no=8, kr=3, kc=3, rng=np.random.default_rng(1), engine="simulated"
        )
        assert np.allclose(ref_layer.forward(x), sim_layer.forward(x))

    def test_weight_gradient_numeric(self, rng):
        layer = Conv2D(ni=2, no=2, kr=2, kc=2, rng=rng)
        x = rng.standard_normal((1, 2, 4, 4))
        g = rng.standard_normal((1, 2, 3, 3))
        layer.forward(x)
        layer.backward(g)
        grads = layer.gradients()
        numeric = _numeric_grad(lambda: float(np.sum(layer.forward(x) * g)), layer.w)
        assert np.allclose(grads["w"], numeric, atol=1e-5)

    def test_bias_gradient(self, rng):
        layer = Conv2D(ni=1, no=2, kr=1, kc=1, rng=rng)
        x = rng.standard_normal((2, 1, 3, 3))
        g = rng.standard_normal((2, 2, 3, 3))
        layer.forward(x)
        layer.backward(g)
        assert np.allclose(layer.gradients()["bias"], g.sum(axis=(0, 2, 3)))

    def test_backward_before_forward_rejected(self, rng):
        layer = Conv2D(ni=1, no=1, kr=1, kc=1, rng=rng)
        with pytest.raises(PlanError):
            layer.backward(np.zeros((1, 1, 1, 1)))

    def test_unknown_engine_rejected(self, rng):
        with pytest.raises(PlanError):
            Conv2D(ni=1, no=1, kr=1, kc=1, rng=rng, engine="tpu")


class TestReLU:
    def test_forward(self):
        layer = ReLU()
        out = layer.forward(np.array([-1.0, 0.0, 2.0]))
        assert np.array_equal(out, [0.0, 0.0, 2.0])

    def test_backward_masks(self):
        layer = ReLU()
        layer.forward(np.array([-1.0, 1.0]))
        grad = layer.backward(np.array([5.0, 5.0]))
        assert np.array_equal(grad, [0.0, 5.0])


class TestAvgPool:
    def test_forward_averages(self):
        layer = AvgPool2D(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_backward_distributes(self):
        layer = AvgPool2D(2)
        layer.forward(np.zeros((1, 1, 4, 4)))
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        assert np.all(grad == 0.25)

    def test_indivisible_rejected(self):
        with pytest.raises(PlanError):
            AvgPool2D(2).forward(np.zeros((1, 1, 5, 4)))

    def test_numeric_gradient(self, rng):
        layer = AvgPool2D(2)
        x = rng.standard_normal((1, 1, 4, 4))
        g = rng.standard_normal((1, 1, 2, 2))
        layer.forward(x)
        grad = layer.backward(g)
        numeric = _numeric_grad(lambda: float(np.sum(layer.forward(x) * g)), x)
        assert np.allclose(grad, numeric, atol=1e-6)


class TestDense:
    def test_forward(self, rng):
        layer = Dense(3, 2, rng=rng)
        out = layer.forward(rng.standard_normal((4, 3)))
        assert out.shape == (4, 2)

    def test_gradients_numeric(self, rng):
        layer = Dense(3, 2, rng=rng)
        x = rng.standard_normal((4, 3))
        g = rng.standard_normal((4, 2))
        layer.forward(x)
        grad_x = layer.backward(g)
        grads = layer.gradients()
        numeric_w = _numeric_grad(lambda: float(np.sum(layer.forward(x) * g)), layer.w)
        assert np.allclose(grads["w"], numeric_w, atol=1e-5)
        numeric_x = _numeric_grad(lambda: float(np.sum(layer.forward(x) * g)), x)
        assert np.allclose(grad_x, numeric_x, atol=1e-5)


class TestFlatten:
    def test_roundtrip(self, rng):
        layer = Flatten()
        x = rng.standard_normal((2, 3, 4, 5))
        out = layer.forward(x)
        assert out.shape == (2, 60)
        assert layer.backward(out).shape == x.shape


class TestSoftmaxCrossEntropy:
    def test_loss_of_perfect_prediction_near_zero(self):
        head = SoftmaxCrossEntropy()
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss = head.forward(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_uniform_loss_is_log_k(self):
        head = SoftmaxCrossEntropy()
        loss = head.forward(np.zeros((3, 4)), np.array([0, 1, 2]))
        assert loss == pytest.approx(np.log(4))

    def test_gradient_numeric(self, rng):
        head = SoftmaxCrossEntropy()
        logits = rng.standard_normal((3, 4))
        labels = np.array([1, 0, 3])
        head.forward(logits, labels)
        grad = head.backward()
        numeric = _numeric_grad(lambda: head.forward(logits, labels), logits)
        assert np.allclose(grad, numeric, atol=1e-6)
