"""The user-facing sweep utility."""

import pytest

from repro.common.errors import PlanError
from repro.core.sweeps import SweepGrid, render_sweep, run_sweep, sweep_to_csv


@pytest.fixture(scope="module")
def small_sweep():
    grid = SweepGrid(ni=(32, 64), no=(32,), out=(16,), k=(3,), b=(32,))
    return run_sweep(grid)


class TestGrid:
    def test_cartesian_size(self):
        grid = SweepGrid(ni=(1, 2), no=(3,), out=(4, 5, 6), k=(3,), b=(8,))
        assert len(grid) == 6
        assert len(list(grid.configurations())) == 6

    def test_validation(self):
        with pytest.raises(PlanError):
            SweepGrid(ni=())
        with pytest.raises(PlanError):
            SweepGrid(b=(0,))


class TestRunSweep:
    def test_rows_per_configuration(self, small_sweep):
        assert len(small_sweep) == 2
        for row in small_sweep:
            assert row.ok
            assert row.plan in ("image-size-aware", "batch-size-aware")
            assert row.measured_gflops > 0
            assert row.chip_tflops > 0

    def test_infeasible_reported_not_raised(self):
        # No is never blocked, so a huge output-channel count overflows the
        # per-CPE filter tile for both plan families.
        grid = SweepGrid(ni=(64,), no=(200_000,), out=(8,), k=(3,), b=(32,))
        rows = run_sweep(grid, chip=False)
        assert len(rows) == 1
        assert not rows[0].ok
        assert "blocking" in rows[0].error or "LDM" in rows[0].error

    def test_chip_flag(self):
        grid = SweepGrid(ni=(32,), no=(32,), out=(8,), k=(3,), b=(16,))
        no_chip = run_sweep(grid, chip=False)[0]
        assert no_chip.chip_tflops == pytest.approx(
            4 * no_chip.measured_gflops / 1e3
        )


class TestRendering:
    def test_table(self, small_sweep):
        text = render_sweep(small_sweep)
        assert "plan" in text
        assert "batch-size-aware" in text or "image-size-aware" in text

    def test_csv(self, small_sweep):
        csv_text = sweep_to_csv(small_sweep)
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("ni,no,out")
        assert len(lines) == 1 + len(small_sweep)
