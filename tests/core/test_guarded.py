"""Guarded execution: fallback ladder, numeric guards, fenced replans."""

import numpy as np
import pytest

from repro.common.errors import PlanError, SimulationError
from repro.core.conv import ConvolutionEngine, effective_mesh_size
from repro.core.guarded import FALLBACK_LADDERS, GuardedConvolutionEngine
from repro.core.params import ConvParams
from repro.core.planner import plan_convolution
from repro.core.reference import conv2d_reference
from repro.faults import FaultPlan, FaultSpec

PARAMS = ConvParams.from_output(ni=32, no=32, ro=8, co=8, kr=3, kc=3, b=4)


def _plan():
    return plan_convolution(PARAMS).plan


def _data(seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.standard_normal(PARAMS.input_shape),
        rng.standard_normal(PARAMS.filter_shape),
    )


class TestEffectiveMeshSize:
    def test_no_fences_full_mesh(self):
        assert effective_mesh_size(8, frozenset()) == 8

    def test_two_fences_shrink_to_divisor(self):
        # 2 fenced CPEs in distinct rows/cols leave bound 6; the largest
        # divisor of 8 within it is 4 (divisibility preserves blocking).
        assert effective_mesh_size(8, {(1, 2), (6, 6)}) == 4

    def test_same_row_fences_cost_one(self):
        assert effective_mesh_size(8, {(3, 0), (3, 7)}) == 4

    def test_whole_mesh_fenced(self):
        everything = {(r, c) for r in range(8) for c in range(8)}
        assert effective_mesh_size(8, everything) == 0


class TestFallbackLadder:
    def test_unknown_backend_rejected(self):
        with pytest.raises(PlanError):
            GuardedConvolutionEngine(_plan(), backend="fpga")

    def test_healthy_run_stays_on_requested_tier(self):
        engine = GuardedConvolutionEngine(_plan(), backend="mesh-fast")
        x, w = _data()
        out, timing = engine.run(x, w)
        assert engine.last_outcome.backend_used == "mesh-fast"
        assert not engine.last_outcome.degraded
        np.testing.assert_allclose(out, conv2d_reference(x, w), rtol=1e-10, atol=1e-10)
        assert timing.seconds > 0

    def test_bus_faults_demote_to_numpy(self):
        plan = FaultPlan(FaultSpec(bus_stall_rate=1.0))
        engine = GuardedConvolutionEngine(
            _plan(), backend="mesh-fast", fault_plan=plan
        )
        x, w = _data()
        out, _ = engine.run(x, w)
        assert engine.last_outcome.backend_used == "numpy"
        # Both mesh tiers were abandoned, and the ledger says why.
        assert len(engine.last_outcome.degradations) == 2
        assert plan.ledger.counts()["guard/fallback"] == 2
        np.testing.assert_allclose(out, conv2d_reference(x, w), rtol=1e-10, atol=1e-10)

    def test_all_cpes_fenced_reach_reference(self):
        # With zero healthy CPEs, no simulated engine (mesh or numpy) can
        # even construct — only the terminal reference tier can answer.
        everything = tuple((r, c) for r in range(8) for c in range(8))
        plan = FaultPlan(FaultSpec(fenced_cpes=everything))
        engine = GuardedConvolutionEngine(_plan(), backend="mesh", fault_plan=plan)
        x, w = _data()
        out, _ = engine.run(x, w)
        assert engine.last_outcome.backend_used == "reference"
        np.testing.assert_allclose(out, conv2d_reference(x, w), rtol=1e-10, atol=1e-10)

    def test_reference_terminal_tier(self):
        engine = GuardedConvolutionEngine(_plan(), backend="numpy")

        class _Broken:
            def run(self, *args, **kwargs):
                raise SimulationError("injected numpy failure")

            def evaluate(self):
                raise SimulationError("injected numpy failure")

        engine._engines["numpy"] = _Broken()
        x, w = _data()
        out, _ = engine.run(x, w)
        assert engine.last_outcome.backend_used == "reference"
        np.testing.assert_allclose(out, conv2d_reference(x, w), rtol=1e-12, atol=1e-12)

    def test_programming_errors_propagate(self):
        engine = GuardedConvolutionEngine(_plan(), backend="numpy")

        class _Buggy:
            def run(self, *args, **kwargs):
                raise TypeError("not a hardware fault")

        engine._engines["numpy"] = _Buggy()
        x, w = _data()
        # Only ReproError demotes down the ladder; bugs must surface.
        with pytest.raises(TypeError):
            engine.run(x, w)

    def test_bias_and_relu_on_reference_tier(self):
        engine = GuardedConvolutionEngine(_plan(), backend="numpy")

        class _Broken:
            def run(self, *args, **kwargs):
                raise SimulationError("down")

            def evaluate(self):
                raise SimulationError("down")

        engine._engines["numpy"] = _Broken()
        x, w = _data()
        bias = np.linspace(-1.0, 1.0, PARAMS.no)
        out, _ = engine.run(x, w, bias=bias, activation="relu")
        expected = conv2d_reference(x, w) + bias[None, :, None, None]
        expected = np.maximum(expected, 0.0)
        np.testing.assert_allclose(out, expected, rtol=1e-12, atol=1e-12)


class TestGuards:
    def test_nan_guard_trips(self):
        engine = GuardedConvolutionEngine(_plan(), backend="mesh")
        x, w = _data()
        bad = np.full(PARAMS.output_shape, np.nan)
        passed, _ = engine._guard_output("mesh", bad, x, w, None)
        assert not passed
        assert "NaN/Inf" in engine.last_outcome.degradations[0]

    def test_parity_guard_trips_on_wrong_values(self):
        engine = GuardedConvolutionEngine(_plan(), backend="mesh", parity_check=True)
        x, w = _data()
        wrong = conv2d_reference(x, w) + 1.0
        passed, reference = engine._guard_output("mesh", wrong, x, w, None)
        assert not passed
        assert reference is not None
        assert "parity" in engine.last_outcome.degradations[0]

    def test_parity_guard_passes_correct_values(self):
        engine = GuardedConvolutionEngine(_plan(), backend="mesh", parity_check=True)
        x, w = _data()
        good = conv2d_reference(x, w)
        passed, _ = engine._guard_output("mesh", good, x, w, None)
        assert passed


class TestEvaluate:
    def test_healthy_matches_plain_engine(self):
        guarded = GuardedConvolutionEngine(_plan(), backend="mesh-fast")
        plain = ConvolutionEngine(_plan(), backend="mesh-fast")
        assert guarded.evaluate().seconds == pytest.approx(plain.evaluate().seconds)

    def test_degraded_machine_still_times(self):
        plan = FaultPlan(FaultSpec(fenced_cpes=((1, 2), (6, 6))))
        guarded = GuardedConvolutionEngine(_plan(), backend="mesh-fast", fault_plan=plan)
        report = guarded.evaluate()
        assert report.seconds > 0

    def test_fenced_replan_slows_compute(self):
        healthy = ConvolutionEngine(_plan()).evaluate()
        plan = FaultPlan(FaultSpec(fenced_cpes=((1, 2), (6, 6))))
        degraded = ConvolutionEngine(_plan(), fault_plan=plan).evaluate()
        # 16 of 64 CPEs survive the replan: compute time must grow.
        assert degraded.compute_seconds > healthy.compute_seconds

    def test_dma_derating_slows_transfers(self):
        healthy = ConvolutionEngine(_plan()).evaluate()
        plan = FaultPlan(FaultSpec(dma_bandwidth_factor=0.5))
        degraded = ConvolutionEngine(_plan(), fault_plan=plan).evaluate()
        assert degraded.dma_seconds == pytest.approx(2.0 * healthy.dma_seconds)


class TestLadders:
    def test_every_ladder_ends_in_reference(self):
        for backend, ladder in FALLBACK_LADDERS.items():
            assert ladder[0] == backend
            assert ladder[-1] == "reference"
