"""Vectorization-oriented layouts: pack/unpack round-trips and block sizes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import PlanError
from repro.core.layout import (
    batch_plan_block_bytes,
    filter_block_bytes,
    image_plan_block_bytes,
    pack_filters,
    pack_images_batch_plan,
    pack_images_image_plan,
    unpack_filters,
    unpack_images_batch_plan,
    unpack_images_image_plan,
)


def _images(rng, b=8, n=3, r=4, c=5):
    return rng.standard_normal((b, n, r, c))


class TestImagePlanLayout:
    def test_shape(self, rng):
        packed = pack_images_image_plan(_images(rng))
        assert packed.shape == (4, 5, 4, 3, 2)

    def test_roundtrip(self, rng):
        x = _images(rng)
        assert np.array_equal(unpack_images_image_plan(pack_images_image_plan(x)), x)

    def test_vector_holds_consecutive_batch(self, rng):
        x = _images(rng)
        packed = pack_images_image_plan(x)
        # lane v, quad q -> batch q*4+v of pixel (n=0, r=0, c=0)
        for q in range(2):
            for v in range(4):
                assert packed[v, 0, 0, 0, q] == x[q * 4 + v, 0, 0, 0]

    def test_contiguous_along_columns(self, rng):
        packed = pack_images_image_plan(_images(rng))
        # C is the second axis: stride between columns at fixed lane is the
        # product of the trailing dims (r*n*q doubles).
        assert packed.strides[1] == packed.strides[2] * packed.shape[2]

    def test_batch_not_divisible_rejected(self, rng):
        with pytest.raises(PlanError):
            pack_images_image_plan(rng.standard_normal((6, 2, 3, 3)))

    def test_unpack_wrong_lanes_rejected(self, rng):
        with pytest.raises(PlanError):
            unpack_images_image_plan(rng.standard_normal((3, 5, 4, 3, 2)))


class TestBatchPlanLayout:
    def test_shape(self, rng):
        packed = pack_images_batch_plan(_images(rng))
        assert packed.shape == (4, 2, 5, 4, 3)

    def test_roundtrip(self, rng):
        x = _images(rng)
        assert np.array_equal(unpack_images_batch_plan(pack_images_batch_plan(x)), x)

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, quads, n, r, c):
        rng = np.random.default_rng(quads * 64 + n * 16 + r * 4 + c)
        x = rng.standard_normal((quads * 4, n, r, c))
        assert np.array_equal(unpack_images_batch_plan(pack_images_batch_plan(x)), x)
        assert np.array_equal(unpack_images_image_plan(pack_images_image_plan(x)), x)


class TestFilterLayout:
    def test_shape(self, rng):
        w = rng.standard_normal((6, 3, 2, 5))  # (No, Ni, Kr, Kc)
        assert pack_filters(w).shape == (5, 2, 3, 6)

    def test_roundtrip(self, rng):
        w = rng.standard_normal((6, 3, 2, 5))
        assert np.array_equal(unpack_filters(pack_filters(w)), w)

    def test_output_channel_contiguous(self, rng):
        packed = pack_filters(rng.standard_normal((6, 3, 2, 5)))
        assert packed.strides[-1] == packed.itemsize


class TestBlockSizes:
    def test_image_plan_block(self):
        assert image_plan_block_bytes(16) == 16 * 4 * 8

    def test_batch_plan_block(self):
        assert batch_plan_block_bytes(128) == 1024

    def test_filter_block(self):
        assert filter_block_bytes(256) == 2048

    def test_validation(self):
        for fn in (image_plan_block_bytes, batch_plan_block_bytes, filter_block_bytes):
            with pytest.raises(PlanError):
                fn(0)
