"""Auxiliary streaming operators."""

import numpy as np
import pytest

from repro.common.errors import PlanError
from repro.core.aux_ops import (
    avg_pool_forward,
    bias_forward,
    convolution_time_share,
    relu_forward,
)
from repro.core.conv import ConvolutionEngine
from repro.core.params import ConvParams
from repro.core.plans import BatchSizeAwarePlan


class TestAvgPool:
    def test_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out, _ = avg_pool_forward(x, 2)
        assert out[0, 0, 0, 0] == pytest.approx(2.5)

    def test_shape(self, rng):
        out, _ = avg_pool_forward(rng.standard_normal((2, 3, 8, 8)), 2)
        assert out.shape == (2, 3, 4, 4)

    def test_timing_is_bandwidth_bound(self, rng):
        _, report = avg_pool_forward(rng.standard_normal((8, 16, 32, 32)), 2)
        assert report.dma_seconds > report.compute_seconds
        assert report.seconds == pytest.approx(report.dma_seconds)

    def test_validation(self, rng):
        with pytest.raises(PlanError):
            avg_pool_forward(rng.standard_normal((1, 1, 5, 4)), 2)
        with pytest.raises(PlanError):
            avg_pool_forward(rng.standard_normal((4, 4)), 2)


class TestReLU:
    def test_values(self):
        out, _ = relu_forward(np.array([[-1.0, 2.0]]))
        assert np.array_equal(out, [[0.0, 2.0]])

    def test_traffic(self, rng):
        x = rng.standard_normal((2, 4, 8, 8))
        _, report = relu_forward(x)
        assert report.bytes_get == x.size * 8
        assert report.bytes_put == x.size * 8


class TestBias:
    def test_values(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        bias = np.array([1.0, 2.0, 3.0])
        out, _ = bias_forward(x, bias)
        assert np.allclose(out[:, 1] - x[:, 1], 2.0)

    def test_validation(self, rng):
        with pytest.raises(PlanError):
            bias_forward(rng.standard_normal((2, 3, 4, 4)), np.zeros(5))


class TestTimeShare:
    def test_convolution_dominates_paper_claim(self, rng):
        """Section III-A: 'the convolution operator takes the majority of
        computing time (over 90%)' — check with our own timed reports for a
        paper-scale layer block.  Real implementations fuse the activation
        into the convolution's output store, leaving pooling as the only
        separate streaming pass; even unfused, conv stays the clear
        majority."""
        params = ConvParams.from_output(ni=128, no=128, ro=64, co=64, kr=3, kc=3, b=128)
        conv_report = ConvolutionEngine(BatchSizeAwarePlan(params)).evaluate()
        x = np.zeros(params.output_shape)
        _, relu_rep = relu_forward(x)
        _, pool_rep = avg_pool_forward(x, 2)
        fused_share = convolution_time_share(conv_report, [pool_rep])
        assert fused_share > 0.9
        unfused_share = convolution_time_share(conv_report, [relu_rep, pool_rep])
        assert unfused_share > 0.75

    def test_validation(self):
        from repro.core.conv import TimingReport

        empty = TimingReport(0, 0, 0, 0, 0, 0, 0, 1.0)
        with pytest.raises(PlanError):
            convolution_time_share(empty, [])
