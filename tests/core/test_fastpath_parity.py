"""Fast-path (session-mode) execution parity with the full mesh simulation.

The ``mesh-fast`` tier promises *bit-identical* results to the ``mesh``
backend: session mode verifies the Fig. 3 bus protocol once per operand
signature, then executes the same block schedule as batched NumPy GEMMs.
These tests pin that contract — numerics, statistics accounting, and the
``reset_stats`` semantics between plan executions.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import PlanError
from repro.core.backward import BackwardConvolution
from repro.core.conv import BACKENDS, ConvolutionEngine
from repro.core.params import ConvParams
from repro.core.planner import plan_convolution
from repro.core.reference import conv2d_reference
from repro.core.register_comm import MeshGemm
from repro.hw.spec import DEFAULT_SPEC


SMALL = DEFAULT_SPEC.shrunk(4)


def _pair(rng, shape_w, shape_d):
    return rng.standard_normal(shape_w), rng.standard_normal(shape_d)


class TestSessionMeshGemm:
    def test_mode_validated(self):
        with pytest.raises(PlanError):
            MeshGemm(spec=SMALL, mode="warp")

    def test_first_multiply_verifies_then_fast(self, rng):
        gemm = MeshGemm(spec=SMALL, mode="session")
        w, d = _pair(rng, (8, 12), (12, 16))
        assert gemm.verified_signatures == 0
        first = gemm.multiply(w, d)
        assert gemm.verified_signatures == 1
        second = gemm.multiply(w, d)
        assert gemm.verified_signatures == 1  # same signature, no re-verify
        assert np.array_equal(first, second)

    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=20, deadline=None)
    def test_fast_path_bit_identical_to_full(self, a, b, c, seed):
        rng = np.random.default_rng(seed)
        w = rng.standard_normal((4 * a, 4 * b))
        d = rng.standard_normal((4 * b, 4 * c))
        full = MeshGemm(spec=SMALL, mode="full").multiply(w, d)
        session = MeshGemm(spec=SMALL, mode="session")
        session.multiply(w, d)  # verification run
        fast = session.multiply(w, d)  # fast path
        assert np.array_equal(full, fast)

    def test_fast_path_statistics_match_full(self, rng):
        w, d = _pair(rng, (16, 24), (24, 16))
        full = MeshGemm(spec=SMALL, mode="full")
        full.multiply(w, d)
        session = MeshGemm(spec=SMALL, mode="session")
        session.multiply(w, d)  # verify (runs the full protocol once)
        session.reset_stats()
        session.multiply(w, d)  # pure fast path

        def bus_stats(g):
            return [
                (b.stats.packets, b.stats.bytes, b.stats.operations)
                for b in g.mesh.row_buses + g.mesh.col_buses
            ]

        def cpe_stats(g):
            return [
                (c.stats.bus_puts, c.stats.bus_gets, c.stats.flops)
                for c in g.mesh
            ]

        assert bus_stats(session) == bus_stats(full)
        assert cpe_stats(session) == cpe_stats(full)
        assert session.bus_bytes() == full.bus_bytes()

    def test_reset_stats_clears_counters_keeps_signatures(self, rng):
        gemm = MeshGemm(spec=SMALL, mode="session")
        w, d = _pair(rng, (8, 8), (8, 8))
        gemm.multiply(w, d)
        assert gemm.bus_bytes() > 0
        assert gemm.verified_signatures == 1
        gemm.reset_stats()
        assert gemm.bus_bytes() == 0
        assert all(c.stats.flops == 0 for c in gemm.mesh)
        assert all(c.stats.bus_puts == 0 for c in gemm.mesh)
        assert gemm.verified_signatures == 1  # fast path still armed
        # Next multiply of the same signature goes straight to the fast path
        # and accounts exactly one schedule's traffic.
        before = gemm.verified_signatures
        gemm.multiply(w, d)
        assert gemm.verified_signatures == before

    def test_distinct_signatures_verified_separately(self, rng):
        gemm = MeshGemm(spec=SMALL, mode="session")
        gemm.multiply(*_pair(rng, (8, 8), (8, 8)))
        gemm.multiply(*_pair(rng, (8, 12), (12, 8)))
        assert gemm.verified_signatures == 2


#: Mesh-divisible layer shapes for the engine-level parity property.
PARITY_CONFIGS = [
    ConvParams(ni=8, no=8, ri=10, ci=10, kr=3, kc=3, b=8),
    ConvParams(ni=16, no=8, ri=8, ci=8, kr=3, kc=3, b=8),
    ConvParams(ni=8, no=16, ri=6, ci=6, kr=1, kc=1, b=16),
    ConvParams(ni=16, no=16, ri=10, ci=10, kr=5, kc=5, b=8),
    ConvParams(ni=8, no=8, ri=12, ci=8, kr=3, kc=1, b=8),
]


def _engines(params, backends=("mesh", "mesh-fast")):
    plan = plan_convolution(params).plan
    return [ConvolutionEngine(plan, backend=b) for b in backends]


class TestConvForwardParity:
    @pytest.mark.parametrize("params", PARITY_CONFIGS, ids=str)
    def test_forward_bit_identical_to_mesh(self, params, rng):
        x = rng.standard_normal(params.input_shape)
        w = rng.standard_normal(params.filter_shape)
        mesh_engine, fast_engine = _engines(params)
        y_mesh, _ = mesh_engine.run(x, w)
        y_fast, _ = fast_engine.run(x, w)
        assert np.array_equal(y_mesh, y_fast)
        assert np.allclose(y_fast, conv2d_reference(x, w), rtol=1e-10, atol=1e-10)

    def test_repeated_runs_stay_identical(self, rng):
        params = PARITY_CONFIGS[0]
        x = rng.standard_normal(params.input_shape)
        w = rng.standard_normal(params.filter_shape)
        (fast_engine,) = _engines(params, backends=("mesh-fast",))
        first, _ = fast_engine.run(x, w)
        verified = fast_engine._mesh_gemm.verified_signatures
        assert verified > 0
        second, _ = fast_engine.run(x, w)
        assert fast_engine._mesh_gemm.verified_signatures == verified
        assert np.array_equal(first, second)

    def test_run_resets_stats_between_executions(self, rng):
        params = PARITY_CONFIGS[0]
        x = rng.standard_normal(params.input_shape)
        w = rng.standard_normal(params.filter_shape)
        (fast_engine,) = _engines(params, backends=("mesh-fast",))
        fast_engine.run(x, w)
        traffic_first = fast_engine._mesh_gemm.bus_bytes()
        fast_engine.run(x, w)
        # Same plan, same shapes: one execution's traffic, not the lifetime's.
        assert fast_engine._mesh_gemm.bus_bytes() == traffic_first

    def test_unknown_backend_rejected(self):
        plan = plan_convolution(PARITY_CONFIGS[0]).plan
        with pytest.raises(PlanError):
            ConvolutionEngine(plan, backend="cuda")
        assert "mesh-fast" in BACKENDS


class TestCounterParity:
    """Telemetry must tell the same story for both execution tiers.

    The fast path *accounts* the traffic it skips simulating; the hardware
    counters are where that promise becomes observable.  Bytes moved over
    the register buses and CPE flops must be identical whichever tier ran.
    """

    BUS_COUNTERS = ("mesh.bus_bytes", "mesh.bus_packets", "mesh.bus_operations")

    def _counted_run(self, params, backend, x, w):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        plan = plan_convolution(params).plan
        engine = ConvolutionEngine(plan, backend=backend, telemetry=telemetry)
        y, _ = engine.run(x, w)
        return y, telemetry.counters

    @pytest.mark.parametrize("params", PARITY_CONFIGS[:3], ids=str)
    def test_bus_bytes_and_flops_identical(self, params, rng):
        x = rng.standard_normal(params.input_shape)
        w = rng.standard_normal(params.filter_shape)
        y_mesh, mesh_counters = self._counted_run(params, "mesh", x, w)
        y_fast, fast_counters = self._counted_run(params, "mesh-fast", x, w)
        assert np.array_equal(y_mesh, y_fast)
        for name in self.BUS_COUNTERS:
            assert mesh_counters.get(name) == fast_counters.get(name), name
        assert mesh_counters.get("cpe.flops") == fast_counters.get("cpe.flops")
        assert mesh_counters.get("cpe.flops") > 0
        assert mesh_counters.total("mesh.bus_") > 0

    def test_engine_level_accounting_identical(self, rng):
        params = PARITY_CONFIGS[0]
        x = rng.standard_normal(params.input_shape)
        w = rng.standard_normal(params.filter_shape)
        _, mesh_counters = self._counted_run(params, "mesh", x, w)
        _, fast_counters = self._counted_run(params, "mesh-fast", x, w)
        for name in ("engine.bytes_get", "engine.bytes_put", "engine.flops",
                     "engine.tiles", "engine.runs"):
            assert mesh_counters.get(name) == fast_counters.get(name), name


class TestBackwardParity:
    @pytest.mark.parametrize("params", PARITY_CONFIGS[:3], ids=str)
    def test_backward_data_bit_identical_to_mesh(self, params, rng):
        w = rng.standard_normal(params.filter_shape)
        grad_out = rng.standard_normal(params.output_shape)
        gx_mesh, _ = BackwardConvolution(params, backend="mesh").grad_input(
            w, grad_out
        )
        gx_fast, _ = BackwardConvolution(params, backend="mesh-fast").grad_input(
            w, grad_out
        )
        assert np.array_equal(gx_mesh, gx_fast)

    @pytest.mark.parametrize("params", PARITY_CONFIGS[:3], ids=str)
    def test_backward_filter_bit_identical_to_mesh(self, params, rng):
        x = rng.standard_normal(params.input_shape)
        grad_out = rng.standard_normal(params.output_shape)
        gw_mesh, _ = BackwardConvolution(params, backend="mesh").grad_filter(
            x, grad_out
        )
        gw_fast, _ = BackwardConvolution(params, backend="mesh-fast").grad_filter(
            x, grad_out
        )
        assert np.array_equal(gw_mesh, gw_fast)

    def test_backward_engines_reused(self, rng):
        params = PARITY_CONFIGS[0]
        bwd = BackwardConvolution(params, backend="mesh-fast")
        w = rng.standard_normal(params.filter_shape)
        grad_out = rng.standard_normal(params.output_shape)
        g1, _ = bwd.grad_input(w, grad_out)
        engine = bwd._engines["data"]
        g2, _ = bwd.grad_input(w, grad_out)
        assert bwd._engines["data"] is engine
        assert np.array_equal(g1, g2)


class TestPaddedParity:
    def test_handle_padding_bit_identical_to_mesh(self, rng):
        from repro.api.descriptors import ConvolutionDescriptor
        from repro.api.handle import SwDNNHandle

        x = rng.standard_normal((8, 8, 8, 8))
        w = rng.standard_normal((8, 8, 3, 3))
        desc = ConvolutionDescriptor(pad_h=1, pad_w=1)
        y_mesh, _ = SwDNNHandle(backend="mesh").convolution_forward(
            x, w, conv_desc=desc
        )
        y_fast, _ = SwDNNHandle(backend="mesh-fast").convolution_forward(
            x, w, conv_desc=desc
        )
        assert y_mesh.shape == (8, 8, 8, 8)  # same-padding output
        assert np.array_equal(y_mesh, y_fast)
