"""The register-communication mesh GEMM (Fig. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import PlanError
from repro.core.register_comm import MeshGemm, join_grid, split_grid
from repro.hw.spec import DEFAULT_SPEC


class TestGridSplit:
    def test_roundtrip(self, rng):
        m = rng.standard_normal((8, 12))
        assert np.array_equal(join_grid(split_grid(m, 4)), m)

    def test_indivisible_rejected(self, rng):
        with pytest.raises(PlanError):
            split_grid(rng.standard_normal((7, 8)), 4)

    def test_block_contents(self):
        m = np.arange(16.0).reshape(4, 4)
        blocks = split_grid(m, 2)
        assert np.array_equal(blocks[0][1], [[2.0, 3.0], [6.0, 7.0]])


class TestMeshGemm:
    def test_matches_matmul_4x4(self, rng):
        gemm = MeshGemm(spec=DEFAULT_SPEC.shrunk(4))
        w = rng.standard_normal((8, 12))
        d = rng.standard_normal((12, 16))
        assert np.allclose(gemm.multiply(w, d), w @ d)

    def test_matches_matmul_8x8(self, rng):
        gemm = MeshGemm(spec=DEFAULT_SPEC.shrunk(8))
        w = rng.standard_normal((16, 24))
        d = rng.standard_normal((24, 8))
        assert np.allclose(gemm.multiply(w, d), w @ d)

    def test_buffers_drained(self, rng):
        gemm = MeshGemm(spec=DEFAULT_SPEC.shrunk(4))
        gemm.multiply(rng.standard_normal((4, 4)), rng.standard_normal((4, 4)))
        gemm.mesh.assert_drained()

    def test_bus_traffic_accounted(self, rng):
        gemm = MeshGemm(spec=DEFAULT_SPEC.shrunk(4))
        gemm.multiply(rng.standard_normal((8, 8)), rng.standard_normal((8, 8)))
        # Per step: each of 4 W blocks (2x2 doubles = 32B) broadcast on a
        # row bus and 4 D blocks on a column bus; 4 steps.
        assert gemm.bus_bytes() == 4 * (4 * 32 + 4 * 32)

    def test_flops_accounted_on_cpes(self, rng):
        gemm = MeshGemm(spec=DEFAULT_SPEC.shrunk(4))
        w = rng.standard_normal((8, 8))
        d = rng.standard_normal((8, 8))
        gemm.multiply(w, d)
        total = sum(cpe.stats.flops for cpe in gemm.mesh)
        assert total == 2 * 8 * 8 * 8

    def test_mismatched_inner_dims_rejected(self, rng):
        gemm = MeshGemm(spec=DEFAULT_SPEC.shrunk(4))
        with pytest.raises(PlanError):
            gemm.multiply(rng.standard_normal((4, 4)), rng.standard_normal((8, 4)))

    def test_indivisible_dims_rejected(self, rng):
        gemm = MeshGemm(spec=DEFAULT_SPEC.shrunk(4))
        with pytest.raises(PlanError):
            gemm.multiply(rng.standard_normal((6, 4)), rng.standard_normal((4, 4)))

    def test_non_2d_rejected(self, rng):
        gemm = MeshGemm(spec=DEFAULT_SPEC.shrunk(4))
        with pytest.raises(PlanError):
            gemm.multiply(rng.standard_normal((4, 4, 4)), rng.standard_normal((4, 4)))

    @given(
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_matmul_property(self, a, b, c, seed):
        rng = np.random.default_rng(seed)
        gemm = MeshGemm(spec=DEFAULT_SPEC.shrunk(4))
        w = rng.standard_normal((4 * a, 4 * b))
        d = rng.standard_normal((4 * b, 4 * c))
        assert np.allclose(gemm.multiply(w, d), w @ d)

    def test_reuse_of_gemm_object(self, rng):
        gemm = MeshGemm(spec=DEFAULT_SPEC.shrunk(4))
        for _ in range(3):
            w = rng.standard_normal((4, 4))
            d = rng.standard_normal((4, 4))
            assert np.allclose(gemm.multiply(w, d), w @ d)
