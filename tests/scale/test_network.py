"""Interconnect allreduce cost models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scale.network import InterconnectModel, allreduce_time


@pytest.fixture
def net():
    return InterconnectModel()


class TestRing:
    def test_single_node_free(self, net):
        assert net.ring_allreduce(10**9, 1) == 0.0

    def test_bandwidth_term(self):
        net = InterconnectModel(bandwidth=1e9, latency=0.0)
        # 2(N-1)/N * bytes / bw with N=4: 1.5 seconds for 1 GB.
        assert net.ring_allreduce(10**9, 4) == pytest.approx(1.5)

    def test_bandwidth_term_saturates_with_nodes(self):
        net = InterconnectModel(latency=0.0)
        t64 = net.ring_allreduce(10**8, 64)
        t1024 = net.ring_allreduce(10**8, 1024)
        assert t1024 / t64 < 1.05  # approaches 2*bytes/bw

    def test_latency_grows_linearly(self):
        net = InterconnectModel(bandwidth=1e15, latency=1e-6)
        assert net.ring_allreduce(8, 101) == pytest.approx(200e-6, rel=1e-3)


class TestTree:
    def test_rounds_logarithmic(self):
        net = InterconnectModel(bandwidth=1e15, latency=1e-6)
        assert net.tree_allreduce(8, 1024) == pytest.approx(20e-6, rel=1e-3)

    def test_single_node_free(self, net):
        assert net.tree_allreduce(10**9, 1) == 0.0

    # Non-power-of-two regression: remainder ranks fold into the next
    # power of two, so the step count is exactly 2*ceil(log2 N).
    def test_three_nodes_cost_four(self, net):
        assert net.tree_allreduce(10**6, 3) == net.tree_allreduce(10**6, 4)

    def test_five_and_six_nodes_cost_eight(self, net):
        t8 = net.tree_allreduce(10**6, 8)
        assert net.tree_allreduce(10**6, 5) == t8
        assert net.tree_allreduce(10**6, 6) == t8

    def test_rounds_step_at_powers_of_two(self):
        net = InterconnectModel(bandwidth=1e15, latency=1e-6)
        # ceil(log2) climbs by one exactly when N crosses a power of two.
        assert net.tree_allreduce(8, 2) == pytest.approx(2e-6, rel=1e-3)
        assert net.tree_allreduce(8, 3) == pytest.approx(4e-6, rel=1e-3)
        assert net.tree_allreduce(8, 9) == pytest.approx(8e-6, rel=1e-3)

    @given(st.integers(min_value=2, max_value=1 << 20))
    @settings(max_examples=100, deadline=None)
    def test_rounds_match_exact_ceil_log2(self, nodes):
        net = InterconnectModel(bandwidth=1e15, latency=1.0)
        rounds = round(net.tree_allreduce(0, nodes))
        exact = (nodes - 1).bit_length()
        assert rounds == 2 * exact


class TestBest:
    def test_small_message_prefers_tree(self, net):
        nodes = 1024
        assert net.best_allreduce(64, nodes) == pytest.approx(
            net.tree_allreduce(64, nodes)
        )

    def test_large_message_prefers_ring(self, net):
        nodes = 8
        assert net.best_allreduce(10**9, nodes) == pytest.approx(
            net.ring_allreduce(10**9, nodes)
        )

    def test_module_convenience(self):
        assert allreduce_time(10**6, 4) > 0

    @given(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=1, max_value=4096),
    )
    @settings(max_examples=50, deadline=None)
    def test_best_never_worse_than_either(self, nbytes, nodes):
        net = InterconnectModel()
        best = net.best_allreduce(nbytes, nodes)
        assert best <= net.ring_allreduce(nbytes, nodes) + 1e-12
        assert best <= net.tree_allreduce(nbytes, nodes) + 1e-12


class TestPS:
    def test_single_node_free(self, net):
        assert net.ps_allreduce(10**9, 1) == 0.0

    def test_grows_linearly_with_nodes(self):
        net = InterconnectModel(latency=0.0)
        assert net.ps_allreduce(10**8, 32) == pytest.approx(
            2 * net.ps_allreduce(10**8, 16)
        )

    def test_never_beats_ring_at_scale(self, net):
        assert net.ps_allreduce(10**8, 64) > net.ring_allreduce(10**8, 64)


class TestEdgeCases:
    def test_zero_bytes_is_pure_latency(self, net):
        assert net.ring_allreduce(0, 4) == pytest.approx(6 * net.latency)
        assert net.tree_allreduce(0, 4) == pytest.approx(4 * net.latency)
        assert net.ps_allreduce(0, 4) == pytest.approx(8 * net.latency)

    def test_single_node_free_for_all_topologies(self, net):
        for topology in ("ring", "tree", "ps", "best"):
            assert net.allreduce(10**9, 1, topology) == 0.0

    def test_ring_tree_crossover(self, net):
        # Tiny messages are latency-bound (tree wins); big ones are
        # bandwidth-bound (ring wins).  A crossover exists in between.
        nodes = 64
        assert net.best_allreduce(64, nodes) == net.tree_allreduce(64, nodes)
        assert net.best_allreduce(10**9, nodes) == net.ring_allreduce(10**9, nodes)
        sizes = [2**e for e in range(4, 31)]
        winners = [
            net.tree_allreduce(s, nodes) <= net.ring_allreduce(s, nodes)
            for s in sizes
        ]
        assert winners[0] and not winners[-1]
        # One clean crossover: tree wins a prefix, ring the suffix.
        assert winners == sorted(winners, reverse=True)


class TestDispatchAndAccounting:
    def test_dispatch_matches_direct_calls(self, net):
        assert net.allreduce(10**6, 8, "ring") == net.ring_allreduce(10**6, 8)
        assert net.allreduce(10**6, 8, "tree") == net.tree_allreduce(10**6, 8)
        assert net.allreduce(10**6, 8, "ps") == net.ps_allreduce(10**6, 8)
        assert net.allreduce(10**6, 8, "best") == net.best_allreduce(10**6, 8)

    def test_unknown_topology_rejected(self, net):
        with pytest.raises(ValueError, match="unknown topology"):
            net.allreduce(10**6, 8, "torus")
        with pytest.raises(ValueError, match="unknown topology"):
            net.allreduce_link_bytes(10**6, 8, "torus")

    def test_link_bytes_formulas(self, net):
        nbytes = 10**6
        assert net.allreduce_link_bytes(nbytes, 8, "ring") == 14 * nbytes
        assert net.allreduce_link_bytes(nbytes, 8, "tree") == 48 * nbytes
        assert net.allreduce_link_bytes(nbytes, 8, "ps") == 16 * nbytes
        assert net.allreduce_link_bytes(nbytes, 1) == 0

    def test_best_link_bytes_follow_time_winner(self, net):
        # Large message: ring wins on time, so traffic is charged as ring.
        assert net.allreduce_link_bytes(10**9, 8, "best") == 14 * 10**9
        # Tiny message at scale: tree wins.
        assert net.allreduce_link_bytes(8, 1024, "best") == 2 * 10 * 1024 * 8

    def test_derated_scales_bandwidth_only(self, net):
        slow = net.derated(0.5)
        assert slow.bandwidth == net.bandwidth * 0.5
        assert slow.latency == net.latency
        assert slow.ring_allreduce(10**8, 4) > net.ring_allreduce(10**8, 4)

    def test_derate_factor_validated(self, net):
        with pytest.raises(ValueError):
            net.derated(0.0)
        with pytest.raises(ValueError):
            net.derated(1.5)


class TestValidation:
    def test_bandwidth_positive(self):
        with pytest.raises(ValueError):
            InterconnectModel(bandwidth=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            InterconnectModel(latency=-1)

    def test_bad_args(self, net):
        with pytest.raises(ValueError):
            net.ring_allreduce(-1, 4)
        with pytest.raises(ValueError):
            net.ring_allreduce(8, 0)
