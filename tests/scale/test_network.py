"""Interconnect allreduce cost models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scale.network import InterconnectModel, allreduce_time


@pytest.fixture
def net():
    return InterconnectModel()


class TestRing:
    def test_single_node_free(self, net):
        assert net.ring_allreduce(10**9, 1) == 0.0

    def test_bandwidth_term(self):
        net = InterconnectModel(bandwidth=1e9, latency=0.0)
        # 2(N-1)/N * bytes / bw with N=4: 1.5 seconds for 1 GB.
        assert net.ring_allreduce(10**9, 4) == pytest.approx(1.5)

    def test_bandwidth_term_saturates_with_nodes(self):
        net = InterconnectModel(latency=0.0)
        t64 = net.ring_allreduce(10**8, 64)
        t1024 = net.ring_allreduce(10**8, 1024)
        assert t1024 / t64 < 1.05  # approaches 2*bytes/bw

    def test_latency_grows_linearly(self):
        net = InterconnectModel(bandwidth=1e15, latency=1e-6)
        assert net.ring_allreduce(8, 101) == pytest.approx(200e-6, rel=1e-3)


class TestTree:
    def test_rounds_logarithmic(self):
        net = InterconnectModel(bandwidth=1e15, latency=1e-6)
        assert net.tree_allreduce(8, 1024) == pytest.approx(20e-6, rel=1e-3)

    def test_single_node_free(self, net):
        assert net.tree_allreduce(10**9, 1) == 0.0


class TestBest:
    def test_small_message_prefers_tree(self, net):
        nodes = 1024
        assert net.best_allreduce(64, nodes) == pytest.approx(
            net.tree_allreduce(64, nodes)
        )

    def test_large_message_prefers_ring(self, net):
        nodes = 8
        assert net.best_allreduce(10**9, nodes) == pytest.approx(
            net.ring_allreduce(10**9, nodes)
        )

    def test_module_convenience(self):
        assert allreduce_time(10**6, 4) > 0

    @given(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=1, max_value=4096),
    )
    @settings(max_examples=50, deadline=None)
    def test_best_never_worse_than_either(self, nbytes, nodes):
        net = InterconnectModel()
        best = net.best_allreduce(nbytes, nodes)
        assert best <= net.ring_allreduce(nbytes, nodes) + 1e-12
        assert best <= net.tree_allreduce(nbytes, nodes) + 1e-12


class TestValidation:
    def test_bandwidth_positive(self):
        with pytest.raises(ValueError):
            InterconnectModel(bandwidth=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            InterconnectModel(latency=-1)

    def test_bad_args(self, net):
        with pytest.raises(ValueError):
            net.ring_allreduce(-1, 4)
        with pytest.raises(ValueError):
            net.ring_allreduce(8, 0)
