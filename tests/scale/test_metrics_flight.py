"""Cluster-layer observability: step/allreduce flight events, sim series."""

import numpy as np
import pytest

from repro.core.layers import AvgPool2D, Conv2D, Dense, Flatten, ReLU
from repro.core.network import Sequential, synthetic_image_dataset
from repro.scale.cluster import ClusterTrainer
from repro.telemetry import Telemetry

pytestmark = pytest.mark.scale

SHAPE = (3, 10, 10)
CLASSES = 10
STEPS = 3


def make_factory(seed=42):
    def factory():
        rng = np.random.default_rng(seed)
        return Sequential(
            [
                Conv2D(3, 8, 3, 3, rng=rng),
                ReLU(),
                AvgPool2D(2),
                Flatten(),
                Dense(8 * 4 * 4, CLASSES, rng=rng),
            ]
        )

    return factory


@pytest.fixture(scope="module")
def trained():
    """A short instrumented 2-node run shared by the read-only asserts."""
    x, labels = synthetic_image_dataset(
        16 * STEPS, *SHAPE, CLASSES, rng=np.random.default_rng(7)
    )
    telem = Telemetry()
    trainer = ClusterTrainer(make_factory(), 2, SHAPE, telemetry=telem)
    for step in range(STEPS):
        lo = step * 16
        trainer.step(x[lo : lo + 16], labels[lo : lo + 16])
    return telem


class TestClusterFlight:
    def test_one_step_event_per_step(self, trained):
        steps = [
            e for e in trained.flight.events() if e.kind == "cluster.step"
        ]
        assert len(steps) == STEPS
        assert [e.args["step"] for e in steps] == list(range(STEPS))
        for event in steps:
            assert event.args["nodes"] == 2
            assert event.args["step_seconds"] > 0.0
            assert event.args["exposed_comm_seconds"] >= 0.0

    def test_allreduce_events_carry_bucket_spans(self, trained):
        reduces = [
            e for e in trained.flight.events() if e.kind == "cluster.allreduce"
        ]
        assert reduces  # every step reduces at least one gradient bucket
        for event in reduces:
            assert event.args["nbytes"] > 0
            assert 0.0 <= event.args["start"] <= event.args["end"]

    def test_events_are_json_safe(self, trained, tmp_path):
        path = trained.flight.dump(str(tmp_path / "cluster-flight.json"))
        from repro.telemetry import load_flight_dump

        events = load_flight_dump(path)
        assert len(events) == len(trained.flight.events())


class TestClusterMetrics:
    def test_sim_timebase_series_are_monotone(self, trained):
        for name in ("comm.exposed_seconds", "comm.step_seconds"):
            series = trained.metrics.series(name)
            assert series is not None, name
            assert len(series) == STEPS
            ts = [t for t, _ in series.points()]
            assert ts == sorted(ts)
            assert ts[0] > 0.0  # sampled at the *end* of step 0

    def test_step_seconds_histogram_counts_steps(self, trained):
        hist = trained.metrics.histogram("comm.step_seconds")
        assert hist is not None
        assert hist.count == STEPS
        assert hist.min > 0.0

    def test_series_values_match_flight_events(self, trained):
        # The same per-step scalars flow into both sinks: the time series
        # (for trends) and the flight ring (for causality).
        steps = [
            e.args["exposed_comm_seconds"]
            for e in trained.flight.events()
            if e.kind == "cluster.step"
        ]
        sampled = [
            v for _, v in trained.metrics.series("comm.exposed_seconds").points()
        ]
        assert sampled == pytest.approx(steps)

    def test_disabled_session_skips_both_sinks(self):
        x, labels = synthetic_image_dataset(
            16, *SHAPE, CLASSES, rng=np.random.default_rng(7)
        )
        trainer = ClusterTrainer(make_factory(), 2, SHAPE)
        trainer.step(x, labels)
        from repro.telemetry import NULL_FLIGHT, NULL_METRICS

        assert len(NULL_METRICS) == 0
        assert len(NULL_FLIGHT) == 0
