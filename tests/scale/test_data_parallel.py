"""Data-parallel scaling model."""

import pytest

from repro.common.errors import PlanError
from repro.core.params import ConvParams
from repro.scale.data_parallel import DataParallelModel, LayerSpec, vgg_like_stack
from repro.scale.network import InterconnectModel


@pytest.fixture(scope="module")
def model():
    return DataParallelModel(vgg_like_stack(batch=32, channels=32))


class TestLayerSpec:
    def test_conv_gradient_bytes(self):
        p = ConvParams.from_output(ni=8, no=16, ro=8, co=8, kr=3, kc=3, b=4)
        layer = LayerSpec(kind="conv", params=p)
        assert layer.gradient_bytes() == 16 * 8 * 3 * 3 * 8

    def test_fc_gradient_bytes(self):
        layer = LayerSpec(kind="fc", fc_in=100, fc_out=10)
        assert layer.gradient_bytes() == 100 * 10 * 8

    def test_with_batch_conv(self):
        p = ConvParams.from_output(ni=8, no=8, ro=8, co=8, kr=3, kc=3, b=4)
        layer = LayerSpec(kind="conv", params=p).with_batch(16)
        assert layer.params.b == 16

    def test_with_batch_fc_unchanged(self):
        layer = LayerSpec(kind="fc", fc_in=10, fc_out=10)
        assert layer.with_batch(99) is layer

    def test_validation(self):
        with pytest.raises(PlanError):
            LayerSpec(kind="conv")
        with pytest.raises(PlanError):
            LayerSpec(kind="fc", fc_in=0, fc_out=10)
        with pytest.raises(PlanError):
            LayerSpec(kind="pooling")


class TestIteration:
    def test_single_node_no_comm_penalty(self, model):
        point = model.iteration(nodes=1, per_node_batch=32)
        assert point.iteration_seconds == pytest.approx(point.compute_seconds)
        assert point.efficiency == pytest.approx(1.0)

    def test_throughput_grows_with_nodes(self, model):
        p1 = model.iteration(1, 32)
        p64 = model.iteration(64, 32)
        assert p64.samples_per_second > p1.samples_per_second

    def test_efficiency_decreases_with_nodes(self, model):
        effs = [model.iteration(n, 32).efficiency for n in (1, 64, 4096)]
        assert effs[0] >= effs[1] >= effs[2]

    def test_overlap_helps(self):
        stack = vgg_like_stack(batch=32, channels=32)
        with_overlap = DataParallelModel(stack, overlap=True).iteration(256, 32)
        without = DataParallelModel(stack, overlap=False).iteration(256, 32)
        assert with_overlap.iteration_seconds <= without.iteration_seconds

    def test_slow_network_hurts(self):
        stack = vgg_like_stack(batch=32, channels=32)
        fast = DataParallelModel(stack, network=InterconnectModel(bandwidth=16e9))
        slow = DataParallelModel(stack, network=InterconnectModel(bandwidth=1e9))
        assert (
            slow.iteration(64, 32).iteration_seconds
            > fast.iteration(64, 32).iteration_seconds
        )

    def test_validation(self, model):
        with pytest.raises(PlanError):
            model.iteration(0, 32)
        with pytest.raises(PlanError):
            model.iteration(4, 0)


class TestSweeps:
    def test_weak_scaling_near_flat_at_modest_scale(self, model):
        points = model.weak_scaling([1, 4, 16], per_node_batch=32)
        assert points[-1].efficiency > 0.8

    def test_strong_scaling_per_node_batch_shrinks(self, model):
        points = model.strong_scaling([1, 4, 16], global_batch=128)
        assert points[0].samples_per_second > 0
        # Strong scaling keeps global throughput from growing linearly at
        # high node counts (batch per node hits 1).
        assert points[-1].nodes == 16

    def test_total_gradient_bytes(self, model):
        assert model.total_gradient_bytes() > 0

    def test_empty_stack_rejected(self):
        with pytest.raises(PlanError):
            DataParallelModel([])
