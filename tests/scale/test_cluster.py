"""Executed multi-node data-parallel training: parity, buckets, chaos."""

import math

import numpy as np
import pytest

from repro.common.errors import PlanError
from repro.core.layers import AvgPool2D, Conv2D, Dense, Flatten, ReLU, SoftmaxCrossEntropy
from repro.core.network import SGD, Sequential, synthetic_image_dataset
from repro.scale.cluster import (
    ClusterFaultSpec,
    ClusterTrainer,
    GradientBucket,
    LayerCost,
    plan_buckets,
    profile_network,
    simulate_step_timeline,
    weights_bitwise_equal,
)
from repro.scale.exchange import ClusterExchange, exact_sum, reduce_micro_gradients
from repro.scale.network import InterconnectModel
from repro.telemetry import Telemetry

pytestmark = pytest.mark.scale

SHAPE = (3, 10, 10)
CLASSES = 10


def make_factory(seed=42):
    def factory():
        rng = np.random.default_rng(seed)
        return Sequential(
            [
                Conv2D(3, 8, 3, 3, rng=rng),
                ReLU(),
                AvgPool2D(2),
                Flatten(),
                Dense(8 * 4 * 4, CLASSES, rng=rng),
            ]
        )

    return factory


@pytest.fixture(scope="module")
def dataset():
    return synthetic_image_dataset(96, *SHAPE, CLASSES, rng=np.random.default_rng(7))


class TestExactSum:
    def test_matches_fsum_elementwise(self, rng):
        arrays = [rng.standard_normal((3, 2)) for _ in range(5)]
        out = exact_sum(arrays)
        for idx in np.ndindex(3, 2):
            assert out[idx] == math.fsum(a[idx] for a in arrays)

    def test_order_and_grouping_free(self, rng):
        arrays = [
            rng.standard_normal(16) * 10.0 ** float(rng.integers(-8, 8))
            for _ in range(9)
        ]
        forward = exact_sum(arrays)
        backward = exact_sum(arrays[::-1])
        shuffled = exact_sum([arrays[i] for i in rng.permutation(9)])
        assert np.array_equal(forward.view(np.uint64), backward.view(np.uint64))
        assert np.array_equal(forward.view(np.uint64), shuffled.view(np.uint64))

    def test_single_term_is_exact_copy(self, rng):
        a = rng.standard_normal(8)
        out = exact_sum([a])
        assert np.array_equal(out.view(np.uint64), a.view(np.uint64))
        assert out is not a

    def test_empty_rejected(self):
        with pytest.raises(PlanError):
            exact_sum([])


class TestReduceMicroGradients:
    def test_sums_across_micros(self, rng):
        micros = [
            [{"w": rng.standard_normal((2, 2)), "bias": rng.standard_normal(2)}]
            for _ in range(4)
        ]
        reduced = reduce_micro_gradients(micros)
        assert len(reduced) == 1
        expected = exact_sum([m[0]["w"] for m in micros])
        assert np.array_equal(reduced[0]["w"], expected)

    def test_layer_count_mismatch_rejected(self, rng):
        g = {"w": rng.standard_normal(2)}
        with pytest.raises(PlanError, match="layer count"):
            reduce_micro_gradients([[g], [g, g]])

    def test_empty_rejected(self):
        with pytest.raises(PlanError):
            reduce_micro_gradients([])


class TestClusterExchange:
    def test_returns_staged_not_local(self, rng):
        exchange = ClusterExchange()
        staged = [{"w": rng.standard_normal(3)}]
        exchange.stage(staged)
        local = [{"w": rng.standard_normal(3)}]
        assert exchange.reduce(local) is staged

    def test_unstaged_reduce_rejected(self):
        with pytest.raises(PlanError, match="outside a cluster step"):
            ClusterExchange().reduce([])

    def test_clear_unstages(self, rng):
        exchange = ClusterExchange()
        exchange.stage([{"w": rng.standard_normal(3)}])
        exchange.clear()
        with pytest.raises(PlanError):
            exchange.reduce([{"w": rng.standard_normal(3)}])

    def test_layer_count_mismatch_rejected(self, rng):
        exchange = ClusterExchange()
        exchange.stage([{"w": rng.standard_normal(3)}])
        with pytest.raises(PlanError, match="parameter layers"):
            exchange.reduce([])


class TestProfileNetwork:
    def test_costs_cover_every_layer(self):
        costs = profile_network(make_factory()(), SHAPE, batch=8)
        assert len(costs) == 5
        conv, dense = costs[0], costs[4]
        assert conv.forward_seconds > 0 and conv.backward_seconds > 0
        assert dense.forward_seconds > 0 and dense.backward_seconds > 0
        assert conv.gradient_bytes == (8 * 3 * 3 * 3 + 8) * 8
        # ReLU/pool/flatten carry no parameters and no simulated time.
        for cost in costs[1:4]:
            assert not cost.has_gradients
            assert cost.forward_seconds == 0.0

    def test_bad_batch_rejected(self):
        with pytest.raises(PlanError):
            profile_network(make_factory()(), SHAPE, batch=0)


class TestPlanBuckets:
    def _costs(self, sizes):
        return [
            LayerCost(f"l{i}", 1e-3, 2e-3, nbytes) for i, nbytes in enumerate(sizes)
        ]

    def test_backward_order_and_packing(self):
        buckets = plan_buckets(self._costs([100, 0, 100, 300]), bucket_bytes=400)
        assert [b.layer_indices for b in buckets] == [(3, 2), (0,)]
        assert [b.nbytes for b in buckets] == [400, 100]

    def test_oversized_tensor_gets_own_bucket(self):
        buckets = plan_buckets(self._costs([50, 1000, 50]), bucket_bytes=200)
        assert [b.layer_indices for b in buckets] == [(2,), (1,), (0,)]

    def test_single_bucket_when_everything_fits(self):
        buckets = plan_buckets(self._costs([10, 10, 10]), bucket_bytes=1 << 20)
        assert len(buckets) == 1
        assert buckets[0].layer_indices == (2, 1, 0)

    def test_bucket_bytes_validated(self):
        with pytest.raises(PlanError):
            plan_buckets(self._costs([10]), bucket_bytes=0)


class TestStepTimeline:
    def _setup(self, sizes=(1 << 20, 8 << 20), bucket_bytes=1 << 20):
        costs = [
            LayerCost(f"l{i}", 1e-3, 2e-3, nbytes) for i, nbytes in enumerate(sizes)
        ]
        return costs, plan_buckets(costs, bucket_bytes), InterconnectModel()

    def test_single_node_has_no_comm(self):
        costs, buckets, net = self._setup()
        tl = simulate_step_timeline(costs, 1, net, "ring", buckets)
        assert tl.comm_seconds == 0.0
        assert tl.step_seconds == pytest.approx(tl.compute_seconds)

    def test_overlap_never_slower_than_serialized(self):
        costs, buckets, net = self._setup()
        tl = simulate_step_timeline(costs, 8, net, "ring", buckets)
        assert tl.step_seconds <= tl.serialized_seconds
        assert tl.overlap_speedup >= 1.0

    def test_serialized_schedule(self):
        costs, buckets, net = self._setup()
        tl = simulate_step_timeline(costs, 8, net, "ring", buckets, overlap=False)
        assert tl.step_seconds == pytest.approx(tl.compute_seconds + tl.comm_seconds)
        assert tl.overlap_speedup == pytest.approx(1.0)

    def test_first_bucket_starts_before_backward_ends(self):
        costs, buckets, net = self._setup()
        tl = simulate_step_timeline(costs, 8, net, "ring", buckets)
        backward_end = tl.compute_seconds
        assert tl.bucket_spans[0].start < backward_end

    def test_straggler_stretches_compute(self):
        costs, buckets, net = self._setup()
        healthy = simulate_step_timeline(costs, 4, net, "ring", buckets)
        slow = simulate_step_timeline(
            costs, 4, net, "ring", buckets, node_scales=[1.0, 3.0, 1.0, 1.0]
        )
        assert slow.compute_seconds == pytest.approx(3 * healthy.compute_seconds)

    def test_partition_penalty_stretches_comm(self):
        costs, buckets, net = self._setup()
        healthy = simulate_step_timeline(costs, 4, net, "ring", buckets)
        cut = simulate_step_timeline(
            costs, 4, net, "ring", buckets, partition_penalty=2.0
        )
        assert cut.comm_seconds == pytest.approx(2 * healthy.comm_seconds)

    def test_degraded_link_slows_comm(self):
        costs, buckets, net = self._setup()
        healthy = simulate_step_timeline(costs, 4, net, "ring", buckets)
        slow = simulate_step_timeline(
            costs, 4, net, "ring", buckets, link_factor=0.5
        )
        assert slow.comm_seconds > healthy.comm_seconds


class TestClusterTrainer:
    def test_parity_across_node_counts(self, dataset):
        """N=1, 2, 4 nodes, same batches, same grain -> identical bits."""
        x, labels = dataset
        trainers = {}
        for nodes in (1, 2, 4):
            trainer = ClusterTrainer(
                make_factory(), nodes, SHAPE, momentum=0.9, grain=4
            )
            for step in range(3):
                lo = step * 16
                trainer.step(x[lo : lo + 16], labels[lo : lo + 16])
            trainers[nodes] = trainer
        assert weights_bitwise_equal(trainers[1].weights(), trainers[2].weights())
        assert weights_bitwise_equal(trainers[2].weights(), trainers[4].weights())

    def test_one_node_cluster_is_plain_sgd(self, dataset):
        x, labels = dataset
        plain = make_factory()()
        head = SoftmaxCrossEntropy()
        optimizer = SGD(plain, lr=0.05, momentum=0.9)
        cluster = ClusterTrainer(make_factory(), 1, SHAPE, momentum=0.9)
        for step in range(2):
            lo = step * 16
            xb, yb = x[lo : lo + 16], labels[lo : lo + 16]
            head.forward(plain.forward(xb), yb)
            plain.backward(head.backward())
            optimizer.step()
            cluster.step(xb, yb)
        assert weights_bitwise_equal(plain, cluster.weights())

    def test_replicas_stay_in_lockstep(self, dataset):
        x, labels = dataset
        trainer = ClusterTrainer(make_factory(), 4, SHAPE)
        trainer.step(x[:16], labels[:16])
        assert trainer.replicas_in_lockstep()

    def test_threaded_matches_serial(self, dataset):
        x, labels = dataset
        serial = ClusterTrainer(make_factory(), 4, SHAPE, jobs=1)
        threaded = ClusterTrainer(make_factory(), 4, SHAPE, jobs=4)
        for step in range(2):
            lo = step * 16
            serial.step(x[lo : lo + 16], labels[lo : lo + 16])
            threaded.step(x[lo : lo + 16], labels[lo : lo + 16])
        assert weights_bitwise_equal(serial.weights(), threaded.weights())

    def test_jobs_env_var_is_default(self, monkeypatch):
        monkeypatch.setenv("SWDNN_JOBS", "3")
        trainer = ClusterTrainer(make_factory(), 4, SHAPE)
        assert trainer.resolved_jobs == 3
        # Explicit jobs wins over the environment.
        assert ClusterTrainer(make_factory(), 4, SHAPE, jobs=2).resolved_jobs == 2
        # Clamped to the node count.
        monkeypatch.setenv("SWDNN_JOBS", "64")
        assert ClusterTrainer(make_factory(), 4, SHAPE).resolved_jobs == 4

    def test_batch_must_divide(self, dataset):
        x, labels = dataset
        trainer = ClusterTrainer(make_factory(), 4, SHAPE)
        with pytest.raises(PlanError, match="multiple"):
            trainer.step(x[:18], labels[:18])

    def test_grain_must_divide_shard(self, dataset):
        x, labels = dataset
        trainer = ClusterTrainer(make_factory(), 2, SHAPE, grain=3)
        with pytest.raises(PlanError, match="grain"):
            trainer.step(x[:16], labels[:16])

    def test_nondeterministic_factory_rejected(self):
        seeds = iter(range(100))

        def sloppy():  # different weights on every call
            return Sequential([Dense(4, 2, rng=np.random.default_rng(next(seeds)))])

        with pytest.raises(PlanError, match="not deterministic"):
            ClusterTrainer(sloppy, 2, SHAPE)

    def test_bad_topology_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown topology"):
            ClusterTrainer(make_factory(), 2, SHAPE, topology="torus")

    def test_comm_counters_recorded(self, dataset):
        x, labels = dataset
        telemetry = Telemetry()
        trainer = ClusterTrainer(make_factory(), 4, SHAPE, telemetry=telemetry)
        trainer.step(x[:16], labels[:16])
        counters = telemetry.counters.as_dict()
        assert counters["comm.steps"] == 1
        assert counters["comm.allreduces"] >= 1
        assert counters["comm.link_bytes"] > 0
        assert counters["comm.seconds"] > 0
        spans = [s for s in telemetry.tracer.spans if s.tid == "interconnect"]
        assert spans, "allreduce spans missing from the interconnect track"

    def test_single_node_records_no_traffic(self, dataset):
        x, labels = dataset
        telemetry = Telemetry()
        trainer = ClusterTrainer(make_factory(), 1, SHAPE, telemetry=telemetry)
        trainer.step(x[:16], labels[:16])
        counters = telemetry.counters.as_dict()
        assert counters.get("comm.link_bytes", 0) == 0
        assert counters.get("comm.allreduces", 0) == 0

    def test_fit_drops_remainder(self, dataset):
        x, labels = dataset
        trainer = ClusterTrainer(make_factory(), 2, SHAPE)
        result = trainer.fit(x[:40], labels[:40], epochs=1, global_batch=16)
        assert result.steps == 2  # 40 = 2 full batches of 16 + dropped 8

    def test_loss_decreases(self, dataset):
        x, labels = dataset
        trainer = ClusterTrainer(make_factory(), 4, SHAPE, momentum=0.9)
        result = trainer.fit(x, labels, epochs=3, global_batch=32)
        assert result.losses[-1] < result.losses[0]


class TestClusterChaos:
    def test_fault_spec_validated(self):
        with pytest.raises(ValueError):
            ClusterFaultSpec(straggler_rate=1.5)
        with pytest.raises(ValueError):
            ClusterFaultSpec(straggler_slowdown=0.5)
        with pytest.raises(ValueError):
            ClusterFaultSpec(link_degrade_factor=0.0)
        with pytest.raises(ValueError):
            ClusterFaultSpec(partition_penalty=0.9)

    def test_healthy_by_default(self):
        assert ClusterFaultSpec().healthy
        assert not ClusterFaultSpec(straggler_rate=0.5).healthy

    def test_chaos_is_seeded_and_slows_steps(self, dataset):
        x, labels = dataset
        spec = ClusterFaultSpec(
            seed=11, straggler_rate=1.0, straggler_slowdown=4.0
        )
        runs = []
        for _ in range(2):
            trainer = ClusterTrainer(make_factory(), 4, SHAPE, faults=spec)
            report = trainer.step(x[:16], labels[:16])
            runs.append(report)
        assert runs[0].fault_events == runs[1].fault_events
        assert runs[0].fault_events  # rate 1.0 -> every node straggles
        healthy = ClusterTrainer(make_factory(), 4, SHAPE)
        baseline = healthy.step(x[:16], labels[:16])
        assert runs[0].timeline.compute_seconds == pytest.approx(
            4 * baseline.timeline.compute_seconds
        )

    def test_chaos_never_changes_weights(self, dataset):
        x, labels = dataset
        spec = ClusterFaultSpec(
            seed=3,
            straggler_rate=0.5,
            link_degrade_rate=0.5,
            partition_rate=0.5,
        )
        chaotic = ClusterTrainer(make_factory(), 4, SHAPE, faults=spec)
        calm = ClusterTrainer(make_factory(), 4, SHAPE)
        for step in range(2):
            lo = step * 16
            chaotic.step(x[lo : lo + 16], labels[lo : lo + 16])
            calm.step(x[lo : lo + 16], labels[lo : lo + 16])
        assert weights_bitwise_equal(chaotic.weights(), calm.weights())
