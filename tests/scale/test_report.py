"""Data-parallel benchmark report: builder + schema gate."""

import copy
import json

import pytest

from repro.scale.network import InterconnectModel
from repro.scale.report import (
    build_dataparallel_report,
    overlap_rows,
    run_parity_check,
    stack_costs,
    strong_scaling_rows,
    weak_scaling_rows,
)
from repro.scale.data_parallel import vgg_like_stack
from repro.scale.validate import (
    MIN_OVERLAP_SPEEDUP,
    validate_dataparallel_report,
)

pytestmark = pytest.mark.scale


@pytest.fixture(scope="module")
def report():
    return build_dataparallel_report(nodes=2, steps=2, parity_steps=1)


class TestReport:
    def test_validates_clean(self, report):
        assert validate_dataparallel_report(report) == []

    def test_json_serializable(self, report):
        json.dumps(report)

    def test_parity_proof_holds(self, report):
        assert report["parity"]["bitwise_identical"] is True
        assert report["parity"]["matches_plain_sgd"] is True
        assert report["replicas_in_lockstep"] is True

    def test_executed_run_recorded(self, report):
        assert report["nodes_executed"] == 2
        assert len(report["losses"]) == 2
        assert report["throughput_samples_per_second"] > 0
        assert report["comm_counters"]["comm.link_bytes"] > 0

    def test_overlap_clears_the_bar_at_scale(self, report):
        for row in report["overlap_ablation"]:
            if row["nodes"] >= 16:
                assert row["speedup"] >= MIN_OVERLAP_SPEEDUP


class TestScalingCurves:
    def test_weak_scaling_efficiency_decays_gently(self):
        rows = weak_scaling_rows(InterconnectModel(), "ring", 1 << 20)
        assert rows[0]["efficiency"] == pytest.approx(1.0)
        effs = [row["efficiency"] for row in rows]
        assert effs == sorted(effs, reverse=True)
        assert effs[-1] > 0.9  # overlap keeps weak scaling near-ideal

    def test_strong_scaling_efficiency_collapses(self):
        rows = strong_scaling_rows(InterconnectModel(), "ring", 1 << 20)
        # Fixed global batch: per-node work shrinks until comm dominates.
        assert rows[-1]["efficiency"] < rows[1]["efficiency"]

    def test_overlap_beats_serialized(self):
        for row in overlap_rows(InterconnectModel(), "ring", 1 << 20):
            assert row["overlapped_seconds"] <= row["serialized_seconds"]

    def test_stack_costs_shapes(self):
        costs = stack_costs(vgg_like_stack(batch=32), 32)
        assert len(costs) == 5
        assert all(c.forward_seconds > 0 for c in costs)
        assert all(c.gradient_bytes > 0 for c in costs)


class TestValidator:
    def _broken(self, report, **changes):
        broken = copy.deepcopy(report)
        broken.update(changes)
        return broken

    def test_missing_key_flagged(self, report):
        broken = copy.deepcopy(report)
        del broken["parity"]
        assert any("parity" in v for v in validate_dataparallel_report(broken))

    def test_wrong_type_flagged(self, report):
        broken = self._broken(report, topology=7)
        assert any("topology" in v for v in validate_dataparallel_report(broken))

    def test_broken_parity_flagged(self, report):
        broken = copy.deepcopy(report)
        broken["parity"]["bitwise_identical"] = False
        assert any(
            "bitwise_identical" in v for v in validate_dataparallel_report(broken)
        )

    def test_slow_overlap_flagged(self, report):
        broken = copy.deepcopy(report)
        broken["overlap_ablation"][0]["speedup"] = 1.05
        assert any("1.2x bar" in v for v in validate_dataparallel_report(broken))

    def test_unsorted_curve_flagged(self, report):
        broken = copy.deepcopy(report)
        broken["weak_scaling"].reverse()
        assert any("sorted" in v for v in validate_dataparallel_report(broken))

    def test_missing_traffic_flagged(self, report):
        broken = copy.deepcopy(report)
        broken["comm_counters"]["comm.link_bytes"] = 0
        assert any("link_bytes" in v for v in validate_dataparallel_report(broken))

    def test_non_object_rejected(self):
        assert validate_dataparallel_report([]) == ["report is not a JSON object"]


class TestParityCheck:
    def test_default_check_passes(self):
        parity = run_parity_check(steps=1)
        assert parity["bitwise_identical"] is True
        assert parity["pairwise_vs_first"] == {"1": True, "2": True, "4": True}
