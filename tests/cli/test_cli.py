"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestInfo:
    def test_prints_architecture(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "742.4 Gflops" in out
        assert "64 KiB" in out
        assert "8x8" in out


class TestPlan:
    def test_plans_and_times(self, capsys):
        assert main(["plan", "--ni", "64", "--no", "64", "--out", "16",
                     "--batch", "32"]) == 0
        out = capsys.readouterr().out
        assert "chosen:" in out
        assert "timed (4 CG):" in out

    def test_defaults(self, capsys):
        assert main(["plan"]) == 0
        assert "Ni=256" in capsys.readouterr().out


class TestKernel:
    def test_dumps_reordered_kernel(self, capsys):
        assert main(["kernel", "--ni", "16"]) == 0
        out = capsys.readouterr().out
        assert "vfmad" in out
        assert "EE=" in out

    def test_original_flag(self, capsys):
        assert main(["kernel", "--ni", "16", "--original"]) == 0
        out = capsys.readouterr().out
        assert "52 cycles" in out  # 2 iterations x 26

    def test_timeline_flag(self, capsys):
        assert main(["kernel", "--ni", "8", "--timeline"]) == 0
        assert "cycle | P0" in capsys.readouterr().out


class TestExperiments:
    def test_subset(self, capsys):
        assert main(["experiments", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 2" in out
        assert "Table II" not in out


class TestZoo:
    def test_times_network(self, capsys):
        assert main(["zoo", "cifar_quick", "--batch", "32"]) == 0
        out = capsys.readouterr().out
        assert "conv1" in out
        assert "images/s" in out

    def test_unknown_network(self, capsys):
        assert main(["zoo", "resnet"]) == 1
        assert "unknown network" in capsys.readouterr().out


class TestTrace:
    def test_renders_gantt(self, capsys):
        assert main(["trace", "--ni", "64", "--no", "64", "--out", "8",
                     "--batch", "32", "--tiles", "4"]) == 0
        out = capsys.readouterr().out
        assert "tile" in out
        assert "overlap" in out


class TestProfile:
    ARGS = ["profile", "--ni", "32", "--no", "32", "--out", "16",
            "--batch", "16", "--tiles", "4"]

    def test_prints_drift_and_counters(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "model-vs-measured drift" in out
        assert "counters:" in out
        assert "engine.flops" in out
        assert "4 tile interval(s) traced" in out

    def test_trace_out_is_valid_chrome_json(self, capsys, tmp_path):
        from repro.telemetry.validate import validate_chrome_trace_file

        trace = str(tmp_path / "profile.json")
        assert main(self.ARGS + ["--trace-out", trace]) == 0
        assert "valid chrome://tracing JSON" in capsys.readouterr().out
        assert validate_chrome_trace_file(trace) == []

    def test_table3_row_selects_paper_config(self, capsys):
        assert main(["profile", "--row", "1", "--tiles", "2"]) == 0
        assert "Ni=128" in capsys.readouterr().out

    def test_bad_row_rejected(self):
        with pytest.raises(SystemExit):
            main(["profile", "--row", "99"])

    def test_guarded_probe_counts_faults_and_fallbacks(self, capsys):
        assert main(self.ARGS + ["--guarded", "--fenced", "2",
                                 "--dma-derate", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "guarded probe: ran on" in out
        assert "faults." in out


class TestCalibrate:
    def test_reports_constants(self, capsys):
        assert main(["calibrate"]) == 0
        out = capsys.readouterr().out
        assert "0.70" in out
        assert "0.50" in out


class TestParser:
    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])
