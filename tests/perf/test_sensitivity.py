"""Architecture sensitivity sweeps."""

import pytest

from repro.core.params import ConvParams
from repro.perf.sensitivity import (
    KNOBS,
    most_valuable_knob,
    sweep_all,
    sweep_knob,
)


SMALL = ConvParams.from_output(ni=64, no=64, ro=16, co=16, kr=3, kc=3, b=64)


class TestSweepKnob:
    def test_baseline_scale_is_one(self):
        points = sweep_knob("ddr_bandwidth", scales=[1.0], params=SMALL)
        assert points[0].speedup_vs_default == pytest.approx(1.0)

    def test_more_ddr_bandwidth_helps(self):
        points = sweep_knob("ddr_bandwidth", scales=[0.5, 1.0, 2.0], params=SMALL)
        speedups = [p.speedup_vs_default for p in points]
        assert speedups == sorted(speedups)
        assert speedups[-1] > 1.1

    def test_clock_alone_helps_less_than_bandwidth(self):
        """The paper's thesis in one assertion: the chip is DDR-starved."""
        ddr = sweep_knob("ddr_bandwidth", scales=[2.0], params=SMALL)[0]
        clock = sweep_knob("clock", scales=[2.0], params=SMALL)[0]
        assert ddr.speedup_vs_default > clock.speedup_vs_default

    def test_more_clock_never_hurts(self):
        points = sweep_knob("clock", scales=[1.0, 2.0], params=SMALL)
        assert points[1].speedup_vs_default >= 1.0

    def test_ldm_capacity_monotone(self):
        points = sweep_knob("ldm_capacity", scales=[1.0, 4.0], params=SMALL)
        assert points[1].speedup_vs_default >= points[0].speedup_vs_default - 1e-9

    def test_value_labels(self):
        points = sweep_knob("ddr_bandwidth", scales=[2.0], params=SMALL)
        assert points[0].value == "72 GB/s"

    def test_unknown_knob(self):
        with pytest.raises(ValueError):
            sweep_knob("quantum_bus")


class TestSweepAll:
    def test_covers_all_knobs(self):
        results = sweep_all(scales=[1.0], params=SMALL)
        assert set(results) == set(KNOBS)

    def test_most_valuable_is_memory_side(self):
        """Doubling DDR bandwidth must be the top knob for a memory-bound
        convolution (the conclusion's architectural message)."""
        assert most_valuable_knob(params=SMALL) == "ddr_bandwidth"
