"""Timeline traces and the Gantt renderer."""

import pytest

from repro.core.params import ConvParams
from repro.core.plans import BatchSizeAwarePlan, ImageSizeAwarePlan
from repro.perf.trace import overlap_summary, render_gantt, trace_plan


@pytest.fixture(scope="module")
def traces():
    params = ConvParams.from_output(ni=64, no=64, ro=16, co=16, kr=3, kc=3, b=64)
    return trace_plan(BatchSizeAwarePlan(params), max_tiles=12)


class TestTrace:
    def test_requested_count(self, traces):
        assert len(traces) == 12

    def test_intervals_ordered(self, traces):
        for t in traces:
            assert t.get_start <= t.get_end <= t.compute_start <= t.compute_end
            assert t.compute_end <= t.put_start <= t.put_end

    def test_compute_serializes(self, traces):
        for prev, cur in zip(traces, traces[1:]):
            assert cur.compute_start >= prev.compute_end - 1e-15

    def test_double_buffering_overlaps(self, traces):
        """The point of Section IV-A: most tiles' loads run under the
        previous tile's compute."""
        assert overlap_summary(traces) > 0.5

    def test_buffer_constraint(self, traces):
        """Tile i's get waits for tile i-2's compute (ping/pong)."""
        for i in range(2, len(traces)):
            assert traces[i].get_start >= traces[i - 2].compute_end - 1e-15


class TestGantt:
    def test_renders_rows(self, traces):
        text = render_gantt(traces)
        rows = [l for l in text.splitlines() if l.startswith("tile")]
        assert len(rows) == len(traces)
        assert "#" in text and "=" in text

    def test_empty(self):
        assert render_gantt([]) == "(no tiles)"

    def test_image_plan_traces_too(self):
        params = ConvParams.from_output(ni=64, no=64, ro=16, co=16, kr=3, kc=3, b=64)
        traces = trace_plan(ImageSizeAwarePlan(params), max_tiles=6)
        assert len(traces) == 6
        assert "tile" in render_gantt(traces)


class TestOverlapSummary:
    def test_short_traces(self, traces):
        assert overlap_summary(traces[:1]) == 0.0
