"""Timeline traces and the Gantt renderer."""

import pytest

from repro.core.params import ConvParams
from repro.core.plans import BatchSizeAwarePlan, ImageSizeAwarePlan
from repro.perf.trace import overlap_summary, render_gantt, trace_plan


@pytest.fixture(scope="module")
def traces():
    params = ConvParams.from_output(ni=64, no=64, ro=16, co=16, kr=3, kc=3, b=64)
    return trace_plan(BatchSizeAwarePlan(params), max_tiles=12)


class TestTrace:
    def test_requested_count(self, traces):
        assert len(traces) == 12

    def test_intervals_ordered(self, traces):
        for t in traces:
            assert t.get_start <= t.get_end <= t.compute_start <= t.compute_end
            assert t.compute_end <= t.put_start <= t.put_end

    def test_compute_serializes(self, traces):
        for prev, cur in zip(traces, traces[1:]):
            assert cur.compute_start >= prev.compute_end - 1e-15

    def test_double_buffering_overlaps(self, traces):
        """The point of Section IV-A: most tiles' loads run under the
        previous tile's compute."""
        assert overlap_summary(traces) > 0.5

    def test_buffer_constraint(self, traces):
        """Tile i's get waits for tile i-2's compute (ping/pong)."""
        for i in range(2, len(traces)):
            assert traces[i].get_start >= traces[i - 2].compute_end - 1e-15


class TestGantt:
    def test_renders_rows(self, traces):
        text = render_gantt(traces)
        rows = [l for l in text.splitlines() if l.startswith("tile")]
        assert len(rows) == len(traces)
        assert "#" in text and "=" in text

    def test_empty(self):
        assert render_gantt([]) == "(no tiles)"

    def test_image_plan_traces_too(self):
        params = ConvParams.from_output(ni=64, no=64, ro=16, co=16, kr=3, kc=3, b=64)
        traces = trace_plan(ImageSizeAwarePlan(params), max_tiles=6)
        assert len(traces) == 6
        assert "tile" in render_gantt(traces)


class TestOverlapSummary:
    def test_short_traces(self, traces):
        assert overlap_summary(traces[:1]) == 0.0


class TestEngineTracing:
    """trace_plan accepts a live engine, including a degraded one."""

    PARAMS = ConvParams.from_output(ni=64, no=64, ro=16, co=16, kr=3, kc=3, b=64)

    def test_engine_only_invocation(self):
        from repro.core.conv import ConvolutionEngine

        engine = ConvolutionEngine(BatchSizeAwarePlan(self.PARAMS))
        traces = trace_plan(engine=engine, max_tiles=6)
        assert len(traces) == 6

    def test_needs_plan_or_engine(self):
        with pytest.raises(ValueError, match="plan or an engine"):
            trace_plan()

    def test_fenced_submesh_slows_compute(self):
        """An engine degraded onto a fenced submesh traces the timeline it
        would actually execute: fewer effective CPEs, longer compute."""
        from repro.core.conv import ConvolutionEngine
        from repro.faults.plan import FaultPlan, FaultSpec

        plan = BatchSizeAwarePlan(self.PARAMS)
        healthy = trace_plan(plan, max_tiles=6)
        fenced = FaultPlan(
            spec=FaultSpec(seed=7, fenced_cpes=((0, 0), (1, 1), (2, 2), (3, 3)))
        )
        degraded_engine = ConvolutionEngine(
            BatchSizeAwarePlan(self.PARAMS), fault_plan=fenced
        )
        degraded = trace_plan(engine=degraded_engine, max_tiles=6)
        assert len(degraded) == 6
        healthy_compute = sum(t.compute_end - t.compute_start for t in healthy)
        degraded_compute = sum(t.compute_end - t.compute_start for t in degraded)
        assert degraded_compute > healthy_compute

    def test_shared_recurrence_bounds_engine_report(self):
        """The trace and the timed evaluation fold the same recurrence; the
        report only adds the memory-interface bound and LDM-port contention
        on top, so the trace's end is a tight lower bound on the report."""
        from repro.core.conv import ConvolutionEngine, clear_timing_cache

        engine = ConvolutionEngine(BatchSizeAwarePlan(self.PARAMS))
        traces = trace_plan(engine=engine, max_tiles=10**9)
        clear_timing_cache()
        report = engine.evaluate()
        pipeline_end = max(t.put_end for t in traces)
        assert pipeline_end <= report.seconds * (1 + 1e-12)
        # contention + interface bound cannot more than double the timeline
        assert report.seconds <= 2 * pipeline_end
