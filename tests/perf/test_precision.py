"""The precision what-if analysis (§VII discussion)."""

import pytest

from repro.core.params import ConvParams
from repro.core.plans import BatchSizeAwarePlan
from repro.perf.precision import (
    PRECISIONS,
    max_precision_speedup,
    precision_sweep,
)


@pytest.fixture(scope="module")
def estimate():
    params = ConvParams.from_output(ni=256, no=256, ro=64, co=64, kr=3, kc=3, b=128)
    return BatchSizeAwarePlan(params).estimate()


class TestPrecisionSweep:
    def test_three_points(self, estimate):
        points = precision_sweep(estimate)
        assert [p.precision for p in points] == ["double", "single", "half"]

    def test_double_is_baseline(self, estimate):
        points = precision_sweep(estimate)
        assert points[0].speedup_vs_double == pytest.approx(1.0)

    def test_narrower_is_never_slower(self, estimate):
        speedups = [p.speedup_vs_double for p in precision_sweep(estimate)]
        assert speedups == sorted(speedups)

    def test_memory_bound_plan_gains(self, estimate):
        """A memory-bound double-precision plan must speed up in single."""
        points = precision_sweep(estimate)
        assert points[0].bound == "MEM"
        assert points[1].speedup_vs_double > 1.2

    def test_gain_saturates_at_compute_roof(self, estimate):
        """The paper's constraint: arithmetic cannot double, so the win is
        capped — half precision must not reach the naive 4x."""
        assert max_precision_speedup(estimate) < 4.0

    def test_rbw_scales_with_itemsize(self, estimate):
        points = {p.precision: p for p in precision_sweep(estimate)}
        assert points["single"].rbw_gbps == pytest.approx(
            points["double"].rbw_gbps / 2
        )
        assert points["half"].rbw_gbps == pytest.approx(
            points["double"].rbw_gbps / 4
        )

    def test_bound_moves_off_mem_eventually(self, estimate):
        points = precision_sweep(estimate)
        assert points[-1].bound in ("compute", "REG")

    def test_itemsizes(self):
        assert PRECISIONS == {"double": 8, "single": 4, "half": 2}
