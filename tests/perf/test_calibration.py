"""Calibration of the two fitted constants is reproducible."""

import pytest

from repro.core.conv import OVERLAP_CONTENTION
from repro.perf.calibration import (
    TABLE_III_TARGETS,
    calibrate,
    mbw_error,
    meas_error,
)
from repro.perf.dma_model import DMA_STRIDE_EFFICIENCY


class TestTargets:
    def test_four_rows(self):
        assert len(TABLE_III_TARGETS) == 4

    def test_paper_values_present(self):
        assert TABLE_III_TARGETS[0].paper_meas_gflops == 350.0
        assert TABLE_III_TARGETS[2].paper_mbw_gbps == 21.2


class TestErrorSurfaces:
    def test_mbw_error_minimized_near_default(self):
        default = mbw_error(DMA_STRIDE_EFFICIENCY)
        assert default < mbw_error(0.5)
        assert default < mbw_error(1.0)

    def test_meas_error_minimized_near_default(self):
        default = meas_error(DMA_STRIDE_EFFICIENCY, OVERLAP_CONTENTION)
        assert default < meas_error(DMA_STRIDE_EFFICIENCY, 0.0)
        assert default < meas_error(DMA_STRIDE_EFFICIENCY, 1.0)

    def test_default_fit_quality(self):
        """The shipped constants reproduce Table III within ~10% mean error."""
        assert mbw_error(DMA_STRIDE_EFFICIENCY) < 0.10
        assert meas_error(DMA_STRIDE_EFFICIENCY, OVERLAP_CONTENTION) < 0.10


class TestGridSearch:
    def test_recovers_shipped_constants(self):
        result = calibrate()
        assert result.stride_efficiency == pytest.approx(DMA_STRIDE_EFFICIENCY)
        assert result.contention == pytest.approx(OVERLAP_CONTENTION)

    def test_result_errors_reported(self):
        result = calibrate(stride_grid=(0.7,), contention_grid=(0.5,))
        assert result.total_error == pytest.approx(
            result.mbw_error + result.meas_error
        )
