"""The RBW equations — pinned to the paper's published values."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.units import GB
from repro.perf.equations import (
    RBW_DIRECT_MEM,
    rbw_ldm_reg_direct_conv,
    rbw_ldm_reg_gemm,
    rbw_ldm_reg_gemm_simd,
    rbw_mem_ldm_batch_plan,
    rbw_mem_ldm_batch_plan_promoted,
    rbw_mem_ldm_image_plan,
    rbw_mem_ldm_image_plan_promoted,
)


class TestTableIIIRBWValues:
    """The RBW column of Table III, exactly."""

    def test_image_plan_row1(self):
        assert rbw_mem_ldm_image_plan(16, 32, 128) / GB == pytest.approx(29.0, abs=0.05)

    def test_image_plan_row2(self):
        assert rbw_mem_ldm_image_plan(8, 32, 256) / GB == pytest.approx(23.2, abs=0.05)

    def test_batch_plan_row3(self):
        assert rbw_mem_ldm_batch_plan(3, 256, 128) / GB == pytest.approx(27.1, abs=0.05)

    def test_batch_plan_row4(self):
        assert rbw_mem_ldm_batch_plan(3, 384, 128) / GB == pytest.approx(25.7, abs=0.1)


class TestEq5:
    def test_paper_setting_is_23_2(self):
        assert rbw_ldm_reg_gemm_simd(16, 4) / GB == pytest.approx(23.2)

    def test_below_ldm_bandwidth(self):
        assert rbw_ldm_reg_gemm_simd(16, 4) < 46.4 * GB

    def test_simd_costs_more_than_plain(self):
        assert rbw_ldm_reg_gemm_simd(16, 4) > rbw_ldm_reg_gemm(16, 4)


class TestDirectMem:
    def test_value(self):
        assert RBW_DIRECT_MEM / GB == pytest.approx(139.20)

    def test_gload_efficiency_is_0_33_percent(self):
        assert (8 * GB / RBW_DIRECT_MEM) ** 2 == pytest.approx(0.0033, abs=2e-4)


class TestEq3:
    def test_depends_on_filter_size(self):
        small = rbw_ldm_reg_direct_conv(6, 6, 3, 3)
        large = rbw_ldm_reg_direct_conv(6, 6, 5, 5)
        assert small != large

    def test_block_smaller_than_filter_rejected(self):
        with pytest.raises(ValueError):
            rbw_ldm_reg_direct_conv(3, 3, 5, 5)


class TestMonotonicity:
    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_image_rbw_decreases_with_bigger_blocks(self, b_co):
        a = rbw_mem_ldm_image_plan(b_co, 32, 128)
        b = rbw_mem_ldm_image_plan(b_co + 1, 32, 128)
        assert b < a

    @given(st.integers(min_value=8, max_value=512))
    @settings(max_examples=30, deadline=None)
    def test_batch_rbw_decreases_with_bigger_batch(self, b):
        assert rbw_mem_ldm_batch_plan(3, 128, b + 8) < rbw_mem_ldm_batch_plan(3, 128, b)

    @given(
        st.integers(min_value=4, max_value=64).filter(lambda v: v % 4 == 0),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_gemm_rbw_positive(self, rb_b, rb_no):
        assert rbw_ldm_reg_gemm(rb_b, rb_no) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            rbw_mem_ldm_image_plan(0, 32, 128)
        with pytest.raises(ValueError):
            rbw_mem_ldm_batch_plan(3, 128, 0)


class TestPromotedEquations:
    """Our derived extensions for the Section IV-A DMA promotion."""

    def test_promoted_image_reduces_rbw(self):
        plain = rbw_mem_ldm_image_plan(16, 32, 128)
        promoted = rbw_mem_ldm_image_plan_promoted(16, 32, 128, k_c=3)
        assert promoted < plain

    def test_promoted_batch_reduces_rbw(self):
        plain = rbw_mem_ldm_batch_plan(3, 256, 128)
        promoted = rbw_mem_ldm_batch_plan_promoted(3, 256, 128, b_co=8)
        assert promoted < plain

    def test_promoted_image_approaches_plain_for_tiny_bco(self):
        # With bCo=1 the halo factor is Kc: no input saving at all.
        promoted = rbw_mem_ldm_image_plan_promoted(1, 32, 128, k_c=3)
        plain = rbw_mem_ldm_image_plan(1, 32, 128)
        assert promoted == pytest.approx(plain)
