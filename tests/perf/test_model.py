"""The composed three-level performance model."""

import pytest

from repro.common.units import GB
from repro.hw.spec import DEFAULT_SPEC
from repro.perf.model import PerformanceEstimate, PerformanceModel


@pytest.fixture
def model():
    return PerformanceModel()


class TestDirectMemory:
    def test_efficiency_matches_paper(self, model):
        direct = model.direct_memory()
        assert direct.efficiency == pytest.approx((8 / 139.2) ** 2, rel=1e-3)

    def test_gflops_tiny(self, model):
        assert model.direct_memory().gflops < 3.0

    def test_bound_is_mem(self, model):
        assert model.direct_memory().bound == "MEM"


class TestHierarchicalEstimates:
    def test_image_plan_estimate(self, model):
        est = model.image_plan(b_co=16, b_b=32, n_o=128, n_i=128)
        assert est.rbw_mem / GB == pytest.approx(29.0, abs=0.05)
        assert 0 < est.gflops < 742.4

    def test_batch_plan_estimate(self, model):
        est = model.batch_plan(k_c=3, n_o=256, b=128, n_i=256)
        assert est.rbw_mem / GB == pytest.approx(27.1, abs=0.05)

    def test_register_level_not_the_bound_at_paper_blocking(self, model):
        est = model.batch_plan(k_c=3, n_o=256, b=128, n_i=256)
        assert est.reg_fraction == 1.0

    def test_tiny_register_blocking_becomes_bound(self, model):
        est = model.batch_plan(k_c=3, n_o=256, b=128, n_i=256, rb_b=4, rb_no=1)
        assert est.reg_fraction < 1.0

    def test_ee_uses_kernel_simulation(self, model):
        est = model.batch_plan(k_c=3, n_o=256, b=128, n_i=128)
        assert est.execution_efficiency == pytest.approx(256 / 276, abs=1e-9)

    def test_ee_rounds_up_partial_iterations(self, model):
        assert model._ee(4) == model._ee(8)
        with pytest.raises(ValueError):
            model._ee(0)

    def test_more_output_channels_help(self, model):
        low = model.batch_plan(k_c=3, n_o=64, b=128, n_i=128)
        high = model.batch_plan(k_c=3, n_o=384, b=128, n_i=128)
        assert high.flops > low.flops


class TestEstimateProperties:
    def test_flops_composition(self):
        est = PerformanceEstimate(
            plan="x",
            peak_flops=100e9,
            execution_efficiency=0.9,
            rbw_mem=2.0,
            mbw_mem=1.0,
            rbw_reg=1.0,
            mbw_reg=2.0,
        )
        assert est.mem_fraction == pytest.approx(0.25)
        assert est.reg_fraction == 1.0
        assert est.flops == pytest.approx(100e9 * 0.9 * 0.25)
        assert est.bound == "MEM"

    def test_compute_bound_label(self):
        est = PerformanceEstimate(
            plan="x",
            peak_flops=1.0,
            execution_efficiency=1.0,
            rbw_mem=1.0,
            mbw_mem=2.0,
            rbw_reg=1.0,
            mbw_reg=2.0,
        )
        assert est.bound == "compute"

    def test_reg_bound_label(self):
        est = PerformanceEstimate(
            plan="x",
            peak_flops=1.0,
            execution_efficiency=1.0,
            rbw_mem=1.0,
            mbw_mem=2.0,
            rbw_reg=4.0,
            mbw_reg=2.0,
        )
        assert est.bound == "REG"


class TestChipEstimate:
    def test_linear_scaling(self, model):
        est = model.batch_plan(k_c=3, n_o=256, b=128, n_i=256)
        assert model.chip_estimate(est) == pytest.approx(4 * est.flops)

    def test_num_groups_validated(self, model):
        est = model.direct_memory()
        with pytest.raises(ValueError):
            model.chip_estimate(est, num_groups=5)
