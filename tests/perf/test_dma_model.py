"""MEM<->LDM measured-bandwidth helpers and the stream blend."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.units import GB
from repro.perf.dma_model import (
    DMA_STRIDE_EFFICIENCY,
    DMAStream,
    blended_mbw,
    measured_dma_bandwidth,
    mem_ldm_mbw,
)


class TestMeasuredBandwidth:
    def test_matches_table(self):
        assert measured_dma_bandwidth(256, "get") == pytest.approx(22.44 * GB)
        assert measured_dma_bandwidth(256, "put") == pytest.approx(25.80 * GB)

    def test_mixed_blend_between_endpoints(self):
        eff = mem_ldm_mbw(256, get_fraction=0.5)
        assert 22.44 * GB < eff < 25.80 * GB


class TestDMAStream:
    def test_validation(self):
        with pytest.raises(ValueError):
            DMAStream("x", -1.0, 256, "get")
        with pytest.raises(ValueError):
            DMAStream("x", 1.0, 0, "get")
        with pytest.raises(ValueError):
            DMAStream("x", 1.0, 256, "sideways")


class TestBlendedMBW:
    def test_single_stream_equals_derated_table(self):
        mbw = blended_mbw([DMAStream("in", 1e9, 256, "get")])
        assert mbw == pytest.approx(22.44 * GB * DMA_STRIDE_EFFICIENCY)

    def test_blend_is_harmonic(self):
        # Equal bytes at 1024B get (29.79) and 1024B put (33.44).
        streams = [
            DMAStream("a", 1e9, 1024, "get"),
            DMAStream("b", 1e9, 1024, "put"),
        ]
        expected = 2.0 / (1 / 29.79 + 1 / 33.44) * GB * DMA_STRIDE_EFFICIENCY
        assert blended_mbw(streams) == pytest.approx(expected, rel=1e-6)

    def test_small_block_stream_drags_down(self):
        fast = blended_mbw([DMAStream("a", 1e9, 4096, "get")])
        mixed = blended_mbw(
            [
                DMAStream("a", 1e9, 4096, "get"),
                DMAStream("b", 1e9, 32, "get"),
            ]
        )
        assert mixed < fast

    def test_empty_streams_rejected(self):
        with pytest.raises(ValueError):
            blended_mbw([])

    def test_zero_bytes_rejected(self):
        with pytest.raises(ValueError):
            blended_mbw([DMAStream("a", 0.0, 256, "get")])

    def test_stride_efficiency_validated(self):
        with pytest.raises(ValueError):
            blended_mbw([DMAStream("a", 1.0, 256, "get")], stride_efficiency=0.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=1e9),
                st.sampled_from([32, 128, 256, 1024, 4096]),
                st.sampled_from(["get", "put"]),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_blend_bounded_by_fastest_and_slowest(self, raw):
        streams = [
            DMAStream(f"s{i}", nbytes, block, direction)
            for i, (nbytes, block, direction) in enumerate(raw)
        ]
        per_stream = [
            measured_dma_bandwidth(s.block_bytes, s.direction) for s in streams
        ]
        blend = blended_mbw(streams, stride_efficiency=1.0)
        assert min(per_stream) * (1 - 1e-9) <= blend <= max(per_stream) * (1 + 1e-9)
