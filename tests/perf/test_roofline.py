"""Roofline primitives."""

import pytest

from repro.perf.roofline import Roofline, bandwidth_bound_fraction


class TestBandwidthBoundFraction:
    def test_saturates_at_one(self):
        assert bandwidth_bound_fraction(10.0, 20.0) == 1.0

    def test_linear_below(self):
        assert bandwidth_bound_fraction(20.0, 10.0) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            bandwidth_bound_fraction(0.0, 1.0)
        with pytest.raises(ValueError):
            bandwidth_bound_fraction(1.0, -1.0)


class TestRoofline:
    def test_ridge(self):
        r = Roofline(peak_flops=742.4e9, peak_bandwidth=36e9)
        assert r.ridge_intensity == pytest.approx(742.4 / 36)

    def test_attainable_memory_bound(self):
        r = Roofline(peak_flops=100.0, peak_bandwidth=10.0)
        assert r.attainable(5.0) == 50.0

    def test_attainable_compute_bound(self):
        r = Roofline(peak_flops=100.0, peak_bandwidth=10.0)
        assert r.attainable(100.0) == 100.0

    def test_required_bandwidth_for(self):
        r = Roofline(peak_flops=100.0, peak_bandwidth=10.0)
        # 1 byte per flop -> need 100 B/s to stay at peak.
        assert r.required_bandwidth_for(bytes_moved=1.0, flops=1.0) == 100.0

    def test_quadratic_fraction(self):
        r = Roofline(peak_flops=100.0, peak_bandwidth=10.0)
        assert r.quadratic_fraction(5.0, 10.0) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            Roofline(peak_flops=0, peak_bandwidth=1)
        r = Roofline(peak_flops=1, peak_bandwidth=1)
        with pytest.raises(ValueError):
            r.attainable(-1.0)
        with pytest.raises(ValueError):
            r.required_bandwidth_for(1.0, 0.0)
