"""Property-based tests on the performance model's structure."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.perf.model import PerformanceEstimate, PerformanceModel


positive = st.floats(min_value=1e6, max_value=1e12, allow_nan=False)


@st.composite
def estimates(draw):
    return PerformanceEstimate(
        plan="prop",
        peak_flops=draw(positive),
        execution_efficiency=draw(st.floats(min_value=0.01, max_value=1.0)),
        rbw_mem=draw(positive),
        mbw_mem=draw(positive),
        rbw_reg=draw(positive),
        mbw_reg=draw(positive),
    )


class TestEstimateInvariants:
    @given(estimates())
    @settings(max_examples=80, deadline=None)
    def test_flops_never_exceed_derated_peak(self, est):
        assert est.flops <= est.peak_flops * est.execution_efficiency + 1e-6

    @given(estimates())
    @settings(max_examples=80, deadline=None)
    def test_fractions_in_unit_interval(self, est):
        assert 0.0 < est.mem_fraction <= 1.0
        assert 0.0 < est.reg_fraction <= 1.0

    @given(estimates())
    @settings(max_examples=80, deadline=None)
    def test_bound_label_consistent(self, est):
        if est.bound == "compute":
            assert est.mem_fraction == 1.0 and est.reg_fraction == 1.0
        elif est.bound == "MEM":
            assert est.mem_fraction < 1.0
        else:
            assert est.reg_fraction < 1.0

    @given(estimates(), st.floats(min_value=1.1, max_value=10.0))
    @settings(max_examples=60, deadline=None)
    def test_more_measured_bandwidth_never_hurts(self, est, factor):
        better = PerformanceEstimate(
            plan=est.plan,
            peak_flops=est.peak_flops,
            execution_efficiency=est.execution_efficiency,
            rbw_mem=est.rbw_mem,
            mbw_mem=est.mbw_mem * factor,
            rbw_reg=est.rbw_reg,
            mbw_reg=est.mbw_reg,
        )
        assert better.flops >= est.flops - 1e-6


class TestModelMonotonicity:
    @given(
        st.sampled_from([64, 128, 192, 256, 320, 384]),
        st.sampled_from([64, 128, 192, 256, 320, 384]),
    )
    @settings(max_examples=30, deadline=None)
    def test_batch_plan_improves_with_no(self, no_a, no_b):
        assume(no_a < no_b)
        model = PerformanceModel()
        low = model.batch_plan(k_c=3, n_o=no_a, b=128, n_i=128)
        high = model.batch_plan(k_c=3, n_o=no_b, b=128, n_i=128)
        assert high.flops >= low.flops - 1e-6

    @given(st.sampled_from([16, 32, 64, 128, 256, 384]))
    @settings(max_examples=20, deadline=None)
    def test_ee_bounded(self, ni):
        model = PerformanceModel()
        assert 0.5 < model._ee(ni) < 1.0
