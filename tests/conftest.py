"""Shared fixtures for the swDNN reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import ConvParams
from repro.hw.spec import DEFAULT_SPEC, SW26010Spec


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def spec() -> SW26010Spec:
    return DEFAULT_SPEC


@pytest.fixture
def small_params() -> ConvParams:
    """A mesh-divisible configuration small enough for functional runs."""
    return ConvParams(ni=16, no=16, ri=10, ci=10, kr=3, kc=3, b=8)


@pytest.fixture
def paper_params() -> ConvParams:
    """A Fig. 7-style configuration for timed-only evaluation."""
    return ConvParams.from_output(ni=128, no=128, ro=64, co=64, kr=3, kc=3, b=128)
