"""Padded convolution through the API (explicit-pad lowering)."""

import numpy as np
import pytest

from repro.api import FilterDescriptor, SwDNNHandle, TensorDescriptor
from repro.api.descriptors import (
    ConvolutionDescriptor,
    output_descriptor,
    resolve_conv_params,
)
from repro.common.errors import PlanError
from repro.core.reference import conv2d_reference


class TestDescriptors:
    def test_same_padding_preserves_size(self):
        out = output_descriptor(
            TensorDescriptor(8, 8, 16, 16),
            FilterDescriptor(8, 8, 3, 3),
            ConvolutionDescriptor(pad_h=1, pad_w=1),
        )
        assert (out.h, out.w) == (16, 16)

    def test_padding_enables_small_images(self):
        # A 2x2 image with a 3x3 filter only works padded.
        with pytest.raises(PlanError):
            resolve_conv_params(
                TensorDescriptor(1, 1, 2, 2),
                FilterDescriptor(1, 1, 3, 3),
                ConvolutionDescriptor(),
            )
        params = resolve_conv_params(
            TensorDescriptor(1, 1, 2, 2),
            FilterDescriptor(1, 1, 3, 3),
            ConvolutionDescriptor(pad_h=1, pad_w=1),
        )
        assert (params.ro, params.co) == (2, 2)

    def test_negative_padding_rejected(self):
        with pytest.raises(PlanError):
            ConvolutionDescriptor(pad_h=-1)

    def test_stride_still_rejected(self):
        with pytest.raises(PlanError):
            ConvolutionDescriptor(stride_h=2)


class TestExecution:
    def test_padded_forward_matches_padded_reference(self, rng):
        handle = SwDNNHandle()
        x = rng.standard_normal((8, 8, 6, 6))
        w = rng.standard_normal((8, 8, 3, 3))
        conv_desc = ConvolutionDescriptor(pad_h=1, pad_w=1)
        out, _ = handle.convolution_forward(x, w, conv_desc=conv_desc)
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        assert out.shape == (8, 8, 6, 6)
        assert np.allclose(out, conv2d_reference(padded, w))

    def test_asymmetric_pad_dims(self, rng):
        handle = SwDNNHandle()
        x = rng.standard_normal((8, 8, 6, 8))
        w = rng.standard_normal((8, 8, 3, 3))
        out, _ = handle.convolution_forward(
            x, w, conv_desc=ConvolutionDescriptor(pad_h=1, pad_w=0)
        )
        assert out.shape == (8, 8, 6, 6)

    def test_padding_with_fusion(self, rng):
        handle = SwDNNHandle()
        x = rng.standard_normal((8, 8, 6, 6))
        w = rng.standard_normal((8, 8, 3, 3))
        bias = rng.standard_normal(8)
        out, _ = handle.convolution_forward(
            x,
            w,
            conv_desc=ConvolutionDescriptor(pad_h=1, pad_w=1),
            bias=bias,
            activation="relu",
        )
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expected = np.maximum(
            conv2d_reference(padded, w) + bias[None, :, None, None], 0.0
        )
        assert np.allclose(out, expected)
