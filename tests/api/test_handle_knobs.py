"""Handle-level autotune / fused / batch-shard knobs."""

import numpy as np
import pytest

from repro.api import SwDNNHandle
from repro.common.errors import PlanError
from repro.core.reference import conv2d_reference
from repro.tune import PlanCache


@pytest.fixture
def operands(rng, small_params):
    x = rng.standard_normal(small_params.input_shape)
    w = rng.standard_normal(small_params.filter_shape)
    return x, w


class TestAutotuneKnob:
    def test_autotuned_forward_parity(self, operands):
        x, w = operands
        handle = SwDNNHandle(autotune=True)  # in-process tune, no disk
        out, report = handle.convolution_forward(x, w)
        assert np.allclose(out, conv2d_reference(x, w))
        assert report.seconds > 0

    def test_plan_cache_implies_autotune(self, tmp_path, operands):
        x, w = operands
        cache = PlanCache(tmp_path)
        handle = SwDNNHandle(plan_cache=cache)
        assert handle.autotune
        handle.convolution_forward(x, w)
        assert cache.stats.stores >= 1
        # A second handle sharing the cache hits instead of re-tuning.
        other = SwDNNHandle(plan_cache=cache)
        other.convolution_forward(x, w)
        assert cache.stats.hits >= 1


class TestFusedKnob:
    def test_fused_pool_parity(self, operands):
        x, w = operands
        fused = SwDNNHandle(fused=True)
        plain = SwDNNHandle()
        out_f, rep_f = fused.convolution_forward(x, w, activation="relu", pool=2)
        out_p, rep_p = plain.convolution_forward(x, w, activation="relu", pool=2)
        assert np.allclose(out_f, out_p)
        # The fused epilogue beats conv + separate pool pass.
        assert rep_f.seconds < rep_p.seconds

    def test_unfused_pool_charges_a_mem_pass(self, operands):
        x, w = operands
        handle = SwDNNHandle()
        _, pooled = handle.convolution_forward(x, w, pool=2)
        _, plain = handle.convolution_forward(x, w)
        assert pooled.seconds > plain.seconds

    def test_pool_validation(self, operands):
        x, w = operands
        with pytest.raises(PlanError):
            SwDNNHandle().convolution_forward(x, w, pool=0)


class TestBatchShardKnob:
    def test_sharded_forward_parity(self, operands):
        x, w = operands
        handle = SwDNNHandle(batch_shards=4)
        out, report = handle.convolution_forward(x, w)
        assert np.allclose(out, conv2d_reference(x, w))

    def test_invalid_shard_count(self):
        with pytest.raises(PlanError):
            SwDNNHandle(batch_shards=5)
        with pytest.raises(PlanError):
            SwDNNHandle(batch_shards=0)

    def test_guarded_mode_rejects_sharding(self, operands):
        x, w = operands
        handle = SwDNNHandle(guarded=True, batch_shards=4)
        with pytest.raises(PlanError):
            handle.convolution_forward(x, w)
