"""The SwDNNHandle: algorithm search, plan caching, operations."""

import numpy as np
import pytest

from repro.api import (
    ConvolutionFwdAlgo,
    FilterDescriptor,
    SwDNNHandle,
    TensorDescriptor,
    find_convolution_forward_algorithm,
)
from repro.common.errors import PlanError
from repro.core.params import ConvParams
from repro.core.reference import conv2d_backward_reference, conv2d_reference


@pytest.fixture
def handle():
    return SwDNNHandle()


class TestAlgorithmSearch:
    def test_ranked_best_first(self, paper_params):
        perfs = find_convolution_forward_algorithm(paper_params)
        seconds = [p.modeled_seconds for p in perfs]
        assert seconds == sorted(seconds)

    def test_requested_count(self, paper_params):
        perfs = find_convolution_forward_algorithm(paper_params, requested=1)
        assert len(perfs) == 1

    def test_requested_validated(self, paper_params):
        with pytest.raises(PlanError):
            find_convolution_forward_algorithm(paper_params, requested=0)

    def test_handle_find(self, handle):
        perfs = handle.find_algorithms(
            TensorDescriptor(128, 128, 66, 66), FilterDescriptor(128, 128, 3, 3)
        )
        assert len(perfs) == 2
        assert all(p.modeled_gflops > 0 for p in perfs)

    def test_workspace_fits_ldm(self, handle):
        ws = handle.get_workspace_bytes(
            TensorDescriptor(128, 128, 66, 66), FilterDescriptor(128, 128, 3, 3)
        )
        assert 0 < ws <= 64 * 1024


class TestOperations:
    def test_forward_matches_reference(self, handle, rng, small_params):
        x = rng.standard_normal(small_params.input_shape)
        w = rng.standard_normal(small_params.filter_shape)
        out, report = handle.convolution_forward(x, w)
        assert np.allclose(out, conv2d_reference(x, w))
        assert report.seconds > 0

    def test_forward_with_descriptors(self, handle, rng):
        x = rng.standard_normal((8, 8, 6, 6))
        w = rng.standard_normal((8, 8, 3, 3))
        out, _ = handle.convolution_forward(
            x, w,
            x_desc=TensorDescriptor(8, 8, 6, 6),
            w_desc=FilterDescriptor(8, 8, 3, 3),
        )
        assert out.shape == (8, 8, 4, 4)

    def test_forward_explicit_algorithm(self, handle, rng, small_params):
        x = rng.standard_normal(small_params.input_shape)
        w = rng.standard_normal(small_params.filter_shape)
        out_img, _ = handle.convolution_forward(
            x, w, algo=ConvolutionFwdAlgo.IMAGE_SIZE_AWARE
        )
        out_bat, _ = handle.convolution_forward(
            x, w, algo=ConvolutionFwdAlgo.BATCH_SIZE_AWARE
        )
        assert np.allclose(out_img, out_bat)

    def test_forward_shape_validation(self, handle, rng):
        with pytest.raises(PlanError):
            handle.convolution_forward(
                rng.standard_normal((2, 3, 5, 5)), rng.standard_normal((2, 4, 3, 3))
            )
        with pytest.raises(PlanError):
            handle.convolution_forward(
                rng.standard_normal((3, 5, 5)), rng.standard_normal((2, 4, 3, 3))
            )

    def test_backward_data(self, handle, rng):
        p = ConvParams(ni=8, no=8, ri=8, ci=8, kr=3, kc=3, b=8)
        x = rng.standard_normal(p.input_shape)
        w = rng.standard_normal(p.filter_shape)
        g = rng.standard_normal(p.output_shape)
        gx, _ = handle.convolution_backward_data(
            w, g, TensorDescriptor(p.b, p.ni, p.ri, p.ci)
        )
        ref_gx, _ = conv2d_backward_reference(x, w, g)
        assert np.allclose(gx, ref_gx)

    def test_backward_filter(self, handle, rng):
        p = ConvParams(ni=8, no=8, ri=8, ci=8, kr=3, kc=3, b=8)
        x = rng.standard_normal(p.input_shape)
        w = rng.standard_normal(p.filter_shape)
        g = rng.standard_normal(p.output_shape)
        gw, _ = handle.convolution_backward_filter(
            x, g, FilterDescriptor(p.no, p.ni, p.kr, p.kc)
        )
        _, ref_gw = conv2d_backward_reference(x, w, g)
        assert np.allclose(gw, ref_gw)

    def test_gemm(self, handle, rng):
        a = rng.standard_normal((24, 16))
        b = rng.standard_normal((16, 32))
        out, report = handle.gemm(a, b)
        assert np.allclose(out, a @ b)
        assert report.flops == 2 * 24 * 32 * 16

    def test_gemm_shape_validation(self, handle, rng):
        with pytest.raises(PlanError):
            handle.gemm(rng.standard_normal((2, 3)), rng.standard_normal((4, 5)))


class TestPlanCaching:
    def test_plans_are_cached(self, handle, rng, small_params):
        x = rng.standard_normal(small_params.input_shape)
        w = rng.standard_normal(small_params.filter_shape)
        handle.convolution_forward(x, w)
        assert handle.cached_plans == 1
        handle.convolution_forward(x, w)
        assert handle.cached_plans == 1

    def test_distinct_shapes_distinct_plans(self, handle, rng):
        for h in (6, 7):
            x = rng.standard_normal((8, 8, h, 6))
            w = rng.standard_normal((8, 8, 3, 3))
            handle.convolution_forward(x, w)
        assert handle.cached_plans == 2


class TestEagerHandleValidation:
    def test_non_4d_rejected(self, handle, rng):
        with pytest.raises(PlanError, match="4-D NCHW"):
            handle.convolution_forward(
                rng.standard_normal((4, 4)), rng.standard_normal((2, 2, 2, 2))
            )

    def test_filter_larger_than_input_named(self, handle, rng):
        with pytest.raises(PlanError, match="output size would be <= 0"):
            handle.convolution_forward(
                rng.standard_normal((1, 4, 2, 2)), rng.standard_normal((4, 4, 3, 3))
            )

    def test_channel_mismatch_named(self, handle, rng):
        with pytest.raises(PlanError, match="channels"):
            handle.convolution_forward(
                rng.standard_normal((1, 4, 6, 6)), rng.standard_normal((4, 5, 3, 3))
            )


class TestGuardedHandle:
    def test_unguarded_has_no_outcome(self, handle, rng, small_params):
        x = rng.standard_normal(small_params.input_shape)
        w = rng.standard_normal(small_params.filter_shape)
        handle.convolution_forward(x, w)
        assert handle.last_outcome is None

    def test_fault_plan_implies_guarded(self):
        from repro.faults import FaultPlan, FaultSpec

        h = SwDNNHandle(fault_plan=FaultPlan(FaultSpec()))
        assert h.guarded

    def test_guarded_run_reports_outcome(self, rng, small_params):
        h = SwDNNHandle(backend="mesh-fast", guarded=True)
        x = rng.standard_normal(small_params.input_shape)
        w = rng.standard_normal(small_params.filter_shape)
        out, _ = h.convolution_forward(x, w)
        assert h.last_outcome is not None
        assert h.last_outcome.backend_used == "mesh-fast"
        assert not h.last_outcome.degraded
        ref = conv2d_reference(x, w)
        assert np.allclose(out, ref)

    def test_degraded_device_survives(self, rng, small_params):
        from repro.faults import FaultPlan, FaultSpec

        plan = FaultPlan(FaultSpec(bus_stall_rate=1.0))
        h = SwDNNHandle(backend="mesh", fault_plan=plan)
        x = rng.standard_normal(small_params.input_shape)
        w = rng.standard_normal(small_params.filter_shape)
        out, _ = h.convolution_forward(x, w)
        assert h.last_outcome.backend_used == "numpy"
        assert h.last_outcome.degraded
        assert np.allclose(out, conv2d_reference(x, w))
