"""Descriptor validation and shape resolution."""

import numpy as np
import pytest

from repro.api.descriptors import (
    ConvolutionDescriptor,
    FilterDescriptor,
    TensorDescriptor,
    output_descriptor,
    resolve_conv_params,
)
from repro.common.errors import PlanError


class TestTensorDescriptor:
    def test_shape(self):
        assert TensorDescriptor(2, 3, 4, 5).shape == (2, 3, 4, 5)

    def test_positive_dims(self):
        with pytest.raises(PlanError):
            TensorDescriptor(0, 1, 1, 1)

    def test_double_precision_only(self):
        with pytest.raises(PlanError):
            TensorDescriptor(1, 1, 1, 1, dtype="float32")

    def test_matches(self):
        desc = TensorDescriptor(1, 2, 3, 4)
        desc.matches(np.zeros((1, 2, 3, 4)))
        with pytest.raises(PlanError):
            desc.matches(np.zeros((1, 2, 3, 5)))


class TestConvolutionDescriptor:
    def test_default_valid(self):
        ConvolutionDescriptor()

    def test_padding_accepted(self):
        desc = ConvolutionDescriptor(pad_h=1, pad_w=2)
        assert desc.has_padding

    def test_stride_rejected(self):
        with pytest.raises(PlanError):
            ConvolutionDescriptor(stride_w=2)


class TestResolution:
    def test_resolve(self):
        params = resolve_conv_params(
            TensorDescriptor(8, 16, 10, 12),
            FilterDescriptor(32, 16, 3, 3),
            ConvolutionDescriptor(),
        )
        assert params.b == 8
        assert params.ni == 16
        assert params.no == 32
        assert params.ro == 8
        assert params.co == 10

    def test_channel_mismatch(self):
        with pytest.raises(PlanError):
            resolve_conv_params(
                TensorDescriptor(1, 3, 5, 5),
                FilterDescriptor(2, 4, 3, 3),
                ConvolutionDescriptor(),
            )

    def test_filter_too_large(self):
        with pytest.raises(PlanError):
            resolve_conv_params(
                TensorDescriptor(1, 3, 2, 2),
                FilterDescriptor(2, 3, 3, 3),
                ConvolutionDescriptor(),
            )

    def test_output_descriptor(self):
        out = output_descriptor(
            TensorDescriptor(8, 16, 10, 12),
            FilterDescriptor(32, 16, 3, 5),
            ConvolutionDescriptor(),
        )
        assert out.shape == (8, 32, 8, 8)


class TestEagerValidationMessages:
    """Every validation error names the offending field."""

    def test_tensor_field_named(self):
        with pytest.raises(PlanError, match=r"TensorDescriptor\.h"):
            TensorDescriptor(1, 1, 0, 1)
        with pytest.raises(PlanError, match=r"TensorDescriptor\.n"):
            TensorDescriptor(-3, 1, 1, 1)

    def test_filter_field_named(self):
        with pytest.raises(PlanError, match=r"FilterDescriptor\.kw"):
            FilterDescriptor(1, 1, 1, 0)

    def test_conv_field_named(self):
        with pytest.raises(PlanError, match=r"ConvolutionDescriptor\.pad_w"):
            ConvolutionDescriptor(pad_w=-1)
        with pytest.raises(PlanError, match=r"ConvolutionDescriptor\.stride_h"):
            ConvolutionDescriptor(stride_h=2)

    def test_channel_mismatch_names_both_fields(self):
        with pytest.raises(
            PlanError, match=r"TensorDescriptor\.c = 3 .* FilterDescriptor\.c = 4"
        ):
            resolve_conv_params(
                TensorDescriptor(1, 3, 5, 5),
                FilterDescriptor(2, 4, 3, 3),
                ConvolutionDescriptor(),
            )

    def test_empty_output_named_eagerly(self):
        with pytest.raises(PlanError, match=r"output height .* FilterDescriptor\.kh"):
            resolve_conv_params(
                TensorDescriptor(1, 3, 2, 5),
                FilterDescriptor(2, 3, 3, 3),
                ConvolutionDescriptor(),
            )
        with pytest.raises(PlanError, match=r"output width .* FilterDescriptor\.kw"):
            resolve_conv_params(
                TensorDescriptor(1, 3, 5, 2),
                FilterDescriptor(2, 3, 3, 3),
                ConvolutionDescriptor(),
            )
