"""Legacy setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation --no-use-pep517`` uses this file;
all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
