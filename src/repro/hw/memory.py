"""Main (DDR3) memory of a core group, and the gload direct-access port.

The simulator keeps tensors as named NumPy arrays living "in main memory".
CPEs may reach that memory two ways, mirroring Section III-D of the paper:

* through the :class:`repro.hw.dma.DMAEngine` into LDM (the REG-LDM-MEM
  path), which is the path every optimized plan uses; or
* directly, element-by-element, through :class:`GloadPort` — the ``gload``
  instruction path, whose physical bandwidth is only 8 GB/s per CG and which
  the paper shows yields 0.32% of peak.

Both ports account the bytes they move so experiments can report effective
bandwidths and arithmetic intensity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.common.errors import SimulationError
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC


@dataclass
class MemoryStats:
    """Byte/time accounting for one memory port."""

    bytes_read: int = 0
    bytes_written: int = 0
    transfers: int = 0
    busy_seconds: float = 0.0

    @property
    def bytes_total(self) -> int:
        return self.bytes_read + self.bytes_written

    def reset(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0
        self.transfers = 0
        self.busy_seconds = 0.0


class MainMemory:
    """The 8 GB DDR3 memory attached to one core group.

    Tensors are registered by name.  Registration enforces the capacity
    limit so workloads that could not fit on the real machine are rejected
    rather than silently simulated.
    """

    def __init__(self, spec: SW26010Spec = DEFAULT_SPEC):
        self.spec = spec
        self._tensors: Dict[str, np.ndarray] = {}
        self._bytes_used = 0
        self.stats = MemoryStats()

    @property
    def bytes_used(self) -> int:
        return self._bytes_used

    @property
    def bytes_free(self) -> int:
        return self.spec.memory_bytes - self._bytes_used

    def register(self, name: str, array: np.ndarray) -> np.ndarray:
        """Place ``array`` in main memory under ``name``.

        Returns the stored array (stored by reference; the simulator treats
        the NumPy buffer as the memory contents).
        """
        if name in self._tensors:
            raise SimulationError(f"tensor {name!r} already registered")
        if array.nbytes > self.bytes_free:
            raise SimulationError(
                f"tensor {name!r} needs {array.nbytes} bytes but only "
                f"{self.bytes_free} bytes of main memory are free"
            )
        self._tensors[name] = array
        self._bytes_used += array.nbytes
        return array

    def allocate(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """Allocate a zeroed tensor in main memory."""
        return self.register(name, np.zeros(shape, dtype=dtype))

    def free(self, name: str) -> None:
        """Remove a tensor from main memory."""
        array = self._tensors.pop(name, None)
        if array is None:
            raise SimulationError(f"tensor {name!r} is not registered")
        self._bytes_used -= array.nbytes

    def get(self, name: str) -> np.ndarray:
        """Look up a tensor by name."""
        try:
            return self._tensors[name]
        except KeyError:
            raise SimulationError(f"tensor {name!r} is not registered") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tensors

    def names(self):
        """Iterate over registered tensor names."""
        return iter(self._tensors)


class GloadPort:
    """Direct CPE access to main memory via ``gload``/``gstore``.

    The paper's first design point (middle column of Fig. 2): no data
    sharing, an 8 GB/s physical interface shared by the 64 CPEs of a CG.
    """

    def __init__(self, memory: MainMemory, spec: Optional[SW26010Spec] = None):
        self.memory = memory
        self.spec = spec or memory.spec
        self.stats = MemoryStats()

    def gload(self, name: str, index) -> np.ndarray:
        """Read an element (or slice) directly from main memory."""
        tensor = self.memory.get(name)
        value = tensor[index]
        nbytes = int(np.asarray(value).nbytes)
        self._account(read=nbytes, write=0)
        return value

    def gstore(self, name: str, index, value) -> None:
        """Write an element (or slice) directly to main memory."""
        tensor = self.memory.get(name)
        tensor[index] = value
        nbytes = int(np.asarray(value).nbytes)
        self._account(read=0, write=nbytes)

    def _account(self, read: int, write: int) -> None:
        moved = read + write
        self.stats.bytes_read += read
        self.stats.bytes_written += write
        self.stats.transfers += 1
        self.stats.busy_seconds += moved / self.spec.gload_bandwidth
