"""The per-CG DMA engine and its empirical bandwidth model (Table II).

Section III-D of the paper measures the effective DMA bandwidth between main
memory and LDM as a function of the contiguous block size each CPE transfers:
it ranges from ~4 GB/s at 32-byte blocks to ~36 GB/s at 4 KiB blocks, with a
knee around 256 bytes and best behaviour for blocks "larger than 256B and
aligned in 128B".  Every LDM-blocking decision in Section IV exists to push
the leading-dimension block size up this curve, so the simulator charges DMA
time from exactly this curve.

:class:`DMABandwidthModel` interpolates Table II (piecewise-linear in
log(block size), clamped at the ends), with an alignment derating for blocks
that are not multiples of the 128-byte DDR3 burst.  :class:`DMAEngine` moves
real NumPy data between :class:`~repro.hw.memory.MainMemory` tensors and LDM
buffers, returning :class:`DMATransfer` handles whose completion time enables
the double-buffering overlap of Section IV-A.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import SimulationError
from repro.common.units import GB
from repro.hw.ldm import LDMBuffer
from repro.hw.memory import MainMemory, MemoryStats
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC, TABLE_II_DMA_BANDWIDTH
from repro.telemetry import current_telemetry


class DMABandwidthModel:
    """Effective DMA bandwidth as a function of per-CPE block size.

    Calibrated to Table II.  Query points that coincide with a measured block
    size return the measured value exactly (so the Table II micro-benchmark
    reproduces the table verbatim); other block sizes interpolate linearly in
    ``log2(size)``; sizes outside the measured range clamp to the end points.
    """

    def __init__(
        self,
        table: Optional[Dict[int, Tuple[float, float]]] = None,
        alignment: int = 128,
        misalignment_factor: float = 0.75,
    ):
        table = dict(table if table is not None else TABLE_II_DMA_BANDWIDTH)
        if not table:
            raise ValueError("DMA bandwidth table must not be empty")
        self._sizes = sorted(table)
        self._exact = set(self._sizes)
        self._get = [table[s][0] for s in self._sizes]
        self._put = [table[s][1] for s in self._sizes]
        self.alignment = alignment
        self.misalignment_factor = misalignment_factor

    def get_bandwidth(self, block_bytes: int, aligned: bool = True) -> float:
        """Memory -> LDM bandwidth in bytes/second for a given block size."""
        return self._lookup(block_bytes, self._get, aligned)

    def put_bandwidth(self, block_bytes: int, aligned: bool = True) -> float:
        """LDM -> memory bandwidth in bytes/second for a given block size."""
        return self._lookup(block_bytes, self._put, aligned)

    def bandwidth(self, block_bytes: int, direction: str, aligned: bool = True) -> float:
        """Bandwidth for ``direction`` in {"get", "put"}."""
        if direction == "get":
            return self.get_bandwidth(block_bytes, aligned)
        if direction == "put":
            return self.put_bandwidth(block_bytes, aligned)
        raise ValueError(f"direction must be 'get' or 'put', got {direction!r}")

    def effective_bandwidth(
        self, block_bytes: int, get_fraction: float = 0.5, aligned: bool = True
    ) -> float:
        """Blend of get/put bandwidth for mixed traffic.

        ``get_fraction`` is the fraction of bytes moved by DMA get; the blend
        is harmonic (time-weighted), matching how a loop alternating gets and
        puts actually spends time.
        """
        if not 0.0 <= get_fraction <= 1.0:
            raise ValueError(f"get_fraction must be in [0, 1], got {get_fraction}")
        bw_get = self.get_bandwidth(block_bytes, aligned)
        bw_put = self.put_bandwidth(block_bytes, aligned)
        inv = get_fraction / bw_get + (1.0 - get_fraction) / bw_put
        return 1.0 / inv

    def is_aligned(self, block_bytes: int) -> bool:
        """Whether a block size meets the 128-byte DDR3 burst alignment."""
        return block_bytes % self.alignment == 0

    def _lookup(self, block_bytes: int, column: List[float], aligned: bool) -> float:
        if block_bytes <= 0:
            raise ValueError(f"block size must be positive, got {block_bytes}")
        sizes = self._sizes
        exact = block_bytes in self._exact
        if block_bytes <= sizes[0]:
            value = column[0]
        elif block_bytes >= sizes[-1]:
            value = column[-1]
        else:
            # Piecewise-linear in log2(size).
            hi = next(i for i, s in enumerate(sizes) if s >= block_bytes)
            lo = hi - 1
            if sizes[hi] == block_bytes:
                value = column[hi]
            else:
                x = math.log2(block_bytes)
                x0, x1 = math.log2(sizes[lo]), math.log2(sizes[hi])
                t = (x - x0) / (x1 - x0)
                value = column[lo] * (1.0 - t) + column[hi] * t
        # Measured table entries already include any alignment effect; the
        # derate only applies to interpolated, misaligned block sizes.
        if not exact and not aligned and not self.is_aligned(block_bytes):
            value *= self.misalignment_factor
        return value * GB


@dataclass
class DMATransfer:
    """Handle for an issued (possibly in-flight) DMA transfer.

    ``start`` / ``finish`` are simulated timestamps in seconds; double
    buffering inspects them to compute overlap with computation.
    """

    direction: str
    nbytes: int
    block_bytes: int
    start: float
    finish: float
    tensor: str = ""

    @property
    def duration(self) -> float:
        return self.finish - self.start


class DMAEngine:
    """Moves data between main-memory tensors and LDM buffers, charging time.

    One engine models the aggregate DMA capability of one CG's CPE cluster:
    the 64 CPEs issue DMA descriptors collectively (each moving
    ``block_bytes`` contiguous bytes), and the effective bandwidth for the
    whole transfer is the Table II figure for that block size.

    The engine is sequential per channel: a new transfer starts no earlier
    than the previous one on the same channel finished.  Separate channels
    model the double-buffer pattern, where the *next* tile's load overlaps
    the current tile's compute.
    """

    def __init__(
        self,
        memory: MainMemory,
        spec: Optional[SW26010Spec] = None,
        bandwidth_model: Optional[DMABandwidthModel] = None,
        fault_plan=None,
        telemetry=None,
    ):
        self.memory = memory
        self.spec = spec or memory.spec
        self.model = bandwidth_model or DMABandwidthModel(
            alignment=self.spec.dma_alignment
        )
        #: Optional :class:`repro.faults.FaultPlan`; ``None`` = healthy DMA.
        self.fault_plan = fault_plan
        self.telemetry = telemetry if telemetry is not None else current_telemetry()
        self.stats = MemoryStats()
        self._channel_free_at: Dict[int, float] = {}
        self.log: List[DMATransfer] = []

    def dma_get(
        self,
        tensor_name: str,
        src_index,
        dst: LDMBuffer,
        dst_index=slice(None),
        block_bytes: Optional[int] = None,
        at_time: float = 0.0,
        channel: int = 0,
    ) -> DMATransfer:
        """DMA a main-memory slice into an LDM buffer.

        ``block_bytes`` is the contiguous block size each CPE's descriptor
        moves (the leading-dimension size the paper's blocking controls); it
        defaults to the innermost contiguous extent of the source slice.
        """
        tensor = self.memory.get(tensor_name)
        data = np.ascontiguousarray(tensor[src_index])
        dst.write(dst_index, data)
        nbytes = int(data.nbytes)
        block = block_bytes if block_bytes is not None else _leading_block(data)
        transfer = self._schedule("get", nbytes, block, at_time, channel, tensor_name)
        self.memory.stats.bytes_read += nbytes
        self.memory.stats.transfers += 1
        return transfer

    def dma_put(
        self,
        src: LDMBuffer,
        src_index,
        tensor_name: str,
        dst_index,
        block_bytes: Optional[int] = None,
        at_time: float = 0.0,
        channel: int = 0,
        accumulate: bool = False,
    ) -> DMATransfer:
        """DMA an LDM buffer slice back to a main-memory tensor.

        With ``accumulate=True`` the destination is updated with ``+=``,
        which plans use when different tiles contribute partial sums to the
        same output region.
        """
        tensor = self.memory.get(tensor_name)
        data = src.read(src_index)
        if accumulate:
            tensor[dst_index] += data
        else:
            tensor[dst_index] = data
        nbytes = int(np.asarray(data).nbytes)
        block = block_bytes if block_bytes is not None else _leading_block(np.asarray(data))
        transfer = self._schedule("put", nbytes, block, at_time, channel, tensor_name)
        self.memory.stats.bytes_written += nbytes
        self.memory.stats.transfers += 1
        return transfer

    def _schedule(
        self,
        direction: str,
        nbytes: int,
        block_bytes: int,
        at_time: float,
        channel: int,
        tensor: str,
    ) -> DMATransfer:
        if nbytes < 0:
            raise SimulationError("negative transfer size")
        aligned = self.model.is_aligned(block_bytes)
        bandwidth = self.model.bandwidth(block_bytes, direction, aligned=aligned)
        if self.fault_plan is not None:
            # Injected degradation: a hung descriptor raises DMATimeoutError
            # (recorded in the plan's ledger); surviving transfers run at
            # the derated bandwidth.
            self.fault_plan.maybe_dma_timeout(nbytes, direction, tensor)
            bandwidth *= self.fault_plan.dma_bandwidth_factor
        start = max(at_time, self._channel_free_at.get(channel, 0.0))
        duration = nbytes / bandwidth if nbytes else 0.0
        finish = start + duration
        self._channel_free_at[channel] = finish
        transfer = DMATransfer(
            direction=direction,
            nbytes=nbytes,
            block_bytes=block_bytes,
            start=start,
            finish=finish,
            tensor=tensor,
        )
        self.log.append(transfer)
        self.stats.transfers += 1
        self.stats.busy_seconds += duration
        if direction == "get":
            self.stats.bytes_read += nbytes
        else:
            self.stats.bytes_written += nbytes
        counters = self.telemetry.counters
        counters.add("dma.transfers")
        counters.add(f"dma.bytes_{direction}", nbytes)
        self.telemetry.tracer.record_sim(
            f"dma.{direction}",
            start,
            finish,
            track=f"dma-ch{channel}",
            cat="dma",
            tensor=tensor,
            nbytes=nbytes,
            block_bytes=block_bytes,
        )
        return transfer

    def channel_free_at(self, channel: int = 0) -> float:
        """Simulated time at which a channel becomes idle."""
        return self._channel_free_at.get(channel, 0.0)

    def total_bytes(self) -> int:
        return self.stats.bytes_total

    def reset(self) -> None:
        """Clear accounting (tensors in memory are untouched)."""
        self.stats.reset()
        self._channel_free_at.clear()
        self.log.clear()


def _leading_block(data: np.ndarray) -> int:
    """Contiguous leading-dimension extent of an array, in bytes."""
    if data.ndim == 0:
        return int(data.nbytes)
    return int(data.shape[-1] * data.itemsize)
