"""Core-group and chip composition, including the NoC partitioning scheme.

A :class:`CoreGroup` ties together the pieces one CG's convolution plan
touches: main memory, the DMA engine, the gload port, the MPE (modeled as a
simple orchestrator record) and the 8x8 CPE mesh.

:class:`SW26010Chip` holds the four CGs and implements the multi-CG scaling
scheme of Section III-D: output images are partitioned into four parts along
the row dimension, each CG processing one fourth, with near-linear scaling.
The chip also models the user-visible split between each CG's *private*
memory space and the *shared* space reachable over the NoC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.common.errors import SimulationError
from repro.hw.dma import DMAEngine
from repro.hw.memory import MainMemory, GloadPort
from repro.hw.mesh import CPEMesh
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC


@dataclass
class MPE:
    """The management processing element.

    The MPE runs the control program: task scheduling, DMA orchestration and
    communication with the other CGs.  Its compute contribution to the
    convolution kernels is negligible, so the model only records the tasks it
    dispatched.
    """

    core_group: int
    tasks_dispatched: int = 0

    def dispatch(self, count: int = 1) -> None:
        self.tasks_dispatched += count


class CoreGroup:
    """One of the four core groups: MPE + 8x8 CPE mesh + memory + DMA.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`) degrades this CG:
    DMA bandwidth derating and transfer timeouts, fenced CPEs, bus
    stalls/drops and LDM ECC events, all seeded and ledgered.
    """

    def __init__(self, index: int, spec: SW26010Spec = DEFAULT_SPEC, fault_plan=None):
        self.index = index
        self.spec = spec
        self.fault_plan = fault_plan
        self.memory = MainMemory(spec)
        self.dma = DMAEngine(self.memory, spec, fault_plan=fault_plan)
        self.gload = GloadPort(self.memory, spec)
        self.mesh = CPEMesh(spec, fault_plan=fault_plan)
        self.mpe = MPE(core_group=index)

    @property
    def peak_flops(self) -> float:
        """Peak double-precision flop/s of this CG (742.4 Gflops)."""
        return self.spec.peak_flops_per_cg

    def healthy_cpes(self) -> int:
        """Number of CPEs not fenced off by the fault plan."""
        return sum(1 for cpe in self.mesh if not cpe.fenced)

    def total_cpe_flops(self) -> int:
        """Sum of flops actually executed by the CPEs (functional count)."""
        return sum(cpe.stats.flops for cpe in self.mesh)

    def reset_stats(self) -> None:
        self.dma.reset()
        self.memory.stats.reset()
        self.gload.stats.reset()
        self.mesh.reset_stats()
        for cpe in self.mesh:
            cpe.stats.reset()


@dataclass
class MemoryPartition:
    """The user-controlled private/shared memory split (Section III-B)."""

    private_bytes: int
    shared_bytes: int

    def __post_init__(self) -> None:
        if self.private_bytes < 0 or self.shared_bytes < 0:
            raise ValueError("partition sizes must be non-negative")


class SW26010Chip:
    """The full processor: four core groups joined by a NoC.

    The chip-level workload decomposition follows Section III-D: the output
    image rows are split evenly across the CGs, each CG running the same
    single-CG plan on its strip.  ``partition_rows`` implements that split,
    and :meth:`scaled_time` composes per-CG timings into a chip timing
    (the slowest CG gates completion, which is what makes the paper's
    near-linear scaling claim checkable).
    """

    def __init__(self, spec: SW26010Spec = DEFAULT_SPEC, fault_plan=None):
        self.spec = spec
        self.fault_plan = fault_plan
        self.core_groups: List[CoreGroup] = [
            CoreGroup(i, spec, fault_plan=fault_plan)
            for i in range(spec.num_core_groups)
        ]
        total = spec.memory_bytes * spec.num_core_groups
        # Default partition: all private, no shared window.
        self.partition = MemoryPartition(private_bytes=total, shared_bytes=0)

    def set_partition(self, shared_fraction: float) -> MemoryPartition:
        """Reserve a fraction of total memory as the NoC-shared space."""
        if not 0.0 <= shared_fraction <= 1.0:
            raise ValueError(
                f"shared_fraction must be in [0, 1], got {shared_fraction}"
            )
        total = self.spec.memory_bytes * self.spec.num_core_groups
        shared = int(total * shared_fraction)
        self.partition = MemoryPartition(
            private_bytes=total - shared, shared_bytes=shared
        )
        return self.partition

    def partition_rows(self, rows: int, num_groups: Optional[int] = None) -> List[Tuple[int, int]]:
        """Split ``rows`` output rows into per-CG [start, stop) strips.

        Rows are dealt as evenly as possible; a CG may receive zero rows only
        when there are fewer rows than CGs.
        """
        n = num_groups if num_groups is not None else len(self.core_groups)
        if n < 1:
            raise ValueError(f"need at least one core group, got {n}")
        if rows < 0:
            raise ValueError(f"rows must be non-negative, got {rows}")
        base, extra = divmod(rows, n)
        strips = []
        start = 0
        for i in range(n):
            size = base + (1 if i < extra else 0)
            strips.append((start, start + size))
            start += size
        if start != rows:
            raise SimulationError("row partition did not cover all rows")
        return strips

    @staticmethod
    def scaled_time(per_group_seconds: List[float]) -> float:
        """Chip completion time: the slowest CG gates the whole layer."""
        if not per_group_seconds:
            raise ValueError("need at least one per-CG timing")
        return max(per_group_seconds)

    def reset_stats(self) -> None:
        for cg in self.core_groups:
            cg.reset_stats()
