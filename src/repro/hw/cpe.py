"""One Computing Processing Element (CPE).

A CPE bundles the per-core resources the paper's kernels use: the 64 KB LDM,
the 32-entry vector register file, and counters for the work it performs.
The dual-pipeline *timing* of a CPE's instruction stream is modeled
separately in :mod:`repro.isa.pipeline`; this class is the *functional*
container the mesh-level algorithms compute with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.common.errors import CPEFaultError
from repro.hw.ldm import LDM
from repro.hw.regfile import VectorRegisterFile
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC
from repro.telemetry import current_telemetry


@dataclass
class CPEStats:
    """Work counters for one CPE."""

    flops: int = 0
    ldm_bytes_loaded: int = 0
    ldm_bytes_stored: int = 0
    bus_puts: int = 0
    bus_gets: int = 0

    def reset(self) -> None:
        self.flops = 0
        self.ldm_bytes_loaded = 0
        self.ldm_bytes_stored = 0
        self.bus_puts = 0
        self.bus_gets = 0


class CPE:
    """A computing processing element at mesh position (row, col)."""

    def __init__(
        self,
        row: int,
        col: int,
        spec: SW26010Spec = DEFAULT_SPEC,
        fault_plan=None,
        telemetry=None,
    ):
        self.row = row
        self.col = col
        self.spec = spec
        self.telemetry = telemetry if telemetry is not None else current_telemetry()
        self.ldm = LDM(spec, fault_plan=fault_plan, telemetry=self.telemetry)
        self.registers = VectorRegisterFile(spec)
        self.stats = CPEStats()
        #: A fenced CPE is disabled by the resource manager (degraded CG);
        #: any attempt to compute on it raises :class:`CPEFaultError`.
        self.fenced = False

    @property
    def coords(self) -> Tuple[int, int]:
        return (self.row, self.col)

    def fence(self) -> None:
        """Disable this CPE (degraded-hardware simulation)."""
        self.fenced = True

    def check_available(self) -> None:
        """Raise :class:`CPEFaultError` if this CPE is fenced."""
        if self.fenced:
            raise CPEFaultError(
                f"CPE({self.row},{self.col}) is fenced and cannot execute"
            )

    def count_fma(self, elements: int) -> None:
        """Record ``elements`` fused multiply-adds (2 flops each)."""
        flops = 2 * elements
        self.stats.flops += flops
        self.telemetry.counters.add("cpe.flops", flops)

    def count_ldm_load(self, nbytes: int) -> None:
        self.stats.ldm_bytes_loaded += nbytes
        self.telemetry.counters.add("cpe.ldm_bytes_loaded", nbytes)

    def count_ldm_store(self, nbytes: int) -> None:
        self.stats.ldm_bytes_stored += nbytes
        self.telemetry.counters.add("cpe.ldm_bytes_stored", nbytes)

    def fma_tile(self, acc: np.ndarray, a: np.ndarray, b: np.ndarray) -> None:
        """acc += a @ b with flop accounting (an LDM-resident GEMM tile).

        ``a`` is (m, k), ``b`` is (k, n), ``acc`` is (m, n).  This is the
        work one CPE performs per register-communication step of Fig. 3.
        """
        self.check_available()
        acc += a @ b
        m, k = a.shape
        n = b.shape[1]
        self.count_fma(m * n * k)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CPE({self.row},{self.col})"
