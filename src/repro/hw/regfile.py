"""The CPE vector register file.

Each CPE has 32 architecturally-visible 256-bit vector registers (4 doubles
each).  Register-blocking plans (Section V-B) must keep their working set —
``rbB`` input vectors, ``rbNo`` filter vectors, ``rbB x rbNo`` accumulators —
inside this file; the simulator enforces that, which is what bounds the
feasible (rbB, rbNo) choices of Eq. 5.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.common.errors import RegisterPressureError, SimulationError
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC


class VectorRegisterFile:
    """32 x 256-bit vector registers, each holding 4 doubles."""

    def __init__(self, spec: SW26010Spec = DEFAULT_SPEC):
        self.spec = spec
        self.num_registers = spec.vector_registers
        self.lanes = spec.vector_lanes
        self._regs = np.zeros((self.num_registers, self.lanes), dtype=np.float64)
        self._named: Dict[str, int] = {}
        self._next_free = 0

    def allocate(self, name: str) -> int:
        """Assign the next free register to ``name`` and return its index."""
        if name in self._named:
            raise SimulationError(f"register name {name!r} already in use")
        if self._next_free >= self.num_registers:
            raise RegisterPressureError(
                f"out of vector registers allocating {name!r} "
                f"({self.num_registers} available)"
            )
        index = self._next_free
        self._named[name] = index
        self._next_free += 1
        return index

    def allocate_block(self, prefix: str, count: int) -> list:
        """Allocate ``count`` registers named ``prefix[0..count)``."""
        return [self.allocate(f"{prefix}[{i}]") for i in range(count)]

    def free_all(self) -> None:
        self._named.clear()
        self._next_free = 0
        self._regs[...] = 0.0

    def index_of(self, name: str) -> int:
        try:
            return self._named[name]
        except KeyError:
            raise SimulationError(f"register {name!r} is not allocated") from None

    @property
    def registers_used(self) -> int:
        return self._next_free

    @property
    def registers_free(self) -> int:
        return self.num_registers - self._next_free

    def read(self, reg) -> np.ndarray:
        """Read a vector register (by index or name); returns a copy."""
        return self._regs[self._resolve(reg)].copy()

    def write(self, reg, value) -> None:
        """Write a full 4-lane vector to a register."""
        value = np.asarray(value, dtype=np.float64)
        if value.shape != (self.lanes,):
            raise SimulationError(
                f"vector register write must be shape ({self.lanes},), "
                f"got {value.shape}"
            )
        self._regs[self._resolve(reg)] = value

    def splat(self, reg, scalar: float) -> None:
        """Replicate a scalar across all lanes (the ``vldde`` extend-load)."""
        self._regs[self._resolve(reg)] = float(scalar)

    def fma(self, dst, a, b) -> None:
        """dst += a * b, element-wise across lanes (the ``vfmad`` op)."""
        self._regs[self._resolve(dst)] += (
            self._regs[self._resolve(a)] * self._regs[self._resolve(b)]
        )

    def _resolve(self, reg) -> int:
        if isinstance(reg, str):
            return self.index_of(reg)
        index = int(reg)
        if not 0 <= index < self.num_registers:
            raise SimulationError(
                f"register index {index} out of range [0, {self.num_registers})"
            )
        return index
