"""The per-CPE Local Directive Memory (LDM / scratch-pad).

Each CPE has 64 KB of software-managed fast memory instead of a data cache
(Section III-B).  Plans must explicitly place every tile they work on, and a
plan that does not fit is infeasible — the allocator here enforces that, which
is what makes the LDM-blocking feasibility checks in ``repro.core`` real
constraints rather than documentation.

:class:`LDMAllocator` is a simple bump allocator with named regions and
explicit double-buffer pairs; :class:`LDMBuffer` wraps the NumPy storage for
one region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import LDMOverflowError, SimulationError
from repro.common.units import bytes_to_human
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC
from repro.telemetry import current_telemetry


@dataclass
class LDMBuffer:
    """A named region of one CPE's LDM holding a typed array."""

    name: str
    offset: int
    data: np.ndarray
    #: Optional :class:`repro.faults.FaultPlan` injecting ECC events on reads.
    fault_plan: Optional[object] = None

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def shape(self) -> tuple:
        return self.data.shape

    def read(self, index=slice(None)) -> np.ndarray:
        """Read a slice of the buffer.

        With a fault plan attached, the read may observe an LDM bit-flip:
        corrected (single-bit) events are logged to the ledger only;
        uncorrectable ones raise :class:`~repro.common.errors.ECCError`.
        """
        if self.fault_plan is not None:
            self.fault_plan.maybe_ecc(self.name, self.nbytes)
        return self.data[index]

    def write(self, index, value) -> None:
        """Write a slice of the buffer."""
        value = np.asarray(value)
        target = self.data[index]
        if target.shape != value.shape:
            raise SimulationError(
                f"LDM buffer {self.name!r}: write shape {value.shape} does not "
                f"match region shape {target.shape}"
            )
        self.data[index] = value

    def fill(self, value: float) -> None:
        """Fill the whole buffer with a constant."""
        self.data[...] = value


class LDMAllocator:
    """Bump allocator over one CPE's 64 KB LDM.

    Allocations are aligned to 32 bytes (one vector register) so vector
    loads from LDM are always naturally aligned.
    """

    ALIGN = 32

    def __init__(self, capacity: int, fault_plan=None, telemetry=None):
        if capacity <= 0:
            raise ValueError(f"LDM capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.fault_plan = fault_plan
        #: Captured at construction (see :mod:`repro.telemetry.session`);
        #: the null session's methods are shared no-ops.
        self.telemetry = telemetry if telemetry is not None else current_telemetry()
        self._cursor = 0
        self._buffers: Dict[str, LDMBuffer] = {}

    @property
    def bytes_used(self) -> int:
        return self._cursor

    @property
    def bytes_free(self) -> int:
        return self.capacity - self._cursor

    def alloc(self, name: str, shape, dtype=np.float64) -> LDMBuffer:
        """Allocate a zeroed, named region; raises LDMOverflowError if full."""
        if name in self._buffers:
            raise SimulationError(f"LDM buffer {name!r} already allocated")
        data = np.zeros(shape, dtype=dtype)
        nbytes = int(data.nbytes)
        padded = _round_up(nbytes, self.ALIGN)
        if self._cursor + padded > self.capacity:
            raise LDMOverflowError(
                f"LDM overflow allocating {name!r}: need {bytes_to_human(padded)}, "
                f"free {bytes_to_human(self.bytes_free)} of "
                f"{bytes_to_human(self.capacity)}"
            )
        buffer = LDMBuffer(
            name=name, offset=self._cursor, data=data, fault_plan=self.fault_plan
        )
        self._cursor += padded
        self._buffers[name] = buffer
        self.telemetry.counters.record_max("ldm.high_water_bytes", self._cursor)
        return buffer

    def alloc_double_buffer(
        self, name: str, shape, dtype=np.float64
    ) -> Tuple[LDMBuffer, LDMBuffer]:
        """Allocate a ping/pong pair for DMA-compute overlap (Section IV-A)."""
        return (
            self.alloc(f"{name}.ping", shape, dtype),
            self.alloc(f"{name}.pong", shape, dtype),
        )

    def get(self, name: str) -> LDMBuffer:
        try:
            return self._buffers[name]
        except KeyError:
            raise SimulationError(f"LDM buffer {name!r} is not allocated") from None

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    def buffers(self) -> List[LDMBuffer]:
        return list(self._buffers.values())

    def reset(self) -> None:
        """Free everything."""
        self._cursor = 0
        self._buffers.clear()

    def would_fit(self, *nbytes: int) -> bool:
        """Check whether a set of allocations would fit without allocating."""
        total = sum(_round_up(n, self.ALIGN) for n in nbytes)
        return self._cursor + total <= self.capacity


class LDM(LDMAllocator):
    """One CPE's LDM, sized from the architecture spec."""

    def __init__(self, spec: SW26010Spec = DEFAULT_SPEC, fault_plan=None, telemetry=None):
        super().__init__(
            capacity=spec.ldm_bytes, fault_plan=fault_plan, telemetry=telemetry
        )
        self.spec = spec


def _round_up(value: int, multiple: int) -> int:
    return -(-value // multiple) * multiple
