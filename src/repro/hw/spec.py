"""Architectural constants of the SW26010 processor.

All numbers come straight from the paper (Sections I, III-B, III-D, V, VI)
or from the TaihuLight system paper it cites:

* 4 core groups (CGs) per chip, 1 MPE + 64 CPEs per CG, CPEs in an 8x8 mesh.
* 1.45 GHz CPE clock.
* 256-bit vector units: 4 doubles per vector, fused multiply-add = 8
  double-precision flops per CPE per cycle, so one CG peaks at
  64 * 1.45e9 * 8 = 742.4 Gflops (the figure used throughout Fig. 2) and the
  chip at ~2.97 Tflops (the paper quotes 3.06 Tflops including MPEs).
* 64 KB LDM per CPE, 16 KB L1 instruction cache.
* LDM->register bandwidth 46.4 GB/s per CPE (32 B/cycle at 1.45 GHz, Fig. 2).
* gload (direct main-memory access from a CPE) physical bandwidth 8 GB/s
  per CG (Fig. 2).
* DDR3 peak 36 GB/s per CG, 144 GB/s per chip.
* Dual pipelines: P0 executes floating-point/vector ops, P1 memory and
  control ops; both issue in-order from a shared decoder, two per cycle.
* Latencies (Section VI-B): load = 4 cycles, vfmad = 7 cycles, fully
  pipelined (1/cycle throughput each).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.common.units import KIB, GB, GHZ


@dataclass(frozen=True)
class SW26010Spec:
    """Immutable description of the SW26010 architecture.

    Instances are cheap value objects; the simulator components all take a
    spec so tests can shrink the machine (e.g. a 4x4 mesh as in Fig. 3 of the
    paper) without touching the component logic.
    """

    #: Number of core groups on the chip.
    num_core_groups: int = 4
    #: Mesh dimension: the CPE cluster is ``mesh_size`` x ``mesh_size``.
    mesh_size: int = 8
    #: CPE clock in Hz.
    clock_hz: float = 1.45 * GHZ
    #: Vector width in double-precision lanes (256-bit vectors).
    vector_lanes: int = 4
    #: Double-precision flops per CPE per cycle (vector FMA: 4 lanes x 2).
    flops_per_cycle: int = 8
    #: LDM capacity per CPE in bytes.
    ldm_bytes: int = 64 * KIB
    #: Number of addressable 256-bit vector registers per CPE.
    vector_registers: int = 32
    #: LDM -> register bandwidth per CPE in bytes/second (32 B/cycle).
    ldm_bandwidth: float = 46.4 * GB
    #: gload physical bandwidth per CG in bytes/second.
    gload_bandwidth: float = 8.0 * GB
    #: DDR3 peak bandwidth per CG in bytes/second.
    ddr_peak_bandwidth: float = 36.0 * GB
    #: Main memory per CG in bytes.
    memory_bytes: int = 8 * 1024**3
    #: Bytes moved per register-communication put/get (256-bit).
    bus_packet_bytes: int = 32
    #: Transfer-buffer depth per CPE (pending bus packets), producer-consumer.
    transfer_buffer_depth: int = 4
    #: Instruction latencies in cycles (Section VI-B).
    load_latency: int = 4
    fma_latency: int = 7
    #: Size of a double in bytes.
    double_bytes: int = 8
    #: Alignment (bytes) the DDR3 interface wants for near-peak bandwidth.
    dma_alignment: int = 128

    @property
    def cpes_per_group(self) -> int:
        """Number of CPEs in one core group."""
        return self.mesh_size * self.mesh_size

    @property
    def peak_flops_per_cpe(self) -> float:
        """Peak double-precision flop/s of one CPE."""
        return self.clock_hz * self.flops_per_cycle

    @property
    def peak_flops_per_cg(self) -> float:
        """Peak double-precision flop/s of one core group (742.4 Gflops)."""
        return self.peak_flops_per_cpe * self.cpes_per_group

    @property
    def peak_flops_chip(self) -> float:
        """Peak double-precision flop/s of the whole chip (CPEs only)."""
        return self.peak_flops_per_cg * self.num_core_groups

    @property
    def chip_bandwidth(self) -> float:
        """Aggregate DDR3 bandwidth of the chip in bytes/second (144 GB/s)."""
        return self.ddr_peak_bandwidth * self.num_core_groups

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert CPE cycles to seconds."""
        return cycles / self.clock_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert seconds to CPE cycles."""
        return seconds * self.clock_hz

    def shrunk(self, mesh_size: int) -> "SW26010Spec":
        """Return a copy with a smaller CPE mesh (for tests and Fig. 3)."""
        if mesh_size < 1:
            raise ValueError(f"mesh_size must be >= 1, got {mesh_size}")
        return SW26010Spec(
            num_core_groups=self.num_core_groups,
            mesh_size=mesh_size,
            clock_hz=self.clock_hz,
            vector_lanes=self.vector_lanes,
            flops_per_cycle=self.flops_per_cycle,
            ldm_bytes=self.ldm_bytes,
            vector_registers=self.vector_registers,
            ldm_bandwidth=self.ldm_bandwidth,
            gload_bandwidth=self.gload_bandwidth,
            ddr_peak_bandwidth=self.ddr_peak_bandwidth,
            memory_bytes=self.memory_bytes,
            bus_packet_bytes=self.bus_packet_bytes,
            transfer_buffer_depth=self.transfer_buffer_depth,
            load_latency=self.load_latency,
            fma_latency=self.fma_latency,
            double_bytes=self.double_bytes,
            dma_alignment=self.dma_alignment,
        )


#: The canonical full-size SW26010.
DEFAULT_SPEC = SW26010Spec()


#: Table II of the paper: measured DMA bandwidth (GB/s) on one CG as a
#: function of the per-CPE contiguous block size in bytes.  ``get`` is
#: memory -> LDM, ``put`` is LDM -> memory.
TABLE_II_DMA_BANDWIDTH: Dict[int, Tuple[float, float]] = {
    32: (4.31, 2.56),
    64: (9.00, 9.20),
    128: (17.25, 18.83),
    192: (17.94, 19.82),
    256: (22.44, 25.80),
    384: (22.88, 24.67),
    512: (27.42, 30.34),
    576: (25.96, 28.91),
    640: (29.05, 32.00),
    1024: (29.79, 33.44),
    2048: (31.32, 35.19),
    4096: (32.05, 36.01),
}
