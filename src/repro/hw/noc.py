"""The network-on-chip joining the four core groups.

Fig. 1: the NoC connects the four CGs and the system interface, and "memory
of four CGs are also connected through the NoC" — a CG can reach another
CG's DRAM through the user-configured *shared* memory space at a bandwidth
below its local DDR3 interface.  The convolution plans never rely on this
(the Section III-D partitioning keeps every CG in its private space; that
is *why* the scaling is near-linear), but the model makes the cost of
getting it wrong measurable: the NoC experiment shows what cross-CG traffic
would do to a plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.common.errors import SimulationError
from repro.common.units import GB
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC


@dataclass
class NoCStats:
    bytes_local: int = 0
    bytes_remote: int = 0
    transfers: int = 0
    busy_seconds: float = 0.0


class NoC:
    """Cross-core-group transfer cost model.

    Remote (cross-CG) accesses pay a bandwidth haircut and a fixed hop
    latency relative to the local DDR3 interface.  Defaults: remote
    bandwidth ~half the local peak, 1 NoC hop between adjacent CGs on the
    ring, latency ~100 ns/hop (conservative published figures for on-chip
    interconnects of this class; the precise values only affect the
    *magnitude* of the penalty the experiment demonstrates).
    """

    def __init__(
        self,
        spec: SW26010Spec = DEFAULT_SPEC,
        remote_bandwidth: float = 18.0 * GB,
        hop_latency: float = 100e-9,
    ):
        if remote_bandwidth <= 0:
            raise ValueError("remote bandwidth must be positive")
        if hop_latency < 0:
            raise ValueError("hop latency must be non-negative")
        self.spec = spec
        self.remote_bandwidth = remote_bandwidth
        self.hop_latency = hop_latency
        self.stats = NoCStats()

    def hops(self, src_cg: int, dst_cg: int) -> int:
        """Ring distance between two core groups."""
        n = self.spec.num_core_groups
        if not (0 <= src_cg < n and 0 <= dst_cg < n):
            raise SimulationError(
                f"core group out of range: {src_cg} -> {dst_cg} (chip has {n})"
            )
        d = abs(src_cg - dst_cg)
        return min(d, n - d)

    def transfer_seconds(self, nbytes: int, src_cg: int, dst_cg: int) -> float:
        """Time for one CG to read ``nbytes`` from another CG's memory."""
        if nbytes < 0:
            raise SimulationError("negative transfer size")
        hops = self.hops(src_cg, dst_cg)
        if hops == 0:
            seconds = nbytes / self.spec.ddr_peak_bandwidth
            self.stats.bytes_local += nbytes
        else:
            seconds = hops * self.hop_latency + nbytes / self.remote_bandwidth
            self.stats.bytes_remote += nbytes
        self.stats.transfers += 1
        self.stats.busy_seconds += seconds
        return seconds

    def remote_penalty(self, nbytes: int, src_cg: int = 0, dst_cg: int = 1) -> float:
        """Slowdown of a remote access vs the same bytes locally."""
        if nbytes <= 0:
            raise SimulationError("need a positive transfer size")
        local = nbytes / self.spec.ddr_peak_bandwidth
        remote = (
            self.hops(src_cg, dst_cg) * self.hop_latency
            + nbytes / self.remote_bandwidth
        )
        return remote / local
