"""The 8x8 CPE mesh and its register-communication fabric.

Section V-A of the paper: the mesh has 8 *row communication buses* and 8
*column communication buses*.  Register-level communication is a pair of
``put``/``get`` operations — the sender pushes a 256-bit register into the
*transfer buffer* of a receiver on its own row or column, and the receiver
pops it into its general-purpose register file.  Broadcast/multicast of
256-bit items along a bus is supported in hardware.  A producer-consumer
protocol bounds how many packets may be in flight per receiver.

The simulator enforces the two hardware constraints that shape the paper's
data-distribution plan (Fig. 3):

1. a CPE can only ``put`` to CPEs on the *same row or same column*;
2. a receiver's transfer buffer has finite depth — a ``put`` into a full
   buffer or a ``get`` from an empty one is a protocol error (the real
   hardware would stall or deadlock; the paper's schedules are statically
   correct, so the simulator treats violations as bugs).

Payloads are NumPy arrays; bus occupancy is accounted in 32-byte (256-bit)
packets so experiments can report bus traffic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import BusProtocolError, BusStallError
from repro.hw.cpe import CPE
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC
from repro.telemetry import current_telemetry


@dataclass
class BusStats:
    """Packet accounting for one bus."""

    packets: int = 0
    bytes: int = 0
    operations: int = 0


class RegisterBus:
    """One row or column communication bus (accounting only).

    The functional data movement happens through transfer buffers; the bus
    object records how many 256-bit packets crossed it, which the performance
    model and the ablation benches use.
    """

    def __init__(self, kind: str, index: int, packet_bytes: int, telemetry=None):
        if kind not in ("row", "col"):
            raise ValueError(f"bus kind must be 'row' or 'col', got {kind!r}")
        self.kind = kind
        self.index = index
        self.packet_bytes = packet_bytes
        self.telemetry = telemetry if telemetry is not None else current_telemetry()
        self.stats = BusStats()

    def account(self, nbytes: int, receivers: int) -> None:
        """Record one put of ``nbytes`` replicated to ``receivers`` targets.

        A broadcast occupies the bus once regardless of receiver count (the
        hardware multicasts), so packets are charged per payload, not per
        receiver.
        """
        packets = -(-nbytes // self.packet_bytes)
        self.stats.packets += packets
        self.stats.bytes += nbytes
        self.stats.operations += 1
        counters = self.telemetry.counters
        counters.add("mesh.bus_packets", packets)
        counters.add("mesh.bus_bytes", nbytes)
        counters.add("mesh.bus_operations", 1)

    def account_bulk(self, nbytes: int, receivers: int, operations: int) -> None:
        """Record ``operations`` equal-sized puts in one call.

        Equivalent to calling :meth:`account` ``operations`` times — the
        fast-path GEMM uses it to charge a whole schedule's traffic without
        walking the per-step broadcast loops.
        """
        if operations < 0:
            raise ValueError(f"operations must be non-negative, got {operations}")
        packets = -(-nbytes // self.packet_bytes)
        self.stats.packets += packets * operations
        self.stats.bytes += nbytes * operations
        self.stats.operations += operations
        counters = self.telemetry.counters
        counters.add("mesh.bus_packets", packets * operations)
        counters.add("mesh.bus_bytes", nbytes * operations)
        counters.add("mesh.bus_operations", operations)


class TransferBuffer:
    """The receive-side FIFO of one CPE (producer-consumer protocol)."""

    def __init__(self, owner: Tuple[int, int], depth: int):
        self.owner = owner
        self.depth = depth
        self._fifo: Deque[np.ndarray] = deque()
        self.high_water = 0

    def push(self, payload: np.ndarray) -> None:
        if len(self._fifo) >= self.depth:
            raise BusProtocolError(
                f"transfer buffer of CPE{self.owner} overflowed "
                f"(depth {self.depth}); the schedule must consume with 'get' "
                f"before more puts arrive"
            )
        self._fifo.append(payload)
        self.high_water = max(self.high_water, len(self._fifo))

    def pop(self) -> np.ndarray:
        if not self._fifo:
            raise BusProtocolError(
                f"get on empty transfer buffer of CPE{self.owner}; the "
                f"schedule consumed more packets than were put"
            )
        return self._fifo.popleft()

    def __len__(self) -> int:
        return len(self._fifo)


class CPEMesh:
    """A square mesh of CPEs with row/column register-communication buses.

    With a :class:`repro.faults.FaultPlan` attached, the mesh models a
    degraded CG: CPEs the plan fences are disabled (touching one raises
    :class:`~repro.common.errors.CPEFaultError`), and bus operations may
    stall or drop per the plan's seeded rates
    (:class:`~repro.common.errors.BusStallError`).
    """

    def __init__(self, spec: SW26010Spec = DEFAULT_SPEC, fault_plan=None, telemetry=None):
        self.spec = spec
        self.fault_plan = fault_plan
        self.telemetry = telemetry if telemetry is not None else current_telemetry()
        n = spec.mesh_size
        self.size = n
        self.cpes: List[List[CPE]] = [
            [
                CPE(
                    row=r,
                    col=c,
                    spec=spec,
                    fault_plan=fault_plan,
                    telemetry=self.telemetry,
                )
                for c in range(n)
            ]
            for r in range(n)
        ]
        if fault_plan is not None:
            for coords in fault_plan.fenced(n):
                self.cpes[coords[0]][coords[1]].fence()
        self._buffers: Dict[Tuple[int, int], TransferBuffer] = {
            (r, c): TransferBuffer((r, c), spec.transfer_buffer_depth)
            for r in range(n)
            for c in range(n)
        }
        self.row_buses = [
            RegisterBus("row", r, spec.bus_packet_bytes, telemetry=self.telemetry)
            for r in range(n)
        ]
        self.col_buses = [
            RegisterBus("col", c, spec.bus_packet_bytes, telemetry=self.telemetry)
            for c in range(n)
        ]

    def _maybe_bus_fault(self, src: Tuple[int, int], target: str, nbytes: int) -> None:
        """Fault-plan bus injection with stall accounting.

        A stall raised by the plan is counted (``mesh.bus_stalls``) before
        propagating, so counter reports from a chaos run show how often the
        bus misbehaved even when a retry or fallback absorbed the error.
        """
        try:
            self.fault_plan.maybe_bus_fault(src, target, nbytes)
        except BusStallError:
            self.telemetry.counters.add("mesh.bus_stalls")
            raise

    # -- topology ---------------------------------------------------------

    def cpe(self, row: int, col: int) -> CPE:
        """Look up a CPE by mesh coordinates."""
        self._check(row, col)
        return self.cpes[row][col]

    def __iter__(self):
        for row in self.cpes:
            yield from row

    def _check(self, row: int, col: int) -> None:
        if not (0 <= row < self.size and 0 <= col < self.size):
            raise BusProtocolError(
                f"CPE({row},{col}) outside {self.size}x{self.size} mesh"
            )
        self.cpes[row][col].check_available()

    # -- register communication ------------------------------------------

    def put(
        self, src: Tuple[int, int], dst: Tuple[int, int], payload: np.ndarray
    ) -> None:
        """Point-to-point put: src pushes ``payload`` to dst's transfer buffer.

        Only legal when src and dst share a row (row bus) or a column
        (column bus) — the mesh has no diagonal channels.
        """
        self._check(*src)
        self._check(*dst)
        if src == dst:
            raise BusProtocolError(f"CPE{src} cannot put to itself")
        payload = np.asarray(payload)
        if self.fault_plan is not None:
            self._maybe_bus_fault(src, f"CPE{dst}", payload.nbytes)
        if src[0] == dst[0]:
            self.row_buses[src[0]].account(payload.nbytes, receivers=1)
        elif src[1] == dst[1]:
            self.col_buses[src[1]].account(payload.nbytes, receivers=1)
        else:
            raise BusProtocolError(
                f"CPE{src} cannot reach CPE{dst}: register communication is "
                f"restricted to the same row or column"
            )
        self._buffers[dst].push(payload.copy())

    def row_broadcast(self, src: Tuple[int, int], payload: np.ndarray) -> None:
        """Broadcast along the sender's row to every *other* CPE on that row.

        Models the ``vload+putr`` / ``vldde+putr`` primitives of Section V-C.
        """
        self._check(*src)
        payload = np.asarray(payload)
        row = src[0]
        if self.fault_plan is not None:
            self._maybe_bus_fault(src, f"row {row} broadcast", payload.nbytes)
        receivers = [(row, c) for c in range(self.size) if c != src[1]]
        for dst in receivers:
            self.cpes[dst[0]][dst[1]].check_available()
        self.row_buses[row].account(payload.nbytes, receivers=len(receivers))
        for dst in receivers:
            self._buffers[dst].push(payload.copy())

    def col_broadcast(self, src: Tuple[int, int], payload: np.ndarray) -> None:
        """Broadcast along the sender's column (the ``putc`` path)."""
        self._check(*src)
        payload = np.asarray(payload)
        col = src[1]
        if self.fault_plan is not None:
            self._maybe_bus_fault(src, f"col {col} broadcast", payload.nbytes)
        receivers = [(r, col) for r in range(self.size) if r != src[0]]
        for dst in receivers:
            self.cpes[dst[0]][dst[1]].check_available()
        self.col_buses[col].account(payload.nbytes, receivers=len(receivers))
        for dst in receivers:
            self._buffers[dst].push(payload.copy())

    def get(self, who: Tuple[int, int]) -> np.ndarray:
        """Pop the oldest packet from a CPE's transfer buffer (``getr/getc``)."""
        self._check(*who)
        return self._buffers[who].pop()

    def pending(self, who: Tuple[int, int]) -> int:
        """Number of packets waiting in a CPE's transfer buffer."""
        return len(self._buffers[who])

    def assert_drained(self) -> None:
        """Check that no packets were left unconsumed (schedule completeness)."""
        leftovers = {
            coords: len(buf) for coords, buf in self._buffers.items() if len(buf)
        }
        if leftovers:
            raise BusProtocolError(
                f"transfer buffers not drained at end of schedule: {leftovers}"
            )

    # -- accounting --------------------------------------------------------

    def total_bus_bytes(self) -> int:
        return sum(b.stats.bytes for b in self.row_buses + self.col_buses)

    def total_bus_operations(self) -> int:
        return sum(b.stats.operations for b in self.row_buses + self.col_buses)

    def reset_stats(self) -> None:
        for bus in self.row_buses + self.col_buses:
            bus.stats = BusStats()
