"""Architectural model of the SW26010 many-core processor.

The SW26010 (Fig. 1 of the paper) consists of four *core groups* (CGs); each
CG has one management processing element (MPE) and 64 computing processing
elements (CPEs) arranged as an 8x8 mesh.  Each CPE owns a 64 KB user-managed
Local Directive Memory (LDM) and a vector register file; the mesh has 8 row
and 8 column register-communication buses; each CG has a DMA engine to its own
8 GB DDR3 memory, and the four CGs are joined by a NoC.

This package models each of those components closely enough that the paper's
optimization decisions (blocking sizes, data distribution, bus schedules,
instruction reordering) can be expressed and *executed*: the mesh really moves
NumPy data between simulated CPEs, the LDM allocator really rejects plans that
overflow 64 KB, and the DMA engine charges time according to the empirical
bandwidth curve the paper measures in Table II.
"""

from repro.hw.spec import SW26010Spec, DEFAULT_SPEC
from repro.hw.memory import MainMemory, GloadPort
from repro.hw.dma import DMAEngine, DMATransfer, DMABandwidthModel
from repro.hw.ldm import LDM, LDMAllocator, LDMBuffer
from repro.hw.regfile import VectorRegisterFile
from repro.hw.mesh import CPEMesh, RegisterBus, TransferBuffer
from repro.hw.cpe import CPE
from repro.hw.chip import CoreGroup, SW26010Chip

__all__ = [
    "SW26010Spec",
    "DEFAULT_SPEC",
    "MainMemory",
    "GloadPort",
    "DMAEngine",
    "DMATransfer",
    "DMABandwidthModel",
    "LDM",
    "LDMAllocator",
    "LDMBuffer",
    "VectorRegisterFile",
    "CPEMesh",
    "RegisterBus",
    "TransferBuffer",
    "CPE",
    "CoreGroup",
    "SW26010Chip",
]
