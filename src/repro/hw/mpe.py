"""MPE-side orchestration costs: kernel launch and synchronization.

The real swDNN drives the CPE cluster through the `athread` runtime: the
MPE spawns a kernel on the 64 CPEs, they synchronize at tile boundaries,
and the spawn/join pair costs microseconds.  The per-kernel overhead is
invisible for the paper's big layers (tens of milliseconds of work per
launch) but dominates tiny ones — the classic "launch-bound" regime every
accelerator library documents.

:class:`LaunchModel` makes the effect measurable: given a layer's timed
report and a launch granularity, it adds the orchestration time and
reports where the crossover sits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SimulationError
from repro.core.conv import TimingReport


@dataclass(frozen=True)
class LaunchModel:
    """athread-style spawn/join cost model.

    Defaults follow published Sunway micro-benchmarks: ~15 us to spawn a
    kernel across the 64 CPEs and ~5 us to join/synchronize.
    """

    spawn_seconds: float = 15e-6
    join_seconds: float = 5e-6

    def __post_init__(self) -> None:
        if self.spawn_seconds < 0 or self.join_seconds < 0:
            raise ValueError("launch costs must be non-negative")

    @property
    def per_launch(self) -> float:
        return self.spawn_seconds + self.join_seconds

    def layer_seconds(self, report: TimingReport, launches: int = 1) -> float:
        """Wall time of a layer including ``launches`` kernel launches."""
        if launches < 1:
            raise SimulationError(f"need at least one launch, got {launches}")
        return report.seconds + launches * self.per_launch

    def overhead_fraction(self, report: TimingReport, launches: int = 1) -> float:
        """Share of the wall time spent in orchestration."""
        total = self.layer_seconds(report, launches)
        if total <= 0:
            raise SimulationError("report carries no time")
        return launches * self.per_launch / total

    def launch_bound_threshold(self, target_overhead: float = 0.1) -> float:
        """Kernel duration below which overhead exceeds ``target_overhead``.

        A kernel shorter than this is launch-bound at the given tolerance:
        solve ``overhead / (overhead + t) = target`` for ``t``.
        """
        if not 0.0 < target_overhead < 1.0:
            raise SimulationError(
                f"target_overhead must be in (0, 1), got {target_overhead}"
            )
        return self.per_launch * (1.0 - target_overhead) / target_overhead
