"""swDNN core: convolution plans, kernels and layers on the simulated SW26010.

The package mirrors the paper's Sections III-V:

* :mod:`repro.core.params` — convolutional-layer parameters (Table I);
* :mod:`repro.core.reference` — NumPy reference convolution (Listing 1),
  forward and backward, the correctness oracle for everything else;
* :mod:`repro.core.layout` — vectorization-oriented data layouts (V-C);
* :mod:`repro.core.register_blocking` — register blocking plans (V-B);
* :mod:`repro.core.ldm_blocking` — LDM blocking and double buffering (IV);
* :mod:`repro.core.plans` — the image-size-aware (Algorithm 1) and
  batch-size-aware (Algorithm 2) loop schedules, with their DMA traffic;
* :mod:`repro.core.planner` — model-guided plan selection (III-D);
* :mod:`repro.core.register_comm` — the register-communication GEMM over
  the 8x8 CPE mesh (V-A, Fig. 3);
* :mod:`repro.core.conv` — the execution engine: functional convolution on
  the simulated hardware plus the timed evaluation used by the benchmarks;
* :mod:`repro.core.layers` / :mod:`repro.core.network` — trainable layers
  and a small sequential network, the "deep learning applications" side.
"""

from repro.core.params import ConvParams
from repro.core.reference import conv2d_reference, conv2d_backward_reference
from repro.core.plans import ImageSizeAwarePlan, BatchSizeAwarePlan, ConvPlan
from repro.core.planner import plan_convolution
from repro.core.conv import ConvolutionEngine, conv_forward, TimingReport
from repro.core.backward import BackwardConvolution
from repro.core.gemm_plan import GemmParams, GemmPlan, GemmEngine, swgemm

__all__ = [
    "ConvParams",
    "conv2d_reference",
    "conv2d_backward_reference",
    "ImageSizeAwarePlan",
    "BatchSizeAwarePlan",
    "ConvPlan",
    "plan_convolution",
    "ConvolutionEngine",
    "conv_forward",
    "TimingReport",
    "BackwardConvolution",
    "GemmParams",
    "GemmPlan",
    "GemmEngine",
    "swgemm",
]
