"""Model zoo: paper-era CNN architectures timed end to end.

The paper motivates swDNN with ImageNet-class networks (its references
include VGG [2] and AlexNet-lineage models [10]); this module describes
their convolutional stacks as :class:`~repro.core.params.ConvParams`
sequences and times a full training step (forward + backward-data +
backward-filter per conv layer, three GEMMs per FC layer) on one simulated
SW26010 — the "what would training this network actually cost" number the
paper's per-kernel evaluation stops short of.

Only stride-1 convolutions are representable (the paper's kernels);
AlexNet's strided first layer is therefore approximated by its stride-1
retrained variant's geometry, noted per network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import PlanError
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC
from repro.core.backward import BackwardConvolution
from repro.core.gemm_plan import GemmEngine, GemmParams, GemmPlan
from repro.core.params import ConvParams


@dataclass(frozen=True)
class ZooLayer:
    """One layer of a zoo network."""

    name: str
    kind: str  # "conv" | "fc"
    conv: Optional[ConvParams] = None
    fc: Optional[GemmParams] = None

    def __post_init__(self) -> None:
        if self.kind == "conv" and self.conv is None:
            raise PlanError(f"layer {self.name}: conv layer needs ConvParams")
        if self.kind == "fc" and self.fc is None:
            raise PlanError(f"layer {self.name}: fc layer needs GemmParams")

    def flops(self) -> int:
        return self.conv.flops() if self.kind == "conv" else self.fc.flops()


def _conv(name: str, ni: int, no: int, out: int, b: int) -> ZooLayer:
    return ZooLayer(
        name=name,
        kind="conv",
        conv=ConvParams.from_output(ni=ni, no=no, ro=out, co=out, kr=3, kc=3, b=b),
    )


def vgg16(batch: int = 32) -> List[ZooLayer]:
    """VGG-16's thirteen 3x3 convolutions + three FC layers."""
    layers = [
        _conv("conv1_1", 3, 64, 224, batch),
        _conv("conv1_2", 64, 64, 224, batch),
        _conv("conv2_1", 64, 128, 112, batch),
        _conv("conv2_2", 128, 128, 112, batch),
        _conv("conv3_1", 128, 256, 56, batch),
        _conv("conv3_2", 256, 256, 56, batch),
        _conv("conv3_3", 256, 256, 56, batch),
        _conv("conv4_1", 256, 512, 28, batch),
        _conv("conv4_2", 512, 512, 28, batch),
        _conv("conv4_3", 512, 512, 28, batch),
        _conv("conv5_1", 512, 512, 14, batch),
        _conv("conv5_2", 512, 512, 14, batch),
        _conv("conv5_3", 512, 512, 14, batch),
        ZooLayer("fc6", "fc", fc=GemmParams(m=4096, n=batch, k=512 * 7 * 7)),
        ZooLayer("fc7", "fc", fc=GemmParams(m=4096, n=batch, k=4096)),
        ZooLayer("fc8", "fc", fc=GemmParams(m=1000, n=batch, k=4096)),
    ]
    return layers


def cifar_quick(batch: int = 128) -> List[ZooLayer]:
    """A CIFAR-scale quick net (3 convs + 2 FCs)."""
    return [
        _conv("conv1", 3, 32, 32, batch),
        _conv("conv2", 32, 32, 16, batch),
        _conv("conv3", 32, 64, 8, batch),
        ZooLayer("fc1", "fc", fc=GemmParams(m=64, n=batch, k=64 * 4 * 4)),
        ZooLayer("fc2", "fc", fc=GemmParams(m=10, n=batch, k=64)),
    ]


NETWORKS: Dict[str, callable] = {"vgg16": vgg16, "cifar_quick": cifar_quick}


@dataclass
class LayerTiming:
    """Per-layer timing of one training step."""

    name: str
    kind: str
    flops: int
    forward_seconds: float
    backward_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.forward_seconds + self.backward_seconds


@dataclass
class NetworkTiming:
    """Whole-network training-step timing on one chip (4 CGs assumed
    linear per Section III-D, so per-CG time / 4)."""

    network: str
    batch: int
    layers: List[LayerTiming]

    @property
    def step_seconds(self) -> float:
        return sum(l.total_seconds for l in self.layers)

    @property
    def total_flops(self) -> int:
        return 3 * sum(l.flops for l in self.layers)  # fwd + 2 bwd passes

    @property
    def sustained_gflops(self) -> float:
        if self.step_seconds <= 0:
            return 0.0
        return self.total_flops / self.step_seconds / 1e9

    @property
    def images_per_second(self) -> float:
        if self.step_seconds <= 0:
            return 0.0
        return self.batch / self.step_seconds


def time_network(
    name: str, batch: Optional[int] = None, spec: SW26010Spec = DEFAULT_SPEC
) -> NetworkTiming:
    """Time one training step of a zoo network on the whole chip."""
    try:
        builder = NETWORKS[name]
    except KeyError:
        raise PlanError(
            f"unknown network {name!r}; available: {sorted(NETWORKS)}"
        ) from None
    layers = builder(batch) if batch is not None else builder()
    actual_batch = (
        layers[0].conv.b if layers[0].kind == "conv" else layers[0].fc.n
    )
    cg_count = spec.num_core_groups
    timings: List[LayerTiming] = []
    for layer in layers:
        if layer.kind == "conv":
            bw = BackwardConvolution(layer.conv, spec=spec)
            total, breakdown = bw.training_step_time()
            fwd = breakdown["forward"].seconds
            back = total - fwd
        else:
            plan = GemmPlan(layer.fc, spec=spec)
            fwd = GemmEngine(plan).evaluate().seconds
            back = 2 * fwd  # backward-data + backward-weight GEMMs
        timings.append(
            LayerTiming(
                name=layer.name,
                kind=layer.kind,
                flops=layer.flops(),
                forward_seconds=fwd / cg_count,
                backward_seconds=back / cg_count,
            )
        )
    return NetworkTiming(network=name, batch=actual_batch, layers=timings)
