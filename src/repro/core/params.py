"""Convolutional-layer parameters (Table I of the paper).

The paper's convolution is the "valid", stride-1, multi-channel batched
convolution of Listing 1:

    out[b, no, ro, co] += in[b, ni, ro+kr, co+kc] * filter[no, ni, kr, kc]

summed over ``ni``, ``kr``, ``kc``; output spatial size is
``Ro = Ri - Kr + 1``, ``Co = Ci - Kc + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.common.errors import PlanError


@dataclass(frozen=True)
class ConvParams:
    """Parameters of one convolutional layer (Table I).

    Attributes use the paper's names: ``ni``/``no`` input/output feature
    maps, ``ri``/``ci`` input image height/width, ``kr``/``kc`` filter
    height/width, plus the batch size ``b`` (the paper's ``B``).
    """

    ni: int
    no: int
    ri: int
    ci: int
    kr: int
    kc: int
    b: int

    def __post_init__(self) -> None:
        for name in ("ni", "no", "ri", "ci", "kr", "kc", "b"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")
        if self.kr > self.ri or self.kc > self.ci:
            raise ValueError(
                f"filter {self.kr}x{self.kc} larger than image {self.ri}x{self.ci}"
            )

    # -- derived sizes -------------------------------------------------------

    @property
    def ro(self) -> int:
        """Output image height."""
        return self.ri - self.kr + 1

    @property
    def co(self) -> int:
        """Output image width."""
        return self.ci - self.kc + 1

    @property
    def input_shape(self) -> Tuple[int, int, int, int]:
        """Canonical input tensor shape (B, Ni, Ri, Ci)."""
        return (self.b, self.ni, self.ri, self.ci)

    @property
    def filter_shape(self) -> Tuple[int, int, int, int]:
        """Canonical filter tensor shape (No, Ni, Kr, Kc)."""
        return (self.no, self.ni, self.kr, self.kc)

    @property
    def output_shape(self) -> Tuple[int, int, int, int]:
        """Canonical output tensor shape (B, No, Ro, Co)."""
        return (self.b, self.no, self.ro, self.co)

    # -- work and footprint ---------------------------------------------------

    def flops(self) -> int:
        """Total double-precision flops of the layer (2 per multiply-add)."""
        return 2 * self.b * self.no * self.ro * self.co * self.ni * self.kr * self.kc

    def input_bytes(self, ds: int = 8) -> int:
        return self.b * self.ni * self.ri * self.ci * ds

    def filter_bytes(self, ds: int = 8) -> int:
        return self.no * self.ni * self.kr * self.kc * ds

    def output_bytes(self, ds: int = 8) -> int:
        return self.b * self.no * self.ro * self.co * ds

    def total_bytes(self, ds: int = 8) -> int:
        return self.input_bytes(ds) + self.filter_bytes(ds) + self.output_bytes(ds)

    def arithmetic_intensity(self, ds: int = 8) -> float:
        """Flops per byte of unique data — the layer's reuse potential."""
        return self.flops() / self.total_bytes(ds)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_output(
        cls, ni: int, no: int, ro: int, co: int, kr: int, kc: int, b: int
    ) -> "ConvParams":
        """Build from output spatial size (how Fig. 7/9 configs are given)."""
        return cls(ni=ni, no=no, ri=ro + kr - 1, ci=co + kc - 1, kr=kr, kc=kc, b=b)

    def with_rows(self, ro_rows: int) -> "ConvParams":
        """Restrict to a strip of output rows (the per-CG partition, III-D)."""
        if not 1 <= ro_rows <= self.ro:
            raise PlanError(
                f"cannot take a {ro_rows}-row strip of a {self.ro}-row output"
            )
        return ConvParams(
            ni=self.ni,
            no=self.no,
            ri=ro_rows + self.kr - 1,
            ci=self.ci,
            kr=self.kr,
            kc=self.kc,
            b=self.b,
        )

    def with_batch(self, b: int) -> "ConvParams":
        """Restrict to a batch slice (the per-CG shard of batch sharding)."""
        if not 1 <= b <= self.b:
            raise PlanError(
                f"cannot take a {b}-sample shard of a batch of {self.b}"
            )
        return ConvParams(
            ni=self.ni,
            no=self.no,
            ri=self.ri,
            ci=self.ci,
            kr=self.kr,
            kc=self.kc,
            b=b,
        )

    def describe(self) -> str:
        return (
            f"Conv(Ni={self.ni}, No={self.no}, in={self.ri}x{self.ci}, "
            f"out={self.ro}x{self.co}, filter={self.kr}x{self.kc}, B={self.b})"
        )
