"""Backward convolution passes on the simulated SW26010.

swDNN is a *training* library ("especially focused on the training part",
Section I), so beyond the forward kernel the layer needs the two backward
convolutions.  Both reduce to the same blocked-GEMM structure the forward
plans implement, via standard algebraic identities:

* **backward-data** (dL/dx): a *full* correlation of the output gradient
  with the spatially-flipped, channel-transposed filters —
  ``grad_x = conv(pad(grad_out, Kr-1, Kc-1), flip(W).T)``.  The padded
  gradient plays the input role, so the existing plans run it unchanged.
* **backward-filter** (dL/dw): a correlation of the input with the output
  gradient where the *batch* plays the reduction role —
  ``grad_w[o, n, kr, kc] = sum_b x[b, n, kr:, kc:] . grad_out[b, o]``.
  Expressed as a forward convolution by treating the batch as channels:
  inputs (Ni, B, Ri, Ci) convolved with filters (No, B, Ro, Co) yield
  (Ni, No, Kr, Kc) — again the existing machinery executes it.

Each pass returns both the numeric result (validated against
:func:`repro.core.reference.conv2d_backward_reference`) and the timed
:class:`~repro.core.conv.TimingReport` of its underlying plan execution.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.common.errors import PlanError
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC
from repro.core.conv import ConvolutionEngine, TimingReport
from repro.core.params import ConvParams
from repro.core.planner import plan_convolution


def _pad_spatial(grad_out: np.ndarray, pad_r: int, pad_c: int) -> np.ndarray:
    return np.pad(
        grad_out, ((0, 0), (0, 0), (pad_r, pad_r), (pad_c, pad_c)), mode="constant"
    )


def backward_data_params(params: ConvParams) -> ConvParams:
    """Forward-equivalent parameters of the backward-data pass."""
    return ConvParams(
        ni=params.no,
        no=params.ni,
        ri=params.ro + 2 * (params.kr - 1),
        ci=params.co + 2 * (params.kc - 1),
        kr=params.kr,
        kc=params.kc,
        b=params.b,
    )


def backward_filter_params(params: ConvParams) -> ConvParams:
    """Forward-equivalent parameters of the backward-filter pass.

    Batch becomes the reduction channel; the "filter" is the output
    gradient of spatial size Ro x Co; the "output" is Kr x Kc.
    """
    return ConvParams(
        ni=params.b,
        no=params.no,
        ri=params.ri,
        ci=params.ci,
        kr=params.ro,
        kc=params.co,
        b=params.ni,
    )


class BackwardConvolution:
    """Executes dL/dx and dL/dw through the forward plan machinery.

    ``backend`` selects the execution tier of the underlying engines
    (``"numpy"``, ``"mesh"``, ``"mesh-fast"``); engines are built once per
    pass and reused, so with ``"mesh-fast"`` the bus-protocol verification
    cost is paid only on the first gradient call per shape.
    """

    def __init__(
        self,
        params: ConvParams,
        spec: SW26010Spec = DEFAULT_SPEC,
        backend: str = "numpy",
    ):
        self.params = params
        self.spec = spec
        self.backend = backend
        self._engines: Dict[str, ConvolutionEngine] = {}

    def _engine(self, pass_name: str, eq: ConvParams) -> ConvolutionEngine:
        engine = self._engines.get(pass_name)
        if engine is None:
            plan = plan_convolution(eq, spec=self.spec).plan
            engine = ConvolutionEngine(plan, spec=self.spec, backend=self.backend)
            self._engines[pass_name] = engine
        return engine

    # -- backward data ---------------------------------------------------

    def grad_input(
        self, w: np.ndarray, grad_out: np.ndarray
    ) -> Tuple[np.ndarray, TimingReport]:
        """dL/dx via full correlation with flipped, transposed filters."""
        p = self.params
        if w.shape != p.filter_shape:
            raise PlanError(f"filter shape {w.shape} != {p.filter_shape}")
        if grad_out.shape != p.output_shape:
            raise PlanError(f"grad_out shape {grad_out.shape} != {p.output_shape}")
        padded = _pad_spatial(np.asarray(grad_out, float), p.kr - 1, p.kc - 1)
        # (No, Ni, Kr, Kc) -> transpose channels, flip both spatial axes.
        w_t = np.ascontiguousarray(
            np.asarray(w, float).transpose(1, 0, 2, 3)[:, :, ::-1, ::-1]
        )
        eq = backward_data_params(p)
        grad_x, report = self._engine("data", eq).run(padded, w_t)
        return grad_x, report

    def evaluate_grad_input(self) -> TimingReport:
        """Timed-only backward-data pass."""
        eq = backward_data_params(self.params)
        plan = plan_convolution(eq, spec=self.spec).plan
        return ConvolutionEngine(plan, spec=self.spec).evaluate()

    # -- backward filter ---------------------------------------------------

    def grad_filter(
        self, x: np.ndarray, grad_out: np.ndarray
    ) -> Tuple[np.ndarray, TimingReport]:
        """dL/dw via batch-as-channel correlation."""
        p = self.params
        if x.shape != p.input_shape:
            raise PlanError(f"input shape {x.shape} != {p.input_shape}")
        if grad_out.shape != p.output_shape:
            raise PlanError(f"grad_out shape {grad_out.shape} != {p.output_shape}")
        # Inputs: (B, Ni, Ri, Ci) -> (Ni, B, Ri, Ci); filters: grad_out as
        # (No, B, Ro, Co).
        x_t = np.ascontiguousarray(np.asarray(x, float).transpose(1, 0, 2, 3))
        g_t = np.ascontiguousarray(np.asarray(grad_out, float).transpose(1, 0, 2, 3))
        eq = backward_filter_params(p)
        out, report = self._engine("filter", eq).run(x_t, g_t)
        # out is (Ni, No, Kr, Kc) -> (No, Ni, Kr, Kc).
        grad_w = np.ascontiguousarray(out.transpose(1, 0, 2, 3))
        return grad_w, report

    def evaluate_grad_filter(self) -> TimingReport:
        """Timed-only backward-filter pass."""
        eq = backward_filter_params(self.params)
        plan = plan_convolution(eq, spec=self.spec).plan
        return ConvolutionEngine(plan, spec=self.spec).evaluate()

    # -- whole training step -------------------------------------------------

    def training_step_time(self) -> Tuple[float, dict]:
        """Timed fwd + bwd-data + bwd-filter (one layer's training cost).

        Returns (seconds, per-pass breakdown) — the quantity a training-
        throughput estimate multiplies across layers and iterations.
        """
        forward_plan = plan_convolution(self.params, spec=self.spec).plan
        fwd = ConvolutionEngine(forward_plan, spec=self.spec).evaluate()
        bwd_data = self.evaluate_grad_input()
        bwd_filter = self.evaluate_grad_filter()
        breakdown = {
            "forward": fwd,
            "backward_data": bwd_data,
            "backward_filter": bwd_filter,
        }
        total = fwd.seconds + bwd_data.seconds + bwd_filter.seconds
        return total, breakdown
