"""Multi-CG batch sharding: inference throughput across the chip's 4 CGs.

:func:`repro.core.conv.evaluate_chip` scales a layer across core groups by
splitting *output rows* — the paper's Section III-D partitioning, right for
one big training layer.  For inference serving the natural axis is the
*batch*: each core group runs the full layer on its own slice of the batch,
concurrently and independently (no cross-CG halo, no shared filter state —
each CG DMA-reads its own filter copy).  The chip finishes when the slowest
shard does.

Sharding composes with everything below it: each shard plans with the
heuristic planner or the autotuner (``plan_cache=``), runs any backend, and
reuses the process-wide timing memoization — four equal shards walk one
timed schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.common.errors import PlanError
from repro.core.conv import ConvolutionEngine, TimingReport
from repro.core.params import ConvParams
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC
from repro.telemetry import current_telemetry


@dataclass
class ShardedReport:
    """Chip-level timing of one batch-sharded layer execution."""

    seconds: float  # the slowest shard (shards run concurrently)
    flops: int  # total across shards
    shards: List[TimingReport]
    peak_flops: float  # per-CG peak x active shards

    @property
    def gflops(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.flops / self.seconds / 1e9

    @property
    def efficiency(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return (self.flops / self.seconds) / self.peak_flops


@dataclass(frozen=True)
class ChipStrip:
    """One simulated chip's identity inside a multi-chip fleet.

    A fleet is N whole SW26010 chips side by side; each strip names one of
    them (``chip0``, ``chip1``, ...) and carries the per-chip hardware
    spec.  The serving fleet (``repro.serve.fleet``) keys its per-chip
    warm pools, telemetry prefixes (``serve.chip.<i>.*``), and routing
    state on these strips, so "where does this shape's cache live?" has a
    stable, printable answer.
    """

    index: int
    spec: SW26010Spec

    @property
    def label(self) -> str:
        return f"chip{self.index}"

    @property
    def num_core_groups(self) -> int:
        return self.spec.num_core_groups


def fleet_strips(
    num_chips: int, spec: SW26010Spec = DEFAULT_SPEC
) -> List[ChipStrip]:
    """The chip strips of an ``num_chips``-chip fleet (index order)."""
    if num_chips < 1:
        raise PlanError(f"num_chips must be positive, got {num_chips}")
    return [ChipStrip(index=i, spec=spec) for i in range(num_chips)]


def shard_batch(b: int, num_shards: int) -> List[int]:
    """Balanced shard sizes for a batch of ``b`` (largest first, no zeros).

    ``b`` smaller than ``num_shards`` uses fewer shards rather than empty
    ones.
    """
    if b < 1:
        raise PlanError(f"batch must be positive, got {b}")
    if num_shards < 1:
        raise PlanError(f"num_shards must be positive, got {num_shards}")
    n = min(b, num_shards)
    base, extra = divmod(b, n)
    return [base + 1] * extra + [base] * (n - extra)


def _shard_engine(
    params: ConvParams,
    spec: SW26010Spec,
    backend: str,
    plan_cache: Optional[Union[str, "object"]],
    fused_pool: int = 1,
    telemetry=None,
) -> ConvolutionEngine:
    if plan_cache is not None:
        from repro.tune import autotune

        plan = autotune(
            params, spec=spec, cache=plan_cache, fused_pool=fused_pool
        ).plan
    else:
        from repro.core.planner import plan_convolution

        plan = plan_convolution(params, spec=spec).plan
    return ConvolutionEngine(
        plan, spec=spec, backend=backend, fused_pool=fused_pool, telemetry=telemetry
    )


def evaluate_chip_sharded(
    params: ConvParams,
    num_groups: Optional[int] = None,
    spec: SW26010Spec = DEFAULT_SPEC,
    plan_cache: Optional[Union[str, "object"]] = None,
    fused_pool: int = 1,
) -> ShardedReport:
    """Timed batch-sharded chip execution (no tensor data).

    Each shard's timed walk memoizes process-wide, so equal-size shards
    cost one schedule walk total.
    """
    n = num_groups if num_groups is not None else spec.num_core_groups
    if not 1 <= n <= spec.num_core_groups:
        raise PlanError(
            f"num_groups must be in [1, {spec.num_core_groups}], got {n}"
        )
    reports = []
    for shard_b in shard_batch(params.b, n):
        shard_params = params.with_batch(shard_b)
        engine = _shard_engine(shard_params, spec, "numpy", plan_cache, fused_pool)
        reports.append(engine.evaluate())
    return ShardedReport(
        seconds=max(r.seconds for r in reports),
        flops=sum(r.flops for r in reports),
        shards=reports,
        peak_flops=spec.peak_flops_per_cg * len(reports),
    )


class ShardedExecutor:
    """A *warm* batch-sharded runner: per-shard engines persist across calls.

    :func:`run_sharded` rebuilds its shard engines on every invocation —
    fine for a one-off sweep, wasteful for a serving loop that pushes the
    same layer shape through the chip thousands of times.  The executor
    keys one engine per shard-``ConvParams`` and keeps it (plan, certified
    fast path, memoized filter packs) for the next call; steady-state calls
    build nothing.
    """

    def __init__(
        self,
        num_groups: Optional[int] = None,
        spec: SW26010Spec = DEFAULT_SPEC,
        backend: str = "numpy",
        plan_cache: Optional[Union[str, "object"]] = None,
        fused_pool: int = 1,
        telemetry=None,
    ):
        n = num_groups if num_groups is not None else spec.num_core_groups
        if not 1 <= n <= spec.num_core_groups:
            raise PlanError(
                f"num_groups must be in [1, {spec.num_core_groups}], got {n}"
            )
        self.num_groups = n
        self.spec = spec
        self.backend = backend
        self.plan_cache = plan_cache
        self.fused_pool = fused_pool
        self.telemetry = telemetry if telemetry is not None else current_telemetry()
        self._engines: dict = {}

    def engine_for(self, shard_params: ConvParams) -> ConvolutionEngine:
        engine = self._engines.get(shard_params)
        if engine is None:
            engine = _shard_engine(
                shard_params, self.spec, self.backend, self.plan_cache,
                self.fused_pool, telemetry=self.telemetry,
            )
            self._engines[shard_params] = engine
        return engine

    def warm(self, params: ConvParams, w: Optional[np.ndarray] = None) -> int:
        """Pre-build every shard engine a batch of ``params.b`` needs.

        With ``w`` given, each shard's filter layout is pre-packed too (the
        layout is shard-independent but the pack tables are per-engine).
        Returns the number of engines now warm for this shape.
        """
        built = 0
        for shard_b in shard_batch(params.b, self.num_groups):
            engine = self.engine_for(params.with_batch(shard_b))
            if w is not None:
                engine.prepack_filters(w)
            built += 1
        return built

    def run(
        self,
        x: np.ndarray,
        w: np.ndarray,
        bias: Optional[np.ndarray] = None,
        activation: Optional[str] = None,
        filter_version: Optional[int] = None,
    ) -> Tuple[np.ndarray, ShardedReport]:
        """Functional sharded convolution on the warm engines."""
        x = np.asarray(x, dtype=np.float64)
        w = np.asarray(w, dtype=np.float64)
        telemetry = self.telemetry
        b, ni, ri, ci = x.shape
        no, _, kr, kc = w.shape
        params = ConvParams(ni=ni, no=no, ri=ri, ci=ci, kr=kr, kc=kc, b=b)
        outputs = []
        reports = []
        start = 0
        for shard_index, shard_b in enumerate(shard_batch(b, self.num_groups)):
            engine = self.engine_for(params.with_batch(shard_b))
            with telemetry.tracer.span(
                "shard", cat="shard", index=shard_index, batch=shard_b
            ):
                out, report = engine.run(
                    x[start : start + shard_b], w, bias=bias,
                    activation=activation, filter_version=filter_version,
                )
            telemetry.counters.add("shard.runs")
            outputs.append(out)
            reports.append(report)
            start += shard_b
        report = ShardedReport(
            seconds=max(r.seconds for r in reports),
            flops=sum(r.flops for r in reports),
            shards=reports,
            peak_flops=self.spec.peak_flops_per_cg * len(reports),
        )
        return np.concatenate(outputs, axis=0), report


def run_sharded(
    x: np.ndarray,
    w: np.ndarray,
    num_groups: Optional[int] = None,
    spec: SW26010Spec = DEFAULT_SPEC,
    backend: str = "numpy",
    bias: Optional[np.ndarray] = None,
    activation: Optional[str] = None,
    plan_cache: Optional[Union[str, "object"]] = None,
    fused_pool: int = 1,
    telemetry=None,
) -> Tuple[np.ndarray, ShardedReport]:
    """Functional batch-sharded convolution; returns (output, chip timing).

    The output is byte-identical to the unsharded engine's (each batch
    element's convolution is independent); the report models the four CGs
    running their shards concurrently.  One-shot convenience over a
    throwaway :class:`ShardedExecutor` — serving loops should hold an
    executor instead so shard engines stay warm across calls.
    """
    executor = ShardedExecutor(
        num_groups=num_groups,
        spec=spec,
        backend=backend,
        plan_cache=plan_cache,
        fused_pool=fused_pool,
        telemetry=telemetry,
    )
    return executor.run(x, w, bias=bias, activation=activation)
