"""Parameter sweeps: build-your-own-Fig-7 for arbitrary layer grids.

The paper's evaluation is a grid sweep over layer parameters; this module
packages that workflow for users: declare a grid, get back one row per
configuration with the chosen plan, the model estimate and the timed
measurement, render it as a table or export CSV for external plotting.
"""

from __future__ import annotations

import csv
import io
import itertools
import json
import os
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import PlanError
from repro.common.parallel import parallel_map
from repro.common.tables import TextTable
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC
from repro.telemetry import use_telemetry
from repro.core.conv import ConvolutionEngine, evaluate_chip
from repro.core.params import ConvParams
from repro.core.planner import plan_convolution


@dataclass(frozen=True)
class SweepGrid:
    """Cartesian grid of layer parameters.

    Every axis is a sequence; the grid is the product.  ``out`` is the
    square output image size, ``k`` the square filter size (the paper's
    evaluation convention).
    """

    ni: Sequence[int] = (128,)
    no: Sequence[int] = (128,)
    out: Sequence[int] = (64,)
    k: Sequence[int] = (3,)
    b: Sequence[int] = (128,)

    def __post_init__(self) -> None:
        for name in ("ni", "no", "out", "k", "b"):
            axis = getattr(self, name)
            if not axis:
                raise PlanError(f"sweep axis {name!r} is empty")
            if any(v < 1 for v in axis):
                raise PlanError(f"sweep axis {name!r} has non-positive values")

    def __len__(self) -> int:
        return (
            len(self.ni) * len(self.no) * len(self.out) * len(self.k) * len(self.b)
        )

    def configurations(self) -> Iterator[ConvParams]:
        for ni, no, out, k, b in itertools.product(
            self.ni, self.no, self.out, self.k, self.b
        ):
            yield ConvParams.from_output(ni=ni, no=no, ro=out, co=out, kr=k, kc=k, b=b)


@dataclass
class SweepRow:
    """Outcome for one configuration."""

    params: ConvParams
    plan: str
    model_gflops: float
    measured_gflops: float
    chip_tflops: float
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.error


def _sweep_row(
    params: ConvParams,
    spec: SW26010Spec,
    chip: bool,
    plan_cache: Optional[str] = None,
) -> SweepRow:
    """Worker for the parallel fan-out: plan, model and time one config.

    Infeasible configurations become rows with ``error`` set rather than
    exceptions, so a sweep never aborts on one bad grid point.  With
    ``plan_cache`` every configuration plans through the autotuner's
    on-disk cache — tuned once, shared by every worker process and every
    resumed run.
    """
    try:
        choice = plan_convolution(params, spec=spec)
        if plan_cache is not None:
            from repro.tune import autotune, score_candidate

            tuned = autotune(params, spec=spec, cache=plan_cache)
            plan = tuned.plan
            kind = tuned.plan.name
            model_gflops = score_candidate(tuned.candidate, params, spec).gflops
        else:
            plan = choice.plan
            kind = choice.kind
            model_gflops = choice.estimate.gflops
        measured = ConvolutionEngine(plan, spec=spec).evaluate()
        chip_gflops = (
            evaluate_chip(params, spec=spec, plan_cache=plan_cache)[0]
            if chip
            else 4 * measured.gflops
        )
        return SweepRow(
            params=params,
            plan=kind,
            model_gflops=model_gflops,
            measured_gflops=measured.gflops,
            chip_tflops=chip_gflops / 1e3,
        )
    except PlanError as exc:
        return SweepRow(
            params=params,
            plan="-",
            model_gflops=0.0,
            measured_gflops=0.0,
            chip_tflops=0.0,
            error=str(exc),
        )


def _row_to_record(index: int, row: SweepRow) -> Dict:
    """JSON record for one checkpointed row (floats round-trip exactly)."""
    p = row.params
    return {
        "index": index,
        "params": [p.ni, p.no, p.ri, p.ci, p.kr, p.kc, p.b],
        "plan": row.plan,
        "model_gflops": row.model_gflops,
        "measured_gflops": row.measured_gflops,
        "chip_tflops": row.chip_tflops,
        "error": row.error,
    }


def _row_from_record(record: Dict) -> Tuple[int, SweepRow]:
    ni, no, ri, ci, kr, kc, b = record["params"]
    row = SweepRow(
        params=ConvParams(ni=ni, no=no, ri=ri, ci=ci, kr=kr, kc=kc, b=b),
        plan=record["plan"],
        model_gflops=record["model_gflops"],
        measured_gflops=record["measured_gflops"],
        chip_tflops=record["chip_tflops"],
        error=record["error"],
    )
    return record["index"], row


class SweepCheckpoint:
    """Append-only JSONL checkpoint of completed sweep rows.

    One line per completed configuration, written as soon as its result is
    known and flushed to disk, so a killed sweep resumes from the last
    completed configuration.  JSON floats round-trip through ``repr``, so
    the rows a resumed sweep loads are *value-identical* to the ones the
    original run computed — final artifacts come out byte-identical.
    """

    def __init__(self, path: str):
        self.path = path
        self._completed: Dict[int, SweepRow] = {}
        if os.path.exists(path):
            with open(path) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    index, row = _row_from_record(json.loads(line))
                    self._completed[index] = row

    @property
    def completed(self) -> Dict[int, SweepRow]:
        return dict(self._completed)

    def append(self, index: int, row: SweepRow) -> None:
        with open(self.path, "a") as fh:
            fh.write(json.dumps(_row_to_record(index, row)) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._completed[index] = row


def run_sweep(
    grid: SweepGrid,
    spec: SW26010Spec = DEFAULT_SPEC,
    chip: bool = True,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    retries: int = 0,
    backoff: float = 0.0,
    timeout: Optional[float] = None,
    plan_cache: Optional[str] = None,
    telemetry=None,
) -> List[SweepRow]:
    """Plan, model and time every configuration of the grid.

    ``jobs > 1`` fans configurations over worker processes; rows come back
    in grid order either way, so parallel and serial sweeps render
    identically.  Infeasible configurations are reported as rows with
    ``error`` set rather than aborting the sweep.

    ``checkpoint`` names a JSONL file recording each completed
    configuration (in batches of ``jobs`` under parallelism, per
    configuration serially): a killed sweep re-run with the same arguments
    skips everything already checkpointed and produces rows — and therefore
    rendered/CSV artifacts — byte-identical to an uninterrupted run.
    ``retries``/``backoff``/``timeout`` are forwarded to
    :func:`~repro.common.parallel.parallel_map` for per-job fault
    tolerance and crash isolation.

    ``plan_cache`` names an on-disk plan-cache directory: every
    configuration (and chip strip) then plans through the autotuner, with
    tuned winners shared across grid points, worker processes and resumed
    runs (the cache's atomic writes make concurrent workers safe).

    ``telemetry`` attaches a :class:`repro.telemetry.Telemetry` session for
    the sweep: counters and spans cover the engines the sweep constructs.
    Worker *processes* (``jobs > 1``) do not share the session — only the
    serial path (which runs workers inline) contributes hardware counters.
    """
    worker = partial(_sweep_row, spec=spec, chip=chip, plan_cache=plan_cache)
    configs = list(grid.configurations())
    with use_telemetry(telemetry) as session:
        with session.tracer.span(
            "sweep", cat="sweep", configurations=len(configs), jobs=jobs
        ):
            if checkpoint is None:
                return parallel_map(
                    worker,
                    configs,
                    jobs=jobs,
                    retries=retries,
                    backoff=backoff,
                    timeout=timeout,
                )
            store = SweepCheckpoint(checkpoint)
            done = store.completed
            pending = [
                (i, params) for i, params in enumerate(configs) if i not in done
            ]
            # Process pending configs in batches so the checkpoint advances
            # as the sweep runs; a kill loses at most one in-flight batch.
            batch_size = max(1, jobs)
            for start in range(0, len(pending), batch_size):
                batch = pending[start : start + batch_size]
                rows = parallel_map(
                    worker,
                    [params for _, params in batch],
                    jobs=jobs,
                    retries=retries,
                    backoff=backoff,
                    timeout=timeout,
                )
                for (index, _), row in zip(batch, rows):
                    store.append(index, row)
            completed = store.completed
            return [completed[i] for i in range(len(configs))]


def render_sweep(rows: Sequence[SweepRow]) -> str:
    """Aligned text table of a sweep's outcomes."""
    table = TextTable(
        ["Ni", "No", "out", "k", "B", "plan", "mdl G/CG", "meas G/CG", "chip T"],
        float_fmt="{:.1f}",
    )
    for row in rows:
        p = row.params
        table.add_row(
            [
                p.ni,
                p.no,
                p.ro,
                p.kr,
                p.b,
                row.plan if row.ok else f"error: {row.error[:30]}",
                row.model_gflops,
                row.measured_gflops,
                row.chip_tflops,
            ]
        )
    return table.render()


def sweep_to_csv(rows: Sequence[SweepRow]) -> str:
    """CSV export (for plotting outside the library)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["ni", "no", "out", "k", "b", "plan", "model_gflops",
         "measured_gflops", "chip_tflops", "error"]
    )
    for row in rows:
        p = row.params
        writer.writerow(
            [p.ni, p.no, p.ro, p.kr, p.b, row.plan,
             f"{row.model_gflops:.3f}", f"{row.measured_gflops:.3f}",
             f"{row.chip_tflops:.4f}", row.error]
        )
    return buffer.getvalue()
