"""Auxiliary streaming operators: pooling, activation, bias.

The extractor layers of a CNN (Section III-A) interleave convolutions with
subsampling and nonlinearities.  Unlike convolution these do O(1) flops per
element, so on SW26010 they are purely bandwidth-bound streaming kernels:
DMA a tile in, apply the elementwise/window op at LDM speed, DMA the result
out.  Their time model is therefore just traffic over the Table II curve —
but that still matters for end-to-end layer-stack estimates, where the
paper's >90% "convolution share" claim can be checked rather than assumed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.common.errors import PlanError
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC
from repro.perf.dma_model import DMA_STRIDE_EFFICIENCY, DMAStream, blended_mbw
from repro.core.conv import TimingReport


def _streaming_report(
    bytes_in: int,
    bytes_out: int,
    flops: int,
    block_bytes: int,
    spec: SW26010Spec,
) -> TimingReport:
    """Timing of a one-pass streaming kernel: traffic-dominated."""
    streams = [
        DMAStream("in", float(bytes_in), block_bytes, "get"),
        DMAStream("out", float(bytes_out), block_bytes, "put"),
    ]
    mbw = blended_mbw(streams)
    dma_seconds = (bytes_in + bytes_out) / mbw
    compute_seconds = flops / spec.peak_flops_per_cg if flops else 0.0
    seconds = max(dma_seconds, compute_seconds)
    return TimingReport(
        seconds=seconds,
        flops=flops,
        dma_seconds=dma_seconds,
        compute_seconds=compute_seconds,
        bytes_get=bytes_in,
        bytes_put=bytes_out,
        tiles=0,
        peak_flops=spec.peak_flops_per_cg,
    )


def avg_pool_forward(
    x: np.ndarray, size: int = 2, spec: SW26010Spec = DEFAULT_SPEC
) -> Tuple[np.ndarray, TimingReport]:
    """Non-overlapping average pooling (the paper's subsampling layer)."""
    if size < 1:
        raise PlanError(f"pool size must be positive, got {size}")
    if x.ndim != 4:
        raise PlanError("pooling expects a 4-D NCHW tensor")
    b, c, h, w = x.shape
    if h % size or w % size:
        raise PlanError(f"pooling {size}x{size} does not divide {h}x{w}")
    out = (
        np.asarray(x, float)
        .reshape(b, c, h // size, size, w // size, size)
        .mean(axis=(3, 5))
    )
    report = _streaming_report(
        bytes_in=x.size * 8,
        bytes_out=out.size * 8,
        flops=x.size,  # one add (amortized) per input element
        block_bytes=w * 8,
        spec=spec,
    )
    return out, report


def relu_forward(
    x: np.ndarray, spec: SW26010Spec = DEFAULT_SPEC
) -> Tuple[np.ndarray, TimingReport]:
    """Elementwise ReLU as a streaming kernel."""
    x = np.asarray(x, float)
    out = np.maximum(x, 0.0)
    block = (x.shape[-1] if x.ndim else 1) * 8
    report = _streaming_report(
        bytes_in=x.size * 8,
        bytes_out=out.size * 8,
        flops=x.size,
        block_bytes=max(8, block),
        spec=spec,
    )
    return out, report


def bias_forward(
    x: np.ndarray, bias: np.ndarray, spec: SW26010Spec = DEFAULT_SPEC
) -> Tuple[np.ndarray, TimingReport]:
    """Per-channel bias add for NCHW tensors."""
    x = np.asarray(x, float)
    bias = np.asarray(bias, float)
    if x.ndim != 4 or bias.ndim != 1 or bias.shape[0] != x.shape[1]:
        raise PlanError(
            f"bias_forward expects NCHW x and per-channel bias; got "
            f"{x.shape} and {bias.shape}"
        )
    out = x + bias[None, :, None, None]
    report = _streaming_report(
        bytes_in=x.size * 8 + bias.size * 8,
        bytes_out=out.size * 8,
        flops=x.size,
        block_bytes=x.shape[-1] * 8,
        spec=spec,
    )
    return out, report


def convolution_time_share(
    conv_report: TimingReport, aux_reports: list
) -> float:
    """Fraction of a layer block's time spent in the convolution.

    The paper: "In most of CNNs, the convolution operator takes the
    majority of computing time (over 90%)" — this helper lets the layer
    stack check that claim against its own timed reports.
    """
    total = conv_report.seconds + sum(r.seconds for r in aux_reports)
    if total <= 0:
        raise PlanError("reports carry no time")
    return conv_report.seconds / total
