"""Vectorization-oriented data layouts (Section V-C).

The 256-bit vector units want 4 doubles per load, and the DMA engine wants
long contiguous leading dimensions (Table II).  The paper therefore stores
the 4-D image tensors in vector-first layouts:

* image-size-aware plan: ``(4, C, R, N, B/4)`` — a 4-element *batch* vector
  is the innermost unit and the column dimension ``C`` runs contiguously
  next, so a ``bCo``-wide tile is one run of ``bCo * 32`` bytes;
* batch-size-aware plan: ``(4, B/4, C, R, N)`` — the whole batch of one
  pixel is contiguous (``B * 8`` bytes per run).

Filters are stored ``(Kc, Kr, Ni, No)`` with the output channel contiguous,
so the per-(kc, kr) filter slab is ``Ni`` runs of ``No * 8`` bytes.

These functions convert between the canonical ``(B, N, R, C)`` order and
the plan layouts, and report each layout's leading block size, which is
what the DMA bandwidth model keys on.  Pack/unpack round-trips are covered
by property-based tests.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import PlanError

#: Vector width in doubles.
LANES = 4
#: Bytes per double.
DS = 8


def _check_batch(b: int) -> None:
    if b % LANES != 0:
        raise PlanError(
            f"vectorized layouts need the batch divisible by {LANES}, got {b}"
        )


def pack_images_image_plan(x: np.ndarray) -> np.ndarray:
    """Canonical (B, N, R, C) -> image-plan layout (4, C, R, N, B/4).

    Index ``[v, c, r, n, q]`` holds batch element ``q * 4 + v`` — batch is
    split into the vector lane ``v`` and the quad index ``q`` so that one
    vector load grabs 4 consecutive batch elements of the same pixel.
    """
    b, n, r, c = x.shape
    _check_batch(b)
    quads = x.reshape(b // LANES, LANES, n, r, c)
    # (q, v, n, r, c) -> (v, c, r, n, q)
    return np.ascontiguousarray(quads.transpose(1, 4, 3, 2, 0))


def unpack_images_image_plan(packed: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_images_image_plan`."""
    v, c, r, n, q = packed.shape
    if v != LANES:
        raise PlanError(f"image-plan layout must have {LANES} lanes, got {v}")
    quads = packed.transpose(4, 0, 3, 2, 1)  # (q, v, n, r, c)
    return np.ascontiguousarray(quads.reshape(q * LANES, n, r, c))


def pack_images_batch_plan(x: np.ndarray) -> np.ndarray:
    """Canonical (B, N, R, C) -> batch-plan layout (4, B/4, C, R, N)."""
    b, n, r, c = x.shape
    _check_batch(b)
    quads = x.reshape(b // LANES, LANES, n, r, c)
    # (q, v, n, r, c) -> (v, q, c, r, n)
    return np.ascontiguousarray(quads.transpose(1, 0, 4, 3, 2))


def unpack_images_batch_plan(packed: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_images_batch_plan`."""
    v, q, c, r, n = packed.shape
    if v != LANES:
        raise PlanError(f"batch-plan layout must have {LANES} lanes, got {v}")
    quads = packed.transpose(1, 0, 4, 3, 2)  # (q, v, n, r, c)
    return np.ascontiguousarray(quads.reshape(q * LANES, n, r, c))


def pack_filters(w: np.ndarray) -> np.ndarray:
    """Canonical (No, Ni, Kr, Kc) -> filter layout (Kc, Kr, Ni, No)."""
    return np.ascontiguousarray(w.transpose(3, 2, 1, 0))


def unpack_filters(packed: np.ndarray) -> np.ndarray:
    """Inverse of :func:`pack_filters`."""
    return np.ascontiguousarray(packed.transpose(3, 2, 1, 0))


# -- leading block sizes (what the DMA sees) ---------------------------------


def image_plan_block_bytes(b_co: int) -> int:
    """Leading contiguous run of a ``bCo``-wide tile in the image layout."""
    if b_co < 1:
        raise PlanError(f"bCo must be positive, got {b_co}")
    return b_co * LANES * DS


def batch_plan_block_bytes(b: int) -> int:
    """Leading contiguous run of one pixel's batch in the batch layout."""
    if b < 1:
        raise PlanError(f"batch must be positive, got {b}")
    return b * DS


def filter_block_bytes(n_o: int) -> int:
    """Leading contiguous run of one (kc, kr, ni) filter row."""
    if n_o < 1:
        raise PlanError(f"No must be positive, got {n_o}")
    return n_o * DS
