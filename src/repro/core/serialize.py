"""JSON serialization for layer configurations and plan descriptions.

Sweeps, saved experiment artifacts and external tooling need a stable
textual form for the configuration objects.  This module round-trips
:class:`~repro.core.params.ConvParams`, the blocking dataclasses and whole
plan descriptions (family + blocking + register blocking) through plain
dicts, with versioned envelopes so saved files stay readable as the
library evolves.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Union

from repro.common.errors import PlanError
from repro.core.algorithms import GemmBlocking, LoweredConvPlan, make_lowered_plan
from repro.core.ldm_blocking import BatchBlocking, ImageBlocking
from repro.core.params import ConvParams
from repro.core.plans import BatchSizeAwarePlan, ConvPlan, ImageSizeAwarePlan
from repro.core.register_blocking import RegisterBlocking
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC

#: Envelope format version.
FORMAT_VERSION = 1


def params_to_dict(params: ConvParams) -> Dict[str, int]:
    return {
        "ni": params.ni,
        "no": params.no,
        "ri": params.ri,
        "ci": params.ci,
        "kr": params.kr,
        "kc": params.kc,
        "b": params.b,
    }


def params_from_dict(data: Dict[str, Any]) -> ConvParams:
    try:
        return ConvParams(**{k: int(data[k]) for k in ("ni", "no", "ri", "ci", "kr", "kc", "b")})
    except KeyError as exc:
        raise PlanError(f"missing ConvParams field {exc}") from None


def blocking_to_dict(
    blocking: Union[ImageBlocking, BatchBlocking, GemmBlocking],
) -> Dict[str, Any]:
    if isinstance(blocking, ImageBlocking):
        return {
            "kind": "image",
            "b_b": blocking.b_b,
            "b_co": blocking.b_co,
            "promote_input": blocking.promote_input,
            "promote_filter": blocking.promote_filter,
            "b_ni": blocking.b_ni,
        }
    if isinstance(blocking, BatchBlocking):
        return {
            "kind": "batch",
            "b_co": blocking.b_co,
            "promote_filter": blocking.promote_filter,
            "b_ni": blocking.b_ni,
        }
    if isinstance(blocking, GemmBlocking):
        return {
            "kind": "gemm",
            "b_m": blocking.b_m,
            "b_n": blocking.b_n,
            "b_k": blocking.b_k,
        }
    raise PlanError(f"unknown blocking type {type(blocking).__name__}")


def blocking_from_dict(
    data: Dict[str, Any],
) -> Union[ImageBlocking, BatchBlocking, GemmBlocking]:
    kind = data.get("kind")
    if kind == "image":
        return ImageBlocking(
            b_b=int(data["b_b"]),
            b_co=int(data["b_co"]),
            promote_input=bool(data.get("promote_input", False)),
            promote_filter=bool(data.get("promote_filter", False)),
            b_ni=None if data.get("b_ni") is None else int(data["b_ni"]),
        )
    if kind == "batch":
        return BatchBlocking(
            b_co=int(data["b_co"]),
            promote_filter=bool(data.get("promote_filter", False)),
            b_ni=None if data.get("b_ni") is None else int(data["b_ni"]),
        )
    if kind == "gemm":
        return GemmBlocking(
            b_m=int(data["b_m"]), b_n=int(data["b_n"]), b_k=int(data["b_k"])
        )
    raise PlanError(f"unknown blocking kind {kind!r}")


def plan_to_dict(plan: Union[ConvPlan, LoweredConvPlan]) -> Dict[str, Any]:
    """Describe a plan completely enough to rebuild it."""
    out = {
        "format_version": FORMAT_VERSION,
        "family": plan.name,
        "params": params_to_dict(plan.params),
        "blocking": blocking_to_dict(plan.blocking),
        "register_blocking": {
            "rb_b": plan.register_blocking.rb_b,
            "rb_no": plan.register_blocking.rb_no,
        },
    }
    # The algorithm field is written for lowered plans only, so every
    # pre-zoo direct plan dict stays byte-identical (cache entries embed
    # these dicts; see repro.tune.cache).
    algorithm = getattr(plan, "algorithm", "direct")
    if algorithm != "direct":
        out["algorithm"] = algorithm
    return out


def plan_from_dict(data: Dict[str, Any], spec: Optional["SW26010Spec"] = None) -> ConvPlan:
    """Rebuild a plan, optionally against a non-default machine ``spec``
    (the plan cache stores plans tuned for shrunken or degraded meshes)."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise PlanError(
            f"unsupported plan format version {version!r} "
            f"(this library reads {FORMAT_VERSION})"
        )
    if spec is None:
        spec = DEFAULT_SPEC
    params = params_from_dict(data["params"])
    blocking = blocking_from_dict(data["blocking"])
    reg = data.get("register_blocking", {})
    register_blocking = RegisterBlocking(
        rb_b=int(reg.get("rb_b", 16)), rb_no=int(reg.get("rb_no", 4))
    )
    family = data.get("family")
    if family in ("im2col", "winograd"):
        if not isinstance(blocking, GemmBlocking):
            raise PlanError(f"{family} plan needs a gemm blocking")
        if data.get("algorithm", family) != family:
            raise PlanError(
                f"plan algorithm {data.get('algorithm')!r} disagrees with "
                f"family {family!r}"
            )
        return make_lowered_plan(
            family,
            params,
            spec=spec,
            blocking=blocking,
            register_blocking=register_blocking,
        )
    if family == "image-size-aware":
        if not isinstance(blocking, ImageBlocking):
            raise PlanError("image-size-aware plan needs an image blocking")
        return ImageSizeAwarePlan(
            params, blocking=blocking, register_blocking=register_blocking, spec=spec
        )
    if family == "batch-size-aware":
        if not isinstance(blocking, BatchBlocking):
            raise PlanError("batch-size-aware plan needs a batch blocking")
        return BatchSizeAwarePlan(
            params, blocking=blocking, register_blocking=register_blocking, spec=spec
        )
    raise PlanError(f"unknown plan family {family!r}")


def plan_to_json(
    plan: Union[ConvPlan, LoweredConvPlan], indent: Optional[int] = 2
) -> str:
    return json.dumps(plan_to_dict(plan), indent=indent)


def plan_from_json(
    text: str, spec: Optional[SW26010Spec] = None
) -> Union[ConvPlan, LoweredConvPlan]:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PlanError(f"malformed plan JSON: {exc}") from None
    return plan_from_dict(data, spec=spec)
