"""The convolution algorithm zoo: engine-level im2col and Winograd.

The paper ships one spatial-domain mapping — direct summation lowered onto
the register-communication mesh — and Section III-C argues the choice.
MG3MConv (PAPERS.md) later showed SW26010 convolution wins by *choosing*
among several matrix-multiplication mappings per layer shape.  This module
promotes the two analysis-only baselines (``repro.baselines.im2col``,
``repro.baselines.winograd``) into first-class execution paths the
autotuner can search:

* **im2col** — materialize the lowered ``(Ni*Kr*Kc) x (B*Ro*Co)`` matrix in
  memory (one serial DMA pass, replicating each input pixel ``Kr*Kc``
  times), then run one LDM-tiled mesh GEMM
  (:class:`~repro.core.gemm_plan.GemmPlan`) against the reshaped filters.
* **winograd** — fused F(2x2, 3x3): transform filters and 4x4 input tiles
  into the Winograd domain (materialized, one DMA pass), run the 16
  pointwise ``No x Ni`` reductions as mesh GEMMs over the transformed
  tiles, and apply the inverse transform *in LDM* so only the 2x2 useful
  outputs are stored — 16 multiplies per output tile instead of 36, at a
  calibrated ~20% transform-arithmetic overhead.

Both families reuse the direct path's machinery end to end: the Table II
DMA model prices every transfer, :func:`~repro.core.conv._pipeline_timeline`
schedules double-buffered tiles, and the engines feed the same telemetry
counters (``engine.bytes_get`` ...), so the communication oracle
(:mod:`repro.telemetry.oracle`) can compare all three algorithms on equal
footing.

Legality: Winograd requires 3x3 filters at stride 1 (the only stride this
simulator models; a stride argument exists so enumeration can refuse
hypothetical strided shapes explicitly).  im2col and direct accept any
modeled shape.  :func:`enumerate_gemm_blockings` yields the LDM-feasible
tile shapes of a lowered GEMM — the zoo's analogue of the direct families'
blocking sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.common.errors import PlanError
from repro.core.conv import (
    BACKENDS,
    OVERLAP_CONTENTION,
    ConvolutionEngine,
    TimingReport,
    _pipeline_timeline,
    _StepCost,
)
from repro.core.gemm_plan import (
    GemmEngine,
    GemmParams,
    GemmPlan,
    choose_gemm_blocking,
    rbw_gemm,
)
from repro.core.ldm_blocking import assert_fits_in_ldm
from repro.core.params import ConvParams
from repro.core.plans import ConvPlan
from repro.core.reference import conv2d_im2col
from repro.core.register_blocking import PAPER_REGISTER_BLOCKING, RegisterBlocking
from repro.hw.dma import DMABandwidthModel
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC
from repro.perf.dma_model import DMA_STRIDE_EFFICIENCY, DMAStream, blended_mbw
from repro.perf.equations import DS, rbw_ldm_reg_gemm_simd
from repro.perf.model import PerformanceEstimate, _measured_ee
from repro.telemetry import current_telemetry

#: The algorithm families the zoo knows, in canonical order.  "direct" is
#: the paper's conv->mesh mapping (Algorithms 1 and 2); the other two are
#: GEMM-lowered paths added by this module.
ALGORITHMS = ("direct", "im2col", "winograd")

#: F(2x2, 3x3) transform matrices (Lavin & Gray, 2015).
WINOGRAD_B_T = np.array(
    [
        [1.0, 0.0, -1.0, 0.0],
        [0.0, 1.0, 1.0, 0.0],
        [0.0, -1.0, 1.0, 0.0],
        [0.0, 1.0, 0.0, -1.0],
    ]
)
WINOGRAD_G = np.array(
    [
        [1.0, 0.0, 0.0],
        [0.5, 0.5, 0.5],
        [0.5, -0.5, 0.5],
        [0.0, 0.0, 1.0],
    ]
)
WINOGRAD_A_T = np.array(
    [
        [1.0, 1.0, 1.0, 0.0],
        [0.0, 1.0, -1.0, -1.0],
    ]
)

#: Direct 3x3 needs 36 multiplies per 2x2 output tile; F(2x2,3x3) needs 16.
WINOGRAD_ARITHMETIC_REDUCTION = 36.0 / 16.0

#: The transform adds (B^T d B, G g G^T, A^T m A) are not free: calibrated
#: as a flat multiplier on the pointwise-stage compute time, matching the
#: baseline analysis in ``repro.baselines.winograd``.
WINOGRAD_TRANSFORM_OVERHEAD = 1.2

#: DMA block-size clamp shared with :class:`~repro.core.gemm_plan.GemmEngine`.
_BLOCK_CLAMP = 512


def resolve_algorithms(
    algorithms: Union[None, str, Sequence[str]],
) -> Tuple[str, ...]:
    """Canonicalize an ``algorithms=`` restriction.

    ``None`` means the status quo: the direct algorithm only.  Searching
    the lowered families is an explicit opt-in ("all" or a sequence) —
    they cannot host the guarded fallback ladder or the fused pooling
    epilogue, and their outputs are allclose-but-not-bit-identical to the
    direct path, which the serving pool's batched-vs-single invariant
    forbids by default.
    """
    if algorithms is None:
        return ("direct",)
    if isinstance(algorithms, str):
        if algorithms == "all":
            return ALGORITHMS
        algorithms = (algorithms,)
    unknown = [a for a in algorithms if a not in ALGORITHMS]
    if unknown:
        raise ValueError(
            f"unknown algorithms {unknown}; expected a subset of {ALGORITHMS}"
        )
    if not algorithms:
        raise ValueError("algorithms must name at least one algorithm")
    seen = set(algorithms)
    return tuple(a for a in ALGORITHMS if a in seen)


def algorithm_legal(
    algorithm: str, params: ConvParams, stride: int = 1
) -> bool:
    """Whether ``algorithm`` can execute this shape.

    The simulator models valid stride-1 convolutions; ``stride`` lets the
    enumeration refuse hypothetical strided shapes explicitly (F(2x2,3x3)
    is a stride-1 identity — a stride-2 "Winograd" candidate would compute
    the wrong function, so it must never be enumerated).
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; known: {ALGORITHMS}")
    if stride != 1:
        return False
    if algorithm == "winograd":
        return (params.kr, params.kc) == (3, 3)
    return True


def legal_algorithms(params: ConvParams, stride: int = 1) -> Tuple[str, ...]:
    """The subset of :data:`ALGORITHMS` legal for this shape."""
    return tuple(a for a in ALGORITHMS if algorithm_legal(a, params, stride))


@dataclass(frozen=True)
class GemmBlocking:
    """LDM tile shape of a lowered algorithm's mesh GEMM."""

    b_m: int
    b_n: int
    b_k: int

    def __post_init__(self) -> None:
        if min(self.b_m, self.b_n, self.b_k) < 1:
            raise ValueError(f"GEMM tile sizes must be positive: {self}")

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.b_m, self.b_n, self.b_k)


def winograd_tiles(params: ConvParams) -> Tuple[int, int]:
    """(tiles_h, tiles_w) of the F(2x2,3x3) tiling, output padded to even."""
    return -(-params.ro // 2), -(-params.co // 2)


def lowered_gemm_params(algorithm: str, params: ConvParams) -> GemmParams:
    """The mesh-GEMM problem a lowered algorithm solves for this shape.

    im2col: ``C (No x B*Ro*Co) = W (No x Ni*Kr*Kc) . cols``.  Winograd:
    each of the 16 transform components is ``C (No x B*tiles) = U . V``;
    the returned params describe *one* component (the schedule walks all
    16 per tile step).
    """
    if algorithm == "im2col":
        return GemmParams(
            m=params.no,
            n=params.b * params.ro * params.co,
            k=params.ni * params.kr * params.kc,
        )
    if algorithm == "winograd":
        th, tw = winograd_tiles(params)
        return GemmParams(m=params.no, n=params.b * th * tw, k=params.ni)
    raise ValueError(f"no lowered GEMM for algorithm {algorithm!r}")


def enumerate_gemm_blockings(
    algorithm: str,
    params: ConvParams,
    spec: SW26010Spec = DEFAULT_SPEC,
) -> List[GemmBlocking]:
    """LDM-feasible GEMM tile shapes for a lowered algorithm on this shape.

    The doubling search of :func:`~repro.core.gemm_plan.choose_gemm_blocking`
    finds the largest square-ish tile; the enumeration adds halvings of the
    streaming dimensions (``bN``, ``bK``) around it — smaller tiles trade
    panel-amortization for shorter pipeline stages, a trade only the
    measured search can judge.  Returns ``[]`` when no tiling fits LDM.
    """
    if not algorithm_legal(algorithm, params):
        return []
    gp = lowered_gemm_params(algorithm, params)
    try:
        b_m, b_n, b_k = choose_gemm_blocking(gp, spec)
    except PlanError:
        return []
    out: List[GemmBlocking] = []
    seen = set()
    for n_div in (1, 2, 4):
        for k_div in (1, 2):
            blocking = GemmBlocking(
                b_m=b_m,
                b_n=max(1, min(gp.n, b_n // n_div)),
                b_k=max(1, min(gp.k, b_k // k_div)),
            )
            if blocking not in seen:
                seen.add(blocking)
                out.append(blocking)
    return out


class LoweredConvPlan:
    """Base of the GEMM-lowered plan families.

    Mirrors the :class:`~repro.core.plans.ConvPlan` surface the engines,
    tuner, serializer and telemetry consume — ``name``, ``params``,
    ``blocking``, ``register_blocking``, ``signature()``, ``dma_streams()``,
    ``ldm_regions()``, ``estimate()`` — while the schedule itself is the
    tiled mesh GEMM of :class:`~repro.core.gemm_plan.GemmPlan` plus the
    algorithm's lowering/transform DMA pass.
    """

    name: str = "abstract-lowered"
    algorithm: str = "abstract-lowered"

    def __init__(
        self,
        params: ConvParams,
        blocking: Optional[GemmBlocking] = None,
        register_blocking: RegisterBlocking = PAPER_REGISTER_BLOCKING,
        spec: SW26010Spec = DEFAULT_SPEC,
    ):
        if not algorithm_legal(self.algorithm, params):
            raise PlanError(
                f"{self.algorithm} cannot execute {params.describe()}"
            )
        self.params = params
        self.spec = spec
        self.register_blocking = register_blocking
        register_blocking.check_feasible(spec)
        self.gemm_params = lowered_gemm_params(self.algorithm, params)
        if blocking is None:
            blocking = GemmBlocking(*choose_gemm_blocking(self.gemm_params, spec))
        self.blocking = blocking
        self._gemm_plan = GemmPlan(
            self.gemm_params,
            blocking=blocking.as_tuple(),
            register_blocking=register_blocking,
            spec=spec,
        )
        self.validate()

    # -- identity -------------------------------------------------------------

    def signature(self) -> Tuple:
        """Hashable identity, same shape as :meth:`ConvPlan.signature`."""
        return (
            self.name,
            self.params,
            self.blocking,
            self.register_blocking,
            self.spec,
        )

    def gemm_plan(self) -> GemmPlan:
        return self._gemm_plan

    # -- LDM ------------------------------------------------------------------

    def ldm_regions(self) -> List[Tuple[str, int]]:
        """Per-CPE LDM regions: double-buffered A/B panels + resident C."""
        per_cpe = self.spec.cpes_per_group
        blk = self.blocking
        a_tile = -(-blk.b_m * blk.b_k // per_cpe) * DS
        b_tile = -(-blk.b_k * blk.b_n // per_cpe) * DS
        c_tile = -(-blk.b_m * blk.b_n // per_cpe) * DS
        return [
            ("gemm.a.ping", a_tile),
            ("gemm.a.pong", a_tile),
            ("gemm.b.ping", b_tile),
            ("gemm.b.pong", b_tile),
            ("gemm.c", c_tile),
        ]

    def validate(self) -> None:
        assert_fits_in_ldm(self.ldm_regions(), self.spec)

    # -- traffic and modeling -------------------------------------------------

    def dma_streams(self) -> List[DMAStream]:
        raise NotImplementedError

    def total_dma_bytes(self) -> int:
        return int(sum(s.bytes_moved for s in self.dma_streams()))

    def rbw_mem(self) -> float:
        return rbw_gemm(
            self.blocking.b_m,
            self.blocking.b_n,
            self.gemm_params.k,
            peak_flops=self.spec.peak_flops_per_cg,
        )

    def _effective_ee(self) -> float:
        """Execution efficiency in *direct-equivalent* terms.

        The estimate's flop budget is the direct convolution's
        (:meth:`ConvParams.flops`), so an algorithm that needs fewer (or
        more) machine flops for the same layer folds the ratio into its
        efficiency — the score stays comparable across families.
        """
        ee = _measured_ee(max(1, -(-self.gemm_params.k // 8)))
        machine = self.machine_flops()
        return ee * (self.params.flops() / machine)

    def machine_flops(self) -> int:
        """Flops the lowered schedule actually executes."""
        raise NotImplementedError

    def estimate(self, model: Any = None) -> PerformanceEstimate:
        return PerformanceEstimate(
            plan=self.name,
            peak_flops=self.spec.peak_flops_per_cg,
            execution_efficiency=self._effective_ee(),
            rbw_mem=self.rbw_mem(),
            mbw_mem=blended_mbw(self.dma_streams()),
            rbw_reg=rbw_ldm_reg_gemm_simd(
                self.register_blocking.rb_b,
                self.register_blocking.rb_no,
                peak_flops=self.spec.peak_flops_per_cpe,
            ),
            mbw_reg=self.spec.ldm_bandwidth,
        )

    def describe(self) -> str:
        return f"{self.name} for {self.params.describe()}"


class Im2colPlan(LoweredConvPlan):
    """Implicit-GEMM convolution: lower, then one mesh GEMM.

    The lowering pass streams the input once and writes the
    ``(Ni*Kr*Kc) x (B*Ro*Co)`` column matrix (each pixel replicated
    ``Kr*Kc`` times — the traffic blow-up Section III-C avoids); the GEMM
    then streams lowered panels against the reshaped filter matrix.
    """

    name = "im2col"
    algorithm = "im2col"

    def lowered_bytes(self) -> int:
        p = self.params
        return p.b * p.ni * p.kr * p.kc * p.ro * p.co * DS

    def machine_flops(self) -> int:
        return self.gemm_params.flops()  # == params.flops() exactly

    def dma_streams(self) -> List[DMAStream]:
        p = self.params
        lowered = float(self.lowered_bytes())
        lower_block = min(p.ro * p.co, _BLOCK_CLAMP) * DS
        streams = [
            DMAStream("input.get", float(p.input_bytes()), min(p.ci, _BLOCK_CLAMP) * DS, "get"),
            DMAStream("lowered.put", lowered, lower_block, "put"),
        ]
        for s in self._gemm_plan.dma_streams():
            streams.append(
                DMAStream(f"gemm.{s.name}", s.bytes_moved, s.block_bytes, s.direction)
            )
        return streams


class WinogradPlan(LoweredConvPlan):
    """Fused F(2x2,3x3): transform, 16 pointwise mesh GEMMs, inverse in LDM.

    The transform pass reads the raw input and filters once and
    materializes the Winograd-domain operands (tiles inflate 4x, filters
    16/9); each tile step of the pointwise stage then streams all 16
    components of its U/V panels, reduces them on the mesh, applies
    ``A^T m A`` in LDM and stores only the 4 useful output elements per
    tile — the fused regime where the 2.25x arithmetic reduction survives.
    """

    name = "winograd"
    algorithm = "winograd"

    def transformed_input_bytes(self) -> int:
        return 16 * self.gemm_params.k * self.gemm_params.n * DS

    def transformed_filter_bytes(self) -> int:
        return 16 * self.params.no * self.params.ni * DS

    def machine_flops(self) -> int:
        return 16 * self.gemm_params.flops()

    def dma_streams(self) -> List[DMAStream]:
        p = self.params
        gp = self.gemm_params
        blk = self.blocking
        v_bytes = float(self.transformed_input_bytes())
        u_bytes = float(self.transformed_filter_bytes())
        n_tiles = -(-gp.n // blk.b_n)
        m_tiles = -(-gp.m // blk.b_m)
        v_block = min(blk.b_n, _BLOCK_CLAMP) * DS
        u_block = min(blk.b_k, _BLOCK_CLAMP) * DS
        return [
            DMAStream("input.get", float(p.input_bytes()), min(p.ci, _BLOCK_CLAMP) * DS, "get"),
            DMAStream("filter.get", float(p.filter_bytes()), min(p.no, _BLOCK_CLAMP) * DS, "get"),
            DMAStream("wino.v.put", v_bytes, v_block, "put"),
            DMAStream("wino.u.put", u_bytes, u_block, "put"),
            # Pointwise stage: V panels stream once per m-tile row, U
            # panels once per n-tile column.
            DMAStream("wino.v.get", v_bytes * m_tiles, v_block, "get"),
            DMAStream("wino.u.get", u_bytes * n_tiles, u_block, "get"),
            DMAStream("output.put", 4.0 * gp.m * gp.n * DS, v_block, "put"),
        ]


#: Memoized timed walks of lowered schedules, mirroring the direct path's
#: ``repro.core.conv._TIMING_CACHE``.
_LOWERED_TIMING_CACHE: Dict[Tuple, TimingReport] = {}
_LOWERED_TIMING_CACHE_MAX = 4096


def clear_lowered_timing_cache() -> None:
    _LOWERED_TIMING_CACHE.clear()


class LoweredConvEngine:
    """Functional + timed execution of a lowered plan, engine-compatible.

    Exposes the :class:`~repro.core.conv.ConvolutionEngine` surface the
    layer API, handle and tuner drive — ``evaluate()``, ``run(x, w, bias,
    activation, filter_version)``, ``plan``, ``spec``, ``backend`` — and
    feeds the same telemetry counters.  Lowered schedules cannot host the
    degraded-machine replanner or the fused pooling epilogue; both are
    rejected at construction so a tuner restricted to lowered algorithms
    fails fast instead of silently mis-modeling.
    """

    def __init__(
        self,
        plan: LoweredConvPlan,
        spec: Optional[SW26010Spec] = None,
        backend: str = "numpy",
        stride_efficiency: float = DMA_STRIDE_EFFICIENCY,
        overlap_contention: float = OVERLAP_CONTENTION,
        fault_plan=None,
        fused_pool: int = 1,
        telemetry=None,
    ):
        if backend not in BACKENDS:
            raise PlanError(f"unknown compute backend {backend!r}")
        if fault_plan is not None:
            raise PlanError(
                f"the {plan.algorithm} algorithm does not support "
                f"degraded-machine execution; tune with the direct algorithm"
            )
        if fused_pool != 1:
            raise PlanError(
                f"the {plan.algorithm} algorithm cannot host a fused "
                f"pooling epilogue (its LDM tiles are GEMM panels, not "
                f"output rows); use the direct algorithm"
            )
        self.plan = plan
        self.spec = spec or plan.spec
        self.backend = backend
        self.stride_efficiency = stride_efficiency
        self.overlap_contention = overlap_contention
        self.fault_plan = None
        self.fused_pool = 1
        self.mesh_size = self.spec.mesh_size
        self.telemetry = telemetry if telemetry is not None else current_telemetry()
        self._dma_model = DMABandwidthModel(alignment=self.spec.dma_alignment)
        self._gemm_engine = GemmEngine(
            plan.gemm_plan(),
            backend=backend,
            stride_efficiency=stride_efficiency,
            overlap_contention=overlap_contention,
        )
        if self.telemetry.enabled:
            self.telemetry.counters.record_max(
                "ldm.plan_regions_bytes", sum(n for _, n in plan.ldm_regions())
            )

    # -- timing ---------------------------------------------------------------

    def _transfer_seconds(self, nbytes: float, block: int, direction: str) -> float:
        if nbytes <= 0:
            return 0.0
        bw = self._dma_model.bandwidth(
            block, direction, aligned=self._dma_model.is_aligned(block)
        )
        return nbytes / (bw * self.stride_efficiency)

    def _staging_cost(self) -> _StepCost:
        """The serial lowering/transform DMA pass (no overlap to hide it)."""
        raise NotImplementedError

    def _gemm_report(self) -> TimingReport:
        raise NotImplementedError

    def _timing_key(self) -> Tuple:
        return (
            self.plan.signature(),
            self.spec,
            self.stride_efficiency,
            self.overlap_contention,
        )

    def evaluate(self) -> TimingReport:
        """Timed walk: staging pass, then the pipelined GEMM schedule.

        ``flops`` reports the layer's *direct-equivalent* flop count
        (:meth:`ConvParams.flops`), so ``gflops`` across algorithms answers
        "how fast is this layer", not "how busy is the mesh" — the same
        convention the baselines and Table III use.
        """
        key = self._timing_key()
        cached = _LOWERED_TIMING_CACHE.get(key)
        if cached is not None:
            self._count_evaluation(cached, cache_hit=True)
            return replace(cached)
        staging = self._staging_cost()
        staging_seconds = staging.get_seconds + staging.put_seconds
        gemm = self._gemm_report()
        report = TimingReport(
            seconds=staging_seconds + gemm.seconds,
            flops=self.plan.params.flops(),
            dma_seconds=staging_seconds + gemm.dma_seconds,
            compute_seconds=gemm.compute_seconds,
            bytes_get=staging.bytes_get + gemm.bytes_get,
            bytes_put=staging.bytes_put + gemm.bytes_put,
            tiles=gemm.tiles + 1,
            peak_flops=self.spec.peak_flops_per_cg,
        )
        if len(_LOWERED_TIMING_CACHE) >= _LOWERED_TIMING_CACHE_MAX:
            _LOWERED_TIMING_CACHE.clear()
        _LOWERED_TIMING_CACHE[key] = report
        self._count_evaluation(report, cache_hit=False)
        return replace(report)

    def _count_evaluation(self, report: TimingReport, cache_hit: bool) -> None:
        counters = self.telemetry.counters
        if not counters.enabled:
            return
        counters.add("engine.evaluations")
        counters.add(
            "engine.timing_cache.hits" if cache_hit else "engine.timing_cache.misses"
        )
        counters.add("engine.bytes_get", report.bytes_get)
        counters.add("engine.bytes_put", report.bytes_put)
        counters.add("engine.flops", report.flops)
        counters.add("engine.tiles", report.tiles)
        counters.add("engine.simulated_seconds", report.seconds)

    # -- functional -----------------------------------------------------------

    def _mesh_matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``a @ b`` through the mesh backend (or numpy on the base tier).

        The register-communication protocol requires operands divisible
        into mesh-size blocks; lowered matrices are zero-padded up to the
        block grid (exact for a matmul) and the product cropped back.
        """
        mesh = self._gemm_engine._mesh
        if mesh is None:
            return a @ b
        n = self.spec.mesh_size
        pad_m = (-a.shape[0]) % n
        pad_k = (-a.shape[1]) % n
        pad_n = (-b.shape[1]) % n
        ap = np.pad(a, ((0, pad_m), (0, pad_k)))
        bp = np.pad(b, ((0, pad_k), (0, pad_n)))
        return mesh.multiply(ap, bp)[: a.shape[0], : b.shape[1]]

    def _compute(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def run(
        self,
        x: np.ndarray,
        w: np.ndarray,
        bias: Optional[np.ndarray] = None,
        activation: Optional[str] = None,
        filter_version: Optional[int] = None,
    ) -> Tuple[np.ndarray, TimingReport]:
        """Execute the lowered algorithm on real data.

        The bias/ReLU epilogue is applied before the (modeled) output puts,
        like the direct engine's fused epilogue.  ``filter_version`` is
        accepted for call compatibility; lowered paths re-transform the
        filters per call (the transform is part of the timing model).
        """
        p = self.plan.params
        x = np.asarray(x, dtype=np.float64)
        w = np.asarray(w, dtype=np.float64)
        if x.shape != p.input_shape:
            raise PlanError(f"input shape {x.shape} != {p.input_shape}")
        if w.shape != p.filter_shape:
            raise PlanError(f"filter shape {w.shape} != {p.filter_shape}")
        if bias is not None:
            bias = np.asarray(bias, dtype=np.float64)
            if bias.shape != (p.no,):
                raise PlanError(f"bias must have shape ({p.no},), got {bias.shape}")
        if activation not in (None, "relu"):
            raise PlanError(f"unknown fused activation {activation!r}")
        with self.telemetry.tracer.span(
            "engine.run", cat="engine", backend=self.backend,
            algorithm=self.plan.algorithm, params=repr(p),
        ):
            out = self._compute(x, w)
            if bias is not None:
                out = out + bias[None, :, None, None]
            if activation == "relu":
                out = np.maximum(out, 0.0)
        self.telemetry.counters.add("engine.runs")
        return out, self.evaluate()

    def prepack_filters(self, w: np.ndarray, version: int = 0) -> int:
        """Call-compatible no-op (returns 0 packed bytes).

        Lowered paths re-transform the filters on every call — the
        transform is part of the timing model — so there is no persistent
        packed layout to memoize.  Present so the guarded ladder and warm
        pools can treat lowered engines uniformly at warm-up.
        """
        return 0


class Im2colEngine(LoweredConvEngine):
    """Execution of an :class:`Im2colPlan`."""

    def _staging_cost(self) -> _StepCost:
        plan = self.plan
        p = plan.params
        lowered = plan.lowered_bytes()
        get_s = self._transfer_seconds(
            p.input_bytes(), min(p.ci, _BLOCK_CLAMP) * DS, "get"
        )
        put_s = self._transfer_seconds(
            lowered, min(p.ro * p.co, _BLOCK_CLAMP) * DS, "put"
        )
        return _StepCost(
            get_seconds=get_s,
            compute_seconds=0.0,
            put_seconds=put_s,
            flops=0,
            bytes_get=p.input_bytes(),
            bytes_put=lowered,
        )

    def _gemm_report(self) -> TimingReport:
        return self._gemm_engine.evaluate()

    def _compute(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        p = self.plan.params
        if self.backend == "numpy":
            return conv2d_im2col(x, w)
        cols = np.empty((p.ni * p.kr * p.kc, p.b, p.ro * p.co))
        row = 0
        for cni in range(p.ni):
            for dkr in range(p.kr):
                for dkc in range(p.kc):
                    window = x[:, cni, dkr : dkr + p.ro, dkc : dkc + p.co]
                    cols[row] = window.reshape(p.b, -1)
                    row += 1
        w_mat = w.reshape(p.no, p.ni * p.kr * p.kc)
        out_mat = self._mesh_matmul(
            w_mat, cols.reshape(p.ni * p.kr * p.kc, p.b * p.ro * p.co)
        )
        out = out_mat.reshape(p.no, p.b, p.ro, p.co)
        return np.ascontiguousarray(out.transpose(1, 0, 2, 3))


class WinogradEngine(LoweredConvEngine):
    """Execution of a :class:`WinogradPlan`."""

    def _staging_cost(self) -> _StepCost:
        plan = self.plan
        p = plan.params
        blk = plan.blocking
        v_bytes = plan.transformed_input_bytes()
        u_bytes = plan.transformed_filter_bytes()
        get_s = self._transfer_seconds(
            p.input_bytes(), min(p.ci, _BLOCK_CLAMP) * DS, "get"
        ) + self._transfer_seconds(
            p.filter_bytes(), min(p.no, _BLOCK_CLAMP) * DS, "get"
        )
        put_s = self._transfer_seconds(
            v_bytes, min(blk.b_n, _BLOCK_CLAMP) * DS, "put"
        ) + self._transfer_seconds(
            u_bytes, min(blk.b_k, _BLOCK_CLAMP) * DS, "put"
        )
        return _StepCost(
            get_seconds=get_s,
            compute_seconds=0.0,
            put_seconds=put_s,
            flops=0,
            bytes_get=p.input_bytes() + p.filter_bytes(),
            bytes_put=v_bytes + u_bytes,
        )

    def _pointwise_cost(
        self, m_len: int, n_len: int, k_len: int, last_chunk: bool
    ) -> _StepCost:
        """One tile step of the pointwise stage: all 16 components.

        The U/V panels of every component stream in (16x the bytes of one
        GEMM step); the inverse transform runs in LDM, so the put moves
        only the 4 useful output elements of each of the step's ``n_len``
        2x2 tiles, on the reduction's last chunk.
        """
        blk = self.plan.blocking
        a_bytes = 16 * m_len * k_len * DS
        b_bytes = 16 * k_len * n_len * DS
        c_bytes = 4 * m_len * n_len * DS if last_chunk else 0
        block_a = min(blk.b_k, _BLOCK_CLAMP) * DS
        block_bc = min(blk.b_n, _BLOCK_CLAMP) * DS
        flops = 16 * 2 * m_len * n_len * k_len
        ee = _measured_ee(max(1, -(-k_len // 8)))
        comp = WINOGRAD_TRANSFORM_OVERHEAD * self.spec.cycles_to_seconds(
            flops / (self.spec.cpes_per_group * self.spec.flops_per_cycle) / ee
        )
        return _StepCost(
            get_seconds=self._transfer_seconds(a_bytes, block_a, "get")
            + self._transfer_seconds(b_bytes, block_bc, "get"),
            compute_seconds=comp,
            put_seconds=self._transfer_seconds(c_bytes, block_bc, "put"),
            flops=flops,
            bytes_get=a_bytes + b_bytes,
            bytes_put=c_bytes,
        )

    def _gemm_report(self) -> TimingReport:
        gplan = self.plan.gemm_plan()
        chunks = list(gplan.k_chunks())
        cost_memo: Dict[Tuple, _StepCost] = {}
        costs = []
        for _, m_len, _, n_len in gplan.tiles():
            for i, (_, k_len) in enumerate(chunks):
                key = (m_len, n_len, k_len, i == len(chunks) - 1)
                cost = cost_memo.get(key)
                if cost is None:
                    cost = self._pointwise_cost(*key)
                    cost_memo[key] = cost
                costs.append(cost)
        total, dma_busy, comp_busy = _pipeline_timeline(costs, self.overlap_contention)
        return TimingReport(
            seconds=total,
            flops=sum(c.flops for c in costs),
            dma_seconds=dma_busy,
            compute_seconds=comp_busy,
            bytes_get=sum(c.bytes_get for c in costs),
            bytes_put=sum(c.bytes_put for c in costs),
            tiles=len(costs),
            peak_flops=self.spec.peak_flops_per_cg,
        )

    def _compute(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        p = self.plan.params
        pad_r = (-p.ro) % 2
        pad_c = (-p.co) % 2
        padded = np.pad(x, ((0, 0), (0, 0), (0, pad_r), (0, pad_c)))
        u = np.einsum("ij,onjk,lk->onil", WINOGRAD_G, w, WINOGRAD_G, optimize=True)
        b_, ni, h, wd = padded.shape
        th, tw = (h - 2) // 2, (wd - 2) // 2
        s = padded.strides
        tiles = np.lib.stride_tricks.as_strided(
            padded,
            shape=(b_, ni, th, tw, 4, 4),
            strides=(s[0], s[1], 2 * s[2], 2 * s[3], s[2], s[3]),
        )
        v = np.einsum("ij,bnhwjk,lk->bnhwil", WINOGRAD_B_T, tiles, WINOGRAD_B_T,
                      optimize=True)
        if self.backend == "numpy":
            m = np.einsum("onxy,bnhwxy->bohwxy", u, v, optimize=True)
        else:
            # 16 pointwise mesh GEMMs, one per transform component.
            m = np.empty((b_, p.no, th, tw, 4, 4))
            n_cols = b_ * th * tw
            for cx in range(4):
                for cy in range(4):
                    v_mat = v[..., cx, cy].transpose(1, 0, 2, 3).reshape(ni, n_cols)
                    out_mat = self._mesh_matmul(u[..., cx, cy], v_mat)
                    m[..., cx, cy] = out_mat.reshape(
                        p.no, b_, th, tw
                    ).transpose(1, 0, 2, 3)
        out_tiles = np.einsum(
            "ij,bohwjk,lk->bohwil", WINOGRAD_A_T, m, WINOGRAD_A_T, optimize=True
        )
        out = out_tiles.transpose(0, 1, 2, 4, 3, 5).reshape(b_, p.no, 2 * th, 2 * tw)
        return np.ascontiguousarray(out[:, :, : p.ro, : p.co])


def make_lowered_plan(
    algorithm: str,
    params: ConvParams,
    spec: SW26010Spec = DEFAULT_SPEC,
    blocking: Optional[GemmBlocking] = None,
    register_blocking: RegisterBlocking = PAPER_REGISTER_BLOCKING,
) -> LoweredConvPlan:
    """Construct a lowered plan by algorithm name."""
    if algorithm == "im2col":
        cls = Im2colPlan
    elif algorithm == "winograd":
        cls = WinogradPlan
    else:
        raise PlanError(f"unknown lowered algorithm {algorithm!r}")
    return cls(
        params, blocking=blocking, register_blocking=register_blocking, spec=spec
    )


def engine_for_plan(
    plan: Union[ConvPlan, LoweredConvPlan],
    spec: Optional[SW26010Spec] = None,
    backend: str = "numpy",
    stride_efficiency: float = DMA_STRIDE_EFFICIENCY,
    overlap_contention: float = OVERLAP_CONTENTION,
    fault_plan=None,
    fused_pool: int = 1,
    telemetry=None,
) -> Union[ConvolutionEngine, LoweredConvEngine]:
    """The execution engine for any plan family — the zoo's dispatch point.

    Direct plans get the full :class:`~repro.core.conv.ConvolutionEngine`
    (fault replanning, fused epilogues, filter packing); lowered plans get
    their GEMM-routed engine, which rejects the features its schedule
    cannot honor.
    """
    algorithm = getattr(plan, "algorithm", "direct")
    if algorithm == "direct":
        return ConvolutionEngine(
            plan,
            spec=spec,
            backend=backend,
            stride_efficiency=stride_efficiency,
            overlap_contention=overlap_contention,
            fault_plan=fault_plan,
            fused_pool=fused_pool,
            telemetry=telemetry,
        )
    if algorithm == "im2col":
        cls = Im2colEngine
    elif algorithm == "winograd":
        cls = WinogradEngine
    else:
        raise PlanError(f"no engine for algorithm {algorithm!r}")
    return cls(
        plan,
        spec=spec,
        backend=backend,
        stride_efficiency=stride_efficiency,
        overlap_contention=overlap_contention,
        fault_plan=fault_plan,
        fused_pool=fused_pool,
        telemetry=telemetry,
    )
