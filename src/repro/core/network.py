"""A small sequential network + SGD trainer over the swDNN layers.

This is the end-to-end "deep learning application" the library serves: a
CNN whose convolutions run through the swDNN kernels, trained with plain
SGD.  The examples use it on synthetic classification data; the tests
check that the loss actually decreases and that the gradients agree with
numeric differentiation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.layers import Layer, SoftmaxCrossEntropy

#: Per-layer gradients as the optimizer sees them: one ``name -> array``
#: dict per parameter layer, in :meth:`Sequential.parameter_layers` order.
LayerGrads = List[Dict[str, np.ndarray]]


class Sequential:
    """A stack of layers applied in order."""

    def __init__(self, layers: Sequence[Layer]):
        self.layers: List[Layer] = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameter_layers(self) -> List[Layer]:
        return [layer for layer in self.layers if layer.parameters()]

    def warm(self, input_shape: Sequence[int], batch_sizes: Sequence[int]) -> None:
        """Pre-build every shape-dependent engine for the given batch sizes.

        Runs a zeros forward pass per batch size so each layer's engine
        cache (plans, certified fast paths, packed filter layouts) is
        populated before real traffic arrives — the serve worker pool's
        warm-up.  ``input_shape`` is one sample's (C, H, W).
        """
        c, h, w = input_shape
        for b in sorted(set(int(b) for b in batch_sizes)):
            if b < 1:
                raise ValueError(f"batch sizes must be positive, got {b}")
            self.forward(np.zeros((b, c, h, w)))

    def fused(self, autotune: bool = False, plan_cache=None) -> "Sequential":
        """A fused view of this network: conv -> ReLU (-> pool) runs become
        :class:`~repro.core.fusion.FusedConvBlock` pipelines.

        Parameter tensors are shared with this network's layers (the blocks
        wrap the original :class:`~repro.core.layers.Conv2D` objects), so
        training the fused view updates the same weights.  ``autotune=True``
        plans each fused conv with :mod:`repro.tune`; ``plan_cache`` names
        the plan-cache directory (implies autotuning).
        """
        from repro.core.fusion import fuse_layers

        return Sequential(
            fuse_layers(self.layers, autotune=autotune, plan_cache=plan_cache)
        )


class GradientExchange:
    """Strategy an optimizer routes per-layer gradients through.

    Between a backward pass and the weight update there is exactly one
    place the training semantics can change without touching either the
    layers or the update rule: the gradients themselves.  That is where
    data parallelism lives — each replica's local gradients are replaced
    by the cluster-wide reduced ones — and where gradient transforms
    (clipping, compression, noise) would slot in.  :class:`SGD` calls
    :meth:`reduce` with the per-layer gradient dicts and applies whatever
    comes back.

    The default :class:`LocalExchange` is the identity, so single-node
    training is byte-for-byte what it was before this interface existed.
    """

    def reduce(self, grads: LayerGrads) -> LayerGrads:
        """Map local per-layer gradients to the ones the update applies."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class LocalExchange(GradientExchange):
    """Single-node exchange: the local gradients are the global ones."""

    def reduce(self, grads: LayerGrads) -> LayerGrads:
        return grads


class SGD:
    """Plain stochastic gradient descent with optional momentum.

    ``exchange`` routes the per-layer gradients through a
    :class:`GradientExchange` before the update; the default
    :class:`LocalExchange` applies the local gradients unchanged, which is
    classic single-node SGD.  A data-parallel trainer passes an exchange
    that swaps in the cluster-wide reduced gradients (see
    :mod:`repro.scale.cluster`), so every replica's optimizer applies the
    identical update and the replicas stay in bitwise lockstep.
    """

    def __init__(
        self,
        network: Sequential,
        lr: float = 0.05,
        momentum: float = 0.0,
        exchange: Optional[GradientExchange] = None,
    ):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.network = network
        self.lr = lr
        self.momentum = momentum
        self.exchange = exchange if exchange is not None else LocalExchange()
        self._velocity: List[dict] = [
            {name: np.zeros_like(p) for name, p in layer.parameters().items()}
            for layer in network.parameter_layers()
        ]

    def step(self) -> None:
        layers = self.network.parameter_layers()
        grads = self.exchange.reduce([layer.gradients() for layer in layers])
        for layer, velocity, layer_grads in zip(layers, self._velocity, grads):
            for name, param in layer.parameters().items():
                v = velocity[name]
                v *= self.momentum
                v -= self.lr * layer_grads[name]
                param += v
            # Parameters were mutated in place: let the layer drop any
            # memoized derived state (packed filter layouts).
            layer.notify_parameter_update()


@dataclass
class TrainResult:
    """Loss/accuracy trajectory of a training run."""

    losses: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1]

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1]


def train_classifier(
    network: Sequential,
    x: np.ndarray,
    labels: np.ndarray,
    epochs: int = 5,
    batch_size: int = 16,
    lr: float = 0.05,
    momentum: float = 0.9,
    rng: Optional[np.random.Generator] = None,
) -> TrainResult:
    """Minibatch-SGD training loop; returns the loss/accuracy trajectory."""
    if len(x) != len(labels):
        raise ValueError(f"{len(x)} samples but {len(labels)} labels")
    rng = rng or np.random.default_rng(0)
    loss_head = SoftmaxCrossEntropy()
    optimizer = SGD(network, lr=lr, momentum=momentum)
    result = TrainResult()
    n = len(x)
    for _ in range(epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        correct = 0
        batches = 0
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            xb, yb = x[idx], labels[idx]
            logits = network.forward(xb)
            loss = loss_head.forward(logits, yb)
            network.backward(loss_head.backward())
            optimizer.step()
            epoch_loss += loss
            correct += int((logits.argmax(axis=1) == yb).sum())
            batches += 1
        result.losses.append(epoch_loss / batches)
        result.accuracies.append(correct / n)
    return result


def synthetic_image_dataset(
    num_samples: int,
    channels: int,
    height: int,
    width: int,
    num_classes: int,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Separable synthetic data: class-specific spatial patterns + noise."""
    rng = rng or np.random.default_rng(0)
    prototypes = rng.standard_normal((num_classes, channels, height, width))
    labels = rng.integers(0, num_classes, size=num_samples)
    noise = rng.standard_normal((num_samples, channels, height, width))
    x = prototypes[labels] * 2.0 + noise
    return x, labels
