"""Convolution plans: the loop schedules of Algorithms 1 and 2.

A :class:`ConvPlan` turns layer parameters + blocking choices into a *tile
schedule*: the exact sequence of DMA transfers and LDM-resident GEMM updates
the CPE cluster performs.  The same schedule drives both execution modes of
:class:`repro.core.conv.ConvolutionEngine`:

* the functional mode moves real tensor data tile by tile (so the result is
  checked against the NumPy reference), and
* the timed mode charges each transfer against the Table II DMA model and
  each GEMM against the reordered-kernel pipeline timing, with double
  buffering overlapping the two.

``dma_streams()`` aggregates the schedule's traffic into the per-stream
volumes/block-sizes the performance model blends into its ``MBW``, so the
analytic model and the simulated execution see the same bytes by
construction (a property the test suite checks).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import PlanError
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC
from repro.perf.dma_model import DMAStream
from repro.perf.equations import (
    rbw_mem_ldm_batch_plan,
    rbw_mem_ldm_batch_plan_promoted,
    rbw_mem_ldm_image_plan,
    rbw_mem_ldm_image_plan_promoted,
)
from repro.perf.model import PerformanceEstimate, PerformanceModel
from repro.core.layout import (
    DS,
    LANES,
    batch_plan_block_bytes,
    filter_block_bytes,
    image_plan_block_bytes,
)
from repro.core.ldm_blocking import (
    BatchBlocking,
    ImageBlocking,
    assert_fits_in_ldm,
    batch_plan_ldm_bytes,
    choose_batch_blocking,
    choose_image_blocking,
    image_plan_ldm_bytes,
)
from repro.core.params import ConvParams
from repro.core.register_blocking import (
    PAPER_REGISTER_BLOCKING,
    RegisterBlocking,
)


@dataclass(frozen=True)
class TileTransfer:
    """One DMA transfer of a tile step."""

    tensor: str  # "input" | "filter" | "output"
    nbytes: int
    block_bytes: int
    direction: str  # "get" | "put"


@dataclass(frozen=True)
class ComputeSpec:
    """One LDM-GEMM update: out rows x cols += W(kr,kc) . input window.

    ``bb``/``bb_len`` select the batch block; ``co``/``co_len`` the output
    columns; ``ni0``/``ni_len`` the input-channel block (``ni_len = -1``
    means the full reduction); the update is
    ``out[bb:, :, ro, co:co+co_len] += W[:, ni:, kr, kc] @ x[bb:, ni:, ro+kr, co+kc : co+kc+co_len]``.
    """

    bb: int
    bb_len: int
    ro: int
    co: int
    co_len: int
    kr: int
    kc: int
    ni0: int = 0
    ni_len: int = -1


@dataclass
class TileStep:
    """One step of a plan's schedule: loads, computes, stores."""

    gets: List[TileTransfer] = field(default_factory=list)
    computes: List[ComputeSpec] = field(default_factory=list)
    puts: List[TileTransfer] = field(default_factory=list)
    flops: int = 0


class ConvPlan(abc.ABC):
    """Base class of the two loop-schedule families."""

    name: str = "abstract"
    #: Algorithm family of the zoo (see :mod:`repro.core.algorithms`); both
    #: loop-schedule families here execute the paper's direct summation.
    algorithm: str = "direct"

    def __init__(
        self,
        params: ConvParams,
        register_blocking: RegisterBlocking = PAPER_REGISTER_BLOCKING,
        spec: SW26010Spec = DEFAULT_SPEC,
    ):
        self.params = params
        self.register_blocking = register_blocking
        self.spec = spec
        register_blocking.check_feasible(spec)
        self._streams_cache: Optional[List[DMAStream]] = None
        self._schedule_cache: dict = {}

    # -- schedule -------------------------------------------------------------

    @abc.abstractmethod
    def tile_schedule(self, coalesced: bool = False) -> Iterator[TileStep]:
        """Yield the plan's tile steps in execution order.

        ``coalesced=True`` merges each step's per-(kr, kc) transfers into
        one aggregate transfer per tensor (identical bytes, identical block
        sizes, so identical DMA time) and omits the per-update
        :class:`ComputeSpec` list — the fast path the timed evaluation and
        the traffic aggregation use.  The functional engine always walks
        the full schedule.
        """

    def compiled_schedule(self, coalesced: bool = False) -> Tuple[TileStep, ...]:
        """The tile schedule, materialized once and cached.

        Generating a schedule walks the full blocked loop nest in Python;
        for repeated executions of the same plan (training, sweeps, the
        handle's plan cache) that regeneration dominates, so the first call
        compiles the schedule to a tuple and later calls reuse it.  Callers
        must treat the cached steps as immutable.
        """
        key = bool(coalesced)
        cached = self._schedule_cache.get(key)
        if cached is None:
            cached = tuple(self.tile_schedule(coalesced=key))
            self._schedule_cache[key] = cached
        return cached

    def signature(self) -> Tuple:
        """Hashable identity of the schedule this plan generates.

        Two plans with equal signatures produce identical tile schedules
        and model inputs — the key the timing memoization layers use.
        """
        return (
            self.name,
            self.params,
            getattr(self, "blocking", None),
            self.register_blocking,
            self.spec,
        )

    @abc.abstractmethod
    def ldm_regions(self) -> List[Tuple[str, int]]:
        """Per-CPE LDM regions the plan allocates."""

    @abc.abstractmethod
    def rbw_mem(self) -> float:
        """Required MEM->LDM bandwidth (Eq. 1 or Eq. 2), bytes/s."""

    def validate(self) -> None:
        """Check LDM feasibility (raises on overflow)."""
        assert_fits_in_ldm(self.ldm_regions(), self.spec)

    # -- traffic and modeling ---------------------------------------------------

    def dma_streams(self) -> List[DMAStream]:
        """Aggregate the schedule's DMA traffic per (tensor, direction).

        The block size reported per stream is the byte-weighted dominant
        block of that stream (steady-state tiles dominate edge tiles).
        """
        if self._streams_cache is not None:
            return self._streams_cache
        totals: dict = {}
        for step in self.compiled_schedule(coalesced=True):
            for tr in list(step.gets) + list(step.puts):
                key = (tr.tensor, tr.direction)
                bytes_so_far, weighted_block = totals.get(key, (0, 0.0))
                totals[key] = (
                    bytes_so_far + tr.nbytes,
                    weighted_block + tr.nbytes * tr.block_bytes,
                )
        streams = []
        for (tensor, direction), (nbytes, weighted) in sorted(totals.items()):
            if nbytes == 0:
                continue
            block = max(1, int(round(weighted / nbytes)))
            streams.append(
                DMAStream(
                    name=f"{tensor}.{direction}",
                    bytes_moved=float(nbytes),
                    block_bytes=block,
                    direction=direction,
                )
            )
        if not streams:
            raise PlanError("plan schedule produced no DMA traffic")
        self._streams_cache = streams
        return streams

    def total_dma_bytes(self) -> int:
        return int(sum(s.bytes_moved for s in self.dma_streams()))

    def estimate(self, model: Optional[PerformanceModel] = None) -> PerformanceEstimate:
        """Model this plan with the three-level estimator of Fig. 2."""
        from repro.perf.dma_model import blended_mbw
        from repro.perf.equations import rbw_ldm_reg_gemm_simd

        model = model or PerformanceModel(self.spec)
        return PerformanceEstimate(
            plan=self.name,
            peak_flops=self.spec.peak_flops_per_cg,
            execution_efficiency=model._ee(self.params.ni),
            rbw_mem=self.rbw_mem(),
            mbw_mem=blended_mbw(self.dma_streams()),
            rbw_reg=rbw_ldm_reg_gemm_simd(
                self.register_blocking.rb_b,
                self.register_blocking.rb_no,
                peak_flops=self.spec.peak_flops_per_cpe,
            ),
            mbw_reg=self.spec.ldm_bandwidth,
        )

    def describe(self) -> str:
        return f"{self.name} for {self.params.describe()}"


class ImageSizeAwarePlan(ConvPlan):
    """Algorithm 1: block on batch (bB) and output columns (bCo).

    Loop order: batch blocks -> output rows -> column blocks -> (kr, kc).
    Input and filter tiles stream per (kr, kc) unless promoted; the output
    tile accumulates in LDM and is stored once per column block.
    """

    name = "image-size-aware"

    def __init__(
        self,
        params: ConvParams,
        blocking: Optional[ImageBlocking] = None,
        register_blocking: RegisterBlocking = PAPER_REGISTER_BLOCKING,
        spec: SW26010Spec = DEFAULT_SPEC,
    ):
        super().__init__(params, register_blocking, spec)
        self.blocking = blocking or choose_image_blocking(params, spec)
        self.validate()

    def ldm_regions(self) -> List[Tuple[str, int]]:
        return image_plan_ldm_bytes(self.params, self.blocking, self.spec)

    def rbw_mem(self) -> float:
        if self.blocking.promote_input:
            return rbw_mem_ldm_image_plan_promoted(
                self.blocking.b_co,
                self.blocking.b_b,
                self.params.no,
                self.params.kc,
                peak_flops=self.spec.peak_flops_per_cg,
            )
        return rbw_mem_ldm_image_plan(
            self.blocking.b_co,
            self.blocking.b_b,
            self.params.no,
            peak_flops=self.spec.peak_flops_per_cg,
        )

    def tile_schedule(self, coalesced: bool = False) -> Iterator[TileStep]:
        p, blk = self.params, self.blocking
        flt_block = filter_block_bytes(p.no)
        for bb in range(0, p.b, blk.b_b):
            bb_len = min(blk.b_b, p.b - bb)
            for ro in range(p.ro):
                for co in range(0, p.co, blk.b_co):
                    co_len = min(blk.b_co, p.co - co)
                    in_block = image_plan_block_bytes(co_len)
                    step = TileStep()
                    b_ni = blk.ni_block(p.ni)
                    ni_blocks = [
                        (ni0, min(b_ni, p.ni - ni0)) for ni0 in range(0, p.ni, b_ni)
                    ]
                    if blk.promote_input:
                        # One halo-widened input row per kr covers all kc.
                        in_cols = co_len + p.kc - 1
                        in_halo_block = image_plan_block_bytes(in_cols)
                        in_count = p.kr
                    else:
                        in_cols = co_len
                        in_halo_block = in_block
                        in_count = p.kr * p.kc
                    flt_kc = p.kc if blk.promote_filter else 1
                    flt_count = p.kr if blk.promote_filter else p.kr * p.kc
                    if coalesced:
                        step.gets.append(
                            TileTransfer(
                                "input",
                                p.ni * bb_len * in_cols * DS * in_count,
                                in_halo_block,
                                "get",
                            )
                        )
                        step.gets.append(
                            TileTransfer(
                                "filter",
                                p.ni * p.no * flt_kc * DS * flt_count,
                                flt_block,
                                "get",
                            )
                        )
                    else:
                        for ni0, ni_len in ni_blocks:
                            for _ in range(in_count):
                                step.gets.append(
                                    TileTransfer(
                                        "input",
                                        ni_len * bb_len * in_cols * DS,
                                        in_halo_block,
                                        "get",
                                    )
                                )
                            for _ in range(flt_count):
                                step.gets.append(
                                    TileTransfer(
                                        "filter",
                                        ni_len * p.no * flt_kc * DS,
                                        flt_block,
                                        "get",
                                    )
                                )
                            for kr in range(p.kr):
                                for kc in range(p.kc):
                                    step.computes.append(
                                        ComputeSpec(
                                            bb=bb,
                                            bb_len=bb_len,
                                            ro=ro,
                                            co=co,
                                            co_len=co_len,
                                            kr=kr,
                                            kc=kc,
                                            ni0=ni0,
                                            ni_len=ni_len,
                                        )
                                    )
                    step.flops = 2 * bb_len * co_len * p.no * p.ni * p.kr * p.kc
                    step.puts.append(
                        TileTransfer(
                            "output", bb_len * p.no * co_len * DS, in_block, "put"
                        )
                    )
                    yield step


class BatchSizeAwarePlan(ConvPlan):
    """Algorithm 2: keep the whole batch, block output columns.

    Loop order: column blocks -> output rows -> kr -> input columns.  Each
    input column slab (Ni x B) is loaded once and contributes to every
    output column ``cCo = cCi - kc`` inside the block; filters stream per
    (kr) when promoted, per (kr, kc) otherwise.
    """

    name = "batch-size-aware"

    def __init__(
        self,
        params: ConvParams,
        blocking: Optional[BatchBlocking] = None,
        register_blocking: RegisterBlocking = PAPER_REGISTER_BLOCKING,
        spec: SW26010Spec = DEFAULT_SPEC,
    ):
        super().__init__(params, register_blocking, spec)
        self.blocking = blocking or choose_batch_blocking(params, spec)
        self.validate()

    def ldm_regions(self) -> List[Tuple[str, int]]:
        return batch_plan_ldm_bytes(self.params, self.blocking, self.spec)

    def rbw_mem(self) -> float:
        if self.blocking.promote_filter:
            return rbw_mem_ldm_batch_plan_promoted(
                self.params.kc,
                self.params.no,
                self.params.b,
                self.blocking.b_co,
                peak_flops=self.spec.peak_flops_per_cg,
            )
        return rbw_mem_ldm_batch_plan(
            self.params.kc,
            self.params.no,
            self.params.b,
            peak_flops=self.spec.peak_flops_per_cg,
        )

    def tile_schedule(self, coalesced: bool = False) -> Iterator[TileStep]:
        p, blk = self.params, self.blocking
        in_block = batch_plan_block_bytes(p.b)
        flt_block = filter_block_bytes(p.no)
        for co_start in range(0, p.co, blk.b_co):
            co_len = min(blk.b_co, p.co - co_start)
            # Every block sees co_len + Kc - 1 input columns (Ci = Co+Kc-1
            # guarantees no clipping) and exactly co_len * Kc (ci, kc)
            # update pairs.
            n_columns = co_len + p.kc - 1
            n_updates = co_len * p.kc
            for ro in range(p.ro):
                for kr in range(p.kr):
                    if blk.promote_filter:
                        head = TileStep()
                        head.gets.append(
                            TileTransfer(
                                "filter", p.ni * p.no * p.kc * DS, flt_block, "get"
                            )
                        )
                        yield head
                    if coalesced:
                        step = TileStep()
                        step.gets.append(
                            TileTransfer(
                                "input", p.ni * p.b * n_columns * DS, in_block, "get"
                            )
                        )
                        if not blk.promote_filter:
                            step.gets.append(
                                TileTransfer(
                                    "filter",
                                    p.ni * p.no * n_updates * DS,
                                    flt_block,
                                    "get",
                                )
                            )
                        step.flops = 2 * p.b * p.no * p.ni * n_updates
                        yield step
                    else:
                        b_ni = blk.ni_block(p.ni)
                        ni_blocks = [
                            (ni0, min(b_ni, p.ni - ni0))
                            for ni0 in range(0, p.ni, b_ni)
                        ]
                        for ci in range(co_start, co_start + n_columns):
                            step = TileStep()
                            for ni0, ni_len in ni_blocks:
                                step.gets.append(
                                    TileTransfer(
                                        "input", ni_len * p.b * DS, in_block, "get"
                                    )
                                )
                                for kc in range(p.kc):
                                    co = ci - kc
                                    if co_start <= co < co_start + co_len:
                                        if not blk.promote_filter:
                                            step.gets.append(
                                                TileTransfer(
                                                    "filter",
                                                    ni_len * p.no * DS,
                                                    flt_block,
                                                    "get",
                                                )
                                            )
                                        step.computes.append(
                                            ComputeSpec(
                                                bb=0,
                                                bb_len=p.b,
                                                ro=ro,
                                                co=co,
                                                co_len=1,
                                                kr=kr,
                                                kc=kc,
                                                ni0=ni0,
                                                ni_len=ni_len,
                                            )
                                        )
                                        step.flops += 2 * p.b * p.no * ni_len
                            yield step
                # Output stored once per (column block, row).
                tail = TileStep()
                tail.puts.append(
                    TileTransfer(
                        "output", co_len * p.b * p.no * DS, in_block, "put"
                    )
                )
                yield tail


def make_plan(
    kind: str,
    params: ConvParams,
    spec: SW26010Spec = DEFAULT_SPEC,
    **kwargs,
) -> ConvPlan:
    """Construct a plan by family name ("image" or "batch")."""
    if kind in ("image", "image-size-aware"):
        return ImageSizeAwarePlan(params, spec=spec, **kwargs)
    if kind in ("batch", "batch-size-aware"):
        return BatchSizeAwarePlan(params, spec=spec, **kwargs)
    raise PlanError(f"unknown plan kind {kind!r}")
