"""Register blocking plans (Section V-B).

Two families exist:

* the *direct-convolution* register plan blocks the spatial (Ci, Ri)
  dimensions and keeps an ``rbKr x rbKc`` filter patch in registers — its
  required LDM->REG bandwidth (Eq. 3) is pinned by the network's filter
  size, which is why the paper rejects it;
* the *blocked-GEMM* plan blocks the (B, No) dimensions — its bandwidth
  (Eq. 4, and Eq. 5 under the SIMD splat layout) is free of network
  parameters, and the register file bounds the feasible sizes.

Feasibility against the 32-register file: an ``(rbB, rbNo)`` plan needs
``rbB/4`` input vectors, ``rbNo`` splatted filter vectors and
``(rbB/4) * rbNo`` accumulators, plus a handful of address/loop registers.
The paper's choice (16, 4) uses 4 + 4 + 16 = 24 data registers and pushes
Eq. 5 to 23.2 GB/s, half the 46.4 GB/s LDM->REG bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.common.errors import RegisterPressureError
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC
from repro.perf.equations import (
    rbw_ldm_reg_direct_conv,
    rbw_ldm_reg_gemm,
    rbw_ldm_reg_gemm_simd,
)

#: Registers reserved for addresses, loop counters and temporaries.
RESERVED_REGISTERS = 6


@dataclass(frozen=True)
class RegisterBlocking:
    """A (rbB, rbNo) blocked-GEMM register plan."""

    rb_b: int
    rb_no: int

    def __post_init__(self) -> None:
        if self.rb_b < 1 or self.rb_no < 1:
            raise ValueError("register block dimensions must be positive")
        if self.rb_b % 4 != 0:
            raise ValueError(
                f"rbB must be a multiple of the 4-lane vector width, got {self.rb_b}"
            )

    @property
    def input_vectors(self) -> int:
        """Vector registers holding input pixels (4 batch elements each)."""
        return self.rb_b // 4

    @property
    def filter_vectors(self) -> int:
        """Vector registers holding splatted filter elements."""
        return self.rb_no

    @property
    def accumulators(self) -> int:
        return self.input_vectors * self.rb_no

    @property
    def registers_needed(self) -> int:
        return (
            self.input_vectors
            + self.filter_vectors
            + self.accumulators
            + RESERVED_REGISTERS
        )

    def check_feasible(self, spec: SW26010Spec = DEFAULT_SPEC) -> None:
        """Raise :class:`RegisterPressureError` if the plan overflows."""
        if self.registers_needed > spec.vector_registers:
            raise RegisterPressureError(
                f"register blocking ({self.rb_b}, {self.rb_no}) needs "
                f"{self.registers_needed} registers, CPE has "
                f"{spec.vector_registers}"
            )

    def is_feasible(self, spec: SW26010Spec = DEFAULT_SPEC) -> bool:
        return self.registers_needed <= spec.vector_registers

    def rbw(self, spec: SW26010Spec = DEFAULT_SPEC) -> float:
        """Eq. 4 bandwidth (bytes/s) without the SIMD splat penalty."""
        return rbw_ldm_reg_gemm(
            self.rb_b, self.rb_no, peak_flops=spec.peak_flops_per_cpe
        )

    def rbw_simd(self, spec: SW26010Spec = DEFAULT_SPEC) -> float:
        """Eq. 5 bandwidth (bytes/s) under the vldde splat layout."""
        return rbw_ldm_reg_gemm_simd(
            self.rb_b, self.rb_no, peak_flops=spec.peak_flops_per_cpe
        )

    def fma_per_inner_step(self) -> int:
        """Vector FMAs per (A-set, B-set) load: (rbB/4) * rbNo (16 for 16x4)."""
        return self.input_vectors * self.rb_no


#: The paper's configuration (Section V-C): rbB=16, rbNo=4 -> 23.2 GB/s.
PAPER_REGISTER_BLOCKING = RegisterBlocking(rb_b=16, rb_no=4)


@dataclass(frozen=True)
class DirectConvRegisterBlocking:
    """The rejected spatial register plan (Eq. 3), kept for the ablation."""

    rb_ri: int
    rb_ci: int
    rb_kr: int
    rb_kc: int

    def __post_init__(self) -> None:
        if min(self.rb_ri, self.rb_ci, self.rb_kr, self.rb_kc) < 1:
            raise ValueError("register block dimensions must be positive")
        if self.rb_ci < self.rb_kc or self.rb_ri < self.rb_kr:
            raise ValueError(
                f"spatial block {self.rb_ri}x{self.rb_ci} smaller than the "
                f"filter patch {self.rb_kr}x{self.rb_kc}"
            )

    @property
    def rb_ro(self) -> int:
        return self.rb_ri - self.rb_kr + 1

    @property
    def rb_co(self) -> int:
        return self.rb_ci - self.rb_kc + 1

    @property
    def registers_needed(self) -> int:
        inputs = -(-self.rb_ri * self.rb_ci // 4)
        outputs = -(-self.rb_ro * self.rb_co // 4)
        filters = -(-self.rb_kr * self.rb_kc // 4)
        return inputs + outputs + filters + RESERVED_REGISTERS

    def is_feasible(self, spec: SW26010Spec = DEFAULT_SPEC) -> bool:
        return self.registers_needed <= spec.vector_registers

    def rbw(self, spec: SW26010Spec = DEFAULT_SPEC) -> float:
        """Eq. 3 bandwidth (bytes/s)."""
        return rbw_ldm_reg_direct_conv(
            self.rb_ri,
            self.rb_ci,
            self.rb_kr,
            self.rb_kc,
            peak_flops=spec.peak_flops_per_cpe,
        )


def enumerate_gemm_blockings(
    spec: SW26010Spec = DEFAULT_SPEC,
    max_rb_b: int = 64,
    max_rb_no: int = 16,
) -> Iterator[RegisterBlocking]:
    """All register-feasible (rbB, rbNo) plans within the search bounds."""
    for rb_b in range(4, max_rb_b + 1, 4):
        for rb_no in range(1, max_rb_no + 1):
            plan = RegisterBlocking(rb_b=rb_b, rb_no=rb_no)
            if plan.is_feasible(spec):
                yield plan


def choose_register_blocking(
    spec: SW26010Spec = DEFAULT_SPEC,
    simd: bool = True,
) -> RegisterBlocking:
    """Pick the feasible (rbB, rbNo) minimizing the Eq. 5 (or Eq. 4) RBW.

    Ties break toward more accumulators (more work per loop overhead).
    With the default spec this returns the paper's (16, 4).
    """
    candidates: List[RegisterBlocking] = list(enumerate_gemm_blockings(spec))
    if not candidates:
        raise RegisterPressureError("no feasible register blocking exists")

    def key(plan: RegisterBlocking):
        rbw = plan.rbw_simd(spec) if simd else plan.rbw(spec)
        return (rbw, -plan.accumulators)

    return min(candidates, key=key)
