"""The convolution execution engine: functional + timed runs of a plan.

Two concerns share one tile schedule (see :mod:`repro.core.plans`):

* **Functional**: each :class:`~repro.core.plans.ComputeSpec` is executed
  as a real GEMM update — with NumPy directly ("numpy" backend) or through
  the register-communication mesh schedule ("mesh" backend) — so a plan's
  output is compared against :func:`repro.core.reference.conv2d_reference`.
* **Timed**: each tile charges its DMA transfers against the Table II
  bandwidth curve (with the calibrated stride derate) and its GEMM against
  the reordered dual-pipeline kernel's measured cycles-per-FMA; the double
  buffering of Section IV-A overlaps the two on a two-deep pipeline
  timeline.

The timed path never touches tensor data, so parameter sweeps over the
100+ configurations of Figs. 7/9 run in milliseconds per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.common.errors import CPEFaultError, PlanError, SimulationError
from repro.hw.dma import DMABandwidthModel
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC
from repro.telemetry import current_telemetry
from repro.perf.dma_model import DMA_STRIDE_EFFICIENCY
from repro.perf.model import _measured_ee
from repro.core.params import ConvParams
from repro.core.plans import ConvPlan, TileStep
from repro.core.reference import conv2d_reference
from repro.core.register_comm import MeshGemm


@dataclass
class TimingReport:
    """Timing of one plan execution on one core group."""

    seconds: float
    flops: int
    dma_seconds: float
    compute_seconds: float
    bytes_get: int
    bytes_put: int
    tiles: int
    peak_flops: float

    @property
    def gflops(self) -> float:
        """Sustained double-precision Gflop/s."""
        if self.seconds <= 0:
            return 0.0
        return self.flops / self.seconds / 1e9

    @property
    def efficiency(self) -> float:
        """Fraction of the core group's peak."""
        if self.seconds <= 0:
            return 0.0
        return (self.flops / self.seconds) / self.peak_flops

    @property
    def overlap_fraction(self) -> float:
        """How much of the serial DMA+compute time the overlap hid."""
        serial = self.dma_seconds + self.compute_seconds
        if serial <= 0:
            return 0.0
        return max(0.0, (serial - self.seconds) / serial)

    @property
    def effective_dma_bandwidth(self) -> float:
        """Achieved MEM<->LDM bytes/s over the busy DMA time."""
        if self.dma_seconds <= 0:
            return 0.0
        return (self.bytes_get + self.bytes_put) / self.dma_seconds


@dataclass
class _StepCost:
    get_seconds: float
    compute_seconds: float
    put_seconds: float
    flops: int
    bytes_get: int
    bytes_put: int


#: Functional compute backends, slowest-but-deepest first: "mesh" simulates
#: the Fig. 3 bus protocol for every tile GEMM; "mesh-fast" verifies the
#: protocol once per tile-GEMM signature and then runs the vectorized fast
#: path (bit-identical results, identical statistics); "numpy" computes the
#: updates directly without touching the mesh.
BACKENDS = ("numpy", "mesh", "mesh-fast")

#: Memoized timed plan walks: plan signature + timing knobs -> TimingReport.
#: Repeated layers (training), repeated strips (chip evaluation) and sweep
#: re-runs hit this instead of re-walking their schedules.
_TIMING_CACHE: Dict[Tuple, TimingReport] = {}

#: Safety valve so pathological sweeps cannot grow the cache unboundedly.
_TIMING_CACHE_MAX = 4096


def clear_timing_cache() -> None:
    """Drop every memoized :meth:`ConvolutionEngine.evaluate` result."""
    _TIMING_CACHE.clear()


#: Fraction of the DMA/compute overlap that LDM-port contention gives back.
#: DMA descriptors write tiles through the same LDM ports the compute
#: kernel's vector loads use, so overlapped transfers stall the pipelines
#: part of the time.  Calibrated against the measured column of Table III
#: (the paper's own model captures the same effect with its squared
#: bandwidth derating); the double-buffering ablation bench sweeps it.
OVERLAP_CONTENTION = 0.5


@dataclass(frozen=True)
class TileInterval:
    """Scheduled (get, compute, put) intervals of one tile, in seconds.

    The single source of truth for the double-buffered recurrence: the
    timed evaluation, the Gantt tracer (:mod:`repro.perf.trace`) and the
    telemetry span export all consume these intervals, so the three views
    of a schedule can never drift apart.
    """

    index: int
    get_start: float
    get_end: float
    compute_start: float
    compute_end: float
    put_start: float
    put_end: float

    @property
    def get_seconds(self) -> float:
        return self.get_end - self.get_start

    @property
    def compute_seconds(self) -> float:
        return self.compute_end - self.compute_start

    @property
    def put_seconds(self) -> float:
        return self.put_end - self.put_start


def pipeline_intervals(costs: Iterable[_StepCost]) -> Iterable[TileInterval]:
    """The double-buffered schedule of a cost stream, tile by tile.

    Gets and puts run on separate descriptor queues (every CPE issues its
    own DMA requests), so a store-back never blocks the next tile's
    prefetch; a tile's load waits for the ping/pong buffer to free (the
    compute of two tiles earlier).  Zero-length puts are pinned to the
    tile's compute end (there is nothing to schedule).
    """
    get_free = 0.0
    put_free = 0.0
    comp_free = 0.0
    comp_done_history: List[float] = []
    for i, cost in enumerate(costs):
        buffer_ready = comp_done_history[i - 2] if i >= 2 else 0.0
        get_start = max(get_free, buffer_ready)
        get_done = get_start + cost.get_seconds
        comp_start = max(get_done, comp_free)
        comp_done = comp_start + cost.compute_seconds
        if cost.put_seconds > 0:
            put_start = max(put_free, comp_done)
            put_end = put_start + cost.put_seconds
            put_free = put_end
        else:
            put_start = put_end = comp_done
        get_free = get_done
        comp_free = comp_done
        comp_done_history.append(comp_done)
        yield TileInterval(
            index=i,
            get_start=get_start,
            get_end=get_done,
            compute_start=comp_start,
            compute_end=comp_done,
            put_start=put_start,
            put_end=put_end,
        )


def _pipeline_timeline(
    costs: Iterable[_StepCost], contention: float = OVERLAP_CONTENTION
) -> Tuple[float, float, float]:
    """Double-buffered timeline: returns (total, dma_busy, compute_busy).

    Folds :func:`pipeline_intervals` down to totals.  The single memory
    interface is enforced as a throughput bound: the whole layer can
    finish no faster than the serial sum of all transfer times.
    """
    if not 0.0 <= contention <= 1.0:
        raise ValueError(f"contention must be in [0, 1], got {contention}")
    end_get = end_put = end_comp = 0.0
    dma_busy = 0.0
    comp_busy = 0.0
    for interval in pipeline_intervals(costs):
        end_get = interval.get_end
        end_comp = interval.compute_end
        end_put = max(end_put, interval.put_end)
        dma_busy += interval.get_seconds + interval.put_seconds
        comp_busy += interval.compute_seconds
    # Shared memory interface: gets and puts cannot truly run concurrently
    # at full bandwidth, so the interface's serial busy time lower-bounds
    # the layer.
    total = max(end_get, end_put, end_comp, dma_busy)
    # LDM-port contention: a fraction of the overlapped time is not actually
    # hidden because DMA writes and kernel loads share the LDM ports.
    hidden = max(0.0, dma_busy + comp_busy - total)
    total += contention * hidden
    return total, dma_busy, comp_busy


def effective_mesh_size(mesh_size: int, fenced) -> int:
    """Largest usable square submesh when some CPEs are fenced off.

    Dropping every mesh row (or column — whichever set is smaller) that
    contains a fenced CPE leaves a fully healthy rectangular region at least
    ``mesh_size - dropped`` on a side.  Of the sizes that fit, the largest
    *divisor* of the original mesh size is chosen: any operand that divided
    into the full mesh's blocks also divides into the submesh's, so the same
    tile schedule replays on the smaller mesh without re-planning shapes.
    Returns 0 when no healthy submesh exists.
    """
    if not fenced:
        return mesh_size
    rows = {r for r, _ in fenced}
    cols = {c for _, c in fenced}
    bound = mesh_size - min(len(rows), len(cols))
    for size in range(mesh_size, 0, -1):
        if size <= bound and mesh_size % size == 0:
            return size
    return 0


class ConvolutionEngine:
    """Executes a convolution plan on one simulated core group.

    With a :class:`repro.faults.FaultPlan` attached the engine runs the
    degraded machine: DMA time is charged at the derated bandwidth, and if
    the plan fences CPEs the mesh backends *replan around them* — the
    register-communication GEMM executes on the largest healthy square
    submesh (see :func:`effective_mesh_size`) with compute time charged for
    the surviving CPEs only, instead of aborting the layer.
    """

    def __init__(
        self,
        plan: ConvPlan,
        spec: Optional[SW26010Spec] = None,
        backend: str = "numpy",
        stride_efficiency: float = DMA_STRIDE_EFFICIENCY,
        overlap_contention: float = OVERLAP_CONTENTION,
        fault_plan=None,
        fused_pool: int = 1,
        telemetry=None,
    ):
        if backend not in BACKENDS:
            raise PlanError(f"unknown compute backend {backend!r}")
        self.plan = plan
        self.spec = spec or plan.spec
        self.backend = backend
        self.stride_efficiency = stride_efficiency
        self.overlap_contention = overlap_contention
        self.fault_plan = fault_plan
        #: Observability session (captured ambient when not passed); the
        #: disabled default dispatches to shared no-op singletons.
        self.telemetry = telemetry if telemetry is not None else current_telemetry()
        if fused_pool < 1:
            raise PlanError(f"fused_pool must be >= 1, got {fused_pool}")
        if fused_pool > 1:
            p = plan.params
            if p.ro % fused_pool != 0 or p.co % fused_pool != 0:
                raise PlanError(
                    f"fused {fused_pool}x{fused_pool} pooling does not divide "
                    f"the {p.ro}x{p.co} output"
                )
            # The fused epilogue holds a pooled-row accumulator in LDM (the
            # output tile averaged down by s^2) on top of the plan's own
            # regions; the combined footprint must still fit.
            from repro.core.ldm_blocking import assert_fits_in_ldm

            regions = plan.ldm_regions()
            out_bytes = sum(n for name, n in regions if name.startswith("output"))
            pool_bytes = -(-out_bytes // (fused_pool * fused_pool))
            assert_fits_in_ldm(
                regions + [("pool.accumulator", pool_bytes)], self.spec
            )
        self.fused_pool = fused_pool
        self._dma_model = DMABandwidthModel(alignment=self.spec.dma_alignment)
        self._step_cost_cache: Dict[Tuple, _StepCost] = {}
        # Memoized weight-layout packing (see run(filter_version=...)): one
        # contiguous (No, bNi) slice per distinct (kr, kc, ni-block) the
        # schedule touches, valid for one (filter tensor, version) pair.
        self._filter_pack: Dict[Tuple[int, int, int], np.ndarray] = {}
        self._filter_pack_token: Optional[Tuple[int, int]] = None
        self._filter_pack_w: Optional[np.ndarray] = None
        self._mesh_gemm: Optional[MeshGemm] = None
        self.mesh_size = self.spec.mesh_size
        self._effective_cpes = self.spec.cpes_per_group
        if fault_plan is not None:
            fenced = fault_plan.fenced(self.spec.mesh_size)
            if fenced:
                self.mesh_size = effective_mesh_size(self.spec.mesh_size, fenced)
                if self.mesh_size < 1:
                    raise CPEFaultError(
                        f"no healthy submesh remains: {len(fenced)} of "
                        f"{self.spec.cpes_per_group} CPEs fenced"
                    )
                self._effective_cpes = self.mesh_size * self.mesh_size
                if self.mesh_size != self.spec.mesh_size:
                    fault_plan.ledger.record(
                        "engine",
                        "replan",
                        f"replanned around {len(fenced)} fenced CPE(s): "
                        f"{self.spec.mesh_size}x{self.spec.mesh_size} mesh -> "
                        f"{self.mesh_size}x{self.mesh_size}",
                    )
        if backend in ("mesh", "mesh-fast"):
            mode = "session" if backend == "mesh-fast" else "full"
            mesh_spec = (
                self.spec
                if self.mesh_size == self.spec.mesh_size
                else self.spec.shrunk(self.mesh_size)
            )
            # The replanned submesh is built fence-free: the fenced CPEs
            # were excluded by shrinking, the survivors are healthy.
            gemm_faults = None if mesh_spec is not self.spec else fault_plan
            self._mesh_gemm = MeshGemm(
                spec=mesh_spec,
                mode=mode,
                fault_plan=gemm_faults,
                telemetry=self.telemetry,
            )
        if self.telemetry.enabled:
            # The plan's declared LDM footprint is the high-water mark every
            # tile reaches (regions are allocated up front on real hardware).
            self.telemetry.counters.record_max(
                "ldm.plan_regions_bytes", sum(n for _, n in plan.ldm_regions())
            )

    # -- timing -----------------------------------------------------------------

    def _transfer_seconds(self, nbytes: int, block: int, direction: str) -> float:
        bw = self._dma_model.bandwidth(
            block, direction, aligned=self._dma_model.is_aligned(block)
        )
        if self.fault_plan is not None:
            bw *= self.fault_plan.dma_bandwidth_factor
        return nbytes / (bw * self.stride_efficiency)

    def _compute_seconds(self, flops: int) -> float:
        """Time for the CPE cluster to execute ``flops`` through the kernel.

        Per-CPE vector FMAs divided by the reordered kernel's simulated
        FMA-per-cycle rate — the execution efficiency for Ni/8 iterations of
        the plan's *register blocking* shape (``rbB/4`` input vectors x
        ``rbNo`` splat vectors).  The paper's (16, 4) blocking reproduces
        the Section VI-B numbers; the autotuner may select other shapes,
        whose pipeline efficiency is simulated the same way.
        """
        if flops == 0:
            return 0.0
        ni = self.plan.params.ni
        blocking = getattr(self.plan, "blocking", None)
        if blocking is not None and hasattr(blocking, "ni_block"):
            ni = blocking.ni_block(ni)
        iterations = max(1, -(-ni // 8))
        rb = self.plan.register_blocking
        ee = _measured_ee(iterations, rb.rb_b // 4, rb.rb_no)
        # Fenced CPEs shrink the cluster: the surviving submesh carries the
        # whole layer's flops.
        vfmas_per_cpe = flops / (
            self._effective_cpes * self.spec.flops_per_cycle
        )
        cycles = vfmas_per_cpe / ee
        return self.spec.cycles_to_seconds(cycles)

    def _step_cost(self, step: TileStep) -> _StepCost:
        """Cost of one tile step, memoized on its transfer/flop signature.

        Steady-state tiles repeat the same transfers thousands of times per
        layer; pricing each distinct (gets, puts, flops) combination once
        removes the dominant Python cost of a timed walk.
        """
        key = (tuple(step.gets), tuple(step.puts), step.flops)
        cached = self._step_cost_cache.get(key)
        if cached is not None:
            return cached
        get_s = sum(
            self._transfer_seconds(t.nbytes, t.block_bytes, "get") for t in step.gets
        )
        # A fused s x s pooling epilogue averages each output tile down in
        # LDM before its DMA put: 1/s^2 of the bytes move, in runs 1/s as
        # long (pooled rows are co/s elements).
        s = self.fused_pool
        if s > 1:
            puts = [
                (-(-t.nbytes // (s * s)), max(1, t.block_bytes // s))
                for t in step.puts
            ]
        else:
            puts = [(t.nbytes, t.block_bytes) for t in step.puts]
        put_s = sum(
            self._transfer_seconds(nbytes, block, "put") for nbytes, block in puts
        )
        cost = _StepCost(
            get_seconds=get_s,
            compute_seconds=self._compute_seconds(step.flops),
            put_seconds=put_s,
            flops=step.flops,
            bytes_get=sum(t.nbytes for t in step.gets),
            bytes_put=sum(nbytes for nbytes, _ in puts),
        )
        self._step_cost_cache[key] = cost
        return cost

    def _timing_key(self) -> Tuple:
        """Memoization key for a timed walk of this engine's schedule.

        Beyond the plan signature and the timing knobs, the key carries the
        fault plan's *standing degradations* — the DMA bandwidth derate and
        the effective mesh size left after fencing — so a timing cached on a
        healthy chip is never reused for a degraded one (or vice versa).
        """
        degraded_bw = (
            self.fault_plan.dma_bandwidth_factor if self.fault_plan is not None else 1.0
        )
        return (
            self.plan.signature(),
            self.spec,
            self.stride_efficiency,
            self.overlap_contention,
            degraded_bw,
            self.mesh_size,
            self._effective_cpes,
            self.fused_pool,
        )

    def evaluate(self) -> TimingReport:
        """Timed walk of the schedule (no tensor data is touched).

        Results are memoized process-wide on the plan signature and the
        engine's timing knobs, so re-timing the same plan (chip strips,
        sweeps, repeated training layers) costs a dictionary lookup.
        """
        key = self._timing_key()
        cached = _TIMING_CACHE.get(key)
        if cached is not None:
            self._count_evaluation(cached, cache_hit=True)
            return replace(cached)
        costs = []
        flops = 0
        bytes_get = 0
        bytes_put = 0
        tiles = 0
        for step in self.plan.compiled_schedule(coalesced=True):
            cost = self._step_cost(step)
            costs.append(cost)
            flops += cost.flops
            bytes_get += cost.bytes_get
            bytes_put += cost.bytes_put
            tiles += 1
        total, dma_busy, comp_busy = _pipeline_timeline(costs, self.overlap_contention)
        expected = self.plan.params.flops()
        if flops != expected:
            raise SimulationError(
                f"schedule flop count {flops} does not cover the layer "
                f"({expected}); the plan's tiling is incomplete"
            )
        report = TimingReport(
            seconds=total,
            flops=flops,
            dma_seconds=dma_busy,
            compute_seconds=comp_busy,
            bytes_get=bytes_get,
            bytes_put=bytes_put,
            tiles=tiles,
            peak_flops=self.spec.peak_flops_per_cg,
        )
        if len(_TIMING_CACHE) >= _TIMING_CACHE_MAX:
            _TIMING_CACHE.clear()
        _TIMING_CACHE[key] = report
        self._count_evaluation(report, cache_hit=False)
        return replace(report)

    def _count_evaluation(self, report: TimingReport, cache_hit: bool) -> None:
        """Counter accounting for one timed walk (cached or fresh).

        Counting from the report keeps memoized and fresh evaluations
        indistinguishable to the counters — bytes and flops describe what
        the schedule *does*, not whether Python re-walked it.
        """
        counters = self.telemetry.counters
        if not counters.enabled:
            return
        counters.add("engine.evaluations")
        counters.add(
            "engine.timing_cache.hits" if cache_hit else "engine.timing_cache.misses"
        )
        counters.add("engine.bytes_get", report.bytes_get)
        counters.add("engine.bytes_put", report.bytes_put)
        counters.add("engine.flops", report.flops)
        counters.add("engine.tiles", report.tiles)
        counters.add("engine.simulated_seconds", report.seconds)

    def record_tile_spans(self, max_tiles: int = 64) -> int:
        """Record the first ``max_tiles`` tiles' intervals as sim spans.

        Replays the schedule through :func:`pipeline_intervals` (the same
        recurrence the timed evaluation folds down) and emits one span per
        non-empty get/compute/put window on the simulated-timeline tracks.
        Returns the number of tiles recorded.
        """
        tracer = self.telemetry.tracer
        if not tracer.enabled:
            return 0
        costs = (
            self._step_cost(step)
            for step in self.plan.compiled_schedule(coalesced=True)
        )
        recorded = 0
        for interval in pipeline_intervals(costs):
            if interval.index >= max_tiles:
                break
            i = interval.index
            if interval.get_seconds > 0:
                tracer.record_sim(
                    f"tile[{i}].get", interval.get_start, interval.get_end,
                    track="dma-get", cat="tile",
                )
            if interval.compute_seconds > 0:
                tracer.record_sim(
                    f"tile[{i}].compute",
                    interval.compute_start, interval.compute_end,
                    track="compute", cat="tile",
                )
            if interval.put_seconds > 0:
                tracer.record_sim(
                    f"tile[{i}].put", interval.put_start, interval.put_end,
                    track="dma-put", cat="tile",
                )
            recorded += 1
        return recorded

    # -- functional -----------------------------------------------------------

    def _filter_pack_for(
        self, w: np.ndarray, version: int
    ) -> Dict[Tuple[int, int, int], np.ndarray]:
        """The memoized packed-slice table for ``(w, version)``.

        A stale token (different tensor object, or the same tensor after a
        parameter update bumped its version) drops every packed slice; a
        matching token reuses them as-is.  The engine keeps a strong
        reference to ``w`` so the identity half of the token cannot be
        recycled while packs are alive.
        """
        token = (id(w), version)
        if token != self._filter_pack_token:
            if self._filter_pack_token is not None:
                self.telemetry.counters.add("engine.filter_pack.invalidations")
            self._filter_pack = {}
            self._filter_pack_token = token
            self._filter_pack_w = w
        return self._filter_pack

    def prepack_filters(self, w: np.ndarray, version: int = 0) -> int:
        """Eagerly pack every filter slice the schedule will request.

        Walks the plan's compute specs and materializes the contiguous
        ``(No, bNi)`` slice for each distinct ``(kr, kc, ni-block)``, so the
        first ``run(..., filter_version=version)`` pays zero packing cost —
        the serve warm-up path.  Returns the number of packed slices.
        """
        w = np.asarray(w, dtype=np.float64)
        p = self.plan.params
        if w.shape != p.filter_shape:
            raise PlanError(f"filter shape {w.shape} != {p.filter_shape}")
        pack = self._filter_pack_for(w, version)
        built = 0
        for step in self.plan.compiled_schedule():
            for c in step.computes:
                ni_len = c.ni_len if c.ni_len >= 0 else p.ni
                key = (c.kr, c.kc, c.ni0)
                if key not in pack:
                    pack[key] = np.ascontiguousarray(
                        w[:, c.ni0 : c.ni0 + ni_len, c.kr, c.kc]
                    )
                    built += 1
        if built:
            self.telemetry.counters.add("engine.filter_pack.packs", built)
        return len(pack)

    def run(
        self,
        x: np.ndarray,
        w: np.ndarray,
        bias: Optional[np.ndarray] = None,
        activation: Optional[str] = None,
        filter_version: Optional[int] = None,
    ) -> Tuple[np.ndarray, TimingReport]:
        """Execute the plan on real data; returns (output, timing).

        ``x`` is (B, Ni, Ri, Ci) canonical order, ``w`` is (No, Ni, Kr, Kc);
        the plan's packing/unpacking between canonical and vector layouts is
        modeled in the DMA block sizes, so the functional path works on the
        canonical arrays directly.

        ``bias`` (per output channel) and ``activation`` ("relu") are
        applied *fused*: each output tile gets the epilogue while still in
        LDM, before its DMA put, so the fusion costs no extra memory
        traffic — the standard library trick (cuDNN's activation-fused
        convolutions) that keeps the streaming ops off the critical path.

        With ``fused_pool=s`` the epilogue also average-pools each output
        tile ``s x s`` in LDM, so the returned tensor is the *pooled*
        output (B, No, Ro/s, Co/s) and the DMA puts move only the pooled
        bytes (see :class:`repro.core.fusion.FusedConvBlock`).

        ``filter_version`` opts into memoized weight-layout packing: the
        contiguous per-``(kr, kc, ni-block)`` filter slices the schedule
        reads are packed once per ``(w, version)`` pair and reused across
        forward calls, and the numpy backend multiplies the packed operand
        directly (``w_pack @ window``) instead of reducing a strided view —
        the repeated-inference fast path.  Callers that mutate ``w`` in
        place must bump the version (see
        :meth:`~repro.core.layers.Layer.notify_parameter_update`); passing
        ``None`` (the default) skips packing entirely.
        """
        p = self.plan.params
        if x.shape != p.input_shape:
            raise PlanError(f"input shape {x.shape} != {p.input_shape}")
        if w.shape != p.filter_shape:
            raise PlanError(f"filter shape {w.shape} != {p.filter_shape}")
        if bias is not None:
            bias = np.asarray(bias, dtype=np.float64)
            if bias.shape != (p.no,):
                raise PlanError(
                    f"bias must have shape ({p.no},), got {bias.shape}"
                )
        if activation not in (None, "relu"):
            raise PlanError(f"unknown fused activation {activation!r}")
        x = np.asarray(x, dtype=np.float64)
        w = np.asarray(w, dtype=np.float64)
        with self.telemetry.tracer.span(
            "engine.run", cat="engine", backend=self.backend, params=repr(p)
        ):
            out, report = self._run_tiles(x, w, bias, activation, filter_version)
        self.telemetry.counters.add("engine.runs")
        return out, report

    def _run_tiles(
        self,
        x: np.ndarray,
        w: np.ndarray,
        bias: Optional[np.ndarray],
        activation: Optional[str],
        filter_version: Optional[int] = None,
    ) -> Tuple[np.ndarray, TimingReport]:
        p = self.plan.params
        out = np.zeros(p.output_shape, dtype=np.float64)
        pack = (
            self._filter_pack_for(w, filter_version)
            if filter_version is not None
            else None
        )
        if self._mesh_gemm is not None:
            # Bus/LDM statistics describe one plan execution, not the
            # engine's lifetime.
            self._mesh_gemm.reset_stats()

        costs = []
        flops = 0
        bytes_get = 0
        bytes_put = 0
        tiles = 0
        for step in self.plan.compiled_schedule():
            for c in step.computes:
                ni_len = c.ni_len if c.ni_len >= 0 else p.ni
                ni_slice = slice(c.ni0, c.ni0 + ni_len)
                window = x[
                    c.bb : c.bb + c.bb_len,
                    ni_slice,
                    c.ro + c.kr,
                    c.co + c.kc : c.co + c.kc + c.co_len,
                ]
                target = out[c.bb : c.bb + c.bb_len, :, c.ro, c.co : c.co + c.co_len]
                if pack is not None:
                    key = (c.kr, c.kc, c.ni0)
                    w_slice = pack.get(key)
                    if w_slice is None:
                        w_slice = np.ascontiguousarray(w[:, ni_slice, c.kr, c.kc])
                        pack[key] = w_slice
                        self.telemetry.counters.add("engine.filter_pack.packs")
                    if self.backend == "numpy":
                        # Packed operand: one BLAS-dispatched matmul on the
                        # contiguous slice, bit-identical to the einsum
                        # reduction below (same per-element dot order) at a
                        # fraction of its dispatch cost.
                        target += w_slice @ window
                        continue
                else:
                    w_slice = w[:, ni_slice, c.kr, c.kc]
                if self.backend == "numpy":
                    target += np.einsum("on,bnc->boc", w_slice, window, optimize=True)
                else:
                    self._mesh_compute(w_slice, window, target)
            cost = self._step_cost(step)
            costs.append(cost)
            flops += cost.flops
            bytes_get += cost.bytes_get
            bytes_put += cost.bytes_put
            tiles += 1
        # Fused epilogue: on hardware this runs per output tile while it is
        # still in LDM (before the DMA put), so it adds no memory traffic
        # and hides under P1; functionally it is elementwise, so applying
        # it once after the tile loop is identical.
        if bias is not None or activation == "relu" or self.fused_pool > 1:
            with self.telemetry.tracer.span(
                "engine.fused_epilogue",
                cat="engine",
                bias=bias is not None,
                activation=activation or "",
                pool=self.fused_pool,
            ):
                if bias is not None:
                    out += bias[None, :, None, None]
                if activation == "relu":
                    np.maximum(out, 0.0, out=out)
                if self.fused_pool > 1:
                    # Fused average pooling: tiles are averaged down in LDM
                    # before their (already pool-scaled) DMA puts;
                    # functionally elementwise over disjoint windows, so
                    # pooling once at the end is identical.
                    s = self.fused_pool
                    b, no, ro, co = out.shape
                    out = out.reshape(b, no, ro // s, s, co // s, s).mean(
                        axis=(3, 5)
                    )
        total, dma_busy, comp_busy = _pipeline_timeline(costs, self.overlap_contention)
        report = TimingReport(
            seconds=total,
            flops=flops,
            dma_seconds=dma_busy,
            compute_seconds=comp_busy,
            bytes_get=bytes_get,
            bytes_put=bytes_put,
            tiles=tiles,
            peak_flops=self.spec.peak_flops_per_cg,
        )
        return out, report

    def _mesh_compute(
        self, w_slice: np.ndarray, window: np.ndarray, target: np.ndarray
    ) -> None:
        """One GEMM update through the register-communication mesh."""
        assert self._mesh_gemm is not None
        bb_len, ni, co_len = window.shape
        d = window.transpose(1, 0, 2).reshape(ni, bb_len * co_len)
        product = self._mesh_gemm.multiply(w_slice, d)  # (No, bb_len*co_len)
        no = product.shape[0]
        target += product.reshape(no, bb_len, co_len).transpose(1, 0, 2)


def conv_forward(
    x: np.ndarray,
    w: np.ndarray,
    plan: Optional[ConvPlan] = None,
    backend: str = "numpy",
    spec: SW26010Spec = DEFAULT_SPEC,
) -> np.ndarray:
    """Convolve through the simulated SW26010 pipeline (public API).

    Plans the layer with the performance model when ``plan`` is omitted.
    """
    from repro.core.planner import plan_convolution

    b, ni, ri, ci = np.asarray(x).shape
    no, _, kr, kc = np.asarray(w).shape
    params = ConvParams(ni=ni, no=no, ri=ri, ci=ci, kr=kr, kc=kc, b=b)
    if plan is None:
        plan = plan_convolution(params, spec=spec).plan
    engine = ConvolutionEngine(plan, spec=spec, backend=backend)
    out, _ = engine.run(x, w)
    return out


def evaluate_chip(
    params: ConvParams,
    plan_kind: Optional[str] = None,
    num_groups: Optional[int] = None,
    spec: SW26010Spec = DEFAULT_SPEC,
    plan_cache: Optional[str] = None,
    telemetry=None,
) -> Tuple[float, List[TimingReport]]:
    """Timed multi-CG execution (Section III-D row partitioning).

    Output rows are split across ``num_groups`` core groups, each running
    its strip with the same plan family; the slowest strip gates the layer.
    Returns (chip Gflop/s, per-CG reports).

    ``plan_cache`` names an on-disk plan-cache directory: each strip's plan
    then comes from the autotuner (see :mod:`repro.tune`) — tuned once,
    persisted, and shared across every sweep configuration and resumed run
    that passes the same path.
    """
    from repro.hw.chip import SW26010Chip
    from repro.core.planner import plan_convolution
    from repro.core.plans import make_plan

    chip = SW26010Chip(spec)
    telemetry = telemetry if telemetry is not None else current_telemetry()
    n = num_groups if num_groups is not None else spec.num_core_groups
    strips = chip.partition_rows(params.ro, n)
    reports = []
    for cg, (start, stop) in enumerate(strips):
        rows = stop - start
        if rows == 0:
            continue
        strip_params = params.with_rows(rows)
        with telemetry.tracer.span(
            "chip.strip", cat="chip", cg=cg, rows=rows
        ):
            if plan_cache is not None:
                from repro.tune import autotune

                plan = autotune(strip_params, spec=spec, cache=plan_cache).plan
            elif plan_kind is None:
                plan = plan_convolution(strip_params, spec=spec).plan
            else:
                plan = make_plan(plan_kind, strip_params, spec=spec)
            reports.append(
                ConvolutionEngine(plan, spec=spec, telemetry=telemetry).evaluate()
            )
    if not reports:
        raise PlanError("no core group received any rows")
    seconds = max(r.seconds for r in reports)
    total_flops = sum(r.flops for r in reports)
    return total_flops / seconds / 1e9, reports
