"""Fused forward pipelines: conv -> ReLU (-> pool) without MEM round trips.

An unfused network spills every intermediate activation to simulated main
memory: the conv engine DMA-puts its output tiles, the ReLU streams the
whole tensor back through LDM and out again, and the pooling layer does the
same.  On a machine whose conv kernels already run at 60-90% of the DMA
roofline those two extra full-tensor passes are pure loss.

:class:`FusedConvBlock` runs the stack as one pipeline on the simulated
core group: the engine's epilogue applies bias + ReLU to each output tile
*while it is still resident in LDM* (free — it hides under P1, see
``tests/core/test_fusion.py``), an ``s x s`` average pool consumes the tile
in LDM (``fused_pool=s``), and only the pooled bytes are DMA-put — 1/s^2 of
the traffic on the store side, and the ReLU/pool MEM passes disappear
entirely.

Backward uses the standard recompute trick for fused pipelines (the
intermediate activation was never materialized): the pre-activation output
is recomputed with the reference conv, then the usual pool -> ReLU -> conv
gradient chain runs.  Parameters stay owned by the wrapped
:class:`~repro.core.layers.Conv2D`, so optimizers see the same tensors
whether or not the network is fused.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.common.errors import LDMOverflowError, PlanError
from repro.core.conv import ConvolutionEngine, TimingReport
from repro.core.layers import AvgPool2D, Conv2D, Layer, ReLU
from repro.core.params import ConvParams
from repro.core.reference import conv2d_backward_reference, conv2d_reference
from repro.hw.dma import DMABandwidthModel
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC
from repro.perf.dma_model import DMA_STRIDE_EFFICIENCY


def elementwise_pass_seconds(
    bytes_in: int,
    bytes_out: int,
    spec: SW26010Spec = DEFAULT_SPEC,
    block_bytes: int = 1024,
    stride_efficiency: float = DMA_STRIDE_EFFICIENCY,
) -> float:
    """Time for one streaming elementwise pass over a tensor in MEM.

    An unfused ReLU or pooling layer reads its input from main memory
    through LDM and writes its output back — the cost the fused pipeline
    eliminates.  Charged against the same Table II model the conv engine
    uses, at a generous (1 KB) contiguous block size.
    """
    model = DMABandwidthModel(alignment=spec.dma_alignment)
    get_bw = model.bandwidth(block_bytes, "get", aligned=True) * stride_efficiency
    put_bw = model.bandwidth(block_bytes, "put", aligned=True) * stride_efficiency
    return bytes_in / get_bw + bytes_out / put_bw


def unfused_pipeline_seconds(
    conv_report: TimingReport,
    params: ConvParams,
    pool: int = 1,
    relu: bool = True,
    spec: SW26010Spec = DEFAULT_SPEC,
) -> float:
    """Step time of the *unfused* conv -> ReLU (-> pool) stack.

    The conv's own time plus one full-tensor MEM pass per trailing
    elementwise layer — the baseline the fused pipeline is measured
    against.
    """
    out_bytes = params.b * params.no * params.ro * params.co * spec.double_bytes
    seconds = conv_report.seconds
    if relu:
        seconds += elementwise_pass_seconds(out_bytes, out_bytes, spec)
    if pool > 1:
        seconds += elementwise_pass_seconds(
            out_bytes, out_bytes // (pool * pool), spec
        )
    return seconds


class FusedConvBlock(Layer):
    """Conv2D (+bias) -> ReLU (-> AvgPool2D) as one LDM-resident pipeline.

    Wraps an existing :class:`Conv2D` (sharing its weight/bias tensors) and
    optionally absorbs a trailing ReLU and a non-overlapping average pool.
    The forward pass always runs the simulated engine — fusion is a
    property of the execution schedule, not of the math.

    ``autotune``/``plan_cache`` route planning through :mod:`repro.tune`
    instead of the one-shot heuristic.
    """

    def __init__(
        self,
        conv: Conv2D,
        relu: bool = True,
        pool: int = 1,
        autotune: bool = False,
        plan_cache: Optional[Union[str, "object"]] = None,
        spec: SW26010Spec = DEFAULT_SPEC,
    ):
        if pool < 1:
            raise PlanError(f"pool size must be >= 1, got {pool}")
        self.conv = conv
        self.relu = relu
        self.pool = pool
        self.autotune = autotune or plan_cache is not None
        self.plan_cache = plan_cache
        self.spec = spec
        self._x: Optional[np.ndarray] = None
        self._engine_cache: Dict[ConvParams, ConvolutionEngine] = {}
        self.last_report: Optional[TimingReport] = None

    def _plan(self, params: ConvParams, fused_pool: int):
        if self.autotune:
            from repro.tune import autotune as tune

            cache = self.plan_cache if self.plan_cache is not None else False
            return tune(
                params, spec=self.spec, cache=cache, fused_pool=fused_pool
            ).plan
        from repro.core.planner import plan_convolution

        return plan_convolution(params, spec=self.spec).plan

    def _engine(self, params: ConvParams) -> "tuple[ConvolutionEngine, int]":
        entry = self._engine_cache.get(params)
        if entry is None:
            try:
                # Tuned-and-fused: the autotuner only considers candidates
                # that can host the pool accumulator, so plan and epilogue
                # are feasible together or fail together.
                engine = ConvolutionEngine(
                    self._plan(params, self.pool),
                    spec=self.spec,
                    backend=self.conv.backend,
                    fused_pool=self.pool,
                )
                fused_pool = self.pool
            except (PlanError, LDMOverflowError):
                # Pool does not divide this shape (or no plan leaves room
                # for its accumulator): run conv+ReLU fused, pool unfused.
                engine = ConvolutionEngine(
                    self._plan(params, 1),
                    spec=self.spec,
                    backend=self.conv.backend,
                )
                fused_pool = 1
            entry = (engine, fused_pool)
            self._engine_cache[params] = entry
        return entry

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = np.asarray(x, dtype=np.float64)
        b, ni, ri, ci = self._x.shape
        no, _, kr, kc = self.conv.w.shape
        params = ConvParams(ni=ni, no=no, ri=ri, ci=ci, kr=kr, kc=kc, b=b)
        engine, fused_pool = self._engine(params)
        out, report = engine.run(
            self._x,
            self.conv.w,
            bias=self.conv.bias,
            activation="relu" if self.relu else None,
            filter_version=getattr(self.conv, "_w_version", 0),
        )
        if fused_pool == 1 and self.pool > 1:
            s = self.pool
            b_, c_, h_, w_ = out.shape
            if h_ % s != 0 or w_ % s != 0:
                raise PlanError(f"pooling {s}x{s} does not divide {h_}x{w_}")
            out = out.reshape(b_, c_, h_ // s, s, w_ // s, s).mean(axis=(3, 5))
        self.last_report = report
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise PlanError("backward called before forward")
        # Recompute the pre-pool activation (it was never spilled to MEM).
        y = conv2d_reference(self._x, self.conv.w) + self.conv.bias[
            None, :, None, None
        ]
        s = self.pool
        if s > 1:
            grad = np.repeat(np.repeat(grad, s, axis=2), s, axis=3) / (s * s)
        if self.relu:
            grad = grad * (y > 0)
        grad_x, grad_w = conv2d_backward_reference(self._x, self.conv.w, grad)
        self.conv._grad_w = grad_w
        self.conv._grad_b = grad.sum(axis=(0, 2, 3))
        return grad_x

    def parameters(self) -> Dict[str, np.ndarray]:
        return self.conv.parameters()

    def gradients(self) -> Dict[str, np.ndarray]:
        return self.conv.gradients()

    def notify_parameter_update(self) -> None:
        # The wrapped conv owns the weight tensors (and their layout
        # version); fused and unfused views must invalidate together.
        self.conv.notify_parameter_update()


def fuse_layers(
    layers: Sequence[Layer],
    autotune: bool = False,
    plan_cache: Optional[Union[str, "object"]] = None,
    spec: SW26010Spec = DEFAULT_SPEC,
) -> List[Layer]:
    """Pattern-match Conv2D [-> ReLU] [-> AvgPool2D] runs into fused blocks.

    Layers that do not match pass through unchanged; parameter tensors are
    shared with the original conv layers, so a network can be fused after
    construction (or even mid-training) without re-initializing weights.
    """
    fused: List[Layer] = []
    i = 0
    n = len(layers)
    while i < n:
        layer = layers[i]
        if isinstance(layer, Conv2D):
            j = i + 1
            relu = False
            pool = 1
            if j < n and isinstance(layers[j], ReLU):
                relu = True
                j += 1
            if j < n and isinstance(layers[j], AvgPool2D):
                pool = layers[j].size
                j += 1
            if relu or pool > 1:
                fused.append(
                    FusedConvBlock(
                        layer,
                        relu=relu,
                        pool=pool,
                        autotune=autotune,
                        plan_cache=plan_cache,
                        spec=spec,
                    )
                )
                i = j
                continue
        fused.append(layer)
        i += 1
    return fused
