"""Model-guided plan selection (Section III-D / IV-A).

"If the batch size is large enough to reduce the RBW to a lower level, we
can adopt the batch-size-aware version.  Otherwise, we can perform blocking
on the column dimension with the image-size-aware version."  The planner
implements that decision by actually scoring both families with the
three-level performance model and keeping the winner, so the choice adapts
to every (Ni, No, B, image, filter) configuration the way the paper's
evaluation does ("we adopt different loop scheduling and blocking
strategies according to the performance model", Section VII).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional

from repro.common.errors import PlanError
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC
from repro.perf.model import PerformanceEstimate, PerformanceModel
from repro.core.params import ConvParams
from repro.core.plans import BatchSizeAwarePlan, ConvPlan, ImageSizeAwarePlan


@dataclass
class PlanChoice:
    """The planner's decision: the chosen plan plus the scored field."""

    plan: ConvPlan
    estimate: PerformanceEstimate
    alternatives: List[PerformanceEstimate]

    @property
    def kind(self) -> str:
        return self.plan.name

    def describe(self) -> str:
        lines = [
            f"chosen: {self.plan.describe()} "
            f"(modeled {self.estimate.gflops:.0f} Gflops/CG, "
            f"bound: {self.estimate.bound})"
        ]
        for alt in self.alternatives:
            lines.append(f"  rejected: {alt.plan} ({alt.gflops:.0f} Gflops/CG)")
        return "\n".join(lines)


def plan_convolution(
    params: ConvParams,
    spec: SW26010Spec = DEFAULT_SPEC,
    model: Optional[PerformanceModel] = None,
) -> PlanChoice:
    """Choose the loop schedule + blocking maximizing modeled performance.

    Both plan families are constructed with their best LDM blocking; a
    family whose blocking cannot fit the LDM for these parameters is simply
    not a candidate.  Raises :class:`PlanError` when nothing is feasible.

    With the default model the decision is memoized per (params, spec):
    repeated layer invocations — the common case in training and sweeps —
    share one :class:`PlanChoice` (and therefore one compiled plan), so
    planning is paid once per distinct layer shape.  Callers must not
    mutate the shared plan.
    """
    if model is None:
        return _plan_convolution_cached(params, spec)
    return _plan_convolution(params, spec, model)


@lru_cache(maxsize=1024)
def _plan_convolution_cached(params: ConvParams, spec: SW26010Spec) -> PlanChoice:
    return _plan_convolution(params, spec, PerformanceModel(spec))


def _plan_convolution(
    params: ConvParams, spec: SW26010Spec, model: PerformanceModel
) -> PlanChoice:
    candidates: List[ConvPlan] = []
    failures: List[str] = []
    for family in (BatchSizeAwarePlan, ImageSizeAwarePlan):
        try:
            candidates.append(family(params, spec=spec))
        except PlanError as exc:
            failures.append(f"{family.name}: {exc}")
    if not candidates:
        raise PlanError(
            f"no feasible plan for {params.describe()}: " + "; ".join(failures)
        )
    scored = [(plan, plan.estimate(model)) for plan in candidates]
    scored.sort(key=lambda pair: pair[1].flops, reverse=True)
    best_plan, best_estimate = scored[0]
    return PlanChoice(
        plan=best_plan,
        estimate=best_estimate,
        alternatives=[est for _, est in scored[1:]],
    )
