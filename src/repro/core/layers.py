"""Trainable layers over the swDNN convolution kernels.

The paper positions swDNN as a library "to accelerate deep learning
applications (especially focused on the training part)".  This module
provides the layer zoo a CNN training loop needs — convolution (running
through the simulated SW26010 plan for its forward pass), pooling, ReLU,
fully-connected, softmax cross-entropy — each with a backward pass
validated against numeric gradients.

Layers operate on canonical (B, C, H, W) tensors in double precision (the
precision the paper evaluates).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import PlanError
from repro.core.conv import ConvolutionEngine
from repro.core.params import ConvParams
from repro.core.reference import conv2d_backward_reference, conv2d_reference


class Layer:
    """Base layer: forward/backward plus parameter access for the optimizer."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> Dict[str, np.ndarray]:
        """Trainable tensors by name (shared, mutated in place)."""
        return {}

    def gradients(self) -> Dict[str, np.ndarray]:
        """Gradients from the last backward, matching :meth:`parameters`."""
        return {}

    def notify_parameter_update(self) -> None:
        """Hook: the optimizer mutated this layer's parameters in place.

        Layers that memoize anything derived from their parameters (packed
        filter layouts, certified operands) invalidate it here; the base
        implementation is a no-op so parameter-free layers need nothing.
        """


class Conv2D(Layer):
    """Convolution layer backed by the simulated swDNN kernel.

    ``engine="simulated"`` runs the forward pass through the planned tile
    schedule on the simulated core group (identical numerics, exercised end
    to end); ``engine="reference"`` calls the NumPy oracle directly, which
    is what the training examples use for speed.  ``backend`` selects the
    simulated engine's execution tier (``"numpy"``, ``"mesh"``,
    ``"mesh-fast"``); engines are cached per input shape, so training loops
    that feed the same shape every batch plan once and — with
    ``"mesh-fast"`` — verify the bus protocol once.  ``autotune=True``
    replaces the heuristic planner with the measured search of
    :mod:`repro.tune`; ``plan_cache`` names its on-disk cache directory
    (implies autotuning); ``algorithms`` opts the tuned search into the
    conv algorithm zoo (``"all"`` or a subset of
    :data:`repro.core.algorithms.ALGORITHMS` — requires autotuning, since
    only the measured search can justify a lowered plan).  Backward always
    uses the reference gradients.
    """

    def __init__(
        self,
        ni: int,
        no: int,
        kr: int,
        kc: int,
        rng: Optional[np.random.Generator] = None,
        engine: str = "reference",
        backend: str = "numpy",
        autotune: bool = False,
        plan_cache=None,
        algorithms=None,
    ):
        if engine not in ("reference", "simulated"):
            raise PlanError(f"unknown conv engine {engine!r}")
        if algorithms is not None and not (autotune or plan_cache is not None):
            raise PlanError(
                "algorithms= requires autotune=True (the heuristic planner "
                "only plans the direct mapping)"
            )
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / (ni * kr * kc))
        self.w = rng.standard_normal((no, ni, kr, kc)) * scale
        self.bias = np.zeros(no)
        self.engine = engine
        self.backend = backend
        self.autotune = autotune or plan_cache is not None
        self.plan_cache = plan_cache
        self.algorithms = algorithms
        self._x: Optional[np.ndarray] = None
        self._grad_w: Optional[np.ndarray] = None
        self._grad_b: Optional[np.ndarray] = None
        self._engine_cache: Dict[ConvParams, ConvolutionEngine] = {}
        # Weight-layout version: bumped on every in-place parameter update
        # so the engines' memoized filter packs invalidate (repeated
        # inference on frozen weights packs exactly once).
        self._w_version = 0

    def notify_parameter_update(self) -> None:
        self._w_version += 1

    def _simulated_engine(self, params: ConvParams) -> ConvolutionEngine:
        engine = self._engine_cache.get(params)
        if engine is None:
            if self.autotune:
                from repro.tune import autotune as tune

                cache = self.plan_cache if self.plan_cache is not None else False
                plan = tune(params, cache=cache, algorithms=self.algorithms).plan
            else:
                from repro.core.planner import plan_convolution

                plan = plan_convolution(params).plan
            from repro.core.algorithms import engine_for_plan

            engine = engine_for_plan(plan, backend=self.backend)
            self._engine_cache[params] = engine
        return engine

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = np.asarray(x, dtype=np.float64)
        if self.engine == "simulated":
            b, ni, ri, ci = self._x.shape
            no, _, kr, kc = self.w.shape
            params = ConvParams(ni=ni, no=no, ri=ri, ci=ci, kr=kr, kc=kc, b=b)
            out, _ = self._simulated_engine(params).run(
                self._x, self.w, filter_version=self._w_version
            )
        else:
            out = conv2d_reference(self._x, self.w)
        return out + self.bias[None, :, None, None]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise PlanError("backward called before forward")
        grad_x, grad_w = conv2d_backward_reference(self._x, self.w, grad)
        self._grad_w = grad_w
        self._grad_b = grad.sum(axis=(0, 2, 3))
        return grad_x

    def parameters(self) -> Dict[str, np.ndarray]:
        return {"w": self.w, "bias": self.bias}

    def gradients(self) -> Dict[str, np.ndarray]:
        if self._grad_w is None or self._grad_b is None:
            raise PlanError("gradients requested before backward")
        return {"w": self._grad_w, "bias": self._grad_b}


class ReLU(Layer):
    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise PlanError("backward called before forward")
        return grad * self._mask


class AvgPool2D(Layer):
    """Non-overlapping average pooling (the paper's subsampling layer)."""

    def __init__(self, size: int = 2):
        if size < 1:
            raise ValueError(f"pool size must be positive, got {size}")
        self.size = size
        self._in_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        b, c, h, w = x.shape
        s = self.size
        if h % s != 0 or w % s != 0:
            raise PlanError(f"pooling {s}x{s} does not divide {h}x{w}")
        self._in_shape = x.shape
        return x.reshape(b, c, h // s, s, w // s, s).mean(axis=(3, 5))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise PlanError("backward called before forward")
        b, c, h, w = self._in_shape
        s = self.size
        expanded = np.repeat(np.repeat(grad, s, axis=2), s, axis=3)
        return expanded / (s * s)


class Flatten(Layer):
    def __init__(self) -> None:
        self._in_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._in_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise PlanError("backward called before forward")
        return grad.reshape(self._in_shape)


class Dense(Layer):
    """Fully-connected layer (the classifier part of the CNN)."""

    def __init__(
        self, in_features: int, out_features: int, rng: Optional[np.random.Generator] = None
    ):
        rng = rng or np.random.default_rng(0)
        self.w = rng.standard_normal((in_features, out_features)) * np.sqrt(
            2.0 / in_features
        )
        self.bias = np.zeros(out_features)
        self._x: Optional[np.ndarray] = None
        self._grad_w: Optional[np.ndarray] = None
        self._grad_b: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = np.asarray(x, dtype=np.float64)
        return self._x @ self.w + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise PlanError("backward called before forward")
        self._grad_w = self._x.T @ grad
        self._grad_b = grad.sum(axis=0)
        return grad @ self.w.T

    def parameters(self) -> Dict[str, np.ndarray]:
        return {"w": self.w, "bias": self.bias}

    def gradients(self) -> Dict[str, np.ndarray]:
        if self._grad_w is None or self._grad_b is None:
            raise PlanError("gradients requested before backward")
        return {"w": self._grad_w, "bias": self._grad_b}


class LocalResponseNorm(Layer):
    """Local response normalization across channels (AlexNet-era).

    ``y[b,c] = x[b,c] / (k + alpha/n * sum_{c' in window} x[b,c']^2)^beta``
    with the window of ``n`` channels centered on ``c`` — the normalization
    the paper-era ImageNet networks interleave with convolutions.
    """

    def __init__(self, n: int = 5, k: float = 2.0, alpha: float = 1e-4, beta: float = 0.75):
        if n < 1 or n % 2 == 0:
            raise ValueError(f"window size must be odd and positive, got {n}")
        if k <= 0 or alpha <= 0 or beta <= 0:
            raise ValueError("k, alpha and beta must be positive")
        self.n = n
        self.k = k
        self.alpha = alpha
        self.beta = beta
        self._x: Optional[np.ndarray] = None
        self._denom: Optional[np.ndarray] = None

    def _window_sum_sq(self, x: np.ndarray) -> np.ndarray:
        b, c, h, w = x.shape
        half = self.n // 2
        sq = x * x
        acc = np.zeros_like(x)
        for offset in range(-half, half + 1):
            lo = max(0, -offset)
            hi = min(c, c - offset)
            acc[:, lo:hi] += sq[:, lo + offset : hi + offset]
        return acc

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4:
            raise PlanError("LRN expects a 4-D NCHW tensor")
        self._x = x
        self._denom = self.k + (self.alpha / self.n) * self._window_sum_sq(x)
        return x / self._denom**self.beta

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None or self._denom is None:
            raise PlanError("backward called before forward")
        x, denom = self._x, self._denom
        # dL/dx = g / denom^beta  -  (2*alpha*beta/n) * x * S, where
        # S[b,c] = sum over channels c' whose window includes c of
        #          g[b,c'] * x[b,c'] / denom[b,c']^(beta+1).
        term = grad * x / denom ** (self.beta + 1.0)
        b, c, h, w = x.shape
        half = self.n // 2
        s = np.zeros_like(x)
        for offset in range(-half, half + 1):
            lo = max(0, -offset)
            hi = min(c, c - offset)
            s[:, lo + offset : hi + offset] += term[:, lo:hi]
        return grad / denom**self.beta - (2.0 * self.alpha * self.beta / self.n) * x * s


class Dropout(Layer):
    """Inverted dropout: scales at train time, identity at eval time."""

    def __init__(self, rate: float = 0.5, rng: Optional[np.random.Generator] = None):
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.training = True
        self._rng = rng or np.random.default_rng(0)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if not self.training or self.rate == 0.0:
            self._mask = np.ones_like(x)
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise PlanError("backward called before forward")
        return grad * self._mask


class SoftmaxCrossEntropy:
    """Loss head: softmax + cross entropy with integer labels.

    ``grad_normalizer`` overrides the batch size the backward pass divides
    by.  The default (``None``) normalizes by the batch actually seen —
    classic mean-loss SGD.  A data-parallel replica processing a shard of a
    larger global batch sets it to the *global* batch size, so summing the
    shards' gradients yields exactly the global mean gradient with no
    trailing rescale (the rescale would round differently than the
    single-node computation and break bitwise parity).
    """

    def __init__(self, grad_normalizer: Optional[int] = None) -> None:
        if grad_normalizer is not None and grad_normalizer < 1:
            raise ValueError(
                f"grad_normalizer must be positive, got {grad_normalizer}"
            )
        self.grad_normalizer = grad_normalizer
        self._probs: Optional[np.ndarray] = None
        self._labels: Optional[np.ndarray] = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=np.float64)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        self._probs = probs
        self._labels = np.asarray(labels)
        n = logits.shape[0]
        return float(-np.log(probs[np.arange(n), self._labels] + 1e-300).mean())

    def backward(self) -> np.ndarray:
        if self._probs is None or self._labels is None:
            raise PlanError("backward called before forward")
        n = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._labels] -= 1.0
        denom = self.grad_normalizer if self.grad_normalizer is not None else n
        return grad / denom
