"""Register-communication GEMM over the CPE mesh (Section V-A, Fig. 3).

The LDM-resident GEMM ``Do += W . Di`` is distributed over the 8x8 mesh with
no duplicated data:

* ``W`` (No x Ni) is split into an 8x8 grid of blocks; CPE(i, k) owns
  ``W[i, k]`` (output-channel block i, input-channel block k);
* ``Di`` (Ni x M) likewise; CPE(k, j) owns ``Di[k, j]`` (input-channel
  block k, column block j — columns are batch x output-pixel);
* CPE(i, j) accumulates ``Do[i, j] = sum_k W[i, k] . Di[k, j]``.

At step ``k`` every CPE in mesh column ``k`` broadcasts its ``W`` block
along its *row* bus and every CPE in mesh row ``k`` broadcasts its ``Di``
block along its *column* bus; each CPE multiplies the pair it received (or
owns) into its accumulator.  After ``mesh_size`` steps each CPE holds its
final ``Do`` block — the schedule of Fig. 3.

The implementation really moves the blocks through the
:class:`~repro.hw.mesh.CPEMesh` transfer buffers (so protocol violations
surface as :class:`~repro.common.errors.BusProtocolError`) and really
multiplies them on each CPE (so the result is checked against plain
``W @ D``).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.common.errors import PlanError
from repro.hw.mesh import CPEMesh
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC


def split_grid(matrix: np.ndarray, n: int) -> List[List[np.ndarray]]:
    """Split a 2-D matrix into an n x n grid of equal blocks."""
    rows, cols = matrix.shape
    if rows % n != 0 or cols % n != 0:
        raise PlanError(
            f"matrix {rows}x{cols} not divisible into {n}x{n} blocks"
        )
    br, bc = rows // n, cols // n
    return [
        [matrix[i * br : (i + 1) * br, j * bc : (j + 1) * bc] for j in range(n)]
        for i in range(n)
    ]


def join_grid(blocks: List[List[np.ndarray]]) -> np.ndarray:
    """Inverse of :func:`split_grid`."""
    return np.block(blocks)


class MeshGemm:
    """Executes distributed GEMMs on a (simulated) CPE mesh."""

    def __init__(self, mesh: Optional[CPEMesh] = None, spec: SW26010Spec = DEFAULT_SPEC):
        self.mesh = mesh if mesh is not None else CPEMesh(spec)
        self.spec = self.mesh.spec

    def multiply(self, w: np.ndarray, d: np.ndarray) -> np.ndarray:
        """Compute ``w @ d`` by the Fig. 3 register-communication schedule.

        ``w`` is (No x Ni), ``d`` is (Ni x M); both dimensions must divide
        by the mesh size.  Returns the (No x M) product assembled from the
        per-CPE accumulators.
        """
        if w.ndim != 2 or d.ndim != 2:
            raise PlanError("mesh GEMM operands must be 2-D")
        if w.shape[1] != d.shape[0]:
            raise PlanError(
                f"inner dimensions disagree: {w.shape} @ {d.shape}"
            )
        n = self.mesh.size
        w_blocks = split_grid(np.asarray(w, dtype=np.float64), n)
        d_blocks = split_grid(np.asarray(d, dtype=np.float64), n)

        # Stage the blocks into each owner's LDM (real capacity check).
        acc: List[List[np.ndarray]] = [[None] * n for _ in range(n)]
        for i in range(n):
            for j in range(n):
                cpe = self.mesh.cpe(i, j)
                cpe.ldm.reset()
                wb = cpe.ldm.alloc("gemm.W", w_blocks[i][j].shape)
                wb.write(slice(None), w_blocks[i][j])
                db = cpe.ldm.alloc("gemm.D", d_blocks[i][j].shape)
                db.write(slice(None), d_blocks[i][j])
                ab = cpe.ldm.alloc(
                    "gemm.acc", (w_blocks[i][j].shape[0], d_blocks[i][j].shape[1])
                )
                acc[i][j] = ab.data

        for k in range(n):
            # Column k broadcasts W along rows; row k broadcasts D along cols.
            for i in range(n):
                self.mesh.row_broadcast((i, k), self.mesh.cpe(i, k).ldm.get("gemm.W").data)
                self.mesh.cpe(i, k).stats.bus_puts += 1
            for j in range(n):
                self.mesh.col_broadcast((k, j), self.mesh.cpe(k, j).ldm.get("gemm.D").data)
                self.mesh.cpe(k, j).stats.bus_puts += 1
            for i in range(n):
                for j in range(n):
                    cpe = self.mesh.cpe(i, j)
                    # Receive in send order: W (row bus) first, then D.
                    if j == k:
                        w_blk = cpe.ldm.get("gemm.W").data
                    else:
                        w_blk = self.mesh.get((i, j))
                        cpe.stats.bus_gets += 1
                    if i == k:
                        d_blk = cpe.ldm.get("gemm.D").data
                    else:
                        d_blk = self.mesh.get((i, j))
                        cpe.stats.bus_gets += 1
                    cpe.fma_tile(acc[i][j], w_blk, d_blk)
        self.mesh.assert_drained()
        return join_grid(acc)

    def bus_bytes(self) -> int:
        """Total register-communication traffic so far (both bus kinds)."""
        return self.mesh.total_bus_bytes()
