"""Register-communication GEMM over the CPE mesh (Section V-A, Fig. 3).

The LDM-resident GEMM ``Do += W . Di`` is distributed over the 8x8 mesh with
no duplicated data:

* ``W`` (No x Ni) is split into an 8x8 grid of blocks; CPE(i, k) owns
  ``W[i, k]`` (output-channel block i, input-channel block k);
* ``Di`` (Ni x M) likewise; CPE(k, j) owns ``Di[k, j]`` (input-channel
  block k, column block j — columns are batch x output-pixel);
* CPE(i, j) accumulates ``Do[i, j] = sum_k W[i, k] . Di[k, j]``.

At step ``k`` every CPE in mesh column ``k`` broadcasts its ``W`` block
along its *row* bus and every CPE in mesh row ``k`` broadcasts its ``Di``
block along its *column* bus; each CPE multiplies the pair it received (or
owns) into its accumulator.  After ``mesh_size`` steps each CPE holds its
final ``Do`` block — the schedule of Fig. 3.

Two execution modes share that schedule:

* ``mode="full"`` really moves the blocks through the
  :class:`~repro.hw.mesh.CPEMesh` transfer buffers (so protocol violations
  surface as :class:`~repro.common.errors.BusProtocolError`) and really
  multiplies them on each CPE (so the result is checked against plain
  ``W @ D``).
* ``mode="session"`` is the validated fast path: the *first* multiply of
  each (W shape, D shape) signature runs the full protocol simulation and
  cross-checks candidate vectorized implementations against it — a single
  contiguous ``w @ d`` GEMM first, then the per-step batched block GEMM
  with the schedule's exact reduction order.  The fastest candidate that is
  *bit-identical* to the simulation is certified for that signature; later
  multiplies of the signature execute it directly, with the identical
  bus/CPE statistics applied analytically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import PlanError, SimulationError
from repro.hw.mesh import CPEMesh
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC


def split_grid(matrix: np.ndarray, n: int) -> List[List[np.ndarray]]:
    """Split a 2-D matrix into an n x n grid of equal blocks."""
    rows, cols = matrix.shape
    if rows % n != 0 or cols % n != 0:
        raise PlanError(
            f"matrix {rows}x{cols} not divisible into {n}x{n} blocks"
        )
    br, bc = rows // n, cols // n
    return [
        [matrix[i * br : (i + 1) * br, j * bc : (j + 1) * bc] for j in range(n)]
        for i in range(n)
    ]


def join_grid(blocks: List[List[np.ndarray]]) -> np.ndarray:
    """Inverse of :func:`split_grid`."""
    return np.block(blocks)


class MeshGemm:
    """Executes distributed GEMMs on a (simulated) CPE mesh.

    ``mode="full"`` simulates the Fig. 3 bus protocol for every multiply;
    ``mode="session"`` verifies the protocol once per operand-shape
    signature and runs subsequent same-shape multiplies on the vectorized
    fast path (identical results, identical statistics, no per-tile LDM
    staging or Python bus loops).
    """

    MODES = ("full", "session")

    #: Fast-path candidates, fastest first.  "gemm" is one contiguous
    #: ``w @ d`` (bit-identical to the schedule whenever BLAS reduces the
    #: inner dimension in sequential order, e.g. single-block reductions);
    #: "einsum" is a single-pass sum-of-products whose C kernel reduces k
    #: sequentially, matching depth-1 block schedules; "blocked" replays
    #: the schedule's exact k-major block accumulation and is the general
    #: fallback.
    STRATEGIES = ("gemm", "einsum", "blocked")

    def __init__(
        self,
        mesh: Optional[CPEMesh] = None,
        spec: SW26010Spec = DEFAULT_SPEC,
        mode: str = "full",
        fault_plan=None,
        telemetry=None,
    ):
        if mode not in self.MODES:
            raise PlanError(
                f"unknown MeshGemm mode {mode!r}; expected one of {self.MODES}"
            )
        self.mesh = (
            mesh
            if mesh is not None
            else CPEMesh(spec, fault_plan=fault_plan, telemetry=telemetry)
        )
        self.spec = self.mesh.spec
        self.mode = mode
        #: signature -> certified fast-path strategy name.
        self._verified: Dict[Tuple[Tuple[int, int], Tuple[int, int]], str] = {}
        #: Reusable per-step product buffers, keyed by block-grid shape —
        #: avoids allocator churn on the fast path's hot loop.
        self._scratch: Dict[Tuple[int, int, int, int], np.ndarray] = {}
        #: Lazily created scratch mesh for certification probes.
        self._probe: Optional["MeshGemm"] = None

    @property
    def verified_signatures(self) -> int:
        """How many (W shape, D shape) signatures the session has verified."""
        return len(self._verified)

    def multiply(self, w: np.ndarray, d: np.ndarray) -> np.ndarray:
        """Compute ``w @ d`` by the Fig. 3 register-communication schedule.

        ``w`` is (No x Ni), ``d`` is (Ni x M); both dimensions must divide
        by the mesh size.  Returns the (No x M) product assembled from the
        per-CPE accumulators.
        """
        if w.ndim != 2 or d.ndim != 2:
            raise PlanError("mesh GEMM operands must be 2-D")
        if w.shape[1] != d.shape[0]:
            raise PlanError(
                f"inner dimensions disagree: {w.shape} @ {d.shape}"
            )
        w = np.asarray(w, dtype=np.float64)
        d = np.asarray(d, dtype=np.float64)
        n = self.mesh.size
        for matrix in (w, d):
            rows, cols = matrix.shape
            if rows % n != 0 or cols % n != 0:
                raise PlanError(
                    f"matrix {rows}x{cols} not divisible into {n}x{n} blocks"
                )
        if self.mode != "session":
            return self._multiply_mesh(w, d)
        signature = (w.shape, d.shape)
        strategy = self._verified.get(signature)
        if strategy is not None:
            result = self._fast_multiply(w, d, strategy)
            self._account_fast_path(w, d)
            return result
        verified = self._multiply_mesh(w, d)
        self._verified[signature] = self._certify(signature, w, d, verified)
        return verified

    def _certify(
        self,
        signature: Tuple[Tuple[int, int], Tuple[int, int]],
        w: np.ndarray,
        d: np.ndarray,
        verified: np.ndarray,
    ) -> str:
        """Pick the fastest strategy that is bit-identical to the protocol.

        Matching on the actual operands alone is not sufficient: sparse
        tiles (e.g. zero-padded borders in backward passes) let a strategy
        with a *different* reduction order agree by coincidence.  Each
        candidate must therefore also reproduce the full simulation on a
        dense synthetic operand pair of the same signature, run on a
        scratch mesh so the probe leaves this session's statistics alone.
        """
        probe_rng = np.random.default_rng(
            [0x5EED, w.shape[0], w.shape[1], d.shape[1]]
        )
        pw = probe_rng.standard_normal(w.shape)
        pd = probe_rng.standard_normal(d.shape)
        if self._probe is None:
            self._probe = MeshGemm(spec=self.spec, mode="full")
        probe_full = self._probe._multiply_mesh(pw, pd)
        for candidate in self.STRATEGIES:
            if np.array_equal(
                probe_full, self._fast_multiply(pw, pd, candidate)
            ) and np.array_equal(verified, self._fast_multiply(w, d, candidate)):
                return candidate
        raise SimulationError(
            f"no fast-path strategy reproduces the bus-protocol "
            f"simulation bit-for-bit for signature {signature}"
        )

    def _fast_multiply(self, w: np.ndarray, d: np.ndarray, strategy: str) -> np.ndarray:
        """Execute one certified (or candidate) fast-path strategy."""
        if strategy == "gemm":
            return np.ascontiguousarray(w) @ np.ascontiguousarray(d)
        if strategy == "einsum":
            return np.einsum(
                "ik,km->im", np.ascontiguousarray(w), np.ascontiguousarray(d)
            )
        return self._block_gemm(w, d)

    # -- full protocol simulation ------------------------------------------

    def _multiply_mesh(self, w: np.ndarray, d: np.ndarray) -> np.ndarray:
        """Move every block through the transfer buffers (Fig. 3 verbatim)."""
        n = self.mesh.size
        w_blocks = split_grid(w, n)
        d_blocks = split_grid(d, n)

        # Stage the blocks into each owner's LDM (real capacity check).
        acc: List[List[np.ndarray]] = [[None] * n for _ in range(n)]
        for i in range(n):
            for j in range(n):
                cpe = self.mesh.cpe(i, j)
                cpe.ldm.reset()
                wb = cpe.ldm.alloc("gemm.W", w_blocks[i][j].shape)
                wb.write(slice(None), w_blocks[i][j])
                db = cpe.ldm.alloc("gemm.D", d_blocks[i][j].shape)
                db.write(slice(None), d_blocks[i][j])
                ab = cpe.ldm.alloc(
                    "gemm.acc", (w_blocks[i][j].shape[0], d_blocks[i][j].shape[1])
                )
                acc[i][j] = ab.data

        for k in range(n):
            # Column k broadcasts W along rows; row k broadcasts D along cols.
            for i in range(n):
                self.mesh.row_broadcast((i, k), self.mesh.cpe(i, k).ldm.get("gemm.W").data)
                self.mesh.cpe(i, k).stats.bus_puts += 1
            for j in range(n):
                self.mesh.col_broadcast((k, j), self.mesh.cpe(k, j).ldm.get("gemm.D").data)
                self.mesh.cpe(k, j).stats.bus_puts += 1
            for i in range(n):
                for j in range(n):
                    cpe = self.mesh.cpe(i, j)
                    # Receive in send order: W (row bus) first, then D.
                    if j == k:
                        w_blk = cpe.ldm.get("gemm.W").data
                    else:
                        w_blk = self.mesh.get((i, j))
                        cpe.stats.bus_gets += 1
                    if i == k:
                        d_blk = cpe.ldm.get("gemm.D").data
                    else:
                        d_blk = self.mesh.get((i, j))
                        cpe.stats.bus_gets += 1
                    cpe.fma_tile(acc[i][j], w_blk, d_blk)
        self.mesh.assert_drained()
        return join_grid(acc)

    # -- vectorized fast path ----------------------------------------------

    def _block_gemm(self, w: np.ndarray, d: np.ndarray) -> np.ndarray:
        """All per-CPE block products of one schedule, as batched GEMMs.

        Step ``k`` of Fig. 3 multiplies, on every CPE (i, j), the same
        (br x kb) @ (kb x bc) block pair the broadcasts delivered; one
        batched ``matmul`` per step performs those 64 products with the
        same operand shapes and the same k-major accumulation order, so the
        result is bit-identical to the simulated schedule.

        Operands are normalized to contiguous layout first: the full
        schedule stages contiguous block copies into LDM, and BLAS kernels
        pick different (bitwise-diverging) code paths for strided views, so
        layout normalization is what makes the two paths identical for the
        transposed views the convolution lowering passes in.
        """
        w = np.ascontiguousarray(w)
        d = np.ascontiguousarray(d)
        n = self.mesh.size
        no, ni = w.shape
        m = d.shape[1]
        br, kb, bc = no // n, ni // n, m // n
        # (i, k, br, kb): W block owned by CPE(i, k).
        w_blocks = w.reshape(n, br, n, kb).transpose(0, 2, 1, 3)
        # (j, k, kb, bc): D block owned by CPE(k, j).
        d_blocks = d.reshape(n, kb, n, bc).transpose(2, 0, 1, 3)
        acc = np.zeros((n, n, br, bc))
        step = self._scratch.get((n, n, br, bc))
        if step is None:
            step = np.empty((n, n, br, bc))
            self._scratch[(n, n, br, bc)] = step
        if kb == 1:
            # Depth-1 blocks make each step a rank-1 outer product: one
            # multiplication per output element, so the broadcast multiply
            # is bit-identical to the (br, 1) @ (1, bc) matmul and avoids
            # the slow tiny-core batched-matmul path.
            for k in range(n):
                np.multiply(w_blocks[:, None, k], d_blocks[None, :, k], out=step)
                acc += step
        else:
            for k in range(n):
                np.matmul(w_blocks[:, None, k], d_blocks[None, :, k], out=step)
                acc += step
        # The transpose/reshape may alias ``acc`` (a view); copy so callers
        # own their result independent of later multiplies.
        return np.ascontiguousarray(acc.transpose(0, 2, 1, 3).reshape(no, m))

    def _account_fast_path(self, w: np.ndarray, d: np.ndarray) -> None:
        """Apply the statistics the full schedule would have recorded.

        Per multiply the Fig. 3 schedule performs, on each of the ``n``
        steps, one W-block broadcast per row bus and one D-block broadcast
        per column bus; every CPE sends its W block once (at step = its
        column) and its D block once (at step = its row), receives
        ``2 * (n - 1)`` foreign blocks, and accumulates ``n`` block
        products.
        """
        n = self.mesh.size
        no, ni = w.shape
        m = d.shape[1]
        br, kb, bc = no // n, ni // n, m // n
        w_block_bytes = br * kb * w.itemsize
        d_block_bytes = kb * bc * d.itemsize
        for bus in self.mesh.row_buses:
            bus.account_bulk(w_block_bytes, receivers=n - 1, operations=n)
        for bus in self.mesh.col_buses:
            bus.account_bulk(d_block_bytes, receivers=n - 1, operations=n)
        # Routed through count_fma (not a bare stats bump) so the telemetry
        # flop counter agrees bit-for-bit with the full protocol simulation.
        fmas_per_cpe = br * bc * kb * n
        for cpe in self.mesh:
            cpe.stats.bus_puts += 2
            cpe.stats.bus_gets += 2 * (n - 1)
            cpe.count_fma(fmas_per_cpe)

    # -- statistics ---------------------------------------------------------

    def reset_stats(self) -> None:
        """Zero the bus and per-CPE counters (verified signatures are kept).

        Call between unrelated plan executions so ``bus_puts``/``bus_gets``
        and the traffic totals describe one execution, not the lifetime of
        the mesh.
        """
        self.mesh.reset_stats()
        for cpe in self.mesh:
            cpe.stats.reset()

    def bus_bytes(self) -> int:
        """Total register-communication traffic so far (both bus kinds)."""
        return self.mesh.total_bus_bytes()
