"""swGEMM: LDM-blocked dense matrix multiply on the simulated SW26010.

The classifier part of a CNN (Section III-A) is fully-connected layers —
plain GEMMs.  They reuse the same machinery as the convolution plans: LDM
tiles streamed by DMA with double buffering, the register-communication
mesh GEMM within each tile, the (rbB, rbNo) register blocking and the
reordered inner kernel.  This module packages that as a standalone
operation the layer API (and future "other forms of DNNs") can call.

Blocking analysis (derived the same way as Eq. 1/2): a ``bM x bN`` output
tile with full-``K`` panels moves ``(bM*K + K*bN + bM*bN) * DS`` bytes for
``2*bM*bN*K`` flops, so the required MEM->LDM bandwidth is

    RBW = ((1/bN + 1/bM) + 1/K) * DS / (2 / T).

Bigger tiles amortize both panel loads; the LDM bounds the product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.common.errors import PlanError
from repro.hw.ldm import LDMAllocator
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC
from repro.perf.dma_model import DMAStream, blended_mbw
from repro.perf.equations import DS, rbw_ldm_reg_gemm_simd
from repro.perf.model import PerformanceEstimate, _measured_ee
from repro.core.conv import (
    BACKENDS,
    OVERLAP_CONTENTION,
    TimingReport,
    _pipeline_timeline,
    _StepCost,
)
from repro.core.register_blocking import PAPER_REGISTER_BLOCKING, RegisterBlocking
from repro.core.register_comm import MeshGemm
from repro.perf.dma_model import DMA_STRIDE_EFFICIENCY
from repro.hw.dma import DMABandwidthModel


@dataclass(frozen=True)
class GemmParams:
    """C (m x n) += A (m x k) . B (k x n)."""

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) < 1:
            raise ValueError(f"GEMM dimensions must be positive: {self}")

    def flops(self) -> int:
        return 2 * self.m * self.n * self.k

    def bytes_unique(self, ds: int = DS) -> int:
        return (self.m * self.k + self.k * self.n + self.m * self.n) * ds


def rbw_gemm(
    b_m: int,
    b_n: int,
    k: int,
    peak_flops: float = DEFAULT_SPEC.peak_flops_per_cg,
    ds: int = DS,
) -> float:
    """Required MEM->LDM bandwidth of a (bM, bN) tiled GEMM (bytes/s)."""
    if min(b_m, b_n, k) < 1:
        raise ValueError("tile sizes and depth must be positive")
    return ((1.0 / b_n + 1.0 / b_m) + 1.0 / k) * ds / (2.0 / peak_flops)


def choose_gemm_blocking(
    params: GemmParams, spec: SW26010Spec = DEFAULT_SPEC
) -> Tuple[int, int, int]:
    """Largest (bM, bN, bK) tiling that fits the LDM.

    The output tile C (bM x bN) stays resident in LDM while A (bM x bK) and
    B (bK x bN) panels stream over the K dimension (double-buffered), so
    the MEM traffic is ``M*N*K/bN + M*N*K/bM`` elements — bigger output
    tiles amortize both panels.  Per-CPE bytes:
    ``(2*(bM*bK + bK*bN) + bM*bN) / 64 * 8``.
    """
    allocator = LDMAllocator(capacity=spec.ldm_bytes)
    per_cpe = spec.cpes_per_group

    def fits(b_m: int, b_n: int, b_k: int) -> bool:
        a_tile = -(-b_m * b_k // per_cpe) * DS
        b_tile = -(-b_k * b_n // per_cpe) * DS
        c_tile = -(-b_m * b_n // per_cpe) * DS
        return allocator.would_fit(a_tile, a_tile, b_tile, b_tile, c_tile)

    best: Optional[Tuple[int, int, int]] = None
    size = 8
    while size <= 8192:
        b_m = min(size, params.m)
        b_n = min(size, params.n)
        b_k = min(size, params.k)
        if fits(b_m, b_n, b_k):
            best = (b_m, b_n, b_k)
            if b_m == params.m and b_n == params.n and b_k == params.k:
                break
        else:
            break
        size *= 2
    if best is None:
        raise PlanError(f"no GEMM tiling fits LDM for {params}")
    return best


class GemmPlan:
    """Tiled GEMM schedule with DMA traffic and timing, like a ConvPlan."""

    name = "swgemm"

    def __init__(
        self,
        params: GemmParams,
        blocking: Optional[Tuple[int, int, int]] = None,
        register_blocking: RegisterBlocking = PAPER_REGISTER_BLOCKING,
        spec: SW26010Spec = DEFAULT_SPEC,
    ):
        self.params = params
        self.spec = spec
        self.register_blocking = register_blocking
        register_blocking.check_feasible(spec)
        self.b_m, self.b_n, self.b_k = blocking or choose_gemm_blocking(params, spec)
        if self.b_m > params.m or self.b_n > params.n or self.b_k > params.k:
            raise PlanError(
                f"tile ({self.b_m}, {self.b_n}, {self.b_k}) exceeds problem {params}"
            )

    def tiles(self) -> Iterator[Tuple[int, int, int, int]]:
        """Yield (m0, m_len, n0, n_len) output tiles in row-major order."""
        p = self.params
        for m0 in range(0, p.m, self.b_m):
            m_len = min(self.b_m, p.m - m0)
            for n0 in range(0, p.n, self.b_n):
                n_len = min(self.b_n, p.n - n0)
                yield m0, m_len, n0, n_len

    def k_chunks(self) -> Iterator[Tuple[int, int]]:
        """Yield (k0, k_len) reduction chunks."""
        p = self.params
        for k0 in range(0, p.k, self.b_k):
            yield k0, min(self.b_k, p.k - k0)

    def dma_streams(self) -> List[DMAStream]:
        p = self.params
        k_steps = -(-p.k // self.b_k)
        a_bytes = b_bytes = c_bytes = 0
        for _, m_len, _, n_len in self.tiles():
            a_bytes += m_len * p.k * DS  # bM x bK per chunk, all chunks = bM x K
            b_bytes += p.k * n_len * DS
            c_bytes += m_len * n_len * DS
        block_a = min(self.b_k, 512) * DS
        block_bc = min(self.b_n, 512) * DS
        return [
            DMAStream("A.get", float(a_bytes), block_a, "get"),
            DMAStream("B.get", float(b_bytes), block_bc, "get"),
            DMAStream("C.put", float(c_bytes), block_bc, "put"),
        ]

    def rbw_mem(self) -> float:
        return rbw_gemm(
            self.b_m, self.b_n, self.params.k, peak_flops=self.spec.peak_flops_per_cg
        )

    def estimate(self) -> PerformanceEstimate:
        return PerformanceEstimate(
            plan=self.name,
            peak_flops=self.spec.peak_flops_per_cg,
            execution_efficiency=_measured_ee(max(1, -(-self.params.k // 8))),
            rbw_mem=self.rbw_mem(),
            mbw_mem=blended_mbw(self.dma_streams()),
            rbw_reg=rbw_ldm_reg_gemm_simd(
                self.register_blocking.rb_b,
                self.register_blocking.rb_no,
                peak_flops=self.spec.peak_flops_per_cpe,
            ),
            mbw_reg=self.spec.ldm_bandwidth,
        )


class GemmEngine:
    """Functional + timed execution of a :class:`GemmPlan`."""

    def __init__(
        self,
        plan: GemmPlan,
        backend: str = "numpy",
        stride_efficiency: float = DMA_STRIDE_EFFICIENCY,
        overlap_contention: float = OVERLAP_CONTENTION,
    ):
        if backend not in BACKENDS:
            raise PlanError(f"unknown GEMM backend {backend!r}; known: {BACKENDS}")
        self.plan = plan
        self.spec = plan.spec
        self.backend = backend
        self.stride_efficiency = stride_efficiency
        self.overlap_contention = overlap_contention
        self._dma = DMABandwidthModel(alignment=self.spec.dma_alignment)
        if backend in ("mesh", "mesh-fast"):
            mode = "session" if backend == "mesh-fast" else "full"
            self._mesh = MeshGemm(spec=self.spec, mode=mode)
        else:
            self._mesh = None

    def _cost(self, m_len: int, n_len: int, k_len: int, last_chunk: bool) -> _StepCost:
        plan = self.plan
        a_bytes = m_len * k_len * DS
        b_bytes = k_len * n_len * DS
        c_bytes = m_len * n_len * DS if last_chunk else 0
        block_a = min(plan.b_k, 512) * DS
        block_bc = min(plan.b_n, 512) * DS

        def t(nbytes, block, direction):
            if nbytes == 0:
                return 0.0
            bw = self._dma.bandwidth(block, direction, aligned=self._dma.is_aligned(block))
            return nbytes / (bw * self.stride_efficiency)

        flops = 2 * m_len * n_len * k_len
        ee = _measured_ee(max(1, -(-k_len // 8)))
        comp = self.spec.cycles_to_seconds(
            flops / (self.spec.cpes_per_group * self.spec.flops_per_cycle) / ee
        )
        return _StepCost(
            get_seconds=t(a_bytes, block_a, "get") + t(b_bytes, block_bc, "get"),
            compute_seconds=comp,
            put_seconds=t(c_bytes, block_bc, "put"),
            flops=flops,
            bytes_get=a_bytes + b_bytes,
            bytes_put=c_bytes,
        )

    def evaluate(self) -> TimingReport:
        chunks = list(self.plan.k_chunks())
        costs = [
            self._cost(m_len, n_len, k_len, i == len(chunks) - 1)
            for _, m_len, _, n_len in self.plan.tiles()
            for i, (_, k_len) in enumerate(chunks)
        ]
        total, dma_busy, comp_busy = _pipeline_timeline(costs, self.overlap_contention)
        return TimingReport(
            seconds=total,
            flops=sum(c.flops for c in costs),
            dma_seconds=dma_busy,
            compute_seconds=comp_busy,
            bytes_get=sum(c.bytes_get for c in costs),
            bytes_put=sum(c.bytes_put for c in costs),
            tiles=len(costs),
            peak_flops=self.spec.peak_flops_per_cg,
        )

    def run(self, a: np.ndarray, b: np.ndarray) -> Tuple[np.ndarray, TimingReport]:
        """Compute ``a @ b`` tile by tile; checked against plain matmul."""
        p = self.plan.params
        if a.shape != (p.m, p.k) or b.shape != (p.k, p.n):
            raise PlanError(
                f"operand shapes {a.shape} x {b.shape} do not match {p}"
            )
        a = np.asarray(a, float)
        b = np.asarray(b, float)
        c = np.zeros((p.m, p.n))
        if self._mesh is not None:
            # Stats are per-execution; verified fast-path signatures survive.
            self._mesh.reset_stats()
        for m0, m_len, n0, n_len in self.plan.tiles():
            a_tile = a[m0 : m0 + m_len, :]
            b_tile = b[:, n0 : n0 + n_len]
            if self._mesh is not None:
                c[m0 : m0 + m_len, n0 : n0 + n_len] = self._mesh.multiply(
                    a_tile, b_tile
                )
            else:
                c[m0 : m0 + m_len, n0 : n0 + n_len] = a_tile @ b_tile
        return c, self.evaluate()


def swgemm(
    a: np.ndarray,
    b: np.ndarray,
    backend: str = "numpy",
    spec: SW26010Spec = DEFAULT_SPEC,
) -> np.ndarray:
    """Public dense matmul through the simulated pipeline."""
    m, k = np.asarray(a).shape
    k2, n = np.asarray(b).shape
    if k != k2:
        raise PlanError(f"inner dimensions disagree: {a.shape} @ {b.shape}")
    plan = GemmPlan(GemmParams(m=m, n=n, k=k), spec=spec)
    out, _ = GemmEngine(plan, backend=backend).run(a, b)
    return out
