"""NumPy reference convolution — the correctness oracle (Listing 1).

Two forward implementations:

* :func:`conv2d_reference` — vectorized (einsum over kernel offsets); used
  by tests and by the layer API as the ground truth every simulated plan
  must match bit-for-bit (same double-precision accumulation order per
  output element is not guaranteed, so comparisons use ``allclose``);
* :func:`conv2d_naive` — the literal seven-loop form of Listing 1, kept for
  cross-validating the vectorized oracle on tiny inputs.

The backward pass (gradients with respect to inputs and filters) supports
the training workloads the paper targets; gradcheck tests validate it
against numeric differentiation.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import ConvParams


def _check_forward_args(x: np.ndarray, w: np.ndarray) -> ConvParams:
    if x.ndim != 4 or w.ndim != 4:
        raise ValueError(
            f"expected x as (B, Ni, Ri, Ci) and w as (No, Ni, Kr, Kc); "
            f"got shapes {x.shape} and {w.shape}"
        )
    b, ni, ri, ci = x.shape
    no, ni_w, kr, kc = w.shape
    if ni != ni_w:
        raise ValueError(f"channel mismatch: input has Ni={ni}, filter Ni={ni_w}")
    return ConvParams(ni=ni, no=no, ri=ri, ci=ci, kr=kr, kc=kc, b=b)


def conv2d_reference(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Valid, stride-1, multi-channel batched convolution (correlation form).

    ``x``: (B, Ni, Ri, Ci); ``w``: (No, Ni, Kr, Kc) -> (B, No, Ro, Co).
    """
    p = _check_forward_args(x, w)
    out = np.zeros(p.output_shape, dtype=np.float64)
    for dkr in range(p.kr):
        for dkc in range(p.kc):
            window = x[:, :, dkr : dkr + p.ro, dkc : dkc + p.co]
            out += np.einsum(
                "bnrc,on->borc", window, w[:, :, dkr, dkc], optimize=True
            )
    return out


def conv2d_naive(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """The literal 7-loop convolution of Listing 1 (tiny inputs only)."""
    p = _check_forward_args(x, w)
    out = np.zeros(p.output_shape, dtype=np.float64)
    for cb in range(p.b):
        for cno in range(p.no):
            for cro in range(p.ro):
                for cco in range(p.co):
                    acc = 0.0
                    for cni in range(p.ni):
                        for ckr in range(p.kr):
                            for ckc in range(p.kc):
                                acc += (
                                    x[cb, cni, cro + ckr, cco + ckc]
                                    * w[cno, cni, ckr, ckc]
                                )
                    out[cb, cno, cro, cco] = acc
    return out


def conv2d_backward_reference(
    x: np.ndarray, w: np.ndarray, grad_out: np.ndarray
) -> tuple:
    """Gradients of the reference convolution.

    Returns ``(grad_x, grad_w)`` for upstream gradient ``grad_out`` of shape
    (B, No, Ro, Co).
    """
    p = _check_forward_args(x, w)
    if grad_out.shape != p.output_shape:
        raise ValueError(
            f"grad_out shape {grad_out.shape} does not match output "
            f"{p.output_shape}"
        )
    grad_x = np.zeros_like(x, dtype=np.float64)
    grad_w = np.zeros_like(w, dtype=np.float64)
    for dkr in range(p.kr):
        for dkc in range(p.kc):
            window = x[:, :, dkr : dkr + p.ro, dkc : dkc + p.co]
            # dL/dw[o, n, dkr, dkc] = sum_{b,r,c} g[b,o,r,c] * x[b,n,r+dkr,c+dkc]
            grad_w[:, :, dkr, dkc] = np.einsum(
                "borc,bnrc->on", grad_out, window, optimize=True
            )
            # dL/dx[b, n, r+dkr, c+dkc] += sum_o g[b,o,r,c] * w[o,n,dkr,dkc]
            grad_x[:, :, dkr : dkr + p.ro, dkc : dkc + p.co] += np.einsum(
                "borc,on->bnrc", grad_out, w[:, :, dkr, dkc], optimize=True
            )
    return grad_x, grad_w


def conv2d_im2col(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """GEMM-lowered convolution (the cuDNN-style approach, Section III-C).

    Materializes the im2col matrix and performs one big matmul — the
    spatial-domain alternative the paper mentions alongside direct
    summation.  Used by the baselines package and as a third oracle.
    """
    p = _check_forward_args(x, w)
    cols = np.empty((p.b, p.ni * p.kr * p.kc, p.ro * p.co), dtype=np.float64)
    row = 0
    for cni in range(p.ni):
        for dkr in range(p.kr):
            for dkc in range(p.kc):
                window = x[:, cni, dkr : dkr + p.ro, dkc : dkc + p.co]
                cols[:, row, :] = window.reshape(p.b, -1)
                row += 1
    w_mat = w.reshape(p.no, p.ni * p.kr * p.kc)
    out = np.einsum("ok,bkp->bop", w_mat, cols, optimize=True)
    return out.reshape(p.output_shape)
