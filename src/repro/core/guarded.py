"""Guarded execution: fallback ladder, numeric guards, degraded replans.

The fast path earns its speed from certification (``mesh-fast``) and from
assumptions a degraded machine violates.  :class:`GuardedConvolutionEngine`
wraps :class:`~repro.core.conv.ConvolutionEngine` so that on a faulty or
degraded machine a layer *degrades instead of dying*:

* **Fallback ladder** — ``mesh-fast -> mesh -> numpy -> reference``.  A tier
  that raises a hardware fault (:class:`~repro.common.errors.HardwareFaultError`),
  fails fast-path certification (:class:`~repro.common.errors.SimulationError`),
  or cannot plan (:class:`~repro.common.errors.PlanError`) is abandoned and
  the next tier runs.  The terminal ``reference`` tier is the direct im2col-
  style :func:`~repro.core.reference.conv2d_reference` evaluation, which has
  no simulated-hardware dependencies at all.
* **Numeric guards** — after any tier completes, the output is checked for
  NaN/Inf (always) and, with ``parity_check=True``, against the reference
  convolution; a tripped guard demotes to the next tier.
* **Fenced-CPE replan** — inherited from the engine: mesh tiers execute on
  the largest healthy square submesh (see
  :func:`~repro.core.conv.effective_mesh_size`) rather than aborting.
* **Lowered-plan demotion** — a lowered (im2col/Winograd) plan gets a
  ``lowered`` tier prepended to its ladder.  On a healthy machine the
  lowered engine runs; under a fault plan the zoo engine refuses
  degraded-machine execution (:class:`~repro.common.errors.PlanError`),
  which the ladder treats like any other tier failure: the layer demotes
  to the direct engine (the supplied ``direct_plan`` or a derived one)
  instead of the handle refusing outright.

Every degradation is recorded in the fault plan's ledger (or a private one
when no fault plan is attached), so a run reports *how* it survived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import PlanError, ReproError, SimulationError
from repro.hw.spec import SW26010Spec
from repro.telemetry import current_telemetry
from repro.core.conv import ConvolutionEngine, TimingReport
from repro.core.plans import ConvPlan
from repro.core.reference import conv2d_reference

#: Fallback ladders per requested backend, most capable tier first.
FALLBACK_LADDERS: Dict[str, Tuple[str, ...]] = {
    "mesh-fast": ("mesh-fast", "mesh", "numpy", "reference"),
    "mesh": ("mesh", "numpy", "reference"),
    "numpy": ("numpy", "reference"),
}


@dataclass
class GuardedOutcome:
    """How one guarded run survived: the tier used and the demotions taken."""

    backend_used: str = ""
    degradations: List[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.degradations)


class GuardedConvolutionEngine:
    """A ConvolutionEngine that degrades through the fallback ladder.

    Drop-in for :class:`~repro.core.conv.ConvolutionEngine`: ``run`` and
    ``evaluate`` have the same signatures and return types.  After ``run``,
    :attr:`last_outcome` tells which tier produced the result and which
    guards/faults demoted it there.
    """

    def __init__(
        self,
        plan: ConvPlan,
        spec: Optional[SW26010Spec] = None,
        backend: str = "mesh-fast",
        fault_plan=None,
        parity_check: bool = False,
        parity_tol: float = 1e-8,
        telemetry=None,
        direct_plan: Optional[ConvPlan] = None,
    ):
        if backend not in FALLBACK_LADDERS:
            raise PlanError(
                f"unknown compute backend {backend!r}; "
                f"expected one of {tuple(FALLBACK_LADDERS)}"
            )
        self.plan = plan
        self.spec = spec or plan.spec
        self.backend = backend
        #: "direct" or the lowered algorithm ("im2col"/"winograd") guarded.
        self.algorithm = getattr(plan, "algorithm", "direct")
        #: Ladder walked by run/evaluate: lowered plans get a ``lowered``
        #: tier first, then demote onto the direct-plan tiers.
        self.ladder: Tuple[str, ...] = (
            ("lowered",) + FALLBACK_LADDERS[backend]
            if self.algorithm != "direct"
            else FALLBACK_LADDERS[backend]
        )
        #: The direct plan backing the non-lowered tiers.  For a direct
        #: primary plan it is the plan itself; for a lowered primary it is
        #: the caller's tuned direct plan, or one derived on first demotion.
        self._direct_plan: Optional[ConvPlan] = (
            plan if self.algorithm == "direct" else direct_plan
        )
        self.fault_plan = fault_plan
        self.parity_check = parity_check
        self.parity_tol = parity_tol
        self.telemetry = telemetry if telemetry is not None else current_telemetry()
        if fault_plan is not None:
            self.ledger = fault_plan.ledger
        else:
            from repro.faults.plan import FaultLedger

            self.ledger = FaultLedger()
        self._engines: Dict[str, ConvolutionEngine] = {}
        self.last_outcome = GuardedOutcome()

    # -- tiers -------------------------------------------------------------

    def _direct(self) -> ConvPlan:
        """The direct plan for fallback tiers (derived once if not supplied)."""
        if self._direct_plan is None:
            from repro.core.planner import plan_convolution

            self._direct_plan = plan_convolution(
                self.plan.params, spec=self.spec
            ).plan
        return self._direct_plan

    def _engine_for(self, tier: str):
        engine = self._engines.get(tier)
        if engine is None:
            if tier == "lowered":
                from repro.core.algorithms import engine_for_plan

                # Refuses with PlanError under a fault plan — the ladder
                # catches that like any tier failure and demotes to the
                # direct tiers below.
                engine = engine_for_plan(
                    self.plan,
                    spec=self.spec,
                    backend=self.backend,
                    fault_plan=self.fault_plan,
                    telemetry=self.telemetry,
                )
            else:
                engine = ConvolutionEngine(
                    self._direct(),
                    spec=self.spec,
                    backend=tier,
                    fault_plan=self.fault_plan,
                    telemetry=self.telemetry,
                )
            self._engines[tier] = engine
        return engine

    def _degrade(self, tier: str, reason: str) -> None:
        detail = f"backend {tier!r} abandoned: {reason}"
        self.ledger.record("guard", "fallback", detail)
        self.last_outcome.degradations.append(detail)
        self.telemetry.counters.add("guard.fallbacks")
        self.telemetry.counters.add(f"guard.fallbacks.{tier}")

    def _reference_run(
        self,
        x: np.ndarray,
        w: np.ndarray,
        bias: Optional[np.ndarray],
        activation: Optional[str],
    ) -> Tuple[np.ndarray, TimingReport]:
        """Terminal tier: direct reference convolution, no simulated hardware."""
        out = conv2d_reference(x, w)
        if bias is not None:
            out = out + np.asarray(bias, dtype=np.float64)[None, :, None, None]
        if activation == "relu":
            out = np.maximum(out, 0.0)
        try:
            timing = self._engine_for("numpy").evaluate()
        except ReproError:
            p = self.plan.params
            timing = TimingReport(
                seconds=0.0,
                flops=p.flops(),
                dma_seconds=0.0,
                compute_seconds=0.0,
                bytes_get=0,
                bytes_put=0,
                tiles=0,
                peak_flops=self.spec.peak_flops_per_cg,
            )
        return out, timing

    # -- guards ------------------------------------------------------------

    def _guard_output(
        self,
        tier: str,
        out: np.ndarray,
        x: np.ndarray,
        w: np.ndarray,
        reference: Optional[np.ndarray],
    ) -> Tuple[bool, Optional[np.ndarray]]:
        """Post-run guards.  Returns (passed, possibly-computed reference)."""
        if not np.isfinite(out).all():
            bad = int(np.size(out) - np.isfinite(out).sum())
            self._degrade(tier, f"NaN/Inf guard tripped ({bad} non-finite values)")
            return False, reference
        if self.parity_check and tier != "reference":
            if reference is None:
                reference = conv2d_reference(x, w)
            if not np.allclose(out, reference, rtol=self.parity_tol, atol=self.parity_tol):
                err = float(np.max(np.abs(out - reference)))
                self._degrade(tier, f"parity guard tripped (max |err| = {err:.3e})")
                return False, reference
        return True, reference

    # -- public surface ----------------------------------------------------

    def prepack_filters(self, w: np.ndarray, version: int = 0) -> int:
        """Pre-pack ``w``'s layout on the primary usable tier (serve warm-up).

        Only the first tier that constructs is warmed — fallback tiers
        pack lazily if a demotion ever reaches them.  (A lowered tier that
        refuses a fault plan, or a mesh tier with no healthy submesh, is
        skipped rather than failing warm-up.)
        """
        for tier in self.ladder:
            if tier == "reference":
                break
            try:
                return self._engine_for(tier).prepack_filters(w, version=version)
            except ReproError:
                continue
        return 0

    def run(
        self,
        x: np.ndarray,
        w: np.ndarray,
        bias: Optional[np.ndarray] = None,
        activation: Optional[str] = None,
        filter_version: Optional[int] = None,
    ) -> Tuple[np.ndarray, TimingReport]:
        """Execute the layer, degrading down the ladder as needed.

        Raises only if *every* tier fails — and the ``reference`` tier has
        no simulated-hardware failure modes, so in practice a shape-valid
        layer always completes.  ``filter_version`` opts into the wrapped
        engines' memoized weight-layout packing (each tier keeps its own
        pack table).
        """
        self.last_outcome = GuardedOutcome()
        reference: Optional[np.ndarray] = None
        last_error: Optional[Exception] = None
        for tier in self.ladder:
            if tier == "reference":
                out, timing = self._reference_run(x, w, bias, activation)
                self.last_outcome.backend_used = tier
                return out, timing
            try:
                with self.telemetry.tracer.span("guard.tier", cat="guard", tier=tier):
                    engine = self._engine_for(tier)
                    out, timing = engine.run(
                        x, w, bias=bias, activation=activation,
                        filter_version=filter_version,
                    )
            except ReproError as exc:
                # Hardware faults, certification failures, infeasible plans:
                # all survivable — log and demote.  Programming errors
                # (TypeError, ValueError...) still propagate.
                self._degrade(tier, f"{type(exc).__name__}: {exc}")
                last_error = exc
                continue
            passed, reference = self._guard_output(tier, out, x, w, reference)
            if not passed:
                continue
            self.last_outcome.backend_used = tier
            return out, timing
        raise SimulationError(
            f"all backends failed for {self.plan.params.describe()}"
        ) from last_error

    def evaluate(self) -> TimingReport:
        """Timed walk on the degraded machine (no tensor data touched).

        Falls back across tiers the same way ``run`` does; tier choice only
        matters when a tier cannot even construct (e.g. no healthy submesh).
        """
        last_error: Optional[Exception] = None
        for tier in self.ladder:
            if tier == "reference":
                break
            try:
                return self._engine_for(tier).evaluate()
            except ReproError as exc:
                self._degrade(tier, f"{type(exc).__name__}: {exc}")
                last_error = exc
        raise SimulationError(
            f"no backend could time {self.plan.params.describe()}"
        ) from last_error
