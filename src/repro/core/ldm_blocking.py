"""LDM blocking: tile sizing against the 64 KB scratchpad (Section IV-A).

The blocking chooser turns the paper's three design insights into a search:

1. block first the dimension whose blocking most reduces the MEM->LDM RBW
   (for Algorithm 1 that is the ``bCo * bB`` product; for Algorithm 2 the
   batch is kept whole);
2. keep the leading DMA dimension large ("larger than 256B and aligned in
   128B") so the Table II curve is climbed;
3. push DMA operations to outer loops (the *promotion* flags) whenever the
   bigger tiles still fit.

Feasibility is decided by actually allocating the tiles in a scratch
:class:`~repro.hw.ldm.LDMAllocator` — the same allocator the execution
engine uses — with double buffers for the streamed operands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import LDMOverflowError, PlanError
from repro.hw.ldm import LDMAllocator
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC
from repro.core.params import ConvParams

DS = 8


@dataclass(frozen=True)
class ImageBlocking:
    """Algorithm 1 blocking: ``bB`` on batch, ``bCo`` on output columns.

    ``b_ni`` blocks the input-channel reduction when the LDM cannot hold
    full-Ni tiles ("if LDM space is not enough for large Ni ... we still
    need to apply loop blocking on these dimensions", Section IV-A);
    ``None`` keeps the reduction whole.
    """

    b_b: int
    b_co: int
    promote_input: bool = False
    promote_filter: bool = False
    b_ni: Optional[int] = None

    def __post_init__(self) -> None:
        if self.b_b < 1 or self.b_co < 1:
            raise ValueError("blocking sizes must be positive")
        if self.b_ni is not None and self.b_ni < 1:
            raise ValueError("b_ni must be positive when given")

    def ni_block(self, ni: int) -> int:
        return min(ni, self.b_ni) if self.b_ni is not None else ni


@dataclass(frozen=True)
class BatchBlocking:
    """Algorithm 2 blocking: whole batch, ``bCo`` on output columns.

    ``b_ni`` blocks the input-channel reduction (see ImageBlocking).
    """

    b_co: int
    promote_filter: bool = False
    b_ni: Optional[int] = None

    def __post_init__(self) -> None:
        if self.b_co < 1:
            raise ValueError("bCo must be positive")
        if self.b_ni is not None and self.b_ni < 1:
            raise ValueError("b_ni must be positive when given")

    def ni_block(self, ni: int) -> int:
        return min(ni, self.b_ni) if self.b_ni is not None else ni


def _per_cpe(elements: int, spec: SW26010Spec) -> int:
    """Bytes per CPE for a tile spread over the whole mesh."""
    return -(-elements // spec.cpes_per_group) * DS


def image_plan_ldm_bytes(
    params: ConvParams, blocking: ImageBlocking, spec: SW26010Spec = DEFAULT_SPEC
) -> List[Tuple[str, int]]:
    """Per-CPE LDM regions (name, bytes) the image-size-aware plan needs.

    Input and filter tiles stream (double buffered); the output tile is
    accumulated in place.
    """
    p, blk = params, blocking
    ni = blk.ni_block(p.ni)
    in_cols = (blk.b_co + p.kc - 1) if blk.promote_input else blk.b_co
    input_tile = _per_cpe(ni * blk.b_b * in_cols, spec)
    filter_elems = ni * p.no * (p.kc if blk.promote_filter else 1)
    filter_tile = _per_cpe(filter_elems, spec)
    output_tile = _per_cpe(blk.b_b * p.no * blk.b_co, spec)
    return [
        ("input.ping", input_tile),
        ("input.pong", input_tile),
        ("filter.ping", filter_tile),
        ("filter.pong", filter_tile),
        ("output", output_tile),
    ]


def batch_plan_ldm_bytes(
    params: ConvParams, blocking: BatchBlocking, spec: SW26010Spec = DEFAULT_SPEC
) -> List[Tuple[str, int]]:
    """Per-CPE LDM regions the batch-size-aware plan needs.

    One input column slab (Ni x B) streams at a time; the output block is
    ``bCo`` columns of B x No accumulated across the kr loop.
    """
    p, blk = params, blocking
    ni = blk.ni_block(p.ni)
    input_tile = _per_cpe(ni * p.b, spec)
    filter_elems = ni * p.no * (p.kc if blk.promote_filter else 1)
    filter_tile = _per_cpe(filter_elems, spec)
    output_tile = _per_cpe(blk.b_co * p.b * p.no, spec)
    return [
        ("input.ping", input_tile),
        ("input.pong", input_tile),
        ("filter.ping", filter_tile),
        ("filter.pong", filter_tile),
        ("output", output_tile),
    ]


def fits_in_ldm(regions: List[Tuple[str, int]], spec: SW26010Spec = DEFAULT_SPEC) -> bool:
    """Whether a set of per-CPE regions fits the 64 KB LDM."""
    allocator = LDMAllocator(capacity=spec.ldm_bytes)
    return allocator.would_fit(*(nbytes for _, nbytes in regions))


def assert_fits_in_ldm(
    regions: List[Tuple[str, int]], spec: SW26010Spec = DEFAULT_SPEC
) -> None:
    if not fits_in_ldm(regions, spec):
        total = sum(n for _, n in regions)
        detail = ", ".join(f"{name}={nbytes}B" for name, nbytes in regions)
        raise LDMOverflowError(
            f"plan needs {total} bytes of LDM per CPE "
            f"(limit {spec.ldm_bytes}): {detail}"
        )


def _divisor_candidates(limit: int, step: int) -> Iterator[int]:
    """Doubling candidates up to ``limit``, always including ``limit`` itself
    so problems smaller than one step still get a (full-extent) block."""
    value = step
    emitted_limit = False
    while value <= limit:
        yield value
        emitted_limit = emitted_limit or value == limit
        value *= 2
    if not emitted_limit:
        yield limit


def choose_image_blocking(
    params: ConvParams, spec: SW26010Spec = DEFAULT_SPEC
) -> ImageBlocking:
    """Largest-RBW-reduction (bB, bCo) that fits LDM, with DMA promotion.

    Candidates double from the mesh size upward (keeping tiles dividing the
    problem is the engine's job via edge tiles; the chooser optimizes the
    steady-state tile).  Among fitting candidates, maximize ``bB * bCo``
    (minimizing Eq. 1's first term), tie-breaking toward larger ``bCo``
    (longer DMA runs in the (4,C,R,N,B/4) layout).
    """
    for b_ni in _ni_candidates(params.ni):
        candidates: List[Tuple[int, int, ImageBlocking]] = []
        for b_b in _divisor_candidates(min(params.b, 256), 8):
            for b_co in _divisor_candidates(min(params.co, 128), 4):
                # Filter promotion moves the same bytes in longer runs, so
                # it is always preferred when it fits.  Input promotion
                # (reading the kc-halo once) *reduces* traffic below what
                # Eq. 1 models; it is an explicit opt-in (see the promotion
                # ablation bench), not a default, so plans stay comparable
                # with the paper's model.
                for promote_filter in (True, False):
                    blocking = ImageBlocking(
                        b_b=b_b,
                        b_co=b_co,
                        promote_input=False,
                        promote_filter=promote_filter,
                        b_ni=b_ni,
                    )
                    if fits_in_ldm(image_plan_ldm_bytes(params, blocking, spec), spec):
                        candidates.append((b_b * b_co, b_co, blocking))
                        break
        if candidates:
            candidates.sort(key=lambda t: (t[0], t[1], t[2].promote_filter))
            return candidates[-1][2]
    raise PlanError(
        f"no image-size-aware blocking fits LDM for {params.describe()}"
    )


def choose_batch_blocking(
    params: ConvParams, spec: SW26010Spec = DEFAULT_SPEC
) -> BatchBlocking:
    """Largest output-column block that fits LDM for Algorithm 2."""
    for b_ni in _ni_candidates(params.ni):
        candidates: List[BatchBlocking] = []
        for b_co in _divisor_candidates(min(params.co, 128), 1):
            for promote in (True, False):
                blocking = BatchBlocking(b_co=b_co, promote_filter=promote, b_ni=b_ni)
                if fits_in_ldm(batch_plan_ldm_bytes(params, blocking, spec), spec):
                    candidates.append(blocking)
                    break
        if candidates:
            return max(candidates, key=lambda blk: (blk.b_co, blk.promote_filter))
    raise PlanError(
        f"no batch-size-aware blocking fits LDM for {params.describe()} "
        f"(batch {params.b} too large to keep whole)"
    )


def _ni_candidates(ni: int) -> Iterator[Optional[int]]:
    """Full Ni first, then halvings down to one 8-deep kernel iteration."""
    yield None
    value = ni // 2
    while value >= 8:
        yield value
        value //= 2
