"""Shared utilities: units, errors, deterministic RNG, table rendering."""

from repro.common.units import (
    KIB,
    MIB,
    GIB,
    GB,
    GHZ,
    bytes_to_human,
    gflops,
    gbps,
)
from repro.common.errors import (
    ReproError,
    LDMOverflowError,
    RegisterPressureError,
    PlanError,
    SimulationError,
    BusProtocolError,
    HardwareFaultError,
    DMATimeoutError,
    CPEFaultError,
    BusStallError,
    ECCError,
    WorkerError,
    JobTimeoutError,
)
from repro.common.tables import TextTable

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "GB",
    "GHZ",
    "bytes_to_human",
    "gflops",
    "gbps",
    "ReproError",
    "LDMOverflowError",
    "RegisterPressureError",
    "PlanError",
    "SimulationError",
    "BusProtocolError",
    "HardwareFaultError",
    "DMATimeoutError",
    "CPEFaultError",
    "BusStallError",
    "ECCError",
    "WorkerError",
    "JobTimeoutError",
    "TextTable",
]
