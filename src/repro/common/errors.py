"""Exception hierarchy for the swDNN reproduction.

Every error raised intentionally by this package derives from
:class:`ReproError` so callers can catch library failures without catching
programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class LDMOverflowError(ReproError):
    """An allocation request exceeded the 64 KB Local Directive Memory."""


class RegisterPressureError(ReproError):
    """A register-blocking plan needs more vector registers than the CPE has."""


class PlanError(ReproError):
    """A convolution plan is infeasible for the given parameters."""


class SimulationError(ReproError):
    """The architectural simulator was driven into an invalid state."""


class BusProtocolError(SimulationError):
    """Register-communication bus misuse (mismatched put/get, overflow)."""


class HardwareFaultError(SimulationError):
    """An injected degraded-hardware condition fired (see ``repro.faults``).

    Unlike the protocol errors above — which mark bugs in a schedule — a
    hardware fault models the machine misbehaving under a seeded
    :class:`~repro.faults.FaultPlan`; the guarded execution layer catches
    these and degrades (fallback, replan, retry) instead of aborting.
    """


class DMATimeoutError(HardwareFaultError):
    """A DMA transfer exceeded its completion deadline (hung descriptor)."""


class CPEFaultError(HardwareFaultError):
    """A fenced (disabled) CPE was asked to compute or communicate."""


class BusStallError(HardwareFaultError):
    """A register-bus transfer stalled, or a put/get pair was dropped."""


class ECCError(HardwareFaultError):
    """An LDM bit-flip was detected by ECC (uncorrectable double-bit)."""


class ServeError(ReproError):
    """Base class for inference-serving failures (see :mod:`repro.serve`)."""


class QueueFullError(ServeError):
    """The admission queue rejected a request (backpressure).

    Raised by non-blocking submission when the bounded queue is at
    capacity; the caller owns the retry policy (shed, wait, or resubmit).
    """


class DeadlineExceededError(ServeError):
    """A request's deadline expired before a worker started executing it.

    The request's queue slot is reclaimed at batch-formation time: expired
    requests are failed with this error and never occupy space in the
    coalesced batch.
    """


class ServerClosedError(ServeError):
    """A request was submitted to (or was pending on) a closed server."""


class ShedError(ServeError):
    """A request was shed by brownout load-shedding.

    Raised when the batcher sheds lowest-priority work — because the
    admission queue crossed its high-water mark, or because an admitted
    request was evicted by a higher-priority arrival.  A shed is an
    *explicit typed rejection*: the caller knows immediately, no work was
    wasted, and the accounting still balances (``serve.shed``).
    """


class BreakerOpenError(ShedError):
    """A request was rejected because the pool's circuit breaker is open.

    A breaker trips when the recent failure rate of batch executions
    crosses its threshold; while open (and for the non-probe fraction of
    half-open traffic) submissions are shed at admission rather than
    queued toward a backend that is currently failing.
    """


class WorkerError(ReproError):
    """A parallel worker failed; carries the job's arguments and traceback.

    ``item_repr`` is the ``repr`` of the failing job's input and
    ``original_traceback`` the formatted traceback from the worker process,
    so a remote failure is debuggable without re-running the sweep serially.
    """

    def __init__(self, message: str, item_repr: str = "", original_traceback: str = ""):
        super().__init__(message)
        self.item_repr = item_repr
        self.original_traceback = original_traceback


class JobTimeoutError(WorkerError):
    """A parallel job exceeded its per-attempt timeout (hung or dead worker)."""
