"""Exception hierarchy for the swDNN reproduction.

Every error raised intentionally by this package derives from
:class:`ReproError` so callers can catch library failures without catching
programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class LDMOverflowError(ReproError):
    """An allocation request exceeded the 64 KB Local Directive Memory."""


class RegisterPressureError(ReproError):
    """A register-blocking plan needs more vector registers than the CPE has."""


class PlanError(ReproError):
    """A convolution plan is infeasible for the given parameters."""


class SimulationError(ReproError):
    """The architectural simulator was driven into an invalid state."""


class BusProtocolError(SimulationError):
    """Register-communication bus misuse (mismatched put/get, overflow)."""
