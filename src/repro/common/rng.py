"""Deterministic random-number helpers.

All stochastic pieces of the reproduction (synthetic workloads, the cuDNN
efficiency surface, test data) draw from generators created here so that
every experiment is reproducible from a seed.
"""

from __future__ import annotations

import numpy as np

#: Default seed used by examples and benchmarks.
DEFAULT_SEED = 0x5BD1E995


def make_rng(seed: int = DEFAULT_SEED) -> np.random.Generator:
    """Create an independent, seeded NumPy generator."""
    return np.random.default_rng(seed)


def derive_rng(base_seed: int, *keys: object) -> np.random.Generator:
    """Derive a child generator from a base seed and a sequence of keys.

    Deriving instead of sharing means parameter sweeps can evaluate
    configurations in any order (or in parallel) and still observe identical
    per-configuration randomness.
    """
    ss = np.random.SeedSequence([base_seed & 0xFFFFFFFF, _hash_keys(keys)])
    return np.random.default_rng(ss)


def _hash_keys(keys: tuple) -> int:
    h = 0x811C9DC5
    for key in keys:
        for byte in repr(key).encode():
            h ^= byte
            h = (h * 0x01000193) & 0xFFFFFFFF
    return h
