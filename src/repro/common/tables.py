"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report; this
module renders them as aligned monospace tables without any third-party
dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


class TextTable:
    """An aligned monospace table.

    >>> t = TextTable(["Size(Byte)", "Get", "Put"])
    >>> t.add_row([32, 4.31, 2.56])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    Size(Byte) | Get  | Put
    -----------+------+-----
    32         | 4.31 | 2.56
    """

    def __init__(self, headers: Sequence[str], float_fmt: str = "{:.2f}"):
        self.headers: List[str] = [str(h) for h in headers]
        self.float_fmt = float_fmt
        self.rows: List[List[str]] = []

    def add_row(self, row: Iterable[object]) -> None:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(self.float_fmt.format(cell))
            else:
                cells.append(str(cell))
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        def fmt_line(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
        lines = [fmt_line(self.headers)]
        lines.append("-+-".join("-" * w for w in widths))
        lines.extend(fmt_line(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
