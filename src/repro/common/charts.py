"""ASCII charts for the figure experiments.

Figs. 7 and 9 of the paper are bar/line charts; the harness renders the
regenerated series the same way, in plain text, so the *shape* claims
(flat swDNN vs jagged cuDNN, growth with filter size) are visible in the
report without any plotting dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
    max_value: Optional[float] = None,
) -> str:
    """Horizontal bar chart, one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels vs {len(values)} values")
    if not values:
        return "(no data)"
    if any(v < 0 for v in values):
        raise ValueError("bar_chart needs non-negative values")
    top = max_value if max_value is not None else max(values)
    top = max(top, 1e-12)
    label_width = max(len(str(l)) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * int(round(value / top * width))
        lines.append(f"{str(label):>{label_width}} |{bar:<{width}} {value:.2f}{unit}")
    return "\n".join(lines)


def series_chart(
    series: List[Tuple[str, Sequence[float]]],
    height: int = 12,
    width: Optional[int] = None,
    y_label: str = "",
) -> str:
    """Multi-series scatter chart; each series gets its own glyph.

    Rows are value bins (top = max), columns are the sample index — the
    paper's Fig. 7 layout (configuration number on x, Tflops on y).
    """
    if not series:
        return "(no data)"
    glyphs = "*o+x@%"
    n = max(len(values) for _, values in series)
    width = width if width is not None else n
    if width < 1 or height < 2:
        raise ValueError("chart needs positive dimensions")
    top = max(max(values) for _, values in series if len(values))
    top = max(top, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for s_idx, (_, values) in enumerate(series):
        glyph = glyphs[s_idx % len(glyphs)]
        for i, value in enumerate(values):
            col = int(i / n * (width - 1)) if n > 1 else 0
            row = height - 1 - int(min(value, top) / top * (height - 1))
            grid[row][col] = glyph
    lines = []
    for r, row in enumerate(grid):
        y_value = top * (height - 1 - r) / (height - 1)
        lines.append(f"{y_value:8.2f} |{''.join(row)}")
    lines.append(" " * 9 + "+" + "-" * width)
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]} {name}" for i, (name, _) in enumerate(series)
    )
    header = f"{y_label}\n" if y_label else ""
    return header + "\n".join(lines) + f"\n          {legend}"
