"""Unit constants and conversion helpers.

The paper mixes binary sizes (64 KB LDM) with decimal bandwidths (GB/s as
10**9 bytes per second, as is conventional for memory interfaces).  All
bandwidth figures in this codebase are decimal GB/s; all storage capacities
are binary (KiB/MiB).
"""

from __future__ import annotations

#: Binary storage units.
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Decimal bandwidth / rate units.
KB = 10**3
MB = 10**6
GB = 10**9
GHZ = 10**9


def bytes_to_human(n: int) -> str:
    """Render a byte count with a binary suffix (``B``, ``KiB``, ``MiB``...).

    >>> bytes_to_human(65536)
    '64.0KiB'
    """
    if n < 0:
        raise ValueError(f"byte count must be non-negative, got {n}")
    value = float(n)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024.0 or suffix == "TiB":
            if suffix == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def gflops(flops_per_second: float) -> float:
    """Convert flop/s to Gflop/s."""
    return flops_per_second / 1e9


def gbps(bytes_per_second: float) -> float:
    """Convert B/s to GB/s (decimal)."""
    return bytes_per_second / GB
