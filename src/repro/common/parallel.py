"""Deterministic, fault-tolerant multiprocessing fan-out.

The evaluation sweeps (Fig. 7's 101 configurations, Fig. 9's filter grid,
Table III, user sweeps) are embarrassingly parallel: every configuration
plans, models and times independently.  :func:`parallel_map` fans such a
workload over worker processes while keeping the *result order identical to
the input order*, so a parallel run renders byte-identical reports to a
serial one — parallelism is purely a wall-clock optimization.

``jobs=None`` (the default) defers to the ``SWDNN_JOBS`` environment
variable (see :func:`default_jobs`) so deployments can size every fan-out
— sweeps and the serve worker pool alike — with one knob; with the
variable unset that resolves to 1, so the serial path stays the reference
behavior and the one test suites exercise by default.  An explicit
``jobs=`` always wins over the environment.

Robustness (used by chaos sweeps and long production runs):

* A worker exception is re-raised in the parent as
  :class:`~repro.common.errors.WorkerError` carrying the failing job's
  input ``repr`` and the worker's original traceback — never a bare remote
  error with no context.
* ``retries``/``backoff`` re-run an individual failed job with exponential
  backoff before giving up; one bad draw does not kill a 100-config sweep.
* ``timeout`` bounds each attempt; combined with per-job dispatch it also
  provides **crash isolation**: a worker process that dies outright (OOM
  kill, segfault, ``os._exit``) loses only its own job — the pool replaces
  the worker, the lost job times out and is retried or reported as
  :class:`~repro.common.errors.JobTimeoutError`, and every other job
  completes normally.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from functools import partial
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.common.errors import JobTimeoutError, WorkerError

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable naming the default worker count for every surface
#: that takes a ``jobs`` knob (``parallel_map``, the serve worker pool).
JOBS_ENV_VAR = "SWDNN_JOBS"


def default_jobs() -> int:
    """The ``SWDNN_JOBS`` default worker count (1 when unset or empty).

    A set-but-invalid value raises ``ValueError`` — a typo'd deployment
    knob must fail loudly, not silently serialize the fleet.
    """
    raw = os.environ.get(JOBS_ENV_VAR)
    if raw is None or raw.strip() == "":
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{JOBS_ENV_VAR} must be a positive integer, got {raw!r}"
        ) from None
    if value < 1:
        raise ValueError(f"{JOBS_ENV_VAR} must be >= 1, got {value}")
    return value


def resolve_jobs(jobs: Optional[int], tasks: int) -> int:
    """Clamp a requested worker count to the task count (min 1).

    ``jobs=None`` means "use the :data:`JOBS_ENV_VAR` default".  Raises
    ``ValueError`` for non-positive requests so typos fail loudly instead
    of silently running serial.
    """
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return max(1, min(jobs, tasks))


@dataclass
class _RemoteFailure:
    """A worker-side exception, shipped back to the parent picklably."""

    item_repr: str
    exc_type: str
    exc_message: str
    traceback: str

    def to_error(self) -> WorkerError:
        return WorkerError(
            f"worker failed on item {self.item_repr}: "
            f"{self.exc_type}: {self.exc_message}\n"
            f"--- worker traceback ---\n{self.traceback}",
            item_repr=self.item_repr,
            original_traceback=self.traceback,
        )


def _guarded_call(fn: Callable[[T], R], item: T) -> object:
    """Worker wrapper: capture any exception with its context, picklably."""
    try:
        return fn(item)
    except Exception as exc:  # noqa: BLE001 - shipped to the parent intact
        return _RemoteFailure(
            item_repr=repr(item),
            exc_type=type(exc).__name__,
            exc_message=str(exc),
            traceback=traceback.format_exc(),
        )


def _backoff_sleep(backoff: float, attempt: int) -> None:
    if backoff > 0:
        time.sleep(backoff * (2 ** attempt))


def _serial_map(
    fn: Callable[[T], R], items: Sequence[T], retries: int, backoff: float
) -> List[R]:
    results: List[R] = []
    for item in items:
        for attempt in range(retries + 1):
            outcome = _guarded_call(fn, item)
            if not isinstance(outcome, _RemoteFailure):
                results.append(outcome)
                break
            if attempt < retries:
                _backoff_sleep(backoff, attempt)
                continue
            raise outcome.to_error()
    return results


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = None,
    retries: int = 0,
    backoff: float = 0.0,
    timeout: Optional[float] = None,
) -> List[R]:
    """``[fn(x) for x in items]`` over ``jobs`` processes, order-preserving.

    ``jobs=None`` (the default) defers to the ``SWDNN_JOBS`` environment
    variable (see :func:`default_jobs`; 1 when unset), so deployments
    size every fan-out with one env knob; an explicit integer always
    wins over the environment.

    ``fn`` and every item must be picklable (use module-level functions or
    :func:`functools.partial` over them).  Results are returned in input
    order regardless of completion order, so output built from them is
    deterministic and byte-identical to the serial run.

    ``retries`` re-runs an individual failed (or timed-out) job up to that
    many extra times, sleeping ``backoff * 2**attempt`` seconds between
    attempts.  ``timeout`` bounds each attempt in seconds; a job whose
    worker died or hung past the deadline raises
    :class:`~repro.common.errors.JobTimeoutError` once retries are
    exhausted, without affecting any other job.  Failures always surface as
    :class:`~repro.common.errors.WorkerError` carrying the job's input and
    the worker's original traceback.
    """
    if retries < 0:
        raise ValueError(f"retries must be non-negative, got {retries}")
    if backoff < 0:
        raise ValueError(f"backoff must be non-negative, got {backoff}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    items = list(items)
    jobs = resolve_jobs(jobs, len(items))
    if jobs == 1:
        return _serial_map(fn, items, retries, backoff)
    call = partial(_guarded_call, fn)
    if retries == 0 and timeout is None:
        # Fast path: chunked pool.map amortizes IPC for large sweeps.
        chunksize = max(1, len(items) // (jobs * 4))
        with multiprocessing.Pool(processes=jobs) as pool:
            results = pool.map(call, items, chunksize=chunksize)
        for outcome in results:
            if isinstance(outcome, _RemoteFailure):
                raise outcome.to_error()
        return results
    # Robust path: per-job dispatch so a single dead/hung worker can only
    # take down its own job, and failed jobs can be retried individually.
    with multiprocessing.Pool(processes=jobs) as pool:
        pending = [pool.apply_async(call, (item,)) for item in items]
        results: List[R] = [None] * len(items)  # type: ignore[list-item]
        for index, item in enumerate(items):
            async_result = pending[index]
            for attempt in range(retries + 1):
                try:
                    outcome = async_result.get(timeout)
                except multiprocessing.TimeoutError:
                    outcome = _RemoteFailure(
                        item_repr=repr(item),
                        exc_type="JobTimeout",
                        exc_message=f"no result within {timeout}s "
                        f"(worker hung or died)",
                        traceback="<job timed out; no worker traceback>",
                    )
                if not isinstance(outcome, _RemoteFailure):
                    results[index] = outcome
                    break
                if attempt < retries:
                    _backoff_sleep(backoff, attempt)
                    async_result = pool.apply_async(call, (item,))
                    continue
                if outcome.exc_type == "JobTimeout":
                    raise JobTimeoutError(
                        f"job for item {outcome.item_repr} timed out after "
                        f"{retries + 1} attempt(s) of {timeout}s each",
                        item_repr=outcome.item_repr,
                        original_traceback=outcome.traceback,
                    )
                raise outcome.to_error()
        return results
