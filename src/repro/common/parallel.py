"""Deterministic multiprocessing fan-out for independent configurations.

The evaluation sweeps (Fig. 7's 101 configurations, Fig. 9's filter grid,
Table III, user sweeps) are embarrassingly parallel: every configuration
plans, models and times independently.  :func:`parallel_map` fans such a
workload over worker processes while keeping the *result order identical to
the input order*, so a parallel run renders byte-identical reports to a
serial one — parallelism is purely a wall-clock optimization.

``jobs=1`` (the default everywhere) bypasses multiprocessing entirely; the
serial path stays the reference behavior and the one test suites exercise
by default.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Iterable, List, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: int, tasks: int) -> int:
    """Clamp a requested worker count to the task count (min 1).

    Raises ``ValueError`` for non-positive requests so typos fail loudly
    instead of silently running serial.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return max(1, min(jobs, tasks))


def parallel_map(
    fn: Callable[[T], R], items: Iterable[T], jobs: int = 1
) -> List[R]:
    """``[fn(x) for x in items]`` over ``jobs`` processes, order-preserving.

    ``fn`` and every item must be picklable (use module-level functions or
    :func:`functools.partial` over them).  Results are returned in input
    order regardless of completion order, so output built from them is
    deterministic and byte-identical to the serial run.
    """
    items = list(items)
    jobs = resolve_jobs(jobs, len(items))
    if jobs == 1:
        return [fn(item) for item in items]
    # chunksize > 1 amortizes IPC for large sweeps without affecting order.
    chunksize = max(1, len(items) // (jobs * 4))
    with multiprocessing.Pool(processes=jobs) as pool:
        return pool.map(fn, items, chunksize=chunksize)
