"""The composed three-level performance model (Fig. 2).

For a candidate convolution plan the model multiplies, onto the per-CG peak:

1. **EE** — execution efficiency of the dual-pipeline inner kernel
   (Section VI-B; measured by simulating the reordered GEMM kernel for the
   plan's ``Ni/8`` iterations);
2. **LDM->REG factor** — ``min(1, MBW_ldm / RBW_ldm_reg)**2`` with
   ``RBW_ldm_reg`` from Eq. 5 and ``MBW_ldm`` = 46.4 GB/s;
3. **MEM->LDM factor** — ``min(1, MBW_mem / RBW_mem_ldm)**2`` with
   ``RBW_mem_ldm`` from Eq. 1 or Eq. 2 and ``MBW_mem`` read off the Table II
   curve at the plan's DMA block size.

The *direct memory access* design point (middle column of Fig. 2) replaces
factors 2-3 with ``min(1, 8 GB/s / 139.2 GB/s)**2`` — 0.33% of peak, the
number that rules the gload path out before any code is written.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from typing import Sequence

from repro.common.units import GB
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC
from repro.perf.dma_model import DMAStream, blended_mbw, mem_ldm_mbw
from repro.perf.equations import (
    RBW_DIRECT_MEM,
    rbw_ldm_reg_gemm_simd,
    rbw_mem_ldm_batch_plan,
    rbw_mem_ldm_image_plan,
)
from repro.perf.roofline import bandwidth_bound_fraction


@lru_cache(maxsize=256)
def _measured_ee(iterations: int, num_a: int = 4, num_b: int = 4) -> float:
    """Simulated execution efficiency of the reordered kernel (cached)."""
    from repro.isa.kernels import GemmKernelSpec, kernel_execution_efficiency

    return kernel_execution_efficiency(
        GemmKernelSpec(iterations=iterations, num_a=num_a, num_b=num_b)
    )


@dataclass(frozen=True)
class PerformanceEstimate:
    """Output of the model for one plan on one core group."""

    plan: str
    peak_flops: float
    execution_efficiency: float
    rbw_mem: float
    mbw_mem: float
    rbw_reg: float
    mbw_reg: float

    @property
    def mem_fraction(self) -> float:
        """``min(1, MBW/RBW)**2`` at the MEM->LDM level."""
        return bandwidth_bound_fraction(self.rbw_mem, self.mbw_mem) ** 2

    @property
    def reg_fraction(self) -> float:
        """``min(1, MBW/RBW)**2`` at the LDM->REG level."""
        return bandwidth_bound_fraction(self.rbw_reg, self.mbw_reg) ** 2

    @property
    def flops(self) -> float:
        """Modeled sustained flop/s."""
        return (
            self.peak_flops
            * self.execution_efficiency
            * self.mem_fraction
            * self.reg_fraction
        )

    @property
    def gflops(self) -> float:
        return self.flops / 1e9

    @property
    def efficiency(self) -> float:
        """Fraction of peak."""
        return self.flops / self.peak_flops

    @property
    def bound(self) -> str:
        """Which resource limits this plan."""
        if self.mem_fraction < 1.0 and self.mem_fraction <= self.reg_fraction:
            return "MEM"
        if self.reg_fraction < 1.0:
            return "REG"
        return "compute"


class PerformanceModel:
    """The REG-LDM-MEM model for one core group of the SW26010."""

    def __init__(self, spec: SW26010Spec = DEFAULT_SPEC):
        self.spec = spec

    # -- Fig. 2, middle column ---------------------------------------------

    def direct_memory(self, execution_efficiency: float = 1.0) -> PerformanceEstimate:
        """The gload design point: every operand fetched from main memory."""
        return PerformanceEstimate(
            plan="direct-gload",
            peak_flops=self.spec.peak_flops_per_cg,
            execution_efficiency=execution_efficiency,
            rbw_mem=RBW_DIRECT_MEM,
            mbw_mem=self.spec.gload_bandwidth,
            rbw_reg=1.0,  # not the bound on this path
            mbw_reg=self.spec.ldm_bandwidth,
        )

    # -- Fig. 2, right column -----------------------------------------------

    def image_plan(
        self,
        b_co: int,
        b_b: int,
        n_o: int,
        n_i: int,
        streams: Optional[Sequence[DMAStream]] = None,
        block_bytes: Optional[int] = None,
        rb_b: int = 16,
        rb_no: int = 4,
    ) -> PerformanceEstimate:
        """Estimate the image-size-aware plan (Algorithm 1 / Eq. 1).

        ``streams`` describes the plan's actual DMA traffic mix for the MBW
        blend; without it, a single-stream approximation at the plan's
        leading-dimension block size is used (the (4,C,R,N,B/4) layout makes
        ``bCo`` 4-lane vectors contiguous: ``bCo * 32`` bytes).
        """
        block = (
            block_bytes
            if block_bytes is not None
            else b_co * self.spec.vector_lanes * self.spec.double_bytes
        )
        return PerformanceEstimate(
            plan="image-size-aware",
            peak_flops=self.spec.peak_flops_per_cg,
            execution_efficiency=self._ee(n_i),
            rbw_mem=rbw_mem_ldm_image_plan(
                b_co, b_b, n_o, peak_flops=self.spec.peak_flops_per_cg
            ),
            mbw_mem=self._mbw(streams, block),
            rbw_reg=rbw_ldm_reg_gemm_simd(
                rb_b, rb_no, peak_flops=self.spec.peak_flops_per_cpe
            ),
            mbw_reg=self.spec.ldm_bandwidth,
        )

    def batch_plan(
        self,
        k_c: int,
        n_o: int,
        b: int,
        n_i: int,
        streams: Optional[Sequence[DMAStream]] = None,
        block_bytes: Optional[int] = None,
        rb_b: int = 16,
        rb_no: int = 4,
    ) -> PerformanceEstimate:
        """Estimate the batch-size-aware plan (Algorithm 2 / Eq. 2).

        The (4,B/4,C,R,N) layout makes the whole batch contiguous, so the
        default single-stream block is ``B`` doubles.
        """
        block = block_bytes if block_bytes is not None else b * self.spec.double_bytes
        return PerformanceEstimate(
            plan="batch-size-aware",
            peak_flops=self.spec.peak_flops_per_cg,
            execution_efficiency=self._ee(n_i),
            rbw_mem=rbw_mem_ldm_batch_plan(
                k_c, n_o, b, peak_flops=self.spec.peak_flops_per_cg
            ),
            mbw_mem=self._mbw(streams, block),
            rbw_reg=rbw_ldm_reg_gemm_simd(
                rb_b, rb_no, peak_flops=self.spec.peak_flops_per_cpe
            ),
            mbw_reg=self.spec.ldm_bandwidth,
        )

    def _mbw(self, streams: Optional[Sequence[DMAStream]], block: int) -> float:
        if streams:
            return blended_mbw(streams)
        return blended_mbw(
            [
                DMAStream("get", 1.0, block, "get"),
                DMAStream("put", 0.25, block, "put"),
            ]
        )

    # -- helpers -------------------------------------------------------------

    def _ee(self, n_i: int) -> float:
        """Execution efficiency for an Ni-deep reduction (Ni/8 iterations).

        ``Ni`` values that are not multiples of 8 round up to the next whole
        iteration (the kernel pads the reduction).
        """
        if n_i < 1:
            raise ValueError(f"Ni must be positive, got {n_i}")
        iterations = max(1, -(-n_i // 8))
        return _measured_ee(iterations)

    def chip_estimate(self, per_cg: PerformanceEstimate, num_groups: Optional[int] = None) -> float:
        """Chip-level flop/s assuming the Section III-D linear CG scaling."""
        n = num_groups if num_groups is not None else self.spec.num_core_groups
        if not 1 <= n <= self.spec.num_core_groups:
            raise ValueError(
                f"num_groups must be in [1, {self.spec.num_core_groups}], got {n}"
            )
        return per_cg.flops * n
