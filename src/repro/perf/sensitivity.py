"""Architecture sensitivity: which SW26010 resource buys the most?

The paper's conclusion offers its findings "as potential candidates to be
included in future DNN architectures."  This module turns that into
numbers: sweep one architectural parameter at a time (DDR bandwidth, LDM
capacity, clock, LDM->REG bandwidth) and re-model a reference layer, so
the report can say *which* knob moves the convolution and by how much —
the memory-bandwidth column is the punchline (the chip is DDR-starved;
doubling bandwidth buys far more than doubling the clock).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.common.units import GB
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC
from repro.core.conv import ConvolutionEngine
from repro.core.params import ConvParams
from repro.core.planner import plan_convolution


@dataclass(frozen=True)
class SensitivityPoint:
    """Modeled outcome at one setting of one knob."""

    knob: str
    scale: float
    value: str
    gflops: float
    speedup_vs_default: float


#: How each knob rewrites the spec.  Every transform takes (spec, scale).
KNOBS: Dict[str, Callable[[SW26010Spec, float], SW26010Spec]] = {
    "ddr_bandwidth": lambda s, k: replace(
        s, ddr_peak_bandwidth=s.ddr_peak_bandwidth * k
    ),
    "ldm_capacity": lambda s, k: replace(s, ldm_bytes=int(s.ldm_bytes * k)),
    "clock": lambda s, k: replace(s, clock_hz=s.clock_hz * k),
    "ldm_reg_bandwidth": lambda s, k: replace(s, ldm_bandwidth=s.ldm_bandwidth * k),
}


def _knob_value(spec: SW26010Spec, knob: str) -> str:
    if knob == "ddr_bandwidth":
        return f"{spec.ddr_peak_bandwidth / GB:.0f} GB/s"
    if knob == "ldm_capacity":
        return f"{spec.ldm_bytes // 1024} KiB"
    if knob == "clock":
        return f"{spec.clock_hz / 1e9:.2f} GHz"
    return f"{spec.ldm_bandwidth / GB:.1f} GB/s"


def _measure(params: ConvParams, spec: SW26010Spec) -> float:
    """Timed per-CG Gflops under a modified spec.

    The DMA engine's Table II curve scales with the DDR knob: the measured
    points are multiplied by the same factor (the curve's shape is a
    property of the DDR3 protocol, its height of the interface speed).
    """
    from repro.hw.dma import DMABandwidthModel
    from repro.hw.spec import TABLE_II_DMA_BANDWIDTH

    ddr_scale = spec.ddr_peak_bandwidth / DEFAULT_SPEC.ddr_peak_bandwidth
    plan = plan_convolution(params, spec=spec).plan
    engine = ConvolutionEngine(plan, spec=spec)
    if ddr_scale != 1.0:
        scaled = {
            size: (get * ddr_scale, put * ddr_scale)
            for size, (get, put) in TABLE_II_DMA_BANDWIDTH.items()
        }
        engine._dma_model = DMABandwidthModel(
            table=scaled, alignment=spec.dma_alignment
        )
    return engine.evaluate().gflops


def sweep_knob(
    knob: str,
    scales: List[float] = (0.5, 1.0, 2.0, 4.0),
    params: Optional[ConvParams] = None,
    spec: SW26010Spec = DEFAULT_SPEC,
) -> List[SensitivityPoint]:
    """Sweep one knob; returns per-scale modeled throughput."""
    if knob not in KNOBS:
        raise ValueError(f"unknown knob {knob!r}; known: {sorted(KNOBS)}")
    params = params or ConvParams.from_output(
        ni=256, no=256, ro=64, co=64, kr=3, kc=3, b=128
    )
    baseline = _measure(params, spec)
    points = []
    for scale in scales:
        modified = KNOBS[knob](spec, scale)
        gflops = _measure(params, modified)
        points.append(
            SensitivityPoint(
                knob=knob,
                scale=scale,
                value=_knob_value(modified, knob),
                gflops=gflops,
                speedup_vs_default=gflops / baseline,
            )
        )
    return points


def sweep_all(
    scales: List[float] = (0.5, 1.0, 2.0, 4.0),
    params: Optional[ConvParams] = None,
    spec: SW26010Spec = DEFAULT_SPEC,
) -> Dict[str, List[SensitivityPoint]]:
    """Sweep every knob; the cross-knob comparison is the payload."""
    return {
        knob: sweep_knob(knob, scales, params=params, spec=spec) for knob in KNOBS
    }


def most_valuable_knob(
    params: Optional[ConvParams] = None, scale: float = 2.0
) -> str:
    """Which doubled resource yields the biggest speedup for this layer."""
    results = sweep_all(scales=[scale], params=params)
    return max(results, key=lambda knob: results[knob][0].speedup_vs_default)
