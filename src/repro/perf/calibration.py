"""Calibration of the two free constants against Table III.

The reproduction has exactly two fitted scalars (see EXPERIMENTS.md):

* ``DMA_STRIDE_EFFICIENCY`` — conv-traffic derating of the Table II curve,
  identified from the paper's measured-MBW column;
* ``OVERLAP_CONTENTION`` — the fraction of DMA/compute overlap lost to
  LDM-port contention, identified from the measured-Gflops column.

Rather than leaving them as magic numbers, this module re-derives them: a
grid search over (stride, contention) minimizing the relative error against
the paper's eight published measurements (4 x MBW + 4 x meas).  The test
suite asserts the fit lands on the shipped defaults, which makes the
calibration reproducible and the constants auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.common.units import GB
from repro.hw.spec import SW26010Spec, DEFAULT_SPEC
from repro.perf.dma_model import blended_mbw
from repro.core.conv import ConvolutionEngine
from repro.core.ldm_blocking import ImageBlocking
from repro.core.params import ConvParams
from repro.core.plans import BatchSizeAwarePlan, ImageSizeAwarePlan


@dataclass(frozen=True)
class CalibrationTarget:
    """One Table III row: configuration + the paper's measurements."""

    plan_kind: str
    ni: int
    no: int
    b_b: int = 0
    b_co: int = 0
    paper_mbw_gbps: float = 0.0
    paper_meas_gflops: float = 0.0


#: The four Table III rows as calibration targets.
TABLE_III_TARGETS: Tuple[CalibrationTarget, ...] = (
    CalibrationTarget("img", 128, 128, 32, 16, 21.9, 350.0),
    CalibrationTarget("img", 128, 256, 32, 8, 18.2, 375.0),
    CalibrationTarget("batch", 256, 256, 0, 0, 21.2, 410.0),
    CalibrationTarget("batch", 128, 384, 0, 0, 21.2, 392.0),
)


def _build_plan(target: CalibrationTarget, spec: SW26010Spec):
    params = ConvParams.from_output(
        ni=target.ni, no=target.no, ro=64, co=64, kr=3, kc=3, b=128
    )
    if target.plan_kind == "img":
        return ImageSizeAwarePlan(
            params, blocking=ImageBlocking(b_b=target.b_b, b_co=target.b_co), spec=spec
        )
    return BatchSizeAwarePlan(params, spec=spec)


@dataclass
class CalibrationResult:
    stride_efficiency: float
    contention: float
    mbw_error: float
    meas_error: float

    @property
    def total_error(self) -> float:
        return self.mbw_error + self.meas_error


def mbw_error(
    stride_efficiency: float,
    targets: Sequence[CalibrationTarget] = TABLE_III_TARGETS,
    spec: SW26010Spec = DEFAULT_SPEC,
) -> float:
    """Mean relative MBW error for one stride-efficiency value."""
    errors = []
    for target in targets:
        plan = _build_plan(target, spec)
        mbw = blended_mbw(plan.dma_streams(), stride_efficiency=stride_efficiency)
        errors.append(abs(mbw / GB - target.paper_mbw_gbps) / target.paper_mbw_gbps)
    return sum(errors) / len(errors)


def meas_error(
    stride_efficiency: float,
    contention: float,
    targets: Sequence[CalibrationTarget] = TABLE_III_TARGETS,
    spec: SW26010Spec = DEFAULT_SPEC,
) -> float:
    """Mean relative measured-Gflops error for one (stride, contention)."""
    errors = []
    for target in targets:
        plan = _build_plan(target, spec)
        report = ConvolutionEngine(
            plan,
            spec=spec,
            stride_efficiency=stride_efficiency,
            overlap_contention=contention,
        ).evaluate()
        errors.append(
            abs(report.gflops - target.paper_meas_gflops) / target.paper_meas_gflops
        )
    return sum(errors) / len(errors)


def calibrate(
    stride_grid: Sequence[float] = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    contention_grid: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    spec: SW26010Spec = DEFAULT_SPEC,
) -> CalibrationResult:
    """Grid-search both constants against the Table III targets.

    The stride efficiency is identified from the MBW column first (it is
    the only knob there), then the contention from the measured column.
    """
    best_stride = min(stride_grid, key=lambda s: mbw_error(s, spec=spec))
    best_contention = min(
        contention_grid, key=lambda c: meas_error(best_stride, c, spec=spec)
    )
    return CalibrationResult(
        stride_efficiency=best_stride,
        contention=best_contention,
        mbw_error=mbw_error(best_stride, spec=spec),
        meas_error=meas_error(best_stride, best_contention, spec=spec),
    )
