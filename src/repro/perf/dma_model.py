"""Measured MEM<->LDM bandwidth (the MBW side of the model).

Thin, import-friendly wrappers over the Table II interpolation that lives
with the DMA engine in :mod:`repro.hw.dma`, so the performance model and the
planner can ask "what bandwidth will this plan's DMA block size see?"
without constructing hardware objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence

from repro.hw.dma import DMABandwidthModel

#: Fraction of the Table II (sequential micro-benchmark) bandwidth that a
#: convolution's strided, multi-stream DMA traffic actually achieves.
#: Calibrated against the measured-MBW column of Table III: the paper's
#: in-kernel bandwidths (18.2-21.9 GB/s) sit at ~70% of the micro-benchmark
#: curve at the corresponding block sizes, the usual signature of DRAM page
#: misses and descriptor scatter that a sequential sweep does not see.
DMA_STRIDE_EFFICIENCY = 0.70


@lru_cache(maxsize=1)
def _default_model() -> DMABandwidthModel:
    return DMABandwidthModel()


def measured_dma_bandwidth(
    block_bytes: int,
    direction: str = "get",
    model: Optional[DMABandwidthModel] = None,
) -> float:
    """Table II bandwidth (bytes/s) for one DMA direction at a block size."""
    m = model or _default_model()
    return m.bandwidth(block_bytes, direction, aligned=m.is_aligned(block_bytes))


def mem_ldm_mbw(
    block_bytes: int,
    get_fraction: float = 0.5,
    model: Optional[DMABandwidthModel] = None,
) -> float:
    """Effective MEM<->LDM bandwidth for mixed get/put traffic.

    This is the ``MBW`` the Table III evaluation compares against each
    plan's ``RBW``: a time-weighted blend of the get and put curves at the
    plan's leading-dimension block size.
    """
    m = model or _default_model()
    return m.effective_bandwidth(
        block_bytes, get_fraction=get_fraction, aligned=m.is_aligned(block_bytes)
    )


@dataclass(frozen=True)
class DMAStream:
    """One DMA traffic stream of a convolution plan.

    ``bytes_moved`` is the stream's total volume over the layer (only the
    *ratio* between streams matters for the blend); ``block_bytes`` is the
    per-CPE contiguous descriptor size the plan's data layout yields;
    ``direction`` is ``"get"`` (memory -> LDM) or ``"put"``.
    """

    name: str
    bytes_moved: float
    block_bytes: int
    direction: str

    def __post_init__(self) -> None:
        if self.bytes_moved < 0:
            raise ValueError(f"stream {self.name!r}: negative byte volume")
        if self.block_bytes <= 0:
            raise ValueError(f"stream {self.name!r}: block size must be positive")
        if self.direction not in ("get", "put"):
            raise ValueError(f"stream {self.name!r}: bad direction {self.direction!r}")


def blended_mbw(
    streams: Sequence[DMAStream],
    stride_efficiency: float = DMA_STRIDE_EFFICIENCY,
    model: Optional[DMABandwidthModel] = None,
) -> float:
    """Effective MEM<->LDM bandwidth over a plan's whole DMA traffic mix.

    Time-weighted (harmonic) blend: each stream contributes time
    ``bytes / bandwidth(block, direction)``, and the result is total bytes
    over total time, derated by ``stride_efficiency``.  This is the ``MBW``
    the model compares against Eq. 1/Eq. 2's ``RBW``.
    """
    if not streams:
        raise ValueError("need at least one DMA stream")
    if not 0.0 < stride_efficiency <= 1.0:
        raise ValueError(
            f"stride_efficiency must be in (0, 1], got {stride_efficiency}"
        )
    m = model or _default_model()
    total_bytes = sum(s.bytes_moved for s in streams)
    if total_bytes == 0:
        raise ValueError("all DMA streams are empty")
    total_time = 0.0
    for s in streams:
        bw = m.bandwidth(s.block_bytes, s.direction, aligned=m.is_aligned(s.block_bytes))
        total_time += s.bytes_moved / bw
    return (total_bytes / total_time) * stride_efficiency
