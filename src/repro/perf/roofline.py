"""Roofline-model primitives (Williams, Waterman & Patterson, cited as [27]).

The paper estimates the minimum bandwidth (``RBW``) needed to feed peak
floating-point throughput and then derates performance by the *square* of
the bandwidth shortfall — convolution's computation grows with the square of
its data, so halving the deliverable bandwidth quarters the sustainable
throughput at fixed working set (Section III-D).
"""

from __future__ import annotations

from dataclasses import dataclass


def bandwidth_bound_fraction(required: float, measured: float) -> float:
    """``min(1, measured/required)`` — the paper's per-level derating base.

    When the measured bandwidth meets the requirement, memory at this level
    stops being the bound and the factor saturates at 1.
    """
    if required <= 0:
        raise ValueError(f"required bandwidth must be positive, got {required}")
    if measured < 0:
        raise ValueError(f"measured bandwidth must be non-negative, got {measured}")
    return min(1.0, measured / required)


@dataclass(frozen=True)
class Roofline:
    """A classic roofline: peak compute vs a single bandwidth ceiling."""

    peak_flops: float
    peak_bandwidth: float

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.peak_bandwidth <= 0:
            raise ValueError("peak flops and bandwidth must be positive")

    @property
    def ridge_intensity(self) -> float:
        """Arithmetic intensity (flops/byte) where the roofline bends."""
        return self.peak_flops / self.peak_bandwidth

    def attainable(self, arithmetic_intensity: float) -> float:
        """Attainable flop/s at a given arithmetic intensity."""
        if arithmetic_intensity < 0:
            raise ValueError("arithmetic intensity must be non-negative")
        return min(self.peak_flops, self.peak_bandwidth * arithmetic_intensity)

    def required_bandwidth(self) -> float:
        """Bandwidth needed to run at peak for intensity-1 workloads.

        More usefully combined with :func:`required_bandwidth_for` below.
        """
        return self.peak_flops

    def required_bandwidth_for(self, bytes_moved: float, flops: float) -> float:
        """RBW to sustain peak given a kernel's bytes/flops ratio."""
        if flops <= 0:
            raise ValueError("flops must be positive")
        return self.peak_flops * (bytes_moved / flops)

    def quadratic_fraction(self, measured_bandwidth: float, required: float) -> float:
        """The squared derating of Fig. 2: ``min(1, MBW/RBW)**2``."""
        return bandwidth_bound_fraction(required, measured_bandwidth) ** 2
